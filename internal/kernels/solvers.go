package kernels

import (
	"math"

	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

// Injection schedules a single bit flip during a solve: before
// iteration Iter, flip bit Bit of element Index of the solution
// vector — the paper's fault model applied mid-computation.
type Injection struct {
	Iter  int // iteration before which the flip lands
	Index int // solution-vector element to corrupt
	Bit   int // bit position to flip, 0 = LSB
}

// SolveResult reports a solver run.
type SolveResult struct {
	// Iters actually executed.
	Iters int
	// FinalResidual is ‖b − Ax‖₂ at exit.
	FinalResidual float64
	// SolutionErr is ‖x − x*‖₂ against the known discrete solution.
	SolutionErr float64
	// Diverged marks NaN/Inf contamination of the solution.
	Diverged bool
	// Corrected counts ECC repairs (protected arrays only).
	Corrected int
}

// Problem builds the standard test system A x = b on the 1-D Poisson
// operator with a manufactured solution mixing a smooth mode with a
// golden-angle pseudo-random component (so x* is not an eigenvector
// and CG needs a realistic number of iterations).
type Problem struct {
	Op    Poisson1D // the system operator A
	XStar []float64 // manufactured exact solution x*
	B     []float64 // right-hand side b = A·x*
}

// NewProblem constructs the n-point system.
func NewProblem(n int) *Problem {
	p := &Problem{Op: Poisson1D{N: n}}
	p.XStar = make([]float64, n)
	for i := range p.XStar {
		p.XStar[i] = math.Sin(math.Pi*float64(i+1)/float64(n+1)) +
			0.3*math.Sin(2.39996322972865332*float64(i+1))
	}
	// b = A·x* computed exactly in float64.
	p.B = make([]float64, n)
	for i := 0; i < n; i++ {
		v := 2 * p.XStar[i]
		if i > 0 {
			v -= p.XStar[i-1]
		}
		if i < n-1 {
			v -= p.XStar[i+1]
		}
		p.B[i] = v
	}
	return p
}

func (p *Problem) solutionErr(x *Array) float64 {
	var s float64
	for i := 0; i < x.Len(); i++ {
		d := x.Load(i) - p.XStar[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// newStateArray allocates a solver vector in the format, optionally
// SEC-DED protected.
func newStateArray(codec numfmt.Codec, data []float64, protected bool) (*Array, error) {
	if protected {
		return NewProtectedArray(codec, data)
	}
	return NewArray(codec, data), nil
}

// Jacobi runs the (self-correcting, stationary) Jacobi iteration
// x ← (b + x_left + x_right) / 2 for maxIters or until the residual
// drops below tol. The solution vector is stored in the given format;
// inject, when non-nil, flips one stored bit mid-solve.
func (p *Problem) Jacobi(codec numfmt.Codec, maxIters int, tol float64, inject *Injection, protected bool) (SolveResult, error) {
	n := p.Op.N
	x, err := newStateArray(codec, make([]float64, n), protected)
	if err != nil {
		return SolveResult{}, err
	}
	xNew, err := newStateArray(codec, make([]float64, n), protected)
	if err != nil {
		return SolveResult{}, err
	}
	b := NewArray(codec, p.B)
	r := NewArray(codec, make([]float64, n))

	var res SolveResult
	for it := 0; it < maxIters; it++ {
		if inject != nil && it == inject.Iter {
			x.InjectBitFlip(inject.Index, inject.Bit)
		}
		for i := 0; i < n; i++ {
			v := b.Load(i)
			if i > 0 {
				v += x.Load(i - 1)
			}
			if i < n-1 {
				v += x.Load(i + 1)
			}
			xNew.Store(i, v/2)
		}
		x, xNew = xNew, x
		res.Iters = it + 1
		if it%16 == 15 || it == maxIters-1 {
			rn := p.Op.Residual(b, x, r)
			if math.IsNaN(rn) || math.IsInf(rn, 0) {
				res.Diverged = true
				break
			}
			if rn < tol {
				break
			}
		}
	}
	res.FinalResidual = p.Op.Residual(b, x, r)
	res.SolutionErr = p.solutionErr(x)
	res.Diverged = res.Diverged || math.IsNaN(res.FinalResidual) || math.IsInf(res.FinalResidual, 0)
	res.Corrected = x.Corrected + xNew.Corrected
	return res, nil
}

// CG runs (non-restarted) conjugate gradient — which, unlike Jacobi,
// is *not* self-correcting: a fault that breaks the Krylov recurrences
// can permanently stall or derail convergence (the GMRES observation
// of the paper's ref [20]).
func (p *Problem) CG(codec numfmt.Codec, maxIters int, tol float64, inject *Injection, protected bool) (SolveResult, error) {
	n := p.Op.N
	x, err := newStateArray(codec, make([]float64, n), protected)
	if err != nil {
		return SolveResult{}, err
	}
	b := NewArray(codec, p.B)
	r := NewArray(codec, p.B) // r = b − A·0 = b
	pv := NewArray(codec, p.B)
	ap := NewArray(codec, make([]float64, n))

	rsOld := Dot(r, r)
	var res SolveResult
	for it := 0; it < maxIters; it++ {
		if inject != nil && it == inject.Iter {
			x.InjectBitFlip(inject.Index, inject.Bit)
		}
		p.Op.Apply(pv, ap)
		den := Dot(pv, ap)
		if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
			res.Diverged = true
			break
		}
		alpha := rsOld / den
		AXPY(alpha, pv, x)
		AXPY(-alpha, ap, r)
		rsNew := Dot(r, r)
		res.Iters = it + 1
		if math.IsNaN(rsNew) || math.IsInf(rsNew, 0) {
			res.Diverged = true
			break
		}
		if math.Sqrt(rsNew) < tol {
			break
		}
		beta := rsNew / rsOld
		for i := 0; i < n; i++ {
			pv.Store(i, r.Load(i)+beta*pv.Load(i))
		}
		rsOld = rsNew
	}
	tmp := NewArray(codec, make([]float64, n))
	res.FinalResidual = p.Op.Residual(b, x, tmp)
	res.SolutionErr = p.solutionErr(x)
	res.Diverged = res.Diverged || math.IsNaN(res.FinalResidual) || math.IsInf(res.FinalResidual, 0)
	res.Corrected = x.Corrected
	return res, nil
}

// ImpactRow compares the end-to-end effect of one mid-solve flip.
type ImpactRow struct {
	Codec     string      // format name the solver ran in
	Solver    string      // solver identifier ("jacobi", "cg")
	Bit       int         // flipped bit position of the injection
	Protected bool        // true when the solution vector was ECC-protected
	Clean     SolveResult // fault-free reference run
	Faulty    SolveResult // run with the injection applied
	// ErrInflation = faulty solution error / clean solution error.
	ErrInflation float64
}

// SolverImpact runs the clean and faulted solves for one configuration.
func SolverImpact(p *Problem, codec numfmt.Codec, solver string, maxIters int, tol float64, inj Injection, protected bool) (ImpactRow, error) {
	run := func(in *Injection) (SolveResult, error) {
		if solver == "cg" {
			return p.CG(codec, maxIters, tol, in, protected)
		}
		return p.Jacobi(codec, maxIters, tol, in, protected)
	}
	clean, err := run(nil)
	if err != nil {
		return ImpactRow{}, err
	}
	faulty, err := run(&inj)
	if err != nil {
		return ImpactRow{}, err
	}
	row := ImpactRow{
		Codec: codec.Name(), Solver: solver, Bit: inj.Bit, Protected: protected,
		Clean: clean, Faulty: faulty,
	}
	if clean.SolutionErr > 0 {
		row.ErrInflation = faulty.SolutionErr / clean.SolutionErr
	}
	return row, nil
}

// RandomInjection derives a deterministic mid-solve injection from a
// seed (bit position swept by the caller).
func RandomInjection(seed uint64, n, maxIters, bit int) Injection {
	rng := sdrbench.NewRNG(seed, "kernel-injection")
	return Injection{
		Iter:  maxIters / 3,
		Index: rng.Intn(n),
		Bit:   bit,
	}
}
