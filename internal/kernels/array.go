// Package kernels provides HPC computation kernels whose working
// arrays are *stored* in an arbitrary number format (posit or IEEE,
// any width) — the storage model of the paper's fault study, where
// soft errors strike data at rest (§3.3) and computation happens at
// higher precision. It includes BLAS-1/2 kernels, Jacobi and
// conjugate-gradient solvers on a 1-D Poisson problem, mid-solve fault
// injection, and optional SEC-DED protection of the stored words —
// closing the loop from the paper's per-bit error analysis to its
// motivating question: what does a flip do to a running application
// (cf. the paper's refs [12, 20, 13]), and does memory protection
// absorb it (refs [18, 24, 35])?
package kernels

import (
	"fmt"

	"positres/internal/bitflip"
	"positres/internal/ecc"
	"positres/internal/numfmt"
)

// Array is a vector stored in a number format: every element lives as
// its encoded bit pattern, so injected bit flips corrupt exactly what
// a memory fault would. Loads decode; stores round into the format
// (accumulating the format's rounding error realistically).
type Array struct {
	codec numfmt.Codec
	bits  []uint64

	// prot, when non-nil, shadows bits with SEC-DED codewords
	// (32-bit formats only). Loads decode through the ECC layer and
	// repair single-bit upsets.
	prot *ecc.ProtectedArray
	// Corrected counts ECC repairs observed during loads.
	Corrected int
	// Uncorrectable counts double-bit detections during loads.
	Uncorrectable int
}

// NewArray stores data in the given format.
func NewArray(codec numfmt.Codec, data []float64) *Array {
	a := &Array{codec: codec, bits: make([]uint64, len(data))}
	for i, v := range data {
		a.bits[i] = codec.Encode(v)
	}
	return a
}

// NewProtectedArray stores data under SEC-DED protection. The format
// must be 32 bits wide (the Hamming(39,32) code protects one word per
// element).
func NewProtectedArray(codec numfmt.Codec, data []float64) (*Array, error) {
	if codec.Width() != 32 {
		return nil, fmt.Errorf("kernels: SEC-DED protection requires a 32-bit format, got %s (%d bits)",
			codec.Name(), codec.Width())
	}
	a := &Array{codec: codec}
	words := make([]uint32, len(data))
	for i, v := range data {
		words[i] = uint32(codec.Encode(v))
	}
	a.prot = ecc.Protect(words)
	return a, nil
}

// Len returns the element count.
func (a *Array) Len() int {
	if a.prot != nil {
		return a.prot.Len()
	}
	return len(a.bits)
}

// Codec returns the storage format.
func (a *Array) Codec() numfmt.Codec { return a.codec }

// Load decodes element i (repairing it first when protected).
func (a *Array) Load(i int) float64 {
	if a.prot != nil {
		w, st := a.prot.Load(i)
		switch st {
		case ecc.Corrected:
			a.Corrected++
		case ecc.Uncorrectable:
			a.Uncorrectable++
		}
		return a.codec.Decode(uint64(w))
	}
	return a.codec.Decode(a.bits[i])
}

// Store rounds v into the format at element i.
func (a *Array) Store(i int, v float64) {
	if a.prot != nil {
		a.prot.Store(i, uint32(a.codec.Encode(v)))
		return
	}
	a.bits[i] = a.codec.Encode(v)
}

// Bits returns the stored pattern of element i (for protected arrays,
// the repaired data word without its ECC check bits).
func (a *Array) Bits(i int) uint64 {
	if a.prot != nil {
		w, _ := a.prot.Load(i)
		return uint64(w)
	}
	return a.bits[i]
}

// InjectBitFlip flips bit pos of element i's stored word. For
// protected arrays the flip lands in the 39-bit codeword (pos 0..38),
// modelling a fault in ECC DRAM; for bare arrays pos addresses the
// format's data bits directly.
func (a *Array) InjectBitFlip(i, pos int) {
	if a.prot != nil {
		a.prot.InjectFault(i, pos)
		return
	}
	a.bits[i] = bitflip.Flip(a.bits[i], pos) & maskOf(a.codec)
}

func maskOf(c numfmt.Codec) uint64 {
	if c.Width() >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(c.Width()) - 1
}

// Float64s decodes the whole array.
func (a *Array) Float64s() []float64 {
	out := make([]float64, a.Len())
	for i := range out {
		out[i] = a.Load(i)
	}
	return out
}

// Snapshot returns a copy of the stored bit patterns (data words; for
// protected arrays, the repaired words without check bits) — the raw
// material of a checkpoint.
func (a *Array) Snapshot() []uint64 {
	out := make([]uint64, a.Len())
	for i := range out {
		out[i] = a.Bits(i)
	}
	return out
}

// RestoreSnapshot overwrites the array's contents from a snapshot
// taken on an array of the same length and format.
func (a *Array) RestoreSnapshot(words []uint64) error {
	if len(words) != a.Len() {
		return fmt.Errorf("kernels: snapshot length %d != array length %d", len(words), a.Len())
	}
	for i, w := range words {
		if a.prot != nil {
			a.prot.Store(i, uint32(w))
		} else {
			a.bits[i] = w & maskOf(a.codec)
		}
	}
	return nil
}
