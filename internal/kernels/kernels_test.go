package kernels

import (
	"math"
	"testing"

	"positres/internal/numfmt"
)

func codec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestArrayBasics(t *testing.T) {
	c := codec(t, "posit32")
	a := NewArray(c, []float64{1, 2.5, -3})
	if a.Len() != 3 || a.Codec().Name() != "posit32" {
		t.Fatal("shape")
	}
	if a.Load(1) != 2.5 {
		t.Fatal("load")
	}
	a.Store(0, 7)
	if a.Load(0) != 7 {
		t.Fatal("store")
	}
	if got := a.Float64s(); got[2] != -3 {
		t.Fatal("float64s")
	}
	before := a.Bits(2)
	a.InjectBitFlip(2, 5)
	if a.Bits(2) != before^(1<<5) {
		t.Fatal("flip")
	}
	// Stores round into the format: posit8 cannot hold 186.25.
	a8 := NewArray(codec(t, "posit8"), []float64{186.25})
	if a8.Load(0) != 192 {
		t.Fatalf("posit8 rounding: %v", a8.Load(0))
	}
}

func TestProtectedArray(t *testing.T) {
	c := codec(t, "posit32")
	a, err := NewProtectedArray(c, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Load(1) != 2 {
		t.Fatal("protected load")
	}
	// Any single flipped codeword bit is repaired on load.
	for pos := 0; pos < 39; pos++ {
		a.InjectBitFlip(1, pos)
		if got := a.Load(1); got != 2 {
			t.Fatalf("bit %d: load %v after fault", pos, got)
		}
	}
	if a.Corrected != 39 {
		t.Fatalf("corrected %d, want 39", a.Corrected)
	}
	a.Store(2, 9)
	if a.Load(2) != 9 {
		t.Fatal("protected store")
	}
	if a.Bits(0) != c.Encode(1) {
		t.Fatal("protected bits")
	}
	// Non-32-bit formats refuse protection.
	if _, err := NewProtectedArray(codec(t, "posit16"), []float64{1}); err == nil {
		t.Fatal("posit16 protection should fail")
	}
}

func TestBLASKernels(t *testing.T) {
	c := codec(t, "ieee32")
	x := NewArray(c, []float64{1, 2, 3})
	y := NewArray(c, []float64{4, 5, 6})
	if Dot(x, y) != 32 {
		t.Fatal("dot")
	}
	if Norm2(NewArray(c, []float64{3, 4})) != 5 {
		t.Fatal("norm")
	}
	AXPY(2, x, y) // y = 2x + y = {6, 9, 12}
	if y.Load(0) != 6 || y.Load(2) != 12 {
		t.Fatal("axpy")
	}
	Scale(0.5, y)
	if y.Load(1) != 4.5 {
		t.Fatal("scale")
	}
	dst := NewArray(c, make([]float64, 3))
	Copy(dst, x)
	if dst.Load(2) != 3 {
		t.Fatal("copy")
	}
	// MatVec: 2x2 identity-ish.
	A := NewArray(c, []float64{1, 0, 0, 2})
	out := NewArray(c, make([]float64, 2))
	MatVec(A, 2, 2, NewArray(c, []float64{5, 7}), out)
	if out.Load(0) != 5 || out.Load(1) != 14 {
		t.Fatal("matvec")
	}
	// Shape panics.
	for _, f := range []func(){
		func() { Dot(x, NewArray(c, []float64{1})) },
		func() { AXPY(1, x, NewArray(c, []float64{1})) },
		func() { Copy(dst, NewArray(c, []float64{1})) },
		func() { MatVec(A, 3, 2, x, out) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected shape panic")
				}
			}()
			f()
		}()
	}
}

func TestPoissonOperator(t *testing.T) {
	c := codec(t, "ieee64")
	op := Poisson1D{N: 4}
	x := NewArray(c, []float64{1, 2, 3, 4})
	y := NewArray(c, make([]float64, 4))
	op.Apply(x, y)
	want := []float64{0, 0, 0, 5} // 2·1−2, 2·2−1−3, 2·3−2−4, 2·4−3
	for i, w := range want {
		if y.Load(i) != w {
			t.Fatalf("apply[%d] = %v, want %v", i, y.Load(i), w)
		}
	}
	b := NewArray(c, []float64{0, 0, 0, 5})
	r := NewArray(c, make([]float64, 4))
	if rn := op.Residual(b, x, r); rn != 0 {
		t.Fatalf("residual of exact solution = %v", rn)
	}
}

// TestSolversConvergeClean: both solvers reach the manufactured
// solution without faults, in every 32-bit format.
func TestSolversConvergeClean(t *testing.T) {
	p := NewProblem(64)
	for _, name := range []string{"posit32", "ieee32", "ieee64", "posit64"} {
		c := codec(t, name)
		jr, err := p.Jacobi(c, 20000, 1e-6, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if jr.Diverged || jr.SolutionErr > 1e-3 {
			t.Errorf("%s jacobi: %+v", name, jr)
		}
		cr, err := p.CG(c, 500, 1e-7, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if cr.Diverged || cr.SolutionErr > 1e-3 {
			t.Errorf("%s cg: %+v", name, cr)
		}
		// In float64 storage, CG on an n-point SPD system converges in
		// ≤ n iterations; 32-bit storage quantization may keep the
		// recurrences hunting at the rounding floor, so only the
		// 64-bit formats get the strict bound.
		if name == "ieee64" && cr.Iters > 100 {
			t.Errorf("%s cg took %d iterations", name, cr.Iters)
		}
	}
}

// TestJacobiSelfCorrects: a mid-solve flip in a *low* bit decays away
// (stationary methods are self-correcting), so the final error matches
// the clean run.
func TestJacobiSelfCorrects(t *testing.T) {
	p := NewProblem(64)
	c := codec(t, "posit32")
	inj := Injection{Iter: 100, Index: 20, Bit: 3}
	row, err := SolverImpact(p, c, "jacobi", 20000, 1e-6, inj, false)
	if err != nil {
		t.Fatal(err)
	}
	if row.Faulty.Diverged {
		t.Fatal("low-bit flip should not diverge Jacobi")
	}
	if row.ErrInflation > 1.5 {
		t.Errorf("Jacobi did not self-correct: inflation %v", row.ErrInflation)
	}
}

// TestCGPersistsFault: the same flip in CG's solution vector persists
// (the method never rereads b to correct x), inflating the final error.
func TestCGPersistsFault(t *testing.T) {
	p := NewProblem(64)
	c := codec(t, "posit32")
	// Flip an upper bit of x mid-solve: the corruption stays in x.
	inj := Injection{Iter: 10, Index: 20, Bit: 28}
	row, err := SolverImpact(p, c, "cg", 500, 1e-10, inj, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(row.Faulty.SolutionErr > 10*row.Clean.SolutionErr) {
		t.Errorf("CG fault unexpectedly healed: clean %g faulty %g",
			row.Clean.SolutionErr, row.Faulty.SolutionErr)
	}
}

// TestProtectionAbsorbsFault: the same injections under SEC-DED
// protection are corrected on the next load — the faulty run matches
// the clean run exactly.
func TestProtectionAbsorbsFault(t *testing.T) {
	p := NewProblem(64)
	for _, name := range []string{"posit32", "ieee32"} {
		c := codec(t, name)
		for _, solver := range []string{"jacobi", "cg"} {
			inj := Injection{Iter: 10, Index: 20, Bit: 30}
			row, err := SolverImpact(p, c, solver, 20000, 1e-6, inj, true)
			if err != nil {
				t.Fatal(err)
			}
			if row.Faulty.SolutionErr != row.Clean.SolutionErr {
				t.Errorf("%s/%s: protected run differed: %g vs %g",
					name, solver, row.Faulty.SolutionErr, row.Clean.SolutionErr)
			}
			if row.Faulty.Corrected == 0 {
				t.Errorf("%s/%s: no correction recorded", name, solver)
			}
		}
	}
}

// TestUpperBitImpactPositVsIEEE: an upper-bit flip mid-Jacobi hurts
// the IEEE run far more than the posit run (the paper's headline,
// end-to-end).
func TestUpperBitImpactPositVsIEEE(t *testing.T) {
	p := NewProblem(64)
	// Bit 30 is the IEEE top exponent bit: for |x| < 2 it is clear, so
	// the flip multiplies by 2^128. The same position in a posit is
	// R_0, whose inversion is bounded by the following bits.
	inj := Injection{Iter: 100, Index: 31, Bit: 30}
	// Jacobi with limited iterations: the IEEE flip (×2^128 scale
	// jump) needs far longer to decay than the posit flip.
	maxIters := 600
	pr, err := SolverImpact(p, codec(t, "posit32"), "jacobi", maxIters, 0, inj, false)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := SolverImpact(p, codec(t, "ieee32"), "jacobi", maxIters, 0, inj, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(ir.Faulty.SolutionErr > 1e3*pr.Faulty.SolutionErr) {
		t.Errorf("expected IEEE upper-bit fault ≫ posit: posit %g ieee %g",
			pr.Faulty.SolutionErr, ir.Faulty.SolutionErr)
	}
}

func TestRandomInjection(t *testing.T) {
	a := RandomInjection(1, 100, 300, 7)
	b := RandomInjection(1, 100, 300, 7)
	if a != b {
		t.Fatal("not deterministic")
	}
	if a.Iter != 100 || a.Index < 0 || a.Index >= 100 || a.Bit != 7 {
		t.Fatalf("injection: %+v", a)
	}
	if c := RandomInjection(2, 100, 300, 7); c.Index == a.Index {
		// Different seeds usually pick different indices; a collision
		// is possible but with n=100 it's a 1% event — tolerate by
		// checking a second seed too.
		if d := RandomInjection(3, 100, 300, 7); d.Index == a.Index {
			t.Error("injections look seed-independent")
		}
	}
}

func TestSolverImpactMath(t *testing.T) {
	p := NewProblem(32)
	c := codec(t, "ieee64")
	inj := Injection{Iter: 5, Index: 10, Bit: 2}
	row, err := SolverImpact(p, c, "jacobi", 5000, 1e-9, inj, false)
	if err != nil {
		t.Fatal(err)
	}
	if row.Solver != "jacobi" || row.Codec != "ieee64" || row.Bit != 2 {
		t.Fatal("row metadata")
	}
	if row.Clean.SolutionErr <= 0 || math.IsNaN(row.ErrInflation) {
		t.Fatalf("row math: %+v", row)
	}
}

func TestSnapshotRestore(t *testing.T) {
	c := codec(t, "posit32")
	a := NewArray(c, []float64{1, 2, 3})
	snap := a.Snapshot()
	a.Store(1, 42)
	if err := a.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if a.Load(1) != 2 {
		t.Fatal("restore")
	}
	if err := a.RestoreSnapshot(snap[:1]); err == nil {
		t.Fatal("length mismatch should error")
	}
	// Protected arrays snapshot their repaired data words.
	p, err := NewProtectedArray(c, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	p.InjectBitFlip(0, 10)
	snap = p.Snapshot() // repairs on read
	p.Store(0, 9)
	if err := p.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if p.Load(0) != 5 {
		t.Fatalf("protected restore: %v", p.Load(0))
	}
}
