package kernels

import (
	"fmt"
	"math"
)

// BLAS-1/2 kernels over format-stored arrays. Arithmetic happens in
// float64; every store rounds back into the array's format, so the
// format's representation error propagates exactly as it would in a
// mixed-precision application.

// Dot returns Σ aᵢ·bᵢ.
func Dot(a, b *Array) float64 {
	if a.Len() != b.Len() {
		panic("kernels: Dot length mismatch")
	}
	var s float64
	for i := 0; i < a.Len(); i++ {
		s += a.Load(i) * b.Load(i)
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a *Array) float64 {
	var s float64
	for i := 0; i < a.Len(); i++ {
		v := a.Load(i)
		s += v * v
	}
	return math.Sqrt(s)
}

// AXPY computes y ← αx + y.
func AXPY(alpha float64, x, y *Array) {
	if x.Len() != y.Len() {
		panic("kernels: AXPY length mismatch")
	}
	for i := 0; i < x.Len(); i++ {
		y.Store(i, alpha*x.Load(i)+y.Load(i))
	}
}

// Scale computes x ← αx.
func Scale(alpha float64, x *Array) {
	for i := 0; i < x.Len(); i++ {
		x.Store(i, alpha*x.Load(i))
	}
}

// Copy copies src into dst (rounding into dst's format).
func Copy(dst, src *Array) {
	if dst.Len() != src.Len() {
		panic("kernels: Copy length mismatch")
	}
	for i := 0; i < src.Len(); i++ {
		dst.Store(i, src.Load(i))
	}
}

// MatVec computes y ← A·x for a dense row-major m×n matrix stored in
// an Array.
func MatVec(a *Array, m, n int, x, y *Array) {
	if a.Len() != m*n || x.Len() != n || y.Len() != m {
		panic(fmt.Sprintf("kernels: MatVec shape mismatch: A %d (%dx%d), x %d, y %d",
			a.Len(), m, n, x.Len(), y.Len()))
	}
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a.Load(i*n+j) * x.Load(j)
		}
		y.Store(i, s)
	}
}

// Poisson1D is the implicit tridiagonal operator of the 1-D Poisson
// problem with Dirichlet boundaries: (Ax)ᵢ = 2xᵢ − xᵢ₋₁ − xᵢ₊₁. It is
// symmetric positive definite — the canonical iterative-solver test
// problem (the paper's refs [12, 20] study SDC in exactly such
// solvers).
type Poisson1D struct {
	N int // interior grid points (matrix dimension)
}

// Apply computes y ← A·x.
func (p Poisson1D) Apply(x, y *Array) {
	n := p.N
	for i := 0; i < n; i++ {
		v := 2 * x.Load(i)
		if i > 0 {
			v -= x.Load(i - 1)
		}
		if i < n-1 {
			v -= x.Load(i + 1)
		}
		y.Store(i, v)
	}
}

// Residual computes r ← b − A·x and returns ‖r‖₂.
func (p Poisson1D) Residual(b, x, r *Array) float64 {
	n := p.N
	var s float64
	for i := 0; i < n; i++ {
		v := 2 * x.Load(i)
		if i > 0 {
			v -= x.Load(i - 1)
		}
		if i < n-1 {
			v -= x.Load(i + 1)
		}
		ri := b.Load(i) - v
		r.Store(i, ri)
		s += ri * ri
	}
	return math.Sqrt(s)
}
