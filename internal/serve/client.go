package serve

// Client is the typed HTTP client of the positserve API. It exists
// for three callers: the coordinator's dispatcher (shard fan-out and
// worker health probes), worker processes self-registering with their
// coordinator, and external Go programs driving a positserve instance
// (re-exported from the top-level positres package). Every non-2xx
// response is returned as *APIError carrying the service's stable
// error code.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"positres/internal/core"
	"positres/internal/spec"
)

// APIError is a positserve error envelope surfaced client-side.
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the stable machine-readable error code ("queue_full",
	// "unknown_format", ...).
	Code string
	// Message is the human-readable error message.
	Message string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("positserve: %d %s: %s", e.Status, e.Code, e.Message)
}

// Client talks to one positserve instance. The zero value is not
// usable; construct with NewClient. Safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a Client for the server at baseURL (scheme +
// host, e.g. "http://127.0.0.1:8080"). A nil httpClient uses a
// dedicated client with a 2-minute timeout — long enough for shard
// computation, short enough to notice a hung worker.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 2 * time.Minute}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// BaseURL returns the server address the client targets.
func (c *Client) BaseURL() string { return c.base }

// do issues one request and decodes either the expected JSON body
// into out (when non-nil) or the error envelope into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("positserve client: encode %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("positserve client: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("positserve client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("positserve client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// decodeAPIError turns a non-2xx response into an *APIError,
// degrading gracefully when the body is not the JSON envelope.
func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	var env errorBody
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
		return &APIError{Status: resp.StatusCode, Code: codeInternal,
			Message: strings.TrimSpace(string(raw))}
	}
	return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
}

// SubmitCampaign submits a campaign (POST /v1/campaigns) and returns
// the queued job's status. When wait is true the call blocks until
// the campaign reaches a terminal state (?wait=1).
func (c *Client) SubmitCampaign(ctx context.Context, cs *spec.CampaignSpec, wait bool) (*CampaignStatus, error) {
	path := "/v1/campaigns"
	if wait {
		path += "?wait=1"
	}
	var st CampaignStatus
	if err := c.do(ctx, http.MethodPost, path, cs, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// CampaignStatus polls one campaign (GET /v1/campaigns/{id}).
func (c *Client) CampaignStatus(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// CampaignResult streams one published result CSV
// (GET /v1/campaigns/{id}/results) into w.
func (c *Client) CampaignResult(ctx context.Context, id, field, format string, w io.Writer) error {
	path := fmt.Sprintf("/v1/campaigns/%s/results?field=%s&format=%s", id, field, format)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("positserve client: results: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("positserve client: results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if _, err := io.Copy(w, resp.Body); err != nil {
		return fmt.Errorf("positserve client: results: %w", err)
	}
	return nil
}

// RegisterWorker announces a worker to a coordinator
// (POST /v1/workers). Registration is idempotent.
func (c *Client) RegisterWorker(ctx context.Context, workerURL string) error {
	return c.do(ctx, http.MethodPost, "/v1/workers", workerRegistration{URL: workerURL}, nil)
}

// RunShard executes one shard on a worker (POST /v1/shards) and
// parses the text/csv trial stream it returns. The trials are exact:
// the CSV encoding round-trips float64 bit patterns losslessly, which
// is what makes distributed campaigns byte-identical to local ones.
func (c *Client) RunShard(ctx context.Context, req ShardRequest) ([]core.Trial, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("positserve client: encode shard: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/shards", bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("positserve client: shard: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("positserve client: shard: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	trials, err := core.ReadTrialsCSV(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("positserve client: shard response: %w", err)
	}
	return trials, nil
}

// Health probes GET /healthz, returning the server's draining flag.
func (c *Client) Health(ctx context.Context) (draining bool, err error) {
	var h healthBody
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return false, err
	}
	return h.Draining, nil
}
