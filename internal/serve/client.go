package serve

// Client is the typed HTTP client of the positserve API. It exists
// for three callers: the coordinator's dispatcher (shard fan-out and
// worker health probes), worker processes self-registering with their
// coordinator, and external Go programs driving a positserve instance
// (re-exported from the top-level positres package). Every non-2xx
// response is returned as *APIError carrying the service's stable
// error code.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"positres/internal/core"
	"positres/internal/runner"
	"positres/internal/spec"
	"positres/internal/store"
	"positres/internal/wire"
)

// APIError is a positserve error envelope surfaced client-side.
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the stable machine-readable error code ("queue_full",
	// "unknown_format", ...).
	Code string
	// Message is the human-readable error message.
	Message string
	// RetryAfter is the server's Retry-After hint (0 when absent); a
	// 429 submission carries the backpressure-derived wait the server
	// wants before the next attempt.
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("positserve: %d %s: %s", e.Status, e.Code, e.Message)
}

// RetryPolicy configures client-side retries. The zero value disables
// them (every request is a single attempt), which keeps the
// dispatcher's failure accounting and the runner's shard retry loop in
// sole charge of shard re-dispatch. Load generators and interactive
// callers opt in with Client.WithRetry.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per request; values
	// below 2 mean a single attempt (no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff between attempts
	// (default 100ms). The delay doubles per attempt with bounded
	// deterministic jitter; a 429's Retry-After overrides it.
	BaseDelay time.Duration
	// Sleep replaces the context-aware pause in tests; nil uses a
	// timer that aborts when ctx is cancelled.
	Sleep func(ctx context.Context, d time.Duration) error
}

// maxRetryAfterHonor caps how long the client will obediently wait on
// a server's Retry-After before trying again — matching the runner's
// 30s backoff ceiling, and defending against a bogus huge hint.
const maxRetryAfterHonor = 30 * time.Second

// Client talks to one positserve instance. The zero value is not
// usable; construct with NewClient. Safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
}

// NewClient returns a Client for the server at baseURL (scheme +
// host, e.g. "http://127.0.0.1:8080"). A nil httpClient uses a
// dedicated client with a 2-minute timeout — long enough for shard
// computation, short enough to notice a hung worker. The client does
// not retry; see WithRetry.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 2 * time.Minute}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// WithRetry returns a copy of the client that retries idempotent
// requests (GETs, worker registration, inject queries) on transport
// errors and 5xx answers, and retries 429 rejections for any method —
// a queue_full submission creates no job, so resubmitting cannot
// duplicate work — honoring the server's Retry-After. RunShard is
// deliberately not retried here: the runner's watchdog-and-backoff
// loop owns shard retries, and double-retrying would stack budgets.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cp := *c
	cp.retry = p
	return &cp
}

// BaseURL returns the server address the client targets.
func (c *Client) BaseURL() string { return c.base }

// attempts returns the per-request attempt budget.
func (c *Client) attempts() int {
	if c.retry.MaxAttempts > 1 {
		return c.retry.MaxAttempts
	}
	return 1
}

// retryable reports whether err warrants another attempt. Transport
// errors and 5xx envelopes are retryable only for idempotent requests;
// 429 is retryable for every method (the request was rejected before
// any state changed).
func retryable(err error, idempotent bool) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusTooManyRequests {
			return true
		}
		return idempotent && ae.Status >= 500
	}
	return idempotent // transport-level failure; nothing reached the server intact
}

// pause sleeps before the next attempt: the server's Retry-After when
// the error carries one (capped), else jittered exponential backoff
// keyed on the request so concurrent retriers spread out.
func (c *Client) pause(ctx context.Context, key string, attempt int, cause error) error {
	d := runner.JitteredBackoff(c.retry.BaseDelay, attempt, key)
	if c.retry.BaseDelay <= 0 {
		d = runner.JitteredBackoff(100*time.Millisecond, attempt, key)
	}
	var ae *APIError
	if errors.As(cause, &ae) && ae.RetryAfter > 0 {
		d = ae.RetryAfter
		if d > maxRetryAfterHonor {
			d = maxRetryAfterHonor
		}
	}
	if c.retry.Sleep != nil {
		return c.retry.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do issues one request — retrying per the client's policy — and
// decodes either the expected JSON body into out (when non-nil) or
// the error envelope into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out interface{}, idempotent bool) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return fmt.Errorf("positserve client: encode %s %s: %w", method, path, err)
		}
	}
	attempts := c.attempts()
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, raw, out)
		if err == nil || attempt >= attempts || !retryable(err, idempotent) {
			return err
		}
		if serr := c.pause(ctx, method+" "+path, attempt, err); serr != nil {
			return err // context died mid-backoff; the last real error explains more
		}
	}
}

// doOnce issues exactly one attempt of a JSON request.
func (c *Client) doOnce(ctx context.Context, method, path string, raw []byte, out interface{}) error {
	var rd io.Reader
	if raw != nil {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("positserve client: %s %s: %w", method, path, err)
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("positserve client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("positserve client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// decodeAPIError turns a non-2xx response into an *APIError,
// degrading gracefully when the body is not the JSON envelope.
func decodeAPIError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	var env errorBody
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
		ae.Code = codeInternal
		ae.Message = strings.TrimSpace(string(raw))
		return ae
	}
	ae.Code = env.Error.Code
	ae.Message = env.Error.Message
	return ae
}

// SubmitCampaign submits a campaign (POST /v1/campaigns) and returns
// the queued job's status. When wait is true the call blocks until
// the campaign reaches a terminal state (?wait=1). Under a retry
// policy only 429 rejections are retried — a submission that reached
// the queue must not be duplicated.
func (c *Client) SubmitCampaign(ctx context.Context, cs *spec.CampaignSpec, wait bool) (*CampaignStatus, error) {
	path := "/v1/campaigns"
	if wait {
		path += "?wait=1"
	}
	var st CampaignStatus
	if err := c.do(ctx, http.MethodPost, path, cs, &st, false); err != nil {
		return nil, err
	}
	return &st, nil
}

// CampaignStatus polls one campaign (GET /v1/campaigns/{id}).
func (c *Client) CampaignStatus(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Inject runs one synchronous what-if flip (POST /v1/inject). The
// query is pure, so it retries like a GET under a retry policy.
func (c *Client) Inject(ctx context.Context, req InjectRequest) (*InjectResponse, error) {
	var resp InjectResponse
	if err := c.do(ctx, http.MethodPost, "/v1/inject", req, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CampaignResult streams one published result CSV
// (GET /v1/campaigns/{id}/results) into w. Failed attempts are
// retried (under a retry policy) only while nothing has been written
// to w; once the copy starts, a mid-stream error is final — the
// caller owns w and a blind rewrite could interleave two bodies.
func (c *Client) CampaignResult(ctx context.Context, id, field, format string, w io.Writer) error {
	path := fmt.Sprintf("/v1/campaigns/%s/results?field=%s&format=%s", id, field, format)
	attempts := c.attempts()
	for attempt := 1; ; attempt++ {
		n, err := c.resultOnce(ctx, path, w)
		if err == nil || n > 0 || attempt >= attempts || !retryable(err, true) {
			return err
		}
		if serr := c.pause(ctx, "GET "+path, attempt, err); serr != nil {
			return err
		}
	}
}

// resultOnce is one attempt of CampaignResult, reporting how many
// body bytes reached w.
func (c *Client) resultOnce(ctx context.Context, path string, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, fmt.Errorf("positserve client: results: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, fmt.Errorf("positserve client: results: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeAPIError(resp)
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		return n, fmt.Errorf("positserve client: results: %w", err)
	}
	return n, nil
}

// FetchAggregate fetches one published result's per-bit aggregate
// summary (GET /v1/campaigns/{id}/results with Accept:
// application/json) as a validated positres-aggregate/v1 document.
// The transfer is O(bits) regardless of campaign size — the server
// answers from the store footer, never rescanning trials. A campaign
// published by a pre-store server has no aggregates; the server
// answers 409 not_ready and that surfaces here as an *APIError.
// Retries follow the client's policy, like any GET.
func (c *Client) FetchAggregate(ctx context.Context, id, field, format string) (*store.AggregateDoc, error) {
	path := fmt.Sprintf("/v1/campaigns/%s/results?field=%s&format=%s", id, field, format)
	attempts := c.attempts()
	for attempt := 1; ; attempt++ {
		doc, err := c.aggregateOnce(ctx, path)
		if err == nil || attempt >= attempts || !retryable(err, true) {
			return doc, err
		}
		if serr := c.pause(ctx, "GET "+path, attempt, err); serr != nil {
			return nil, err
		}
	}
}

// aggregateOnce is one attempt of FetchAggregate. The Content-Type
// switch mirrors RunShardStats: only a JSON answer is parsed as an
// aggregate document; anything else (an old server ignoring Accept
// and streaming CSV) is an explicit error, never misparsed data.
func (c *Client) aggregateOnce(ctx context.Context, path string) (*store.AggregateDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("positserve client: aggregate: %w", err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("positserve client: aggregate: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		return nil, fmt.Errorf("positserve client: aggregate: server answered %q, not application/json (pre-negotiation server?)", ct)
	}
	doc, err := store.ReadDoc(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("positserve client: aggregate: %w", err)
	}
	return doc, nil
}

// RegisterWorker announces a worker to a coordinator
// (POST /v1/workers). Registration is idempotent, so a retry policy
// applies in full.
func (c *Client) RegisterWorker(ctx context.Context, workerURL string) error {
	return c.do(ctx, http.MethodPost, "/v1/workers", workerRegistration{URL: workerURL}, nil, true)
}

// ShardWireStats describes how one shard response travelled — the
// observability sidecar of RunShardStats, feeding the coordinator's
// wire_frames / wire_bytes / wire_csv_fallbacks counters on /metrics.
type ShardWireStats struct {
	// Binary reports that the response was a packed trial frame
	// (internal/wire); false means the worker fell back to CSV.
	Binary bool
	// BodyBytes is the response body size in bytes.
	BodyBytes int64
}

// RunShard executes one shard on a worker (POST /v1/shards). It is
// RunShardStats without the transport telemetry — the form external
// callers (the positres facade) use.
func (c *Client) RunShard(ctx context.Context, req ShardRequest) ([]core.Trial, error) {
	trials, _, err := c.RunShardStats(ctx, req)
	return trials, err
}

// RunShardStats executes one shard on a worker (POST /v1/shards) and
// parses the trial stream it returns, reporting how the response
// travelled. The client offers the packed binary trial encoding
// (docs/WIRE.md) in Accept; a worker that speaks it answers with a
// self-verifying frame, and any other worker streams text/csv exactly
// as before — the trials are bit-identical either way, since both
// encodings round-trip float64 patterns losslessly. That fallback is
// the whole version-negotiation story: a mixed fleet degrades to CSV
// per worker, never to wrong data.
//
// Two hardening measures guard the hop. The caller's context deadline
// (the runner's shard watchdog) is forwarded in X-Positres-Deadline-Ms
// so the worker abandons computation when the coordinator has already
// given up. And every response is verified before any trial is
// returned — a binary frame through its length prefix, internal
// CRC-32 and the X-Positres-Rows cross-check; a CSV body through the
// X-Positres-Rows count and X-Positres-Crc32 trailer — so a
// truncated or corrupted body is an error (and therefore a retryable
// shard failure at the runner), never silently merged data.
// RunShardStats itself never retries; the runner owns shard retry.
func (c *Client) RunShardStats(ctx context.Context, req ShardRequest) ([]core.Trial, ShardWireStats, error) {
	var stats ShardWireStats
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, stats, fmt.Errorf("positserve client: encode shard: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/shards", bytes.NewReader(raw))
	if err != nil {
		return nil, stats, fmt.Errorf("positserve client: shard: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", wire.ContentType+", text/csv")
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			hreq.Header.Set(headerShardDeadline, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, stats, fmt.Errorf("positserve client: shard: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, stats, decodeAPIError(resp)
	}

	if ct := resp.Header.Get("Content-Type"); strings.HasPrefix(ct, wire.ContentType) {
		stats.Binary = true
		trials, n, err := wire.ReadFrame(resp.Body)
		stats.BodyBytes = int64(n)
		if err != nil {
			return nil, stats, fmt.Errorf("positserve client: shard frame: %w", err)
		}
		if rowsHdr := resp.Header.Get(headerShardRows); rowsHdr != "" {
			wantRows, aerr := strconv.Atoi(rowsHdr)
			if aerr != nil {
				return nil, stats, fmt.Errorf("positserve client: shard rows header %q: %w", rowsHdr, aerr)
			}
			if len(trials) != wantRows {
				return nil, stats, fmt.Errorf("positserve client: shard frame carries %d rows, header announces %d", len(trials), wantRows)
			}
		}
		return trials, stats, nil
	}

	crc := crc32.NewIEEE()
	counted := &countingReader{r: io.TeeReader(resp.Body, crc)}
	trials, err := core.ReadTrialsCSV(counted)
	if err != nil {
		stats.BodyBytes = counted.n
		return nil, stats, fmt.Errorf("positserve client: shard response: %w", err)
	}
	if rowsHdr := resp.Header.Get(headerShardRows); rowsHdr != "" {
		if err := verifyShardIntegrity(resp, crc, rowsHdr, len(trials), counted); err != nil {
			stats.BodyBytes = counted.n
			return nil, stats, err
		}
	}
	stats.BodyBytes = counted.n
	return trials, stats, nil
}

// countingReader counts the bytes its reads deliver.
type countingReader struct {
	r io.Reader
	n int64
}

// Read implements io.Reader.
func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// verifyShardIntegrity checks a shard response against its integrity
// envelope: announced row count, and the CRC-32 trailer over the exact
// body bytes. A missing trailer means the body was cut before its end
// (truncation strips trailers), so it fails too.
func verifyShardIntegrity(resp *http.Response, crc interface{ Sum32() uint32 }, rowsHdr string, gotRows int, body io.Reader) error {
	wantRows, err := strconv.Atoi(rowsHdr)
	if err != nil {
		return fmt.Errorf("positserve client: shard rows header %q: %w", rowsHdr, err)
	}
	if gotRows != wantRows {
		return fmt.Errorf("positserve client: shard truncated: %d of %d announced rows", gotRows, wantRows)
	}
	// Drain any bytes past the last CSV record so the CRC covers the
	// whole body and the transport surfaces the trailer.
	if _, err := io.Copy(io.Discard, body); err != nil {
		return fmt.Errorf("positserve client: shard drain: %w", err)
	}
	want := resp.Trailer.Get(trailerShardCRC)
	if want == "" {
		return fmt.Errorf("positserve client: shard integrity trailer missing (body truncated in transit)")
	}
	if got := fmt.Sprintf("%08x", crc.Sum32()); got != strings.ToLower(want) {
		return fmt.Errorf("positserve client: shard CSV corrupted: crc32 %s, announced %s", got, want)
	}
	return nil
}

// Health probes GET /healthz, returning the server's draining flag.
func (c *Client) Health(ctx context.Context) (draining bool, err error) {
	var h healthBody
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h, true); err != nil {
		return false, err
	}
	return h.Draining, nil
}
