package serve

// Tests for the resiliency hardening: client retry policy with
// Retry-After honor, the shard CSV integrity envelope (rows header +
// CRC trailer), coordinator→worker deadline propagation, and the
// derived Retry-After backpressure hint. The headline test proves the
// acceptance criterion of the chaos harness: a corrupted or truncated
// worker response is retried and NEVER merged into the journal — the
// final CSVs stay byte-identical to a clean run.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"positres/internal/chaos"
	"positres/internal/spec"
)

// noSleep is a RetryPolicy.Sleep that records requested delays and
// returns immediately, keeping retry tests fast.
func noSleep(slept *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
}

func TestClientRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusInternalServerError, codeInternal, "transient blip")
			return
		}
		writeJSON(w, http.StatusOK, healthBody{Status: "ok"})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := NewClient(ts.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 4, Sleep: noSleep(&slept)})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retrying client failed through a transient 5xx: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2", len(slept))
	}

	// The default client stays single-attempt: the dispatcher's failure
	// accounting depends on seeing every error.
	calls.Store(0)
	if _, err := NewClient(ts.URL, nil).Health(context.Background()); err == nil {
		t.Fatal("non-retrying client swallowed a 5xx")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("non-retrying client made %d calls, want 1", got)
	}
}

func TestClientHonorsRetryAfterOn429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			writeError(w, http.StatusTooManyRequests, codeQueueFull, "queue is full")
			return
		}
		writeJSON(w, http.StatusAccepted, CampaignStatus{ID: "0123456789abcdef", State: jobQueued})
	}))
	defer ts.Close()

	var slept []time.Duration
	c := NewClient(ts.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 3, Sleep: noSleep(&slept)})
	cs := &spec.CampaignSpec{Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit8"}, N: 256, TrialsPerBit: 2, Seed: 7}
	st, err := c.SubmitCampaign(context.Background(), cs, false)
	if err != nil {
		t.Fatalf("submission not retried after 429: %v", err)
	}
	if st.ID == "" {
		t.Error("empty status after retried submission")
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Errorf("slept %v, want exactly the server's 7s Retry-After", slept)
	}
}

func TestClientDoesNotRetryNonIdempotent5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusInternalServerError, codeInternal, "boom")
	}))
	defer ts.Close()

	var slept []time.Duration
	c := NewClient(ts.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 3, Sleep: noSleep(&slept)})
	cs := &spec.CampaignSpec{Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit8"}}
	if _, err := c.SubmitCampaign(context.Background(), cs, false); err == nil {
		t.Fatal("5xx submission reported success")
	}
	// A 500 on POST /v1/campaigns may or may not have enqueued the job
	// server-side; resubmitting could run the campaign twice.
	if got := calls.Load(); got != 1 {
		t.Errorf("non-idempotent request retried: %d calls, want 1", got)
	}
}

func TestClientInject(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bit := 6
	val := 1.0
	resp, err := NewClient(ts.URL, nil).Inject(context.Background(),
		InjectRequest{Format: "posit8", Value: &val, Bit: &bit})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OrigBits != HexBits(0x40) || resp.FaultyBits != HexBits(0) || resp.BitField != "regime" {
		t.Errorf("inject answer %+v, want 0x40 -> 0x0 regime flip", resp)
	}
}

// shardReq is a worker shard request big enough (~250 KB of CSV) that
// every chaos body fault lands inside the payload.
func shardReq() ShardRequest {
	return ShardRequest{
		Spec: spec.CampaignSpec{
			Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit8"},
			N: 256, TrialsPerBit: 313, Seed: 7,
		},
		BitLo: 0, BitHi: 8,
	}
}

func TestRunShardIntegrityThroughCleanProxy(t *testing.T) {
	_, worker := newTestServer(t, Config{})
	ctx := context.Background()
	want, err := NewClient(worker.URL, nil).RunShard(ctx, shardReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("baseline shard returned no trials")
	}

	// A transparent chaos proxy must not trip the integrity check: the
	// CRC trailer survives the hop via TrailerPrefix re-emission.
	p, err := chaos.New(worker.URL, chaos.Faults{}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(p)
	defer pts.Close()
	got, err := NewClient(pts.URL, nil).RunShard(ctx, shardReq())
	if err != nil {
		t.Fatalf("clean proxy tripped integrity check: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("trials through proxy = %d, want %d", len(got), len(want))
	}
}

func TestRunShardRejectsCorruptAndTruncatedBodies(t *testing.T) {
	_, worker := newTestServer(t, Config{})
	cases := []struct {
		name   string
		faults chaos.Faults
	}{
		{"corrupt", chaos.Faults{Seed: 7, CorruptP: 1}},
		{"truncate", chaos.Faults{Seed: 7, TruncateP: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := chaos.New(worker.URL, tc.faults, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			pts := httptest.NewServer(p)
			defer pts.Close()
			trials, err := NewClient(pts.URL, nil).RunShard(context.Background(), shardReq())
			if err == nil {
				t.Fatalf("%s body accepted: %d trials merged", tc.name, len(trials))
			}
			t.Logf("rejected as: %v", err)
		})
	}
}

func TestRunShardForwardsDeadline(t *testing.T) {
	var gotMS atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ms, _ := strconv.ParseInt(r.Header.Get(headerShardDeadline), 10, 64)
		gotMS.Store(ms)
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		// Header-only CSV: zero trials, no integrity envelope — the
		// client must stay compatible with servers that predate it.
		if _, err := io.WriteString(w, "field,format,bit,trial\n"); err != nil {
			t.Log(err)
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := NewClient(ts.URL, nil).RunShard(ctx, shardReq()); err != nil {
		// The fake CSV has the wrong column count; only the deadline
		// header matters here.
		t.Logf("shard parse (expected): %v", err)
	}
	if ms := gotMS.Load(); ms <= 0 || ms > 30_000 {
		t.Errorf("worker saw deadline %dms, want in (0, 30000]", ms)
	}
}

// TestCorruptShardRetriedNeverMerged is the acceptance criterion of
// the chaos harness end to end through the real dispatcher and
// runner: a middleman corrupts the FIRST shard response from the
// worker (body byte flipped, original CRC trailer forwarded), the
// coordinator must detect it, retry the shard, and publish a result
// CSV byte-identical to a local, fault-free run.
func TestCorruptShardRetriedNeverMerged(t *testing.T) {
	_, worker := newTestServer(t, Config{})

	var shardCalls, corrupted atomic.Int32
	middleman := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inBody, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("middleman read: %v", err)
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			worker.URL+r.URL.RequestURI(), bytes.NewReader(inBody))
		if err != nil {
			t.Errorf("middleman request: %v", err)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Log(cerr)
		}
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		for k, vv := range resp.Header {
			if strings.EqualFold(k, "Trailer") || strings.EqualFold(k, "Transfer-Encoding") {
				continue
			}
			for _, v := range vv {
				w.Header().Add(k, v)
			}
		}
		if r.URL.Path == "/v1/shards" && shardCalls.Add(1) == 1 && len(body) > 64 {
			body[64] ^= 0x20 // flip one byte; the CRC trailer below still
			corrupted.Add(1) // announces the clean body's checksum
		}
		w.WriteHeader(resp.StatusCode)
		if _, err := w.Write(body); err != nil {
			t.Logf("middleman write: %v", err)
			return
		}
		for k, vv := range resp.Trailer {
			for _, v := range vv {
				w.Header().Add(http.TrailerPrefix+k, v)
			}
		}
	}))
	defer middleman.Close()

	// Coordinator dispatching every shard through the middleman.
	_, coord := newTestServer(t, Config{Workers: []string{middleman.URL}})
	cs := &spec.CampaignSpec{Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit8"}, N: 256, TrialsPerBit: 2, Seed: 7}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	coordClient := NewClient(coord.URL, nil)
	st, err := coordClient.SubmitCampaign(ctx, cs, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobComplete {
		t.Fatalf("campaign state = %s (%s), want complete", st.State, st.Error)
	}
	if corrupted.Load() != 1 {
		t.Fatalf("middleman corrupted %d responses, want exactly 1", corrupted.Load())
	}
	if shardCalls.Load() < 2 {
		t.Fatalf("worker saw %d shard calls, want >= 2 (corrupt attempt + retry)", shardCalls.Load())
	}

	// The published CSV must be byte-identical to a fault-free local
	// run of the same campaign — the corrupted body never reached the
	// journal.
	_, local := newTestServer(t, Config{})
	lst, err := NewClient(local.URL, nil).SubmitCampaign(ctx, cs, true)
	if err != nil {
		t.Fatal(err)
	}
	var gotCSV, wantCSV bytes.Buffer
	if err := coordClient.CampaignResult(ctx, st.ID, "CESM/CLOUD", "posit8", &gotCSV); err != nil {
		t.Fatal(err)
	}
	if err := NewClient(local.URL, nil).CampaignResult(ctx, lst.ID, "CESM/CLOUD", "posit8", &wantCSV); err != nil {
		t.Fatal(err)
	}
	if gotCSV.Len() == 0 || !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Fatalf("distributed CSV (%d bytes) differs from local baseline (%d bytes)",
			gotCSV.Len(), wantCSV.Len())
	}
}

func TestDeriveRetryAfter(t *testing.T) {
	cases := []struct {
		queued, depth, want int
	}{
		{0, 64, 1},    // empty queue: come right back
		{1, 64, 1},    // nearly empty
		{32, 64, 7},   // half full: ~half the saturated wait
		{64, 64, 15},  // saturated
		{1, 1, 15},    // tiny queue saturates immediately
		{200, 64, 30}, // recovered backlog beyond depth: capped
		{5, 0, 1},     // defensive: no configured depth
	}
	for _, c := range cases {
		if got := deriveRetryAfter(c.queued, c.depth); got != c.want {
			t.Errorf("deriveRetryAfter(%d, %d) = %d, want %d", c.queued, c.depth, got, c.want)
		}
	}
}

func TestBackpressureMetricsAndDerivedRetryAfter(t *testing.T) {
	// No Start: nothing drains the queue, so depth 2 fills after two
	// submissions and the third is rejected with the derived hint.
	srv, err := New(Config{DataDir: t.TempDir(), QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if resp := postJSON(t, ts.URL+"/v1/campaigns", tinyCampaign, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/campaigns", tinyCampaign, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After %q, want an integer in [1, 30]", resp.Header.Get("Retry-After"))
	}
	if want := deriveRetryAfter(2, 2); ra != want {
		t.Errorf("Retry-After = %d, want derived %d for a saturated depth-2 queue", ra, want)
	}

	var m struct {
		Backpressure backpressure `json:"backpressure"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	bp := m.Backpressure
	if bp.Queued != 2 || bp.QueueDepth != 2 || bp.Rejected != 1 || bp.RetryAfterSeconds != ra {
		t.Errorf("backpressure = %+v, want queued 2/2, rejected 1, retry_after %d", bp, ra)
	}
}
