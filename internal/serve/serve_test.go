package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"positres/internal/spec"
	"positres/internal/store"
)

// tinyCampaign is a sub-second campaign body used across tests.
const tinyCampaign = `{"fields":["CESM/CLOUD"],"formats":["posit8"],"n":256,"trials_per_bit":2,"seed":7}`

// newTestServer builds a started Server over a httptest listener; the
// cleanup drains workers before the temp dir is removed.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		srv.Wait()
	})
	return srv, ts
}

// postJSON posts body and decodes the JSON response into out (unless
// out is nil), returning the raw response.
func postJSON(t *testing.T, url, body string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp
}

func TestInjectEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// posit8 1.0 encodes as 0x40; flipping bit 6 (the regime MSB)
	// lands on 0x00 = zero, so rel_err is exactly 1.
	var got map[string]interface{}
	resp := postJSON(t, ts.URL+"/v1/inject", `{"format":"posit8","value":1.0,"bit":6}`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", resp.StatusCode, got)
	}
	want := map[string]interface{}{
		"orig_bits":    "0x40",
		"faulty_bits":  "0x0",
		"faulty_value": 0.0,
		"rel_err":      1.0,
		"bit_field":    "regime",
		"cached":       false,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}

	// Same (format, pattern, bit) triple via the pattern form must hit
	// the LRU now.
	got = nil
	postJSON(t, ts.URL+"/v1/inject", `{"format":"posit8","pattern":"0x40","bit":6}`, &got)
	if got["cached"] != true {
		t.Errorf("second query cached = %v, want true", got["cached"])
	}
	if got["orig_value"] != 1.0 {
		t.Errorf("pattern-form orig_value = %v, want 1 (decoded)", got["orig_value"])
	}
}

func TestInjectNonFiniteAsStrings(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// ieee32 1.0 with its exponent MSB (bit 30) flipped becomes
	// 2^128 = +Inf in float32: catastrophic, and the JSON must carry
	// the string "+Inf", not a broken number.
	var got map[string]interface{}
	resp := postJSON(t, ts.URL+"/v1/inject", `{"format":"ieee32","value":1.0,"bit":30}`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", resp.StatusCode, got)
	}
	if got["faulty_value"] != "+Inf" {
		t.Errorf("faulty_value = %v, want \"+Inf\"", got["faulty_value"])
	}
	if got["catastrophic"] != true {
		t.Errorf("catastrophic = %v, want true", got["catastrophic"])
	}
}

func TestInjectValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, code string
	}{
		{"bad json", `{`, "bad_request"},
		{"unknown field in body", `{"format":"posit8","value":1,"bit":0,"x":1}`, "bad_request"},
		{"unknown format", `{"format":"posit7","value":1,"bit":0}`, "unknown_format"},
		{"missing bit", `{"format":"posit8","value":1}`, "bad_request"},
		{"bit out of range", `{"format":"posit8","value":1,"bit":8}`, "bad_request"},
		{"neither value nor pattern", `{"format":"posit8","bit":0}`, "bad_request"},
		{"both value and pattern", `{"format":"posit8","value":1,"pattern":"0x40","bit":0}`, "bad_request"},
		{"unparseable pattern", `{"format":"posit8","pattern":"zz","bit":0}`, "bad_request"},
		{"pattern too wide", `{"format":"posit8","pattern":"0x140","bit":0}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env struct {
				Error struct{ Code, Message string }
			}
			resp := postJSON(t, ts.URL+"/v1/inject", tc.body, &env)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code = %q, want %q (%s)", env.Error.Code, tc.code, env.Error.Message)
			}
		})
	}
}

func TestErrorsAreJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Unknown route → JSON 404.
	var env struct {
		Error struct{ Code string }
	}
	resp := getJSON(t, ts.URL+"/nope", &env)
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
		t.Errorf("unrouted: status %d code %q, want 404 not_found", resp.StatusCode, env.Error.Code)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("unrouted Content-Type = %q", ct)
	}

	// Wrong verb on a real route → JSON 405 with Allow.
	env.Error.Code = ""
	resp = getJSON(t, ts.URL+"/v1/inject", &env)
	if resp.StatusCode != http.StatusMethodNotAllowed || env.Error.Code != "method_not_allowed" {
		t.Errorf("verb mismatch: status %d code %q, want 405 method_not_allowed", resp.StatusCode, env.Error.Code)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Errorf("Allow = %q, want POST", allow)
	}

	// Unknown campaign id → JSON 404.
	env.Error.Code = ""
	resp = getJSON(t, ts.URL+"/v1/campaigns/0123456789abcdef", &env)
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != "not_found" {
		t.Errorf("unknown id: status %d code %q, want 404 not_found", resp.StatusCode, env.Error.Code)
	}
}

func TestCampaignLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var st CampaignStatus
	resp := postJSON(t, ts.URL+"/v1/campaigns?wait=1", tinyCampaign, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d, want 200 (%+v)", resp.StatusCode, st)
	}
	if st.State != "complete" {
		t.Fatalf("state = %q, want complete (error: %s)", st.State, st.Error)
	}
	if st.Shards.Done != 1 || st.Shards.Total != 1 {
		t.Errorf("shards = %+v, want 1/1 done", st.Shards)
	}
	if st.Request.TrialsPerBit != 2 || st.Request.N != 256 || st.Request.BitsPerShard != 8 {
		t.Errorf("normalized request = %+v", st.Request)
	}
	if len(st.Results) != 1 {
		t.Fatalf("results = %+v, want one", st.Results)
	}

	// Status resource agrees.
	var st2 CampaignStatus
	getJSON(t, ts.URL+st.StatusURL, &st2)
	if st2.State != "complete" || st2.ID != st.ID {
		t.Errorf("status = %+v", st2)
	}

	// The CSV streams with the campaign schema header and one row per
	// (bit, trial): 8 bits × 2 trials.
	csvResp, err := http.Get(ts.URL + st.Results[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := csvResp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	body, err := io.ReadAll(csvResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := csvResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("results Content-Type = %q", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) != 1+8*2 {
		t.Errorf("CSV rows = %d, want header + 16", len(lines))
	}
	if !bytes.HasPrefix(lines[0], []byte("field,codec,")) {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestResultsNotReady(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	j, verr := srv.jobs.submit(spec.CampaignSpec{Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit8"}, N: 256, TrialsPerBit: 2})
	if verr != nil {
		t.Fatal(verr)
	}
	// Results may race completion; accept 409 not_ready or, if the
	// tiny job already finished, 200. Either way it must be well-formed.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + j.id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Error(err)
	}
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 409 or 200", resp.StatusCode)
	}
}

func TestBackpressure(t *testing.T) {
	// No Start: nothing drains the queue, so depth 1 fills after one
	// submission and the second gets 429 + Retry-After.
	srv, err := New(Config{DataDir: t.TempDir(), QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/campaigns", tinyCampaign, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	var env struct {
		Error struct{ Code string }
	}
	resp = postJSON(t, ts.URL+"/v1/campaigns", tinyCampaign, &env)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	if env.Error.Code != "queue_full" {
		t.Errorf("code = %q, want queue_full", env.Error.Code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, code string
	}{
		{"no fields", `{"formats":["posit8"]}`, "bad_request"},
		{"no formats", `{"fields":["CESM/CLOUD"]}`, "bad_request"},
		{"unknown field", `{"fields":["CESM/NOPE"],"formats":["posit8"]}`, "unknown_field"},
		{"unknown format", `{"fields":["CESM/CLOUD"],"formats":["posit7"]}`, "unknown_format"},
		{"duplicate pair", `{"fields":["CESM/CLOUD"],"formats":["posit8","posit8"]}`, "bad_request"},
		{"bad timeout", `{"fields":["CESM/CLOUD"],"formats":["posit8"],"shard_timeout":"fast"}`, "bad_request"},
		{"negative trials", `{"fields":["CESM/CLOUD"],"formats":["posit8"],"trials_per_bit":-1}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env struct {
				Error struct{ Code, Message string }
			}
			resp := postJSON(t, ts.URL+"/v1/campaigns", tc.body, &env)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code = %q, want %q (%s)", env.Error.Code, tc.code, env.Error.Message)
			}
		})
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/inject", `{"format":"posit16","value":3.5,"bit":3}`, nil)
	var st CampaignStatus
	postJSON(t, ts.URL+"/v1/campaigns?wait=1", tinyCampaign, &st)

	var m struct {
		Campaign struct {
			Schema     string `json:"schema"`
			Injections int64  `json:"injections"`
		} `json:"campaign"`
		HTTP struct {
			Endpoints map[string]struct {
				Requests int64 `json:"requests"`
			} `json:"endpoints"`
		} `json:"http"`
		Jobs        map[string]int `json:"jobs"`
		InjectCache cacheStats     `json:"inject_cache"`
	}
	resp := getJSON(t, ts.URL+"/metrics", &m)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if m.Campaign.Schema != "positres-telemetry/v1" {
		t.Errorf("campaign schema = %q", m.Campaign.Schema)
	}
	if m.Campaign.Injections != 16 {
		t.Errorf("injections = %d, want 16 from the wait campaign", m.Campaign.Injections)
	}
	if ep, ok := m.HTTP.Endpoints["POST /v1/inject"]; !ok || ep.Requests != 1 {
		t.Errorf("http endpoints = %+v, want POST /v1/inject ×1", m.HTTP.Endpoints)
	}
	if m.Jobs["complete"] != 1 {
		t.Errorf("jobs = %v, want complete:1", m.Jobs)
	}
	if m.InjectCache.Misses == 0 {
		t.Errorf("inject cache stats = %+v, want a recorded miss", m.InjectCache)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h healthBody
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Draining {
		t.Errorf("healthz = %d %+v", resp.StatusCode, h)
	}
}

func TestDrainRejectsSubmissions(t *testing.T) {
	srv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	cancel()
	srv.Wait()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var env struct {
		Error struct{ Code string }
	}
	resp := postJSON(t, ts.URL+"/v1/campaigns", tinyCampaign, &env)
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "draining" {
		t.Errorf("submit during drain = %d %q, want 503 draining", resp.StatusCode, env.Error.Code)
	}
	var h healthBody
	getJSON(t, ts.URL+"/healthz", &h)
	if !h.Draining {
		t.Error("healthz.draining = false during drain")
	}
}

// TestRecovery pins the restart story end to end in-process: a
// completed job survives as terminal state; a job whose CSVs were
// lost after the manifest completed is re-enqueued on construction
// and republishes byte-identical results from the journal.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()

	// First server: run one campaign to completion and keep its CSV.
	srv1, ts1 := newTestServer(t, Config{DataDir: dir})
	var st CampaignStatus
	resp := postJSON(t, ts1.URL+"/v1/campaigns?wait=1", tinyCampaign, &st)
	if resp.StatusCode != http.StatusOK || st.State != "complete" {
		t.Fatalf("seed campaign: %d %+v", resp.StatusCode, st)
	}
	csv1 := fetchCSV(t, ts1.URL+st.Results[0].URL)
	_ = srv1

	// Second server on the same data dir, before any Start: the job
	// must already be terminal-complete with its result listed.
	srv2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j2, ok := srv2.jobs.get(st.ID)
	if !ok {
		t.Fatal("job not recovered")
	}
	if got := statusOf(j2); got.State != "complete" || len(got.Results) != 1 {
		t.Fatalf("recovered terminal job = %+v", got)
	}

	// Delete the published store (simulating a crash between manifest
	// completion and publication): a third server must re-enqueue the
	// job, replay the journal, and republish identical bytes.
	jobDir := filepath.Join(dir, "jobs", st.ID)
	if err := os.Remove(filepath.Join(jobDir, store.FileName("CESM/CLOUD", "posit8"))); err != nil {
		t.Fatal(err)
	}
	srv3, ts3 := newTestServer(t, Config{DataDir: dir})
	waitForState(t, srv3, st.ID, "complete")
	j3, _ := srv3.jobs.get(st.ID)
	got := statusOf(j3)
	if got.Shards.Resumed != 1 {
		t.Errorf("recovered shards = %+v, want 1 resumed (journal replay, not recompute)", got.Shards)
	}
	csv3 := fetchCSV(t, ts3.URL+got.Results[0].URL)
	if !bytes.Equal(csv1, csv3) {
		t.Error("republished CSV differs from the original run")
	}
}

// fetchCSV downloads a results URL, failing the test on any error.
func fetchCSV(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// waitForState polls a job until it reaches want (or the deadline).
func waitForState(t *testing.T, srv *Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := srv.jobs.get(id)
		if !ok {
			t.Fatalf("job %s not present", id)
		}
		st := statusOf(j)
		switch st.State {
		case want:
			return
		case "failed":
			t.Fatalf("job failed: %s", st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
}

func TestValidJobID(t *testing.T) {
	cases := map[string]bool{
		"0123456789abcdef": true,
		"0123456789ABCDEF": false, // upper case never generated
		"..":               false,
		"":                 false,
		"0123456789abcde":  false, // short
		"0123456789abcdeg": false, // non-hex
	}
	for id, want := range cases {
		if got := validJobID(id); got != want {
			t.Errorf("validJobID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := newInjectCache(2)
	k := func(i int) cacheKey { return cacheKey{format: "posit8", pattern: uint64(i), bit: 0} }
	c.put(k(1), flipInfo{regimeK: 1})
	c.put(k(2), flipInfo{regimeK: 2})
	if _, ok := c.get(k(1)); !ok { // touch 1 → 2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.put(k(3), flipInfo{regimeK: 3}) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 survived eviction")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("k1 evicted out of LRU order")
	}
	st := c.stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestShardsTotalMultiFormat(t *testing.T) {
	req := spec.CampaignSpec{Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit16", "ieee32"}, BitsPerShard: 4}
	if verr := (&req).Validate(); verr != nil {
		t.Fatal(verr)
	}
	if shards := req.TotalShards(); shards != 4+8 { // 16/4 + 32/4
		t.Errorf("shards = %d, want 12", shards)
	}
}

func TestJSONFloatAndHexBits(t *testing.T) {
	type payload struct {
		A JSONFloat `json:"a"`
		B JSONFloat `json:"b"`
		C JSONFloat `json:"c"`
		D JSONFloat `json:"d"`
		E HexBits   `json:"e"`
	}
	in := payload{JSONFloat(inf()), JSONFloat(-inf()), JSONFloat(nan()), 1.5, HexBits(0xdeadbeefcafef00d)}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":"+Inf","b":"-Inf","c":"NaN","d":1.5,"e":"0xdeadbeefcafef00d"}`
	if string(raw) != want {
		t.Errorf("got %s, want %s", raw, want)
	}
	// Round trip: unmarshal then re-marshal reproduces the exact JSON,
	// non-finites included (string compare sidesteps float equality).
	var out payload
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != want {
		t.Errorf("round trip drifted: %s, want %s", again, want)
	}
}

func inf() float64 { return mustParse("+Inf") }
func nan() float64 { return mustParse("NaN") }

// mustParse builds non-finite floats without math imports tripping
// float comparison lint rules in test tables.
func mustParse(s string) float64 {
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
		panic(err)
	}
	return f
}
