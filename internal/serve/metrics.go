package serve

// GET /metrics — one JSON document combining the campaign engine's
// positres-telemetry/v1 snapshot (the same schema cmd/positcampaign
// writes with -telemetry-out, so existing tooling parses it
// unchanged), per-endpoint HTTP counters and latency histograms, job
// tallies by state, and inject-cache occupancy.

import (
	"net/http"

	"positres/internal/store"
	"positres/internal/telemetry"
)

// campaignAggregates pairs a running campaign with the live per-spec
// aggregate documents its trial store maintains at append time.
type campaignAggregates struct {
	// ID is the campaign id.
	ID string `json:"id"`
	// Aggregates holds one unsealed positres-aggregate/v1 document per
	// (field, format) spec the campaign has started writing.
	Aggregates []*store.AggregateDoc `json:"aggregates"`
}

// metricsResponse is the body of GET /metrics.
type metricsResponse struct {
	// Campaign is the engine snapshot; its "schema" field is
	// telemetry.SnapshotSchema.
	Campaign telemetry.Snapshot `json:"campaign"`
	// HTTP holds per-endpoint request/error counts and log₂ latency
	// histograms.
	HTTP telemetry.HTTPSnapshot `json:"http"`
	// Jobs tallies campaigns by state (queued, running, complete,
	// partial, cancelled, failed). Absent states are omitted.
	Jobs map[string]int `json:"jobs"`
	// InjectCache reports /v1/inject LRU occupancy and hit rates.
	InjectCache cacheStats `json:"inject_cache"`
	// Backpressure reports campaign-queue occupancy, the 429 rejection
	// count, and the Retry-After the next rejection would carry.
	Backpressure backpressure `json:"backpressure"`
	// Cluster holds per-worker dispatch tallies, heartbeat latency
	// histograms and the reassignment count. Omitted entirely in
	// single-node operation (no workers ever registered).
	Cluster *telemetry.ClusterSnapshot `json:"cluster,omitempty"`
	// CampaignAggregates holds the live per-bit aggregate summaries of
	// every running campaign, straight from the trial stores' online
	// aggregation — O(specs×bits) per campaign, no trial scan. Omitted
	// when nothing is running.
	CampaignAggregates []campaignAggregates `json:"campaign_aggregates,omitempty"`
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := metricsResponse{
		Campaign:     s.metrics.Snapshot(),
		HTTP:         s.httpMetrics.Snapshot(),
		Jobs:         s.jobs.tallies(),
		InjectCache:  s.cache.stats(),
		Backpressure: s.jobs.pressure(),
	}
	if s.cluster.size() > 0 {
		snap := s.clusterMetrics.Snapshot()
		resp.Cluster = &snap
	}
	resp.CampaignAggregates = s.jobs.liveAggregates()
	writeJSON(w, http.StatusOK, resp)
}

// healthBody is the body of GET /healthz.
type healthBody struct {
	Status   string `json:"status"` // always "ok" while the listener is up
	Draining bool   `json:"draining"`
}

// handleHealthz serves GET /healthz, the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthBody{Status: "ok", Draining: s.jobs.draining()})
}
