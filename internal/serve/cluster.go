package serve

// The coordinator's shard dispatcher. When a positserve instance has
// workers (static -workers flags or live POST /v1/workers
// registrations), every campaign's shards are fanned out over HTTP
// instead of computed locally: the dispatcher plugs into
// runner.Config.Execute, so the runner's existing watchdog, bounded
// retry and exponential backoff drive reassignment — a dead or slow
// worker is indistinguishable from a transient local fault, and the
// shard simply lands on another worker on the next attempt. Because
// workers return byte-exact trials — packed binary frames
// (docs/WIRE.md) from peers that speak them, CSV from ones that don't
// — and the coordinator journals them through the same CRC-guarded
// records a local run uses, the final campaign CSVs are
// byte-identical to a single-node run (TestDistributedEquivalence and
// TestMixedFleetEquivalence pin this).

import (
	"context"
	"fmt"
	"sync"
	"time"

	"positres/internal/core"
	"positres/internal/runner"
	"positres/internal/spec"
	"positres/internal/telemetry"
)

// workerState is the dispatcher's view of one worker. All fields are
// guarded by dispatcher.mu.
type workerState struct {
	url          string
	client       *Client
	busy         int       // in-flight shard dispatches
	fails        int       // consecutive dispatch/heartbeat failures
	backoffUntil time.Time // cooling off after a failure
	down         bool      // 3+ consecutive heartbeat failures
}

// eligible reports whether the worker should receive new shards now.
func (w *workerState) eligible(now time.Time) bool {
	return !w.down && !now.Before(w.backoffUntil)
}

// heartbeatDownThreshold is how many consecutive failed health probes
// mark a worker down (it re-enters rotation on the first success).
const heartbeatDownThreshold = 3

// dispatcher fans campaign shards out to registered workers and keeps
// their health state. All methods are safe for concurrent use.
type dispatcher struct {
	metrics   *telemetry.ClusterMetrics
	heartbeat time.Duration // health-probe period
	retryBase time.Duration // per-worker cooldown base after a failure

	mu      sync.Mutex
	workers map[string]*workerState
	// prevHolder remembers which worker last failed a shard, so the
	// next attempt prefers a different one and the hand-off is counted
	// as a reassignment.
	prevHolder map[string]string
}

// newDispatcher builds a dispatcher over the static worker list;
// more workers can join later via add (POST /v1/workers).
func newDispatcher(workerURLs []string, heartbeat, retryBase time.Duration, metrics *telemetry.ClusterMetrics) *dispatcher {
	if heartbeat <= 0 {
		heartbeat = 5 * time.Second
	}
	if retryBase <= 0 {
		retryBase = 500 * time.Millisecond
	}
	d := &dispatcher{
		metrics:    metrics,
		heartbeat:  heartbeat,
		retryBase:  retryBase,
		workers:    map[string]*workerState{},
		prevHolder: map[string]string{},
	}
	for _, u := range workerURLs {
		d.add(u)
	}
	return d
}

// add registers a worker, idempotently. A re-registered worker keeps
// its state (a restart announces itself again; the next heartbeat or
// dispatch refreshes health).
func (d *dispatcher) add(url string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.workers[url]; ok {
		return
	}
	d.workers[url] = &workerState{url: url, client: NewClient(url, nil)}
	d.metrics.Worker(url) // appear on /metrics immediately, all-zero
}

// size returns the number of registered workers.
func (d *dispatcher) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.workers)
}

// list snapshots the fleet for GET /v1/workers, sorted by URL via the
// metrics registry (same key set).
func (d *dispatcher) list() workerList {
	d.mu.Lock()
	defer d.mu.Unlock()
	l := workerList{Workers: []workerInfo{}}
	now := time.Now()
	for _, w := range sortedWorkers(d.workers) {
		l.Workers = append(l.Workers, workerInfo{
			URL:     w.url,
			Healthy: w.eligible(now),
			Busy:    w.busy,
			Fails:   w.fails,
		})
	}
	return l
}

// sortedWorkers returns the workers in stable URL order.
func sortedWorkers(m map[string]*workerState) []*workerState {
	out := make([]*workerState, 0, len(m))
	for _, w := range m {
		out = append(out, w)
	}
	for i := 1; i < len(out); i++ { // insertion sort: fleets are small
		for j := i; j > 0 && out[j].url < out[j-1].url; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// executeFor returns the runner Execute hook for one campaign, or nil
// when no workers are registered (the campaign then computes
// locally). The hook dispatches a single shard and returns its
// trials; any failure is surfaced to the runner, whose retry loop
// backs off and calls the hook again — at which point pick prefers a
// different worker, completing the reassignment.
func (d *dispatcher) executeFor(cs *spec.CampaignSpec) func(context.Context, runner.Shard) ([]core.Trial, error) {
	if d == nil || d.size() == 0 {
		return nil
	}
	return func(ctx context.Context, sh runner.Shard) ([]core.Trial, error) {
		return d.dispatch(ctx, cs, sh)
	}
}

// dispatch sends one shard to the best available worker.
func (d *dispatcher) dispatch(ctx context.Context, cs *spec.CampaignSpec, sh runner.Shard) ([]core.Trial, error) {
	w, reassigned, err := d.pick(sh.ID())
	if err != nil {
		return nil, err
	}
	if reassigned {
		d.metrics.AddReassignment()
	}

	// Single-pair spec: the shard's (field, codec) with the campaign's
	// parameters. Workers validate it with the same spec.Validate the
	// coordinator ran, so the two sides cannot disagree about defaults.
	single := *cs
	single.Fields = []string{sh.Field}
	single.Formats = []string{sh.Codec}
	trials, wireStats, err := w.client.RunShardStats(ctx, ShardRequest{Spec: single, BitLo: sh.BitLo, BitHi: sh.BitHi})

	d.mu.Lock()
	w.busy--
	if err != nil {
		w.fails++
		// Jittered so workers failed by one event (a dead peer, a chaos
		// burst) do not all re-enter rotation on the same tick.
		w.backoffUntil = time.Now().Add(runner.JitteredBackoff(d.retryBase, w.fails, w.url))
		d.prevHolder[sh.ID()] = w.url
	} else {
		w.fails = 0
		w.backoffUntil = time.Time{}
		delete(d.prevHolder, sh.ID())
	}
	d.mu.Unlock()
	d.metrics.ObserveDispatch(w.url, err == nil)
	if err != nil {
		return nil, fmt.Errorf("worker %s: shard %s: %w", w.url, sh.ID(), err)
	}
	d.metrics.ObserveWire(wireStats.Binary, wireStats.BodyBytes)
	return trials, nil
}

// pick selects the least-busy eligible worker, preferring one that is
// not the shard's previous (failed) holder; reassigned reports that
// the shard moved to a different worker than the one that failed it.
// With every worker ineligible it falls back to the least-busy worker
// overall — letting the dispatch fail fast is better than deadlocking
// the campaign, and the runner's backoff paces the attempts.
func (d *dispatcher) pick(shardID string) (*workerState, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.workers) == 0 {
		return nil, false, fmt.Errorf("no workers registered")
	}
	now := time.Now()
	prev := d.prevHolder[shardID]
	var best *workerState
	better := func(w *workerState) bool {
		if best == nil {
			return true
		}
		// Prefer not re-trying the worker that just failed this shard.
		if (w.url != prev) != (best.url != prev) {
			return w.url != prev
		}
		if w.busy != best.busy {
			return w.busy < best.busy
		}
		return w.url < best.url // deterministic tie-break
	}
	for _, w := range sortedWorkers(d.workers) {
		if w.eligible(now) && better(w) {
			best = w
		}
	}
	if best == nil {
		for _, w := range sortedWorkers(d.workers) {
			if better(w) {
				best = w
			}
		}
	}
	best.busy++
	return best, prev != "" && best.url != prev, nil
}

// start launches the heartbeat loop; it stops when ctx is cancelled.
// Each tick probes every worker's /healthz, feeding the per-worker
// latency histogram, and flips workers down after
// heartbeatDownThreshold consecutive failures (and back up on the
// first success).
func (d *dispatcher) start(ctx context.Context) {
	go func() {
		t := time.NewTicker(d.heartbeat)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				d.probeAll(ctx)
			}
		}
	}()
}

// probeAll health-checks every registered worker once.
func (d *dispatcher) probeAll(ctx context.Context) {
	d.mu.Lock()
	workers := sortedWorkers(d.workers)
	d.mu.Unlock()
	for _, w := range workers {
		pctx, cancel := context.WithTimeout(ctx, d.heartbeat)
		start := time.Now()
		_, err := w.client.Health(pctx)
		rtt := time.Since(start)
		cancel()
		d.metrics.ObserveHeartbeat(w.url, err == nil, rtt)
		d.mu.Lock()
		if err != nil {
			w.fails++
			if w.fails >= heartbeatDownThreshold {
				w.down = true
			}
		} else {
			w.fails = 0
			w.down = false
			w.backoffUntil = time.Time{}
		}
		d.mu.Unlock()
	}
}
