package serve

// TestErrorEnvelopeEveryCode is the catalogue test of the JSON error
// contract: every stable error code the service can emit is triggered
// through HTTP and asserted on (status, code, JSON content type).
// docs/SERVICE.md documents the same list; a new code belongs in both
// places.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"positres/internal/store"
)

func TestErrorEnvelopeEveryCode(t *testing.T) {
	// A started server for the request-shaped errors and the internal
	// trigger (a published result whose CSV vanished from disk).
	srv, ts := newTestServer(t, Config{})

	// An unstarted server: nothing drains its queue, so queue_full and
	// not_ready are deterministic (the job can never start running).
	idle, err := New(Config{DataDir: t.TempDir(), QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	idleTS := httptest.NewServer(idle.Handler())
	defer idleTS.Close()
	var queued CampaignStatus
	if resp := postJSON(t, idleTS.URL+"/v1/campaigns", tinyCampaign, &queued); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("idle submit = %d, want 202", resp.StatusCode)
	}

	// A drained server for the draining code.
	drained, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithCancel(context.Background())
	drained.Start(dctx)
	dcancel()
	drained.Wait()
	drainedTS := httptest.NewServer(drained.Handler())
	defer drainedTS.Close()

	// internal: complete a campaign, then delete its published store out
	// from under the results handler.
	var done CampaignStatus
	if resp := postJSON(t, ts.URL+"/v1/campaigns?wait=1", tinyCampaign, &done); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d, want 200", resp.StatusCode)
	}
	j, ok := srv.jobs.get(done.ID)
	if !ok || len(done.Results) != 1 {
		t.Fatalf("job %s: ok=%v results=%v", done.ID, ok, done.Results)
	}
	if err := os.Remove(filepath.Join(j.dir, store.FileName(done.Results[0].Field, done.Results[0].Format))); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		code   string
		status int
		method string
		url    string
		body   string // empty = GET semantics unless method says otherwise
	}{
		{"bad_request", 400, "POST", ts.URL + "/v1/inject", `{not json`},
		{"unknown_format", 400, "POST", ts.URL + "/v1/inject", `{"format":"posit99","value":1.0,"bit":0}`},
		{"unknown_field", 400, "POST", ts.URL + "/v1/campaigns", `{"fields":["CESM/NOPE"],"formats":["posit8"]}`},
		{"not_found", 404, "GET", ts.URL + "/v1/campaigns/0123456789abcdef", ""},
		{"method_not_allowed", 405, "DELETE", ts.URL + "/v1/inject", ""},
		{"queue_full", 429, "POST", idleTS.URL + "/v1/campaigns", tinyCampaign},
		{"not_ready", 409, "GET", idleTS.URL + "/v1/campaigns/" + queued.ID + "/results", ""},
		{"draining", 503, "POST", drainedTS.URL + "/v1/campaigns", tinyCampaign},
		{"internal", 500, "GET", ts.URL + "/v1/campaigns/" + done.ID + "/results", ""},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			var resp *http.Response
			var env errorBody
			switch tc.method {
			case "POST":
				resp = postJSON(t, tc.url, tc.body, &env)
			case "GET":
				resp = getJSON(t, tc.url, &env)
			default:
				req, err := http.NewRequest(tc.method, tc.url, nil)
				if err != nil {
					t.Fatal(err)
				}
				r, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Body.Close()
				if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
					t.Fatal(err)
				}
				resp = r
			}
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
		})
	}
}
