package serve

// Cluster-mode tests: the worker protocol endpoints and the
// coordinator's dispatcher, including the tentpole guarantee that a
// distributed campaign's CSVs are byte-identical to a single-node run
// (TestDistributedEquivalence) and that shards move off a dead worker
// (TestDeadWorkerReassignment).

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
	"positres/internal/spec"
)

// clusterSpec is a multi-pair campaign small enough for tests but
// large enough to fan out: 2 fields × 2 formats × (8/4 + 16/4) bit
// shards = 12 shards.
func clusterSpec() *spec.CampaignSpec {
	return &spec.CampaignSpec{
		Fields:       []string{"CESM/CLOUD", "HACC/vx"},
		Formats:      []string{"posit8", "posit16"},
		N:            256,
		TrialsPerBit: 2,
		Seed:         7,
		BitsPerShard: 4,
	}
}

// newWorkerFleet starts n plain positserve instances and returns their
// base URLs. Each worker is a full server; only /v1/shards matters
// here.
func newWorkerFleet(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		_, ts := newTestServer(t, Config{})
		urls[i] = ts.URL
	}
	return urls
}

// runCampaign submits cs with ?wait=1 via the typed client and fails
// the test unless the campaign completes.
func runCampaign(t *testing.T, baseURL string, cs *spec.CampaignSpec) *CampaignStatus {
	t.Helper()
	client := NewClient(baseURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := client.SubmitCampaign(ctx, cs, true)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.State != "complete" {
		t.Fatalf("state = %q, want complete (error: %s, shards %+v)", st.State, st.Error, st.Shards)
	}
	return st
}

// resultCSVs fetches every published result CSV of a campaign, keyed
// by "field/format".
func resultCSVs(t *testing.T, baseURL string, st *CampaignStatus) map[string][]byte {
	t.Helper()
	client := NewClient(baseURL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	out := map[string][]byte{}
	for _, ref := range st.Results {
		var buf bytes.Buffer
		if err := client.CampaignResult(ctx, st.ID, ref.Field, ref.Format, &buf); err != nil {
			t.Fatalf("results %s/%s: %v", ref.Field, ref.Format, err)
		}
		out[ref.Field+"/"+ref.Format] = buf.Bytes()
	}
	return out
}

func TestDistributedEquivalence(t *testing.T) {
	cs := clusterSpec()

	// Baseline: the same campaign on a single node.
	_, single := newTestServer(t, Config{})
	singleStatus := runCampaign(t, single.URL, cs)
	want := resultCSVs(t, single.URL, singleStatus)

	// Distributed: a coordinator fanning shards out to three workers.
	workers := newWorkerFleet(t, 3)
	coord, coordTS := newTestServer(t, Config{Workers: workers})
	distStatus := runCampaign(t, coordTS.URL, cs)
	got := resultCSVs(t, coordTS.URL, distStatus)

	if len(want) != 4 || len(got) != len(want) {
		t.Fatalf("result sets differ: single %d, distributed %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("distributed run missing result %s", key)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: distributed CSV differs from single-node (%d vs %d bytes)", key, len(g), len(w))
		}
	}

	// Every shard went over the wire: the cluster snapshot's completed
	// dispatches sum to the shard total, and each worker is present.
	snap := coord.clusterMetrics.Snapshot()
	if len(snap.Workers) != 3 {
		t.Fatalf("cluster workers = %d, want 3", len(snap.Workers))
	}
	var completed int64
	for url, w := range snap.Workers {
		completed += w.ShardsCompleted
		if w.ShardsFailed != 0 {
			t.Errorf("worker %s: %d failed dispatches, want 0", url, w.ShardsFailed)
		}
	}
	if wantShards := int64(cs.TotalShards()); completed != wantShards {
		t.Errorf("completed dispatches = %d, want %d", completed, wantShards)
	}
	// A homogeneous current-version fleet negotiates binary everywhere:
	// every shard a frame, no CSV fallbacks.
	if snap.WireFrames != int64(cs.TotalShards()) || snap.WireFallbacks != 0 {
		t.Errorf("wire_frames = %d fallbacks = %d, want %d and 0",
			snap.WireFrames, snap.WireFallbacks, cs.TotalShards())
	}

	// /metrics exposes the same snapshot under "cluster".
	var m struct {
		Cluster *struct {
			Workers map[string]struct {
				ShardsCompleted uint64 `json:"shards_completed"`
			} `json:"workers"`
		} `json:"cluster"`
	}
	getJSON(t, coordTS.URL+"/metrics", &m)
	if m.Cluster == nil || len(m.Cluster.Workers) != 3 {
		t.Errorf("/metrics cluster section = %+v, want 3 workers", m.Cluster)
	}
}

// TestMixedFleetEquivalence pins the wire format's compatibility
// story: a fleet where one worker speaks the packed binary trial
// encoding and another only CSV (simulated by a proxy that strips the
// Accept offer, exactly what a pre-wire worker would see) must
// produce campaign CSVs byte-identical to a single-node run, with the
// coordinator's wire counters attributing traffic to both paths.
func TestMixedFleetEquivalence(t *testing.T) {
	cs := clusterSpec()

	// Baseline: the same campaign on a single node.
	_, single := newTestServer(t, Config{})
	want := resultCSVs(t, single.URL, runCampaign(t, single.URL, cs))

	// Worker 1: a normal instance — answers the binary offer.
	binary := newWorkerFleet(t, 1)

	// Worker 2: a normal instance behind a proxy that deletes the
	// Accept header, so the worker never sees the binary offer and
	// streams the CSV envelope — indistinguishable, to the
	// coordinator, from a worker running a build without the wire
	// package.
	_, legacyTS := newTestServer(t, Config{})
	legacyURL, err := url.Parse(legacyTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(legacyURL)
	inner := proxy.Director
	proxy.Director = func(r *http.Request) {
		inner(r)
		r.Header.Del("Accept")
	}
	proxyTS := httptest.NewServer(proxy)
	defer proxyTS.Close()

	// Two concurrent shard slots: the second pick lands while the first
	// dispatch is in flight, so busy-based selection alternates between
	// the binary worker and the proxied one and both paths carry shards.
	coord, coordTS := newTestServer(t, Config{
		Workers:         append(binary, proxyTS.URL),
		CampaignWorkers: 2,
	})
	st := runCampaign(t, coordTS.URL, cs)
	got := resultCSVs(t, coordTS.URL, st)

	if len(want) != 4 || len(got) != len(want) {
		t.Fatalf("result sets differ: single %d, mixed %d", len(want), len(got))
	}
	for key, w := range want {
		if !bytes.Equal(w, got[key]) {
			t.Errorf("%s: mixed-fleet CSV differs from single-node (%d vs %d bytes)", key, len(got[key]), len(w))
		}
	}

	// Both transports carried shards, and binary bytes were tallied.
	snap := coord.clusterMetrics.Snapshot()
	if snap.WireFrames == 0 {
		t.Error("wire_frames = 0, want > 0 from the binary-capable worker")
	}
	if snap.WireFallbacks == 0 {
		t.Error("wire_csv_fallbacks = 0, want > 0 from the Accept-stripped worker")
	}
	if snap.WireBytes == 0 {
		t.Error("wire_bytes = 0, want > 0")
	}
	if total := snap.WireFrames + snap.WireFallbacks; total != int64(cs.TotalShards()) {
		t.Errorf("wire_frames+wire_csv_fallbacks = %d, want %d (every merged shard observed once)", total, cs.TotalShards())
	}

	// /metrics exposes the wire counters.
	var m struct {
		Cluster *struct {
			WireFrames    int64 `json:"wire_frames"`
			WireBytes     int64 `json:"wire_bytes"`
			WireFallbacks int64 `json:"wire_csv_fallbacks"`
		} `json:"cluster"`
	}
	getJSON(t, coordTS.URL+"/metrics", &m)
	if m.Cluster == nil || m.Cluster.WireFrames != snap.WireFrames ||
		m.Cluster.WireBytes != snap.WireBytes || m.Cluster.WireFallbacks != snap.WireFallbacks {
		t.Errorf("/metrics cluster wire counters = %+v, want %d/%d/%d",
			m.Cluster, snap.WireFrames, snap.WireBytes, snap.WireFallbacks)
	}
}

func TestDeadWorkerReassignment(t *testing.T) {
	// One live worker and one that is already unreachable: shards
	// dispatched to the dead one fail, the runner retries, and pick
	// moves them to the live worker — counted as reassignments.
	live := newWorkerFleet(t, 1)
	_, deadTS := newTestServer(t, Config{})
	deadURL := deadTS.URL
	deadTS.Close()

	// Two concurrent shard workers: with the pool's first pick taking
	// the least-busy (lowest-URL) worker and the second pick the other,
	// the dead worker is guaranteed dispatches regardless of which
	// random httptest port sorts first.
	coord, coordTS := newTestServer(t, Config{
		Workers:          append([]string{deadURL}, live...),
		CampaignWorkers:  2,
		ClusterRetryBase: 10 * time.Millisecond,
	})
	cs := clusterSpec()
	st := runCampaign(t, coordTS.URL, cs)
	if st.Shards.Done != cs.TotalShards() {
		t.Errorf("shards done = %d, want %d", st.Shards.Done, cs.TotalShards())
	}

	snap := coord.clusterMetrics.Snapshot()
	if snap.Reassignments == 0 {
		t.Error("reassignments = 0, want > 0 after a dead worker")
	}
	dead, ok := snap.Workers[deadURL]
	if !ok || dead.ShardsFailed == 0 {
		t.Errorf("dead worker stats = %+v, want failed dispatches", dead)
	}

	// The CSVs still match a single-node run byte for byte.
	_, single := newTestServer(t, Config{})
	want := resultCSVs(t, single.URL, runCampaign(t, single.URL, cs))
	got := resultCSVs(t, coordTS.URL, st)
	for key, w := range want {
		if !bytes.Equal(w, got[key]) {
			t.Errorf("%s: CSV differs from single-node after reassignment", key)
		}
	}
}

func TestRunShardEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	client := NewClient(ts.URL, nil)

	cs := &spec.CampaignSpec{
		Fields:       []string{"CESM/CLOUD"},
		Formats:      []string{"posit8"},
		N:            256,
		TrialsPerBit: 2,
		Seed:         7,
	}
	if verr := cs.Validate(); verr != nil {
		t.Fatal(verr)
	}
	ctx := context.Background()
	got, err := client.RunShard(ctx, ShardRequest{Spec: *cs, BitLo: 0, BitHi: 8})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}

	// The worker must produce exactly what the local engine produces.
	codec, err := numfmt.Lookup("posit8")
	if err != nil {
		t.Fatal(err)
	}
	field, err := sdrbench.Lookup("CESM/CLOUD")
	if err != nil {
		t.Fatal(err)
	}
	data := sdrbench.ToFloat64(field.Generate(cs.N, cs.Seed))
	want, err := core.RunRange(ctx, core.ConfigFromSpec(cs), codec, "CESM/CLOUD", data, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("remote trials differ from local: got %d, want %d", len(got), len(want))
	}
}

func TestRunShardValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name, body, code string
	}{
		{"multi pair", `{"spec":{"fields":["CESM/CLOUD","HACC/vx"],"formats":["posit8"],"n":16},"bit_lo":0,"bit_hi":8}`, "bad_request"},
		{"unknown format", `{"spec":{"fields":["CESM/CLOUD"],"formats":["posit99"],"n":16},"bit_lo":0,"bit_hi":8}`, "unknown_format"},
		{"unknown field", `{"spec":{"fields":["NOPE/nope"],"formats":["posit8"],"n":16},"bit_lo":0,"bit_hi":8}`, "unknown_field"},
		{"bad bit range", `{"spec":{"fields":["CESM/CLOUD"],"formats":["posit8"],"n":16},"bit_lo":4,"bit_hi":99}`, "bad_request"},
		{"empty range", `{"spec":{"fields":["CESM/CLOUD"],"formats":["posit8"],"n":16},"bit_lo":3,"bit_hi":3}`, "bad_request"},
		{"unknown key", `{"spec":{"fields":["CESM/CLOUD"],"formats":["posit8"],"n":16},"bit_lo":0,"bit_hi":8,"bogus":1}`, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env errorBody
			resp := postJSON(t, ts.URL+"/v1/shards", tc.body, &env)
			if resp.StatusCode != http.StatusBadRequest || env.Error.Code != tc.code {
				t.Errorf("status %d code %q, want 400 %s", resp.StatusCode, env.Error.Code, tc.code)
			}
		})
	}
}

func TestWorkerRegistration(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	// Register two workers, one of them twice: idempotent.
	var list workerList
	for _, body := range []string{
		`{"url":"http://10.0.0.1:8080"}`,
		`{"url":"http://10.0.0.2:8080"}`,
		`{"url":"http://10.0.0.1:8080"}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/workers", body, &list)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register status = %d, want 200", resp.StatusCode)
		}
	}
	if len(list.Workers) != 2 {
		t.Fatalf("workers = %+v, want 2", list.Workers)
	}
	if list.Workers[0].URL != "http://10.0.0.1:8080" || list.Workers[1].URL != "http://10.0.0.2:8080" {
		t.Errorf("workers not sorted by URL: %+v", list.Workers)
	}
	if srv.cluster.size() != 2 {
		t.Errorf("dispatcher size = %d, want 2", srv.cluster.size())
	}

	// GET agrees with the POST response.
	var got workerList
	getJSON(t, ts.URL+"/v1/workers", &got)
	if !reflect.DeepEqual(got, list) {
		t.Errorf("GET /v1/workers = %+v, want %+v", got, list)
	}

	// Relative URLs are rejected before they poison the pool.
	var env errorBody
	resp := postJSON(t, ts.URL+"/v1/workers", `{"url":"not a url"}`, &env)
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != "bad_request" {
		t.Errorf("bad url: status %d code %q, want 400 bad_request", resp.StatusCode, env.Error.Code)
	}

	// Both verbs share the path; anything else gets a JSON 405 whose
	// Allow header advertises both.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status = %d, want 405", dresp.StatusCode)
	}
	allow := dresp.Header.Get("Allow")
	if !strings.Contains(allow, "GET") || !strings.Contains(allow, "POST") {
		t.Errorf("Allow = %q, want GET and POST", allow)
	}
}

func TestDispatcherPick(t *testing.T) {
	d := newDispatcher([]string{"http://a", "http://b"}, time.Second, time.Millisecond, nil)

	// Fresh dispatcher: deterministic URL tie-break.
	w, reassigned, err := d.pick("s1")
	if err != nil || w.url != "http://a" || reassigned {
		t.Fatalf("pick = %v %v %v, want a false nil", w, reassigned, err)
	}
	// a is now busier, so b wins the next pick.
	w2, _, _ := d.pick("s2")
	if w2.url != "http://b" {
		t.Fatalf("second pick = %s, want b", w2.url)
	}

	// A failed shard prefers a different worker and counts as a
	// reassignment.
	d.mu.Lock()
	d.prevHolder["s3"] = "http://a"
	d.mu.Unlock()
	w3, reassigned, _ := d.pick("s3")
	if w3.url != "http://b" || !reassigned {
		t.Fatalf("reassign pick = %s %v, want b true", w3.url, reassigned)
	}

	// With every worker in backoff, pick still returns one (fail fast
	// beats deadlock).
	d.mu.Lock()
	for _, w := range d.workers {
		w.backoffUntil = time.Now().Add(time.Hour)
	}
	d.mu.Unlock()
	if _, _, err := d.pick("s4"); err != nil {
		t.Fatalf("pick with all in backoff: %v", err)
	}

	// No workers at all is the only error.
	empty := newDispatcher(nil, time.Second, time.Millisecond, nil)
	if _, _, err := empty.pick("s"); err == nil {
		t.Fatal("pick on empty dispatcher: want error")
	}
	if hook := empty.executeFor(clusterSpec()); hook != nil {
		t.Fatal("executeFor with no workers should be nil (local compute)")
	}
}
