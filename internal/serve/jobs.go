package serve

// The campaign job store: a bounded submission queue drained by a
// fixed worker pool, with every job's truth persisted under
// DataDir/jobs/<id>/ — job.json (the normalized request) next to the
// runner state directory (manifest + shard journal). Because the
// runner journals every completed shard, a server crash or SIGTERM
// loses at most in-flight shard attempts: on restart, recover() scans
// the jobs directory and re-enqueues every unfinished job with
// Resume, and the resumed results are byte-identical to an
// uninterrupted run (scripts/serve_e2e.sh pins this end to end).

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"positres/internal/atomicio"
	"positres/internal/core"
	"positres/internal/runner"
	"positres/internal/spec"
	"positres/internal/store"
	"positres/internal/telemetry"
)

// Job states served by GET /v1/campaigns/{id}. The terminal states
// "complete", "partial" and "cancelled" deliberately reuse the
// runner's manifest vocabulary (runner.StateComplete etc.); "queued",
// "running" and "failed" are service-level.
const (
	jobQueued    = "queued"
	jobRunning   = "running"
	jobComplete  = runner.StateComplete
	jobPartial   = runner.StatePartial
	jobCancelled = runner.StateCancelled
	jobFailed    = "failed"
)

// The body of POST /v1/campaigns is the canonical spec.CampaignSpec —
// the same type cmd/positcampaign builds from flags and runner.Config
// consumes directly. spec.Validate applies the documented defaults in
// place, and the normalized spec is echoed back (and persisted), so a
// job's identity is always explicit on disk.

// ShardCounts is the live shard tally of a job, as served in
// CampaignStatus.
type ShardCounts struct {
	// Done counts shards computed and journaled this run.
	Done int `json:"done"`
	// Resumed counts shards loaded from a prior run's journal.
	Resumed int `json:"resumed"`
	// Failed counts shards that exhausted their retry budget.
	Failed int `json:"failed"`
	// Skipped counts shards that never ran (campaign cancelled first).
	Skipped int `json:"skipped"`
	// Total is the expected shard count of the whole campaign.
	Total int `json:"total"`
}

// ResultRef points a client at one (field, format) result CSV.
type ResultRef struct {
	// Field is the sdrbench field key, e.g. "CESM/CLOUD".
	Field string `json:"field"`
	// Format is the canonical numfmt codec name, e.g. "posit16".
	Format string `json:"format"`
	// URL is the results endpoint path serving this CSV.
	URL string `json:"url"`
}

// job is one submitted campaign. All mutable fields are guarded by
// mu; done is closed exactly once when the job reaches a terminal
// state in this process.
type job struct {
	id        string
	req       spec.CampaignSpec
	dir       string // DataDir/jobs/<id>
	createdAt time.Time
	resume    bool // a prior run's state exists on disk

	mu         sync.Mutex
	state      string
	errMsg     string
	startedAt  time.Time
	finishedAt time.Time
	counts     ShardCounts
	results    []ResultRef
	cancel     context.CancelFunc // non-nil only while running
	// cw is the live trial store the campaign streams into; non-nil
	// only while running. /metrics reads its O(specs×bits) aggregate
	// snapshot for the mid-campaign dashboard section.
	cw   *store.CampaignWriter
	done chan struct{}
}

// stateDir is the runner state directory of the job.
func (j *job) stateDir() string { return filepath.Join(j.dir, "state") }

// cancelRun requests cancellation: a queued job is marked cancelled
// and skipped when dequeued; a running job has its context cancelled
// and drains through the runner (completed shards stay journaled).
func (j *job) cancelRun() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case jobQueued:
		j.state = jobCancelled
		j.finishedAt = time.Now()
		close(j.done)
	case jobRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// persistedJob is the schema of job.json — everything needed to
// reconstruct the job after a restart. The "request" key predates the
// CampaignSpec unification; it is kept so job.json files written by
// older servers keep decoding.
type persistedJob struct {
	// ID is the job id, matching the directory name.
	ID string `json:"id"`
	// CreatedAt is the submission time, RFC 3339 UTC.
	CreatedAt string `json:"created_at"`
	// Request is the validated campaign spec the job runs.
	Request spec.CampaignSpec `json:"request"`
}

// jobStore owns every job: the on-disk layout, the bounded queue, and
// the worker pool. All exported-equivalent entry points (submit, get,
// tallies) are safe for concurrent use.
type jobStore struct {
	dir             string // DataDir/jobs
	queueDepth      int
	campaignWorkers int
	metrics         *telemetry.Metrics
	crashAfter      int // test hook: exit(137) after N shards (0 = off)

	// executeFor, when non-nil, supplies the remote shard executor for
	// a campaign (the coordinator's dispatcher). Returning nil keeps
	// that campaign local. Set once before start; nil means every
	// campaign computes locally.
	executeFor func(cs *spec.CampaignSpec) func(context.Context, runner.Shard) ([]core.Trial, error)

	shardsDone atomic.Int64
	rejected   atomic.Int64 // submissions bounced with queue_full (429)

	mu     sync.Mutex
	jobs   map[string]*job
	queued int       // jobs submitted but not yet dequeued (backpressure)
	queue  chan *job // buffered: queueDepth + recovered jobs
	ctx    context.Context
	wg     sync.WaitGroup
}

// backpressure is the queue's live pressure view, served under
// "backpressure" in GET /metrics so operators (and positload's error
// budget) can see why 429s carry the Retry-After they do.
type backpressure struct {
	// Queued is the number of submitted-but-not-started campaigns.
	Queued int `json:"queued"`
	// QueueDepth is the configured queue capacity.
	QueueDepth int `json:"queue_depth"`
	// Rejected counts submissions bounced with queue_full since start.
	Rejected int64 `json:"rejected"`
	// RetryAfterSeconds is the Retry-After value the next 429 would
	// carry, derived from current occupancy.
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

// retryAfterSeconds derives the Retry-After hint for a queue_full
// rejection from current occupancy: an almost-draining queue asks for
// 1s, a saturated one scales up linearly, capped at 30s. Derived, not
// hard-coded, so a deep queue under light churn does not park clients
// for a flat worst-case wait.
func (s *jobStore) retryAfterSeconds() int {
	s.mu.Lock()
	queued, depth := s.queued, s.queueDepth
	s.mu.Unlock()
	return deriveRetryAfter(queued, depth)
}

// deriveRetryAfter maps queue occupancy to whole seconds in [1, 30].
func deriveRetryAfter(queued, depth int) int {
	if depth <= 0 || queued <= 0 {
		return 1
	}
	// Linear in occupancy: a full queue of depth D suggests ~D/2
	// seconds of drain at typical smoke-campaign pace, clamped.
	secs := (queued*30 + depth - 1) / (2 * depth)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// pressure snapshots the backpressure view for /metrics.
func (s *jobStore) pressure() backpressure {
	s.mu.Lock()
	queued, depth := s.queued, s.queueDepth
	s.mu.Unlock()
	return backpressure{
		Queued:            queued,
		QueueDepth:        depth,
		Rejected:          s.rejected.Load(),
		RetryAfterSeconds: deriveRetryAfter(queued, depth),
	}
}

// newJobStore creates the store, creating dir and recovering any jobs
// a previous process left behind. Recovered unfinished jobs are
// already enqueued when newJobStore returns; workers start on start().
func newJobStore(dir string, queueDepth, campaignWorkers int, metrics *telemetry.Metrics, crashAfter int) (*jobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: jobs dir: %w", err)
	}
	s := &jobStore{
		dir:             dir,
		queueDepth:      queueDepth,
		campaignWorkers: campaignWorkers,
		metrics:         metrics,
		crashAfter:      crashAfter,
		jobs:            map[string]*job{},
	}
	recovered, err := s.recover()
	if err != nil {
		return nil, err
	}
	s.queue = make(chan *job, queueDepth+len(recovered))
	for _, j := range recovered {
		s.queued++
		s.queue <- j
	}
	return s, nil
}

// start launches workers workers that execute queued jobs until ctx
// is cancelled. Jobs running at cancellation drain through the
// runner: completed shards are journaled, the manifest records
// "cancelled", and the job resumes on the next process start.
func (s *jobStore) start(ctx context.Context, workers int) {
	s.mu.Lock()
	s.ctx = ctx
	s.mu.Unlock()
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
}

// wait blocks until every worker has drained.
func (s *jobStore) wait() { s.wg.Wait() }

// draining reports whether the store has begun shutting down.
func (s *jobStore) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctx != nil && s.ctx.Err() != nil
}

// submit validates, persists and enqueues a new campaign. A full
// queue returns a queue_full error for the handler to map to 429.
func (s *jobStore) submit(req spec.CampaignSpec) (*job, *spec.Error) {
	if verr := (&req).Validate(); verr != nil {
		return nil, verr
	}

	id, err := newJobID()
	if err != nil {
		return nil, &spec.Error{Code: codeInternal, Message: err.Error()}
	}
	j := &job{
		id:        id,
		req:       req,
		dir:       filepath.Join(s.dir, id),
		createdAt: time.Now(),
		state:     jobQueued,
		counts:    ShardCounts{Total: req.TotalShards()},
		done:      make(chan struct{}),
	}

	s.mu.Lock()
	if s.ctx != nil && s.ctx.Err() != nil {
		s.mu.Unlock()
		return nil, &spec.Error{Code: codeDraining, Message: "server is shutting down"}
	}
	if s.queued >= s.queueDepth {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, &spec.Error{Code: codeQueueFull, Message: fmt.Sprintf("campaign queue is full (%d pending)", s.queueDepth)}
	}
	s.queued++
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.persist(j); err != nil {
		s.mu.Lock()
		s.queued--
		delete(s.jobs, id)
		s.mu.Unlock()
		return nil, &spec.Error{Code: codeInternal, Message: err.Error()}
	}
	s.queue <- j // capacity >= queueDepth, never blocks after the gate above
	return j, nil
}

// persist writes the job directory and job.json atomically.
func (s *jobStore) persist(j *job) error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}
	raw, err := json.MarshalIndent(persistedJob{
		ID:        j.id,
		CreatedAt: j.createdAt.UTC().Format(time.RFC3339),
		Request:   j.req,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: job encode: %w", err)
	}
	if err := atomicio.WriteFileBytes(filepath.Join(j.dir, "job.json"), append(raw, '\n')); err != nil {
		return fmt.Errorf("serve: job persist: %w", err)
	}
	return nil
}

// get returns the job by id.
func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// tallies counts jobs by state for /metrics.
func (s *jobStore) tallies() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := map[string]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		t[j.state]++
		j.mu.Unlock()
	}
	return t
}

// worker executes queued jobs until ctx is cancelled.
func (s *jobStore) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			s.runJob(ctx, j)
		}
	}
}

// runJob executes one job through the durable runner and publishes
// its result CSVs. The job context is derived from the worker
// context, so server drain cancels it; a wait-mode request watcher
// can cancel it independently through job.cancelRun.
func (s *jobStore) runJob(ctx context.Context, j *job) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Trials stream shard by shard into a columnar store in the job
	// directory instead of accumulating in memory; the store also
	// maintains the per-bit aggregates /metrics serves live.
	cw := store.NewCampaignWriter(j.dir)

	j.mu.Lock()
	if j.state != jobQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	j.state = jobRunning
	j.startedAt = time.Now()
	j.cancel = cancel
	j.cw = cw
	j.mu.Unlock()

	rcfg := runner.Config{
		Spec:        &j.req,
		Dir:         j.stateDir(),
		Resume:      j.resume,
		Workers:     s.campaignWorkers,
		Metrics:     s.metrics,
		Sink:        cw,
		OnShardDone: func(st runner.ShardStatus) { s.observeShard(j, st) },
	}
	if s.executeFor != nil {
		// Coordinator mode: dispatch shards to remote workers. A nil
		// executor (no workers registered) keeps the campaign local.
		rcfg.Execute = s.executeFor(&j.req)
	}
	rep, err := runner.Run(jctx, rcfg)
	if err != nil {
		cw.Abort()
		s.finishJob(j, jobFailed, err.Error(), nil)
		return
	}

	j.mu.Lock()
	j.counts = ShardCounts{
		Done:    rep.Completed,
		Resumed: rep.Resumed,
		Failed:  rep.Failed,
		Skipped: rep.Skipped,
		Total:   len(rep.Shards),
	}
	j.mu.Unlock()

	if rep.Cancelled {
		// The journal holds the completed shards; the next run rebuilds
		// the store from it, so the half-written one is just discarded.
		cw.Abort()
		s.finishJob(j, jobCancelled, "", nil)
		return
	}
	results, err := publishResults(j.id, rep, cw)
	// Discard stores of specs that did not publish (failed shards in a
	// partial campaign); Seal already committed the published ones.
	cw.Abort()
	if err != nil {
		s.finishJob(j, jobFailed, err.Error(), nil)
		return
	}
	s.finishJob(j, rep.Outcome(), "", results)
}

// observeShard updates the live tally and drives the e2e crash hook.
func (s *jobStore) observeShard(j *job, st runner.ShardStatus) {
	j.mu.Lock()
	switch st.State {
	case runner.ShardDone:
		j.counts.Done++
	case runner.ShardFailed:
		j.counts.Failed++
	case runner.ShardSkipped:
		j.counts.Skipped++
	}
	j.mu.Unlock()
	if st.State == runner.ShardDone && s.crashAfter > 0 &&
		s.shardsDone.Add(1) >= int64(s.crashAfter) {
		// Test-only: simulate a hard server crash (no drain, no
		// manifest update) for scripts/serve_e2e.sh.
		os.Exit(137)
	}
}

// finishJob moves the job to a terminal state and wakes waiters.
func (s *jobStore) finishJob(j *job, state, errMsg string, results []ResultRef) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errMsg = errMsg
	j.finishedAt = time.Now()
	j.cancel = nil
	j.cw = nil
	if results != nil {
		j.results = results
	}
	close(j.done)
}

// liveAggregates snapshots every running campaign's per-spec aggregate
// documents for /metrics, sorted by job id. O(jobs×specs×bits) — no
// trial data is touched, so the cost is flat regardless of campaign
// size.
func (s *jobStore) liveAggregates() []campaignAggregates {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	var out []campaignAggregates
	for _, j := range jobs {
		j.mu.Lock()
		cw := j.cw
		j.mu.Unlock()
		if cw == nil {
			continue
		}
		out = append(out, campaignAggregates{ID: j.id, Aggregates: cw.Snapshot()})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// publishResults seals one store file per completed (field, format)
// result and returns the refs in spec order. Partial campaigns publish
// only their completed specs. Sealing commits the pending file to its
// final .pts path atomically — the CSV representation is rendered from
// it on demand by the results handler, byte-identical to the old
// write-the-CSV path.
func publishResults(id string, rep *runner.Report, cw *store.CampaignWriter) ([]ResultRef, error) {
	var refs []ResultRef
	for i, res := range rep.Results {
		if res == nil {
			continue
		}
		if err := cw.Seal(res.Field, res.Codec); err != nil {
			return nil, fmt.Errorf("serve: publish result %d: %w", i, err)
		}
		refs = append(refs, ResultRef{Field: res.Field, Format: res.Codec, URL: resultURL(id, res.Field, res.Codec)})
	}
	return refs, nil
}

// csvName is the stable result filename for a (field, format) pair —
// the same scheme cmd/positcampaign publishes under.
func csvName(field, format string) string {
	return fmt.Sprintf("%s_%s.csv", strings.ReplaceAll(field, "/", "_"), format)
}

// resultURL builds the results endpoint URL for one spec.
func resultURL(id, field, format string) string {
	return fmt.Sprintf("/v1/campaigns/%s/results?field=%s&format=%s",
		id, url.QueryEscape(field), url.QueryEscape(format))
}

// newJobID returns a 16-hex-character random job id.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: job id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// validJobID reports whether id has the shape newJobID produces; it
// gates path values before they touch the filesystem.
func validJobID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// recover scans the jobs directory and rebuilds the in-memory view: a
// job whose manifest says complete and whose CSVs are all present is
// terminal; everything else — mid-run crash ("running"), clean drain
// ("cancelled"), partial (failed shards heal on resume), or a crash
// between manifest completion and CSV publication — is re-enqueued
// with Resume so the journal is replayed instead of recomputed.
func (s *jobStore) recover() ([]*job, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: recover: %w", err)
	}
	var requeue []*job
	for _, ent := range entries {
		if !ent.IsDir() || !validJobID(ent.Name()) {
			continue
		}
		j, enqueue, err := s.recoverOne(ent.Name())
		if err != nil {
			// A torn job directory (e.g. crash between mkdir and
			// job.json) is skipped, not fatal: one broken job must not
			// take down the server.
			fmt.Fprintf(os.Stderr, "positserve: skipping job %s: %v\n", ent.Name(), err)
			continue
		}
		s.jobs[j.id] = j
		if enqueue {
			requeue = append(requeue, j)
		}
	}
	sort.Slice(requeue, func(a, b int) bool { return requeue[a].createdAt.Before(requeue[b].createdAt) })
	return requeue, nil
}

// recoverOne rebuilds one job from disk, reporting whether it still
// needs to run.
func (s *jobStore) recoverOne(id string) (*job, bool, error) {
	dir := filepath.Join(s.dir, id)
	raw, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return nil, false, err
	}
	var p persistedJob
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, false, fmt.Errorf("job.json: %w", err)
	}
	if p.ID != id {
		return nil, false, fmt.Errorf("job.json id %q does not match directory %q", p.ID, id)
	}
	created, err := time.Parse(time.RFC3339, p.CreatedAt)
	if err != nil {
		return nil, false, fmt.Errorf("job.json created_at: %w", err)
	}
	j := &job{
		id:        id,
		req:       p.Request,
		dir:       dir,
		createdAt: created,
		state:     jobQueued,
		done:      make(chan struct{}),
	}
	if verr := (&j.req).Validate(); verr != nil {
		return nil, false, fmt.Errorf("persisted request: %s", verr.Message)
	}
	j.counts.Total = j.req.TotalShards()

	man, err := runner.ReadManifest(j.stateDir())
	if err != nil {
		return nil, false, err
	}
	if man == nil {
		// Submitted but never started: run it fresh.
		return j, true, nil
	}
	j.resume = true
	for _, sh := range man.Shards {
		switch sh.State {
		case runner.ShardDone, runner.ShardResumed:
			j.counts.Resumed++ // journaled: will load, not recompute
		}
	}
	if man.State == runner.StateComplete {
		refs, ok := existingResults(dir, j.id, runner.SpecsOf(&j.req))
		if ok {
			j.state = jobComplete
			j.finishedAt = created
			j.results = refs
			j.counts = ShardCounts{Resumed: len(man.Shards), Total: len(man.Shards)}
			close(j.done)
			return j, false, nil
		}
		// Manifest finished but CSVs missing (crash inside
		// publication): resume replays the journal and republishes.
	}
	return j, true, nil
}

// existingResults checks for every spec's published result — a sealed
// .pts store or a legacy CSV from an older server — returning refs
// only when all are present.
func existingResults(dir, id string, specs []runner.Spec) ([]ResultRef, bool) {
	var refs []ResultRef
	for _, sp := range specs {
		if _, err := os.Stat(filepath.Join(dir, store.FileName(sp.Field, sp.Codec))); err != nil {
			if _, cerr := os.Stat(filepath.Join(dir, csvName(sp.Field, sp.Codec))); cerr != nil {
				return nil, false
			}
		}
		refs = append(refs, ResultRef{Field: sp.Field, Format: sp.Codec, URL: resultURL(id, sp.Field, sp.Codec)})
	}
	return refs, true
}
