package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestInjectCacheConcurrent hammers one small LRU from many goroutines
// with a mixed get/put/stats workload. It exists to run under -race
// (scripts/ci.sh does): correctness here is "no data race, no panic,
// and the invariants hold afterwards".
func TestInjectCacheConcurrent(t *testing.T) {
	const (
		goroutines = 8
		ops        = 500
		keySpace   = 64
		capacity   = 16
	)
	c := newInjectCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := cacheKey{format: "posit8", pattern: uint64((g*ops + i) % keySpace), bit: i % 8}
				if v, ok := c.get(k); ok {
					if v.faultyBits != k.pattern^1 {
						t.Errorf("cache returned wrong entry for %+v: %+v", k, v)
						return
					}
				} else {
					c.put(k, flipInfo{faultyBits: k.pattern ^ 1})
				}
				if i%50 == 0 {
					c.stats()
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.stats()
	if st.Size > capacity {
		t.Errorf("size = %d exceeds capacity %d", st.Size, capacity)
	}
	if st.Hits+st.Misses != goroutines*ops {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*ops)
	}
}

// TestInjectEndpointConcurrent drives the full HTTP inject path from
// many goroutines sharing a hot cache line — the production shape of
// interactive what-if clients.
func TestInjectEndpointConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{InjectCacheSize: 8})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := fmt.Sprintf(`{"format":"posit16","pattern":"0x%x","bit":%d}`, 0x4000+i%16, (g+i)%16)
				resp, err := http.Post(ts.URL+"/v1/inject", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				if err := resp.Body.Close(); err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("inject status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
