// Package serve implements positserve, the campaign-as-a-service HTTP
// layer over the fault-injection engine.
//
// The service exposes four resources, all JSON (docs/SERVICE.md is
// the full reference):
//
//   - POST /v1/inject — synchronous single-value, single-bit what-if
//     queries, LRU-cached per (format, pattern, bit) triple.
//   - POST /v1/campaigns — durable campaign jobs on a bounded queue
//     drained by a fixed worker pool; 429 + Retry-After under
//     backpressure. GET /v1/campaigns/{id} polls status and
//     GET /v1/campaigns/{id}/results streams the published CSVs.
//   - GET /metrics — the positres-telemetry/v1 engine snapshot plus
//     per-endpoint request counters and log₂ latency histograms.
//   - GET /healthz — liveness and drain state.
//
// Durability is inherited from internal/runner: every completed shard
// is journaled under DataDir, so a crash (kill -9) or a graceful
// drain (SIGTERM) loses at most in-flight shard attempts, and the
// next process start resumes unfinished jobs automatically with
// results byte-identical to an uninterrupted run.
package serve

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"positres/internal/telemetry"
)

// maxBodyBytes bounds every request body the service will read (1 MiB
// — orders of magnitude above any legitimate request).
const maxBodyBytes = 1 << 20

// Config parameterizes a Server. The zero value of every field except
// DataDir is usable and takes the documented default.
type Config struct {
	// DataDir is the root of all persistent state: jobs live under
	// DataDir/jobs/<id>/ with their runner journal in state/.
	// Required; reusing the directory across restarts is what makes
	// jobs resume.
	DataDir string
	// QueueDepth bounds campaigns submitted but not yet running;
	// submissions beyond it get 429. 0 means 16.
	QueueDepth int
	// JobWorkers is how many campaigns run concurrently. 0 means 1
	// (campaigns are CPU-bound; parallelism belongs inside a campaign).
	JobWorkers int
	// CampaignWorkers is the per-campaign shard worker count, passed
	// through to runner.Config.Workers. 0 means GOMAXPROCS.
	CampaignWorkers int
	// RequestTimeout is the context deadline applied to the
	// synchronous endpoints (inject, status, results, metrics,
	// healthz). It deliberately does not apply to POST /v1/campaigns,
	// whose ?wait=1 mode is open-ended. 0 means 15s.
	RequestTimeout time.Duration
	// InjectCacheSize is the /v1/inject LRU capacity in entries.
	// 0 means 4096.
	InjectCacheSize int
	// Metrics receives engine telemetry from every campaign the
	// server runs and is re-exported on /metrics. nil means a fresh
	// telemetry.New().
	Metrics *telemetry.Metrics
	// Workers is the static list of worker base URLs this instance
	// coordinates; more can self-register at runtime via
	// POST /v1/workers. While at least one worker is registered, every
	// campaign's shards are dispatched over HTTP instead of computed
	// locally. Empty (and no registrations) means single-node
	// operation — the pre-cluster behavior, unchanged.
	Workers []string
	// HeartbeatInterval is the worker health-probe period (and per-
	// probe timeout). 0 means 5s.
	HeartbeatInterval time.Duration
	// ClusterRetryBase seeds the per-worker cooldown after a failed
	// dispatch or probe (runner.Backoff schedule, capped at 30s).
	// 0 means 500ms.
	ClusterRetryBase time.Duration
	// CrashAfterShards is a test-only hook: when positive, the
	// process hard-exits with status 137 (no drain, no manifest
	// update) after that many shard completions, simulating a crash
	// for scripts/serve_e2e.sh. 0 disables it.
	CrashAfterShards int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 15 * time.Second
	}
	if cfg.InjectCacheSize <= 0 {
		cfg.InjectCacheSize = 4096
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.New()
	}
	return cfg
}

// Server is the positserve HTTP service. Construct with New, launch
// workers with Start, mount Handler on an http.Server, and after
// shutting the listener down call Wait to join the drained workers.
// All methods are safe for concurrent use.
type Server struct {
	cfg            Config
	metrics        *telemetry.Metrics
	httpMetrics    *telemetry.HTTPMetrics
	clusterMetrics *telemetry.ClusterMetrics
	cache          *injectCache
	jobs           *jobStore
	cluster        *dispatcher
	handler        http.Handler
}

// New builds a Server rooted at cfg.DataDir and recovers every
// unfinished job a previous process left there (re-enqueued in
// submission order; they start running once Start is called).
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	cfg = cfg.withDefaults()
	jobs, err := newJobStore(filepath.Join(cfg.DataDir, "jobs"),
		cfg.QueueDepth, cfg.CampaignWorkers, cfg.Metrics, cfg.CrashAfterShards)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:            cfg,
		metrics:        cfg.Metrics,
		httpMetrics:    telemetry.NewHTTP(),
		clusterMetrics: telemetry.NewCluster(),
		cache:          newInjectCache(cfg.InjectCacheSize),
		jobs:           jobs,
	}
	s.cluster = newDispatcher(cfg.Workers, cfg.HeartbeatInterval, cfg.ClusterRetryBase, s.clusterMetrics)
	jobs.executeFor = s.cluster.executeFor
	s.handler = s.routes()
	return s, nil
}

// Start launches the job worker pool and, in coordinator mode, the
// worker heartbeat loop. Cancelling ctx begins the graceful drain: no
// new jobs are dequeued, running campaigns are cancelled through the
// runner (completed shards journaled, manifest marked cancelled), and
// Wait returns once the pool has drained.
func (s *Server) Start(ctx context.Context) {
	s.jobs.start(ctx, s.cfg.JobWorkers)
	s.cluster.start(ctx)
}

// Wait blocks until every job worker has drained. Call it after
// cancelling the Start context and shutting down the HTTP listener.
func (s *Server) Wait() { s.jobs.wait() }

// Handler returns the root http.Handler, ready to mount on an
// http.Server (or httptest.Server).
func (s *Server) Handler() http.Handler { return s.handler }

// routes builds the method-aware mux. Every registered path gets a
// method-less twin so verb mismatches produce the service's JSON 405
// (with Allow listing every supported verb — paths like /v1/workers
// serve more than one), and the root catch-all produces a JSON 404.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	// Twins are registered after all verb routes so a path serving
	// multiple verbs gets exactly one twin advertising all of them.
	type pathInfo struct {
		verbs []string
		label string // metrics label: the first verb pattern on the path
	}
	paths := map[string]*pathInfo{}
	reg := func(pattern string, h http.HandlerFunc, timed bool) {
		if timed {
			h = s.withTimeout(h)
		}
		mux.Handle(pattern, s.withMetrics(pattern, h))
		verb, path, ok := strings.Cut(pattern, " ")
		if !ok {
			return
		}
		if paths[path] == nil {
			paths[path] = &pathInfo{label: pattern}
		}
		paths[path].verbs = append(paths[path].verbs, verb)
	}
	reg("POST /v1/inject", s.handleInject, true)
	reg("POST /v1/campaigns", s.handleSubmitCampaign, false) // ?wait=1 is open-ended
	reg("GET /v1/campaigns/{id}", s.handleCampaignStatus, true)
	reg("GET /v1/campaigns/{id}/results", s.handleCampaignResults, true)
	reg("POST /v1/shards", s.handleRunShard, false) // shard computation is bounded by the campaign watchdog, not the request timeout
	reg("POST /v1/workers", s.handleRegisterWorker, true)
	reg("GET /v1/workers", s.handleListWorkers, true)
	reg("GET /metrics", s.handleMetrics, true)
	reg("GET /healthz", s.handleHealthz, true)
	for path, info := range paths {
		mux.Handle(path, s.withMetrics(info.label, methodNotAllowed(strings.Join(info.verbs, ", "))))
	}
	mux.Handle("/", s.withMetrics("(unrouted)", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, codeNotFound, "no such resource %s", r.URL.Path)
	}))
	return mux
}

// methodNotAllowed returns a handler producing the JSON 405 envelope
// with the allowed verbs advertised.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			"method %s not allowed (allow: %s)", r.Method, allow)
	}
}

// statusRecorder captures the response status for the metrics
// middleware; an unset status counts as 200, matching net/http.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush preserves streaming for handlers that need it.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMetrics counts the request and observes its latency under the
// route pattern (stable cardinality — never the raw URL).
func (s *Server) withMetrics(pattern string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next(rec, r)
		s.httpMetrics.Observe(pattern, rec.status, time.Since(start))
	}
}

// withTimeout applies the per-request context deadline. Handlers and
// everything below them (including core.RunRange) honor context
// cancellation, so the deadline also fires when the client
// disconnects — net/http cancels the request context either way.
func (s *Server) withTimeout(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}
