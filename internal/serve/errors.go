package serve

// JSON response plumbing. Every response body positserve writes —
// success or error — is JSON; there is no plaintext http.Error path
// anywhere in the package, so clients can always dispatch on the
// stable machine-readable "code" field of an error envelope.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"

	"positres/internal/spec"
)

// Stable error codes of the service. These are API surface: clients
// dispatch on them, so existing values never change meaning (adding
// new ones is fine). docs/SERVICE.md is the catalogue. The validation
// codes are aliases of the canonical internal/spec constants, so the
// CLI and the HTTP API reject a malformed campaign with the same code.
const (
	codeBadRequest       = spec.CodeBadRequest    // malformed body, missing/invalid field
	codeUnknownFormat    = spec.CodeUnknownFormat // format not in the numfmt registry
	codeUnknownField     = spec.CodeUnknownField  // field not in the sdrbench registry
	codeNotFound         = "not_found"            // no such route or campaign id
	codeMethodNotAllowed = "method_not_allowed"   // route exists, verb does not
	codeQueueFull        = "queue_full"           // campaign queue at capacity (429)
	codeNotReady         = "not_ready"            // results requested before completion
	codeDraining         = "draining"             // server is shutting down
	codeInternal         = "internal"             // unexpected server-side failure
)

// apiError is the body of every non-2xx response:
//
//	{"error": {"code": "queue_full", "message": "..."}}
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the envelope wrapping apiError.
type errorBody struct {
	Error apiError `json:"error"`
}

// writeJSON marshals v (indented, for curl-friendliness) and writes
// it with the given status. Marshal happens before WriteHeader so an
// encoding failure can still produce a well-formed 500 envelope.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Practically unreachable: every payload type in this package
		// marshals by construction (non-finite floats go through
		// JSONFloat). Still, fail as JSON, not as a blank 500.
		raw = []byte(fmt.Sprintf("{\n  \"error\": {\n    \"code\": %q,\n    \"message\": %q\n  }\n}", codeInternal, err.Error()))
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(raw, '\n')); err != nil {
		// The client is gone; nothing useful to do with the error, but
		// don't silently drop it either.
		fmt.Fprintln(os.Stderr, "positserve: response write:", err)
	}
}

// writeError writes the standard JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeJSON(w, status, errorBody{Error: apiError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// JSONFloat is a float64 that marshals non-finite values as the
// strings "NaN", "+Inf" and "-Inf" instead of failing (encoding/json
// rejects them as numbers). Catastrophic flips produce exactly those
// values, so they must survive the trip to the client. It is exported
// because InjectResponse carries it both server-side and in
// Client.Inject's decoded answer.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, inverting MarshalJSON so
// Client.Inject round-trips non-finite values exactly.
func (f *JSONFloat) UnmarshalJSON(raw []byte) error {
	switch string(raw) {
	case `"NaN"`:
		*f = JSONFloat(math.NaN())
		return nil
	case `"+Inf"`:
		*f = JSONFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = JSONFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// HexBits is a bit pattern that marshals as a "0x…" hex string.
// Patterns of the 64-bit formats exceed 2^53, so emitting them as
// JSON numbers would silently lose low bits in any IEEE-double-based
// JSON reader; strings are exact at every width.
type HexBits uint64

// MarshalJSON implements json.Marshaler.
func (b HexBits) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("\"0x%x\"", uint64(b))), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting the "0x…" (or
// bare hex) strings MarshalJSON emits.
func (b *HexBits) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), 16, 64)
	if err != nil {
		return fmt.Errorf("serve: hex bits %q: %w", s, err)
	}
	*b = HexBits(v)
	return nil
}
