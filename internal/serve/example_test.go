package serve_test

// Runnable godoc example for the positserve client path. It compiles
// and executes under `go test`, so the request/response shapes quoted
// in docs/SERVICE.md cannot rot.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"positres/internal/serve"
)

// ExampleNew drives the synchronous what-if endpoint end to end: in
// posit8, flipping bit 6 of the encoding of 1.0 (0x40, the regime's
// most significant bit) collapses the value to zero — relative error
// 1, but not catastrophic (no NaR involved).
func ExampleNew() {
	dir, err := os.MkdirTemp("", "serve-example")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{DataDir: dir})
	if err != nil {
		fmt.Println("new:", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	defer func() { cancel(); srv.Wait() }()

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/inject", "application/json",
		strings.NewReader(`{"format":"posit8","value":1.0,"bit":6}`))
	if err != nil {
		fmt.Println("post:", err)
		return
	}
	defer resp.Body.Close()

	var out struct {
		BitField     string      `json:"bit_field"`
		FaultyBits   string      `json:"faulty_bits"`
		FaultyValue  json.Number `json:"faulty_value"`
		RelErr       json.Number `json:"rel_err"`
		Catastrophic bool        `json:"catastrophic"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fmt.Println("decode:", err)
		return
	}
	fmt.Println("status:", resp.StatusCode)
	fmt.Println("bit_field:", out.BitField)
	fmt.Println("faulty_bits:", out.FaultyBits)
	fmt.Println("faulty_value:", out.FaultyValue)
	fmt.Println("rel_err:", out.RelErr)
	fmt.Println("catastrophic:", out.Catastrophic)
	// Output:
	// status: 200
	// bit_field: regime
	// faulty_bits: 0x0
	// faulty_value: 0
	// rel_err: 1
	// catastrophic: false
}
