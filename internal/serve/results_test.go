package serve

// Tests of the results endpoint's content negotiation: the default CSV
// representation must stay byte-identical to what the pre-store server
// streamed, an explicit application/json Accept must switch to the
// positres-aggregate/v1 summary, and campaigns published by older
// servers (legacy CSV on disk, no .pts store) must keep serving CSV
// while refusing the aggregate view with the existing not_ready code.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positres/internal/store"
)

// completeTinyCampaign runs tinyCampaign to completion and returns its
// terminal status.
func completeTinyCampaign(t *testing.T, tsURL string) CampaignStatus {
	t.Helper()
	var st CampaignStatus
	resp := postJSON(t, tsURL+"/v1/campaigns?wait=1", tinyCampaign, &st)
	if resp.StatusCode != http.StatusOK || st.State != "complete" {
		t.Fatalf("campaign: %d %+v", resp.StatusCode, st)
	}
	if len(st.Results) != 1 {
		t.Fatalf("results = %+v", st.Results)
	}
	return st
}

// getWithAccept issues a GET with an Accept header and returns the
// response; the caller owns the body.
func getWithAccept(t *testing.T, url, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestResultsContentNegotiation pins the negotiated views of one
// result: CSV by default (and under text/csv), the aggregate document
// under application/json, and the typed client fetch of both.
func TestResultsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := completeTinyCampaign(t, ts.URL)
	url := ts.URL + st.Results[0].URL

	csvDefault := fetchCSV(t, url)
	if !strings.HasPrefix(string(csvDefault), "field,codec,") {
		t.Fatalf("default CSV starts %q", csvDefault[:min(len(csvDefault), 40)])
	}

	// An explicit CSV (or wildcard) Accept must not switch views.
	for _, accept := range []string{"text/csv", "*/*", "text/*, */*;q=0.1"} {
		resp := getWithAccept(t, url, accept)
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Fatalf("Accept %q: content type %q", accept, ct)
		}
		if !bytes.Equal(buf.Bytes(), csvDefault) {
			t.Fatalf("Accept %q: CSV differs from the default view", accept)
		}
	}

	resp := getWithAccept(t, url, "application/json")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("aggregate content type %q", ct)
	}
	doc, err := store.ReadDoc(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if doc.Field != "CESM/CLOUD" || doc.Codec != "posit8" || !doc.Sealed {
		t.Fatalf("aggregate identity %+v", doc)
	}
	// tinyCampaign: 8 bit positions × 2 trials per bit.
	if doc.Trials != 16 || len(doc.Bits) != 8 {
		t.Fatalf("aggregate size: %d trials over %d bits", doc.Trials, len(doc.Bits))
	}

	// The typed client sees the same document and the same CSV.
	cl := NewClient(ts.URL, nil)
	got, err := cl.FetchAggregate(context.Background(), st.ID, "CESM/CLOUD", "posit8")
	if err != nil {
		t.Fatal(err)
	}
	if got.Trials != doc.Trials || len(got.Bits) != len(doc.Bits) || !got.Sealed {
		t.Fatalf("client aggregate %+v", got)
	}
	var viaClient bytes.Buffer
	if err := cl.CampaignResult(context.Background(), st.ID, "CESM%2FCLOUD", "posit8", &viaClient); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaClient.Bytes(), csvDefault) {
		t.Fatal("client CSV differs from the default view")
	}
}

// TestResultsLegacyCSVFallback pins compatibility with job directories
// written before the columnar store: a legacy CSV keeps streaming
// unchanged, and the aggregate view is refused with the existing
// not_ready code — no new error vocabulary.
func TestResultsLegacyCSVFallback(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	st := completeTinyCampaign(t, ts.URL)
	url := ts.URL + st.Results[0].URL
	want := fetchCSV(t, url)

	// Rewrite the job directory the way an old server left it: the CSV
	// on disk, no .pts store.
	j, ok := srv.jobs.get(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	ref := st.Results[0]
	if err := os.WriteFile(filepath.Join(j.dir, csvName(ref.Field, ref.Format)), want, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(j.dir, store.FileName(ref.Field, ref.Format))); err != nil {
		t.Fatal(err)
	}

	if got := fetchCSV(t, url); !bytes.Equal(got, want) {
		t.Fatal("legacy CSV fallback differs from the store-rendered bytes")
	}
	resp := getWithAccept(t, url, "application/json")
	var env errorBody
	if err := decodeBody(resp, &env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict || env.Error.Code != codeNotReady {
		t.Fatalf("aggregate on legacy job: %d %+v", resp.StatusCode, env)
	}
	var ae *APIError
	if _, err := NewClient(ts.URL, nil).FetchAggregate(context.Background(), st.ID, ref.Field, ref.Format); !errors.As(err, &ae) || ae.Code != codeNotReady {
		t.Fatalf("client aggregate on legacy job: %v", err)
	}
}

// decodeBody drains and closes a response body into out as JSON.
func decodeBody(resp *http.Response, out interface{}) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestMetricsLiveAggregates pins the /metrics mid-campaign aggregate
// section: a running campaign's store snapshot appears keyed by job
// id, and it disappears once the campaign finishes.
func TestMetricsLiveAggregates(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	st := completeTinyCampaign(t, ts.URL)

	var after metricsResponse
	if resp := getJSON(t, ts.URL+"/metrics", &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if len(after.CampaignAggregates) != 0 {
		t.Fatalf("finished campaign still reported live: %+v", after.CampaignAggregates)
	}

	// Simulate the mid-run window: give the finished job a live writer
	// with one appended shard and read the snapshot the handler serves.
	j, _ := srv.jobs.get(st.ID)
	cw := store.NewCampaignWriter(t.TempDir())
	defer cw.Abort()
	rd, err := store.Open(filepath.Join(j.dir, store.FileName("CESM/CLOUD", "posit8")))
	if err != nil {
		t.Fatal(err)
	}
	trials, err := rd.Trials()
	if cerr := rd.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.AppendShard("CESM/CLOUD", "posit8", 0, 8, trials); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	j.cw = cw
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		j.cw = nil
		j.mu.Unlock()
	}()

	var live metricsResponse
	getJSON(t, ts.URL+"/metrics", &live)
	if len(live.CampaignAggregates) != 1 || live.CampaignAggregates[0].ID != st.ID {
		t.Fatalf("live aggregates = %+v", live.CampaignAggregates)
	}
	aggs := live.CampaignAggregates[0].Aggregates
	if len(aggs) != 1 || aggs[0].Sealed || aggs[0].Trials != uint64(len(trials)) {
		t.Fatalf("live snapshot = %+v", aggs)
	}
}
