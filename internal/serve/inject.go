package serve

// POST /v1/inject — the synchronous single-value, single-bit what-if
// query: encode a value (or take a raw pattern), flip one bit, decode,
// and report the damage. This is one trial of the paper's §4 campaign
// served interactively; for posit8/posit16 the decode hits the
// precomputed LUTs in internal/posit, and the pattern-derived half of
// the answer is LRU-cached per (format, pattern, bit) triple.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"positres/internal/bitflip"
	"positres/internal/numfmt"
	"positres/internal/qcat"
)

// InjectRequest is the body of POST /v1/inject. Exactly one of Value
// and Pattern must be set; Bit is required. It is exported so
// Client.Inject (and through it cmd/positload) can drive the endpoint
// typed.
type InjectRequest struct {
	// Format is a numfmt registry name, e.g. "posit32" or "ieee32".
	Format string `json:"format"`
	// Value is a finite float64 to encode into Format.
	Value *float64 `json:"value"`
	// Pattern is a raw bit pattern as a hex string ("0x4a90" or
	// "4a90"), taken as already encoded in Format.
	Pattern *string `json:"pattern"`
	// Bit is the position to flip, 0 (LSB) to width-1.
	Bit *int `json:"bit"`
}

// InjectResponse is the body of a successful POST /v1/inject. Field
// names follow the campaign CSV schema (docs/SERVICE.md documents
// both), bit patterns are hex strings, and non-finite numbers are the
// strings "NaN"/"+Inf"/"-Inf".
type InjectResponse struct {
	// Format is the canonical codec name the flip ran against.
	Format string `json:"format"`
	// Bit is the flipped position, 0 (LSB) to width-1.
	Bit int `json:"bit"`
	// BitField names the format field the bit lands in (sign, regime,
	// exponent, fraction, ...).
	BitField string `json:"bit_field"`
	// RegimeK is the posit regime value of the original pattern; 0 for
	// non-posit formats.
	RegimeK int `json:"regime_k"`
	// OrigValue is the error baseline: the request value when one was
	// given, else the decoded pattern.
	OrigValue JSONFloat `json:"orig_value"`
	// ReprValue is what the encoded pattern decodes back to.
	ReprValue JSONFloat `json:"repr_value"`
	// OrigBits is the encoded pattern before the flip.
	OrigBits HexBits `json:"orig_bits"`
	// FaultyBits is the pattern after the flip.
	FaultyBits HexBits `json:"faulty_bits"`
	// FaultyValue is what the flipped pattern decodes to.
	FaultyValue JSONFloat `json:"faulty_value"`
	// AbsErr is |faulty - orig|.
	AbsErr JSONFloat `json:"abs_err"`
	// RelErr is AbsErr scaled by |orig| (qcat.Point's convention).
	RelErr JSONFloat `json:"rel_err"`
	// Catastrophic reports whether the flip crossed the paper's
	// catastrophic-error threshold.
	Catastrophic bool `json:"catastrophic"`
	// Cached reports whether the pattern-derived half of the answer
	// came from the server's LRU.
	Cached bool `json:"cached"`
}

// handleInject serves POST /v1/inject.
func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	var req InjectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	codec, err := numfmt.Lookup(req.Format)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeUnknownFormat,
			"unknown format %q (known: %s)", req.Format, strings.Join(numfmt.Names(), ", "))
		return
	}
	if req.Bit == nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "missing required field \"bit\"")
		return
	}
	bit := *req.Bit
	if bit < 0 || bit >= codec.Width() {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"bit %d out of range for %d-bit %s", bit, codec.Width(), codec.Name())
		return
	}
	if (req.Value == nil) == (req.Pattern == nil) {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"exactly one of \"value\" and \"pattern\" must be set")
		return
	}

	// Resolve the input to an encoded pattern. A value input keeps its
	// exact float64 as the error baseline (matching core.Trial's
	// OrigValue); a pattern input's baseline is the decoded value.
	var pattern uint64
	var origValue float64
	if req.Value != nil {
		origValue = *req.Value
		pattern = codec.Encode(origValue)
	} else {
		p, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(*req.Pattern), "0x"), 16, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, "invalid pattern %q: %v", *req.Pattern, err)
			return
		}
		if wd := codec.Width(); wd < 64 && p>>uint(wd) != 0 {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				"pattern %q does not fit %d-bit %s", *req.Pattern, wd, codec.Name())
			return
		}
		pattern = p
	}

	info, cached := s.flipInfoFor(codec, pattern, bit)
	if req.Value == nil {
		origValue = info.reprValue
	}

	// The error metrics are value-derived (two inputs rounding to the
	// same pattern have different baselines), so they are computed per
	// request from the cached pattern-derived half.
	p := qcat.Point(origValue, info.faultyVal)
	writeJSON(w, http.StatusOK, InjectResponse{
		Format:       codec.Name(),
		Bit:          bit,
		BitField:     info.bitField,
		RegimeK:      info.regimeK,
		OrigValue:    JSONFloat(origValue),
		ReprValue:    JSONFloat(info.reprValue),
		OrigBits:     HexBits(pattern),
		FaultyBits:   HexBits(info.faultyBits),
		FaultyValue:  JSONFloat(info.faultyVal),
		AbsErr:       JSONFloat(p.AbsErr),
		RelErr:       JSONFloat(p.RelErr),
		Catastrophic: p.Catastrophic,
		Cached:       cached,
	})
}

// flipInfoFor returns the pattern-derived flip answer, consulting the
// LRU first. The boolean reports whether the answer was served from
// the cache.
func (s *Server) flipInfoFor(codec numfmt.Codec, pattern uint64, bit int) (flipInfo, bool) {
	key := cacheKey{format: codec.Name(), pattern: pattern, bit: bit}
	if info, ok := s.cache.get(key); ok {
		return info, true
	}
	info := flipInfo{
		reprValue:  codec.Decode(pattern),
		faultyBits: bitflip.Flip(pattern, bit),
		bitField:   codec.FieldAt(pattern, bit),
	}
	info.faultyVal = codec.Decode(info.faultyBits)
	if sizer, ok := codec.(numfmt.RegimeSizer); ok {
		info.regimeK = sizer.RegimeK(pattern)
	}
	s.cache.put(key, info)
	return info, false
}
