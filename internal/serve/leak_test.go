package serve

// Goroutine-leak tests for the long-lived moving parts: the job
// store's worker pool and the dispatcher's heartbeat loop. Each test
// snapshots runtime.NumGoroutine before standing the component up,
// drives a full enqueue/cancel/drain (or probe) cycle, tears it down,
// and then polls until the count settles back to the baseline — a
// stuck worker, an un-stopped ticker, or a leaked watcher shows up as
// a count that never returns.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"positres/internal/spec"
	"positres/internal/telemetry"
)

// settleGoroutines polls until the live goroutine count drops back to
// at most base+slack, dumping all stacks on timeout. Polling (rather
// than a single check) tolerates scheduler lag and netpoll teardown.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for n > base+slack {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d live, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
}

// leakSpec is a campaign small enough to finish in milliseconds.
func leakSpec() spec.CampaignSpec {
	return spec.CampaignSpec{
		Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit8"},
		N: 256, TrialsPerBit: 1, Seed: 5,
	}
}

func TestJobStoreGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	s, err := newJobStore(filepath.Join(t.TempDir(), "jobs"), 4, 1, telemetry.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.start(ctx, 2)

	// One job runs to completion.
	j, verr := s.submit(leakSpec())
	if verr != nil {
		t.Fatalf("submit: %s", verr.Message)
	}
	<-j.done

	// One job is cancelled (queued or mid-run, whichever the race
	// gives us — both paths must release their goroutines).
	j2, verr := s.submit(leakSpec())
	if verr != nil {
		t.Fatalf("submit: %s", verr.Message)
	}
	j2.cancelRun()
	<-j2.done

	// Drain: workers exit, nothing left behind.
	cancel()
	s.wait()
	settleGoroutines(t, base)
}

func TestJobStoreDrainWithQueuedJobsGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	s, err := newJobStore(filepath.Join(t.TempDir(), "jobs"), 8, 1, telemetry.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s.start(ctx, 1)

	// Stack the queue deeper than the worker pool, then drain with
	// work still pending: the unfinished jobs stay journaled for the
	// next process, and every worker goroutine must still exit.
	for i := 0; i < 4; i++ {
		if _, verr := s.submit(leakSpec()); verr != nil {
			t.Fatalf("submit %d: %s", i, verr.Message)
		}
	}
	cancel()
	s.wait()
	settleGoroutines(t, base)
}

func TestDispatcherHeartbeatGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()

	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))

	ctx, cancel := context.WithCancel(context.Background())
	d := newDispatcher([]string{backend.URL}, 10*time.Millisecond, time.Millisecond, telemetry.NewCluster())
	d.start(ctx)

	// Let several probe rounds run so the heartbeat loop, its ticker,
	// and the HTTP keep-alive machinery are all live.
	time.Sleep(60 * time.Millisecond)
	if d.size() != 1 {
		t.Fatalf("size = %d, want 1", d.size())
	}

	cancel()
	backend.Close() // drops keep-alive conns so transport readers exit
	settleGoroutines(t, base)
}
