package serve

// The campaign endpoints: POST /v1/campaigns submits a durable job to
// the bounded queue (202 + status URL, or 429 + Retry-After under
// backpressure), GET /v1/campaigns/{id} polls it, and
// GET /v1/campaigns/{id}/results streams one published CSV.
// "?wait=1" on submission couples the campaign to the request's
// context: the handler blocks until the job finishes, and if the
// client disconnects first the cancellation threads all the way down
// through runner.Run into core.RunRange, the runner journals what
// completed, and a restart resumes the remainder.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"positres/internal/spec"
	"positres/internal/store"
)

// CampaignStatus is the body of GET /v1/campaigns/{id} (and of the
// submission response). It is exported so Client can return it typed
// and the top-level positres package can re-export it.
type CampaignStatus struct {
	// ID is the 16-hex-character campaign id.
	ID string `json:"id"`
	// State is one of queued, running, complete, partial, cancelled,
	// failed.
	State string `json:"state"`
	// CreatedAt is the submission time, RFC 3339 UTC.
	CreatedAt string `json:"created_at"`
	// StartedAt is when the job left the queue; empty while queued.
	StartedAt string `json:"started_at,omitempty"`
	// FinishedAt is when the job reached a terminal state.
	FinishedAt string `json:"finished_at,omitempty"`
	// Error carries the failure message of a "failed" job.
	Error string `json:"error,omitempty"`
	// Request is the validated campaign spec, defaults applied.
	Request spec.CampaignSpec `json:"request"`
	// Shards is the live shard tally.
	Shards ShardCounts `json:"shards"`
	// Results lists the published CSVs of a finished campaign.
	Results []ResultRef `json:"results,omitempty"`
	// StatusURL is the canonical polling URL for this campaign.
	StatusURL string `json:"status_url"`
}

// statusOf snapshots a job into its API representation.
func statusOf(j *job) CampaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := CampaignStatus{
		ID:        j.id,
		State:     j.state,
		CreatedAt: j.createdAt.UTC().Format(time.RFC3339),
		Error:     j.errMsg,
		Request:   j.req,
		Shards:    j.counts,
		Results:   append([]ResultRef(nil), j.results...),
		StatusURL: "/v1/campaigns/" + j.id,
	}
	if !j.startedAt.IsZero() {
		st.StartedAt = j.startedAt.UTC().Format(time.RFC3339)
	}
	if !j.finishedAt.IsZero() {
		st.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339)
	}
	return st
}

// handleSubmitCampaign serves POST /v1/campaigns.
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	if s.jobs.draining() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is shutting down")
		return
	}
	var req spec.CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	j, verr := s.jobs.submit(req)
	if verr != nil {
		status := http.StatusBadRequest
		switch verr.Code {
		case codeQueueFull:
			status = http.StatusTooManyRequests
			// Derived from live queue occupancy (not a flat constant):
			// the same value is visible under "backpressure" in /metrics.
			w.Header().Set("Retry-After", strconv.Itoa(s.jobs.retryAfterSeconds()))
		case codeDraining:
			status = http.StatusServiceUnavailable
		case codeInternal:
			status = http.StatusInternalServerError
		}
		writeError(w, status, verr.Code, "%s", verr.Message)
		return
	}

	if r.URL.Query().Get("wait") == "1" {
		// Couple the campaign to this request: block until terminal,
		// and cancel the job if the client goes away first. The
		// journaled shards survive either way.
		select {
		case <-j.done:
			writeJSON(w, http.StatusOK, statusOf(j))
		case <-r.Context().Done():
			j.cancelRun()
			<-j.done // runner drains and journals before the job finishes
		}
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+j.id)
	writeJSON(w, http.StatusAccepted, statusOf(j))
}

// handleCampaignStatus serves GET /v1/campaigns/{id}.
func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, statusOf(j))
}

// acceptsAggregate reports whether the Accept header asks for the
// JSON aggregate view of a result instead of the CSV rows. Only an
// explicit application/json (or +json) request switches — absent,
// wildcard and text/csv headers keep the original CSV behavior, so
// every pre-negotiation client sees byte-identical responses.
func acceptsAggregate(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mt == "application/json" || strings.HasSuffix(mt, "+json") {
			return true
		}
	}
	return false
}

// handleCampaignResults serves GET /v1/campaigns/{id}/results —
// one (field, format) result under content negotiation. The default
// (and any text/csv Accept) streams the trial rows as CSV, rendered
// from the columnar store in block-bounded memory and byte-identical
// to core.WriteTrialsCSV; "Accept: application/json" answers with the
// positres-aggregate/v1 per-bit summary instead, O(bits) with no
// trial scan. Both query parameters may be omitted when the campaign
// published exactly one result.
func (s *Server) handleCampaignResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	st := statusOf(j)
	switch st.State {
	case jobComplete, jobPartial:
		// has results to serve
	case jobFailed, jobCancelled:
		writeError(w, http.StatusConflict, codeNotReady,
			"campaign %s finished %s; no results were published", st.ID, st.State)
		return
	default:
		writeError(w, http.StatusConflict, codeNotReady,
			"campaign %s is %s; results are published on completion", st.ID, st.State)
		return
	}
	if len(st.Results) == 0 {
		writeError(w, http.StatusConflict, codeNotReady,
			"campaign %s published no results (all shards failed)", st.ID)
		return
	}

	field, format := r.URL.Query().Get("field"), r.URL.Query().Get("format")
	var ref *ResultRef
	switch {
	case field == "" && format == "" && len(st.Results) == 1:
		ref = &st.Results[0]
	case field != "" && format != "":
		for i := range st.Results {
			if st.Results[i].Field == field && st.Results[i].Format == format {
				ref = &st.Results[i]
				break
			}
		}
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"campaign %s has %d results; select one with ?field=...&format=...", st.ID, len(st.Results))
		return
	}
	if ref == nil {
		writeError(w, http.StatusNotFound, codeNotFound,
			"campaign %s has no published result for field %q format %q", st.ID, field, format)
		return
	}

	wantAggregate := acceptsAggregate(r.Header.Get("Accept"))
	rd, err := store.Open(filepath.Join(j.dir, store.FileName(ref.Field, ref.Format)))
	if err == nil {
		defer func() {
			if cerr := rd.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "positserve: result close:", cerr)
			}
		}()
		if wantAggregate {
			writeJSON(w, http.StatusOK, rd.Doc())
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if rerr := rd.RenderCSV(w); rerr != nil {
			// Headers are committed; all we can do is log the broken pipe.
			fmt.Fprintln(os.Stderr, "positserve: result stream:", rerr)
		}
		return
	}

	// No store file: a legacy CSV published by an older server. It has
	// no footer aggregates, so only the CSV representation exists.
	if wantAggregate {
		writeError(w, http.StatusConflict, codeNotReady,
			"campaign %s predates the columnar store; only the CSV representation is available", st.ID)
		return
	}
	f, err := os.Open(filepath.Join(j.dir, csvName(ref.Field, ref.Format)))
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, "open result: %v", err)
		return
	}
	defer func() {
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "positserve: result close:", err)
		}
	}()
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := io.Copy(w, f); err != nil {
		// Headers are committed; all we can do is log the broken pipe.
		fmt.Fprintln(os.Stderr, "positserve: result stream:", err)
	}
}

// lookupJob resolves the {id} path value, writing the JSON error
// itself when the id is malformed or unknown.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	if !validJobID(id) {
		writeError(w, http.StatusNotFound, codeNotFound, "malformed campaign id %q", id)
		return nil, false
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "no campaign %q", id)
		return nil, false
	}
	return j, true
}
