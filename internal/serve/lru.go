package serve

// The inject LRU: /v1/inject's workload is many small repeated
// what-if queries over (format, pattern, bit) triples — exactly the
// shape the related-work robustness studies drive interactively — so
// the pattern-derived part of each answer is cached. The value-derived
// part (abs/rel error against the caller's exact input value) is
// recomputed per request; see inject.go.

import (
	"container/list"
	"sync"
)

// cacheKey identifies one what-if query: a format name, an encoded
// bit pattern in that format, and the bit position to flip.
type cacheKey struct {
	format  string
	pattern uint64
	bit     int
}

// flipInfo is the cached, purely pattern-derived portion of an inject
// answer. Everything here is a function of (format, pattern, bit)
// alone, so a cache hit is exact, not approximate.
type flipInfo struct {
	reprValue  float64 // decode(pattern): the representable value
	faultyBits uint64  // pattern XOR (1 << bit)
	faultyVal  float64 // decode(faultyBits)
	bitField   string  // sign/regime/exponent/fraction owning the bit
	regimeK    int     // posit regime run length of pattern (0 for IEEE)
}

// injectCache is a fixed-capacity LRU over flipInfo entries. Safe for
// concurrent use; the zero value is not usable, construct with
// newInjectCache.
type injectCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[cacheKey]*list.Element
	hits   int64
	misses int64
}

// lruEntry is the list element payload.
type lruEntry struct {
	key cacheKey
	val flipInfo
}

// newInjectCache returns an LRU holding at most capacity entries
// (capacity <= 0 means 4096).
func newInjectCache(capacity int) *injectCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &injectCache{cap: capacity, ll: list.New(), items: map[cacheKey]*list.Element{}}
}

// get returns the cached answer for k, marking it most recently used.
func (c *injectCache) get(k cacheKey) (flipInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return flipInfo{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores the answer for k, evicting the least recently used entry
// when the cache is full. Storing an existing key refreshes it.
func (c *injectCache) put(k cacheKey, v flipInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// cacheStats is the /metrics view of the cache.
type cacheStats struct {
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// stats returns a point-in-time snapshot of cache occupancy and
// hit/miss tallies.
func (c *injectCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Size: c.ll.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses}
}
