package serve

// The worker protocol: POST /v1/shards computes one bit-range shard
// and streams its trials back — as a packed binary frame
// (internal/wire, docs/WIRE.md) when the coordinator offers
// application/x-positres-trials in Accept, as text/csv otherwise —
// while POST /v1/workers registers a worker with a coordinator and
// GET /v1/workers lists the registered fleet (coordinator side).
// Every positserve process serves all three — any instance can act as
// coordinator, worker, or both — so a cluster is just N identical
// binaries pointed at each other.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"time"

	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
	"positres/internal/spec"
	"positres/internal/wire"
)

// Shard integrity and deadline headers of the worker protocol. The
// worker announces the exact row count up front and a CRC-32 (IEEE) of
// the CSV bytes as an HTTP trailer; the coordinator's client verifies
// both before a shard result may reach the journal, so a truncated or
// corrupted body is a retryable shard failure, never silent data loss.
// The deadline header carries the coordinator watchdog's remaining
// budget so a chaos-delayed worker abandons computation in step with
// the coordinator timing it out.
const (
	// headerShardRows is the response header carrying the trial count.
	headerShardRows = "X-Positres-Rows"
	// trailerShardCRC is the response trailer carrying the CRC-32
	// (IEEE, lowercase hex) of the exact CSV bytes.
	trailerShardCRC = "X-Positres-Crc32"
	// headerShardDeadline is the request header carrying the
	// coordinator's remaining shard budget in milliseconds.
	headerShardDeadline = "X-Positres-Deadline-Ms"
)

// ShardRequest is the body of POST /v1/shards: one bit-range work
// unit. Spec must name exactly one field and one format — the shard's
// (field, codec) pair — and carries the campaign parameters (n, seed,
// trials_per_bit, keep_zeros) that make the computation deterministic
// wherever it runs.
type ShardRequest struct {
	// Spec is the single-pair campaign spec of the shard.
	Spec spec.CampaignSpec `json:"spec"`
	// BitLo is the inclusive lower bound of the bit range.
	BitLo int `json:"bit_lo"`
	// BitHi is the exclusive upper bound of the bit range.
	BitHi int `json:"bit_hi"`
}

// workerRegistration is the body of POST /v1/workers.
type workerRegistration struct {
	// URL is the worker's base URL as the coordinator should dial it.
	URL string `json:"url"`
}

// workerInfo is one entry of GET /v1/workers.
type workerInfo struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Busy    int    `json:"busy"`
	Fails   int    `json:"consecutive_failures"`
}

// workerList is the body of GET /v1/workers.
type workerList struct {
	Workers []workerInfo `json:"workers"`
}

// handleRunShard serves POST /v1/shards: validate the single-pair
// spec, regenerate the field deterministically, compute the bit range
// through the same core engine a local run uses, and stream the
// trials as CSV. The response is byte-exact trial data, so the
// coordinator's journal — and therefore the final CSVs — cannot
// distinguish local from remote computation.
func (s *Server) handleRunShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	if len(req.Spec.Fields) != 1 || len(req.Spec.Formats) != 1 {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"shard spec must name exactly one field and one format, got %d and %d",
			len(req.Spec.Fields), len(req.Spec.Formats))
		return
	}
	if verr := req.Spec.Validate(); verr != nil {
		writeError(w, http.StatusBadRequest, verr.Code, "%s", verr.Message)
		return
	}
	codec, err := numfmt.Lookup(req.Spec.Formats[0])
	if err != nil { // unreachable after Validate, but keep the guard cheap
		writeError(w, http.StatusBadRequest, codeUnknownFormat, "%v", err)
		return
	}
	if req.BitLo < 0 || req.BitHi > codec.Width() || req.BitLo >= req.BitHi {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"bit range [%d, %d) is invalid for %d-bit format %s",
			req.BitLo, req.BitHi, codec.Width(), codec.Name())
		return
	}
	field, err := sdrbench.Lookup(req.Spec.Fields[0])
	if err != nil {
		writeError(w, http.StatusBadRequest, codeUnknownField, "%v", err)
		return
	}

	// Honor the coordinator's shard deadline: when the watchdog over
	// there has D ms left, computing past D here is wasted work — the
	// coordinator has already failed the attempt and re-dispatched.
	ctx := r.Context()
	if ms, err := strconv.ParseInt(r.Header.Get(headerShardDeadline), 10, 64); err == nil && ms > 0 {
		dctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
		ctx = dctx
	}

	data := sdrbench.ToFloat64(field.Generate(req.Spec.N, req.Spec.Seed))
	trials, err := core.RunRange(ctx, core.ConfigFromSpec(&req.Spec),
		codec, req.Spec.Fields[0], data, req.BitLo, req.BitHi)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, "shard computation: %v", err)
		return
	}

	// Binary negotiation (docs/WIRE.md): a coordinator that offers
	// application/x-positres-trials in Accept gets a packed frame; any
	// other client gets the CSV envelope below, unchanged — an old
	// coordinator never sees a byte it cannot parse.
	if wire.Accepts(r.Header.Get("Accept")) {
		frame, ferr := wire.EncodeFrame(trials)
		if ferr != nil { // unreachable for engine output; fail loud, not silent
			writeError(w, http.StatusInternalServerError, codeInternal, "shard frame encode: %v", ferr)
			return
		}
		// The frame is self-delimiting and self-verifying (length
		// prefix + internal CRC-32), so it needs no trailer; the row
		// count header stays as a cheap cross-check.
		w.Header().Set(headerShardRows, strconv.Itoa(len(trials)))
		w.Header().Set("Content-Type", wire.ContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
		w.WriteHeader(http.StatusOK)
		if _, werr := w.Write(frame); werr != nil {
			// The coordinator sees a truncated frame (ErrTruncated) and
			// retries the shard elsewhere.
			fmt.Fprintln(os.Stderr, "positserve: shard frame stream:", werr)
		}
		return
	}

	// Integrity envelope: exact row count as a header (known before the
	// body) and a CRC-32 of the CSV bytes as a declared trailer (known
	// only after). A fault anywhere on the wire breaks at least one of
	// them, and the client refuses to journal the shard.
	w.Header().Set("Trailer", trailerShardCRC)
	w.Header().Set(headerShardRows, strconv.Itoa(len(trials)))
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	crc := crc32.NewIEEE()
	if err := core.WriteTrialsCSV(io.MultiWriter(w, crc), trials); err != nil {
		// Headers are committed; the coordinator sees a truncated CSV,
		// fails the integrity check, and retries the shard elsewhere.
		fmt.Fprintln(os.Stderr, "positserve: shard stream:", err)
		return // no trailer: the client treats its absence as truncation
	}
	w.Header().Set(trailerShardCRC, fmt.Sprintf("%08x", crc.Sum32()))
}

// handleRegisterWorker serves POST /v1/workers: add (idempotently)
// one worker to the dispatch pool.
func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var reg workerRegistration
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "invalid JSON body: %v", err)
		return
	}
	u, err := url.Parse(reg.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest,
			"worker url %q must be absolute (scheme + host)", reg.URL)
		return
	}
	s.cluster.add(reg.URL)
	writeJSON(w, http.StatusOK, s.cluster.list())
}

// handleListWorkers serves GET /v1/workers.
func (s *Server) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.list())
}
