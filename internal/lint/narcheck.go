package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NaRCheck flags functions that feed a posit decode result straight
// into arithmetic without any NaR/NaN guard. NaR decodes to NaN, and
// NaN silently poisons every downstream error metric (all comparisons
// false, means become NaN), which is exactly how a campaign can
// under-count catastrophic flips. A function that computes with a
// decode result must consult IsNaR / IsSpecial / math.IsNaN /
// math.IsInf somewhere; functions that merely store or forward the
// result delegate the obligation to the consumer.
//
// Decode sources recognised:
//   - calls to functions named DecodeFloat64 or DecodeEq2;
//   - calls to methods named Decode with signature func(uint64) float64
//     (the numfmt.Codec contract).
//
// Guards recognised anywhere in the same function: calls to functions
// or methods named IsNaR, IsSpecial, IsNaN or IsInf.
type NaRCheck struct{}

// NewNaRCheck returns the rule.
func NewNaRCheck() *NaRCheck { return &NaRCheck{} }

// ID implements Rule.
func (*NaRCheck) ID() string { return "narcheck" }

// Doc implements Rule.
func (*NaRCheck) Doc() string {
	return "flags arithmetic on posit decode results with no IsNaR/IsNaN guard in the function"
}

// Check implements Rule.
func (r *NaRCheck) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	walkFuncs(pass, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
		decodes := decodeCalls(pass, body)
		if len(decodes) == 0 || hasNaRGuard(pass, body) {
			return
		}
		// Objects holding a decode result: v := codec.Decode(b).
		resultObjs := map[types.Object]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !decodes[call] {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						resultObjs[obj] = true
					} else if obj := pass.Info.Uses[id]; obj != nil {
						resultObjs[obj] = true
					}
				}
			}
			return true
		})
		// Arithmetic consumption: a decode call (or a variable holding
		// one) as operand of +, -, *, / — including the compound
		// assignment forms (acc += decode(...)).
		ast.Inspect(body, func(n ast.Node) bool {
			var operands []ast.Expr
			var pos token.Pos
			switch e := n.(type) {
			case *ast.BinaryExpr:
				switch e.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					operands, pos = []ast.Expr{e.X, e.Y}, e.OpPos
				default:
					return true
				}
			case *ast.AssignStmt:
				switch e.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					operands, pos = e.Rhs, e.TokPos
				default:
					return true
				}
			default:
				return true
			}
			for _, operand := range operands {
				operand = ast.Unparen(operand)
				if call, ok := operand.(*ast.CallExpr); ok && decodes[call] {
					out = append(out, pass.Diag(r, pos,
						"arithmetic on posit decode result %s with no NaR/NaN guard in this function (NaR decodes to NaN and poisons error metrics)", exprString(operand)))
					continue
				}
				if id, ok := operand.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && resultObjs[obj] {
						out = append(out, pass.Diag(r, pos,
							"arithmetic on %s, which holds a posit decode result, with no NaR/NaN guard in this function", id.Name))
					}
				}
			}
			return true
		})
	})
	return out
}

// decodeCalls finds the decode-source call expressions in body.
func decodeCalls(pass *Pass, body ast.Node) map[*ast.CallExpr]bool {
	calls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		switch fn.Name() {
		case "DecodeFloat64", "DecodeEq2":
			calls[call] = true
		case "Decode":
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
				isBasicKind(sig.Params().At(0).Type(), types.Uint64) &&
				isBasicKind(sig.Results().At(0).Type(), types.Float64) {
				calls[call] = true
			}
		}
		return true
	})
	return calls
}

// hasNaRGuard reports whether body calls any special-value predicate.
func hasNaRGuard(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil {
			switch fn.Name() {
			case "IsNaR", "IsSpecial", "IsNaN", "IsInf":
				found = true
			}
		}
		return true
	})
	return found
}

// isBasicKind reports whether t's underlying type is the given basic
// kind.
func isBasicKind(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}
