package lint

import (
	"fmt"
	"os"
	"path"
	"strconv"
	"strings"
)

// Suppressions is the parsed form of a .positlint.suppress file.
//
// The file holds one entry per line:
//
//	<rule> <path>[:<line>] -- <reason>
//
// where <rule> may be "*" (any rule), <path> is the slash-separated
// file path relative to the module root (glob patterns per path.Match
// are allowed), and the reason after "--" is mandatory — every
// suppression must explain why the finding is a false positive.
// Blank lines and lines starting with '#' are ignored.
type Suppressions struct {
	Entries []SuppressEntry // parsed suppression lines, file order
}

// SuppressEntry is one parsed suppression line.
type SuppressEntry struct {
	Rule   string // rule identifier, or "*" for any rule
	Path   string // slash-separated, relative to module root; may be a glob
	Line   int    // 0 = whole file
	Reason string // mandatory justification after "--"
}

// ParseSuppressions parses suppression-file content. name is used in
// error messages only.
func ParseSuppressions(name, content string) (*Suppressions, error) {
	s := &Suppressions{}
	for i, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body, reason, ok := strings.Cut(line, "--")
		reason = strings.TrimSpace(reason)
		if !ok || reason == "" {
			return nil, fmt.Errorf("%s:%d: suppression needs a reason after \"--\"", name, i+1)
		}
		fields := strings.Fields(strings.TrimSpace(body))
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<rule> <path>[:<line>] -- <reason>\", got %q", name, i+1, line)
		}
		e := SuppressEntry{Rule: fields[0], Path: fields[1], Reason: reason}
		if base, ln, ok := strings.Cut(fields[1], ":"); ok {
			n, err := strconv.Atoi(ln)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%s:%d: bad line number in %q", name, i+1, fields[1])
			}
			e.Path, e.Line = base, n
		}
		if e.Rule != "*" {
			if _, ok := RuleByID(e.Rule); !ok {
				return nil, fmt.Errorf("%s:%d: unknown rule %q", name, i+1, e.Rule)
			}
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}

// LoadSuppressions reads and parses a suppression file. A missing
// file yields an empty (never nil) set.
func LoadSuppressions(file string) (*Suppressions, error) {
	data, err := os.ReadFile(file)
	if os.IsNotExist(err) {
		return &Suppressions{}, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseSuppressions(file, string(data))
}

// Match reports whether d is covered by any entry.
func (s *Suppressions) Match(d Diagnostic) bool {
	for _, e := range s.Entries {
		if e.Matches(d) {
			return true
		}
	}
	return false
}

// Matches reports whether this single entry covers d — rule, optional
// line pin, and path (exact or path.Match glob) all agree.
func (e SuppressEntry) Matches(d Diagnostic) bool {
	if e.Rule != "*" && e.Rule != d.RuleID {
		return false
	}
	if e.Line != 0 && e.Line != d.Pos.Line {
		return false
	}
	if ok, _ := path.Match(e.Path, d.Pos.Filename); !ok && e.Path != d.Pos.Filename {
		return false
	}
	return true
}
