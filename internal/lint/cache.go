package lint

// Content-hash diagnostic cache. Type-checking the whole module and
// re-running fourteen rules on every `make lint` grows linearly with
// the repo; the cache cuts the rule pass to the packages that actually
// changed. The key covers everything a package's diagnostics can
// depend on: the engine version, the rule set, the fact-index hash
// (facts are cross-package inputs, so any fact change invalidates
// everything), and the content hash of every file in the package.
// Entries therefore never go stale-but-valid — a hit is exact by
// construction, and eviction is unnecessary for a repo-sized corpus.
//
// Cached entries hold the post-inline-ignore, pre-file-suppression
// diagnostic set: inline directives live in the hashed file contents,
// while .positlint.suppress is applied after the cache layer, so
// editing the suppression file never forces re-analysis.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"positres/internal/atomicio"
)

// cacheVersion invalidates every entry when the engine or a rule's
// semantics change. Bump it alongside behavioural rule edits.
const cacheVersion = "positlint-cache/v1"

// Cache is a directory of per-package diagnostic records keyed by
// content hash. The zero value (nil) disables caching. Safe for
// concurrent use: entries are immutable once written and writes are
// atomic renames.
type Cache struct {
	// Dir is the cache directory; created on first write.
	Dir string
}

// NewCache returns a cache rooted at dir.
func NewCache(dir string) *Cache { return &Cache{Dir: dir} }

// cacheEntry is the on-disk record.
type cacheEntry struct {
	Schema string       `json:"schema"` // cacheVersion, verified on read
	Diags  []Diagnostic `json:"diags"`  // post-inline-ignore diagnostics
}

// key derives the content-hash key for one package under a rule set
// and fact index. Reading a source file fails only if the tree
// changed mid-run; the caller treats any error as "don't cache".
func (c *Cache) key(pkg *Package, ruleIDs []string, factsHash string) (string, error) {
	h := sha256.New()
	_, _ = io.WriteString(h, cacheVersion)
	_, _ = io.WriteString(h, pkg.Path)
	ids := append([]string(nil), ruleIDs...)
	sort.Strings(ids)
	for _, id := range ids {
		_, _ = io.WriteString(h, id)
	}
	_, _ = io.WriteString(h, factsHash)
	names := make([]string, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		names = append(names, pkg.Fset.Position(f.Package).Filename)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", fmt.Errorf("lint: cache key: %w", err)
		}
		sum := sha256.Sum256(data)
		_, _ = io.WriteString(h, name)
		_, _ = h.Write(sum[:])
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// get loads the entry for key; a miss, unreadable file or version
// mismatch reports !ok and the package is re-analyzed.
func (c *Cache) get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.Dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil || entry.Schema != cacheVersion {
		return nil, false
	}
	return entry.Diags, true
}

// put records diags under key. Failures are deliberately swallowed:
// the cache is an accelerator, never a correctness dependency, and a
// read-only cache dir must not fail the lint run itself.
func (c *Cache) put(key string, diags []Diagnostic) {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return
	}
	raw, err := json.Marshal(cacheEntry{Schema: cacheVersion, Diags: diags})
	if err != nil {
		return
	}
	// Atomic write so a concurrent reader never sees a torn entry.
	_ = atomicio.WriteFileBytes(filepath.Join(c.Dir, key+".json"), raw)
}
