package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CSVHeader keeps string-list schema registries and the structs they
// mirror from drifting apart. The repo's wire formats are deliberate
// plain CSV/JSON with a hand-maintained header registry next to the
// struct they serialize — core.trialHeader names the fifteen columns
// of core.Trial, and every encode/decode path is expected to touch
// every field. Nothing in the language ties the three together: add a
// field to Trial and forget the header (or the encoder), and campaign
// archives silently lose a column while old readers keep "working" on
// shifted data.
//
// The rule keys on the naming convention `<x>Header` → struct `<X>`
// (trialHeader → Trial), resolved through the fact index so the
// registry and the struct may live in different packages. It fires
// when:
//
//   - the registry length differs from the struct's named field count
//     (a field was added or removed without updating the header);
//   - a function references both the registry and at least one field
//     of the struct — the shape of every encoder and decoder — but
//     does not reference ALL of the struct's fields. A positional
//     composite literal of the struct counts as referencing every
//     field (the compiler already enforces arity there).
//
// Functions that reference the struct without the header (business
// logic) or the header without fields (writing the header row) are
// out of scope: only code that claims to map between the two is held
// to completeness.
type CSVHeader struct{}

// NewCSVHeader returns the rule.
func NewCSVHeader() *CSVHeader { return &CSVHeader{} }

// ID implements Rule.
func (*CSVHeader) ID() string { return "csvheader" }

// Doc implements Rule.
func (*CSVHeader) Doc() string {
	return "flags <x>Header registries and encode/decode paths that drift from the struct they serialize"
}

// headerStructName maps a registry variable name to the struct it
// mirrors: trialHeader -> Trial. Empty when the name does not follow
// the convention.
func headerStructName(varName string) string {
	base, ok := strings.CutSuffix(varName, "Header")
	if !ok || base == "" {
		return ""
	}
	return strings.ToUpper(base[:1]) + base[1:]
}

// Check implements Rule.
func (r *CSVHeader) Check(pass *Pass) []Diagnostic {
	if pass.Facts == nil {
		return nil
	}
	var out []Diagnostic
	for _, fact := range pass.Facts.StringLists {
		if fact.Pkg != pass.Path {
			continue // diagnostics are anchored in the declaring package
		}
		structName := headerStructName(fact.Name)
		if structName == "" {
			continue
		}
		sf := pass.Facts.StructIn(fact.Pkg, structName)
		if sf == nil {
			continue // no struct of that name anywhere: not a schema registry
		}
		if len(fact.Elems) != len(sf.Fields) {
			out = append(out, pass.Diag(r, fact.pos,
				"%s has %d columns but %s has %d fields; header and struct must stay in lockstep",
				fact.Name, len(fact.Elems), structName, len(sf.Fields)))
		}
		out = append(out, r.checkMappers(pass, fact, sf)...)
	}
	return out
}

// checkMappers flags functions that reference both the header registry
// and a strict subset of the struct's fields.
func (r *CSVHeader) checkMappers(pass *Pass, fact *StringListFact, sf *StructFact) []Diagnostic {
	// Resolve the registry variable object by declaration position so
	// shadowing locals of the same name cannot confuse the match.
	var headerObj types.Object
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Pos() == fact.pos {
				headerObj = pass.Info.Defs[id]
				return false
			}
			return true
		})
		if headerObj != nil {
			break
		}
	}
	if headerObj == nil {
		return nil
	}

	var out []Diagnostic
	walkFuncs(pass, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
		var headerUse ast.Node
		fields := map[string]bool{}
		all := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if headerUse == nil && pass.Info.Uses[x] == headerObj {
					headerUse = x
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if isNamedStruct(sel.Recv(), sf.Name) {
						fields[x.Sel.Name] = true
					}
				}
			case *ast.CompositeLit:
				if t := pass.TypeOf(x); t != nil && isNamedStruct(t, sf.Name) {
					keyed := false
					for _, el := range x.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							keyed = true
							if id, ok := kv.Key.(*ast.Ident); ok {
								fields[id.Name] = true
							}
						}
					}
					if !keyed && len(x.Elts) == len(sf.Fields) {
						all = true // positional literal: compiler enforces arity
					}
				}
			}
			return true
		})
		if headerUse == nil || all || len(fields) == 0 {
			return
		}
		var missing []string
		for _, f := range sf.Fields {
			if !fields[f.Name] {
				missing = append(missing, f.Name)
			}
		}
		if len(missing) == 0 {
			return
		}
		sort.Strings(missing)
		out = append(out, pass.Diag(r, headerUse.Pos(),
			"%s maps %s to %s but never touches field(s) %s; encode/decode paths must cover every field",
			name, fact.Name, sf.Name, strings.Join(missing, ", ")))
	})
	return out
}

// isNamedStruct reports whether t (after pointer deref) is the named
// struct type called name.
func isNamedStruct(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != name {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}
