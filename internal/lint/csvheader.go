package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CSVHeader keeps string-list schema registries and the structs they
// mirror from drifting apart. The repo's wire formats are deliberate
// plain CSV/JSON with a hand-maintained header registry next to the
// struct they serialize — core.trialHeader names the fifteen columns
// of core.Trial, and every encode/decode path is expected to touch
// every field. Nothing in the language ties the three together: add a
// field to Trial and forget the header (or the encoder), and campaign
// archives silently lose a column while old readers keep "working" on
// shifted data.
//
// The rule keys on the naming convention `<x>Header` → struct `<X>`
// (trialHeader → Trial), resolved through the fact index so the
// registry and the struct may live in different packages. A
// `<x>WireHeader` registry with no `<X>Wire` struct falls back to
// `<X>` (trialWireHeader → Trial): the binary wire encoder keeps its
// own copy of the column registry, and it must mirror the same
// struct. The rule fires when:
//
//   - the registry length differs from the struct's named field count
//     (a field was added or removed without updating the header);
//   - a function references both the registry and at least one field
//     of the struct — the shape of every encoder and decoder — but
//     does not reference ALL of the struct's fields. A positional
//     composite literal of the struct counts as referencing every
//     field (the compiler already enforces arity there);
//   - two registries anywhere in the repo mirror the same struct but
//     disagree elementwise (core.trialHeader vs wire.trialWireHeader)
//     — the CSV journal and the binary wire would then order or name
//     columns differently, which no per-registry check can see.
//
// Functions that reference the struct without the header (business
// logic) or the header without fields (writing the header row) are
// out of scope: only code that claims to map between the two is held
// to completeness.
type CSVHeader struct{}

// NewCSVHeader returns the rule.
func NewCSVHeader() *CSVHeader { return &CSVHeader{} }

// ID implements Rule.
func (*CSVHeader) ID() string { return "csvheader" }

// Doc implements Rule.
func (*CSVHeader) Doc() string {
	return "flags <x>Header registries, encode/decode paths and sibling registries that drift from the struct they serialize"
}

// headerStructCandidates maps a registry variable name to the struct
// names it may mirror, most specific first: trialHeader -> [Trial],
// trialWireHeader -> [TrialWire, Trial]. The Wire fallback is what
// lets a binary encoder's column registry bind to the same struct as
// the CSV one. Nil when the name does not follow the convention.
func headerStructCandidates(varName string) []string {
	base, ok := strings.CutSuffix(varName, "Header")
	if !ok || base == "" {
		return nil
	}
	cands := []string{strings.ToUpper(base[:1]) + base[1:]}
	if trimmed, ok := strings.CutSuffix(base, "Wire"); ok && trimmed != "" {
		cands = append(cands, strings.ToUpper(trimmed[:1])+trimmed[1:])
	}
	return cands
}

// resolveStruct binds a registry fact to the struct it mirrors, trying
// each naming candidate through the fact index. Nil when no candidate
// names a struct anywhere — then the variable is not a schema registry.
func resolveStruct(facts *FactIndex, fact *StringListFact) *StructFact {
	for _, name := range headerStructCandidates(fact.Name) {
		if sf := facts.StructIn(fact.Pkg, name); sf != nil {
			return sf
		}
	}
	return nil
}

// Check implements Rule.
func (r *CSVHeader) Check(pass *Pass) []Diagnostic {
	if pass.Facts == nil {
		return nil
	}
	var out []Diagnostic
	for _, fact := range pass.Facts.StringLists {
		if fact.Pkg != pass.Path {
			continue // diagnostics are anchored in the declaring package
		}
		sf := resolveStruct(pass.Facts, fact)
		if sf == nil {
			continue // no struct of that name anywhere: not a schema registry
		}
		if len(fact.Elems) != len(sf.Fields) {
			out = append(out, pass.Diag(r, fact.pos,
				"%s has %d columns but %s has %d fields; header and struct must stay in lockstep",
				fact.Name, len(fact.Elems), sf.Name, len(sf.Fields)))
		}
		out = append(out, r.checkSiblings(pass, fact, sf)...)
		out = append(out, r.checkMappers(pass, fact, sf)...)
	}
	return out
}

// checkSiblings compares fact against every other registry in the
// repo that mirrors the same struct: a CSV header and a wire header
// serializing one struct must agree column for column, or the two
// encodings of the same data diverge. Each unordered pair is reported
// once, anchored at the registry with the greater "pkg.name" key (the
// wire copy, in the core-vs-wire case — the derived registry follows
// the canonical one).
func (r *CSVHeader) checkSiblings(pass *Pass, fact *StringListFact, sf *StructFact) []Diagnostic {
	var out []Diagnostic
	key := fact.Pkg + "." + fact.Name
	var okeys []string
	for okey := range pass.Facts.StringLists {
		okeys = append(okeys, okey)
	}
	sort.Strings(okeys) // deterministic diagnostic order
	for _, okey := range okeys {
		if okey >= key {
			continue
		}
		other := pass.Facts.StringLists[okey]
		osf := resolveStruct(pass.Facts, other)
		if osf == nil || osf.Pkg != sf.Pkg || osf.Name != sf.Name {
			continue
		}
		n := len(fact.Elems)
		if len(other.Elems) < n {
			n = len(other.Elems)
		}
		diff := -1
		for i := 0; i < n; i++ {
			if fact.Elems[i] != other.Elems[i] {
				diff = i
				break
			}
		}
		switch {
		case diff >= 0:
			out = append(out, pass.Diag(r, fact.pos,
				"%s and %s both mirror %s but disagree at column %d: %q vs %q; sibling registries must agree elementwise",
				fact.Name, okey, sf.Name, diff, fact.Elems[diff], other.Elems[diff]))
		case len(fact.Elems) != len(other.Elems):
			out = append(out, pass.Diag(r, fact.pos,
				"%s has %d columns but sibling registry %s has %d; registries mirroring %s must agree elementwise",
				fact.Name, len(fact.Elems), okey, len(other.Elems), sf.Name))
		}
	}
	return out
}

// checkMappers flags functions that reference both the header registry
// and a strict subset of the struct's fields.
func (r *CSVHeader) checkMappers(pass *Pass, fact *StringListFact, sf *StructFact) []Diagnostic {
	// Resolve the registry variable object by declaration position so
	// shadowing locals of the same name cannot confuse the match.
	var headerObj types.Object
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Pos() == fact.pos {
				headerObj = pass.Info.Defs[id]
				return false
			}
			return true
		})
		if headerObj != nil {
			break
		}
	}
	if headerObj == nil {
		return nil
	}

	var out []Diagnostic
	walkFuncs(pass, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
		var headerUse ast.Node
		fields := map[string]bool{}
		all := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if headerUse == nil && pass.Info.Uses[x] == headerObj {
					headerUse = x
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if isNamedStruct(sel.Recv(), sf.Name) {
						fields[x.Sel.Name] = true
					}
				}
			case *ast.CompositeLit:
				if t := pass.TypeOf(x); t != nil && isNamedStruct(t, sf.Name) {
					keyed := false
					for _, el := range x.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							keyed = true
							if id, ok := kv.Key.(*ast.Ident); ok {
								fields[id.Name] = true
							}
						}
					}
					if !keyed && len(x.Elts) == len(sf.Fields) {
						all = true // positional literal: compiler enforces arity
					}
				}
			}
			return true
		})
		if headerUse == nil || all || len(fields) == 0 {
			return
		}
		var missing []string
		for _, f := range sf.Fields {
			if !fields[f.Name] {
				missing = append(missing, f.Name)
			}
		}
		if len(missing) == 0 {
			return
		}
		sort.Strings(missing)
		out = append(out, pass.Diag(r, headerUse.Pos(),
			"%s maps %s to %s but never touches field(s) %s; encode/decode paths must cover every field",
			name, fact.Name, sf.Name, strings.Join(missing, ", ")))
	})
	return out
}

// isNamedStruct reports whether t (after pointer deref) is the named
// struct type called name.
func isNamedStruct(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != name {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}
