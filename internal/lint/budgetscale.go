package lint

import (
	"go/ast"
	"go/types"
)

// BudgetScale enforces that code which is handed a trial Budget
// actually scales with it. The figure builders accept a Budget so one
// flag (--budget) moves the whole statistical resolution of a run —
// trials per bit, dataset sizes, shard counts — together. The failure
// mode this rule exists for: a builder takes the Budget, then
// hard-codes TrialsPerBit or DatasetN in a campaign config anyway, so
// a 10x budget bump silently leaves one figure at its old resolution
// and its confidence intervals quietly lie next to the others'.
//
// The rule activates inside any function or method that receives a
// value of a named type called Budget (parameter or receiver) and
// flags, within that body:
//
//   - composite literal fields named TrialsPerBit or DatasetN given a
//     non-zero constant value;
//   - assignments to selectors .TrialsPerBit or .DatasetN from a
//     non-zero constant.
//
// Values derived from the Budget (b.TrialsPerBit / 4, min(b.DatasetN,
// cap)...) are exempt because they reference the budget parameter;
// the zero constant is exempt because zero means "use the default"
// throughout the config types.
type BudgetScale struct{}

// NewBudgetScale returns the rule.
func NewBudgetScale() *BudgetScale { return &BudgetScale{} }

// ID implements Rule.
func (*BudgetScale) ID() string { return "budgetscale" }

// Doc implements Rule.
func (*BudgetScale) Doc() string {
	return "flags hard-coded trial counts inside functions that receive a Budget"
}

// budgetFields are the knobs a Budget is supposed to drive.
var budgetFields = map[string]bool{"TrialsPerBit": true, "DatasetN": true}

// isBudgetType reports whether t (after pointer deref) is a named type
// called Budget.
func isBudgetType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Budget"
}

// Check implements Rule.
func (r *BudgetScale) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	// walkFuncs drops receivers, and methods on a Budget-carrying
	// config type are exactly where hard-coding happens — walk the
	// FuncDecls directly.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			budget := budgetObjects(pass, fd)
			if len(budget) == 0 {
				continue
			}
			out = append(out, r.checkBody(pass, fd, budget)...)
		}
	}
	return out
}

// budgetObjects collects the Budget-typed parameters and receiver of
// fd, plus parameters of struct types that carry a Budget field — the
// objects whose use exempts a trial-count expression.
func budgetObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	objs := map[types.Object]bool{}
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if isBudgetType(obj.Type()) || hasBudgetField(obj.Type()) {
					objs[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return objs
}

// hasBudgetField reports whether t (after pointer deref) is a struct
// with a Budget-typed field, so configs that embed the budget also
// activate the rule.
func hasBudgetField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isBudgetType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// checkBody flags hard-coded budget knobs inside one Budget-receiving
// function.
func (r *BudgetScale) checkBody(pass *Pass, fd *ast.FuncDecl, budget map[types.Object]bool) []Diagnostic {
	var out []Diagnostic
	flag := func(field string, value ast.Expr, at ast.Node) {
		if !budgetFields[field] {
			return
		}
		if _, isConst := constIntVal(pass, value); !isConst || isConstZero(pass, value) {
			return
		}
		if usesAnyObject(pass, value, budget) {
			return // derived from the budget: scaling correctly
		}
		out = append(out, pass.Diag(r, at.Pos(),
			"%s hard-codes %s = %s inside a Budget-receiving function; derive it from the budget so --budget scales this path",
			fd.Name.Name, field, exprString(value)))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					flag(key.Name, kv.Value, kv)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					flag(sel.Sel.Name, x.Rhs[i], x)
				}
			}
		}
		return true
	})
	return out
}
