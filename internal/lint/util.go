package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// walkFuncs visits every function body in the package, handing the
// visitor the enclosing declaration (FuncDecl or FuncLit at top level
// of a var initializer) so rules can reason per-function.
func walkFuncs(pass *Pass, fn func(name string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Name.Name, d.Type, d.Body)
				}
				return false // nested FuncLits are part of this body
			case *ast.FuncLit:
				fn("func literal", d.Type, d.Body)
				return false
			}
			return true
		})
	}
}

// inspectWithin walks body including nested function literals.
func inspectWithin(body ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(body, fn)
}

// isFloat reports whether t's underlying type is a floating-point
// basic type (float32, float64, or an untyped float constant).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isSignedInt reports whether t's underlying type is a signed
// integer.
func isSignedInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUnsigned == 0
}

// intWidth returns the bit width of an integer type (64 for int,
// uint and uintptr on every platform this repo targets), or 0 when t
// is not a basic integer.
func intWidth(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr, types.UntypedInt:
		return 64
	}
	return 0
}

// constIntVal returns the exact integer value of e when the
// type-checker folded it to a constant.
func constIntVal(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		// Out of int64 range: certainly huge, report as huge.
		return 1 << 62, true
	}
	return v, true
}

// isConstZero reports whether e folded to the exact constant 0 (of
// any numeric flavour).
func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// rootObjects collects the variable objects referenced by e (its
// identifiers and selector fields), used for guard detection.
func rootObjects(pass *Pass, e ast.Expr) map[types.Object]bool {
	objs := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					objs[obj] = true
				}
			}
		}
		return true
	})
	return objs
}

// usesAnyObject reports whether body references any of the objects.
func usesAnyObject(pass *Pass, body ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// calleeFunc resolves a call expression to the *types.Func it
// invokes (function or method), or nil for builtins, conversions and
// function-typed variables.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// namedSyncType reports whether t is the named sync.X type.
func namedSyncType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// isErrorType reports whether t is the predeclared error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
