package lint

// Machine-readable diagnostics: `positlint -format json` emits a
// schema-tagged report that CI archives as an artifact (scripts/ci.sh)
// and downstream tooling can consume without scraping the text form.
// The schema follows the repo's artifact convention (positres-bench/v1,
// positres-telemetry/v1): a stable "schema" tag plus a flat issue
// list, so adding fields is backward-compatible and readers can
// dispatch on the tag.

import (
	"encoding/json"
	"fmt"
	"io"

	"positres/internal/artifact"
)

// JSONSchema tags every -format json report.
const JSONSchema = "positlint-diag/v1"

// JSONReport is the -format json document.
type JSONReport struct {
	Schema string      `json:"schema"` // always JSONSchema
	Count  int         `json:"count"`  // len(Issues), for cheap gating
	Issues []JSONIssue `json:"issues"` // findings sorted by position
}

// JSONIssue is one diagnostic in wire form.
type JSONIssue struct {
	File    string `json:"file"`    // module-relative path
	Line    int    `json:"line"`    // 1-based line
	Col     int    `json:"col"`     // 1-based column
	Rule    string `json:"rule"`    // stable rule ID
	Message string `json:"message"` // human-readable explanation
	Fixable bool   `json:"fixable"` // true when `positlint -fix` can resolve it
}

// Report converts diagnostics to the wire document.
func Report(diags []Diagnostic) *JSONReport {
	rep := &JSONReport{Schema: JSONSchema, Count: len(diags), Issues: []JSONIssue{}}
	for _, d := range diags {
		rep.Issues = append(rep.Issues, JSONIssue{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.RuleID,
			Message: d.Message,
			Fixable: d.Fix != nil,
		})
	}
	return rep
}

// WriteJSON writes the diagnostics as an indented JSON report.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	raw, err := json.MarshalIndent(Report(diags), "", "  ")
	if err != nil {
		return fmt.Errorf("lint: encode report: %w", err)
	}
	_, err = w.Write(append(raw, '\n'))
	return err
}

// ReadJSON parses a report written by WriteJSON, verifying the schema
// tag — the round-trip contract CI and tests rely on.
func ReadJSON(r io.Reader) (*JSONReport, error) {
	var rep JSONReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("lint: decode report: %w", err)
	}
	if err := artifact.CheckSchema(rep.Schema, JSONSchema); err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	return &rep, nil
}
