package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrCode keeps the error-envelope code vocabulary closed. The serve
// API's operability contract (docs/OPERATIONS.md) promises clients a
// stable, enumerable set of machine-readable `code` strings; dashboards
// and the distributed campaign driver dispatch on them. The registry is
// just a block of string constants (spec.Code*, serve's code* aliases)
// — nothing stops a handler from writing an ad-hoc literal like
// writeError(w, 400, "bad-stuff", ...) that no client switch has a
// case for.
//
// Pass 1 collects every string constant named [Cc]ode… module-wide
// into the fact index; this rule then flags any constant string that
// flows into a `code` position without being one of the registered
// values:
//
//   - a composite literal of an error-envelope struct (one with both
//     Code and Message string fields) whose Code field gets an
//     unregistered constant string;
//   - a call argument bound to a string parameter named `code` that
//     folds to an unregistered constant string.
//
// Non-constant code expressions are out of scope (they trace back to
// the registry or to request data by construction of the envelope
// helpers), and the rule stays silent when the module declares no
// registry at all — fixtures and scratch packages aren't forced to
// invent one.
type ErrCode struct{}

// NewErrCode returns the rule.
func NewErrCode() *ErrCode { return &ErrCode{} }

// ID implements Rule.
func (*ErrCode) ID() string { return "errcode" }

// Doc implements Rule.
func (*ErrCode) Doc() string {
	return "flags error-envelope code strings missing from the stable Code* constant registry"
}

// Check implements Rule.
func (r *ErrCode) Check(pass *Pass) []Diagnostic {
	if pass.Facts == nil || len(pass.Facts.ErrorCodes) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				out = append(out, r.checkEnvelope(pass, x)...)
			case *ast.CallExpr:
				out = append(out, r.checkCall(pass, x)...)
			}
			return true
		})
	}
	return out
}

// checkEnvelope flags unregistered constant Code values in composite
// literals of error-envelope structs.
func (r *ErrCode) checkEnvelope(pass *Pass, cl *ast.CompositeLit) []Diagnostic {
	t := pass.TypeOf(cl)
	if t == nil {
		return nil
	}
	st := envelopeStruct(t)
	if st == nil {
		return nil
	}
	var out []Diagnostic
	check := func(e ast.Expr) {
		if code, ok := constString(pass, e); ok && code != "" && !pass.Facts.HasErrorCode(code) {
			out = append(out, pass.Diag(r, e.Pos(),
				"error code %q is not in the stable code registry; add a Code* constant or use an existing one — clients dispatch on these strings",
				code))
		}
	}
	for i, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
				check(kv.Value)
			}
			continue
		}
		// Positional literal: match the element against the Code field.
		if i < st.NumFields() && st.Field(i).Name() == "Code" {
			check(el)
		}
	}
	return out
}

// checkCall flags unregistered constant strings bound to parameters
// named "code".
func (r *ErrCode) checkCall(pass *Pass, call *ast.CallExpr) []Diagnostic {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []Diagnostic
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		p := sig.Params().At(i)
		if p.Name() != "code" || !isStringType(p.Type()) {
			continue
		}
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break // a variadic ...string tail is not a code slot
		}
		if code, ok := constString(pass, call.Args[i]); ok && code != "" && !pass.Facts.HasErrorCode(code) {
			out = append(out, pass.Diag(r, call.Args[i].Pos(),
				"error code %q passed to %s is not in the stable code registry; add a Code* constant or use an existing one",
				code, fn.Name()))
		}
	}
	return out
}

// envelopeStruct returns the underlying struct of t when it is an
// error-envelope shape — a struct with both Code and Message string
// fields — and nil otherwise.
func envelopeStruct(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var hasCode, hasMessage bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !isStringType(f.Type()) {
			continue
		}
		switch f.Name() {
		case "Code":
			hasCode = true
		case "Message":
			hasMessage = true
		}
	}
	if hasCode && hasMessage {
		return st
	}
	return nil
}

// constString returns the constant string value of e, if the
// type-checker folded one. Identifiers that resolve to the registry
// constants themselves fold here too — they pass HasErrorCode by
// construction unless the constant was renamed out of the registry.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return strings.Clone(constant.StringVal(tv.Value)), true
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
