package lint

// Autofix support: mechanical rules attach a SuggestedFix to their
// diagnostics, and `positlint -fix` applies the edits in place. Only
// rules whose fix is unambiguous carry one — errdrop (prepend the
// explicit `_ = ` discard), pkgdoc and exportdoc (insert a TODO doc
// stub that satisfies the rule and leaves a greppable marker for a
// human to fill in). Judgement rules (floatcmp, narcheck, quireguard,
// ...) never auto-fix: their resolution is a design decision.

import (
	"fmt"
	"go/token"
	"os"
	"sort"

	"positres/internal/atomicio"
)

// TextEdit is one byte-range replacement. File is absolute (not
// module-relative like Diagnostic.Pos) so edits can be applied without
// re-deriving the load root; [Start, End) are byte offsets into the
// file as it was parsed, with Start == End meaning pure insertion.
type TextEdit struct {
	File  string `json:"file"`  // absolute path of the file to edit
	Start int    `json:"start"` // byte offset of the first replaced byte
	End   int    `json:"end"`   // byte offset one past the last replaced byte
	New   string `json:"new"`   // replacement text
}

// SuggestedFix is a mechanical resolution for one diagnostic.
type SuggestedFix struct {
	Message string     `json:"message"` // one-line description of the edit
	Edits   []TextEdit `json:"edits"`   // non-overlapping byte edits
}

// insertFix builds a pure-insertion SuggestedFix at the token
// position pos, resolved to the absolute filename and byte offset as
// parsed (deliberately not module-relativized: -fix edits real files).
func (p *Pass) insertFix(pos token.Pos, message, insert string) *SuggestedFix {
	position := p.Fset.Position(pos)
	return &SuggestedFix{
		Message: message,
		Edits:   []TextEdit{{File: position.Filename, Start: position.Offset, End: position.Offset, New: insert}},
	}
}

// ApplyFixes applies every SuggestedFix carried by diags, editing the
// files atomically (temp + fsync + rename via internal/atomicio, the
// same protocol the campaign artifacts use). Edits are applied
// back-to-front per file so earlier offsets stay valid; overlapping
// edits within a file are rejected. It returns the set of files
// changed, sorted.
func ApplyFixes(diags []Diagnostic) ([]string, error) {
	perFile := map[string][]TextEdit{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			perFile[e.File] = append(perFile[e.File], e)
		}
	}
	var files []string
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var changed []string
	for _, file := range files {
		edits := perFile[file]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start > edits[j].Start // back to front
			}
			return edits[i].End > edits[j].End
		})
		data, err := os.ReadFile(file)
		if err != nil {
			return changed, fmt.Errorf("lint: fix %s: %w", file, err)
		}
		prevStart := len(data) + 1
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(data) {
				return changed, fmt.Errorf("lint: fix %s: edit range [%d,%d) out of bounds", file, e.Start, e.End)
			}
			if e.End > prevStart {
				return changed, fmt.Errorf("lint: fix %s: overlapping edits at offset %d", file, e.Start)
			}
			prevStart = e.Start
			data = append(data[:e.Start], append([]byte(e.New), data[e.End:]...)...)
		}
		if err := atomicio.WriteFileBytes(file, data); err != nil {
			return changed, fmt.Errorf("lint: fix %s: %w", file, err)
		}
		changed = append(changed, file)
	}
	return changed, nil
}

// Fixable reports how many of diags carry a SuggestedFix.
func Fixable(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Fix != nil {
			n++
		}
	}
	return n
}
