// Package lint implements positlint, a domain-aware static analyzer
// for this repository. The paper's conclusions rest on bit-exact posit
// encode/decode and on campaign statistics produced by heavily
// concurrent worker pools; lint mechanically enforces the invariants
// that substrate depends on (no raw float equality in analysis code,
// no out-of-range shifts in bit manipulation, no unchecked NaR on
// error-metric paths, no lock copies or racy WaitGroup use, no leaky
// goroutine loops, no silently dropped errors).
//
// The analyzer is built only on the standard library (go/parser,
// go/ast, go/token, go/types, go/importer) — the module has zero
// external dependencies and must stay that way. See docs/LINT.md for
// the rule catalogue and suppression workflow.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message. Filename is stored relative to the module
// root (or the load directory for ad-hoc loads) so output and
// suppression matching are machine-independent.
type Diagnostic struct {
	Pos     token.Position // finding location, Filename module-relative
	RuleID  string         // stable rule identifier, e.g. "floatcmp"
	Message string         // human-readable explanation
}

// String renders the diagnostic in the canonical
// "file:line:col: [rule] message" form consumed by editors and CI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.RuleID, d.Message)
}

// Rule is one lint check, run once per package.
type Rule interface {
	// ID is the stable rule identifier used in output, suppression
	// files and //positlint:ignore comments.
	ID() string
	// Doc is a one-line description shown by `positlint -list`.
	Doc() string
	// Check inspects one type-checked package and returns findings.
	Check(pass *Pass) []Diagnostic
}

// Pass hands one type-checked package to a rule.
type Pass struct {
	Fset  *token.FileSet // positions for every file of the package
	Path  string         // import path (or directory for ad-hoc loads)
	Pkg   *types.Package // type-checked package object
	Info  *types.Info    // types, uses and defs of every expression
	Files []*ast.File    // parsed non-test files

	rel func(token.Position) token.Position
}

// Diag builds a Diagnostic for the rule at pos.
func (p *Pass) Diag(rule Rule, pos token.Pos, format string, args ...interface{}) Diagnostic {
	position := p.Fset.Position(pos)
	if p.rel != nil {
		position = p.rel(position)
	}
	return Diagnostic{Pos: position, RuleID: rule.ID(), Message: fmt.Sprintf(format, args...)}
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// IsTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// AllRules returns the default rule set in stable order.
func AllRules() []Rule {
	return []Rule{
		NewFloatCmp(),
		NewShiftRange(),
		NewNaRCheck(),
		NewMutexCopy(),
		NewWaitGroup(),
		NewCtxLoop(),
		NewErrDrop(),
		NewAtomicWrite(),
		NewPkgDoc(),
		NewExportDoc(),
	}
}

// RuleByID resolves a rule identifier against AllRules.
func RuleByID(id string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.ID() == id {
			return r, true
		}
	}
	return nil, false
}

// ignoreRx matches inline suppression comments:
//
//	//positlint:ignore <rule>[,<rule>...] <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory; an ignore without one is itself reported.
var ignoreRx = regexp.MustCompile(`^//positlint:ignore\s+([\w*,-]+)(\s+\S.*)?$`)

// Runner executes a rule set over packages and filters suppressions.
type Runner struct {
	Rules    []Rule        // rules to execute, in report order
	Suppress *Suppressions // optional file-based suppressions
}

// Run lints every package and returns the surviving diagnostics
// sorted by file, line, column, rule.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		pass := pkg.pass()
		ignores, bad := inlineIgnores(pass)
		out = append(out, bad...)
		for _, rule := range r.Rules {
			for _, d := range rule.Check(pass) {
				if ignores.match(d) {
					continue
				}
				if r.Suppress != nil && r.Suppress.Match(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.RuleID < b.RuleID
	})
	return out
}

// ignoreSet records inline //positlint:ignore comments per file line.
type ignoreSet map[string]map[int][]string // file -> line -> rule IDs ("*" = all)

func (s ignoreSet) match(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, id := range lines[line] {
			if id == "*" || id == d.RuleID {
				return true
			}
		}
	}
	return false
}

// inlineIgnores collects //positlint:ignore comments from a package.
// Malformed ignores (no reason given) are returned as diagnostics so
// suppressions stay self-documenting.
func inlineIgnores(pass *Pass) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRx.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//positlint:") {
						bad = append(bad, pass.Diag(malformedIgnore{}, c.Pos(),
							"malformed positlint directive %q (want //positlint:ignore <rule> <reason>)", c.Text))
					}
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, pass.Diag(malformedIgnore{}, c.Pos(),
						"//positlint:ignore needs a reason after the rule list"))
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if pass.rel != nil {
					pos = pass.rel(pos)
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], strings.Split(m[1], ",")...)
			}
		}
	}
	return set, bad
}

// malformedIgnore is the pseudo-rule behind directive hygiene
// diagnostics; it never appears in AllRules.
type malformedIgnore struct{}

func (malformedIgnore) ID() string               { return "ignoredirective" }
func (malformedIgnore) Doc() string              { return "malformed //positlint:ignore directive" }
func (malformedIgnore) Check(*Pass) []Diagnostic { return nil }
