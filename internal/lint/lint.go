// Package lint implements positlint, a domain-aware static analyzer
// for this repository. The paper's conclusions rest on bit-exact posit
// encode/decode and on campaign statistics produced by heavily
// concurrent worker pools; lint mechanically enforces the invariants
// that substrate depends on (no raw float equality in analysis code,
// no out-of-range shifts in bit manipulation, no unchecked NaR on
// error-metric paths, no lock copies or racy WaitGroup use, no leaky
// goroutine loops, no silently dropped errors, no quire accumulation
// without an overflow/NaR check, no CSV-schema or error-code drift).
//
// The engine runs in two passes. Pass 1 (facts.go) builds a repo-wide
// fact index — exported struct field sets, string-literal registries,
// error-code constants, call-graph edges into quire accumulation APIs
// — so pass 2's rules can enforce invariants that span declarations
// and packages. Pass 2 runs the rules per package, in parallel, with
// an optional content-hash diagnostic cache (cache.go) so `make lint`
// stays fast as the repo grows.
//
// The analyzer is built only on the standard library (go/parser,
// go/ast, go/token, go/types, go/importer) — the module has zero
// external dependencies and must stay that way. See docs/LINT.md for
// the rule catalogue and suppression workflow.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message. Filename is stored relative to the module
// root (or the load directory for ad-hoc loads) so output and
// suppression matching are machine-independent.
type Diagnostic struct {
	Pos     token.Position `json:"pos"`     // finding location, Filename module-relative
	RuleID  string         `json:"rule"`    // stable rule identifier, e.g. "floatcmp"
	Message string         `json:"message"` // human-readable explanation
	// Fix, when non-nil, is a mechanical edit that resolves the
	// diagnostic (applied by `positlint -fix`; see fix.go).
	Fix *SuggestedFix `json:"fix,omitempty"`
}

// String renders the diagnostic in the canonical
// "file:line:col: [rule] message" form consumed by editors and CI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.RuleID, d.Message)
}

// Rule is one lint check, run once per package.
type Rule interface {
	// ID is the stable rule identifier used in output, suppression
	// files and //positlint:ignore comments.
	ID() string
	// Doc is a one-line description shown by `positlint -list`.
	Doc() string
	// Check inspects one type-checked package and returns findings.
	Check(pass *Pass) []Diagnostic
}

// Pass hands one type-checked package to a rule.
type Pass struct {
	Fset  *token.FileSet // positions for every file of the package
	Path  string         // import path (or directory for ad-hoc loads)
	Pkg   *types.Package // type-checked package object
	Info  *types.Info    // types, uses and defs of every expression
	Files []*ast.File    // parsed non-test files
	// Facts is the repo-wide fact index built over every package of
	// the run (pass 1), letting rules see across package boundaries.
	// Never nil when invoked through Runner.Run.
	Facts *FactIndex

	rel func(token.Position) token.Position
}

// Diag builds a Diagnostic for the rule at pos.
func (p *Pass) Diag(rule Rule, pos token.Pos, format string, args ...interface{}) Diagnostic {
	position := p.Fset.Position(pos)
	if p.rel != nil {
		position = p.rel(position)
	}
	return Diagnostic{Pos: position, RuleID: rule.ID(), Message: fmt.Sprintf(format, args...)}
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// IsTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// AllRules returns the default rule set in stable order.
func AllRules() []Rule {
	return []Rule{
		NewFloatCmp(),
		NewShiftRange(),
		NewNaRCheck(),
		NewMutexCopy(),
		NewWaitGroup(),
		NewCtxLoop(),
		NewErrDrop(),
		NewAtomicWrite(),
		NewPkgDoc(),
		NewExportDoc(),
		NewQuireGuard(),
		NewCSVHeader(),
		NewBudgetScale(),
		NewErrCode(),
	}
}

// RuleByID resolves a rule identifier against AllRules.
func RuleByID(id string) (Rule, bool) {
	for _, r := range AllRules() {
		if r.ID() == id {
			return r, true
		}
	}
	return nil, false
}

// ignoreRx matches inline suppression comments:
//
//	//positlint:ignore <rule>[,<rule>...] <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory; an ignore without one is itself reported.
var ignoreRx = regexp.MustCompile(`^//positlint:ignore\s+([\w*,-]+)(\s+\S.*)?$`)

// Runner executes a rule set over packages and filters suppressions.
//
// Run is two-pass: it first builds the repo-wide fact index over every
// package it was handed (so rules see cross-package facts), then lints
// the packages in parallel. With a non-nil Cache, a package whose file
// contents, rule set and consumed facts are unchanged since the last
// run returns its recorded diagnostics without re-analysis.
type Runner struct {
	Rules    []Rule        // rules to execute, in report order
	Suppress *Suppressions // optional file-based suppressions
	Cache    *Cache        // optional content-hash diagnostic cache
	Jobs     int           // max concurrent packages; <=0 means GOMAXPROCS
}

// Run lints every package and returns the surviving diagnostics
// sorted by file, line, column, rule.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	facts := BuildFacts(pkgs)
	factsHash := ""
	if r.Cache != nil {
		factsHash = facts.Hash()
	}
	ruleIDs := make([]string, len(r.Rules))
	for i, rule := range r.Rules {
		ruleIDs[i] = rule.ID()
	}

	// Per-package parallelism: rules are stateless and the typed ASTs
	// are read-only after load, so packages lint independently.
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	results := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = r.lintPackage(pkgs[i], facts, factsHash, ruleIDs)
		}(i)
	}
	wg.Wait()

	// The file-based suppressions are applied after the cache layer:
	// cached entries hold the full (post-inline-ignore) diagnostic set,
	// so editing .positlint.suppress never requires re-analysis.
	var out []Diagnostic
	for _, diags := range results {
		for _, d := range diags {
			if r.Suppress != nil && r.Suppress.Match(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

// lintPackage produces one package's diagnostics (after inline-ignore
// filtering, before file-based suppression), consulting the cache.
func (r *Runner) lintPackage(pkg *Package, facts *FactIndex, factsHash string, ruleIDs []string) []Diagnostic {
	var key string
	if r.Cache != nil {
		if k, err := r.Cache.key(pkg, ruleIDs, factsHash); err == nil {
			key = k
			if diags, ok := r.Cache.get(key); ok {
				return diags
			}
		}
	}
	pass := pkg.pass()
	pass.Facts = facts
	entries, bad := inlineIgnores(pass)
	ignores := buildIgnoreSet(entries)
	out := append([]Diagnostic(nil), bad...)
	for _, rule := range r.Rules {
		for _, d := range rule.Check(pass) {
			if ignores.match(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	if r.Cache != nil && key != "" {
		r.Cache.put(key, out)
	}
	return out
}

// sortDiagnostics orders by file, line, column, rule. The sort is
// stable so that a rule emitting several diagnostics at one position
// keeps its own emission order.
func sortDiagnostics(out []Diagnostic) {
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.RuleID < b.RuleID
	})
}

// ignoreEntry is one well-formed //positlint:ignore directive: where
// it sits and which rules it waives. Kept as a list (not just the
// line-indexed set) so -prune can ask whether each directive still
// suppresses anything.
type ignoreEntry struct {
	pos   token.Position // directive position, module-relative
	rules []string       // rule IDs ("*" = all)
}

// ignoreSet records inline //positlint:ignore comments per file line.
type ignoreSet map[string]map[int][]string // file -> line -> rule IDs ("*" = all)

func (s ignoreSet) match(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, id := range lines[line] {
			if id == "*" || id == d.RuleID {
				return true
			}
		}
	}
	return false
}

// buildIgnoreSet indexes directives by file and line for matching.
func buildIgnoreSet(entries []ignoreEntry) ignoreSet {
	set := ignoreSet{}
	for _, e := range entries {
		lines := set[e.pos.Filename]
		if lines == nil {
			lines = map[int][]string{}
			set[e.pos.Filename] = lines
		}
		lines[e.pos.Line] = append(lines[e.pos.Line], e.rules...)
	}
	return set
}

// matches reports whether the directive covers d: same file, on the
// flagged line or the line directly above it, rule listed or "*".
func (e ignoreEntry) matches(d Diagnostic) bool {
	if e.pos.Filename != d.Pos.Filename {
		return false
	}
	if e.pos.Line != d.Pos.Line && e.pos.Line != d.Pos.Line-1 {
		return false
	}
	for _, id := range e.rules {
		if id == "*" || id == d.RuleID {
			return true
		}
	}
	return false
}

// inlineIgnores collects //positlint:ignore comments from a package.
// Malformed ignores (no reason given) are returned as diagnostics so
// suppressions stay self-documenting.
func inlineIgnores(pass *Pass) ([]ignoreEntry, []Diagnostic) {
	var entries []ignoreEntry
	var bad []Diagnostic
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRx.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//positlint:") {
						bad = append(bad, pass.Diag(malformedIgnore{}, c.Pos(),
							"malformed positlint directive %q (want //positlint:ignore <rule> <reason>)", c.Text))
					}
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, pass.Diag(malformedIgnore{}, c.Pos(),
						"//positlint:ignore needs a reason after the rule list"))
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if pass.rel != nil {
					pos = pass.rel(pos)
				}
				entries = append(entries, ignoreEntry{pos: pos, rules: strings.Split(m[1], ",")})
			}
		}
	}
	return entries, bad
}

// malformedIgnore is the pseudo-rule behind directive hygiene
// diagnostics; it never appears in AllRules.
type malformedIgnore struct{}

func (malformedIgnore) ID() string               { return "ignoredirective" }
func (malformedIgnore) Doc() string              { return "malformed //positlint:ignore directive" }
func (malformedIgnore) Check(*Pass) []Diagnostic { return nil }
