package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements that call a function returning an error
// and discard every result. A dropped error in the campaign pipeline
// means a trial, a CSV row or a figure silently vanishes from the
// statistics. Handle the error or assign it to _ explicitly (the
// blank assignment is greppable intent; a bare call is
// indistinguishable from an oversight).
//
// Exempt without suppression:
//   - *_test.go files (not linted at all);
//   - deferred calls (the `defer f.Close()` idiom);
//   - fmt's print family (terminal/report output; failures there are
//     untracked by convention across the repo's CLIs);
//   - methods on strings.Builder and bytes.Buffer, which are
//     documented never to return a non-nil error.
type ErrDrop struct{}

// NewErrDrop returns the rule.
func NewErrDrop() *ErrDrop { return &ErrDrop{} }

// ID implements Rule.
func (*ErrDrop) ID() string { return "errdrop" }

// Doc implements Rule.
func (*ErrDrop) Doc() string {
	return "flags call statements that discard an error result"
}

// Check implements Rule.
func (r *ErrDrop) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || allowedDrop(pass, call) {
				return true
			}
			d := pass.Diag(r, call.Pos(),
				"error result of %s is discarded; handle it or assign it to _ explicitly", exprString(call.Fun))
			d.Fix = pass.insertFix(call.Pos(), "assign the discarded error to _", "_ = ")
			out = append(out, d)
			return true
		})
	}
	return out
}

// returnsError reports whether any result of the call is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch res := t.(type) {
	case *types.Tuple:
		for i := 0; i < res.Len(); i++ {
			if isErrorType(res.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

// allowedDrop implements the conventional exemptions.
func allowedDrop(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if n, ok := recv.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return false
}
