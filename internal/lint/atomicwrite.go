package lint

import (
	"go/ast"
)

// AtomicWrite flags direct os.Create and os.WriteFile calls. Both
// write through the final path in place, so a crash mid-write leaves a
// truncated CSV, manifest or figure that downstream tooling happily
// parses as a complete artifact. Campaign outputs must go through
// internal/atomicio (temp file + fsync + rename), which guarantees a
// reader at the final path sees either the old content or the whole
// new content — never a prefix.
//
// Exempt without suppression:
//   - package atomicio itself (it implements the protocol);
//   - *_test.go files (not linted at all);
//   - other os helpers (os.CreateTemp, os.Open, os.OpenFile): scratch
//     files and read paths are not publication points.
type AtomicWrite struct{}

// NewAtomicWrite returns the rule.
func NewAtomicWrite() *AtomicWrite { return &AtomicWrite{} }

// ID implements Rule.
func (*AtomicWrite) ID() string { return "atomicwrite" }

// Doc implements Rule.
func (*AtomicWrite) Doc() string {
	return "flags non-atomic os.Create/os.WriteFile; use internal/atomicio"
}

// Check implements Rule.
func (r *AtomicWrite) Check(pass *Pass) []Diagnostic {
	if pass.Pkg != nil && pass.Pkg.Name() == "atomicio" {
		return nil
	}
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			switch fn.Name() {
			case "Create", "WriteFile":
				out = append(out, pass.Diag(r, call.Pos(),
					"os.%s writes the final path non-atomically; a crash leaves a partial file — use internal/atomicio (temp+fsync+rename)", fn.Name()))
			}
			return true
		})
	}
	return out
}
