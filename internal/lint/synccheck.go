package lint

import (
	"go/ast"
	"go/types"
)

// lockNames are the sync types that must never be copied after first
// use. Copying one forks its internal state: a copied Mutex unlocks
// nothing, a copied WaitGroup waits on nothing — both turn campaign
// worker-pool bugs into silent statistical corruption.
var lockNames = []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map"}

// containsLock reports whether a value of type t embeds (directly or
// through struct/array nesting) one of the sync lock types by value.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	for _, name := range lockNames {
		if namedSyncType(t, name) {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func lockBearing(t types.Type) bool { return containsLock(t, map[types.Type]bool{}) }

// MutexCopy flags by-value copies of sync.Mutex / sync.WaitGroup /
// sync.RWMutex / sync.Once / sync.Cond / sync.Pool / sync.Map bearing
// values: by-value parameters, receivers and results, assignments
// from existing values, and by-value range over slices/arrays of
// such types. (go vet's copylocks covers a superset of the assignment
// cases; this rule keeps the check inside positlint so `make lint`
// alone enforces the paper's concurrency invariants.)
type MutexCopy struct{}

// NewMutexCopy returns the rule.
func NewMutexCopy() *MutexCopy { return &MutexCopy{} }

// ID implements Rule.
func (*MutexCopy) ID() string { return "mutexcopy" }

// Doc implements Rule.
func (*MutexCopy) Doc() string {
	return "flags by-value copies of sync.Mutex/WaitGroup-bearing values"
}

// Check implements Rule.
func (r *MutexCopy) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	flag := func(pos ast.Node, what string, t types.Type) {
		out = append(out, pass.Diag(r, pos.Pos(),
			"%s copies %s by value; share it with a pointer", what, types.TypeString(t, types.RelativeTo(pass.Pkg))))
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lockBearing(t) {
				flag(field.Type, what, t)
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(d.Recv, "receiver")
				checkFieldList(d.Type.Params, "parameter")
				checkFieldList(d.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(d.Type.Params, "parameter")
				checkFieldList(d.Type.Results, "result")
			case *ast.AssignStmt:
				if len(d.Lhs) != len(d.Rhs) {
					return true
				}
				for i, rhs := range d.Rhs {
					if id, ok := d.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // blank assignment discards, it does not copy
					}
					rhs = ast.Unparen(rhs)
					switch rhs.(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						// Copying an existing value; fresh composite
						// literals and call results are not re-copies.
					default:
						continue
					}
					if t := pass.TypeOf(rhs); t != nil && lockBearing(t) {
						flag(rhs, "assignment", t)
					}
				}
			case *ast.RangeStmt:
				if d.Value == nil {
					return true
				}
				if t := pass.TypeOf(d.Value); t != nil && lockBearing(t) {
					flag(d.Value, "range value", t)
				}
			}
			return true
		})
	}
	return out
}

// WaitGroup flags wg.Add calls made inside the goroutine the
// WaitGroup is counting. Add must happen-before the matching Wait;
// calling it from the spawned goroutine races: Wait can observe the
// counter at zero and return before the goroutine has registered
// itself — the classic worker-pool shutdown race.
type WaitGroup struct{}

// NewWaitGroup returns the rule.
func NewWaitGroup() *WaitGroup { return &WaitGroup{} }

// ID implements Rule.
func (*WaitGroup) ID() string { return "waitgroup" }

// Doc implements Rule.
func (*WaitGroup) Doc() string {
	return "flags wg.Add called inside the spawned goroutine (races with Wait)"
}

// Check implements Rule.
func (r *WaitGroup) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				recv := pass.TypeOf(sel.X)
				if recv == nil {
					return true
				}
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				if namedSyncType(recv, "WaitGroup") {
					out = append(out, pass.Diag(r, call.Pos(),
						"%s inside the spawned goroutine races with Wait; call Add before the go statement", exprString(call.Fun)))
				}
				return true
			})
			return true
		})
	}
	return out
}
