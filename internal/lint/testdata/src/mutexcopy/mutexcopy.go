// Package mutexcopy is a positlint test fixture.
package mutexcopy

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type pool struct {
	wg sync.WaitGroup
}

func paramCopy(c counter) int { // want "parameter copies counter by value"
	return c.n
}

func (c counter) receiverCopy() int { // want "receiver copies counter by value"
	return c.n
}

func resultCopy() counter // want "result copies counter by value"

func wgParam(p pool) { // want "parameter copies pool by value"
	_ = p
}

func assignCopy(c *counter) {
	tmp := *c // want "assignment copies counter by value"
	_ = tmp
}

var sink int

func fieldCopy(cs struct{ inner counter }) { // want "parameter copies"
	out := cs.inner // want "assignment copies counter by value"
	sink = out.n
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want "range value copies counter by value"
		total += c.n
	}
	return total
}

func pointerIsFine(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func freshLiteralIsFine() *counter {
	c := counter{}
	return &c
}
