// Package atomicwrite is a positlint test fixture.
package atomicwrite

import "os"

func badCreate(path string) error {
	f, err := os.Create(path) // want "os.Create writes the final path non-atomically"
	if err != nil {
		return err
	}
	return f.Close()
}

func badWriteFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "os.WriteFile writes the final path non-atomically"
}

func okScratch(dir string) error {
	f, err := os.CreateTemp(dir, "scratch-*")
	if err != nil {
		return err
	}
	return f.Close()
}

func okReadSide(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = os.ReadFile(path)
	return err
}

func okOtherCreate(path string) error {
	// A local function named Create is not os.Create.
	return Create(path)
}

func Create(string) error { return nil }
