// Package csvheader exercises the csvheader rule: a <x>Header string
// registry must have one column per field of the struct <X> it
// mirrors (with <x>WireHeader falling back to <X> when no <X>Wire
// struct exists), any function that maps between the two must touch
// every field, and sibling registries mirroring the same struct must
// agree elementwise.
package csvheader

import (
	"errors"
	"strconv"
)

// Trial is the row shape trialHeader mirrors, column for column.
type Trial struct {
	Dataset string  // source dataset name
	Bit     int     // flipped bit position
	Delta   float64 // relative output error
}

var trialHeader = []string{"dataset", "bit", "delta"}

// Result has three fields, but resultHeader below lists only two
// columns — the drift the rule exists to catch.
type Result struct {
	Name string  // row label
	Min  float64 // smallest observed value
	Max  float64 // largest observed value
}

var resultHeader = []string{"name", "min"} // want "resultHeader has 2 columns but Result has 3 fields"

// resultWireHeader has no ResultWire struct, so it binds to Result
// through the Wire fallback — and inherits the same length check.
// Its columns agree with resultHeader elementwise, so the sibling
// check stays quiet even though both are short.
var resultWireHeader = []string{"name", "min"} // want "resultWireHeader has 2 columns but Result has 3 fields"

// trialWireHeader also binds to Trial, has the right arity, but spells
// the last column differently from trialHeader — the drift that would
// let a CSV journal and a binary wire disagree about the same struct.
var trialWireHeader = []string{"dataset", "bit", "error"} // want "trialWireHeader and .*trialHeader both mirror Trial but disagree at column 2"

// headerRow references only the registry: writing the header line is
// not a field mapping, so the completeness check does not apply.
func headerRow() []string { return trialHeader }

// encodeTrial claims to map Trial onto trialHeader columns but never
// serializes Delta — a row with a silently empty column.
func encodeTrial(t Trial) []string {
	row := make([]string, 0, len(trialHeader)) // want "encodeTrial maps trialHeader to Trial but never touches"
	row = append(row, t.Dataset)
	row = append(row, strconv.Itoa(t.Bit))
	return row
}

// encodeTrialFull touches every field: clean.
func encodeTrialFull(t Trial) []string {
	row := make([]string, 0, len(trialHeader))
	row = append(row, t.Dataset)
	row = append(row, strconv.Itoa(t.Bit))
	row = append(row, strconv.FormatFloat(t.Delta, 'g', -1, 64))
	return row
}

// decodeRow fills every field through a keyed literal: clean.
func decodeRow(rec []string) (Trial, error) {
	if len(rec) != len(trialHeader) {
		return Trial{}, errors.New("column count mismatch")
	}
	bit, err := strconv.Atoi(rec[1])
	if err != nil {
		return Trial{}, err
	}
	delta, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return Trial{}, err
	}
	return Trial{Dataset: rec[0], Bit: bit, Delta: delta}, nil
}
