// Package exportdoc is the fixture for the exportdoc rule. It cannot
// use the usual trailing "// want" annotations — a trailing comment is
// exactly what the rule accepts as documentation — so
// TestExportDocFixture pins the expected diagnostics in a table
// instead.
package exportdoc

// Snapshot is exported; its exported fields must each carry a doc
// comment or a trailing line comment.
type Snapshot struct {
	// Shards counts completed shards.
	Shards int
	Trials int // trials recorded across all shards

	// A group comment documents only the first field of its run, so
	// Done passes and the next field fires.
	Done   int
	Failed int

	Elapsed int64

	unexported int

	// Embedded types document themselves.
	inner
}

// inner is unexported, so its bare exported fields are not flagged.
type inner struct {
	Raw uint64
}

// Pair has two names per field; a shared trailing comment documents
// both names, and an undocumented pair fires once per name.
type Pair struct {
	Lo, Hi   int // inclusive bit bounds
	Min, Max int
}
