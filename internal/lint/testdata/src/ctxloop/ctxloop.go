// Package ctxloop is a positlint test fixture.
package ctxloop

import "context"

func captureForVar(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		go func() { // want "captures a loop variable"
			out <- i
		}()
	}
}

func captureRangeVar(xs []int, out chan<- int) {
	for _, x := range xs {
		go func() { // want "captures a loop variable"
			out <- x
		}()
	}
}

func passAsArgument(xs []int, out chan<- int) {
	for _, x := range xs {
		go func(v int) {
			out <- v
		}(x)
	}
}

func ignoresContext(ctx context.Context, xs []int, out chan<- int) {
	for _, x := range xs {
		go func(v int) { // want "never consults the enclosing function's context"
			out <- v
		}(x)
	}
}

func consultsContext(ctx context.Context, xs []int, out chan<- int) {
	for _, x := range xs {
		go func(v int) {
			select {
			case out <- v:
			case <-ctx.Done():
			}
		}(x)
	}
}

func namedWorker(xs []int, out chan<- int) {
	for _, x := range xs {
		go send(out, x) // named call: arguments evaluate at spawn time
	}
}

func send(out chan<- int, v int) { out <- v }
