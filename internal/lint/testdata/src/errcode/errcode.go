// Package errcode exercises the errcode rule: every constant string
// flowing into an error-envelope code position must come from the
// [Cc]ode* constant registry pass 1 collected.
package errcode

const (
	codeBadRequest = "bad-request"
	codeNotFound   = "not-found"
)

type apiError struct {
	Code    string
	Message string
}

func writeError(status int, code, message string) apiError {
	_ = status
	return apiError{Code: code, Message: message}
}

func handlers() []apiError {
	good := apiError{Code: codeBadRequest, Message: "missing field"}
	bad := apiError{Code: "oops", Message: "ad-hoc string"} // want "error code .oops. is not in the stable code registry"
	ok := writeError(404, codeNotFound, "no such campaign")
	mystery := writeError(400, "mystery", "never enumerated") // want "error code .mystery. passed to writeError is not in the stable code registry"
	return []apiError{good, bad, ok, mystery}
}

func positional() apiError {
	return apiError{"nope", "positional literal"} // want "error code .nope. is not in the stable code registry"
}
