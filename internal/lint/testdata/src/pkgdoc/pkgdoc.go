package pkgdoc // want "package pkgdoc has no package doc comment"

func unused() int { return 1 }
