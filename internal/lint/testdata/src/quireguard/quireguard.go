// Package quireguard exercises the quireguard rule: a locally created
// quire that is accumulated into must be guarded (IsNaR) or rounded
// out (ToPosit) before its value leaves the function.
package quireguard

type posit struct{ bits uint64 }

// Quire mimics the internal/posit accumulation API shape the rule
// keys on: a named type Quire with the four accumulation methods and
// the guarded readout pair.
type Quire struct {
	acc int64
	nar bool
}

func newQuire() *Quire { return &Quire{} }

func (q *Quire) AddPosit(p posit)      { q.acc += int64(p.bits) }
func (q *Quire) SubPosit(p posit)      { q.acc -= int64(p.bits) }
func (q *Quire) AddProduct(a, b posit) { q.acc += int64(a.bits) * int64(b.bits) }
func (q *Quire) IsNaR() bool           { return q.nar }
func (q *Quire) ToPosit() posit        { return posit{bits: uint64(q.acc)} }
func (q *Quire) Float64() float64      { return float64(q.acc) }

// accumulate is recorded by pass 1 as accumulating into its quire
// parameter; the parameter itself is exempt (the caller owns the
// guard), but callers inherit the obligation at every call site.
func accumulate(q *Quire, xs []posit) {
	for _, x := range xs {
		q.AddPosit(x)
	}
}

// inspect neither accumulates nor guards: passing a quire here is an
// escape, so the rule stays quiet and trusts the callee's caller.
func inspect(q *Quire) {}

var lastSum int64

func leakDirect(xs []posit) {
	q := newQuire()
	for _, x := range xs {
		q.AddPosit(x) // want "quire accumulation is never checked"
	}
	lastSum = q.acc
}

func leakViaHelper(xs []posit) {
	q := newQuire()
	accumulate(q, xs) // want "quire accumulation is never checked"
	lastSum = q.acc
}

func leakReadout(xs []posit) float64 {
	q := newQuire()
	q.AddProduct(xs[0], xs[0])
	return q.Float64() // want "quire read through Float64 with no IsNaR check"
}

func roundsOut(xs []posit) posit {
	q := newQuire()
	for _, x := range xs {
		q.SubPosit(x)
	}
	return q.ToPosit()
}

func guardsHelper(xs []posit) bool {
	q := newQuire()
	accumulate(q, xs)
	return q.IsNaR()
}

func guardedReadout(xs []posit) float64 {
	q := newQuire()
	q.AddPosit(xs[0])
	if q.IsNaR() {
		return 0
	}
	return q.Float64()
}

func escapesToCaller(xs []posit) *Quire {
	q := newQuire()
	q.AddPosit(xs[0])
	return q
}

func handsOff(xs []posit) {
	q := newQuire()
	q.AddPosit(xs[0])
	inspect(q)
}
