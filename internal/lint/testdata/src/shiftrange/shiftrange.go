// Package shiftrange is a positlint test fixture.
package shiftrange

type fields struct {
	FracLen int
}

func constOverWide(x uint64) uint64 {
	return x << 64 // want "constant shift count 64"
}

func constOverWide32(y uint32) uint32 {
	return y >> 40 // want "constant shift count 40"
}

func constFolded(x uint64) uint64 {
	const regime, frac = 40, 24
	return x << (regime + frac) // want "constant shift count 64"
}

func shiftAssign(x uint64) uint64 {
	x <<= 70 // want "constant shift count 70"
	return x
}

func constInRange(x uint64) uint64 {
	return x << 63 // widths up to 63 are fine for uint64
}

func unguardedSigned(x uint64, n int) uint64 {
	return x << n // want "signed shift count n is unguarded"
}

func unguardedField(x uint64, f fields) uint64 {
	return x >> f.FracLen // want "signed shift count f.FracLen is unguarded"
}

func guardedSigned(x uint64, n int) uint64 {
	if n < 0 || n > 63 {
		return 0
	}
	return x << n // the bound check above is the guard
}

func guardedField(x uint64, f fields) uint64 {
	if f.FracLen >= 64 {
		return 0
	}
	return x >> f.FracLen
}

func maskedSigned(x uint64, n int) uint64 {
	return x << (n & 63) // masking bounds the count
}

func unsignedIdiom(x uint64, n int) uint64 {
	return x << uint(n) // explicit uint conversion marks a vetted range
}
