// Package budgetscale exercises the budgetscale rule: code that is
// handed a trial Budget must derive trial counts from it rather than
// hard-coding them.
package budgetscale

// Budget is the knob set one --budget flag is supposed to drive.
type Budget struct {
	TrialsPerBit int // fault-injection trials per bit position
	DatasetN     int // synthetic dataset size
}

type campaignCfg struct {
	TrialsPerBit int
	DatasetN     int
	Seed         int64
}

type runner struct {
	budget Budget
}

// fixedTrials receives a Budget and then pins TrialsPerBit anyway, so
// scaling the budget leaves this path at its old resolution.
func fixedTrials(b Budget) campaignCfg {
	return campaignCfg{
		TrialsPerBit: 4096, // want "fixedTrials hard-codes TrialsPerBit = 4096"
		DatasetN:     b.DatasetN,
	}
}

// tweak hard-codes through the assignment form.
func tweak(b *Budget, cfg *campaignCfg) {
	cfg.DatasetN = 512 // want "tweak hard-codes DatasetN = 512"
}

// build's receiver carries a Budget field, which activates the rule
// for methods just like a parameter would.
func (r *runner) build() campaignCfg {
	cfg := campaignCfg{TrialsPerBit: 100} // want "build hard-codes TrialsPerBit = 100"
	cfg.Seed = 42
	return cfg
}

// scaled derives both knobs from the budget: clean.
func scaled(b Budget) campaignCfg {
	return campaignCfg{
		TrialsPerBit: b.TrialsPerBit / 2,
		DatasetN:     b.DatasetN,
	}
}

// defaults uses the zero value, which means "use the default"
// throughout the config types: clean.
func defaults(b Budget) campaignCfg {
	return campaignCfg{TrialsPerBit: 0, DatasetN: b.DatasetN}
}

// noBudget has no Budget in scope, so constants are fine here.
func noBudget() campaignCfg {
	return campaignCfg{TrialsPerBit: 256, DatasetN: 64}
}
