package all // the end-to-end fixture: trips every rule once, including pkgdoc (no doc comment)

import (
	"context"
	"errors"
	"os"
	"sync"
)

type codec struct{}

func (codec) Decode(b uint64) float64 { return float64(b) }

type guarded struct {
	mu sync.Mutex
	n  int
}

func fallible() error { return errors.New("x") }

func trip(ctx context.Context, c codec, g guarded, xs []uint64, out chan<- float64) float64 {
	var wg sync.WaitGroup
	for _, b := range xs {
		go func() {
			wg.Add(1)
			defer wg.Done()
			out <- c.Decode(b)
		}()
	}
	wg.Wait()
	fallible()
	_ = os.WriteFile("trials.csv", nil, 0o644)
	acc := 0.0
	for _, b := range xs {
		acc += c.Decode(b)
	}
	bad := uint64(1)
	n := g.n
	bad = bad << n
	if acc == 1.5 {
		return acc
	}
	return acc
}

// Report is the exported struct that trips exportdoc.
type Report struct {
	// Total counts all shards.
	Total int
	Done  int
}
