package all // the end-to-end fixture: trips every rule once, including pkgdoc (no doc comment)

import (
	"context"
	"errors"
	"os"
	"sync"
)

type codec struct{}

func (codec) Decode(b uint64) float64 { return float64(b) }

type guarded struct {
	mu sync.Mutex
	n  int
}

func fallible() error { return errors.New("x") }

func trip(ctx context.Context, c codec, g guarded, xs []uint64, out chan<- float64) float64 {
	var wg sync.WaitGroup
	for _, b := range xs {
		go func() {
			wg.Add(1)
			defer wg.Done()
			out <- c.Decode(b)
		}()
	}
	wg.Wait()
	fallible()
	_ = os.WriteFile("trials.csv", nil, 0o644)
	acc := 0.0
	for _, b := range xs {
		acc += c.Decode(b)
	}
	bad := uint64(1)
	n := g.n
	bad = bad << n
	if acc == 1.5 {
		return acc
	}
	return acc
}

// Report is the exported struct that trips exportdoc.
type Report struct {
	// Total counts all shards.
	Total int
	Done  int
}

// Quire mimics the posit accumulation API shape for quireguard.
type Quire struct{ acc int64 }

func (q *Quire) AddPosit(v int64) { q.acc += v }

func leakQuire(xs []int64) {
	q := &Quire{}
	for _, v := range xs {
		q.AddPosit(v)
	}
}

// Row mirrors rowHeader, which is one column short.
type Row struct {
	Name string // row label
	N    int    // sample count
}

var rowHeader = []string{"name"}

// Budget is the knob set budgetscale watches for.
type Budget struct {
	TrialsPerBit int // fault-injection trials per bit
}

type cfg struct{ TrialsPerBit int }

func misbudget(b Budget, c *cfg) {
	c.TrialsPerBit = 512
}

const codeOK = "ok"

type apiErr struct {
	Code    string
	Message string
}

func failure() apiErr {
	return apiErr{Code: "nope", Message: "ad-hoc"}
}
