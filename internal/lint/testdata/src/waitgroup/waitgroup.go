// Package waitgroup is a positlint test fixture.
package waitgroup

import "sync"

func addInsideGoroutine(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "races with Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addBeforeSpawn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

type job struct{ wg sync.WaitGroup }

func addOnFieldInsideGoroutine(j *job) {
	go func() {
		j.wg.Add(1) // want "races with Wait"
		defer j.wg.Done()
	}()
	j.wg.Wait()
}

// addUnrelated has an Add method that is not sync.WaitGroup's.
type adder struct{}

func (adder) Add(int) {}

func addNotWaitGroup(a adder) {
	go func() {
		a.Add(1) // not a WaitGroup; fine
	}()
}
