// Package narcheck is a positlint test fixture.
package narcheck

// codec mimics the numfmt.Codec decode contract.
type codec struct{}

func (codec) Decode(b uint64) float64 { return float64(b) }
func (codec) IsNaR(b uint64) bool     { return b == 0x8000 }

// DecodeFloat64 mimics the posit package's free decoder.
func DecodeFloat64(es int, b uint64) float64 { return float64(b) }

func unguardedVar(c codec, b uint64, orig float64) float64 {
	v := c.Decode(b)
	return orig - v // want "holds a posit decode result"
}

func unguardedDirect(c codec, b uint64, orig float64) float64 {
	return orig - c.Decode(b) // want "arithmetic on posit decode result"
}

func unguardedFree(b uint64, orig float64) float64 {
	return orig / DecodeFloat64(2, b) // want "arithmetic on posit decode result"
}

func guarded(c codec, b uint64, orig float64) float64 {
	if c.IsNaR(b) {
		return 0
	}
	v := c.Decode(b)
	return orig - v // the IsNaR call above guards this function
}

func guardedMath(c codec, b uint64, orig float64) float64 {
	v := c.Decode(b)
	if IsNaN(v) {
		return 0
	}
	return orig - v
}

// IsNaN stands in for math.IsNaN (guard recognition is name-based).
func IsNaN(v float64) bool { return v < 0 && v >= 0 }

func storeOnly(c codec, b uint64) float64 {
	return c.Decode(b) // forwarding without arithmetic delegates the guard
}

type trial struct{ repr float64 }

func fieldStore(c codec, b uint64, t *trial) {
	t.repr = c.Decode(b) // stores are fine; the consumer guards
}
