// Package floatcmp is a positlint test fixture.
package floatcmp

func plainEqual(a, b float64) bool {
	return a == b // want "float equality"
}

func plainNotEqual(a, b float64) bool {
	return a != b // want "float equality"
}

func narrowEqual(a, b float32) bool {
	return a == b // want "float equality"
}

func mixedExpr(a, b, c float64) bool {
	return a+b == c // want "float equality"
}

func zeroIsAllowed(a float64) bool {
	return a == 0 // exact-zero checks are a deliberate domain idiom
}

func zeroLeftIsAllowed(a float64) bool {
	return 0.0 != a
}

func diffZeroIsAllowed(a, b float64) bool {
	return a-b == 0
}

func intsAreFine(a, b int) bool {
	return a == b
}

func constFoldIsFine() bool {
	const x = 0.5
	const y = 0.25
	return x == y+y
}

// almostEqualULP is a comparator helper: the allowlist exempts it.
func almostEqualULP(a, b float64) bool {
	return a == b // really it would compare ULPs; exempt by name
}
