// Package errdrop is a positlint test fixture.
package errdrop

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, nil }

func dropped() {
	fallible() // want "error result of fallible is discarded"
}

func droppedTuple() {
	twoResults() // want "error result of twoResults is discarded"
}

func droppedMethod(f *os.File) {
	f.Sync() // want "error result of f.Sync is discarded"
}

func handled() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

func explicitBlank() {
	_ = fallible() // explicit discard is greppable intent
}

func deferredClose(f *os.File) {
	defer f.Close() // deferred Close is the conventional idiom
}

func printFamily(b *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("report")
	fmt.Fprintf(os.Stderr, "report\n")
	b.WriteString("x")
	buf.WriteByte('y')
}

func noError() {
	helper()
}

func helper() {}
