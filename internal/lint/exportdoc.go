package lint

import (
	"go/ast"
	"strings"
)

// ExportDoc flags exported fields of exported structs that carry
// neither a doc comment nor a trailing line comment. The rule grew
// out of the docs/SERVICE.md audit (docs/LINT.md records the
// evidence): exported types and functions are reliably documented
// here, but struct fields — exactly the identifiers operators read
// off the wire as JSON — quietly go bare, especially inside grouped
// runs where one leading comment visually covers several fields while
// go/doc associates it with the first field only. Matching that
// association makes the convention mechanical: every exported field
// answers for itself.
//
// Exempt: unexported fields, fields of unexported structs, and
// embedded fields (their documentation lives on the embedded type).
// Test files are not loaded by the analyzer, so _test.go structs are
// out of scope by construction.
type ExportDoc struct{}

// NewExportDoc returns the rule.
func NewExportDoc() *ExportDoc { return &ExportDoc{} }

// ID implements Rule.
func (*ExportDoc) ID() string { return "exportdoc" }

// Doc implements Rule.
func (*ExportDoc) Doc() string {
	return "flags exported struct fields without a doc or trailing comment"
}

// Check implements Rule.
func (r *ExportDoc) Check(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, sp := range gd.Specs {
				ts, ok := sp.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					if len(field.Names) == 0 {
						continue // embedded: documented on the embedded type
					}
					if documented(field) {
						continue
					}
					fixed := false
					for _, name := range field.Names {
						if !name.IsExported() {
							continue
						}
						d := pass.Diag(r, name.Pos(),
							"exported field %s.%s has no doc comment or trailing comment; document it per field (a group comment covers only the first field of its run)",
							ts.Name.Name, name.Name)
						if !fixed {
							// One trailing comment serves every name in
							// the field; attach the edit once so -fix
							// does not insert it twice.
							d.Fix = pass.insertFix(field.End(), "append a field doc stub", " // TODO: document")
							fixed = true
						}
						diags = append(diags, d)
					}
				}
			}
		}
	}
	return diags
}

// documented reports whether a struct field carries its own non-empty
// doc comment or trailing line comment. This mirrors go/doc's
// association: a comment above a run of fields attaches to the first
// field only, so later fields in the run must speak for themselves.
func documented(field *ast.Field) bool {
	if field.Doc != nil && strings.TrimSpace(field.Doc.Text()) != "" {
		return true
	}
	return field.Comment != nil && strings.TrimSpace(field.Comment.Text()) != ""
}
