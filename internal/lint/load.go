package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package ready for linting.
type Package struct {
	Path  string         // import path ("positres/internal/posit") or load dir
	Dir   string         // absolute directory
	Name  string         // package name from the package clauses
	Fset  *token.FileSet // positions for every parsed file
	Files []*ast.File    // parsed non-test files, stable order
	Pkg   *types.Package // type-checked package object
	Info  *types.Info    // types, uses and defs of every expression

	rel func(token.Position) token.Position
}

func (p *Package) pass() *Pass {
	return &Pass{Fset: p.Fset, Path: p.Path, Pkg: p.Pkg, Info: p.Info, Files: p.Files, rel: p.rel}
}

// Module is a loaded Go module: every non-test package under its root.
type Module struct {
	Root string     // absolute module root (directory of go.mod)
	Path string     // module path from go.mod
	Pkgs []*Package // every linted package, sorted by import path
}

// FindModuleRoot walks upward from dir to the directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				rest = p
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata, vendor, hidden and underscore directories).
// Test files are deliberately excluded: exact-equality assertions are
// the point of bit-exact reproduction tests, and the substrate rules
// target production code paths.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path    string
		dir     string
		name    string
		files   []*ast.File
		imports []string
	}
	raw := map[string]*rawPkg{}

	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
			base == "testdata" || base == "vendor") {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		relDir, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		importPath := modPath
		if relDir != "." {
			importPath = modPath + "/" + filepath.ToSlash(relDir)
		}
		rp := &rawPkg{path: importPath, dir: path, name: files[0].Name.Name, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, _ := strconv.Unquote(imp.Path.Value)
				if strings.HasPrefix(ip, modPath+"/") || ip == modPath {
					rp.imports = append(rp.imports, ip)
				}
			}
		}
		raw[importPath] = rp
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topologically order by intra-module imports so every dependency
	// is type-checked before its importers.
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		rp := raw[p]
		deps := append([]string(nil), rp.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if raw[dep] == nil {
				continue // stdlib or missing; the importer handles it
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	var paths []string
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	mod := &Module{Root: root, Path: modPath}
	cache := map[string]*types.Package{}
	// One importer for the whole load: re-importing the standard
	// library per package would mint distinct *types.Package instances
	// for (say) "io", making identical cross-package function
	// signatures non-identical to the type-checker.
	imp := &chainImporter{cache: cache, std: importer.Default()}
	rel := relativizer(root)
	for _, p := range order {
		rp := raw[p]
		pkg, info, err := check(fset, rp.path, rp.files, imp)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", rp.path, err)
		}
		cache[rp.path] = pkg
		mod.Pkgs = append(mod.Pkgs, &Package{
			Path: rp.path, Dir: rp.dir, Name: rp.name,
			Fset: fset, Files: rp.files, Pkg: pkg, Info: info, rel: rel,
		})
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// LoadDir parses and type-checks a single directory as a standalone
// package (used for lint's own testdata fixtures and ad-hoc targets
// outside the module package graph). Imports resolve against the
// standard library only.
func LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, info, err := check(fset, dir, files, &chainImporter{std: importer.Default()})
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{
		Path: dir, Dir: dir, Fset: fset, Name: files[0].Name.Name,
		Files: files, Pkg: pkg, Info: info, rel: relativizer(dir),
	}, nil
}

// parseDir parses the non-test Go files of one directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// chainImporter serves intra-module packages from the cache and
// everything else (the standard library) from the compiler importer.
type chainImporter struct {
	cache map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.cache[path]; ok {
		return pkg, nil
	}
	return c.std.Import(path)
}

// check type-checks one package with full types.Info.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// relativizer rewrites absolute positions to base-relative paths.
func relativizer(base string) func(token.Position) token.Position {
	return func(pos token.Position) token.Position {
		if r, err := filepath.Rel(base, pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			pos.Filename = filepath.ToSlash(r)
		}
		return pos
	}
}
