package lint

// Pass 1 of the analyzer: the repo-wide fact index. Rules that enforce
// cross-declaration invariants (a CSV header drifting from the struct
// it serializes, an error code missing from the stable registry, quire
// accumulation hidden behind a helper in another package) cannot see
// what they need from a single-file AST walk. BuildFacts runs once
// over every loaded package and records the module-level facts; pass 2
// hands the index to every rule through Pass.Facts.
//
// The index is deliberately small and declarative — named structs with
// their ordered field sets, string-literal registries, error-code
// constants, and call-graph edges into quire accumulation APIs — so
// its deterministic serialization doubles as a cache-key ingredient
// (see cache.go): a package's diagnostics are valid as long as neither
// its own files nor the facts it consumed have changed.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// FieldFact is one named struct field in declaration order.
type FieldFact struct {
	Name string `json:"name"` // field name (one entry per name in grouped declarations)
	Type string `json:"type"` // declared type, rendered with types.ExprString
}

// StructFact records a named struct type and its flattened field list.
type StructFact struct {
	Pkg    string      `json:"pkg"`    // import path (or load dir) of the declaring package
	Name   string      `json:"name"`   // type name
	Fields []FieldFact `json:"fields"` // named fields in declaration order, embedded fields excluded
}

// Key returns the index key "pkg.Name".
func (s *StructFact) Key() string { return s.Pkg + "." + s.Name }

// FieldNames returns the field names in declaration order.
func (s *StructFact) FieldNames() []string {
	out := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		out[i] = f.Name
	}
	return out
}

// StringListFact records a package-level `var x = []string{...}` whose
// elements are all string literals — the shape of this repo's schema
// registries (core.trialHeader and friends).
type StringListFact struct {
	Pkg   string   `json:"pkg"`   // declaring package
	Name  string   `json:"name"`  // variable name
	Elems []string `json:"elems"` // unquoted literal elements in order

	pos token.Pos // declaration position, for diagnostics
}

// ErrorCodeFact records one stable error-code constant: a string
// constant whose name matches ^[Cc]ode[A-Z0-9_] (serve's unexported
// code* aliases and spec's exported Code* canonicals both match).
type ErrorCodeFact struct {
	Pkg   string `json:"pkg"`   // declaring package
	Name  string `json:"name"`  // constant name
	Value string `json:"value"` // the code string itself
}

// QuireAccumFact records that a function accumulates into a
// quire-typed parameter: the call-graph edge the quireguard rule
// follows across package boundaries. Param indices are 0-based over
// the declared (non-receiver) parameters.
type QuireAccumFact struct {
	Func   string `json:"func"`   // types.Func.FullName of the accumulating function
	Params []int  `json:"params"` // parameter indices accumulated into, sorted
}

// FactIndex is the repo-wide fact store built by pass 1.
type FactIndex struct {
	// Structs maps "pkg.TypeName" to the struct's ordered field set,
	// for every named struct type in the loaded packages.
	Structs map[string]*StructFact
	// StringLists maps "pkg.varName" to all-literal []string registry
	// declarations.
	StringLists map[string]*StringListFact
	// ErrorCodes maps code string values to their declaring constants.
	// A value declared by several constants (serve aliasing spec) keeps
	// every declaration.
	ErrorCodes map[string][]ErrorCodeFact
	// QuireAccum maps function full names to the quire parameter
	// indices they accumulate into.
	QuireAccum map[string]*QuireAccumFact
}

// errorCodeNameRx matches the error-code constant naming convention.
var errorCodeNameRx = regexp.MustCompile(`^[Cc]ode[A-Z0-9_]`)

// quireAccumMethods are the accumulation entry points of the quire
// API (internal/posit.Quire and any fixture type of the same shape).
var quireAccumMethods = map[string]bool{
	"AddPosit": true, "SubPosit": true, "AddProduct": true, "SubProduct": true,
}

// BuildFacts runs pass 1 over the given packages and returns the
// index. It is pure analysis — no diagnostics are produced here.
func BuildFacts(pkgs []*Package) *FactIndex {
	idx := &FactIndex{
		Structs:     map[string]*StructFact{},
		StringLists: map[string]*StringListFact{},
		ErrorCodes:  map[string][]ErrorCodeFact{},
		QuireAccum:  map[string]*QuireAccumFact{},
	}
	for _, pkg := range pkgs {
		pass := pkg.pass()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					idx.collectGenDecl(pass, d)
				case *ast.FuncDecl:
					idx.collectQuireAccum(pass, d)
				}
			}
		}
	}
	return idx
}

func (idx *FactIndex) collectGenDecl(pass *Pass, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, sp := range d.Specs {
			ts, ok := sp.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				continue
			}
			sf := &StructFact{Pkg: pass.Path, Name: ts.Name.Name}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					sf.Fields = append(sf.Fields, FieldFact{Name: name.Name, Type: exprString(field.Type)})
				}
			}
			idx.Structs[sf.Key()] = sf
		}
	case token.VAR:
		for _, sp := range d.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
				continue
			}
			elems, ok := stringListLiteral(vs.Values[0])
			if !ok {
				continue
			}
			fact := &StringListFact{
				Pkg: pass.Path, Name: vs.Names[0].Name, Elems: elems, pos: vs.Names[0].Pos(),
			}
			idx.StringLists[fact.Pkg+"."+fact.Name] = fact
		}
	case token.CONST:
		for _, sp := range d.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if !errorCodeNameRx.MatchString(name.Name) {
					continue
				}
				obj, ok := pass.Info.Defs[name].(*types.Const)
				if !ok || obj.Val().Kind() != constant.String {
					continue
				}
				val := constant.StringVal(obj.Val())
				idx.ErrorCodes[val] = append(idx.ErrorCodes[val],
					ErrorCodeFact{Pkg: pass.Path, Name: name.Name, Value: val})
			}
		}
	}
}

// collectQuireAccum records functions that call a quire accumulation
// method on one of their own parameters — helpers the quireguard rule
// must treat as accumulation sites at every call site, in any package.
func (idx *FactIndex) collectQuireAccum(pass *Pass, d *ast.FuncDecl) {
	if d.Body == nil || d.Type.Params == nil {
		return
	}
	params := map[types.Object]int{}
	i := 0
	for _, field := range d.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil && isQuireType(obj.Type()) {
				params[obj] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	if len(params) == 0 {
		return
	}
	accum := map[int]bool{}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !quireAccumMethods[sel.Sel.Name] {
			return true
		}
		if obj := rootIdentObject(pass, sel.X); obj != nil {
			if pi, ok := params[obj]; ok {
				accum[pi] = true
			}
		}
		return true
	})
	if len(accum) == 0 {
		return
	}
	fn, ok := pass.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	fact := &QuireAccumFact{Func: fn.FullName()}
	for pi := range accum {
		fact.Params = append(fact.Params, pi)
	}
	sort.Ints(fact.Params)
	idx.QuireAccum[fact.Func] = fact
}

// Hash returns a deterministic digest of the index, used as a
// cache-key ingredient: any fact change invalidates every package's
// cached diagnostics, because rules may consume facts from anywhere.
func (idx *FactIndex) Hash() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	writeSorted := func(keys []string, get func(string) interface{}) {
		sort.Strings(keys)
		for _, k := range keys {
			_, _ = h.Write([]byte(k))
			// Encoding into a hash never fails for these plain structs.
			_ = enc.Encode(get(k))
		}
	}
	var keys []string
	for k := range idx.Structs {
		keys = append(keys, k)
	}
	writeSorted(keys, func(k string) interface{} { return idx.Structs[k] })
	keys = keys[:0]
	for k := range idx.StringLists {
		keys = append(keys, k)
	}
	writeSorted(keys, func(k string) interface{} { return idx.StringLists[k] })
	keys = keys[:0]
	for k := range idx.ErrorCodes {
		keys = append(keys, k)
	}
	writeSorted(keys, func(k string) interface{} { return idx.ErrorCodes[k] })
	keys = keys[:0]
	for k := range idx.QuireAccum {
		keys = append(keys, k)
	}
	writeSorted(keys, func(k string) interface{} { return idx.QuireAccum[k] })
	return hex.EncodeToString(h.Sum(nil))
}

// HasErrorCode reports whether value is a registered stable code.
func (idx *FactIndex) HasErrorCode(value string) bool {
	_, ok := idx.ErrorCodes[value]
	return ok
}

// StructIn returns the named struct fact declared in pkg, or, when pkg
// has none of that name, the unique declaration elsewhere in the index
// (nil when absent or ambiguous). The two-step lookup is what lets a
// header registry and the struct it mirrors live in different packages.
func (idx *FactIndex) StructIn(pkg, name string) *StructFact {
	if sf, ok := idx.Structs[pkg+"."+name]; ok {
		return sf
	}
	var found *StructFact
	for _, sf := range idx.Structs {
		if sf.Name == name {
			if found != nil {
				return nil // ambiguous across packages: refuse to guess
			}
			found = sf
		}
	}
	return found
}

// stringListLiteral matches `[]string{"a", "b", ...}` with all-literal
// elements, returning the unquoted values.
func stringListLiteral(e ast.Expr) ([]string, bool) {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil, false
	}
	at, ok := cl.Type.(*ast.ArrayType)
	if !ok || at.Len != nil {
		return nil, false
	}
	if id, ok := at.Elt.(*ast.Ident); !ok || id.Name != "string" {
		return nil, false
	}
	elems := make([]string, 0, len(cl.Elts))
	for _, el := range cl.Elts {
		lit, ok := el.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return nil, false
		}
		elems = append(elems, strings.Trim(lit.Value, "`\""))
	}
	return elems, true
}

// isQuireType reports whether t (after pointer deref) is a named type
// called Quire — the domain convention the quire rules key on, so the
// analyzer recognises internal/posit.Quire and fixture doubles alike.
func isQuireType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Quire"
}

// rootIdentObject resolves the base identifier of an expression chain
// (q, q.field, (*q)) to its variable object, or nil.
func rootIdentObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
