package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShiftRange flags shift expressions that can shift by the operand
// width or more. The posit regime/fraction extraction hot spots
// (internal/posit/decode.go, encode.go, internal/bitflip) build masks
// and significands from field-derived lengths; a count that reaches
// the operand width silently yields 0 (Go defines over-wide shifts as
// zero) and a negative signed count panics at run time — both corrupt
// bit-exact reproduction without any error.
//
// Two cases fire:
//   - a constant-folded count that is negative or >= the operand's
//     bit width (a definite bug);
//   - a non-constant count of *signed* integer type with no guard in
//     the enclosing function (no comparison, mask or %-bound that
//     mentions the count's variables). Wrapping the count in a uint
//     conversion after range-checking it is the idiom this repo uses
//     and is never flagged.
type ShiftRange struct{}

// NewShiftRange returns the rule.
func NewShiftRange() *ShiftRange { return &ShiftRange{} }

// ID implements Rule.
func (*ShiftRange) ID() string { return "shiftrange" }

// Doc implements Rule.
func (*ShiftRange) Doc() string {
	return "flags shift counts that can equal/exceed the operand width or go negative"
}

// Check implements Rule.
func (r *ShiftRange) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	walkFuncs(pass, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			var x, count ast.Expr
			var pos token.Pos
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.SHL && e.Op != token.SHR {
					return true
				}
				x, count, pos = e.X, e.Y, e.OpPos
			case *ast.AssignStmt:
				if e.Tok != token.SHL_ASSIGN && e.Tok != token.SHR_ASSIGN || len(e.Lhs) != 1 {
					return true
				}
				x, count, pos = e.Lhs[0], e.Rhs[0], e.TokPos
			default:
				return true
			}
			out = append(out, r.checkShift(pass, body, x, count, pos)...)
			return true
		})
	})
	return out
}

func (r *ShiftRange) checkShift(pass *Pass, body *ast.BlockStmt, x, count ast.Expr, pos token.Pos) []Diagnostic {
	xt := pass.TypeOf(x)
	width := intWidth(xt)
	if width == 0 {
		return nil // non-basic operand (generics); nothing to prove
	}
	if c, ok := constIntVal(pass, count); ok {
		if c < 0 {
			return []Diagnostic{pass.Diag(r, pos,
				"constant shift count %d is negative", c)}
		}
		if c >= int64(width) {
			return []Diagnostic{pass.Diag(r, pos,
				"constant shift count %d >= width of %s (%d bits): the shift always yields 0", c, types.TypeString(xt, nil), width)}
		}
		return nil
	}
	ct := pass.TypeOf(count)
	if ct == nil || !isSignedInt(ct) {
		return nil // unsigned count: the uint() conversion idiom marks a vetted range
	}
	objs := rootObjects(pass, count)
	if len(objs) == 0 || guardedIn(pass, body, objs) {
		return nil
	}
	return []Diagnostic{pass.Diag(r, pos,
		"signed shift count %s is unguarded: a negative count panics and one >= %d bits yields 0; bound it (or convert through uint after checking)", exprString(count), width)}
}

// guardedIn reports whether any of objs appears in a comparison,
// &-mask or %-bound anywhere in body — evidence the author bounded
// the count before shifting.
func guardedIn(pass *Pass, body *ast.BlockStmt, objs map[types.Object]bool) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
			token.AND, token.REM:
			if usesAnyObject(pass, be.X, objs) || usesAnyObject(pass, be.Y, objs) {
				guarded = true
			}
		}
		return true
	})
	return guarded
}
