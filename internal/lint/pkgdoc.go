package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// PkgDoc flags packages with no package documentation comment on any
// file. The repo is navigated through godoc-style docs (ARCHITECTURE.md
// links into them); a package without a doc comment is invisible in
// that map, and the convention that every package states its paper
// tie-in (§ references) only holds if the comment exists at all.
// Putting the rule in positlint makes the convention self-enforcing:
// `make lint` fails on a new undocumented package.
//
// A package passes if at least one of its non-test files carries a
// doc comment immediately above its package clause. Test files are
// not loaded by the analyzer, so doc comments there do not count.
type PkgDoc struct{}

// NewPkgDoc returns the rule.
func NewPkgDoc() *PkgDoc { return &PkgDoc{} }

// ID implements Rule.
func (*PkgDoc) ID() string { return "pkgdoc" }

// Doc implements Rule.
func (*PkgDoc) Doc() string {
	return "flags packages that lack a package documentation comment"
}

// Check implements Rule.
func (r *PkgDoc) Check(pass *Pass) []Diagnostic {
	if len(pass.Files) == 0 {
		return nil
	}
	var first *ast.File
	firstName := ""
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return nil
		}
		name := pass.Fset.Position(f.Package).Filename
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	d := pass.Diag(r, first.Package,
		"package %s has no package doc comment on any file; document the package's purpose above one package clause", first.Name.Name)
	d.Fix = pass.insertFix(first.Package, "insert a package doc stub",
		fmt.Sprintf("// Package %s TODO: describe this package's role in the pipeline.\n", first.Name.Name))
	return []Diagnostic{d}
}
