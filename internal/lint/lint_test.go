package lint

import (
	"bufio"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRx extracts the quoted regexes of a // want "..." ["..."]
// annotation.
var wantRx = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

// fixtureWants parses the expected-diagnostic annotations of every
// fixture file in dir: file -> line -> list of regexes.
func fixtureWants(t *testing.T, dir string) map[string]map[int][]string {
	t.Helper()
	wants := map[string]map[int][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for ln := 1; sc.Scan(); ln++ {
			m := wantRx.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, q := range regexp.MustCompile(`"[^"]*"`).FindAllString(m[1], -1) {
				if wants[e.Name()] == nil {
					wants[e.Name()] = map[int][]string{}
				}
				wants[e.Name()][ln] = append(wants[e.Name()][ln], strings.Trim(q, `"`))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	return wants
}

// checkFixture lints testdata/src/<name> with every rule and verifies
// the diagnostics exactly match the // want annotations (each want
// matched by exactly one diagnostic on its line, no extras).
func checkFixture(t *testing.T, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	runner := &Runner{Rules: AllRules()}
	diags := runner.Run([]*Package{pkg})
	wants := fixtureWants(t, dir)

	matched := map[*Diagnostic]bool{}
	for file, lines := range wants {
		for line, rxs := range lines {
			for _, rx := range rxs {
				re := regexp.MustCompile(rx)
				found := false
				for i := range diags {
					d := &diags[i]
					if matched[d] || d.Pos.Filename != file || d.Pos.Line != line {
						continue
					}
					if re.MatchString("[" + d.RuleID + "] " + d.Message) {
						matched[d] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s:%d: want %q: no matching diagnostic", file, line, rx)
				}
			}
		}
	}
	for i := range diags {
		if !matched[&diags[i]] {
			t.Errorf("unexpected diagnostic: %s", diags[i])
		}
	}
}

func TestFloatCmpFixture(t *testing.T)    { checkFixture(t, "floatcmp") }
func TestShiftRangeFixture(t *testing.T)  { checkFixture(t, "shiftrange") }
func TestNaRCheckFixture(t *testing.T)    { checkFixture(t, "narcheck") }
func TestMutexCopyFixture(t *testing.T)   { checkFixture(t, "mutexcopy") }
func TestWaitGroupFixture(t *testing.T)   { checkFixture(t, "waitgroup") }
func TestCtxLoopFixture(t *testing.T)     { checkFixture(t, "ctxloop") }
func TestErrDropFixture(t *testing.T)     { checkFixture(t, "errdrop") }
func TestAtomicWriteFixture(t *testing.T) { checkFixture(t, "atomicwrite") }
func TestPkgDocFixture(t *testing.T)      { checkFixture(t, "pkgdoc") }
func TestQuireGuardFixture(t *testing.T)  { checkFixture(t, "quireguard") }
func TestCSVHeaderFixture(t *testing.T)   { checkFixture(t, "csvheader") }
func TestBudgetScaleFixture(t *testing.T) { checkFixture(t, "budgetscale") }
func TestErrCodeFixture(t *testing.T)     { checkFixture(t, "errcode") }

// TestExportDocFixture pins the exportdoc rule against its fixture
// with an explicit table: the fixture cannot carry the usual trailing
// "// want" annotations because a trailing comment is precisely what
// the rule accepts as field documentation.
func TestExportDocFixture(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "exportdoc"))
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Rules: []Rule{NewExportDoc()}}
	diags := runner.Run([]*Package{pkg})

	want := []struct {
		line  int
		field string
	}{
		{18, "Snapshot.Failed"},
		{20, "Snapshot.Elapsed"},
		{37, "Pair.Min"},
		{37, "Pair.Max"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("diagnostic count = %d, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Filename != "exportdoc.go" || d.Pos.Line != w.line || d.RuleID != "exportdoc" ||
			!strings.Contains(d.Message, "exported field "+w.field+" has no doc comment") {
			t.Errorf("diag[%d] = %s\nwant line %d for field %s", i, d, w.line, w.field)
		}
	}
}

// TestEndToEndAllRules lints the synthetic package that trips every
// rule and asserts the exact diagnostic set, pinning rule IDs,
// positions and message fragments in one place.
func TestEndToEndAllRules(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "all"))
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Rules: AllRules()}
	diags := runner.Run([]*Package{pkg})

	want := []struct {
		line int
		rule string
		frag string
	}{
		{1, "pkgdoc", "package all has no package doc comment"},
		{21, "mutexcopy", "parameter copies guarded by value"},
		{24, "ctxloop", "captures a loop variable"},
		{24, "ctxloop", "never consults the enclosing function's context.Context"},
		{25, "waitgroup", "wg.Add inside the spawned goroutine races with Wait"},
		{31, "errdrop", "error result of fallible is discarded"},
		{32, "atomicwrite", "os.WriteFile writes the final path non-atomically"},
		{35, "narcheck", "arithmetic on posit decode result c.Decode(b)"},
		{39, "shiftrange", "signed shift count n is unguarded"},
		{40, "floatcmp", "float equality (==)"},
		{50, "exportdoc", "exported field Report.Done has no doc comment"},
		{61, "quireguard", "quire accumulation is never checked"},
		{71, "csvheader", "rowHeader has 1 columns but Row has 2 fields"},
		{81, "budgetscale", "misbudget hard-codes TrialsPerBit = 512"},
		{92, "errcode", `error code "nope" is not in the stable code registry`},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("diagnostic count = %d, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Filename != "all.go" || d.Pos.Line != w.line || d.RuleID != w.rule ||
			!strings.Contains(d.Message, w.frag) {
			t.Errorf("diag[%d] = %s\nwant line %d rule %s containing %q", i, d, w.line, w.rule, w.frag)
		}
	}
}

// TestRepoIsClean runs the full rule set over the real module — the
// same check `make lint` performs. New violations anywhere in the
// repo fail this test (and therefore tier-1), which is the point: the
// substrate invariants are enforced, not advisory.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := LoadSuppressions(filepath.Join(root, ".positlint.suppress"))
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Rules: AllRules(), Suppress: sup}
	for _, d := range runner.Run(mod.Pkgs) {
		t.Errorf("%s", d)
	}
}

func TestSuppressionsFile(t *testing.T) {
	s, err := ParseSuppressions("test", strings.Join([]string{
		"# comment",
		"",
		"floatcmp internal/core/campaign.go:10 -- identity check",
		"errdrop cmd/*/main.go -- CLI print path",
		"* internal/qcat/qcat.go -- vendored reference",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		d    Diagnostic
		want bool
	}{
		{Diagnostic{Pos: pos("internal/core/campaign.go", 10), RuleID: "floatcmp"}, true},
		{Diagnostic{Pos: pos("internal/core/campaign.go", 11), RuleID: "floatcmp"}, false},
		{Diagnostic{Pos: pos("internal/core/campaign.go", 10), RuleID: "errdrop"}, false},
		{Diagnostic{Pos: pos("cmd/positreport/main.go", 99), RuleID: "errdrop"}, true},
		{Diagnostic{Pos: pos("cmd/positreport/main.go", 99), RuleID: "floatcmp"}, false},
		{Diagnostic{Pos: pos("internal/qcat/qcat.go", 3), RuleID: "shiftrange"}, true},
	}
	for i, c := range cases {
		if got := s.Match(c.d); got != c.want {
			t.Errorf("case %d: Match(%v) = %v, want %v", i, c.d, got, c.want)
		}
	}
}

// TestSuppressionAfterRename pins the rename behaviour: an entry
// carrying the old file path stops matching once the diagnostic
// reports the new path. The entry does not silently widen — it goes
// stale, and FindStale / -prune reports it for deletion.
func TestSuppressionAfterRename(t *testing.T) {
	s, err := ParseSuppressions("test", "floatcmp internal/core/oldname.go -- written before the rename")
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnostic{Pos: pos("internal/core/oldname.go", 5), RuleID: "floatcmp"}
	if !s.Match(d) {
		t.Fatal("entry must match the pre-rename path")
	}
	d.Pos.Filename = "internal/core/newname.go"
	if s.Match(d) {
		t.Fatal("entry must not follow the file across a rename")
	}
	if stale := FindStale(nil, AllRules(), s); len(stale) != 1 || stale[0].Kind != "suppress" {
		t.Fatalf("renamed-away entry not reported stale: %v", stale)
	}
}

// TestExportDocGroupComment pins the group-comment edge case: one
// leading comment above a run of fields documents only the first
// field (go/doc's association), so the rest of the run is flagged.
func TestExportDocGroupComment(t *testing.T) {
	dir := t.TempDir()
	src := `// Package p checks doc-comment association over a field run.
package p

// Limits is a bounds pair.
type Limits struct {
	// Both bounds are inclusive.
	Lo int
	Hi int
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := (&Runner{Rules: []Rule{NewExportDoc()}}).Run([]*Package{pkg})
	if len(diags) != 1 || diags[0].Pos.Line != 8 ||
		!strings.Contains(diags[0].Message, "exported field Limits.Hi") {
		t.Fatalf("diags = %v, want exactly Limits.Hi at p.go:8", diags)
	}
}

func TestSuppressionsRejectUndocumented(t *testing.T) {
	if _, err := ParseSuppressions("test", "floatcmp foo.go:1"); err == nil {
		t.Fatal("suppression without a reason must be rejected")
	}
	if _, err := ParseSuppressions("test", "nosuchrule foo.go:1 -- why"); err == nil {
		t.Fatal("unknown rule must be rejected")
	}
	if _, err := ParseSuppressions("test", "floatcmp foo.go:zero -- why"); err == nil {
		t.Fatal("bad line number must be rejected")
	}
}

func TestInlineIgnore(t *testing.T) {
	dir := t.TempDir()
	src := `// Package p is an inline-suppression fixture.
package p

func cmp(a, b float64) bool {
	//positlint:ignore floatcmp exact identity check for the test
	return a == b
}

func cmpSameLine(a, b float64) bool {
	return a == b //positlint:ignore floatcmp deliberate
}

func cmpNoReason(a, b float64) bool {
	//positlint:ignore floatcmp
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Rules: AllRules()}
	diags := runner.Run([]*Package{pkg})
	// Expect: the malformed-directive report plus the unsuppressed
	// floatcmp under it; the two well-formed ignores suppress theirs.
	var ids []string
	for _, d := range diags {
		ids = append(ids, d.RuleID)
	}
	if len(diags) != 2 || diags[0].RuleID != "ignoredirective" || diags[1].RuleID != "floatcmp" {
		t.Fatalf("diagnostics = %v, want [ignoredirective floatcmp]", ids)
	}
}

func pos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}
