package lint

import (
	"go/ast"
	"go/types"
)

// QuireGuard flags quire accumulation paths with no overflow/NaR
// check. The quire (internal/posit.Quire) is the fixed-point
// accumulator behind every exact dot product, sum and solver residual
// in this repo; when an operand is NaR the quire latches a sticky NaR
// flag, and the 2022 standard's contract is that the ONLY safe ways
// to observe the accumulated value are ToPosit (which propagates NaR
// into the posit domain, where narcheck-guarded consumers handle it)
// and an explicit IsNaR check. The hardware-efficiency literature
// motivating our quire paths ("Closing the Gap Between Float and
// Posit Hardware Efficiency", PAPERS.md) centres on exactly these
// accumulate-then-round pipelines — an accumulation whose result is
// never read back through the guarded API silently discards the NaR
// signal and with it every catastrophic-flip statistic downstream.
//
// The rule tracks quires created locally in a function (NewQuire,
// &Quire{...} and friends) and fires when:
//
//   - the function accumulates into the quire (AddPosit, SubPosit,
//     AddProduct, SubProduct — directly, or through a helper the fact
//     index recorded as accumulating into a quire parameter, in any
//     package) but never consults IsNaR and never rounds out through
//     ToPosit, and the quire does not escape to a caller who could;
//   - the quire is read through Float64 (the diagnostics-only
//     double-rounding readout) with no IsNaR check in the function:
//     NaR decodes to NaN there and poisons float statistics silently.
//
// Accumulation into parameters, receivers and struct fields is exempt
// — the owner of the quire carries the guard obligation — as is any
// quire that escapes (returned, stored, or passed to a function not
// known to be a pure accumulator).
type QuireGuard struct{}

// NewQuireGuard returns the rule.
func NewQuireGuard() *QuireGuard { return &QuireGuard{} }

// ID implements Rule.
func (*QuireGuard) ID() string { return "quireguard" }

// Doc implements Rule.
func (*QuireGuard) Doc() string {
	return "flags quire accumulation with no IsNaR/ToPosit overflow check on the result"
}

// quireState tracks one local quire variable through a function body.
type quireState struct {
	accumPos   ast.Node // first accumulation site (diagnostic anchor)
	hasIsNaR   bool     // IsNaR() consulted on this quire
	hasToPosit bool     // ToPosit() rounds the value out
	float64At  ast.Node // first Float64() readout, if any
	escaped    bool     // leaves the function: caller owns the guard
}

// Check implements Rule.
func (r *QuireGuard) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	walkFuncs(pass, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
		states := map[types.Object]*quireState{}
		local := func(obj types.Object) *quireState {
			if obj == nil || !isQuireType(obj.Type()) {
				return nil
			}
			// Only quires declared inside this body: parameters,
			// receivers and captured variables belong to someone else.
			if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
				return nil
			}
			st := states[obj]
			if st == nil {
				st = &quireState{}
				states[obj] = st
			}
			return st
		}

		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				// A local quire reaching a return statement escapes.
				if ret, ok := n.(*ast.ReturnStmt); ok {
					for _, res := range ret.Results {
						if st := local(rootIdentObject(pass, res)); st != nil {
							st.escaped = true
						}
					}
				}
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if st := local(rootIdentObject(pass, sel.X)); st != nil {
					switch sel.Sel.Name {
					case "AddPosit", "SubPosit", "AddProduct", "SubProduct":
						if st.accumPos == nil {
							st.accumPos = call
						}
					case "IsNaR":
						st.hasIsNaR = true
					case "ToPosit":
						st.hasToPosit = true
					case "Float64":
						if st.float64At == nil {
							st.float64At = call
						}
					}
					// Other methods (Zero, ...) neither guard nor escape.
					return true
				}
			}
			// A local quire passed as an argument: accumulation when the
			// fact index knows the callee accumulates into that
			// parameter, escape otherwise (the callee may guard it).
			accumParams := map[int]bool{}
			if fn := calleeFunc(pass, call); fn != nil && pass.Facts != nil {
				if fact := pass.Facts.QuireAccum[fn.FullName()]; fact != nil {
					for _, pi := range fact.Params {
						accumParams[pi] = true
					}
				}
			}
			for i, arg := range call.Args {
				st := local(rootIdentObject(pass, arg))
				if st == nil {
					continue
				}
				if accumParams[i] {
					if st.accumPos == nil {
						st.accumPos = call
					}
				} else {
					st.escaped = true
				}
			}
			return true
		})

		for _, st := range states {
			if st.float64At != nil && !st.hasIsNaR {
				out = append(out, pass.Diag(r, st.float64At.Pos(),
					"quire read through Float64 with no IsNaR check in this function; NaR decodes to NaN and silently poisons float statistics — check IsNaR or round out via ToPosit"))
			}
			if st.accumPos != nil && !st.hasIsNaR && !st.hasToPosit && st.float64At == nil && !st.escaped {
				out = append(out, pass.Diag(r, st.accumPos.Pos(),
					"quire accumulation is never checked: the accumulated value leaves this function without IsNaR or ToPosit, discarding the overflow/NaR signal"))
			}
		}
	})
	return out
}
