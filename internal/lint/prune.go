package lint

// Stale-suppression pruning: `positlint -prune`. Suppressions are
// debt — each one records a finding someone decided was a false
// positive. When the flagged code is later fixed, renamed or deleted,
// the entry keeps matching nothing and quietly widens what future
// regressions can hide behind (a file glob that once covered one
// finding will happily swallow the next, unrelated one). Prune runs
// the full rule set with suppression DISABLED, then reports every
// file-based entry and every inline //positlint:ignore directive that
// no longer matches any diagnostic. `make ci` fails on stale entries,
// so the suppression files shrink as the findings they covered die.

import (
	"fmt"
	"strings"
)

// Stale is one suppression that no longer suppresses anything.
type Stale struct {
	// Kind is "suppress" (a .positlint.suppress entry) or "ignore"
	// (an inline //positlint:ignore directive).
	Kind string
	// Where locates the entry: "file:line" of the directive, or the
	// suppression file line rendered back for file-based entries.
	Where string
	// Detail restates the entry so the report is actionable alone.
	Detail string
}

// String renders the stale entry for terminal output.
func (s Stale) String() string {
	return fmt.Sprintf("%s: stale %s: %s", s.Where, s.Kind, s.Detail)
}

// FindStale lints pkgs with every suppression mechanism disabled and
// returns the suppressions that matched no diagnostic. The rule set
// must be the full one for the answer to be meaningful: an entry for a
// rule that simply was not run would be falsely reported stale.
func FindStale(pkgs []*Package, rules []Rule, sup *Suppressions) []Stale {
	facts := BuildFacts(pkgs)

	// Raw diagnostics and the live inline directives, per package.
	var raw []Diagnostic
	var directives []ignoreEntry
	for _, pkg := range pkgs {
		pass := pkg.pass()
		pass.Facts = facts
		entries, _ := inlineIgnores(pass) // malformed directives are lint findings, not suppressions
		directives = append(directives, entries...)
		for _, rule := range rules {
			raw = append(raw, rule.Check(pass)...)
		}
	}

	var stale []Stale
	for _, e := range directives {
		used := false
		for _, d := range raw {
			if e.matches(d) {
				used = true
				break
			}
		}
		if !used {
			stale = append(stale, Stale{
				Kind:  "ignore",
				Where: fmt.Sprintf("%s:%d", e.pos.Filename, e.pos.Line),
				Detail: fmt.Sprintf("//positlint:ignore %s matches no diagnostic; delete the directive",
					strings.Join(e.rules, ",")),
			})
		}
	}
	if sup != nil {
		for _, e := range sup.Entries {
			used := false
			for _, d := range raw {
				if e.Matches(d) {
					used = true
					break
				}
			}
			if !used {
				where := e.Path
				if e.Line != 0 {
					where = fmt.Sprintf("%s:%d", e.Path, e.Line)
				}
				stale = append(stale, Stale{
					Kind:   "suppress",
					Where:  where,
					Detail: fmt.Sprintf("entry %q matches no diagnostic; delete it from .positlint.suppress", e.Rule+" "+e.Path),
				})
			}
		}
	}
	return stale
}
