package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadFixture loads one testdata/src package or fails the test.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

func TestFactIndexStructsAndHeaders(t *testing.T) {
	idx := BuildFacts([]*Package{loadFixture(t, "csvheader")})

	sf := idx.StructIn("", "Trial")
	if sf == nil {
		t.Fatal("Trial struct fact not collected")
	}
	if got := sf.FieldNames(); !reflect.DeepEqual(got, []string{"Dataset", "Bit", "Delta"}) {
		t.Errorf("Trial fields = %v", got)
	}
	var header *StringListFact
	for _, fact := range idx.StringLists {
		if fact.Name == "trialHeader" {
			header = fact
		}
	}
	if header == nil {
		t.Fatal("trialHeader registry fact not collected")
	}
	if !reflect.DeepEqual(header.Elems, []string{"dataset", "bit", "delta"}) {
		t.Errorf("trialHeader elems = %v", header.Elems)
	}
}

func TestFactIndexErrorCodes(t *testing.T) {
	idx := BuildFacts([]*Package{loadFixture(t, "errcode")})
	for _, code := range []string{"bad-request", "not-found"} {
		if !idx.HasErrorCode(code) {
			t.Errorf("HasErrorCode(%q) = false", code)
		}
	}
	if idx.HasErrorCode("oops") {
		t.Error("unregistered code reported as registered")
	}
}

func TestFactIndexQuireAccum(t *testing.T) {
	idx := BuildFacts([]*Package{loadFixture(t, "quireguard")})
	var fact *QuireAccumFact
	for name, f := range idx.QuireAccum {
		if strings.HasSuffix(name, "accumulate") {
			fact = f
		}
	}
	if fact == nil {
		t.Fatalf("accumulate fact not collected; have %v", idx.QuireAccum)
	}
	if !reflect.DeepEqual(fact.Params, []int{0}) {
		t.Errorf("accumulate params = %v, want [0]", fact.Params)
	}
}

func TestFactIndexHashDeterministic(t *testing.T) {
	pkg := loadFixture(t, "csvheader")
	a := BuildFacts([]*Package{pkg}).Hash()
	b := BuildFacts([]*Package{pkg}).Hash()
	if a != b {
		t.Errorf("fact hash not deterministic: %s vs %s", a, b)
	}
	other := BuildFacts([]*Package{loadFixture(t, "errcode")}).Hash()
	if a == other {
		t.Error("fact hashes of different packages collide")
	}
}

// TestRunnerParallelDeterministic runs the full rule set over several
// packages at different concurrency levels and demands byte-identical
// diagnostic streams: ordering must come from sortDiagnostics, never
// from goroutine scheduling.
func TestRunnerParallelDeterministic(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "all"),
		loadFixture(t, "floatcmp"),
		loadFixture(t, "errdrop"),
		loadFixture(t, "quireguard"),
		loadFixture(t, "errcode"),
	}
	base := (&Runner{Rules: AllRules(), Jobs: 1}).Run(pkgs)
	if len(base) == 0 {
		t.Fatal("fixtures produced no diagnostics")
	}
	for _, jobs := range []int{0, 2, 8} {
		for round := 0; round < 3; round++ {
			got := (&Runner{Rules: AllRules(), Jobs: jobs}).Run(pkgs)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("jobs=%d round=%d: diagnostics differ from sequential run", jobs, round)
			}
		}
	}
}

func TestCacheHitMatchesFreshRun(t *testing.T) {
	dir := t.TempDir()
	pkgs := []*Package{loadFixture(t, "all")}
	cold := (&Runner{Rules: AllRules(), Cache: NewCache(dir)}).Run(pkgs)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir not populated: %v (%d entries)", err, len(entries))
	}
	warm := (&Runner{Rules: AllRules(), Cache: NewCache(dir)}).Run(pkgs)
	if !reflect.DeepEqual(cold, warm) {
		t.Error("cached diagnostics differ from fresh run")
	}
	uncached := (&Runner{Rules: AllRules()}).Run(pkgs)
	if !reflect.DeepEqual(cold, uncached) {
		t.Error("cache-backed diagnostics differ from uncached run")
	}
}

func TestCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	pkgs := []*Package{loadFixture(t, "all")}
	runner := &Runner{Rules: AllRules(), Cache: NewCache(dir)}
	want := runner.Run(pkgs)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := (&Runner{Rules: AllRules(), Cache: NewCache(dir)}).Run(pkgs)
	if !reflect.DeepEqual(got, want) {
		t.Error("corrupt cache entries changed the diagnostics")
	}
}

func TestCacheKeyChangesWithRulesAndFacts(t *testing.T) {
	c := NewCache(t.TempDir())
	pkg := loadFixture(t, "all")
	k1, err := c.key(pkg, []string{"floatcmp"}, "facts-a")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := c.key(pkg, []string{"errdrop"}, "facts-a")
	if err != nil {
		t.Fatal(err)
	}
	k3, err := c.key(pkg, []string{"floatcmp"}, "facts-b")
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 || k1 == k3 {
		t.Error("cache key insensitive to rule set or facts hash")
	}
	k4, err := c.key(pkg, []string{"floatcmp"}, "facts-a")
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k4 {
		t.Error("cache key not deterministic")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := (&Runner{Rules: AllRules()}).Run([]*Package{loadFixture(t, "all")})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != JSONSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Count != len(diags) || len(rep.Issues) != len(diags) {
		t.Fatalf("count = %d/%d issues, want %d", rep.Count, len(rep.Issues), len(diags))
	}
	for i, d := range diags {
		is := rep.Issues[i]
		if is.File != d.Pos.Filename || is.Line != d.Pos.Line || is.Col != d.Pos.Column ||
			is.Rule != d.RuleID || is.Message != d.Message || is.Fixable != (d.Fix != nil) {
			t.Errorf("issue[%d] = %+v does not round-trip %s", i, is, d)
		}
	}
}

func TestReadJSONRejectsWrongSchema(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"schema":"something-else/v9","count":0,"issues":[]}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestApplyFixesLintsClean copies the all fixture, applies every
// suggested fix, and re-lints with the mechanical rules: the fixed
// file must be clean — the acceptance contract of `positlint -fix`.
func TestApplyFixesLintsClean(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "all", "all.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "all.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	mechanical := []Rule{NewErrDrop(), NewPkgDoc(), NewExportDoc()}
	load := func() []Diagnostic {
		pkg, err := LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return (&Runner{Rules: mechanical}).Run([]*Package{pkg})
	}
	diags := load()
	if n := Fixable(diags); n != len(diags) || n == 0 {
		t.Fatalf("mechanical rules produced %d diags, %d fixable", len(diags), n)
	}
	changed, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 {
		t.Fatalf("changed files = %v", changed)
	}
	if after := load(); len(after) != 0 {
		for _, d := range after {
			t.Errorf("still dirty after -fix: %s", d)
		}
	}
}

func TestApplyFixesRejectsOverlap(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(file, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Fix: &SuggestedFix{Edits: []TextEdit{{File: file, Start: 2, End: 6, New: "A"}}}},
		{Fix: &SuggestedFix{Edits: []TextEdit{{File: file, Start: 4, End: 8, New: "B"}}}},
	}
	if _, err := ApplyFixes(diags); err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("overlapping edits not rejected: %v", err)
	}
}

func TestFindStaleIgnoreDirective(t *testing.T) {
	dir := t.TempDir()
	src := `// Package p carries one live and one stale ignore directive.
package p

func cmp(a, b float64) bool {
	//positlint:ignore floatcmp exact identity check
	return a == b
}

func fine(a, b float64) bool {
	//positlint:ignore floatcmp nothing here trips anymore
	return a < b
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stale := FindStale([]*Package{pkg}, AllRules(), &Suppressions{})
	if len(stale) != 1 {
		t.Fatalf("stale = %v, want exactly the directive in fine()", stale)
	}
	if stale[0].Kind != "ignore" || !strings.Contains(stale[0].Where, "p.go:10") {
		t.Errorf("stale[0] = %v, want the ignore at p.go:10", stale[0])
	}
}

func TestFindStaleSuppressEntries(t *testing.T) {
	pkg := loadFixture(t, "floatcmp")
	diags := (&Runner{Rules: AllRules()}).Run([]*Package{pkg})
	if len(diags) == 0 {
		t.Fatal("floatcmp fixture is unexpectedly clean")
	}
	live := diags[0]
	sup, err := ParseSuppressions("test", strings.Join([]string{
		"floatcmp " + live.Pos.Filename + " -- live: still matches",
		"errdrop gone/renamed.go -- stale: file was renamed",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	stale := FindStale([]*Package{pkg}, AllRules(), sup)
	if len(stale) != 1 {
		t.Fatalf("stale = %v, want only the renamed-file entry", stale)
	}
	if stale[0].Kind != "suppress" || !strings.Contains(stale[0].Detail, "errdrop gone/renamed.go") {
		t.Errorf("stale[0] = %v", stale[0])
	}
}
