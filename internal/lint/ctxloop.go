package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop inspects goroutine-spawning loops — the shape of every
// worker pool in internal/core, internal/stats and internal/figures.
// Two hazards fire:
//
//   - the spawned func literal captures the loop variable instead of
//     taking it as an argument. Go 1.22 made range variables
//     per-iteration, but the repo's analyzers and examples are read as
//     reference implementations of the paper's campaign; the
//     pass-as-argument form is the only one whose correctness does not
//     depend on toolchain version, so the lint enforces it;
//
//   - the enclosing function receives a context.Context but the
//     spawned goroutine never consults it (no ctx use, so no
//     cancellation path): under sharded campaigns a cancelled job must
//     not keep burning cores.
type CtxLoop struct{}

// NewCtxLoop returns the rule.
func NewCtxLoop() *CtxLoop { return &CtxLoop{} }

// ID implements Rule.
func (*CtxLoop) ID() string { return "ctxloop" }

// Doc implements Rule.
func (*CtxLoop) Doc() string {
	return "flags goroutine loops that capture the loop variable or ignore a ctx parameter"
}

// Check implements Rule.
func (r *CtxLoop) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	walkFuncs(pass, func(_ string, ftype *ast.FuncType, body *ast.BlockStmt) {
		ctxObjs := contextParams(pass, ftype)
		ast.Inspect(body, func(n ast.Node) bool {
			var loopBody *ast.BlockStmt
			loopVars := map[types.Object]bool{}
			switch loop := n.(type) {
			case *ast.RangeStmt:
				loopBody = loop.Body
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars[obj] = true
						}
					}
				}
			case *ast.ForStmt:
				loopBody = loop.Body
				if as, ok := loop.Init.(*ast.AssignStmt); ok {
					for _, e := range as.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.Info.Defs[id]; obj != nil {
								loopVars[obj] = true
							}
						}
					}
				}
			default:
				return true
			}
			ast.Inspect(loopBody, func(m ast.Node) bool {
				gs, ok := m.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true // go f(args): args evaluate at spawn time
				}
				if len(loopVars) > 0 && usesAnyObject(pass, lit.Body, loopVars) {
					out = append(out, pass.Diag(r, gs.Pos(),
						"goroutine captures a loop variable; pass it as an argument so correctness does not depend on per-iteration semantics"))
				}
				if len(ctxObjs) > 0 && !usesAnyObject(pass, lit.Body, ctxObjs) &&
					!usesAnyObject(pass, gs.Call, ctxObjs) {
					out = append(out, pass.Diag(r, gs.Pos(),
						"goroutine spawned in a loop never consults the enclosing function's context.Context; it cannot be cancelled"))
				}
				return true
			})
			return true
		})
	})
	return out
}

// contextParams collects the context.Context-typed parameter objects
// of a function signature.
func contextParams(pass *Pass, ftype *ast.FuncType) map[types.Object]bool {
	objs := map[types.Object]bool{}
	if ftype == nil || ftype.Params == nil {
		return objs
	}
	for _, field := range ftype.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				objs[obj] = true
			}
		}
	}
	return objs
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
