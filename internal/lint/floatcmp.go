package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// FloatCmp flags == and != between floating-point operands. Raw float
// equality is how reproduction bugs hide: two decode paths can differ
// by one ULP and still "pass" sometimes, or a NaN can make every
// comparison false. Campaign and analysis code must compare bit
// patterns (EncodeFloat64 results) or use a tolerance/ULP comparator.
//
// Allowed without a suppression:
//   - comparison against the exact constant 0 (zero is a distinguished
//     exact encoding in every format the paper studies: ±0 ↔ posit 0);
//   - comparisons inside functions whose name matches AllowFuncs —
//     the tolerance/ULP comparator helpers themselves.
type FloatCmp struct {
	// AllowFuncs matches enclosing function names that are allowed to
	// compare floats exactly (the comparator helpers).
	AllowFuncs *regexp.Regexp
}

// NewFloatCmp returns the rule with the default comparator allowlist.
func NewFloatCmp() *FloatCmp {
	return &FloatCmp{AllowFuncs: regexp.MustCompile(`(?i)(ulp|almost|approx|within|toler|samefloat|biteq)`)}
}

// ID implements Rule.
func (*FloatCmp) ID() string { return "floatcmp" }

// Doc implements Rule.
func (*FloatCmp) Doc() string {
	return "flags ==/!= on float operands outside tolerance/ULP comparator helpers"
}

// Check implements Rule.
func (r *FloatCmp) Check(pass *Pass) []Diagnostic {
	var out []Diagnostic
	walkFuncs(pass, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
		if r.AllowFuncs != nil && r.AllowFuncs.MatchString(name) {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
			if xt == nil || yt == nil || (!isFloat(xt) && !isFloat(yt)) {
				return true
			}
			// Exact-zero checks are a deliberate domain idiom.
			if isConstZero(pass, be.X) || isConstZero(pass, be.Y) {
				return true
			}
			// Both sides constant: folded at compile time, not a
			// runtime reproduction hazard.
			if pass.Info.Types[be.X].Value != nil && pass.Info.Types[be.Y].Value != nil {
				return true
			}
			out = append(out, pass.Diag(r, be.OpPos,
				"float equality (%s): compare encoded bit patterns or use a tolerance/ULP comparator", be.Op))
			return true
		})
	})
	return out
}
