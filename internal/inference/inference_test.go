package inference

import (
	"math"
	"testing"

	"positres/internal/numfmt"
)

func codec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func trainSmall(t *testing.T) (*MLP, *Dataset) {
	t.Helper()
	ds := SyntheticClusters(1, 3, 4, 300)
	m := Train(1, ds, 12, 30, 0.05)
	return m, ds
}

func TestSyntheticClusters(t *testing.T) {
	ds := SyntheticClusters(1, 3, 4, 300)
	if len(ds.X) != 300 || len(ds.Y) != 300 || len(ds.X[0]) != 4 {
		t.Fatal("shape")
	}
	counts := map[int]int{}
	for _, y := range ds.Y {
		counts[y]++
	}
	if len(counts) != 3 || counts[0] != 100 {
		t.Fatalf("class balance: %v", counts)
	}
	// Determinism.
	ds2 := SyntheticClusters(1, 3, 4, 300)
	if ds.X[5][2] != ds2.X[5][2] {
		t.Fatal("not deterministic")
	}
	ds3 := SyntheticClusters(2, 3, 4, 300)
	if ds.X[5][2] == ds3.X[5][2] {
		t.Fatal("seed ignored")
	}
}

func TestTrainReachesHighAccuracy(t *testing.T) {
	m, ds := trainSmall(t)
	acc := m.Accuracy(ds)
	if acc < 0.95 {
		t.Fatalf("training accuracy %v, want >= 0.95", acc)
	}
	// Deterministic training.
	m2 := Train(1, ds, 12, 30, 0.05)
	if m.W1[3] != m2.W1[3] || m.W2[1] != m2.W2[1] {
		t.Fatal("training not deterministic")
	}
}

func TestStoredMatchesMaster(t *testing.T) {
	m, ds := trainSmall(t)
	for _, name := range []string{"posit32", "ieee32", "ieee64"} {
		s := Store(m, codec(t, name))
		// 32-bit storage rounds weights, but accuracy should be intact
		// and logits close.
		if acc, master := s.Accuracy(ds), m.Accuracy(ds); math.Abs(acc-master) > 0.02 {
			t.Errorf("%s: accuracy %v vs master %v", name, acc, master)
		}
		l := s.Forward(ds.X[0])
		lm := m.Forward(ds.X[0])
		for c := range l {
			if math.Abs(l[c]-lm[c]) > 1e-3*math.Max(1, math.Abs(lm[c])) {
				t.Errorf("%s logit %d: %v vs %v", name, c, l[c], lm[c])
			}
		}
	}
}

func TestFlipAndRestore(t *testing.T) {
	m, ds := trainSmall(t)
	s := Store(m, codec(t, "posit32"))
	before := s.Forward(ds.X[0])
	s.FlipWeightBit(3, 30)
	after := s.Forward(ds.X[0])
	same := true
	for c := range before {
		if before[c] != after[c] {
			same = false
		}
	}
	if same {
		t.Error("flip had no effect on logits")
	}
	s.Restore(m, 3)
	restored := s.Forward(ds.X[0])
	for c := range before {
		if before[c] != restored[c] {
			t.Fatal("restore did not undo the flip")
		}
	}
	if s.NumWeights() != len(m.W1)+len(m.B1)+len(m.W2)+len(m.B2) {
		t.Error("weight count")
	}
	if s.Codec().Name() != "posit32" {
		t.Error("codec")
	}
}

// TestWeightFlipCampaignShape: the campaign sweeps every bit with the
// requested trial count and produces finite aggregates.
func TestWeightFlipCampaignShape(t *testing.T) {
	m, ds := trainSmall(t)
	imps := WeightFlipCampaign(m, codec(t, "posit16"), ds, 4, 9)
	if len(imps) != 16 {
		t.Fatalf("impacts: %d", len(imps))
	}
	for _, imp := range imps {
		if imp.Trials != 4 {
			t.Fatal("trials")
		}
		if math.IsNaN(imp.MeanMRED) || imp.Misclass < 0 || imp.Misclass > 1 {
			t.Fatalf("aggregate: %+v", imp)
		}
	}
	// Deterministic.
	imps2 := WeightFlipCampaign(m, codec(t, "posit16"), ds, 4, 9)
	if imps[10] != imps2[10] {
		t.Fatal("campaign not deterministic")
	}
}

// TestAlouaniFinding: posit-stored models suffer smaller worst-case
// MRED and accuracy drops than IEEE-stored models under the same
// weight-flip campaign — the prior work's headline that the paper's
// §5.3 confirms.
func TestAlouaniFinding(t *testing.T) {
	m, ds := trainSmall(t)
	pImps := WeightFlipCampaign(m, codec(t, "posit32"), ds, 6, 9)
	iImps := WeightFlipCampaign(m, codec(t, "ieee32"), ds, 6, 9)
	worst := func(imps []FlipImpact) (mred, drop float64) {
		for _, im := range imps {
			if im.MeanMRED > mred {
				mred = im.MeanMRED
			}
			if im.AccuracyDrop > drop {
				drop = im.AccuracyDrop
			}
		}
		return
	}
	pm, pd := worst(pImps)
	im, id := worst(iImps)
	if !(im > 10*pm) {
		t.Errorf("worst MRED: posit %g, ieee %g — expected ieee ≫ posit", pm, im)
	}
	// Accuracy drops: the IEEE model should fare no better than the
	// posit model at its worst bit.
	if pd > id+0.05 {
		t.Errorf("worst accuracy drop: posit %g, ieee %g", pd, id)
	}
}

// TestProtectedWeightsAbsorbFlips: with SEC-DED stored weights, every
// single-bit weight upset is corrected on the next inference — the
// logits match the clean model exactly.
func TestProtectedWeightsAbsorbFlips(t *testing.T) {
	m, ds := trainSmall(t)
	s, err := StoreProtected(m, codec(t, "posit32"))
	if err != nil {
		t.Fatal(err)
	}
	clean := s.Forward(ds.X[0])
	for bit := 0; bit < 39; bit++ {
		s.FlipWeightBit(bit%s.NumWeights(), bit)
		got := s.Forward(ds.X[0])
		for c := range got {
			if got[c] != clean[c] {
				t.Fatalf("bit %d: logit %d changed: %v vs %v", bit, c, got[c], clean[c])
			}
		}
	}
	// Restore path works for protected models too.
	s.FlipWeightBit(2, 10)
	s.Restore(m, 2)
	if got := s.Forward(ds.X[0]); got[0] != clean[0] {
		t.Fatal("protected restore")
	}
	// Non-32-bit formats refuse protection.
	if _, err := StoreProtected(m, codec(t, "posit16")); err == nil {
		t.Fatal("posit16 protection should fail")
	}
}
