// Package inference reproduces the experiment of the paper's prior
// work (Alouani et al., "An Investigation on Inherent Robustness of
// Posit Data Representation", VLSID 2021 — the paper's ref [8]): a
// bit-flip campaign over the *weights* of a neural network, measuring
// the mean relative error distance (MRED) of the outputs and the
// classification accuracy drop, with the model stored as posits vs
// IEEE floats. The paper positions itself against this study ("does
// not go in depth regarding posit error in individual bit positions");
// this package provides the application-level counterpart so both
// views coexist.
package inference

import (
	"fmt"
	"math"

	"positres/internal/bitflip"
	"positres/internal/ecc"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

// MLP is a two-layer perceptron: tanh hidden layer, linear output,
// argmax classification.
type MLP struct {
	In, Hidden, Out int // layer widths: input, hidden, output units
	// Row-major weights and biases (float64 master copy).
	W1 []float64 // Hidden × In
	B1 []float64 // Hidden
	W2 []float64 // Out × Hidden
	B2 []float64 // Out
}

// Dataset is a labelled sample set.
type Dataset struct {
	X [][]float64 // feature vectors
	Y []int       // class labels, parallel to X
}

// SyntheticClusters generates a deterministic Gaussian-blob
// classification problem: `classes` clusters in `dim` dimensions.
func SyntheticClusters(seed uint64, classes, dim, n int) *Dataset {
	rng := sdrbench.NewRNG(seed, "inference-data")
	// Well-separated cluster centres: one-hot corners scaled to 4 with
	// a small deterministic jitter (pairwise distance ≈ 5.7 against
	// unit noise → near-zero Bayes error).
	centres := make([][]float64, classes)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for d := range centres[c] {
			centres[c][d] = 0.5 * math.Sin(float64(c*dim+d)*2.399963)
			if d == c%dim {
				centres[c][d] += 4
			}
		}
	}
	ds := &Dataset{X: make([][]float64, n), Y: make([]int, n)}
	for i := range ds.X {
		c := i % classes
		x := make([]float64, dim)
		for d := range x {
			x[d] = centres[c][d] + rng.NormFloat64()
		}
		ds.X[i] = x
		ds.Y[i] = c
	}
	return ds
}

// Train fits an MLP with plain SGD on softmax cross-entropy,
// deterministically.
func Train(seed uint64, ds *Dataset, hidden, epochs int, lr float64) *MLP {
	dim := len(ds.X[0])
	classes := 0
	for _, y := range ds.Y {
		if y+1 > classes {
			classes = y + 1
		}
	}
	rng := sdrbench.NewRNG(seed, "inference-init")
	m := &MLP{In: dim, Hidden: hidden, Out: classes}
	m.W1 = make([]float64, hidden*dim)
	m.B1 = make([]float64, hidden)
	m.W2 = make([]float64, classes*hidden)
	m.B2 = make([]float64, classes)
	for i := range m.W1 {
		m.W1[i] = 0.5 * rng.NormFloat64() / math.Sqrt(float64(dim))
	}
	for i := range m.W2 {
		m.W2[i] = 0.5 * rng.NormFloat64() / math.Sqrt(float64(hidden))
	}

	h := make([]float64, hidden)
	logits := make([]float64, classes)
	probs := make([]float64, classes)
	for epoch := 0; epoch < epochs; epoch++ {
		for i := range ds.X {
			x, y := ds.X[i], ds.Y[i]
			// Forward.
			for j := 0; j < hidden; j++ {
				s := m.B1[j]
				for d := 0; d < dim; d++ {
					s += m.W1[j*dim+d] * x[d]
				}
				h[j] = math.Tanh(s)
			}
			var max float64 = math.Inf(-1)
			for c := 0; c < classes; c++ {
				s := m.B2[c]
				for j := 0; j < hidden; j++ {
					s += m.W2[c*hidden+j] * h[j]
				}
				logits[c] = s
				if s > max {
					max = s
				}
			}
			var z float64
			for c := range probs {
				probs[c] = math.Exp(logits[c] - max)
				z += probs[c]
			}
			for c := range probs {
				probs[c] /= z
			}
			// Backward (softmax CE): dL/dlogit_c = p_c − 1{c==y}.
			for c := 0; c < classes; c++ {
				g := probs[c]
				if c == y {
					g--
				}
				m.B2[c] -= lr * g
				for j := 0; j < hidden; j++ {
					// Gradient through tanh for the hidden layer.
					m.W2[c*hidden+j] -= lr * g * h[j]
				}
			}
			for j := 0; j < hidden; j++ {
				var gh float64
				for c := 0; c < classes; c++ {
					g := probs[c]
					if c == y {
						g--
					}
					gh += g * m.W2[c*hidden+j]
				}
				gh *= 1 - h[j]*h[j]
				m.B1[j] -= lr * gh
				for d := 0; d < dim; d++ {
					m.W1[j*dim+d] -= lr * gh * x[d]
				}
			}
		}
	}
	return m
}

// Forward evaluates logits in float64.
func (m *MLP) Forward(x []float64) []float64 {
	h := make([]float64, m.Hidden)
	for j := 0; j < m.Hidden; j++ {
		s := m.B1[j]
		for d := 0; d < m.In; d++ {
			s += m.W1[j*m.In+d] * x[d]
		}
		h[j] = math.Tanh(s)
	}
	out := make([]float64, m.Out)
	for c := 0; c < m.Out; c++ {
		s := m.B2[c]
		for j := 0; j < m.Hidden; j++ {
			s += m.W2[c*m.Hidden+j] * h[j]
		}
		out[c] = s
	}
	return out
}

// Predict returns the argmax class.
func (m *MLP) Predict(x []float64) int { return argmax(m.Forward(x)) }

func argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Accuracy evaluates classification accuracy in float64.
func (m *MLP) Accuracy(ds *Dataset) float64 {
	ok := 0
	for i := range ds.X {
		if m.Predict(ds.X[i]) == ds.Y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(ds.X))
}

// Stored is an MLP whose parameters live as encoded bit patterns in a
// number format — the deployment model whose resident weights soft
// errors strike.
type Stored struct {
	codec numfmt.Codec
	m     MLP // geometry copy
	// weights holds every parameter's encoded pattern:
	// [W1..., B1..., W2..., B2...].
	weights []uint64
	// prot, when non-nil, shadows weights with SEC-DED codewords
	// (32-bit formats): loads repair single-bit upsets.
	prot *ecc.ProtectedArray
}

// Store encodes an MLP's parameters in the format.
func Store(m *MLP, codec numfmt.Codec) *Stored {
	s := &Stored{codec: codec, m: *m}
	all := flatParams(m)
	s.weights = make([]uint64, len(all))
	for i, v := range all {
		s.weights[i] = codec.Encode(v)
	}
	return s
}

// StoreProtected encodes the parameters under SEC-DED protection
// (32-bit formats only): weight-bit upsets are corrected on the next
// inference that touches them.
func StoreProtected(m *MLP, codec numfmt.Codec) (*Stored, error) {
	if codec.Width() != 32 {
		return nil, fmt.Errorf("inference: SEC-DED protection requires a 32-bit format, got %s", codec.Name())
	}
	s := &Stored{codec: codec, m: *m}
	all := flatParams(m)
	words := make([]uint32, len(all))
	for i, v := range all {
		words[i] = uint32(codec.Encode(v))
	}
	s.prot = ecc.Protect(words)
	return s, nil
}

func flatParams(m *MLP) []float64 {
	all := make([]float64, 0, len(m.W1)+len(m.B1)+len(m.W2)+len(m.B2))
	all = append(all, m.W1...)
	all = append(all, m.B1...)
	all = append(all, m.W2...)
	all = append(all, m.B2...)
	return all
}

// NumWeights returns the parameter count.
func (s *Stored) NumWeights() int {
	if s.prot != nil {
		return s.prot.Len()
	}
	return len(s.weights)
}

// Codec returns the storage format.
func (s *Stored) Codec() numfmt.Codec { return s.codec }

// FlipWeightBit corrupts one stored parameter. For protected models
// the flip lands in the 39-bit ECC codeword (bit 0..38).
func (s *Stored) FlipWeightBit(idx, bit int) {
	if s.prot != nil {
		s.prot.InjectFault(idx, bit)
		return
	}
	s.weights[idx] = bitflip.Flip(s.weights[idx], bit) & maskOf(s.codec)
}

// Restore repairs parameter idx from the float64 master.
func (s *Stored) Restore(m *MLP, idx int) {
	if s.prot != nil {
		s.prot.Store(idx, uint32(s.codec.Encode(masterParam(m, idx))))
		return
	}
	s.weights[idx] = s.codec.Encode(masterParam(m, idx))
}

func masterParam(m *MLP, idx int) float64 {
	switch {
	case idx < len(m.W1):
		return m.W1[idx]
	case idx < len(m.W1)+len(m.B1):
		return m.B1[idx-len(m.W1)]
	case idx < len(m.W1)+len(m.B1)+len(m.W2):
		return m.W2[idx-len(m.W1)-len(m.B1)]
	default:
		return m.B2[idx-len(m.W1)-len(m.B1)-len(m.W2)]
	}
}

func maskOf(c numfmt.Codec) uint64 {
	if c.Width() >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(c.Width()) - 1
}

// param decodes parameter idx (repairing it first when protected).
func (s *Stored) param(idx int) float64 {
	if s.prot != nil {
		w, _ := s.prot.Load(idx)
		return s.codec.Decode(uint64(w))
	}
	return s.codec.Decode(s.weights[idx])
}

// Forward evaluates the stored network (weights decoded per use,
// arithmetic in float64 — the mixed-precision deployment model).
func (s *Stored) Forward(x []float64) []float64 {
	m := &s.m
	offB1 := len(m.W1)
	offW2 := offB1 + len(m.B1)
	offB2 := offW2 + len(m.W2)
	h := make([]float64, m.Hidden)
	for j := 0; j < m.Hidden; j++ {
		sum := s.param(offB1 + j)
		for d := 0; d < m.In; d++ {
			sum += s.param(j*m.In+d) * x[d]
		}
		h[j] = math.Tanh(sum)
	}
	out := make([]float64, m.Out)
	for c := 0; c < m.Out; c++ {
		sum := s.param(offB2 + c)
		for j := 0; j < m.Hidden; j++ {
			sum += s.param(offW2+c*m.Hidden+j) * h[j]
		}
		out[c] = sum
	}
	return out
}

// Accuracy evaluates the stored network.
func (s *Stored) Accuracy(ds *Dataset) float64 {
	ok := 0
	for i := range ds.X {
		if argmax(s.Forward(ds.X[i])) == ds.Y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(ds.X))
}

// FlipImpact aggregates a weight-bit-flip campaign at one bit position
// (the Alouani-style measurement).
type FlipImpact struct {
	Bit          int     // flipped weight-bit position, 0 = LSB
	Trials       int     // injections aggregated at this position
	MeanMRED     float64 // mean relative error distance of the logits
	AccuracyDrop float64 // clean accuracy − mean faulty accuracy
	Misclass     float64 // fraction of trials that changed ≥1 prediction
}

// WeightFlipCampaign flips random weights at every bit position,
// trialsPerBit times each, measuring logit MRED over a probe set and
// the accuracy drop over the evaluation set.
func WeightFlipCampaign(m *MLP, codec numfmt.Codec, ds *Dataset, trialsPerBit int, seed uint64) []FlipImpact {
	s := Store(m, codec)
	cleanAcc := s.Accuracy(ds)
	// Probe subset for MRED (logit comparison is O(n·model)).
	probeN := len(ds.X)
	if probeN > 64 {
		probeN = 64
	}
	cleanLogits := make([][]float64, probeN)
	for i := 0; i < probeN; i++ {
		cleanLogits[i] = s.Forward(ds.X[i])
	}

	width := codec.Width()
	out := make([]FlipImpact, width)
	for bit := 0; bit < width; bit++ {
		imp := &out[bit]
		imp.Bit = bit
		imp.Trials = trialsPerBit
		var sumMRED, sumAcc float64
		changed := 0
		for trial := 0; trial < trialsPerBit; trial++ {
			rng := sdrbench.NewRNG(seed, "mlflip", codec.Name(), fmt.Sprint(bit), fmt.Sprint(trial))
			idx := rng.Intn(s.NumWeights())
			s.FlipWeightBit(idx, bit)

			var mred float64
			var n int
			anyChange := false
			for i := 0; i < probeN; i++ {
				faulty := s.Forward(ds.X[i])
				if argmax(faulty) != argmax(cleanLogits[i]) {
					anyChange = true
				}
				for c := range faulty {
					ref := cleanLogits[i][c]
					if ref != 0 {
						d := math.Abs(faulty[c]-ref) / math.Abs(ref)
						if !math.IsNaN(d) && !math.IsInf(d, 0) {
							mred += d
							n++
						} else {
							mred += 1e30 // catastrophic logit
							n++
						}
					}
				}
			}
			if n > 0 {
				sumMRED += mred / float64(n)
			}
			sumAcc += s.Accuracy(ds)
			if anyChange {
				changed++
			}
			s.Restore(m, idx)
		}
		imp.MeanMRED = sumMRED / float64(trialsPerBit)
		imp.AccuracyDrop = cleanAcc - sumAcc/float64(trialsPerBit)
		imp.Misclass = float64(changed) / float64(trialsPerBit)
	}
	return out
}
