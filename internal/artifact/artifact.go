// Package artifact is the shared schema-tag discipline of the repo's
// JSON artifacts. Every machine-readable document the pipeline emits —
// positres-bench/v1 baselines, positres-load/v1 soak reports,
// positres-telemetry/v1 snapshots, positlint-diag/v1 diagnostics and
// positres-aggregate/v1 campaign summaries — carries a stable "schema"
// field, and every reader must refuse a document tagged with anything
// else. Before this package each reader hand-rolled that comparison,
// which is exactly the kind of writer/reader drift ROADMAP's
// correctness-tooling section warned about; now the check (and the
// shape of its error) lives in one place.
package artifact

import (
	"fmt"
	"strings"
)

// CheckSchema verifies a document's schema tag against the one the
// reader expects. The match is exact — versioned tags like
// "positres-bench/v1" change only by bumping the suffix, and a reader
// for /v1 must refuse /v2 rather than guess. An empty got usually
// means the caller parsed a document that is not a tagged artifact at
// all; the error says so explicitly.
func CheckSchema(got, want string) error {
	if got == want {
		return nil
	}
	if strings.TrimSpace(got) == "" {
		return fmt.Errorf("artifact: document carries no schema tag, want %q", want)
	}
	return fmt.Errorf("artifact: schema %q, want %q", got, want)
}
