package artifact

import (
	"strings"
	"testing"
)

func TestCheckSchemaMatch(t *testing.T) {
	if err := CheckSchema("positres-bench/v1", "positres-bench/v1"); err != nil {
		t.Fatalf("matching schema rejected: %v", err)
	}
}

func TestCheckSchemaMismatch(t *testing.T) {
	err := CheckSchema("positres-bench/v2", "positres-bench/v1")
	if err == nil {
		t.Fatal("version bump accepted")
	}
	for _, want := range []string{"positres-bench/v2", "positres-bench/v1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

func TestCheckSchemaEmpty(t *testing.T) {
	err := CheckSchema("", "positres-aggregate/v1")
	if err == nil {
		t.Fatal("missing tag accepted")
	}
	if !strings.Contains(err.Error(), "no schema tag") {
		t.Errorf("error %q does not explain the missing tag", err)
	}
}
