package figures

import (
	"fmt"
	"math"

	"positres/internal/kernels"
	"positres/internal/textplot"
)

// This file builds the application-level extension experiments: what a
// single mid-solve bit flip does to an iterative solver when the
// working vectors are stored as posits vs IEEE floats, and how SEC-DED
// memory protection absorbs the same faults.

// solverProblemN is the grid size of the 1-D Poisson test system.
const solverProblemN = 64

// SolverImpactTable sweeps one mid-solve injection across bit
// positions and storage formats for both solvers, reporting the final
// solution error of clean vs faulty runs.
func SolverImpactTable(b Budget) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"solver", "codec", "bit", "clean err", "faulty err", "inflation", "diverged",
	}}
	p := kernels.NewProblem(solverProblemN)
	bitsToSweep := []int{3, 15, 23, 28, 30, 31}
	for _, solver := range []string{"jacobi", "cg"} {
		maxIters, tol := 600, 0.0
		if solver == "cg" {
			maxIters, tol = 200, 1e-12
		}
		for _, codecName := range []string{"posit32", "ieee32"} {
			codec := mustCodec(codecName)
			for _, bit := range bitsToSweep {
				inj := kernels.RandomInjection(b.Seed, solverProblemN, maxIters, bit)
				row, err := kernels.SolverImpact(p, codec, solver, maxIters, tol, inj, false)
				if err != nil {
					panic(err)
				}
				t.AddRow(solver, codecName, fmt.Sprintf("%d", bit),
					fmt.Sprintf("%.3g", row.Clean.SolutionErr),
					fmt.Sprintf("%.3g", row.Faulty.SolutionErr),
					fmt.Sprintf("%.3g", row.ErrInflation),
					fmt.Sprintf("%v", row.Faulty.Diverged))
			}
		}
	}
	return t
}

// ProtectionTable repeats the worst injections with SEC-DED protected
// storage: every fault is corrected on the next load, and the faulty
// run reproduces the clean run exactly.
func ProtectionTable(b Budget) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"solver", "codec", "bit", "protected", "faulty err", "matches clean", "ecc corrections",
	}}
	p := kernels.NewProblem(solverProblemN)
	for _, solver := range []string{"jacobi", "cg"} {
		maxIters, tol := 600, 0.0
		if solver == "cg" {
			maxIters, tol = 200, 1e-12
		}
		for _, codecName := range []string{"posit32", "ieee32"} {
			codec := mustCodec(codecName)
			for _, bit := range []int{30, 31} {
				inj := kernels.RandomInjection(b.Seed, solverProblemN, maxIters, bit)
				for _, protected := range []bool{false, true} {
					row, err := kernels.SolverImpact(p, codec, solver, maxIters, tol, inj, protected)
					if err != nil {
						panic(err)
					}
					t.AddRow(solver, codecName, fmt.Sprintf("%d", bit),
						fmt.Sprintf("%v", protected),
						fmt.Sprintf("%.3g", row.Faulty.SolutionErr),
						fmt.Sprintf("%v", math.Float64bits(row.Faulty.SolutionErr) == math.Float64bits(row.Clean.SolutionErr)),
						fmt.Sprintf("%d", row.Faulty.Corrected))
				}
			}
		}
	}
	return t
}
