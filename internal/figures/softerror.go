package figures

import (
	"fmt"

	"positres/internal/sdrbench"
	"positres/internal/softerr"
	"positres/internal/textplot"
)

// SoftErrorTable runs the Poisson soft-error-rate simulation (paper
// §3.3 turned quantitative): a resident array under a DRAM-class FIT
// rate, comparing the expected corruption of posit vs IEEE storage per
// residency epoch.
func SoftErrorTable(b Budget) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"codec", "field", "λ/epoch", "mean upsets", "mean max rel err", "worst rel err", "catastrophe rate",
	}}
	fields := []string{"Hurricane/Vf30", "Nyx/temperature"}
	const (
		fit    = 1e4 // FIT/bit, accelerated for Monte Carlo resolution
		hours  = 1.0
		epochs = 200
	)
	for _, key := range fields {
		f, err := sdrbench.Lookup(key)
		if err != nil {
			panic(err)
		}
		n := b.DatasetN / 10
		if n < 1000 {
			n = 1000
		}
		data := sdrbench.ToFloat64(f.Generate(n, b.Seed))
		for _, codecName := range []string{"posit32", "ieee32"} {
			codec := mustCodec(codecName)
			m := softerr.Model{FITPerBit: fit, Seed: b.Seed}
			res, err := softerr.Simulate(m, codec, data, hours, epochs)
			if err != nil {
				panic(err)
			}
			s := softerr.Summarize(res)
			lambda := m.ExpectedUpsets(len(data)*codec.Width(), hours)
			t.AddRow(codecName, key,
				fmt.Sprintf("%.3g", lambda),
				fmt.Sprintf("%.3g", s.MeanUpsets),
				fmt.Sprintf("%.3g", s.MeanMaxRelErr),
				fmt.Sprintf("%.3g", s.WorstRelErr),
				fmt.Sprintf("%.4f", s.CatastropheRate))
		}
	}
	return t
}
