package figures

import (
	"fmt"

	"positres/internal/core"
	"positres/internal/textplot"
)

// SDCChart plots P(relative error > τ) per bit position — the
// tail-probability view of Fig. 10 that resilience studies report:
// how likely a flip at each bit is to corrupt the value beyond an
// application's tolerance.
func SDCChart(b Budget, tau float64) *textplot.LineChart {
	c := &textplot.LineChart{
		Title:  fmt.Sprintf("Ext: P(rel err > %g) per flipped bit (CESM/RELHUM)", tau),
		XLabel: "bit position (0 = LSB)",
		YLabel: "corruption probability",
		Height: 20,
	}
	for _, name := range []string{"posit32", "ieee32"} {
		r := runField(b, name, "CESM/RELHUM")
		s := textplot.Series{Name: name}
		for _, pt := range core.SDCProbability(r.Trials, tau) {
			s.X = append(s.X, float64(pt.Bit))
			s.Y = append(s.Y, pt.Prob)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// SDCTable tabulates the overall corruption probability at several
// tolerances.
func SDCTable(b Budget) *textplot.Table {
	taus := []float64{1e-6, 1e-3, 1, 1e6}
	t := &textplot.Table{Header: []string{
		"codec", "P(>1e-6)", "P(>1e-3)", "P(>1)", "P(>1e6)",
	}}
	for _, name := range []string{"posit32", "ieee32"} {
		r := runField(b, name, "CESM/RELHUM")
		row := []string{name}
		for _, tau := range taus {
			row = append(row, fmt.Sprintf("%.4f", core.OverallSDCRate(r.Trials, tau)))
		}
		t.AddRow(row...)
	}
	return t
}
