package figures

import (
	"strings"
	"testing"
)

// tiny is an even smaller budget than QuickBudget for unit tests.
var tiny = Budget{DatasetN: 20_000, TrialsPerBit: 30, Seed: 1}

func TestTable1(t *testing.T) {
	out := Table1(tiny).Render()
	for _, want := range []string{"CESM", "OMEGA", "HACC", "Hurricane", "Nyx", "paper:Mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 18 { // header + sep + 16 fields
		t.Errorf("Table1 has %d lines", lines)
	}
}

func TestFig3(t *testing.T) {
	out := Fig3().Render()
	if !strings.Contains(out, "186.25") || !strings.Contains(out, "log scale") {
		t.Errorf("Fig3:\n%s", out)
	}
	tsv := Fig3().TSV()
	if !strings.HasPrefix(tsv, "x\tieee32 186.25") {
		t.Errorf("Fig3 TSV header: %q", strings.SplitN(tsv, "\n", 2)[0])
	}
	// 32 data rows (Inf rows included in TSV as +Inf).
	if rows := strings.Count(tsv, "\n"); rows != 33 {
		t.Errorf("Fig3 TSV rows: %d", rows)
	}
}

func TestFig7(t *testing.T) {
	c := Fig7()
	if len(c.Series) != 2 {
		t.Fatal("Fig7 series")
	}
	if len(c.Series[0].X) != 241 { // scales -120..120
		t.Errorf("Fig7 points: %d", len(c.Series[0].X))
	}
	if !strings.Contains(c.Render(), "decimal digits") {
		t.Error("Fig7 render")
	}
}

func TestFig10(t *testing.T) {
	c := Fig10(tiny)
	if len(c.Series) != 8 { // 4 fields × 2 codecs
		t.Fatalf("Fig10 series: %d", len(c.Series))
	}
	out := c.Render()
	for _, want := range []string{"posit32 Nyx/temperature", "ieee32 CESM/CLOUD"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig10 missing %q", want)
		}
	}
}

func TestFig11And14(t *testing.T) {
	c := Fig11(tiny)
	if len(c.Series) == 0 {
		t.Error("Fig11 empty")
	}
	for _, s := range c.Series {
		if !strings.HasPrefix(s.Name, "k=") {
			t.Errorf("Fig11 series name %q", s.Name)
		}
	}
	c = Fig14(tiny)
	if len(c.Series) == 0 {
		t.Error("Fig14 empty")
	}
	if out := Fig11AbsErr(tiny).Render(); !strings.Contains(out, "absolute error") {
		t.Error("Fig11 abs variant")
	}
}

func TestFig16And18(t *testing.T) {
	c := Fig16(tiny)
	if len(c.Series) != 2 {
		t.Fatal("Fig16 series")
	}
	c = Fig18(tiny)
	if len(c.Series) != 2 || c.Series[0].Name != "fraction" || c.Series[1].Name != "exponent" {
		t.Fatalf("Fig18 series: %+v", c.Series)
	}
	// The exponent series must exist and sit at higher bit positions
	// than the fraction's top (the smooth continuation claim).
	if len(c.Series[1].X) == 0 {
		t.Error("no exponent-bit trials")
	}
}

func TestFig20(t *testing.T) {
	p := Fig20(tiny)
	if len(p.Groups) < 2 {
		t.Fatalf("Fig20 groups: %d", len(p.Groups))
	}
	if !strings.Contains(p.Render(), "k=") {
		t.Error("Fig20 render")
	}
}

func TestExtensions(t *testing.T) {
	c := WidthSweep(tiny, "Hurricane/Vf30")
	if len(c.Series) != 4 {
		t.Fatalf("width sweep series: %d", len(c.Series))
	}
	for _, s := range c.Series {
		for _, x := range s.X {
			if x < 0 || x > 1 {
				t.Fatal("normalized position out of range")
			}
		}
	}
	tb := MultiBitTable(tiny, "HACC/vy")
	out := tb.Render()
	if strings.Count(out, "posit32") != 3 || strings.Count(out, "ieee32") != 3 {
		t.Errorf("multi-bit table:\n%s", out)
	}
	ab := ESAblation(tiny, "CESM/RELHUM")
	if len(ab.Series) != 4 {
		t.Fatalf("ablation series: %d", len(ab.Series))
	}
}

func TestComputeFindings(t *testing.T) {
	f := ComputeFindings(tiny, "CESM/RELHUM")
	if f.IEEETopExpErr < 1e15 {
		t.Errorf("IEEE top exp err %g", f.IEEETopExpErr)
	}
	if f.AdvantageRatio < 1e6 {
		t.Errorf("advantage ratio %g", f.AdvantageRatio)
	}
	if f.IEEESignRelErr != 2 {
		t.Errorf("IEEE sign rel err %g", f.IEEESignRelErr)
	}
	if f.PositExpMaxRelErr > 3.0001 {
		t.Errorf("posit exp max rel err %g", f.PositExpMaxRelErr)
	}
	if !f.FractionGrowthObey {
		t.Error("fraction growth violated")
	}
	tbl := FindingsTable(tiny, []string{"CESM/RELHUM"}).Render()
	if !strings.Contains(tbl, "CESM/RELHUM") {
		t.Error("findings table")
	}
}

func TestSolverImpactTable(t *testing.T) {
	out := SolverImpactTable(tiny).Render()
	for _, want := range []string{"jacobi", "cg", "posit32", "ieee32"} {
		if !strings.Contains(out, want) {
			t.Errorf("solver impact missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 26 { // header+sep+24 rows
		t.Errorf("solver impact lines: %d\n%s", lines, out)
	}
}

func TestProtectionTable(t *testing.T) {
	out := ProtectionTable(tiny).Render()
	if !strings.Contains(out, "true") {
		t.Error("protection table should contain matches-clean=true rows")
	}
	if lines := strings.Count(out, "\n"); lines != 18 { // header+sep+16 rows
		t.Errorf("protection lines: %d\n%s", lines, out)
	}
}

func TestSoftErrorTable(t *testing.T) {
	out := SoftErrorTable(tiny).Render()
	if strings.Count(out, "posit32") != 2 || strings.Count(out, "ieee32") != 2 {
		t.Errorf("soft error table:\n%s", out)
	}
}

func TestMLWorkload(t *testing.T) {
	c := MLFlipChart(tiny)
	if len(c.Series) != 2 || len(c.Series[0].X) != 32 {
		t.Fatalf("ml chart: %d series", len(c.Series))
	}
	out := MLImpactTable(tiny).Render()
	for _, want := range []string{"posit32", "ieee32", "posit16", "ieee16"} {
		if !strings.Contains(out, want) {
			t.Errorf("ml table missing %q", want)
		}
	}
}

func TestDetectionFigures(t *testing.T) {
	c := DetectionChart(tiny)
	if len(c.Series) != 2 || len(c.Series[0].X) != 32 {
		t.Fatalf("detection chart: %d series", len(c.Series))
	}
	out := DetectionTable(tiny).Render()
	if strings.Count(out, "posit32") != 1 || strings.Count(out, "ieee32") != 1 {
		t.Errorf("detection table:\n%s", out)
	}
}

func TestABFTTable(t *testing.T) {
	out := ABFTTable(tiny).Render()
	if strings.Count(out, "posit32") != 1 || strings.Count(out, "ieee32") != 1 {
		t.Errorf("abft table:\n%s", out)
	}
	if !strings.Contains(out, "residual after ABFT") {
		t.Error("header")
	}
}

func TestCheckpointTable(t *testing.T) {
	out := CheckpointTable(tiny).Render()
	if strings.Count(out, "checkpoint/restart") != 2 || strings.Count(out, "SEC-DED") != 2 {
		t.Errorf("checkpoint table:\n%s", out)
	}
}

func TestSDCFigures(t *testing.T) {
	c := SDCChart(tiny, 1)
	if len(c.Series) != 2 || len(c.Series[0].X) != 32 {
		t.Fatalf("sdc chart series: %d", len(c.Series))
	}
	out := SDCTable(tiny).Render()
	if !strings.Contains(out, "P(>1e6)") || strings.Count(out, "posit32") != 1 {
		t.Errorf("sdc table:\n%s", out)
	}
}

func TestRepresentationTable(t *testing.T) {
	tb := RepresentationTable(tiny)
	if len(tb.Rows) != 16 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	out := tb.Render()
	if !strings.Contains(out, "EXAFEL") || !strings.Contains(out, "winner") {
		t.Errorf("repr table:\n%s", out)
	}
	// The float32-exact data makes ieee32 a zero-error round trip, so
	// every ieee32 mean column is 0; posits win only by ties never —
	// check EXAFEL specifically loses for posits (values ~1e-35).
	for _, row := range tb.Rows {
		if row[0] == "EXAFEL/smd-cxif5315-r129-dark" && row[5] != "ieee32" {
			t.Errorf("EXAFEL winner: %v", row)
		}
	}
}
