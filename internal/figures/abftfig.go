package figures

import (
	"fmt"
	"math"

	"positres/internal/abft"
	"positres/internal/sdrbench"
	"positres/internal/textplot"
)

// ABFTTable runs the Huang–Abraham checksummed-GEMM experiment (paper
// refs [29, 30]): a bit flip lands in the stored product matrix; ABFT
// locates and corrects it. The table compares the raw worst-case
// damage against the post-correction residual per format.
func ABFTTable(b Budget) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"codec", "bits swept", "detected", "corrected", "raw worst err", "residual after ABFT",
	}}
	const m, n, p = 8, 6, 7
	for _, name := range []string{"posit32", "ieee32"} {
		c := mustCodec(name)
		rng := sdrbench.NewRNG(b.Seed, "abft-fig", name)
		av := make([]float64, m*n)
		bv := make([]float64, n*p)
		for i := range av {
			av[i] = rng.NormFloat64() * 3
		}
		for i := range bv {
			bv[i] = rng.NormFloat64() * 2
		}
		detected, corrected := 0, 0
		var rawWorst, residWorst float64
		for bit := 0; bit < c.Width(); bit++ {
			A, err := abft.NewMatrix(c, m, n, av)
			if err != nil {
				panic(err)
			}
			B, err := abft.NewMatrix(c, n, p, bv)
			if err != nil {
				panic(err)
			}
			P, err := abft.MulChecked(A, B, 1e-5)
			if err != nil {
				panic(err)
			}
			ref := P.Data()
			P.InjectBitFlip(m/2, p/2, bit)
			raw := P.MaxDataError(ref)
			if raw > rawWorst && !math.IsInf(raw, 0) {
				rawWorst = raw
			}
			if math.IsInf(raw, 0) {
				rawWorst = math.Inf(1)
			}
			if !P.Verify().OK {
				detected++
				if P.Correct() {
					corrected++
				}
			}
			if r := P.MaxDataError(ref); r > residWorst {
				residWorst = r
			}
		}
		t.AddRow(name, fmt.Sprintf("%d", c.Width()),
			fmt.Sprintf("%d", detected), fmt.Sprintf("%d", corrected),
			fmt.Sprintf("%.3g", rawWorst), fmt.Sprintf("%.3g", residWorst))
	}
	return t
}
