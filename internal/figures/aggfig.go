package figures

// Aggregate-driven builders: figures rendered from precomputed per-bit
// aggregates (a store footer or a positres-aggregate/v1 document)
// instead of trial slabs. Everything here is O(series×bits) — no
// campaign is run and no trial row is ever scanned, which is what lets
// positreport render the per-bit curves of a 10⁷-trial campaign from a
// few kilobytes of summary.

import (
	"fmt"

	"positres/internal/core"
	"positres/internal/textplot"
)

// AggSeries converts per-bit aggregates into a named mean-relative-
// error series, the paper's Fig. 10 metric.
func AggSeries(name string, aggs []core.BitAgg) textplot.Series {
	return meanRelSeries(name, aggs)
}

// AggChart assembles a Fig. 10-style per-bit mean relative error chart
// from precomputed series.
func AggChart(title string, series []textplot.Series) *textplot.LineChart {
	return &textplot.LineChart{
		Title:  title,
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error",
		LogY:   true,
		Height: 24,
		Series: series,
	}
}

// AggSummaryRow is one input to AggSummaryTable: a source label and
// its per-bit aggregates.
type AggSummaryRow struct {
	// Source labels the row (a file name, a campaign id, ...).
	Source string
	// Aggs holds the per-bit aggregates, ascending by bit.
	Aggs []core.BitAgg
}

// AggSummaryTable tabulates aggregate inputs: total trials and
// catastrophic count, the covered bit span, and the worst bit position
// by mean relative error.
func AggSummaryTable(rows []AggSummaryRow) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"source", "trials", "catastrophic", "bits", "worst bit", "mean rel err @worst",
	}}
	for _, row := range rows {
		var trials, catastrophic, worstBit int
		worst := -1.0
		for _, a := range row.Aggs {
			trials += a.Trials
			catastrophic += a.Catastrophic
			if a.MeanRelErr > worst {
				worst, worstBit = a.MeanRelErr, a.Bit
			}
		}
		span := "-"
		if n := len(row.Aggs); n > 0 {
			span = fmt.Sprintf("%d..%d", row.Aggs[0].Bit, row.Aggs[n-1].Bit)
		}
		t.AddRow(row.Source, fmt.Sprintf("%d", trials), fmt.Sprintf("%d", catastrophic),
			span, fmt.Sprintf("%d", worstBit), fmt.Sprintf("%.3g", worst))
	}
	return t
}
