package figures

import (
	"fmt"
	"math"

	"positres/internal/core"
	"positres/internal/textplot"
)

// This file implements the paper's future-work extensions (§6):
// campaigns on 8/16/64-bit posits, multi-bit flips, and the legacy-es
// ablation.

// WidthSweep runs the campaign on posit8/16/32/64 (and the matching
// IEEE widths where one exists), normalizing bit positions to [0,1] so
// the curves of different widths are comparable.
func WidthSweep(b Budget, key string) *textplot.LineChart {
	c := &textplot.LineChart{
		Title:  "Ext: mean relative error by normalized bit position across posit widths (" + key + ")",
		XLabel: "bit position / width",
		YLabel: "mean relative error",
		LogY:   true,
		Height: 24,
	}
	for _, name := range []string{"posit8", "posit16", "posit32", "posit64"} {
		r := runField(b, name, key)
		width := mustCodec(name).Width()
		s := textplot.Series{Name: name}
		for _, a := range core.AggregateByBit(r.Trials) {
			s.X = append(s.X, float64(a.Bit)/float64(width-1))
			s.Y = append(s.Y, a.MeanRelErr)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// MultiBitTable tabulates error statistics for 1-, 2- and 3-bit
// simultaneous flips in posit32 vs ieee32.
func MultiBitTable(b Budget, key string) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"codec", "flips", "trials", "catastrophic", "mean rel err", "median rel err",
	}}
	data := fieldData(b, key)
	trials := b.TrialsPerBit * 8
	for _, name := range []string{"posit32", "ieee32"} {
		codec := mustCodec(name)
		for flips := 1; flips <= 3; flips++ {
			mt, err := core.RunMultiBit(b.campaignCfg(), codec, key, data, flips, trials)
			if err != nil {
				panic(err)
			}
			s := core.SummarizeMulti(mt)
			t.AddRow(name, fmt.Sprintf("%d", flips), fmt.Sprintf("%d", s.Trials),
				fmt.Sprintf("%d", s.Catastrophic),
				fmt.Sprintf("%.3g", s.MeanRelErr), fmt.Sprintf("%.3g", s.MedianRelErr))
		}
	}
	return t
}

// ESAblation compares the per-bit error of posit32 with legacy
// exponent sizes es ∈ {0,1,3} against the standard es=2.
func ESAblation(b Budget, key string) *textplot.LineChart {
	c := &textplot.LineChart{
		Title:  "Ablation: posit32 error per bit across exponent sizes (" + key + ")",
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error",
		LogY:   true,
		Height: 24,
	}
	for _, name := range []string{"posit32es0", "posit32es1", "posit32", "posit32es3"} {
		r := runField(b, name, key)
		c.Series = append(c.Series, meanRelSeries(name, core.AggregateByBit(r.Trials)))
	}
	return c
}

// Findings summarizes the quantitative shape results (DESIGN.md §4)
// for EXPERIMENTS.md: the numbers backing each paper-vs-measured row.
type Findings struct {
	Field string // dataset field key the numbers were measured on

	IEEETopExpErr  float64 // max finite mean rel err, bits 28–30, ieee32
	PositTopErr    float64 // max finite mean rel err, bits 24–30, posit32
	AdvantageRatio float64 // IEEETopExpErr / PositTopErr

	IEEESignRelErr     float64 // always exactly 2
	PositExpMaxRelErr  float64 // ≤ 3 (×4 shift bound)
	PositCatastrophes  int     // NaR/zero-decode flips observed, posit32
	IEEECatastrophes   int     // NaN/Inf flips observed, ieee32
	FractionGrowthObey bool    // fraction error grows toward MSB in both
}

// ComputeFindings runs the posit-vs-IEEE comparison on one field and
// extracts the headline numbers.
func ComputeFindings(b Budget, key string) Findings {
	pR := runField(b, "posit32", key)
	iR := runField(b, "ieee32", key)
	f := Findings{Field: key}

	pAgg := core.AggregateByBit(pR.Trials)
	iAgg := core.AggregateByBit(iR.Trials)
	maxIn := func(aggs []core.BitAgg, lo, hi int) float64 {
		out := 0.0
		for _, a := range aggs {
			if a.Bit >= lo && a.Bit <= hi && !math.IsNaN(a.MeanRelErr) && !math.IsInf(a.MeanRelErr, 0) {
				out = math.Max(out, a.MeanRelErr)
			}
		}
		return out
	}
	f.IEEETopExpErr = maxIn(iAgg, 28, 30)
	f.PositTopErr = maxIn(pAgg, 24, 30)
	if f.PositTopErr > 0 {
		f.AdvantageRatio = f.IEEETopExpErr / f.PositTopErr
	}

	f.IEEESignRelErr = math.NaN()
	for _, a := range iAgg {
		if a.Bit == 31 {
			f.IEEESignRelErr = a.MeanRelErr
		}
	}
	for _, tr := range pR.Trials {
		if tr.FieldName == "exponent" && !tr.Catastrophic {
			f.PositExpMaxRelErr = math.Max(f.PositExpMaxRelErr, tr.RelErr)
		}
	}
	count := func(trials []core.Trial) int {
		n := 0
		for _, tr := range trials {
			if tr.Catastrophic {
				n++
			}
		}
		return n
	}
	f.PositCatastrophes = count(pR.Trials)
	f.IEEECatastrophes = count(iR.Trials)
	lo := maxIn(pAgg, 0, 2)
	hi := maxIn(pAgg, 15, 18)
	iLo := maxIn(iAgg, 0, 2)
	iHi := maxIn(iAgg, 15, 18)
	f.FractionGrowthObey = hi > lo && iHi > iLo
	return f
}

// FindingsTable renders findings rows for several fields.
func FindingsTable(b Budget, keys []string) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"field", "ieee exp err", "posit top err", "advantage", "ieee sign",
		"posit exp max", "catastrophic p/i", "frac growth",
	}}
	for _, key := range keys {
		f := ComputeFindings(b, key)
		t.AddRow(f.Field,
			fmt.Sprintf("%.3g", f.IEEETopExpErr), fmt.Sprintf("%.3g", f.PositTopErr),
			fmt.Sprintf("%.2gx", f.AdvantageRatio), fmt.Sprintf("%.3g", f.IEEESignRelErr),
			fmt.Sprintf("%.3g", f.PositExpMaxRelErr),
			fmt.Sprintf("%d/%d", f.PositCatastrophes, f.IEEECatastrophes),
			fmt.Sprintf("%v", f.FractionGrowthObey))
	}
	return t
}
