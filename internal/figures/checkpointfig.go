package figures

import (
	"fmt"

	"positres/internal/checkpoint"
	"positres/internal/kernels"
	"positres/internal/textplot"
)

// CheckpointTable runs the checkpoint/restart experiment (paper refs
// [37], [23]): a catastrophic mid-solve flip under three protection
// regimes — none, checkpoint/restart, SEC-DED — comparing the final
// solution error and the recovery cost.
func CheckpointTable(b Budget) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"codec", "protection", "solution err", "rollbacks", "iters",
	}}
	p := kernels.NewProblem(48)
	const maxIters, interval = 600, 25
	for _, name := range []string{"posit32", "ieee32"} {
		codec := mustCodec(name)
		inj := kernels.Injection{Iter: 100, Index: 20, Bit: 30}

		bare, err := p.Jacobi(codec, maxIters, 0, &inj, false)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, "none", fmt.Sprintf("%.3g", bare.SolutionErr), "-",
			fmt.Sprintf("%d", bare.Iters))

		guarded, err := checkpoint.GuardedJacobi(p, codec, checkpoint.GuardedOpts{
			MaxIters: maxIters, Interval: interval, GrowFactor: 1.01, Inject: &inj,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(name, "checkpoint/restart", fmt.Sprintf("%.3g", guarded.SolutionErr),
			fmt.Sprintf("%d", guarded.Rollbacks), fmt.Sprintf("%d", guarded.Iters))

		ecc, err := p.Jacobi(codec, maxIters, 0, &inj, true)
		if err != nil {
			panic(err)
		}
		t.AddRow(name, "SEC-DED", fmt.Sprintf("%.3g", ecc.SolutionErr), "-",
			fmt.Sprintf("%d", ecc.Iters))
	}
	return t
}
