package figures

import (
	"fmt"

	"positres/internal/detect"
	"positres/internal/sdrbench"
	"positres/internal/textplot"
)

// DetectionChart plots the per-bit detection rate of an impact-driven
// SDC detector (the paper's ref [19]) over a smooth field proxy, for
// posit32 vs ieee32 — detectability is the flip side of the paper's
// impact analysis.
func DetectionChart(b Budget) *textplot.LineChart {
	data := detectField(b)
	trials := b.TrialsPerBit / 4
	if trials < 8 {
		trials = 8
	}
	c := &textplot.LineChart{
		Title:  "Ext (ref [19]): impact-driven SDC detection rate per flipped bit",
		XLabel: "bit position (0 = LSB)",
		YLabel: "detection rate",
		Height: 20,
	}
	for _, name := range []string{"posit32", "ieee32"} {
		out, err := detect.Sweep(mustCodec(name), data, trials, 1.2, b.Seed)
		if err != nil {
			panic(err)
		}
		s := textplot.Series{Name: name}
		for _, o := range out {
			s.X = append(s.X, float64(o.Bit))
			s.Y = append(s.Y, o.DetectRate)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// DetectionTable summarizes detectability and the damage of what
// escapes, per format.
func DetectionTable(b Budget) *textplot.Table {
	data := detectField(b)
	trials := b.TrialsPerBit / 4
	if trials < 8 {
		trials = 8
	}
	t := &textplot.Table{Header: []string{
		"codec", "upper-bit detect rate", "overall detect rate",
		"worst missed rel err", "mean missed rel err (upper bits)",
	}}
	for _, name := range []string{"posit32", "ieee32"} {
		out, err := detect.Sweep(mustCodec(name), data, trials, 1.2, b.Seed)
		if err != nil {
			panic(err)
		}
		var upRate, allRate, worstMissed, upMissed float64
		upN, allN := 0, 0
		for _, o := range out {
			allRate += o.DetectRate
			allN++
			if o.MaxMissedRelErr > worstMissed {
				worstMissed = o.MaxMissedRelErr
			}
			if o.Bit >= 24 && o.Bit <= 30 {
				upRate += o.DetectRate
				upMissed += o.MeanMissedRelErr
				upN++
			}
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", upRate/float64(upN)),
			fmt.Sprintf("%.3f", allRate/float64(allN)),
			fmt.Sprintf("%.3g", worstMissed),
			fmt.Sprintf("%.3g", upMissed/float64(upN)))
	}
	return t
}

func detectField(b Budget) []float64 {
	f, err := sdrbench.Lookup("Hurricane/Pf48")
	if err != nil {
		panic(err)
	}
	n := b.DatasetN / 10
	if n < 4000 {
		n = 4000
	}
	return detect.SmoothProxy(f, n, b.Seed)
}
