package figures

import (
	"fmt"
	"math"

	"positres/internal/sdrbench"
	"positres/internal/textplot"
)

// RepresentationTable quantifies the conversion (representation) error
// each format imposes on each Table 1 field — the baseline the paper's
// §4.1.2 acknowledges ("conversion ... introduces a relative error")
// and the practical face of Fig. 7: posits beat binary32 where values
// sit in the golden zone around |v| = 1 (CESM CLOUD), tie on moderate
// fields, and lose catastrophically far outside it (EXAFEL's 1e-35
// dark frames, where posit32 keeps barely one significant digit).
func RepresentationTable(b Budget) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"field", "posit32 mean rel", "posit32 max rel", "ieee32 mean rel", "ieee32 max rel", "winner",
	}}
	pc, ic := mustCodec("posit32"), mustCodec("ieee32")
	n := b.DatasetN / 20
	if n < 5000 {
		n = 5000
	}
	for _, f := range sdrbench.Fields() {
		data := sdrbench.ToFloat64(f.Generate(n, b.Seed))
		pMean, pMax := reprError(pc.Encode, pc.Decode, data)
		iMean, iMax := reprError(ic.Encode, ic.Decode, data)
		winner := "posit32"
		switch {
		case math.IsNaN(pMean) || pMean > iMean*1.2:
			winner = "ieee32"
		case iMean > pMean*1.2:
			winner = "posit32"
		default:
			winner = "tie"
		}
		t.AddRow(f.Key(),
			fmt.Sprintf("%.3g", pMean), fmt.Sprintf("%.3g", pMax),
			fmt.Sprintf("%.3g", iMean), fmt.Sprintf("%.3g", iMax), winner)
	}
	return t
}

// reprError measures mean and max relative round-trip error over the
// nonzero elements. Note the source data is float32-exact, so ieee32's
// error is exactly zero — the comparison shows what converting a
// float32 pipeline to posits costs, which is precisely the paper's
// setup (float32 datasets converted via convertFloatToP32).
func reprError(encode func(float64) uint64, decode func(uint64) float64, data []float64) (mean, max float64) {
	var sum float64
	n := 0
	for _, v := range data {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		r := decode(encode(v))
		rel := math.Abs(v-r) / math.Abs(v)
		sum += rel
		n++
		if rel > max {
			max = rel
		}
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	return sum / float64(n), max
}
