package figures

import (
	"fmt"
	"math"

	"positres/internal/inference"
	"positres/internal/textplot"
)

// MLFlipChart reproduces the Alouani et al. experiment (the paper's
// ref [8]): mean relative error distance of a neural network's outputs
// per flipped weight-bit position, posit32 vs ieee32 storage.
func MLFlipChart(b Budget) *textplot.LineChart {
	m, ds := trainedModel(b)
	trials := b.TrialsPerBit / 8
	if trials < 3 {
		trials = 3
	}
	c := &textplot.LineChart{
		Title:  "Ext (ref [8]): MLP logit MRED per flipped weight bit",
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error distance",
		LogY:   true,
		Height: 22,
	}
	for _, name := range []string{"posit32", "ieee32"} {
		imps := inference.WeightFlipCampaign(m, mustCodec(name), ds, trials, b.Seed)
		s := textplot.Series{Name: name}
		for _, im := range imps {
			s.X = append(s.X, float64(im.Bit))
			s.Y = append(s.Y, im.MeanMRED)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// MLImpactTable summarizes the campaign: worst-bit MRED, accuracy drop
// and misclassification rate per format.
func MLImpactTable(b Budget) *textplot.Table {
	m, ds := trainedModel(b)
	trials := b.TrialsPerBit / 8
	if trials < 3 {
		trials = 3
	}
	t := &textplot.Table{Header: []string{
		"codec", "clean acc", "worst MRED", "worst acc drop", "worst misclass rate", "worst bit",
	}}
	cleanAcc := m.Accuracy(ds)
	for _, name := range []string{"posit32", "ieee32", "posit16", "ieee16"} {
		imps := inference.WeightFlipCampaign(m, mustCodec(name), ds, trials, b.Seed)
		var mred, drop, mis float64
		worstBit := 0
		for _, im := range imps {
			if im.MeanMRED > mred && !math.IsInf(im.MeanMRED, 0) {
				mred = im.MeanMRED
				worstBit = im.Bit
			}
			if im.AccuracyDrop > drop {
				drop = im.AccuracyDrop
			}
			if im.Misclass > mis {
				mis = im.Misclass
			}
		}
		t.AddRow(name, fmt.Sprintf("%.3f", cleanAcc), fmt.Sprintf("%.3g", mred),
			fmt.Sprintf("%.3f", drop), fmt.Sprintf("%.3f", mis), fmt.Sprintf("%d", worstBit))
	}
	return t
}

func trainedModel(b Budget) (*inference.MLP, *inference.Dataset) {
	n := b.DatasetN / 200
	if n < 150 {
		n = 150
	}
	if n > 600 {
		n = 600
	}
	ds := inference.SyntheticClusters(b.Seed, 3, 4, n)
	m := inference.Train(b.Seed, ds, 12, 30, 0.05)
	return m, ds
}
