// Package figures regenerates every table and figure of the paper's
// evaluation (§5) from the campaign engine, rendering them as text
// charts and TSV series. Each builder corresponds to one experiment in
// DESIGN.md §4 and is exercised by one benchmark in bench_test.go.
package figures

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"positres/internal/analysis"
	"positres/internal/core"
	"positres/internal/ieee754"
	"positres/internal/numfmt"
	"positres/internal/posit"
	"positres/internal/sdrbench"
	"positres/internal/stats"
	"positres/internal/textplot"
)

// Budget scales an experiment: the synthetic dataset size per field
// and the fault-injection trials per bit position.
type Budget struct {
	DatasetN     int    // synthetic elements generated per field
	TrialsPerBit int    // fault-injection trials per bit position
	Seed         uint64 // PRNG seed for data generation and sampling
}

// PaperBudget reproduces the paper's trial counts (313 per bit). The
// dataset sample is 2M elements per field — smaller than the original
// fields (up to 280M) but far larger than the ~10k values a campaign
// actually touches.
var PaperBudget = Budget{DatasetN: 2_000_000, TrialsPerBit: 313, Seed: 1}

// QuickBudget runs every figure in well under a second for tests,
// benchmarks and the quickstart example.
var QuickBudget = Budget{DatasetN: 100_000, TrialsPerBit: 80, Seed: 1}

func (b Budget) campaignCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = b.Seed
	cfg.TrialsPerBit = b.TrialsPerBit
	return cfg
}

func mustCodec(name string) numfmt.Codec {
	c, err := numfmt.Lookup(name)
	if err != nil {
		panic(err)
	}
	return c
}

// dataCache memoizes synthetic fields across figure builders: one
// report regenerates the same (field, n, seed) several times, and
// generation dominates the wall clock at paper scale.
var dataCache sync.Map // dataKey -> []float64

type dataKey struct {
	key  string
	n    int
	seed uint64
}

func fieldData(b Budget, key string) []float64 {
	ck := dataKey{key, b.DatasetN, b.Seed}
	if v, ok := dataCache.Load(ck); ok {
		return v.([]float64)
	}
	f, err := sdrbench.Lookup(key)
	if err != nil {
		panic(err)
	}
	data := sdrbench.ToFloat64(f.Generate(b.DatasetN, b.Seed))
	dataCache.Store(ck, data)
	return data
}

// runField executes the campaign for one codec on one field.
func runField(b Budget, codecName, key string) *core.Result {
	r, err := core.Run(context.Background(), b.campaignCfg(), mustCodec(codecName), key, fieldData(b, key))
	if err != nil {
		panic(err)
	}
	return r
}

// meanRelSeries converts per-bit aggregates to a plot series using the
// mean relative error (the paper's Fig. 10 metric).
func meanRelSeries(name string, aggs []core.BitAgg) textplot.Series {
	s := textplot.Series{Name: name}
	for _, a := range aggs {
		s.X = append(s.X, float64(a.Bit))
		s.Y = append(s.Y, a.MeanRelErr)
	}
	return s
}

func meanAbsSeries(name string, aggs []core.BitAgg) textplot.Series {
	s := textplot.Series{Name: name}
	for _, a := range aggs {
		s.X = append(s.X, float64(a.Bit))
		s.Y = append(s.Y, a.MeanAbsErr)
	}
	return s
}

// Table1 regenerates the dataset summary table from the synthetic
// fields, alongside the paper's reported values for comparison.
func Table1(b Budget) *textplot.Table {
	t := &textplot.Table{Header: []string{
		"Dataset", "Field", "N(sample)",
		"Mean", "Median", "Max", "Min", "Std",
		"paper:Mean", "paper:Median", "paper:Max", "paper:Min", "paper:Std",
	}}
	for _, f := range sdrbench.Fields() {
		data := sdrbench.ToFloat64(f.Generate(b.DatasetN, b.Seed))
		s := stats.Summarize(data)
		t.AddRow(f.Dataset, f.Name, fmt.Sprintf("%d", len(data)),
			fmt.Sprintf("%.2E", s.Mean), fmt.Sprintf("%.2E", s.Median),
			fmt.Sprintf("%.2E", s.Max), fmt.Sprintf("%.2E", s.Min),
			fmt.Sprintf("%.2E", s.Std),
			fmt.Sprintf("%.2E", f.Target.Mean), fmt.Sprintf("%.2E", f.Target.Median),
			fmt.Sprintf("%.2E", f.Target.Max), fmt.Sprintf("%.2E", f.Target.Min),
			fmt.Sprintf("%.2E", f.Target.Std))
	}
	return t
}

// Fig3 sweeps every bit of the IEEE-754 binary32 encoding of 186.25
// and plots the relative error per position (paper Fig. 3).
func Fig3() *textplot.LineChart {
	sweep := analysis.SweepIEEEFlips(ieee754.Binary32, ieee754.Binary32.Encode(186.25))
	s := textplot.Series{Name: "ieee32 186.25"}
	for _, fl := range sweep {
		s.X = append(s.X, float64(fl.Pos))
		y := fl.RelErr
		if fl.Catastrophic {
			y = math.Inf(1) // skipped by the log plot, as in the paper
		}
		s.Y = append(s.Y, y)
	}
	return &textplot.LineChart{
		Title:  "Fig 3: relative error per flipped bit, 186.25 in IEEE-754 binary32",
		XLabel: "bit position (0 = LSB)",
		YLabel: "relative error",
		LogY:   true,
		Series: []textplot.Series{s},
	}
}

// Fig7 plots the decimal-accuracy-vs-magnitude profile of posit32 and
// binary32 (paper Fig. 7).
func Fig7() *textplot.LineChart {
	prof := analysis.DecimalAccuracyProfile(posit.Std32, ieee754.Binary32)
	var p, i textplot.Series
	p.Name, i.Name = "posit32", "ieee32"
	for _, pt := range prof {
		p.X = append(p.X, float64(pt.Scale))
		p.Y = append(p.Y, pt.PositDigits)
		i.X = append(i.X, float64(pt.Scale))
		i.Y = append(i.Y, pt.IEEEDigits)
	}
	return &textplot.LineChart{
		Title:  "Fig 7: decimal digits of accuracy vs binary scale",
		XLabel: "log2 |value|",
		YLabel: "decimal digits",
		Series: []textplot.Series{p, i},
	}
}

// Fig10Fields are the fields plotted in the paper's Fig. 10.
var Fig10Fields = []string{"Nyx/temperature", "Nyx/velocity-x", "CESM/RELHUM", "CESM/CLOUD"}

// Fig10 compares posit32 and ieee32 mean relative error per bit on
// Nyx and CESM fields (paper Fig. 10).
func Fig10(b Budget) *textplot.LineChart {
	c := &textplot.LineChart{
		Title:  "Fig 10: posit vs IEEE-754 mean relative error per bit (Nyx, CESM)",
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error",
		LogY:   true,
		Height: 24,
	}
	for _, key := range Fig10Fields {
		for _, codec := range []string{"posit32", "ieee32"} {
			r := runField(b, codec, key)
			c.Series = append(c.Series, meanRelSeries(codec+" "+key, core.AggregateByBit(r.Trials)))
		}
	}
	return c
}

// regimeBucketChart builds the Fig. 11/14 family: per-bit mean
// relative error within each regime-size bucket.
func regimeBucketChart(b Budget, key, title string, above bool, kMin, kMax int) *textplot.LineChart {
	r := runField(b, "posit32", key)
	trials := r.Trials
	if above {
		trials = core.MagnitudeAbove(trials)
	} else {
		trials = core.MagnitudeBelow(trials)
	}
	curves := core.RegimeCurve(trials)
	ks := make([]int, 0, len(curves))
	for k := range curves {
		if k >= kMin && k <= kMax {
			ks = append(ks, k)
		}
	}
	sort.Ints(ks)
	c := &textplot.LineChart{
		Title:  title,
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error",
		LogY:   true,
		Height: 24,
	}
	for _, k := range ks {
		c.Series = append(c.Series, meanRelSeries(fmt.Sprintf("k=%d", k), curves[k]))
	}
	return c
}

// Fig11 plots error per bit for posits with |v| > 1, bucketed by
// regime size (paper Fig. 11): the R_k spike walks down with k.
func Fig11(b Budget) *textplot.LineChart {
	return regimeBucketChart(b, "Nyx/temperature",
		"Fig 11: avg relative error, posits with |v| > 1, by regime size", true, 1, 6)
}

// Fig14 plots the same for |v| < 1 (paper Fig. 14): no R_k spike, the
// relative error plateaus near 1.
func Fig14(b Budget) *textplot.LineChart {
	return regimeBucketChart(b, "CESM/CLOUD",
		"Fig 14: avg relative error, posits with |v| < 1, by regime size", false, 2, 6)
}

// Fig16 plots fraction-bit relative error for k=1 posits from HACC and
// Hurricane (paper Fig. 16): error doubles per bit toward the MSB.
func Fig16(b Budget) *textplot.LineChart {
	c := &textplot.LineChart{
		Title:  "Fig 16: relative error in the fraction (k=1 posits, HACC & Hurricane)",
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error",
		LogY:   true,
	}
	for _, key := range []string{"HACC/vx", "Hurricane/Uf30"} {
		r := runField(b, "posit32", key)
		k1 := core.Filter(r.Trials, func(tr core.Trial) bool {
			return tr.RegimeK == 1 && tr.FieldName == "fraction"
		})
		c.Series = append(c.Series, meanRelSeries(key, core.AggregateByBit(k1)))
	}
	return c
}

// Fig18 plots exponent-bit vs fraction-bit error for k=1 posits
// (paper Fig. 18): the trend continues smoothly through the exponent.
func Fig18(b Budget) *textplot.LineChart {
	r := runField(b, "posit32", "Hurricane/Vf30")
	k1 := core.Filter(r.Trials, func(tr core.Trial) bool {
		return tr.RegimeK == 1 && (tr.FieldName == "fraction" || tr.FieldName == "exponent")
	})
	frac := core.Filter(k1, func(tr core.Trial) bool { return tr.FieldName == "fraction" })
	exp := core.Filter(k1, func(tr core.Trial) bool { return tr.FieldName == "exponent" })
	return &textplot.LineChart{
		Title:  "Fig 18: relative error in exponent vs fraction (k=1 posits)",
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean relative error",
		LogY:   true,
		Series: []textplot.Series{
			meanRelSeries("fraction", core.AggregateByBit(frac)),
			meanRelSeries("exponent", core.AggregateByBit(exp)),
		},
	}
}

// Fig20 renders the sign-bit absolute-error box plot by regime size
// (paper Fig. 20).
func Fig20(b Budget) *textplot.BoxPlot {
	p := &textplot.BoxPlot{
		Title:  "Fig 20: sign-bit flip absolute error by regime size (posit32)",
		XLabel: "absolute error",
		LogX:   true,
	}
	// Pool sign-bit trials across a large- and a small-magnitude field
	// ("posits of all magnitude ranges are included").
	var all []core.Trial
	for _, key := range []string{"Nyx/temperature", "CESM/CLOUD"} {
		r := runField(b, "posit32", key)
		all = append(all, r.Trials...)
	}
	for _, kb := range core.SignBoxes(all, 32) {
		if kb.Box.N < 5 {
			continue
		}
		p.AddGroup(fmt.Sprintf("k=%d", kb.K), kb.Box)
	}
	return p
}

// Fig11AbsErr renders the absolute-error variant referenced in
// §5.4.1 ("we compute the average absolute error from flips in posits
// with different regime sizes").
func Fig11AbsErr(b Budget) *textplot.LineChart {
	r := runField(b, "posit32", "Nyx/temperature")
	above := core.MagnitudeAbove(r.Trials)
	curves := core.RegimeCurve(above)
	ks := make([]int, 0, len(curves))
	for k := range curves {
		if k >= 2 && k <= 6 {
			ks = append(ks, k)
		}
	}
	sort.Ints(ks)
	c := &textplot.LineChart{
		Title:  "Fig 11 (abs): avg absolute error, posits with |v| > 1, by regime size",
		XLabel: "bit position (0 = LSB)",
		YLabel: "mean absolute error",
		LogY:   true,
		Height: 24,
	}
	for _, k := range ks {
		c.Series = append(c.Series, meanAbsSeries(fmt.Sprintf("k=%d", k), curves[k]))
	}
	return c
}
