package bitflip

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskAndFlip(t *testing.T) {
	if Mask(0) != 1 || Mask(5) != 32 || Mask(63) != 1<<63 {
		t.Error("mask values")
	}
	if Flip(0b1010, 1) != 0b1000 {
		t.Error("flip set bit")
	}
	if Flip(0b1010, 0) != 0b1011 {
		t.Error("flip clear bit")
	}
	for _, bad := range []int{-1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mask(%d) should panic", bad)
				}
			}()
			Mask(bad)
		}()
	}
}

// TestFlipInvolution (property): flipping the same bit twice restores
// the pattern — the XOR guarantee the paper's §4.1 relies on.
func TestFlipInvolution(t *testing.T) {
	f := func(bits uint64, pos uint8) bool {
		p := int(pos % 64)
		return Flip(Flip(bits, p), p) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFlipTouchesOnlyTarget (property): exactly one bit differs.
func TestFlipTouchesOnlyTarget(t *testing.T) {
	f := func(bits uint64, pos uint8) bool {
		p := int(pos % 64)
		diff := bits ^ Flip(bits, p)
		return diff == uint64(1)<<uint(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipMany(t *testing.T) {
	if FlipMany(0, 0, 1, 2) != 0b111 {
		t.Error("flip many")
	}
	// Repeated positions toggle back.
	if FlipMany(0, 3, 3) != 0 {
		t.Error("double flip should cancel")
	}
	if MultiMask(0, 2, 4) != 0b10101 {
		t.Error("multi mask")
	}
	if MultiMask() != 0 {
		t.Error("empty multi mask")
	}
}

func TestRandomPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		w := k + rng.Intn(32)
		ps := RandomPositions(rng, w, k)
		if len(ps) != k {
			t.Fatalf("got %d positions, want %d", len(ps), k)
		}
		for i, p := range ps {
			if p < 0 || p >= w {
				t.Fatalf("position %d out of range [0,%d)", p, w)
			}
			if i > 0 && ps[i-1] >= p {
				t.Fatalf("positions not strictly ascending: %v", ps)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("k > width should panic")
		}
	}()
	RandomPositions(rng, 3, 4)
}

func TestRandomFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		faulty, pos := RandomFlip(rng, 0xDEADBEEF, 32)
		if pos < 0 || pos >= 32 {
			t.Fatal("position out of range")
		}
		if faulty != Flip(0xDEADBEEF, pos) {
			t.Fatal("faulty pattern inconsistent with reported position")
		}
		seen[pos] = true
	}
	if len(seen) != 32 {
		t.Errorf("only %d of 32 positions hit in 1000 draws", len(seen))
	}
}

func TestRandomMultiFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		faulty, ps := RandomMultiFlip(rng, 0x12345678, 32, 3)
		if len(ps) != 3 {
			t.Fatal("want 3 positions")
		}
		if faulty != FlipMany(0x12345678, ps...) {
			t.Fatal("faulty inconsistent with positions")
		}
		// Exactly 3 bits differ.
		diff := faulty ^ 0x12345678
		n := 0
		for ; diff != 0; diff &= diff - 1 {
			n++
		}
		if n != 3 {
			t.Fatalf("flipped %d bits, want 3", n)
		}
	}
}
