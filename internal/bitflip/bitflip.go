// Package bitflip implements the fault models of the paper's fault
// injection campaign (§4.1): single-bit flips at chosen positions via
// XOR masks, plus the multi-bit and field-targeted extensions listed
// as future work. All functions operate on right-aligned bit patterns
// of a given width, the representation shared by every numfmt codec.
package bitflip

import (
	"fmt"
	"math/rand"
)

// Mask returns the XOR mask with a single one at bit position pos
// (0 = LSB), as built by the paper's trial setup.
func Mask(pos int) uint64 {
	if pos < 0 || pos > 63 {
		panic(fmt.Sprintf("bitflip: position %d out of range", pos))
	}
	return uint64(1) << uint(pos)
}

// Flip returns bits with the bit at pos inverted.
func Flip(bits uint64, pos int) uint64 { return bits ^ Mask(pos) }

// FlipMany returns bits with every listed position inverted. Positions
// may repeat; each occurrence toggles again (XOR semantics).
func FlipMany(bits uint64, positions ...int) uint64 {
	for _, p := range positions {
		bits ^= Mask(p)
	}
	return bits
}

// MultiMask returns the XOR mask covering all listed positions.
func MultiMask(positions ...int) uint64 {
	var m uint64
	for _, p := range positions {
		m ^= Mask(p)
	}
	return m
}

// RandomPositions draws k distinct bit positions in [0, width) from
// rng, in ascending order. It panics if k > width.
func RandomPositions(rng *rand.Rand, width, k int) []int {
	if k > width {
		panic(fmt.Sprintf("bitflip: cannot pick %d distinct positions from %d bits", k, width))
	}
	// Partial Fisher-Yates over the position universe.
	perm := rng.Perm(width)
	out := perm[:k]
	// Ascending order keeps trial logs canonical.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// RandomFlip flips one uniformly random bit and reports its position.
func RandomFlip(rng *rand.Rand, bits uint64, width int) (faulty uint64, pos int) {
	pos = rng.Intn(width)
	return Flip(bits, pos), pos
}

// RandomMultiFlip flips k distinct uniformly random bits.
func RandomMultiFlip(rng *rand.Rand, bits uint64, width, k int) (faulty uint64, positions []int) {
	positions = RandomPositions(rng, width, k)
	return FlipMany(bits, positions...), positions
}
