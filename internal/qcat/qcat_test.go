package qcat

import (
	"math"
	"testing"
)

func TestCompareBasic(t *testing.T) {
	orig := []float64{1, 2, 3, 4}
	faulty := []float64{1, 2, 3.3, 4}
	m := Compare(orig, faulty)
	if m.N != 4 || m.SpecialValues != 0 {
		t.Errorf("N/specials: %+v", m)
	}
	if math.Abs(m.MaxAbsErr-0.3) > 1e-12 {
		t.Errorf("MaxAbsErr %v", m.MaxAbsErr)
	}
	if math.Abs(m.MaxRelErr-0.1) > 1e-12 {
		t.Errorf("MaxRelErr %v", m.MaxRelErr)
	}
	wantMSE := 0.09 / 4
	if math.Abs(m.MSE-wantMSE) > 1e-12 {
		t.Errorf("MSE %v want %v", m.MSE, wantMSE)
	}
	if math.Abs(m.RMSE-math.Sqrt(wantMSE)) > 1e-12 {
		t.Errorf("RMSE %v", m.RMSE)
	}
	if math.Abs(m.L2Norm-0.3) > 1e-12 {
		t.Errorf("L2 %v", m.L2Norm)
	}
	// Value range of orig is 3; range-relative metrics follow.
	if math.Abs(m.MaxValRangeRelErr-0.1) > 1e-12 {
		t.Errorf("MaxValRangeRelErr %v", m.MaxValRangeRelErr)
	}
	if math.Abs(m.NRMSE-math.Sqrt(wantMSE)/3) > 1e-12 {
		t.Errorf("NRMSE %v", m.NRMSE)
	}
	if math.Abs(m.PSNR-(-20*math.Log10(m.NRMSE))) > 1e-12 {
		t.Errorf("PSNR %v", m.PSNR)
	}
	if math.Abs(m.MRED-0.1/4) > 1e-12 {
		t.Errorf("MRED %v", m.MRED)
	}
}

func TestCompareIdentical(t *testing.T) {
	a := []float64{5, -3, 0}
	m := Compare(a, []float64{5, -3, 0})
	if m.MaxAbsErr != 0 || m.MaxRelErr != 0 || m.MSE != 0 || m.MRED != 0 {
		t.Errorf("identical arrays should have zero error: %+v", m)
	}
	if !math.IsInf(m.PSNR, 1) {
		t.Errorf("PSNR of identical arrays should be +Inf, got %v", m.PSNR)
	}
}

func TestCompareSpecials(t *testing.T) {
	orig := []float64{1, 2, 3}
	faulty := []float64{1, math.NaN(), 3}
	m := Compare(orig, faulty)
	if m.SpecialValues != 1 {
		t.Errorf("specials: %d", m.SpecialValues)
	}
	if !math.IsInf(m.MaxAbsErr, 1) || !math.IsInf(m.MaxRelErr, 1) {
		t.Error("special flip should register infinite max errors")
	}
	// Mean metrics exclude the special element.
	if m.MSE != 0 || m.MRED != 0 {
		t.Errorf("mean metrics should skip specials: %+v", m)
	}
	faulty = []float64{1, math.Inf(1), 3}
	if Compare(orig, faulty).SpecialValues != 1 {
		t.Error("Inf should count as special")
	}
}

func TestCompareZeroOrig(t *testing.T) {
	// Relative error against a zero original is +Inf if the faulty
	// value moved, and ignored otherwise.
	m := Compare([]float64{0, 1}, []float64{0.5, 1})
	if !math.IsInf(m.MaxRelErr, 1) {
		t.Error("flip of a zero should be infinite relative error")
	}
	m = Compare([]float64{0, 1}, []float64{0, 1})
	if m.MaxRelErr != 0 {
		t.Error("unchanged zero should not contribute relative error")
	}
}

func TestCompareEmptyAndMismatch(t *testing.T) {
	m := Compare(nil, nil)
	if m.N != 0 {
		t.Error("empty compare")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Compare([]float64{1}, []float64{1, 2})
}

func TestCompareConstantRange(t *testing.T) {
	// Zero value range: range-relative metrics are undefined (NaN).
	m := Compare([]float64{2, 2}, []float64{2, 2.5})
	if !math.IsNaN(m.NRMSE) || !math.IsNaN(m.PSNR) || !math.IsNaN(m.MaxValRangeRelErr) {
		t.Errorf("zero-range metrics should be NaN: %+v", m)
	}
}

func TestPoint(t *testing.T) {
	p := Point(4, 5)
	if p.AbsErr != 1 || p.RelErr != 0.25 || p.Catastrophic {
		t.Errorf("point: %+v", p)
	}
	p = Point(-2, -2)
	if p.AbsErr != 0 || p.RelErr != 0 {
		t.Errorf("identical point: %+v", p)
	}
	p = Point(3, math.NaN())
	if !p.Catastrophic || !math.IsInf(p.AbsErr, 1) || !math.IsInf(p.RelErr, 1) {
		t.Errorf("NaN point: %+v", p)
	}
	p = Point(3, math.Inf(-1))
	if !p.Catastrophic {
		t.Errorf("Inf point: %+v", p)
	}
	p = Point(0, 1)
	if !p.Catastrophic || !math.IsInf(p.RelErr, 1) || p.AbsErr != 1 {
		t.Errorf("zero-orig point: %+v", p)
	}
	p = Point(0, 0)
	if p.Catastrophic || p.RelErr != 0 {
		t.Errorf("zero-zero point: %+v", p)
	}
	// Sign flip: |orig - (-orig)| = 2|orig| (paper §3.1).
	p = Point(186.25, -186.25)
	if p.AbsErr != 372.5 || p.RelErr != 2 {
		t.Errorf("sign-flip point: %+v", p)
	}
}
