// Package qcat re-implements the error metrics of the Quick
// Compression Analysis Toolkit (QCAT 1.3) that the paper uses to
// quantify the damage of each injected bit flip (§4.2): maximum
// absolute error, maximum relative error, mean squared error, RMSE,
// NRMSE, PSNR, L2-norm error, and the mean relative error distance
// (MRED) metric of Alouani et al. used by the prior posit study.
package qcat

import "math"

// Metrics compares an original and a faulty array element-wise.
type Metrics struct {
	N int // elements compared

	// MaxAbsErr is max |orig − faulty|.
	MaxAbsErr float64
	// MaxRelErr is max |orig − faulty| / |orig| over elements with
	// orig != 0 (QCAT's pointwise relative error).
	MaxRelErr float64
	// MaxValRangeRelErr is max |orig − faulty| / (max(orig) − min(orig)),
	// QCAT's value-range-relative error.
	MaxValRangeRelErr float64
	// MSE is the mean squared error; RMSE its square root.
	MSE  float64
	RMSE float64 // square root of MSE
	// NRMSE is RMSE / (max(orig) − min(orig)).
	NRMSE float64
	// PSNR in dB, from NRMSE: −20·log10(NRMSE).
	PSNR float64
	// L2Norm is sqrt(Σ (orig−faulty)²) — the norm error QCAT reports.
	L2Norm float64
	// MRED is mean(|orig − faulty| / |orig|) over nonzero orig
	// (the metric of the Alouani et al. posit study).
	MRED float64
	// SpecialValues counts faulty elements that decoded to NaN or ±Inf
	// (catastrophic flips: IEEE Inf/NaN or posit NaR).
	SpecialValues int
}

// Compare computes all metrics between orig and faulty, which must
// have the same length. Elements whose faulty value is NaN/Inf are
// tallied in SpecialValues and treated as infinite error in the max
// metrics but excluded from the mean metrics (matching how the paper
// logs them separately rather than letting one NaN poison the MSE).
func Compare(orig, faulty []float64) Metrics {
	if len(orig) != len(faulty) {
		panic("qcat: length mismatch")
	}
	m := Metrics{N: len(orig)}
	if len(orig) == 0 {
		return m
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sumSq, sumRel float64
	var nRel, nSq int
	for i := range orig {
		o, f := orig[i], faulty[i]
		if !math.IsNaN(o) && !math.IsInf(o, 0) {
			if o < lo {
				lo = o
			}
			if o > hi {
				hi = o
			}
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			m.SpecialValues++
			m.MaxAbsErr = math.Inf(1)
			m.MaxRelErr = math.Inf(1)
			continue
		}
		d := math.Abs(o - f)
		if d > m.MaxAbsErr {
			m.MaxAbsErr = d
		}
		sumSq += d * d
		nSq++
		if o != 0 {
			rel := d / math.Abs(o)
			if rel > m.MaxRelErr {
				m.MaxRelErr = rel
			}
			sumRel += rel
			nRel++
		} else if d > 0 {
			m.MaxRelErr = math.Inf(1)
		}
	}
	if nSq > 0 {
		m.MSE = sumSq / float64(nSq)
		m.RMSE = math.Sqrt(m.MSE)
		m.L2Norm = math.Sqrt(sumSq)
	}
	if nRel > 0 {
		m.MRED = sumRel / float64(nRel)
	}
	valRange := hi - lo
	if valRange > 0 && !math.IsInf(m.MaxAbsErr, 0) {
		m.MaxValRangeRelErr = m.MaxAbsErr / valRange
		m.NRMSE = m.RMSE / valRange
		if m.NRMSE > 0 {
			m.PSNR = -20 * math.Log10(m.NRMSE)
		} else {
			m.PSNR = math.Inf(1)
		}
	} else {
		m.MaxValRangeRelErr = math.NaN()
		m.NRMSE = math.NaN()
		m.PSNR = math.NaN()
	}
	return m
}

// PointErr quantifies a single-element substitution — the fast path
// for the campaign, where exactly one element differs. orig is the
// untouched element value, faulty its corrupted decoding.
type PointErr struct {
	AbsErr float64 // |orig − faulty|
	RelErr float64 // AbsErr / |orig|
	// Catastrophic marks a faulty value of NaN/±Inf (or an original of
	// zero corrupted to nonzero, where relative error is undefined and
	// reported as +Inf).
	Catastrophic bool
}

// Point computes the pointwise error of one corrupted element.
func Point(orig, faulty float64) PointErr {
	if math.IsNaN(faulty) || math.IsInf(faulty, 0) {
		return PointErr{AbsErr: math.Inf(1), RelErr: math.Inf(1), Catastrophic: true}
	}
	d := math.Abs(orig - faulty)
	p := PointErr{AbsErr: d}
	switch {
	case orig != 0:
		p.RelErr = d / math.Abs(orig)
	case d == 0:
		p.RelErr = 0
	default:
		p.RelErr = math.Inf(1)
		p.Catastrophic = true
	}
	return p
}
