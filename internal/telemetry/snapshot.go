package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"positres/internal/artifact"
)

// SnapshotSchema versions the JSON layout written by WriteSnapshot
// and served through expvar. Bump it on any breaking field change so
// downstream trajectory tooling can dispatch on it.
const SnapshotSchema = "positres-telemetry/v1"

// Snapshot is the point-in-time JSON view of a Metrics set. Raw
// counters are exported verbatim; the derived rates (injections/sec,
// worker utilization) are computed at snapshot time from the metrics
// clock so every consumer sees the same arithmetic. docs/PERF.md is
// the field reference.
type Snapshot struct {
	// Schema is always SnapshotSchema ("positres-telemetry/v1"), even
	// from a nil Metrics.
	Schema string `json:"schema"`
	// ElapsedNS is nanoseconds since the metrics clock started (New or
	// the first SetWorkers).
	ElapsedNS int64 `json:"elapsed_ns"`

	// Injections counts fault-injection trials executed.
	Injections int64 `json:"injections"`
	// BitsDone counts completed bit positions.
	BitsDone int64 `json:"bits_done"`

	// ShardsDone counts shards computed and journaled this process.
	ShardsDone int64 `json:"shards_done"`
	// ShardsFailed counts shards that exhausted their retry budget.
	ShardsFailed int64 `json:"shards_failed"`
	// ShardsResumed counts shards loaded from a prior run's journal.
	ShardsResumed int64 `json:"shards_resumed"`
	// Retries counts shard attempts beyond the first.
	Retries int64 `json:"retries"`
	// Backoffs counts backoff waits entered.
	Backoffs int64 `json:"backoffs"`
	// BackoffNS is the accumulated requested backoff time, nanoseconds.
	BackoffNS int64 `json:"backoff_ns"`

	// Workers is the shard worker pool size (0 until SetWorkers).
	Workers int64 `json:"workers"`
	// WorkerBusyNS is the total wall time workers spent executing
	// shards, nanoseconds.
	WorkerBusyNS int64 `json:"worker_busy_ns"`
	// WorkerUtilization is the derived fraction
	// busy / (workers × elapsed), 0 when workers or elapsed is unknown.
	WorkerUtilization float64 `json:"worker_utilization"`

	// InjectionsPerSec is Injections divided by elapsed wall time.
	InjectionsPerSec float64 `json:"injections_per_sec"`

	// ShardLatency is the per-shard wall-clock histogram.
	ShardLatency HistogramSnapshot `json:"shard_latency"`
}

// Snapshot captures the current metric values. Nil-safe: a nil
// receiver yields a zero snapshot carrying only the schema tag.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Schema: SnapshotSchema}
	if m == nil {
		return s
	}
	if start := m.startNS.Load(); start > 0 {
		s.ElapsedNS = time.Now().UnixNano() - start
	}
	s.Injections = m.Injections.Load()
	s.BitsDone = m.BitsDone.Load()
	s.ShardsDone = m.ShardsDone.Load()
	s.ShardsFailed = m.ShardsFailed.Load()
	s.ShardsResumed = m.ShardsResumed.Load()
	s.Retries = m.Retries.Load()
	s.Backoffs = m.Backoffs.Load()
	s.BackoffNS = m.BackoffNS.Load()
	s.Workers = m.workers.Load()
	s.WorkerBusyNS = m.WorkerBusyNS.Load()
	s.ShardLatency = m.ShardLatency.Snapshot()
	if s.ElapsedNS > 0 {
		s.InjectionsPerSec = float64(s.Injections) / (float64(s.ElapsedNS) / float64(time.Second))
		if s.Workers > 0 {
			s.WorkerUtilization = float64(s.WorkerBusyNS) / (float64(s.Workers) * float64(s.ElapsedNS))
		}
	}
	return s
}

// WriteSnapshot encodes the current snapshot as indented JSON.
func (m *Metrics) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// ReadSnapshot parses a snapshot written by WriteSnapshot (or scraped
// from the expvar endpoint), verifying the schema tag so trajectory
// tooling never silently charts a document from a different layout
// generation.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	if err := artifact.CheckSchema(s.Schema, SnapshotSchema); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return &s, nil
}
