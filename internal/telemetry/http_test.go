package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHTTPMetricsObserve(t *testing.T) {
	h := NewHTTP()
	h.Observe("POST /v1/inject", 200, 5*time.Microsecond)
	h.Observe("POST /v1/inject", 400, 9*time.Microsecond)
	h.Observe("GET /metrics", 200, time.Millisecond)

	s := h.Snapshot()
	inj, ok := s.Endpoints["POST /v1/inject"]
	if !ok {
		t.Fatalf("inject endpoint missing from snapshot: %+v", s)
	}
	if inj.Requests != 2 || inj.Errors != 1 {
		t.Fatalf("inject: requests=%d errors=%d, want 2/1", inj.Requests, inj.Errors)
	}
	if inj.Latency.Count != 2 {
		t.Fatalf("inject latency count = %d, want 2", inj.Latency.Count)
	}
	if got := s.Endpoints["GET /metrics"].Requests; got != 1 {
		t.Fatalf("metrics endpoint requests = %d, want 1", got)
	}
	names := h.EndpointNames()
	if len(names) != 2 || names[0] != "GET /metrics" || names[1] != "POST /v1/inject" {
		t.Fatalf("EndpointNames = %v", names)
	}
}

func TestHTTPMetricsNilSafe(t *testing.T) {
	var h *HTTPMetrics
	h.Observe("GET /x", 200, time.Microsecond) // must not panic
	if s := h.Snapshot(); s.Endpoints == nil || len(s.Endpoints) != 0 {
		t.Fatalf("nil snapshot = %+v, want empty non-nil map", s)
	}
	if names := h.EndpointNames(); names != nil {
		t.Fatalf("nil EndpointNames = %v, want nil", names)
	}
}

// TestHTTPMetricsRace hammers Observe and Snapshot concurrently; run
// under -race this pins the lock discipline of the lazy endpoint map.
func TestHTTPMetricsRace(t *testing.T) {
	h := NewHTTP()
	endpoints := []string{"POST /v1/inject", "POST /v1/campaigns", "GET /metrics"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(endpoints[(w+i)%len(endpoints)], 200+(i%2)*300, time.Duration(i)*time.Microsecond)
				if i%50 == 0 {
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, e := range h.Snapshot().Endpoints {
		total += e.Requests
	}
	if total != 8*500 {
		t.Fatalf("total requests = %d, want %d", total, 8*500)
	}
}
