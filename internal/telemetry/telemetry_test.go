package telemetry

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCountersConcurrent exercises every counter and the histogram
// from 1, 2 and 8 workers — the same pool sizes the campaign tests
// use — and asserts exact totals. `make race` runs this under the
// race detector, which is the real check: the counters must be
// lock-cheap AND clean.
func TestCountersConcurrent(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m := New()
			m.SetWorkers(workers)
			const perWorker = 1000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						m.AddInjections(3)
						m.AddBitDone()
						m.ObserveShard("done", time.Duration(i+1)*time.Microsecond, 1)
						m.ObserveShard("failed", 0, 3)
						m.ObserveShard("resumed", 0, 1)
						m.ObserveBackoff(time.Millisecond)
						m.AddWorkerBusy(time.Microsecond)
					}
				}()
			}
			wg.Wait()
			n := int64(workers * perWorker)
			s := m.Snapshot()
			if s.Injections != 3*n {
				t.Errorf("Injections = %d, want %d", s.Injections, 3*n)
			}
			if s.BitsDone != n {
				t.Errorf("BitsDone = %d, want %d", s.BitsDone, n)
			}
			if s.ShardsDone != n || s.ShardsFailed != n || s.ShardsResumed != n {
				t.Errorf("shards done/failed/resumed = %d/%d/%d, want %d each",
					s.ShardsDone, s.ShardsFailed, s.ShardsResumed, n)
			}
			if s.Retries != 2*n {
				t.Errorf("Retries = %d, want %d", s.Retries, 2*n)
			}
			if s.Backoffs != n || s.BackoffNS != n*int64(time.Millisecond) {
				t.Errorf("Backoffs = %d (%d ns), want %d (%d ns)",
					s.Backoffs, s.BackoffNS, n, n*int64(time.Millisecond))
			}
			if s.WorkerBusyNS != n*int64(time.Microsecond) {
				t.Errorf("WorkerBusyNS = %d, want %d", s.WorkerBusyNS, n*int64(time.Microsecond))
			}
			h := s.ShardLatency
			if h.Count != n {
				t.Errorf("latency count = %d, want %d", h.Count, n)
			}
			if h.MinNS != int64(time.Microsecond) {
				t.Errorf("latency min = %d, want %d", h.MinNS, int64(time.Microsecond))
			}
			if h.MaxNS != int64(perWorker*time.Microsecond) {
				t.Errorf("latency max = %d, want %d", h.MaxNS, int64(perWorker*time.Microsecond))
			}
			var bucketTotal int64
			for _, b := range h.Buckets {
				bucketTotal += b.Count
			}
			if bucketTotal != n {
				t.Errorf("bucket total = %d, want %d", bucketTotal, n)
			}
		})
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 9},
		{time.Second, 19},
		{time.Hour, 31},
		{100 * time.Hour, 32},
	}
	for _, c := range cases {
		if got := bucketOf(int64(c.d)); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Negative durations clamp to bucket 0 instead of panicking.
	var h Histogram
	h.Observe(-time.Second)
	if s := h.Snapshot(); s.Count != 1 || s.MinNS != 0 {
		t.Errorf("negative observation: count=%d min=%d, want 1, 0", s.Count, s.MinNS)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var m *Metrics
	m.AddInjections(1)
	m.AddBitDone()
	m.SetWorkers(4)
	m.ObserveShard("done", time.Second, 2)
	m.ObserveBackoff(time.Second)
	m.AddWorkerBusy(time.Second)
	s := m.Snapshot()
	if s.Schema != SnapshotSchema {
		t.Errorf("nil snapshot schema = %q, want %q", s.Schema, SnapshotSchema)
	}
	if s.Injections != 0 || s.ShardsDone != 0 {
		t.Error("nil metrics accumulated values")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := New()
	m.SetWorkers(2)
	m.AddInjections(42)
	m.ObserveShard("done", 5*time.Millisecond, 2)
	var buf bytes.Buffer
	if err := m.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Schema != SnapshotSchema {
		t.Errorf("schema = %q, want %q", s.Schema, SnapshotSchema)
	}
	if s.Injections != 42 || s.ShardsDone != 1 || s.Retries != 1 {
		t.Errorf("round-tripped snapshot lost values: %+v", s)
	}
	if s.ElapsedNS <= 0 {
		t.Error("elapsed not populated")
	}
}

func TestPublishIdempotent(t *testing.T) {
	m := New()
	Publish("telemetry_test_metrics", m)
	Publish("telemetry_test_metrics", m) // must not panic
	v := expvar.Get("telemetry_test_metrics")
	if v == nil {
		t.Fatal("metrics not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar value is not a Snapshot: %v", err)
	}
	if s.Schema != SnapshotSchema {
		t.Errorf("expvar schema = %q, want %q", s.Schema, SnapshotSchema)
	}
}

// TestHistogramQuantile: quantile estimates land on the upper edge of
// the band holding the target rank, clamped to observed min/max.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations in the [1ms, 2ms) band, 10 slow in [1s, 2s).
	for i := 0; i < 90; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500 * time.Millisecond)
	}
	s := h.Snapshot()
	// 1500µs lands in the [1024µs, 2048µs) band; the estimate is its
	// upper edge.
	if got := s.Quantile(0.5); got != int64(2048*time.Microsecond) {
		t.Errorf("p50 = %d ns, want 2048µs band edge", got)
	}
	// p95 falls in the slow band; the edge is clamped to MaxNS.
	if got := s.Quantile(0.95); got != s.MaxNS {
		t.Errorf("p95 = %d ns, want MaxNS %d", got, s.MaxNS)
	}
	if got := s.Quantile(1.0); got != s.MaxNS {
		t.Errorf("p100 = %d ns, want MaxNS %d", got, s.MaxNS)
	}
	if got := (HistogramSnapshot{}).Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	// A single sub-microsecond observation clamps up to MinNS... and
	// down to MaxNS, both equal to the observation.
	var one Histogram
	one.Observe(400 * time.Nanosecond)
	if got := one.Snapshot().Quantile(0.99); got != 400 {
		t.Errorf("single-observation quantile = %d ns, want 400", got)
	}
}
