package telemetry

// Cluster-layer metrics for positserve's coordinator: per-worker shard
// dispatch tallies and heartbeat latency histograms, plus the global
// reassignment count. Workers are registered lazily on first
// observation, mirroring HTTPMetrics, so the dispatcher does not need
// to pre-declare its worker set (workers can self-register at any
// time).

import (
	"sort"
	"sync"
	"time"
)

// WorkerMetrics is the metric set of one campaign worker, keyed by its
// base URL. All fields are safe for concurrent use; instances are
// always handled by pointer and must not be copied after first use.
type WorkerMetrics struct {
	// ShardsAssigned counts shard dispatches to this worker, including
	// ones that later failed.
	ShardsAssigned Counter
	// ShardsCompleted counts dispatches that returned verified trials.
	ShardsCompleted Counter
	// ShardsFailed counts dispatches that errored (connection refused,
	// non-200, malformed CSV) — each one sends the shard back through
	// the runner's retry loop for reassignment.
	ShardsFailed Counter
	// HeartbeatFailures counts failed health probes.
	HeartbeatFailures Counter
	// Heartbeat is the round-trip latency of successful health probes,
	// in the shared log₂ histogram (bucket bounds in microseconds).
	Heartbeat Histogram
}

// ClusterMetrics tracks coordinator-side distribution metrics. The
// zero value is not usable; construct with NewCluster. A nil
// *ClusterMetrics is a valid no-op receiver for every method,
// mirroring the nil-safety of *Metrics. All methods are safe for
// concurrent use.
type ClusterMetrics struct {
	// Reassignments counts shards re-dispatched to a different worker
	// after a failure — the headline "how often did the cluster heal"
	// number.
	Reassignments Counter

	// WireFrames counts shard responses that arrived as binary trial
	// frames (the packed encoding of internal/wire, docs/WIRE.md).
	WireFrames Counter
	// WireBytes totals the body bytes of those binary responses —
	// with WireFrames, the wire-efficiency numerator on /metrics.
	WireBytes Counter
	// WireFallbacks counts shard responses that fell back to CSV: the
	// worker did not (or could not) honor the binary Accept offer. A
	// nonzero value in a fleet that should be all-binary is the
	// version-skew tripwire docs/WIRE.md's compatibility policy leans
	// on.
	WireFallbacks Counter

	mu      sync.RWMutex
	workers map[string]*WorkerMetrics
}

// NewCluster returns an empty ClusterMetrics ready for concurrent use.
func NewCluster() *ClusterMetrics {
	return &ClusterMetrics{workers: map[string]*WorkerMetrics{}}
}

// Worker returns the metric set registered under url, creating it on
// first use. Nil-safe: a nil receiver returns nil, and every
// WorkerMetrics method on a nil pointer would panic — callers always
// guard with the ClusterMetrics-level nil checks below instead.
func (c *ClusterMetrics) Worker(url string) *WorkerMetrics {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	w := c.workers[url]
	c.mu.RUnlock()
	if w != nil {
		return w
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w = c.workers[url]; w == nil {
		w = &WorkerMetrics{}
		c.workers[url] = w
	}
	return w
}

// ObserveDispatch records one shard dispatch to url and its outcome
// (nil-safe).
func (c *ClusterMetrics) ObserveDispatch(url string, ok bool) {
	if c == nil {
		return
	}
	w := c.Worker(url)
	w.ShardsAssigned.Add(1)
	if ok {
		w.ShardsCompleted.Add(1)
	} else {
		w.ShardsFailed.Add(1)
	}
}

// ObserveHeartbeat records one health probe of url: its success and,
// when successful, its round-trip time (nil-safe).
func (c *ClusterMetrics) ObserveHeartbeat(url string, ok bool, d time.Duration) {
	if c == nil {
		return
	}
	w := c.Worker(url)
	if ok {
		w.Heartbeat.Observe(d)
	} else {
		w.HeartbeatFailures.Add(1)
	}
}

// AddReassignment records one shard re-dispatched to a different
// worker after a failure (nil-safe).
func (c *ClusterMetrics) AddReassignment() {
	if c == nil {
		return
	}
	c.Reassignments.Add(1)
}

// ObserveWire records how one successful shard response travelled:
// a binary frame of the given body size, or a CSV fallback (nil-safe).
// Failed dispatches are not observed — the wire counters describe
// data that actually reached the merge path.
func (c *ClusterMetrics) ObserveWire(binary bool, bodyBytes int64) {
	if c == nil {
		return
	}
	if binary {
		c.WireFrames.Add(1)
		c.WireBytes.Add(bodyBytes)
	} else {
		c.WireFallbacks.Add(1)
	}
}

// WorkerSnapshot is the JSON view of one worker's metrics.
type WorkerSnapshot struct {
	// ShardsAssigned counts shard dispatches, including failed ones.
	ShardsAssigned int64 `json:"shards_assigned"`
	// ShardsCompleted counts dispatches that returned verified trials.
	ShardsCompleted int64 `json:"shards_completed"`
	// ShardsFailed counts dispatches that errored.
	ShardsFailed int64 `json:"shards_failed"`
	// HeartbeatFailures counts failed health probes.
	HeartbeatFailures int64 `json:"heartbeat_failures"`
	// Heartbeat is the successful-probe round-trip histogram.
	Heartbeat HistogramSnapshot `json:"heartbeat"`
}

// ClusterSnapshot is the JSON view of a ClusterMetrics set.
type ClusterSnapshot struct {
	// Reassignments counts shards re-dispatched after worker failures.
	Reassignments int64 `json:"reassignments"`
	// WireFrames counts binary shard responses merged.
	WireFrames int64 `json:"wire_frames"`
	// WireBytes totals the body bytes of binary shard responses.
	WireBytes int64 `json:"wire_bytes"`
	// WireFallbacks counts shard responses that fell back to CSV.
	WireFallbacks int64 `json:"wire_csv_fallbacks"`
	// Workers is keyed by worker base URL; it is empty but non-nil
	// when nothing has been observed.
	Workers map[string]WorkerSnapshot `json:"workers"`
}

// Snapshot captures the current per-worker values. Nil-safe: a nil
// receiver yields an empty (non-nil) worker map. Cross-field skew is
// bounded by in-flight dispatches, as with the other snapshot types.
func (c *ClusterMetrics) Snapshot() ClusterSnapshot {
	s := ClusterSnapshot{Workers: map[string]WorkerSnapshot{}}
	if c == nil {
		return s
	}
	s.Reassignments = c.Reassignments.Load()
	s.WireFrames = c.WireFrames.Load()
	s.WireBytes = c.WireBytes.Load()
	s.WireFallbacks = c.WireFallbacks.Load()
	c.mu.RLock()
	defer c.mu.RUnlock()
	for url, w := range c.workers {
		s.Workers[url] = WorkerSnapshot{
			ShardsAssigned:    w.ShardsAssigned.Load(),
			ShardsCompleted:   w.ShardsCompleted.Load(),
			ShardsFailed:      w.ShardsFailed.Load(),
			HeartbeatFailures: w.HeartbeatFailures.Load(),
			Heartbeat:         w.Heartbeat.Snapshot(),
		}
	}
	return s
}

// WorkerURLs returns the registered worker URLs, sorted.
func (c *ClusterMetrics) WorkerURLs() []string {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	urls := make([]string, 0, len(c.workers))
	for u := range c.workers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}
