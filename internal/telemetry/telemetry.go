// Package telemetry provides the lock-cheap runtime metrics of the
// campaign pipeline: injection and shard counters, a log₂ latency
// histogram, retry/backoff tallies and worker-utilization accounting.
// internal/core and internal/runner increment these on their hot
// paths (a handful of atomic adds per bit position or shard — never
// per trial), cmd/positcampaign exposes them through expvar, an
// opt-in pprof HTTP endpoint, and a schema-versioned JSON snapshot,
// and cmd/positbench records them into the BENCH_*.json perf
// trajectory. All methods are safe for concurrent use and nil-safe on
// *Metrics, so instrumented code paths need no "is telemetry on"
// branches beyond carrying the pointer.
package telemetry

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// histBuckets is the number of log₂ duration buckets: bucket i counts
// observations in [2^i, 2^(i+1)) microseconds, with bucket 0 also
// absorbing sub-microsecond samples and the last bucket absorbing
// everything from ~2.3 hours up.
const histBuckets = 33

// Histogram is a fixed-bucket log₂ latency histogram. Observation is
// one atomic add plus two relaxed min/max updates — no locks, no
// allocation — so it can sit on the shard completion path.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
	// minNS1 stores min+1 so the zero value means "no observation
	// yet" without a constructor (the histogram must be usable as an
	// embedded zero value).
	minNS1 atomic.Int64
	maxNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.minNS1.Load()
		if cur != 0 && cur <= ns+1 {
			break
		}
		if h.minNS1.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.maxNS.Load()
		if cur >= ns {
			break
		}
		if h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// bucketOf maps nanoseconds to a log₂-of-microseconds bucket index.
func bucketOf(ns int64) int {
	us := ns / int64(time.Microsecond)
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistogramSnapshot is the JSON-friendly view of a Histogram. Bounds
// are inclusive-lower microsecond edges of the non-empty buckets.
type HistogramSnapshot struct {
	// Count is the number of observations; every other field is zero
	// while Count is zero.
	Count int64 `json:"count"`
	// SumNS is the sum of all observed durations, nanoseconds.
	SumNS int64 `json:"sum_ns"`
	// MinNS is the smallest observation, nanoseconds.
	MinNS int64 `json:"min_ns"`
	// MaxNS is the largest observation, nanoseconds.
	MaxNS int64 `json:"max_ns"`
	// MeanNS is the integer quotient SumNS/Count, nanoseconds.
	MeanNS int64 `json:"mean_ns"`
	// Buckets lists only the non-empty log₂ bands, in ascending order.
	Buckets []HistogramBand `json:"buckets,omitempty"`
}

// HistogramBand is one non-empty histogram bucket.
type HistogramBand struct {
	LoUS  int64 `json:"lo_us"` // inclusive lower bound, microseconds
	Count int64 `json:"count"` // observations that landed in this band
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// durations in nanoseconds from the log₂ bands: it returns the upper
// edge of the band holding the q-th observation, clamped to the
// observed [MinNS, MaxNS] range so the estimate never exceeds a real
// observation. A snapshot with no observations returns 0. The
// coarseness is the band width (a factor of 2), which is exactly the
// resolution positload's p95/p99 error budgets are asserted at.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			// Upper edge of band [lo, 2*lo) µs; band 0 is [0, 2) µs.
			hi := int64(2) * int64(time.Microsecond)
			if b.LoUS > 0 {
				hi = 2 * b.LoUS * int64(time.Microsecond)
			}
			if hi > s.MaxNS {
				hi = s.MaxNS
			}
			if hi < s.MinNS {
				hi = s.MinNS
			}
			return hi
		}
	}
	return s.MaxNS
}

// Snapshot returns a consistent-enough view of the histogram: each
// field is read atomically; cross-field skew is bounded by in-flight
// observations and is irrelevant for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNS: h.sumNS.Load(),
		MaxNS: h.maxNS.Load(),
	}
	if min1 := h.minNS1.Load(); min1 > 0 {
		s.MinNS = min1 - 1
	}
	if s.Count > 0 {
		s.MeanNS = s.SumNS / s.Count
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = 1 << uint(i)
		}
		s.Buckets = append(s.Buckets, HistogramBand{LoUS: lo, Count: n})
	}
	return s
}

// Metrics is the campaign metric set. A nil *Metrics is a valid
// no-op receiver for every Add*/Observe* method, so instrumented
// packages thread the pointer unconditionally.
type Metrics struct {
	// Injections counts fault-injection trials executed (incremented
	// once per completed bit position with the trial batch size).
	Injections Counter
	// BitsDone counts completed bit positions.
	BitsDone Counter
	// ShardsDone counts shards computed and journaled this process.
	ShardsDone Counter
	// ShardsFailed counts shards that exhausted their retry budget.
	ShardsFailed Counter
	// ShardsResumed counts shards loaded from a prior run's journal.
	ShardsResumed Counter
	// Retries counts shard attempts beyond the first.
	Retries Counter
	// Backoffs counts backoff waits entered.
	Backoffs Counter
	// BackoffNS accumulates requested backoff duration, nanoseconds.
	BackoffNS Counter
	// WorkerBusyNS accumulates wall time workers spent executing
	// shards (utilization = busy / (workers × elapsed)).
	WorkerBusyNS Counter
	// ShardLatency is the per-shard wall-clock histogram.
	ShardLatency Histogram

	workers atomic.Int64
	startNS atomic.Int64
}

// New returns a Metrics with the rate clock started.
func New() *Metrics {
	m := &Metrics{}
	m.startNS.Store(time.Now().UnixNano())
	return m
}

// SetWorkers records the size of the shard worker pool so Snapshot
// can derive utilization.
func (m *Metrics) SetWorkers(n int) {
	if m == nil {
		return
	}
	m.workers.Store(int64(n))
}

// AddInjections records n completed trials (nil-safe).
func (m *Metrics) AddInjections(n int) {
	if m == nil {
		return
	}
	m.Injections.Add(int64(n))
}

// AddBitDone records one completed bit position (nil-safe).
func (m *Metrics) AddBitDone() {
	if m == nil {
		return
	}
	m.BitsDone.Add(1)
}

// ObserveShard records one finished shard attempt chain: its terminal
// state, total wall time and attempt count (nil-safe).
func (m *Metrics) ObserveShard(state string, d time.Duration, attempts int) {
	if m == nil {
		return
	}
	switch state {
	case "done":
		m.ShardsDone.Add(1)
		m.ShardLatency.Observe(d)
	case "failed":
		m.ShardsFailed.Add(1)
	case "resumed":
		m.ShardsResumed.Add(1)
	}
	if attempts > 1 {
		m.Retries.Add(int64(attempts - 1))
	}
}

// ObserveBackoff records one backoff wait of duration d (nil-safe).
func (m *Metrics) ObserveBackoff(d time.Duration) {
	if m == nil {
		return
	}
	m.Backoffs.Add(1)
	m.BackoffNS.Add(int64(d))
}

// AddWorkerBusy accumulates worker busy wall time (nil-safe).
func (m *Metrics) AddWorkerBusy(d time.Duration) {
	if m == nil {
		return
	}
	m.WorkerBusyNS.Add(int64(d))
}

// publishMu guards against double expvar registration (expvar panics
// on duplicate names).
var publishMu sync.Mutex

// Publish registers the metrics under name in the process-wide expvar
// registry (served at /debug/vars by any HTTP endpoint that imports
// expvar, e.g. positcampaign's -pprof listener). Publishing the same
// name twice replaces nothing and does not panic: the first
// registration wins and later calls are ignored, which keeps Publish
// safe to call from tests.
func Publish(name string, m *Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return m.Snapshot() }))
}
