package telemetry

// HTTP-layer metrics for cmd/positserve: per-endpoint request and
// error counters plus the same log₂ latency histogram the shard path
// uses. Endpoints are registered lazily on first observation, so the
// serving layer does not need to pre-declare its route table here.

import (
	"sort"
	"sync"
	"time"
)

// EndpointMetrics is the metric set of one HTTP endpoint. All fields
// are safe for concurrent use; the zero value is ready to use.
// Instances must not be copied after first use (the histogram and
// counters are atomics) — they are always handled by pointer.
type EndpointMetrics struct {
	// Requests counts every completed request, whatever its status.
	Requests Counter
	// Errors counts requests that finished with status >= 400
	// (client and server errors alike).
	Errors Counter
	// Latency is the wall-clock handler time, request start to the
	// last byte handed to the ResponseWriter, in the shared log₂
	// histogram (bucket bounds in microseconds).
	Latency Histogram
}

// HTTPMetrics tracks per-endpoint HTTP request metrics. The zero
// value is not usable; construct with NewHTTP. A nil *HTTPMetrics is
// a valid no-op receiver for Observe and Snapshot, mirroring the
// nil-safety of *Metrics. All methods are safe for concurrent use.
type HTTPMetrics struct {
	mu        sync.RWMutex
	endpoints map[string]*EndpointMetrics
}

// NewHTTP returns an empty HTTPMetrics ready for concurrent use.
func NewHTTP() *HTTPMetrics {
	return &HTTPMetrics{endpoints: map[string]*EndpointMetrics{}}
}

// Endpoint returns the metric set registered under name, creating it
// on first use. The returned pointer is stable for the lifetime of
// the HTTPMetrics and safe to retain.
func (h *HTTPMetrics) Endpoint(name string) *EndpointMetrics {
	h.mu.RLock()
	e := h.endpoints[name]
	h.mu.RUnlock()
	if e != nil {
		return e
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if e = h.endpoints[name]; e == nil {
		e = &EndpointMetrics{}
		h.endpoints[name] = e
	}
	return e
}

// Observe records one completed request against endpoint name: its
// response status code and wall-clock duration (nil-safe).
func (h *HTTPMetrics) Observe(name string, status int, d time.Duration) {
	if h == nil {
		return
	}
	e := h.Endpoint(name)
	e.Requests.Add(1)
	if status >= 400 {
		e.Errors.Add(1)
	}
	e.Latency.Observe(d)
}

// EndpointSnapshot is the JSON view of one endpoint's metrics.
type EndpointSnapshot struct {
	// Requests counts completed requests, whatever their status.
	Requests int64 `json:"requests"`
	// Errors counts the subset that finished with status >= 400.
	Errors int64 `json:"errors"`
	// Latency is the handler wall-clock histogram (log₂ µs bands).
	Latency HistogramSnapshot `json:"latency"`
}

// HTTPSnapshot is the JSON view of an HTTPMetrics set.
type HTTPSnapshot struct {
	// Endpoints is keyed by endpoint name ("METHOD /path"); it is
	// empty but non-nil when nothing has been observed. Map iteration
	// order is unspecified — EndpointNames is sorted for stable output.
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
}

// Snapshot captures the current per-endpoint values. Nil-safe: a nil
// receiver yields an empty (non-nil) endpoint map. Like
// Metrics.Snapshot, cross-field skew is bounded by in-flight requests.
func (h *HTTPMetrics) Snapshot() HTTPSnapshot {
	s := HTTPSnapshot{Endpoints: map[string]EndpointSnapshot{}}
	if h == nil {
		return s
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	for name, e := range h.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Requests: e.Requests.Load(),
			Errors:   e.Errors.Load(),
			Latency:  e.Latency.Snapshot(),
		}
	}
	return s
}

// EndpointNames returns the registered endpoint names, sorted.
func (h *HTTPMetrics) EndpointNames() []string {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.endpoints))
	for n := range h.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
