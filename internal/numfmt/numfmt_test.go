package numfmt

import (
	"math"
	"testing"

	"positres/internal/posit"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{
		"posit8": true, "posit16": true, "posit32": true, "posit64": true,
		"posit32es0": true, "posit32es1": true, "posit32es3": true,
		"ieee16": true, "bfloat16": true, "ieee32": true, "ieee64": true,
	}
	if len(names) != len(want) {
		t.Errorf("registry has %d codecs: %v", len(names), names)
	}
	for n := range want {
		c, err := Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", n, err)
		}
		if c.Name() != n {
			t.Errorf("codec %q reports name %q", n, c.Name())
		}
	}
	if _, err := Lookup("float128"); err == nil {
		t.Error("unknown codec should error")
	}
}

func TestPositCodec(t *testing.T) {
	c, _ := Lookup("posit32")
	if c.Width() != 32 {
		t.Error("width")
	}
	b := c.Encode(186.25)
	if got := c.Decode(b); math.Abs(got-186.25) > 1e-5 {
		t.Errorf("round trip: %v", got)
	}
	if c.FieldAt(b, 31) != "sign" || c.FieldAt(b, 30) != "regime" {
		t.Error("field names")
	}
	if c.FieldAt(b, 27) != "exponent" || c.FieldAt(b, 0) != "fraction" {
		t.Error("field names (exp/frac)")
	}
	if !c.IsSpecial(uint64(1) << 31) {
		t.Error("NaR should be special")
	}
	if c.IsSpecial(b) || c.IsSpecial(0) {
		t.Error("ordinary values should not be special")
	}
	rs, ok := c.(RegimeSizer)
	if !ok {
		t.Fatal("posit codec must implement RegimeSizer")
	}
	if k := rs.RegimeK(c.Encode(1)); k != 1 {
		t.Errorf("RegimeK(1) = %d", k)
	}
	if k := rs.RegimeK(c.Encode(186.25)); k != 2 {
		t.Errorf("RegimeK(186.25) = %d", k)
	}
}

func TestIEEECodec(t *testing.T) {
	c, _ := Lookup("ieee32")
	if c.Width() != 32 {
		t.Error("width")
	}
	b := c.Encode(186.25)
	if got := c.Decode(b); got != 186.25 {
		t.Errorf("round trip: %v", got)
	}
	if c.FieldAt(b, 31) != "sign" || c.FieldAt(b, 25) != "exponent" || c.FieldAt(b, 3) != "fraction" {
		t.Error("field names")
	}
	if !c.IsSpecial(c.Encode(math.Inf(1))) || !c.IsSpecial(c.Encode(math.NaN())) {
		t.Error("Inf/NaN should be special")
	}
	if c.IsSpecial(b) {
		t.Error("ordinary value special")
	}
	if _, ok := c.(RegimeSizer); ok {
		t.Error("IEEE codec must not claim a regime")
	}
}

func TestCustomPositCodec(t *testing.T) {
	c := NewPositCodec(Config{N: 20, ES: 1})
	if c.Name() != "posit20es1" || c.Width() != 20 {
		t.Errorf("custom codec: %s width %d", c.Name(), c.Width())
	}
	if got := c.Decode(c.Encode(3)); got != 3 {
		t.Errorf("custom round trip: %v", got)
	}
	std := NewPositCodec(posit.Std16)
	if std.Name() != "posit16" {
		t.Errorf("standard es elided: %s", std.Name())
	}
}

// TestCodecAgreement: the posit32 codec agrees with the posit package
// and the ieee32 codec with the native float32 path.
func TestCodecAgreement(t *testing.T) {
	pc, _ := Lookup("posit32")
	ic, _ := Lookup("ieee32")
	for _, x := range []float64{0, 1, -1, 186.25, 1e-20, -3.5e10, 0.0625} {
		if pc.Encode(x) != posit.EncodeFloat64(posit.Std32, x) {
			t.Errorf("posit codec disagreement at %g", x)
		}
		if uint32(ic.Encode(x)) != math.Float32bits(float32(x)) {
			t.Errorf("ieee codec disagreement at %g", x)
		}
	}
}
