// Package numfmt defines the number-format codec abstraction that the
// fault-injection campaign is generic over. A Codec maps float64
// values to N-bit patterns and back, and attributes each bit position
// to a named field — the two operations the paper performs on both
// IEEE-754 floats (via type punning) and posits (via SoftPosit).
package numfmt

import (
	"fmt"
	"sort"
	"strings"

	"positres/internal/ieee754"
	"positres/internal/posit"
)

// Codec converts between float64 values and fixed-width bit patterns.
// Implementations must be stateless and safe for concurrent use.
type Codec interface {
	// Name is the registry key, e.g. "posit32" or "ieee32".
	Name() string
	// Width is the pattern width in bits (<= 64).
	Width() int
	// Encode rounds x to the nearest representable pattern.
	Encode(x float64) uint64
	// Decode interprets a pattern; NaN for NaN/Inf/NaR patterns.
	Decode(bits uint64) float64
	// FieldAt names the field owning bit position pos (0 = LSB) in the
	// given pattern: "sign", "regime", "exponent" or "fraction". For
	// IEEE formats the answer is independent of the pattern.
	FieldAt(bits uint64, pos int) string
	// IsSpecial reports whether the pattern encodes NaN, ±Inf or NaR.
	IsSpecial(bits uint64) bool
}

// RegimeSizer is implemented by posit codecs: it exposes the regime
// run length k (paper eq. 1) used to bucket campaign results.
type RegimeSizer interface {
	RegimeK(bits uint64) int
}

// PositCodec adapts a posit configuration to the Codec interface.
type PositCodec struct {
	Cfg   Config // posit configuration (width, es) being adapted
	label string
}

// Config re-exports posit.Config so campaign code can construct custom
// (legacy-es) posit codecs without importing the posit package.
type Config = posit.Config

// NewPositCodec returns a codec for an arbitrary posit configuration.
func NewPositCodec(cfg Config) *PositCodec {
	label := fmt.Sprintf("posit%d", cfg.N)
	if cfg.ES != 2 {
		label = fmt.Sprintf("posit%des%d", cfg.N, cfg.ES)
	}
	return &PositCodec{Cfg: cfg, label: label}
}

// Name implements Codec.
func (c *PositCodec) Name() string { return c.label }

// Width implements Codec.
func (c *PositCodec) Width() int { return c.Cfg.N }

// Encode implements Codec.
func (c *PositCodec) Encode(x float64) uint64 { return posit.EncodeFloat64(c.Cfg, x) }

// Decode implements Codec.
func (c *PositCodec) Decode(b uint64) float64 { return posit.DecodeFloat64(c.Cfg, b) }

// FieldAt implements Codec.
func (c *PositCodec) FieldAt(b uint64, pos int) string {
	return posit.FieldAt(c.Cfg, b, pos).String()
}

// IsSpecial implements Codec (only NaR is special for posits).
func (c *PositCodec) IsSpecial(b uint64) bool { return c.Cfg.Canon(b) == c.Cfg.NaR() }

// RegimeK implements RegimeSizer.
func (c *PositCodec) RegimeK(b uint64) int { return posit.DecodeFields(c.Cfg, b).K }

// IEEECodec adapts an IEEE-754 format to the Codec interface.
type IEEECodec struct {
	Fmt ieee754.Format // the IEEE format being adapted
}

// Name implements Codec.
func (c *IEEECodec) Name() string { return c.Fmt.Name }

// Width implements Codec.
func (c *IEEECodec) Width() int { return c.Fmt.Width() }

// Encode implements Codec.
func (c *IEEECodec) Encode(x float64) uint64 { return c.Fmt.Encode(x) }

// Decode implements Codec. Inf decodes to ±Inf (kept, so error metrics
// can classify it as catastrophic).
func (c *IEEECodec) Decode(b uint64) float64 { return c.Fmt.Decode(b) }

// FieldAt implements Codec; the layout is static for IEEE formats.
func (c *IEEECodec) FieldAt(_ uint64, pos int) string { return c.Fmt.FieldAt(pos).String() }

// IsSpecial implements Codec.
func (c *IEEECodec) IsSpecial(b uint64) bool { return c.Fmt.IsNaN(b) || c.Fmt.IsInf(b) }

// registry maps codec names to constructors (codecs are stateless, so
// shared instances are fine).
var registry = map[string]Codec{}

func register(c Codec) { registry[c.Name()] = c }

func init() {
	register(NewPositCodec(posit.Std8))
	register(NewPositCodec(posit.Std16))
	register(NewPositCodec(posit.Std32))
	register(NewPositCodec(posit.Std64))
	// Legacy exponent sizes for the es ablation.
	register(NewPositCodec(Config{N: 32, ES: 0}))
	register(NewPositCodec(Config{N: 32, ES: 1}))
	register(NewPositCodec(Config{N: 32, ES: 3}))
	register(&IEEECodec{Fmt: ieee754.Binary16})
	register(&IEEECodec{Fmt: ieee754.BFloat16})
	register(&IEEECodec{Fmt: ieee754.Binary32})
	register(&IEEECodec{Fmt: ieee754.Binary64})
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("numfmt: unknown format %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return c, nil
}

// Names returns all registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
