// Package ecc implements the single-error-correct / double-error-
// detect (SEC-DED) Hamming code that memory systems use against the
// soft errors the paper studies (§3.3; its references [18, 24, 35]).
// A 32-bit data word is stored as a 39-bit codeword: 6 Hamming parity
// bits plus one overall parity bit. Any single bit flip — in data or
// parity — is corrected; any double flip is detected.
//
// The package exists to close the paper's loop: the campaign engine
// can inject the very same faults into protected arrays and confirm
// that SEC-DED reduces single-flip silent data corruption to zero for
// both posits and IEEE floats (see the protection extension bench).
package ecc

import "math/bits"

// Codeword is a 39-bit SEC-DED codeword, right-aligned in a uint64.
// Bit 0 holds the overall parity; bits 1..38 are the Hamming code with
// parity bits at the power-of-two positions (1, 2, 4, 8, 16, 32) and
// data bits filling the remaining 32 positions.
type Codeword uint64

// Width is the number of meaningful bits in a Codeword.
const Width = 39

// dataPositions lists the codeword positions (1..38) that carry data
// bits, LSB-first. Positions that are powers of two carry parity.
var dataPositions = func() [32]int {
	var out [32]int
	i := 0
	for pos := 1; pos <= 38; pos++ {
		if pos&(pos-1) != 0 { // not a power of two
			out[i] = pos
			i++
		}
	}
	return out
}()

// Status reports the outcome of decoding a codeword.
type Status int

const (
	// OK: the codeword was clean.
	OK Status = iota
	// Corrected: exactly one bit had flipped; it was repaired.
	Corrected
	// Uncorrectable: a double-bit error was detected. The returned
	// data is the best-effort raw extraction and must not be trusted.
	Uncorrectable
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	}
	return "unknown"
}

// Encode computes the SEC-DED codeword for a data word.
func Encode(data uint32) Codeword {
	var cw uint64
	for i, pos := range dataPositions {
		if data>>uint(i)&1 != 0 {
			cw |= 1 << uint(pos)
		}
	}
	// Hamming parity bits: parity bit at position 2^j covers every
	// position whose index has bit j set.
	for j := 0; j < 6; j++ {
		p := uint(0)
		for pos := 1; pos <= 38; pos++ {
			if pos&(1<<uint(j)) != 0 && pos != 1<<uint(j) {
				p ^= uint(cw>>uint(pos)) & 1
			}
		}
		if p != 0 {
			cw |= 1 << uint(1<<uint(j))
		}
	}
	// Overall parity over bits 1..38 stored at bit 0 (even parity over
	// the whole 39-bit word).
	if bits.OnesCount64(cw)&1 != 0 {
		cw |= 1
	}
	return Codeword(cw)
}

// extract pulls the 32 data bits out of a codeword.
func extract(cw Codeword) uint32 {
	var data uint32
	for i, pos := range dataPositions {
		if cw>>uint(pos)&1 != 0 {
			data |= 1 << uint(i)
		}
	}
	return data
}

// Decode checks and (if possible) repairs a codeword, returning the
// data word and the outcome.
func Decode(cw Codeword) (uint32, Status) {
	syndrome := 0
	for pos := 1; pos <= 38; pos++ {
		if cw>>uint(pos)&1 != 0 {
			syndrome ^= pos
		}
	}
	overallOdd := bits.OnesCount64(uint64(cw))&1 != 0

	switch {
	case syndrome == 0 && !overallOdd:
		return extract(cw), OK
	case overallOdd:
		// Single-bit error: at position `syndrome`, or at the overall
		// parity bit itself when the syndrome is clean.
		pos := syndrome
		if syndrome > 38 {
			// A flip outside the codeword (impossible through Flip,
			// defensive for hand-built patterns).
			return extract(cw), Uncorrectable
		}
		fixed := cw ^ Codeword(1)<<uint(pos)
		return extract(fixed), Corrected
	default:
		// Even overall parity with a nonzero syndrome: double error.
		return extract(cw), Uncorrectable
	}
}

// Flip returns the codeword with bit pos (0..38) inverted — the fault
// model applied to protected memory.
func Flip(cw Codeword, pos int) Codeword {
	if pos < 0 || pos >= Width {
		panic("ecc: flip position out of range")
	}
	return cw ^ Codeword(1)<<uint(pos)
}

// ProtectedArray stores 32-bit words under SEC-DED protection, the
// software model of an ECC-protected memory region.
type ProtectedArray struct {
	words []Codeword
}

// Protect encodes a data array.
func Protect(data []uint32) *ProtectedArray {
	p := &ProtectedArray{words: make([]Codeword, len(data))}
	for i, v := range data {
		p.words[i] = Encode(v)
	}
	return p
}

// Len returns the number of protected words.
func (p *ProtectedArray) Len() int { return len(p.words) }

// Load reads and repairs word i.
func (p *ProtectedArray) Load(i int) (uint32, Status) {
	v, st := Decode(p.words[i])
	if st == Corrected {
		p.words[i] = Encode(v) // write back the repaired word
	}
	return v, st
}

// Store writes word i.
func (p *ProtectedArray) Store(i int, v uint32) { p.words[i] = Encode(v) }

// InjectFault flips one raw bit of word i's codeword (pos 0..38).
func (p *ProtectedArray) InjectFault(i, pos int) { p.words[i] = Flip(p.words[i], pos) }

// Scrub decodes every word, repairing single-bit upsets, and reports
// how many words were corrected and how many are uncorrectable — the
// background scrubbing pass of ECC memory controllers.
func (p *ProtectedArray) Scrub() (corrected, uncorrectable int) {
	for i := range p.words {
		v, st := Decode(p.words[i])
		switch st {
		case Corrected:
			p.words[i] = Encode(v)
			corrected++
		case Uncorrectable:
			uncorrectable++
		}
	}
	return corrected, uncorrectable
}
