package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCleanRoundTrip (property): encode → decode is the identity with
// status OK.
func TestCleanRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		got, st := Decode(Encode(v))
		return got == v && st == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestEverySingleBitCorrected: for a sample of words, flipping each of
// the 39 codeword bits individually is always corrected back to the
// original data.
func TestEverySingleBitCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	words := []uint32{0, 0xFFFFFFFF, 1, 0x80000000, 0xDEADBEEF, 0x55555555, 0xAAAAAAAA}
	for i := 0; i < 200; i++ {
		words = append(words, rng.Uint32())
	}
	for _, w := range words {
		cw := Encode(w)
		for pos := 0; pos < Width; pos++ {
			got, st := Decode(Flip(cw, pos))
			if st != Corrected {
				t.Fatalf("word %#x bit %d: status %v", w, pos, st)
			}
			if got != w {
				t.Fatalf("word %#x bit %d: corrected to %#x", w, pos, got)
			}
		}
	}
}

// TestEveryDoubleBitDetected: every pair of flips is reported
// Uncorrectable — never silently accepted or miscorrected as OK.
func TestEveryDoubleBitDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	words := []uint32{0, 0xFFFFFFFF, 0x12345678}
	for i := 0; i < 20; i++ {
		words = append(words, rng.Uint32())
	}
	for _, w := range words {
		cw := Encode(w)
		for a := 0; a < Width; a++ {
			for b := a + 1; b < Width; b++ {
				_, st := Decode(Flip(Flip(cw, a), b))
				if st != Uncorrectable {
					t.Fatalf("word %#x bits %d,%d: status %v (double error missed)", w, a, b, st)
				}
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		Uncorrectable.String() != "uncorrectable" || Status(9).String() != "unknown" {
		t.Error("status strings")
	}
}

func TestProtectedArray(t *testing.T) {
	data := []uint32{10, 20, 30, 0xCAFEBABE}
	p := Protect(data)
	if p.Len() != 4 {
		t.Fatal("len")
	}
	for i, want := range data {
		got, st := p.Load(i)
		if got != want || st != OK {
			t.Fatalf("load %d: %#x %v", i, got, st)
		}
	}
	// Inject a fault; Load repairs and writes back.
	p.InjectFault(2, 17)
	got, st := p.Load(2)
	if got != 30 || st != Corrected {
		t.Fatalf("after fault: %#x %v", got, st)
	}
	if got, st := p.Load(2); got != 30 || st != OK {
		t.Fatalf("write-back failed: %#x %v", got, st)
	}
	// Store overwrites.
	p.Store(1, 99)
	if got, _ := p.Load(1); got != 99 {
		t.Fatal("store")
	}
}

func TestScrub(t *testing.T) {
	data := make([]uint32, 50)
	for i := range data {
		data[i] = uint32(i * 2654435761)
	}
	p := Protect(data)
	p.InjectFault(3, 5)
	p.InjectFault(10, 0)
	p.InjectFault(20, 38)
	// Word 30 gets a double error.
	p.InjectFault(30, 4)
	p.InjectFault(30, 7)
	corrected, uncorrectable := p.Scrub()
	if corrected != 3 || uncorrectable != 1 {
		t.Fatalf("scrub: %d corrected, %d uncorrectable", corrected, uncorrectable)
	}
	// The corrected words read clean now.
	for _, i := range []int{3, 10, 20} {
		if got, st := p.Load(i); got != data[i] || st != OK {
			t.Fatalf("word %d not repaired: %#x %v", i, got, st)
		}
	}
	// The double-error word remains uncorrectable.
	if _, st := p.Load(30); st != Uncorrectable {
		t.Fatal("double error should persist")
	}
}

func TestFlipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range flip should panic")
		}
	}()
	Flip(0, 39)
}

// TestCodewordDensity: the code adds exactly 7 bits of redundancy.
func TestCodewordDensity(t *testing.T) {
	if Width != 39 {
		t.Fatal("width")
	}
	if len(dataPositions) != 32 {
		t.Fatal("data positions")
	}
	seen := map[int]bool{}
	for _, p := range dataPositions {
		if p < 1 || p > 38 || p&(p-1) == 0 || seen[p] {
			t.Fatalf("bad data position %d", p)
		}
		seen[p] = true
	}
}
