package chaos

// The fault-injecting reverse proxy itself. It is deliberately
// hand-rolled rather than httputil.ReverseProxy so the body stream is
// ours to mangle: truncation must cut mid-body and slam the
// connection, corruption must flip a byte while keeping the length,
// and HTTP trailers (the shard CSV integrity CRC) must survive the
// hop when no fault fires.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting HTTP reverse proxy for one upstream
// target. Construct with New; safe for concurrent use. Mount it on an
// http.Server (or httptest.Server) like any handler.
type Proxy struct {
	target *url.URL
	faults Faults
	client *http.Client
	logf   func(format string, args ...interface{})
	seq    atomic.Uint64

	requests       atomic.Int64
	forwarded      atomic.Int64
	latencies      atomic.Int64
	resets         atomic.Int64
	synth5xx       atomic.Int64
	truncations    atomic.Int64
	corruptions    atomic.Int64
	upstreamErrors atomic.Int64
}

// New builds a Proxy forwarding to target (scheme + host, e.g.
// "http://127.0.0.1:8080") with the given fault schedule. logf, when
// non-nil, receives one line per injected fault tagged with the
// request sequence number — the replayable schedule made visible.
func New(target string, f Faults, logf func(format string, args ...interface{})) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: target %q must be an absolute URL (scheme + host)", target)
	}
	return &Proxy{
		target: u,
		faults: f,
		// Compression off so body offsets refer to the bytes the
		// client sees; no client timeout — campaign waits are long and
		// the request context bounds each hop.
		client: &http.Client{Transport: &http.Transport{DisableCompression: true}},
		logf:   logf,
	}, nil
}

// Stats returns the current fault tallies.
func (p *Proxy) Stats() StatsSnapshot {
	return StatsSnapshot{
		Requests:       p.requests.Load(),
		Forwarded:      p.forwarded.Load(),
		Latencies:      p.latencies.Load(),
		Resets:         p.resets.Load(),
		Synthetic5xx:   p.synth5xx.Load(),
		Truncations:    p.truncations.Load(),
		Corruptions:    p.corruptions.Load(),
		UpstreamErrors: p.upstreamErrors.Load(),
	}
}

// StatsSnapshot is the JSON view of a Proxy's fault tallies, embedded
// in the positres-load/v1 artifact so a load run records the hostility
// it survived.
type StatsSnapshot struct {
	// Requests counts every request that reached the proxy.
	Requests int64 `json:"requests"`
	// Forwarded counts requests that reached the upstream (including
	// ones whose response was then truncated or corrupted).
	Forwarded int64 `json:"forwarded"`
	// Latencies counts injected delays.
	Latencies int64 `json:"latencies"`
	// Resets counts injected TCP connection resets.
	Resets int64 `json:"resets"`
	// Synthetic5xx counts synthetic 5xx answers served without
	// contacting the upstream.
	Synthetic5xx int64 `json:"synthetic_5xx"`
	// Truncations counts response bodies cut short.
	Truncations int64 `json:"truncations"`
	// Corruptions counts response bodies with a byte flipped.
	Corruptions int64 `json:"corruptions"`
	// UpstreamErrors counts forwards that failed at the upstream hop
	// (connection refused, upstream reset) — real faults, not injected.
	UpstreamErrors int64 `json:"upstream_errors"`
}

// log emits one schedule line when a log sink is configured.
func (p *Proxy) log(seq uint64, format string, args ...interface{}) {
	if p.logf != nil {
		p.logf("chaos: #%d "+format, append([]interface{}{seq}, args...)...)
	}
}

// ServeHTTP implements http.Handler: decide the request's fault plan,
// apply the connection-level faults, then forward with any body-level
// fault applied to the response stream.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	seq := p.seq.Add(1)
	p.requests.Add(1)
	d := p.faults.decide(seq)

	if d.latency > 0 {
		p.latencies.Add(1)
		p.log(seq, "latency %v on %s %s", d.latency, r.Method, r.URL.Path)
		t := time.NewTimer(d.latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return // client gave up during the injected delay
		}
	}

	switch d.mode {
	case modeReset:
		p.resets.Add(1)
		p.log(seq, "reset on %s %s", r.Method, r.URL.Path)
		slam(w)
		return
	case mode5xx:
		p.synth5xx.Add(1)
		p.log(seq, "synthetic %d on %s %s", d.status, r.Method, r.URL.Path)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(d.status)
		if _, err := io.WriteString(w, "chaos: injected upstream failure\n"); err != nil {
			p.log(seq, "synthetic body write: %v", err)
		}
		return
	}

	out := r.Clone(r.Context())
	out.URL.Scheme = p.target.Scheme
	out.URL.Host = p.target.Host
	out.Host = p.target.Host
	out.RequestURI = "" // client requests must not set it
	resp, err := p.client.Do(out)
	if err != nil {
		p.upstreamErrors.Add(1)
		p.log(seq, "upstream error: %v", err)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, "chaos: upstream: %v\n", err)
		return
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			p.log(seq, "upstream body close: %v", err)
		}
	}()
	p.forwarded.Add(1)

	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)

	switch d.mode {
	case modeTruncate:
		p.truncations.Add(1)
		p.log(seq, "truncate after %d bytes on %s %s", d.cutAt, r.Method, r.URL.Path)
		_, _ = io.CopyN(w, resp.Body, d.cutAt)
		// Slam the connection mid-body: the client sees an unexpected
		// EOF (or a missing integrity trailer) exactly as it would if
		// the upstream died mid-stream. ErrAbortHandler is net/http's
		// sanctioned way to do that from a handler.
		panic(http.ErrAbortHandler)
	case modeCorrupt:
		p.corruptions.Add(1)
		p.log(seq, "corrupt byte at offset %d on %s %s", d.flipAt, r.Method, r.URL.Path)
		if _, err := io.Copy(&corruptWriter{w: w, at: d.flipAt}, resp.Body); err != nil {
			p.log(seq, "corrupt copy: %v", err)
			return // connection is broken; trailers are moot
		}
	default:
		if _, err := io.Copy(w, resp.Body); err != nil {
			p.log(seq, "copy: %v", err)
			return
		}
	}

	// The body has been fully read, so upstream trailers (the shard
	// CSV integrity CRC) are populated now; re-emit them. TrailerPrefix
	// keys need no up-front declaration.
	for k, vv := range resp.Trailer {
		for _, v := range vv {
			w.Header().Add(http.TrailerPrefix+k, v)
		}
	}
}

// hopHeaders are the hop-by-hop headers a proxy must not forward
// (RFC 9110 §7.6.1). Trailer is re-emitted via TrailerPrefix instead.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// copyHeader copies end-to-end headers from src to dst.
func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		hop := false
		for _, h := range hopHeaders {
			if strings.EqualFold(k, h) {
				hop = true
				break
			}
		}
		if hop {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// slam terminates the client connection as abruptly as the platform
// allows: hijack, disable lingering so close sends RST instead of FIN,
// and close. Writers that cannot hijack (HTTP/2, tests) fall back to
// ErrAbortHandler, which still surfaces as a mid-request error.
func slam(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close() // the connection is being destroyed on purpose
}

// corruptWriter passes bytes through, XORing the single byte at
// stream offset `at` (if the stream is long enough to reach it).
type corruptWriter struct {
	w   io.Writer
	at  int64
	off int64
}

// Write implements io.Writer without mutating the caller's buffer.
func (c *corruptWriter) Write(p []byte) (int, error) {
	if c.off <= c.at && c.at < c.off+int64(len(p)) {
		b := append([]byte(nil), p...)
		b[c.at-c.off] ^= 0x20
		n, err := c.w.Write(b)
		c.off += int64(n)
		return n, err
	}
	n, err := c.w.Write(p)
	c.off += int64(n)
	return n, err
}
