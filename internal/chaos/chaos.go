// Package chaos is the fault-injection layer for the service plane:
// a reverse proxy that sits in front of a positserve instance (or
// between a coordinator and its workers) and injects the failure
// modes the paper's resiliency argument assumes away — added latency,
// TCP connection resets, truncated and corrupted response bodies, and
// synthetic 5xx bursts. Faults fire on a deterministic schedule
// derived from a seed and the request sequence number, so a failing
// chaos run replays exactly: same seed, same request order, same
// faults. cmd/chaosproxy is the standalone process wrapper,
// cmd/positload embeds a proxy for its -smoke self-test, and
// scripts/load_e2e.sh strings proxies between a live coordinator and
// its worker fleet. docs/RESILIENCE.md ("Chaos & load") is the fault
// matrix reference.
package chaos

import (
	"flag"
	"math/rand/v2"
	"time"
)

// Fault modes a request can draw, in decision precedence order (a
// request suffers at most one of these, plus optional latency).
const (
	modeNone     = iota // forward untouched
	modeReset           // slam the client connection before forwarding
	mode5xx             // answer a synthetic 5xx without forwarding
	modeTruncate        // forward but cut the response body short
	modeCorrupt         // forward but flip one byte of the response body
)

// Faults configures a Proxy's fault schedule. The zero value injects
// nothing (a transparent proxy). Probabilities are per request in
// [0, 1]; at most one connection/body fault fires per request, rolled
// in reset → 5xx → truncate → corrupt precedence, and latency rolls
// independently so a delayed request can also be reset or corrupted —
// the compound case real networks produce.
type Faults struct {
	// Seed keys the deterministic schedule: the fault decision for
	// request N is a pure function of (Seed, N), so a run replays by
	// reusing the seed and request order.
	Seed uint64
	// LatencyP is the probability of injecting added latency.
	LatencyP float64
	// LatencyMin is the smallest injected delay.
	LatencyMin time.Duration
	// LatencyMax bounds the injected delay (uniform in [min, max)).
	LatencyMax time.Duration
	// ResetP is the probability of a TCP reset before forwarding.
	ResetP float64
	// Error5xxP is the probability of a synthetic 5xx answer (the
	// upstream is never contacted).
	Error5xxP float64
	// TruncateP is the probability of cutting the response body short
	// and slamming the connection — the mid-stream worker death case.
	TruncateP float64
	// CorruptP is the probability of flipping one byte of the response
	// body while preserving its length — the undetected-without-CRC
	// corruption case.
	CorruptP float64
}

// Active reports whether any fault has a nonzero probability.
func (f Faults) Active() bool {
	return f.LatencyP > 0 || f.ResetP > 0 || f.Error5xxP > 0 || f.TruncateP > 0 || f.CorruptP > 0
}

// Register binds the standard -chaos-* flag set onto fs, writing into
// f. cmd/chaosproxy and cmd/positload share it so the two processes
// spell an identical fault matrix identically.
func (f *Faults) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&f.Seed, "chaos-seed", 1, "fault schedule seed (same seed + request order replays the same faults)")
	fs.Float64Var(&f.LatencyP, "chaos-latency-p", 0, "per-request probability of injected latency")
	fs.DurationVar(&f.LatencyMin, "chaos-latency-min", 5*time.Millisecond, "smallest injected delay")
	fs.DurationVar(&f.LatencyMax, "chaos-latency-max", 250*time.Millisecond, "largest injected delay (exclusive)")
	fs.Float64Var(&f.ResetP, "chaos-reset-p", 0, "per-request probability of a TCP connection reset")
	fs.Float64Var(&f.Error5xxP, "chaos-5xx-p", 0, "per-request probability of a synthetic 5xx response")
	fs.Float64Var(&f.TruncateP, "chaos-truncate-p", 0, "per-request probability of a truncated response body")
	fs.Float64Var(&f.CorruptP, "chaos-corrupt-p", 0, "per-request probability of a single corrupted response byte")
}

// decision is the fault plan for one proxied request, fully determined
// by (Faults.Seed, request sequence number).
type decision struct {
	latency time.Duration // 0 means no injected delay
	mode    int           // one of the mode* constants
	status  int           // synthetic status for mode5xx
	cutAt   int64         // body bytes to pass through before truncating
	flipAt  int64         // body offset whose byte is XORed for modeCorrupt
}

// decide computes request seq's fault plan. Every random draw happens
// unconditionally so the schedule of one fault type does not shift
// when another type's probability is tuned — a replay with only the
// 5xx rate changed still resets and corrupts the same requests.
func (f Faults) decide(seq uint64) decision {
	rng := rand.New(rand.NewPCG(f.Seed, seq))
	var d decision
	uLat := rng.Float64()
	uReset, u5xx, uTrunc, uCorr := rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()
	latFrac := rng.Float64()
	d.status = []int{500, 502, 503}[rng.IntN(3)]
	d.cutAt = 16 + rng.Int64N(4096)
	d.flipAt = rng.Int64N(4096)
	if uLat < f.LatencyP {
		span := f.LatencyMax - f.LatencyMin
		if span < 0 {
			span = 0
		}
		d.latency = f.LatencyMin + time.Duration(latFrac*float64(span))
	}
	switch {
	case uReset < f.ResetP:
		d.mode = modeReset
	case u5xx < f.Error5xxP:
		d.mode = mode5xx
	case uTrunc < f.TruncateP:
		d.mode = modeTruncate
	case uCorr < f.CorruptP:
		d.mode = modeCorrupt
	}
	return d
}
