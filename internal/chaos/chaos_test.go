package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// allFaults is a schedule where every probability is in play.
func allFaults() Faults {
	return Faults{
		Seed:       42,
		LatencyP:   0.25,
		LatencyMin: time.Millisecond,
		LatencyMax: 5 * time.Millisecond,
		ResetP:     0.1,
		Error5xxP:  0.1,
		TruncateP:  0.1,
		CorruptP:   0.1,
	}
}

// TestScheduleDeterministic: the fault plan is a pure function of
// (seed, seq) — the property that makes a chaos run replayable.
func TestScheduleDeterministic(t *testing.T) {
	f := allFaults()
	for seq := uint64(1); seq <= 500; seq++ {
		a, b := f.decide(seq), f.decide(seq)
		if a != b {
			t.Fatalf("decide(%d) not deterministic: %+v vs %+v", seq, a, b)
		}
	}
	// A different seed must produce a different schedule somewhere.
	g := f
	g.Seed = 43
	same := 0
	for seq := uint64(1); seq <= 500; seq++ {
		if f.decide(seq) == g.decide(seq) {
			same++
		}
	}
	if same == 500 {
		t.Fatal("seeds 42 and 43 produced identical 500-request schedules")
	}
}

// TestScheduleStableAcrossTuning: changing one fault's probability
// must not shift which requests draw the other faults (every random
// draw happens unconditionally).
func TestScheduleStableAcrossTuning(t *testing.T) {
	f := allFaults()
	g := f
	g.Error5xxP = 0 // tune one knob
	for seq := uint64(1); seq <= 500; seq++ {
		df, dg := f.decide(seq), g.decide(seq)
		if df.mode == mode5xx {
			if dg.mode != modeNone && dg.mode != df.mode {
				// With 5xx off this request may fall through to a
				// lower-precedence fault; that is expected.
				continue
			}
			continue
		}
		if df.mode != dg.mode || df.latency != dg.latency {
			t.Fatalf("seq %d: plan changed from %+v to %+v when only 5xx rate was tuned", seq, df, dg)
		}
	}
}

// newBackend returns an httptest server echoing a fixed body with a
// trailer carrying its byte count, mimicking the shard CSV protocol.
func newBackend(t *testing.T, body []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Trailer", "X-Test-Len")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(body); err != nil {
			t.Logf("backend write: %v", err)
		}
		w.Header().Set("X-Test-Len", fmt.Sprint(len(body)))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// newProxy mounts a Proxy over the backend and returns its base URL.
func newProxy(t *testing.T, backend string, f Faults) string {
	t.Helper()
	p, err := New(backend, f, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestTransparentPassThrough: with no faults, body, status and the
// trailer all survive the hop byte for byte.
func TestTransparentPassThrough(t *testing.T) {
	body := bytes.Repeat([]byte("posit trial row\n"), 512)
	backend := newBackend(t, body)
	base := newProxy(t, backend.URL, Faults{})

	resp, err := http.Get(base + "/v1/anything")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body changed through transparent proxy: %d bytes vs %d", len(got), len(body))
	}
	if tl := resp.Trailer.Get("X-Test-Len"); tl != fmt.Sprint(len(body)) {
		t.Fatalf("trailer lost through proxy: got %q", tl)
	}
}

// TestSynthetic5xx: with Error5xxP=1 every request is answered 5xx
// without touching the upstream.
func TestSynthetic5xx(t *testing.T) {
	backend := newBackend(t, []byte("never served"))
	base := newProxy(t, backend.URL, Faults{Seed: 7, Error5xxP: 1})
	for i := 0; i < 5; i++ {
		resp, err := http.Get(base + "/x")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode < 500 || resp.StatusCode > 599 {
			t.Fatalf("status %d, want 5xx", resp.StatusCode)
		}
		raw, _ := io.ReadAll(resp.Body)
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
		if !strings.Contains(string(raw), "chaos") {
			t.Fatalf("synthetic body %q does not identify itself", raw)
		}
	}
}

// TestReset: with ResetP=1 the client sees a transport error, not an
// HTTP response.
func TestReset(t *testing.T) {
	backend := newBackend(t, []byte("never served"))
	base := newProxy(t, backend.URL, Faults{Seed: 7, ResetP: 1})
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(base + "/x")
	if err == nil {
		if cerr := resp.Body.Close(); cerr != nil {
			t.Error(cerr)
		}
		t.Fatalf("reset request produced a response: %d", resp.StatusCode)
	}
}

// TestTruncate: with TruncateP=1 the body read fails (or comes up
// short) and the trailer never arrives — exactly what the shard
// integrity check must catch.
func TestTruncate(t *testing.T) {
	body := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KiB >> max cutAt
	backend := newBackend(t, body)
	base := newProxy(t, backend.URL, Faults{Seed: 7, TruncateP: 1})
	resp, err := http.Get(base + "/x")
	if err != nil {
		return // connection died before headers: also a truncation
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Logf("close after truncation: %v", err)
		}
	}()
	got, err := io.ReadAll(resp.Body)
	if err == nil && len(got) == len(body) {
		t.Fatalf("full %d-byte body survived a forced truncation", len(body))
	}
	if resp.Trailer.Get("X-Test-Len") != "" {
		t.Fatal("integrity trailer survived a truncated body")
	}
}

// TestCorrupt: with CorruptP=1 the body keeps its length but differs
// in exactly one byte.
func TestCorrupt(t *testing.T) {
	body := bytes.Repeat([]byte("0123456789abcdef"), 4096)
	backend := newBackend(t, body)
	base := newProxy(t, backend.URL, Faults{Seed: 7, CorruptP: 1})
	resp, err := http.Get(base + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(body) {
		t.Fatalf("corruption changed body length: %d vs %d", len(got), len(body))
	}
	diff := 0
	for i := range got {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
}

// TestLatency: with LatencyP=1 and a fixed window the request takes at
// least LatencyMin.
func TestLatency(t *testing.T) {
	backend := newBackend(t, []byte("ok"))
	base := newProxy(t, backend.URL, Faults{
		Seed: 7, LatencyP: 1, LatencyMin: 30 * time.Millisecond, LatencyMax: 40 * time.Millisecond,
	})
	start := time.Now()
	resp, err := http.Get(base + "/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Error(err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("request took %v, want >= 30ms of injected latency", took)
	}
}

// TestStats: tallies reflect the injected faults.
func TestStats(t *testing.T) {
	backend := newBackend(t, []byte("ok"))
	p, err := New(backend.URL, Faults{Seed: 7, Error5xxP: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Error(err)
		}
	}
	st := p.Stats()
	if st.Requests != 3 || st.Synthetic5xx != 3 || st.Forwarded != 0 {
		t.Fatalf("stats %+v, want 3 requests / 3 synthetic / 0 forwarded", st)
	}
}

// TestBadTarget: a relative target is rejected up front.
func TestBadTarget(t *testing.T) {
	if _, err := New("not-a-url", Faults{}, nil); err == nil {
		t.Fatal("relative target accepted")
	}
}
