// Package sdrbench generates deterministic synthetic stand-ins for
// the SDRBench scientific datasets the paper injects faults into
// (CESM, EXAFEL, HACC, Hurricane Isabel, Nyx — Table 1), and reads and
// writes them in the raw little-endian float32 layout the paper's
// campaign loads ("reads a binary file containing a field ... into an
// array").
//
// The generators are tuned per field so the summary statistics the
// paper reports (mean, median, max, min, standard deviation) are
// matched in magnitude and sign structure. Bit-flip sensitivity at
// each position depends only on the value distribution — the
// magnitudes (which set posit regime sizes), the sign mix and the zero
// mass — so matching those moments preserves the behaviour the
// experiments measure. Physical content is irrelevant and not
// modelled; see DESIGN.md §2.
package sdrbench

import (
	"math"
	"math/bits"
)

// RNG is a self-contained xoshiro256** generator. It is deterministic
// across platforms and Go releases (unlike math/rand's default
// source), which makes every campaign reproducible bit-for-bit from
// its seed, strengthening the paper's "seed the random number
// generator for reproducibility" step.
type RNG struct {
	s [4]uint64
}

// splitmix64 is the stream initializer recommended for xoshiro.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewRNG derives an independent stream from a seed and a sequence of
// labels (field name, codec, bit position, ...). Streams with
// different labels are statistically independent.
func NewRNG(seed uint64, labels ...string) *RNG {
	r := RNGFromHash(seed, NewLabelHash(labels...))
	return &r
}

// LabelHash is the label-mixing state NewRNG folds its labels into —
// an FNV-1a accumulator with a 0xFF separator after each label. It is
// exposed so hot loops can precompute the hash of their fixed label
// prefix once and derive per-trial streams without re-hashing (or
// allocating) the prefix strings on every draw:
//
//	base := NewLabelHash(field, codec, bitLabel)
//	for seq := 0; seq < n; seq++ {
//		rng := RNGFromHash(seed, base.WithInt(seq)) // zero allocations
//	}
//
// The derived stream is bit-identical to NewRNG with the equivalent
// flat label list; TestLabelHashEquivalence pins this, because every
// journaled campaign replays through these streams.
type LabelHash uint64

// fnvOffset/fnvPrime are the standard 64-bit FNV-1a parameters.
const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// NewLabelHash folds labels into a fresh accumulator.
func NewLabelHash(labels ...string) LabelHash {
	h := LabelHash(fnvOffset)
	for _, l := range labels {
		h = h.WithLabel(l)
	}
	return h
}

// WithLabel returns the hash extended by one label (value semantics:
// the receiver is unchanged, so a prefix can be reused).
func (h LabelHash) WithLabel(l string) LabelHash {
	x := uint64(h)
	for i := 0; i < len(l); i++ {
		x ^= uint64(l[i])
		x *= fnvPrime
	}
	x ^= 0xFF // label separator
	x *= fnvPrime
	return LabelHash(x)
}

// WithInt extends the hash exactly as WithLabel(strconv.Itoa(n))
// would, without materializing the string. Campaign hot loops use it
// for the per-trial sequence label.
func (h LabelHash) WithInt(n int) LabelHash {
	var buf [20]byte // enough for -9223372036854775808
	i := len(buf)
	u := uint64(n)
	if n < 0 {
		u = uint64(-n)
	}
	for {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
		if u == 0 {
			break
		}
	}
	if n < 0 {
		i--
		buf[i] = '-'
	}
	x := uint64(h)
	for ; i < len(buf); i++ {
		x ^= uint64(buf[i])
		x *= fnvPrime
	}
	x ^= 0xFF // label separator
	x *= fnvPrime
	return LabelHash(x)
}

// RNGFromHash seeds a generator from a precomputed label hash. It
// returns the RNG by value so callers in hot loops keep it on the
// stack; the stream is identical to NewRNG with the same seed and the
// labels folded into h.
func RNGFromHash(seed uint64, h LabelHash) RNG {
	x := seed ^ uint64(h)
	var r RNG
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// A state of all zeros is invalid for xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sdrbench: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	un := uint64(n)
	threshold := (-un) % un
	for {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an Exp(1) variate via inversion.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a lognormal variate with the given log-space
// location and scale: exp(mu + sigma·N).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}
