// Package sdrbench generates deterministic synthetic stand-ins for
// the SDRBench scientific datasets the paper injects faults into
// (CESM, EXAFEL, HACC, Hurricane Isabel, Nyx — Table 1), and reads and
// writes them in the raw little-endian float32 layout the paper's
// campaign loads ("reads a binary file containing a field ... into an
// array").
//
// The generators are tuned per field so the summary statistics the
// paper reports (mean, median, max, min, standard deviation) are
// matched in magnitude and sign structure. Bit-flip sensitivity at
// each position depends only on the value distribution — the
// magnitudes (which set posit regime sizes), the sign mix and the zero
// mass — so matching those moments preserves the behaviour the
// experiments measure. Physical content is irrelevant and not
// modelled; see DESIGN.md §2.
package sdrbench

import (
	"math"
	"math/bits"
)

// RNG is a self-contained xoshiro256** generator. It is deterministic
// across platforms and Go releases (unlike math/rand's default
// source), which makes every campaign reproducible bit-for-bit from
// its seed, strengthening the paper's "seed the random number
// generator for reproducibility" step.
type RNG struct {
	s [4]uint64
}

// splitmix64 is the stream initializer recommended for xoshiro.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewRNG derives an independent stream from a seed and a sequence of
// labels (field name, codec, bit position, ...). Streams with
// different labels are statistically independent.
func NewRNG(seed uint64, labels ...string) *RNG {
	// Mix the labels into the seed with FNV-1a.
	h := uint64(1469598103934665603)
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= 1099511628211
		}
		h ^= 0xFF // label separator
		h *= 1099511628211
	}
	x := seed ^ h
	r := &RNG{}
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// A state of all zeros is invalid for xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sdrbench: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	un := uint64(n)
	threshold := (-un) % un
	for {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an Exp(1) variate via inversion.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a lognormal variate with the given log-space
// location and scale: exp(mu + sigma·N).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}
