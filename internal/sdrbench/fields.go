package sdrbench

import (
	"fmt"
	"sort"
	"strings"
)

// Table1Row records the summary statistics the paper reports for a
// field (its Table 1), used as generator targets and by EXPERIMENTS.md
// to compare paper-vs-measured.
type Table1Row struct {
	Mean, Median, Max, Min, Std float64 // the paper's Table 1 columns
}

// Field describes one dataset field: identity, original dimensions,
// the paper's Table 1 statistics, and the value generator that
// synthesizes a stand-in sample.
type Field struct {
	Dataset string    // SDRBench dataset name, e.g. "CESM"
	Name    string    // field name within the dataset, e.g. "CLOUD"
	Dims    []int     // original grid dimensions from the paper
	Target  Table1Row // the paper's summary statistics for the field
	gen     func(r *RNG) float64
}

// Key returns the canonical "Dataset/Name" identifier.
func (f Field) Key() string { return f.Dataset + "/" + f.Name }

// FullLen returns the element count of the original field.
func (f Field) FullLen() int {
	n := 1
	for _, d := range f.Dims {
		n *= d
	}
	return n
}

// Generate synthesizes n float32 elements deterministically from the
// seed. The same (field, seed, n) always yields the same data, at any
// time, on any platform.
func (f Field) Generate(n int, seed uint64) []float32 {
	r := NewRNG(seed, f.Dataset, f.Name)
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(f.gen(r))
	}
	return out
}

// clip bounds x to [lo, hi].
func clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// fields is the registry of the paper's 16 evaluation fields. Each
// generator is a small mixture model tuned to the Table 1 targets;
// comments state the structural features that matter for fault
// injection (magnitude scale → regime size, sign mix, zero mass).
var fields = []Field{
	{
		Dataset: "CESM", Name: "OMEGA", Dims: []int{26, 1800, 3600},
		Target: Table1Row{Mean: -3.88e-06, Median: 3.41e-06, Max: 4.18e-03, Min: -5.01e-03, Std: 3.11e-04},
		// Vertical velocity: symmetric heavy-tailed values at the
		// 1e-4 scale (tiny magnitudes → long posit regimes, |v| < 1).
		gen: func(r *RNG) float64 {
			if r.Float64() < 0.85 {
				return clip(3.4e-6+5e-5*r.NormFloat64(), -5.01e-3, 4.18e-3)
			}
			return clip(-3e-5+7.5e-4*r.NormFloat64(), -5.01e-3, 4.18e-3)
		},
	},
	{
		Dataset: "CESM", Name: "CLOUD", Dims: []int{26, 1800, 3600},
		Target: Table1Row{Mean: 6.37e-02, Median: 2.89e-02, Max: 9.64e-01, Min: -1.14e-17, Std: 7.42e-02},
		// Cloud fraction: non-negative, right-skewed, bounded by ~1
		// (all |v| < 1 → the paper's small-magnitude regime).
		gen: func(r *RNG) float64 {
			return clip(r.LogNormal(-3.544, 1.257), 0, 0.964)
		},
	},
	{
		Dataset: "CESM", Name: "RELHUM", Dims: []int{26, 1800, 3600},
		Target: Table1Row{Mean: 4.07e+01, Median: 4.56e+01, Max: 9.96e+01, Min: 1.12e-03, Std: 2.02e+01},
		// Relative humidity in (0, 100): moderate magnitudes, left
		// skew (median > mean), no negatives.
		gen: func(r *RNG) float64 {
			if r.Float64() < 0.84 {
				return clip(48+15*r.NormFloat64(), 1.12e-3, 99.6)
			}
			return clip(1.12e-3+6*r.ExpFloat64(), 1.12e-3, 99.6)
		},
	},
	{
		Dataset: "EXAFEL", Name: "smd-cxif5315-r129-dark", Dims: []int{50, 32, 185, 388},
		Target: Table1Row{Mean: 2.18e-35, Median: 2.02e-35, Max: 9.53e-01, Min: 6.81e-43, Std: 1.94e-03},
		// Dark-calibration frames: almost all mass at the float32
		// denormal boundary (~1e-35, extreme posit regimes) with very
		// rare O(1) spikes that dominate the variance.
		gen: func(r *RNG) float64 {
			u := r.Float64()
			switch {
			case u < 1.5e-5:
				return clip(0.25+0.25*r.ExpFloat64(), 1e-3, 0.953)
			case u < 0.01:
				// Deep lower tail reaching the float32 denormal floor.
				return clip(r.LogNormal(-88, 5.5), 6.81e-43, 1e-30)
			}
			return clip(r.LogNormal(-79.88, 0.55), 6.81e-43, 1e-30)
		},
	},
	{
		Dataset: "HACC", Name: "vx", Dims: []int{280953867},
		Target: Table1Row{Mean: 1.79e+01, Median: 2.34e+01, Max: 3.39e+03, Min: -3.52e+03, Std: 2.27e+02},
		gen:    haccVelocity(17.9, 23.4, 227, 3390, -3520),
	},
	{
		Dataset: "HACC", Name: "vy", Dims: []int{280953867},
		Target: Table1Row{Mean: 4.08e+00, Median: -4.98e-01, Max: 3.74e+03, Min: -3.50e+03, Std: 2.41e+02},
		gen:    haccVelocity(4.08, -0.498, 241, 3740, -3500),
	},
	{
		Dataset: "HACC", Name: "vz", Dims: []int{280953867},
		Target: Table1Row{Mean: 2.45e+00, Median: -1.17e+00, Max: 3.18e+03, Min: -4.08e+03, Std: 2.63e+02},
		gen:    haccVelocity(2.45, -1.17, 263, 3180, -4080),
	},
	{
		Dataset: "Hurricane", Name: "PRECIPf48", Dims: []int{100, 500, 500},
		Target: Table1Row{Mean: 1.24e-05, Median: 7.09e-09, Max: 7.51e-03, Min: 0, Std: 7.77e-05},
		// Precipitation: exact zeros plus a lognormal spanning eight
		// decades (tiny medians, rare large values — wide regime mix).
		gen: func(r *RNG) float64 {
			if r.Float64() < 0.10 {
				return 0
			}
			return clip(r.LogNormal(-18.54, 3.6), 0, 7.51e-3)
		},
	},
	{
		Dataset: "Hurricane", Name: "Wf30", Dims: []int{100, 500, 500},
		Target: Table1Row{Mean: 6.91e-03, Median: -7.78e-05, Max: 1.55e+01, Min: -4.57e+00, Std: 1.72e-01},
		// Vertical wind: near-zero core (centered slightly below zero
		// so the mixture median lands at the target's -7.8e-5) with a
		// strong updraft tail and a weaker downdraft tail.
		gen: func(r *RNG) float64 {
			u := r.Float64()
			switch {
			case u < 0.982:
				return clip(-1.6e-3+0.09*r.NormFloat64(), -4.57, 15.5)
			case u < 0.997:
				return clip(0.3+0.9*r.ExpFloat64(), -4.57, 15.5)
			}
			return clip(-0.3-0.7*r.ExpFloat64(), -4.57, 15.5)
		},
	},
	{
		Dataset: "Hurricane", Name: "Uf30", Dims: []int{100, 500, 500},
		Target: Table1Row{Mean: -5.54e-01, Median: -6.93e-01, Max: 6.89e+01, Min: -7.95e+01, Std: 9.36e+00},
		gen: func(r *RNG) float64 {
			return clip(-0.62+9.3*r.NormFloat64(), -79.5, 68.9)
		},
	},
	{
		Dataset: "Hurricane", Name: "Pf48", Dims: []int{100, 500, 500},
		Target: Table1Row{Mean: 3.76e+02, Median: 2.25e+02, Max: 3.22e+03, Min: -3.41e+03, Std: 4.55e+02},
		// Perturbation pressure: positive skew with a negative tail.
		gen: func(r *RNG) float64 {
			if r.Float64() < 0.75 {
				return clip(225+180*r.NormFloat64(), -3410, 3220)
			}
			return clip(225+500*r.NormFloat64()+400*r.ExpFloat64(), -3410, 3220)
		},
	},
	{
		Dataset: "Hurricane", Name: "CLOUDf48", Dims: []int{100, 500, 500},
		Target: Table1Row{Mean: 8.60e-06, Median: 0, Max: 2.05e-03, Min: 0, Std: 5.18e-05},
		// Cloud water: mostly exact zeros (median 0) with a tiny
		// lognormal remainder — the extreme zero-mass case.
		gen: func(r *RNG) float64 {
			if r.Float64() < 0.62 {
				return 0
			}
			return clip(r.LogNormal(-13.0, 2.4), 0, 2.05e-3)
		},
	},
	{
		Dataset: "Hurricane", Name: "Vf30", Dims: []int{100, 500, 500},
		Target: Table1Row{Mean: 3.63e+00, Median: 3.48e+00, Max: 6.98e+01, Min: -6.86e+01, Std: 9.76e+00},
		gen: func(r *RNG) float64 {
			return clip(3.55+9.7*r.NormFloat64(), -68.6, 69.8)
		},
	},
	{
		Dataset: "Nyx", Name: "velocity-x", Dims: []int{512, 512, 512},
		Target: Table1Row{Mean: 3.54e+02, Median: 4.68e+05, Max: 3.19e+07, Min: -5.04e+07, Std: 4.97e+06},
		// Baryon velocity: huge symmetric magnitudes (1e6–1e7 scale →
		// large posit regimes; the paper's "spiky" dataset).
		gen: func(r *RNG) float64 {
			if r.Float64() < 0.60 {
				return clip(4.7e5+2.8e6*r.NormFloat64(), -5.04e7, 3.19e7)
			}
			return clip(-7e5+7.2e6*r.NormFloat64(), -5.04e7, 3.19e7)
		},
	},
	{
		Dataset: "Nyx", Name: "dark-matter-density", Dims: []int{512, 512, 512},
		Target: Table1Row{Mean: 1.00e+00, Median: 3.93e-01, Max: 1.38e+04, Min: 0, Std: 8.37e+00},
		// Density contrast: lognormal around 1 with a cosmic-web
		// power-law tail and an underdense floor near zero.
		gen: func(r *RNG) float64 {
			if r.Float64() < 5e-4 {
				return clip(10*paretoTail(r), 0, 1.38e4)
			}
			return clip(r.LogNormal(-0.934, 1.25), 0, 1.38e4)
		},
	},
	{
		Dataset: "Nyx", Name: "temperature", Dims: []int{512, 512, 512},
		Target: Table1Row{Mean: 8.45e+03, Median: 7.09e+03, Max: 4.78e+06, Min: 2.28e+03, Std: 1.54e+04},
		// Gas temperature: floored at ~2280 K, lognormal body, rare
		// shock-heated tail to millions of K.
		gen: func(r *RNG) float64 {
			if r.Float64() < 5e-4 {
				// Shock-heated tail to millions of K.
				return clip(2280+3e4*paretoTail(r), 2280, 4.78e6)
			}
			return clip(2280+r.LogNormal(8.48, 0.9), 2280, 4.78e6)
		},
	},
}

// paretoTail draws a Pareto-like heavy tail sample in [1, ~1e3).
func paretoTail(r *RNG) float64 {
	u := r.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	x := 1 / (u * u) // Pareto(alpha=0.5)-ish
	if x > 138 {
		x = 138
	}
	return x
}

// haccVelocity builds a particle-velocity generator: a Gaussian core
// with the dataset's mean/median offset plus a mild exponential tail.
func haccVelocity(mean, median, std, max, min float64) func(*RNG) float64 {
	return func(r *RNG) float64 {
		u := r.Float64()
		if u < 0.895 {
			// The core sits a hair below the target median to cancel
			// the upward pull of the shifted tail component.
			return clip(median-0.013*std+std*0.8*r.NormFloat64(), min, max)
		}
		if u < 0.995 {
			// Bulk tail shifted so the overall mean lands near the
			// target despite the median offset.
			shift := (mean - median) * 10
			return clip(shift+std*1.7*r.NormFloat64(), min, max)
		}
		// Rare high-velocity particles reaching the dataset extremes.
		return clip(std*3.5*r.NormFloat64(), min, max)
	}
}

// Fields returns all registered fields in Table 1 order.
func Fields() []Field {
	out := make([]Field, len(fields))
	copy(out, fields)
	return out
}

// Lookup finds a field by "Dataset/Name" key (case-insensitive).
func Lookup(key string) (Field, error) {
	for _, f := range fields {
		if strings.EqualFold(f.Key(), key) {
			return f, nil
		}
	}
	known := make([]string, len(fields))
	for i, f := range fields {
		known[i] = f.Key()
	}
	sort.Strings(known)
	return Field{}, fmt.Errorf("sdrbench: unknown field %q (known: %s)", key, strings.Join(known, ", "))
}

// Datasets returns the distinct dataset names in Table 1 order.
func Datasets() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range fields {
		if !seen[f.Dataset] {
			seen[f.Dataset] = true
			out = append(out, f.Dataset)
		}
	}
	return out
}
