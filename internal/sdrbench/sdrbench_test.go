package sdrbench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"positres/internal/stats"
)

const statSample = 200000

// TestFieldRegistry sanity-checks the Table 1 inventory.
func TestFieldRegistry(t *testing.T) {
	fs := Fields()
	if len(fs) != 16 {
		t.Fatalf("expected 16 fields (Table 1), got %d", len(fs))
	}
	if got := len(Datasets()); got != 5 {
		t.Errorf("expected 5 datasets, got %d", got)
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if seen[f.Key()] {
			t.Errorf("duplicate field key %s", f.Key())
		}
		seen[f.Key()] = true
		if f.FullLen() <= 0 {
			t.Errorf("%s: bad FullLen", f.Key())
		}
	}
	// Spot-check the original sizes against the paper.
	if f, _ := Lookup("CESM/OMEGA"); f.FullLen() != 26*1800*3600 {
		t.Error("CESM/OMEGA dimensions wrong")
	}
	if f, _ := Lookup("HACC/vx"); f.FullLen() != 280953867 {
		t.Error("HACC/vx length wrong")
	}
	if f, _ := Lookup("Nyx/temperature"); f.FullLen() != 512*512*512 {
		t.Error("Nyx/temperature dimensions wrong")
	}
	if _, err := Lookup("nope/nothing"); err == nil {
		t.Error("Lookup of unknown field should fail")
	}
	if f, err := Lookup("hacc/VX"); err != nil || f.Name != "vx" {
		t.Error("Lookup should be case-insensitive")
	}
}

// TestGenerateDeterministic: same (field, seed, n) → identical bytes;
// different seeds or fields → different data.
func TestGenerateDeterministic(t *testing.T) {
	f, _ := Lookup("Hurricane/Uf30")
	a := f.Generate(10000, 42)
	b := f.Generate(10000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := f.Generate(10000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different data")
	}
	g, _ := Lookup("Hurricane/Vf30")
	d := g.Generate(10000, 42)
	same = true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different fields should give different data")
	}
	// A prefix of a longer generation matches a shorter one.
	long := f.Generate(20000, 42)
	for i := range a {
		if long[i] != a[i] {
			t.Fatal("generation is not prefix-stable")
		}
	}
}

// ratio returns how far x is from target in multiplicative terms.
func ratio(x, target float64) float64 {
	if target == 0 {
		return math.Abs(x)
	}
	r := math.Abs(x / target)
	if r < 1 && r > 0 {
		r = 1 / r
	}
	return r
}

// TestGeneratedStatsMatchTable1: every field's synthetic sample must
// land near the paper's Table 1 statistics. Medians and standard
// deviations (which set the posit regime-size distribution, the
// property the experiments depend on) must match within ×3; extremes
// must stay inside the paper's bounds and reach a comparable
// magnitude.
func TestGeneratedStatsMatchTable1(t *testing.T) {
	for _, f := range Fields() {
		f := f
		t.Run(f.Dataset+"_"+f.Name, func(t *testing.T) {
			t.Parallel()
			data := ToFloat64(f.Generate(statSample, 42))
			s := stats.Summarize(data)
			tgt := f.Target

			for _, v := range data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("generator produced a non-finite value")
				}
			}
			// Bounds: never exceed the paper's observed range (with a
			// hair of float32 slack).
			if s.Max > tgt.Max*1.001+1e-12 {
				t.Errorf("max %g exceeds target %g", s.Max, tgt.Max)
			}
			if tgt.Min <= 0 && s.Min < tgt.Min*1.001-1e-12 {
				t.Errorf("min %g below target %g", s.Min, tgt.Min)
			}
			// Median: matching scale (tolerate ×3), and matching sign
			// when the target is meaningfully nonzero.
			switch {
			case tgt.Median == 0:
				if math.Abs(s.Median) > 1e-12 {
					t.Errorf("median %g, want 0", s.Median)
				}
			case math.Abs(tgt.Median) < 0.01*tgt.Std:
				// A median this close to zero relative to the spread is
				// below the sampling noise of a 200k-element median;
				// only require it to stay near zero on the same scale.
				if math.Abs(s.Median) > 0.02*tgt.Std {
					t.Errorf("median %g not near zero (target %g, std %g)", s.Median, tgt.Median, tgt.Std)
				}
			default:
				if r := ratio(s.Median, tgt.Median); r > 3 {
					t.Errorf("median %g vs target %g (ratio %.1f)", s.Median, tgt.Median, r)
				}
				if s.Median*tgt.Median < 0 {
					t.Errorf("median sign: got %g, want sign of %g", s.Median, tgt.Median)
				}
			}
			// Standard deviation within ×3.
			if r := ratio(s.Std, tgt.Std); r > 3 {
				t.Errorf("std %g vs target %g (ratio %.1f)", s.Std, tgt.Std, r)
			}
			// Extremes reach at least a tenth of the target magnitude
			// (the sample is ~1000× smaller than the original field, so
			// deep tails are under-sampled).
			if tgt.Max > 0 && s.Max < tgt.Max/10 {
				t.Errorf("max %g too far below target %g", s.Max, tgt.Max)
			}
			// A negative target min that is vanishingly small relative
			// to the spread (e.g. CESM/CLOUD's -1.14e-17) is float32
			// noise in the original data, not structure.
			if tgt.Min < -1e-6*tgt.Std && s.Min > tgt.Min/10 {
				t.Errorf("min %g too far above target %g", s.Min, tgt.Min)
			}
		})
	}
}

// TestZeroMassFields: the two fields whose Table 1 median/min are
// exactly zero must contain exact zeros.
func TestZeroMassFields(t *testing.T) {
	for _, key := range []string{"Hurricane/PRECIPf48", "Hurricane/CLOUDf48"} {
		f, err := Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		data := f.Generate(50000, 1)
		zeros := 0
		for _, v := range data {
			if v == 0 {
				zeros++
			}
			if v < 0 {
				t.Fatalf("%s: negative value %g in a non-negative field", key, v)
			}
		}
		if zeros == 0 {
			t.Errorf("%s: expected exact zeros", key)
		}
	}
}

// TestRawIO: write/read round trip preserves bits, including negative
// zero and values at the float32 extremes.
func TestRawIO(t *testing.T) {
	data := []float32{0, float32(math.Copysign(0, -1)), 1.5, -2.25e-30, 3.4e38, 1e-45, -7}
	var buf bytes.Buffer
	if err := WriteRaw(&buf, data); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4*len(data) {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), 4*len(data))
	}
	back, err := ReadRaw(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) {
		t.Fatalf("read %d values, want %d", len(back), len(data))
	}
	for i := range data {
		if math.Float32bits(back[i]) != math.Float32bits(data[i]) {
			t.Errorf("element %d: %x vs %x", i, math.Float32bits(back[i]), math.Float32bits(data[i]))
		}
	}
}

func TestRawIOFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "field.f32")
	f, _ := Lookup("CESM/CLOUD")
	data := f.Generate(1000, 9)
	if err := WriteRawFile(path, data); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRawFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("file round trip mismatch at %d", i)
		}
	}
	if _, err := ReadRawFile(filepath.Join(dir, "missing.f32")); err == nil {
		t.Error("reading a missing file should fail")
	}
	// Truncated file: not a multiple of 4 bytes.
	if err := os.WriteFile(filepath.Join(dir, "trunc.f32"), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRawFile(filepath.Join(dir, "trunc.f32")); err == nil {
		t.Error("reading a truncated file should fail")
	}
}

func TestToFloat64(t *testing.T) {
	in := []float32{1.5, -2, 0}
	out := ToFloat64(in)
	if len(out) != 3 || out[0] != 1.5 || out[1] != -2 || out[2] != 0 {
		t.Errorf("ToFloat64 = %v", out)
	}
}

// TestRNGStreams: labeled streams are independent and deterministic.
func TestRNGStreams(t *testing.T) {
	a := NewRNG(1, "x")
	b := NewRNG(1, "x")
	c := NewRNG(1, "y")
	d := NewRNG(2, "x")
	for i := 0; i < 100; i++ {
		va := a.Uint64()
		if va != b.Uint64() {
			t.Fatal("same stream diverged")
		}
		if va == c.Uint64() && va == d.Uint64() {
			t.Fatal("streams look identical")
		}
	}
	// Multi-label streams differ from concatenated labels.
	e := NewRNG(1, "ab", "c")
	f := NewRNG(1, "a", "bc")
	same := true
	for i := 0; i < 10; i++ {
		if e.Uint64() != f.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Error("label separator is not effective")
	}
}

// TestLabelHashEquivalence: the precomputed-hash fast path used by the
// campaign hot loop must reproduce NewRNG's streams bit for bit —
// journaled campaigns replay through these streams, so any divergence
// silently changes every result.
func TestLabelHashEquivalence(t *testing.T) {
	cases := [][]string{
		{"Nyx/temperature", "posit32", "bit17", "42"},
		{"x"},
		{},
		{"", ""},
		{"HACC/vx", "ieee32", "bit0", "0"},
	}
	for _, labels := range cases {
		want := NewRNG(7, labels...)
		got := RNGFromHash(7, NewLabelHash(labels...))
		for i := 0; i < 64; i++ {
			if want.Uint64() != got.Uint64() {
				t.Fatalf("RNGFromHash diverged from NewRNG for labels %q", labels)
			}
		}
	}
	// WithInt must hash exactly like the decimal string label.
	ints := []int{0, 1, 9, 10, 99, 313, 65535, 1 << 30, -1, -313}
	for _, n := range ints {
		a := NewLabelHash("prefix").WithInt(n)
		b := NewLabelHash("prefix").WithLabel(strconv.Itoa(n))
		if a != b {
			t.Errorf("WithInt(%d) = %#x, WithLabel(%q) = %#x", n, a, strconv.Itoa(n), b)
		}
	}
	// Prefix reuse: extending a saved prefix equals flat hashing.
	base := NewLabelHash("f", "c").WithLabel("bit3")
	if base.WithInt(12) != NewLabelHash("f", "c", "bit3", "12") {
		t.Error("prefix extension diverged from flat label list")
	}
}

// TestRNGDistributions: basic moment checks for the variate
// generators.
func TestRNGDistributions(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sumU, sumN, sumN2, sumE float64
	for i := 0; i < n; i++ {
		sumU += r.Float64()
		x := r.NormFloat64()
		sumN += x
		sumN2 += x * x
		sumE += r.ExpFloat64()
	}
	if m := sumU / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean %v", m)
	}
	if m := sumN / n; math.Abs(m) > 0.02 {
		t.Errorf("normal mean %v", m)
	}
	if v := sumN2 / n; math.Abs(v-1) > 0.03 {
		t.Errorf("normal variance %v", v)
	}
	if m := sumE / n; math.Abs(m-1) > 0.02 {
		t.Errorf("exponential mean %v", m)
	}
	// Intn bounds and coverage.
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Errorf("Intn never produced %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

// TestLogNormalMedian: LogNormal's median is exp(mu).
func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(11)
	data := make([]float64, 50000)
	for i := range data {
		data[i] = r.LogNormal(2, 0.7)
	}
	med := stats.Median(data)
	if math.Abs(med-math.Exp(2))/math.Exp(2) > 0.05 {
		t.Errorf("lognormal median %v, want ~%v", med, math.Exp(2))
	}
}
