package sdrbench

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"positres/internal/atomicio"
)

// The SDRBench distribution ships each field as a headerless raw file
// of little-endian IEEE-754 binary32 values; the paper's campaign
// "reads a binary file containing a field from a scientific data set
// and loads it into an array". These helpers reproduce that format.

// WriteRaw writes values as little-endian float32 to w.
func WriteRaw(w io.Writer, data []float32) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("sdrbench: write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadRaw reads every little-endian float32 from r.
func ReadRaw(r io.Reader) ([]float32, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out []float32
	var buf [4]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sdrbench: read: %w", err)
		}
		out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(buf[:])))
	}
}

// WriteRawFile writes data to path in raw float32 layout, atomically:
// a crash mid-write never leaves a truncated dataset at path.
func WriteRawFile(path string, data []float32) error {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteRaw(w, data)
	})
	if err != nil {
		return fmt.Errorf("sdrbench: %w", err)
	}
	return nil
}

// ReadRawFile loads a raw float32 file.
func ReadRawFile(path string) ([]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sdrbench: %w", err)
	}
	defer f.Close()
	return ReadRaw(f)
}

// ToFloat64 widens a float32 slice (the campaign operates on float64
// internally, exactly as the paper's C harness promotes floats).
func ToFloat64(in []float32) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}
