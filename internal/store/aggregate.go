package store

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"positres/internal/artifact"
	"positres/internal/core"
	"positres/internal/stats"
)

// DocSchema tags the aggregate summary JSON document; readers verify
// it with artifact.CheckSchema before trusting any field.
const DocSchema = "positres-aggregate/v1"

// bitState is the online aggregate of one (field, codec, bit): the
// running counterpart of core.aggregateOne, folded per trial at
// append time so finalizing is O(1) in trial count. Count, mean, max,
// geometric mean and field shares reproduce the slice-based
// aggregation exactly (same serial fold order; means reassociate only
// past stats' parallel threshold); medians come from the sketch and
// are approximate within SketchAlpha.
type bitState struct {
	trials       int
	catastrophic int
	fieldCounts  map[string]uint64
	rel, abs     stats.Moments
	relSumLog    float64 // Σ ln(relErr) over positive finite — GeoMean's serial fold
	relLogN      uint64
	relSketch    *Sketch
	absSketch    *Sketch
}

// newBitState returns an empty per-bit aggregate.
func newBitState() *bitState {
	return &bitState{
		fieldCounts: map[string]uint64{},
		rel:         stats.NewMoments(),
		abs:         stats.NewMoments(),
		relSketch:   NewSketch(),
		absSketch:   NewSketch(),
	}
}

// fold absorbs one trial, mirroring core.aggregateOne's per-trial
// step: every trial contributes to the field attribution, only
// non-catastrophic ones to the error statistics.
func (st *bitState) fold(tr *core.Trial) {
	st.trials++
	st.fieldCounts[tr.FieldName]++
	if tr.Catastrophic {
		st.catastrophic++
		return
	}
	st.rel.Add(tr.RelErr)
	st.abs.Add(tr.AbsErr)
	if tr.RelErr > 0 && !math.IsInf(tr.RelErr, 0) {
		st.relSumLog += math.Log(tr.RelErr)
		st.relLogN++
	}
	st.relSketch.Add(tr.RelErr)
	st.absSketch.Add(tr.AbsErr)
}

// agg finalizes the state into a core.BitAgg. FieldShare repeats the
// 1/n addition per counted trial so the floating-point result is
// bit-identical to the slice path, not just close.
func (st *bitState) agg(bit int) core.BitAgg {
	a := core.BitAgg{
		Bit:          bit,
		Trials:       st.trials,
		Catastrophic: st.catastrophic,
		FieldShare:   map[string]float64{},
	}
	inv := 1 / float64(st.trials)
	for name, n := range st.fieldCounts {
		var share float64
		for i := uint64(0); i < n; i++ {
			share += inv
		}
		a.FieldShare[name] = share
	}
	if st.trials-st.catastrophic == 0 {
		a.MeanRelErr = math.NaN()
		a.MedianRelErr = math.NaN()
		a.GeoRelErr = math.NaN()
		a.MaxRelErr = math.NaN()
		a.MeanAbsErr = math.NaN()
		a.MedianAbsErr = math.NaN()
		a.MaxAbsErr = math.NaN()
		return a
	}
	a.MeanRelErr = st.rel.Mean()
	a.MedianRelErr = st.relSketch.Quantile(0.5)
	if st.relLogN == 0 {
		a.GeoRelErr = math.NaN()
	} else {
		a.GeoRelErr = math.Exp(st.relSumLog / float64(st.relLogN))
	}
	a.MaxRelErr = st.rel.Max()
	a.MeanAbsErr = st.abs.Mean()
	a.MedianAbsErr = st.absSketch.Quantile(0.5)
	a.MaxAbsErr = st.abs.Max()
	return a
}

// finalizeBits turns a per-bit state map into core.BitAggs sorted by
// bit, the same shape core.AggregateByBit returns.
func finalizeBits(bits map[int]*bitState) []core.BitAgg {
	order := make([]int, 0, len(bits))
	for b := range bits {
		order = append(order, b)
	}
	sort.Ints(order)
	out := make([]core.BitAgg, 0, len(order))
	for _, b := range order {
		out = append(out, bits[b].agg(b))
	}
	return out
}

// Float is a float64 that survives JSON round-trips when non-finite:
// NaN and ±Inf marshal as the strings "NaN", "+Inf" and "-Inf"
// (encoding/json rejects them as bare numbers). It mirrors the serve
// package's JSON float convention so aggregate documents and campaign
// status payloads speak one dialect.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both bare
// numbers and the three non-finite strings.
func (f *Float) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	case `"+Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return fmt.Errorf("store: float: %w", err)
	}
	*f = Float(v)
	return nil
}

// BitSummary is one bit position's aggregate in the JSON document —
// core.BitAgg with JSON-safe floats and an explicit note that the
// medians are sketch-derived.
type BitSummary struct {
	// Bit is the flipped bit position, 0 = LSB.
	Bit int `json:"bit"`
	// Trials counts all trials at this position.
	Trials int `json:"trials"`
	// Catastrophic counts trials whose faulty value decoded to
	// NaN/Inf/NaR (or whose original was zero).
	Catastrophic int `json:"catastrophic"`
	// The error aggregates below summarize the non-catastrophic
	// trials only, like core.BitAgg. The two medians are quantile-
	// sketch estimates within SketchAlpha relative accuracy; the rest
	// are exact online aggregates.
	MeanRelErr   Float `json:"mean_rel_err"`   // arithmetic mean relative error
	MedianRelErr Float `json:"median_rel_err"` // sketch-estimated median relative error
	GeoRelErr    Float `json:"geo_rel_err"`    // geometric mean relative error
	MaxRelErr    Float `json:"max_rel_err"`    // worst observed relative error
	MeanAbsErr   Float `json:"mean_abs_err"`   // arithmetic mean absolute error
	MedianAbsErr Float `json:"median_abs_err"` // sketch-estimated median absolute error
	MaxAbsErr    Float `json:"max_abs_err"`    // worst observed absolute error
	// FieldShare is the fraction of trials whose flipped bit fell in
	// each named bit-field at this position.
	FieldShare map[string]Float `json:"field_share"`
}

// AggregateDoc is the positres-aggregate/v1 summary of one
// (field, codec) pair: what GET /v1/campaigns/{id}/results serves
// under Accept: application/json, and what /metrics embeds live per
// running campaign. Its size is O(bits), independent of trial count.
type AggregateDoc struct {
	// Schema is always DocSchema.
	Schema string `json:"schema"`
	// Field is the dataset field key (e.g. "hurricane/Uf48").
	Field string `json:"field"`
	// Codec is the number format the campaign encoded with.
	Codec string `json:"codec"`
	// Trials is the total rows aggregated across all bits.
	Trials uint64 `json:"trials"`
	// Sealed reports whether the document describes a completed
	// (sealed) store; false in live mid-campaign snapshots.
	Sealed bool `json:"sealed"`
	// Bits holds one summary per bit position, ascending.
	Bits []BitSummary `json:"bits"`
}

// bitSummary converts a finalized core.BitAgg into its JSON form.
func bitSummary(a core.BitAgg) BitSummary {
	share := make(map[string]Float, len(a.FieldShare))
	for name, v := range a.FieldShare {
		share[name] = Float(v)
	}
	return BitSummary{
		Bit:          a.Bit,
		Trials:       a.Trials,
		Catastrophic: a.Catastrophic,
		MeanRelErr:   Float(a.MeanRelErr),
		MedianRelErr: Float(a.MedianRelErr),
		GeoRelErr:    Float(a.GeoRelErr),
		MaxRelErr:    Float(a.MaxRelErr),
		MeanAbsErr:   Float(a.MeanAbsErr),
		MedianAbsErr: Float(a.MedianAbsErr),
		MaxAbsErr:    Float(a.MaxAbsErr),
		FieldShare:   share,
	}
}

// BitAgg converts a BitSummary back to the core aggregate shape the
// figure builders consume.
func (b BitSummary) BitAgg() core.BitAgg {
	share := make(map[string]float64, len(b.FieldShare))
	for name, v := range b.FieldShare {
		share[name] = float64(v)
	}
	return core.BitAgg{
		Bit:          b.Bit,
		Trials:       b.Trials,
		Catastrophic: b.Catastrophic,
		MeanRelErr:   float64(b.MeanRelErr),
		MedianRelErr: float64(b.MedianRelErr),
		GeoRelErr:    float64(b.GeoRelErr),
		MaxRelErr:    float64(b.MaxRelErr),
		MeanAbsErr:   float64(b.MeanAbsErr),
		MedianAbsErr: float64(b.MedianAbsErr),
		MaxAbsErr:    float64(b.MaxAbsErr),
		FieldShare:   share,
	}
}

// newDoc assembles a document from finalized aggregates.
func newDoc(field, codec string, sealed bool, aggs []core.BitAgg) *AggregateDoc {
	doc := &AggregateDoc{
		Schema: DocSchema,
		Field:  field,
		Codec:  codec,
		Sealed: sealed,
		Bits:   make([]BitSummary, 0, len(aggs)),
	}
	for _, a := range aggs {
		doc.Trials += uint64(a.Trials)
		doc.Bits = append(doc.Bits, bitSummary(a))
	}
	return doc
}

// BitAggs converts the document's summaries back to core.BitAggs, in
// document (ascending bit) order.
func (d *AggregateDoc) BitAggs() []core.BitAgg {
	out := make([]core.BitAgg, 0, len(d.Bits))
	for _, b := range d.Bits {
		out = append(out, b.BitAgg())
	}
	return out
}

// ReadDoc parses and schema-checks one aggregate document.
func ReadDoc(r io.Reader) (*AggregateDoc, error) {
	var doc AggregateDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: aggregate document: %w", err)
	}
	if err := artifact.CheckSchema(doc.Schema, DocSchema); err != nil {
		return nil, err
	}
	return &doc, nil
}
