package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"positres/internal/stats"
)

// Footer sanity bounds: generous multiples of anything a real
// campaign produces, tight enough that a corrupted count cannot drive
// a giant allocation before validation fails.
const (
	maxFooterBlocks = 1 << 20 // shards per (field, codec)
	maxFooterBits   = 1 << 12 // bit positions per codec (real max: 64)
)

// footerData is the decoded footer: the block index plus the per-bit
// aggregate states, everything a reader needs to serve rows in bit
// order and summaries in O(bits).
type footerData struct {
	headCRC uint32 // CRC-32 of the file header (magic..codec string)
	blocks  []blockInfo
	rows    uint64
	bits    map[int]*bitState
}

// appendFooter appends the framed footer — length prefix, payload
// (magic, header CRC, block index, total rows, aggregates by
// ascending bit), CRC-32 of the payload. headCRC backfills integrity
// for the header, which no frame of its own covers: a reader
// recomputes it over the header bytes it parsed, so a flipped bit in
// the (field, codec) identity fails Open instead of silently
// relabeling every row.
func appendFooter(dst []byte, headCRC uint32, blocks []blockInfo, rows uint64, bits map[int]*bitState) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix placeholder
	p := len(dst)                 // payload start
	dst = append(dst, footerMagic...)
	dst = binary.AppendUvarint(dst, uint64(headCRC))
	dst = binary.AppendUvarint(dst, uint64(len(blocks)))
	for _, b := range blocks {
		dst = binary.AppendUvarint(dst, uint64(b.Offset))
		dst = binary.AppendUvarint(dst, uint64(b.Length))
		dst = binary.AppendUvarint(dst, uint64(b.Rows))
		dst = binary.AppendUvarint(dst, uint64(b.BitLo))
		dst = binary.AppendUvarint(dst, uint64(b.BitHi))
	}
	dst = binary.AppendUvarint(dst, rows)

	order := make([]int, 0, len(bits))
	for b := range bits {
		order = append(order, b)
	}
	sort.Ints(order)
	dst = binary.AppendUvarint(dst, uint64(len(order)))
	for _, bit := range order {
		st := bits[bit]
		dst = binary.AppendUvarint(dst, uint64(bit))
		dst = binary.AppendUvarint(dst, uint64(st.trials))
		dst = binary.AppendUvarint(dst, uint64(st.catastrophic))
		names := make([]string, 0, len(st.fieldCounts))
		for name := range st.fieldCounts {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic bytes for identical state
		dst = binary.AppendUvarint(dst, uint64(len(names)))
		for _, name := range names {
			dst = appendString(dst, name)
			dst = binary.AppendUvarint(dst, st.fieldCounts[name])
		}
		dst = appendMoments(dst, st.rel)
		dst = appendMoments(dst, st.abs)
		dst = appendFixedFloat(dst, st.relSumLog)
		dst = binary.AppendUvarint(dst, st.relLogN)
		dst = appendSketch(dst, st.relSketch)
		dst = appendSketch(dst, st.absSketch)
	}
	crc := crc32.ChecksumIEEE(dst[p:])
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(dst)-p))
	return dst
}

// appendMoments serializes a moment accumulator's portable state.
func appendMoments(dst []byte, m stats.Moments) []byte {
	s := m.State()
	dst = binary.AppendUvarint(dst, uint64(s.N))
	dst = appendFixedFloat(dst, s.Mean)
	dst = appendFixedFloat(dst, s.M2)
	dst = appendFixedFloat(dst, s.Min)
	return appendFixedFloat(dst, s.Max)
}

// appendFixedFloat appends one float64 as its little-endian bit
// pattern — lossless, including NaN payloads and signed zeros.
func appendFixedFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// readMoments decodes what appendMoments wrote.
func readMoments(c *cursor) stats.Moments {
	var s stats.MomentsState
	s.N = c.intv()
	s.Mean = c.float()
	s.M2 = c.float()
	s.Min = c.float()
	s.Max = c.float()
	return stats.MomentsFromState(s)
}

// unwrapFrame validates one complete length-prefixed CRC frame
// (exactly the bytes in data) opened by magic, returning the payload
// after the magic. The CRC is verified before any content is
// interpreted.
func unwrapFrame(data []byte, magic string) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes, need 4-byte length prefix", ErrCorrupt, len(data))
	}
	frameLen := binary.LittleEndian.Uint32(data)
	if frameLen > MaxBlockBytes {
		return nil, fmt.Errorf("%w: declared length %d exceeds %d", ErrCorrupt, frameLen, MaxBlockBytes)
	}
	if uint64(frameLen) != uint64(len(data)-4) {
		return nil, fmt.Errorf("%w: declared length %d, %d bytes present", ErrCorrupt, frameLen, len(data)-4)
	}
	if frameLen < uint32(4+len(magic)) {
		return nil, fmt.Errorf("%w: frame length %d below CRC and magic size", ErrCorrupt, frameLen)
	}
	payload := data[4 : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("%w: crc32 %08x, frame announces %08x", ErrCorrupt, got, wantCRC)
	}
	if string(payload[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrCorrupt, payload[:len(magic)], magic)
	}
	return payload[len(magic):], nil
}

// parseFooter decodes a framed footer. dataEnd is the file offset
// where block bytes must end (the footer frame's own offset): every
// index entry is bounds-checked against it before any ReadAt, so a
// corrupted index cannot read past the data region or allocate
// unboundedly (FuzzFooterIndex pins this).
func parseFooter(frame []byte, dataEnd int64) (*footerData, error) {
	payload, err := unwrapFrame(frame, footerMagic)
	if err != nil {
		return nil, err
	}
	c := &cursor{buf: payload}
	headCRC := c.uvarint()
	if c.err == nil && headCRC > math.MaxUint32 {
		c.fail("header crc %d overflows 32 bits", headCRC)
	}
	nBlocks := c.uvarint()
	if c.err == nil && nBlocks > maxFooterBlocks {
		c.fail("block index of %d entries exceeds %d", nBlocks, maxFooterBlocks)
	}
	fd := &footerData{headCRC: uint32(headCRC), bits: map[int]*bitState{}}
	var sumRows uint64
	for i := uint64(0); c.err == nil && i < nBlocks; i++ {
		var b blockInfo
		off := c.uvarint()
		if c.err == nil && off > math.MaxInt64 {
			c.fail("block %d offset %d overflows", i, off)
		}
		b.Offset = int64(off)
		b.Length = c.intv()
		b.Rows = c.intv()
		b.BitLo = c.intv()
		b.BitHi = c.intv()
		if c.err != nil {
			break
		}
		if b.Length > MaxBlockBytes {
			c.fail("block %d length %d exceeds %d", i, b.Length, MaxBlockBytes)
			break
		}
		if b.BitHi <= b.BitLo {
			c.fail("block %d bit range [%d, %d)", i, b.BitLo, b.BitHi)
			break
		}
		if b.Offset < int64(len(fileMagic))+1 || b.Offset+int64(b.Length) > dataEnd {
			c.fail("block %d span [%d, %d) outside data region [%d, %d)",
				i, b.Offset, b.Offset+int64(b.Length), len(fileMagic)+1, dataEnd)
			break
		}
		sumRows += uint64(b.Rows)
		fd.blocks = append(fd.blocks, b)
	}
	fd.rows = c.uvarint()
	if c.err == nil && fd.rows != sumRows {
		c.fail("footer declares %d rows, block index sums to %d", fd.rows, sumRows)
	}

	nBits := c.uvarint()
	if c.err == nil && nBits > maxFooterBits {
		c.fail("aggregate index of %d bits exceeds %d", nBits, maxFooterBits)
	}
	for i := uint64(0); c.err == nil && i < nBits; i++ {
		bit := c.intv()
		st := newBitState()
		st.trials = c.intv()
		st.catastrophic = c.intv()
		if c.err == nil && st.catastrophic > st.trials {
			c.fail("bit %d: %d catastrophic of %d trials", bit, st.catastrophic, st.trials)
			break
		}
		nNames := c.uvarint()
		if c.err == nil && nNames > maxNames {
			c.fail("bit %d: name table of %d entries exceeds %d", bit, nNames, maxNames)
			break
		}
		for j := uint64(0); c.err == nil && j < nNames; j++ {
			name := c.str()
			st.fieldCounts[name] = c.uvarint()
		}
		st.rel = readMoments(c)
		st.abs = readMoments(c)
		st.relSumLog = c.float()
		st.relLogN = c.uvarint()
		st.relSketch = readSketch(c)
		st.absSketch = readSketch(c)
		if c.err == nil {
			if _, dup := fd.bits[bit]; dup {
				c.fail("bit %d listed twice in aggregate index", bit)
				break
			}
			fd.bits[bit] = st
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.buf) {
		return nil, fmt.Errorf("%w: %d trailing footer bytes", ErrCorrupt, len(c.buf)-c.off)
	}
	return fd, nil
}
