package store

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"positres/internal/core"
)

// docExampleHex is the worked example of docs/STORE.md ("Worked
// example"), byte for byte. If this test fails after an intentional
// format change, bump Version and rewrite the document's example —
// never patch the constant to match drifting bytes.
const docExampleHex = `
50545343010a64656d6f2f6669656c6406706f7369743845000000505453420f010201086672616374
696f6e0101000444460002000000000000f83f000000000000f83f000000000000fc3f000000000000
d03f555555555555c53f337b56167e00000050545346adafb3d107011749010102010101010001086672
616374696f6e0101555555555555c53f0000000000000000555555555555c53f555555555555c53f0100
0000000000d03f0000000000000000000000000000d03f000000000000d03f02202afa0babfcbf010000
000001b101010000000001890101942b514d8200000050545345`

// docExampleTrial is the same trial docs/WIRE.md uses: 1.5 as posit8
// (0x44), bit 1 flipped to 0x46 → 1.75, a fraction hit at regime k=1.
var docExampleTrial = core.Trial{
	Field: "demo/field", Codec: "posit8",
	Bit: 1, Seq: 0, Index: 4,
	OrigValue: 1.5, ReprValue: 1.5,
	OrigBits: 0x44, FaultyBits: 0x46, FaultyVal: 1.75,
	FieldName: "fraction", RegimeK: 1,
	AbsErr: 0.25, RelErr: 1.0 / 6.0, Catastrophic: false,
}

// TestDocExampleStore pins the docs/STORE.md worked example against
// the real Writer and Open — the spec's declared tiebreaker.
func TestDocExampleStore(t *testing.T) {
	want, err := hex.DecodeString(strings.Join(strings.Fields(docExampleHex), ""))
	if err != nil {
		t.Fatalf("docExampleHex is not valid hex: %v", err)
	}

	path := filepath.Join(t.TempDir(), "demo.pts")
	w, err := NewWriter(path, "demo/field", "posit8")
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.AppendShard(1, 2, []core.Trial{docExampleTrial}); err != nil {
		t.Fatalf("AppendShard: %v", err)
	}
	if err := w.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read sealed store: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("sealed store bytes diverge from docs/STORE.md:\n got %x\nwant %x", got, want)
	}

	// And the read side agrees with the document's annotations.
	rd, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer rd.Close()
	if err := rd.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rd.Field() != "demo/field" || rd.Codec() != "posit8" || rd.Rows() != 1 {
		t.Fatalf("Open read (%q, %q, %d rows), want (demo/field, posit8, 1)",
			rd.Field(), rd.Codec(), rd.Rows())
	}
	trials, err := rd.Trials()
	if err != nil {
		t.Fatalf("Trials: %v", err)
	}
	if len(trials) != 1 || trials[0] != docExampleTrial {
		t.Fatalf("decoded trials = %+v, want the doc example trial", trials)
	}
}
