package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"positres/internal/atomicio"
	"positres/internal/core"
)

// blockInfo is one footer index entry: where a block's bytes live and
// which (bit range, row count) they carry, so a reader can serve rows
// in bit order and seek without scanning.
type blockInfo struct {
	Offset int64 // file offset of the block's length prefix
	Length int   // total block bytes (prefix + payload + CRC)
	Rows   int   // trial rows in the block
	BitLo  int   // first bit position covered (inclusive)
	BitHi  int   // one past the last bit position covered (exclusive)
}

// Writer builds one .pts file: a header, one columnar block per
// appended shard, and at Seal a footer indexing the blocks and
// carrying the online aggregates. All bytes stream through an
// atomicio.PendingFile, so the final path appears only on a
// successful Seal; Abort (or a crash) leaves at most a temp file.
// Writer is safe for concurrent use; the aggregates fold under the
// same lock that orders the blocks.
type Writer struct {
	mu      sync.Mutex
	pf      *atomicio.PendingFile
	path    string
	field   string
	codec   string
	headCRC uint32 // CRC-32 of the header bytes, sealed into the footer
	blocks  []blockInfo
	bits    map[int]*bitState
	rows    uint64
	done    bool  // sealed or aborted
	err     error // first write failure; sticky, forces Abort

	// Scratch reused across AppendShard calls so the steady-state
	// append path stays at a few allocations per shard.
	buf     []byte
	nameIdx map[string]int
	names   []string
	rowIdx  []int
}

// NewWriter opens a pending store file at path for one (field, codec)
// pair and writes its header. Callers must finish with Seal or Abort.
func NewWriter(path, field, codec string) (*Writer, error) {
	if len(field) > maxStringLen || len(codec) > maxStringLen {
		return nil, fmt.Errorf("%w: field/codec name over %d bytes", ErrCorrupt, maxStringLen)
	}
	pf, err := atomicio.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		pf:      pf,
		path:    path,
		field:   field,
		codec:   codec,
		bits:    map[int]*bitState{},
		nameIdx: map[string]int{},
	}
	hdr := append([]byte(fileMagic), Version)
	hdr = appendString(hdr, field)
	hdr = appendString(hdr, codec)
	w.headCRC = crc32.ChecksumIEEE(hdr)
	if _, err := pf.Write(hdr); err != nil {
		pf.Abort()
		return nil, fmt.Errorf("store: header %s: %w", path, err)
	}
	return w, nil
}

// Field returns the dataset field key the store holds.
func (w *Writer) Field() string { return w.field }

// Codec returns the number format the store holds.
func (w *Writer) Codec() string { return w.codec }

// Rows returns the trial rows appended so far.
func (w *Writer) Rows() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rows
}

// AppendShard encodes one shard's trials as a columnar block and
// folds them into the per-bit aggregates. Every trial must carry the
// writer's (field, codec) and a bit within [bitLo, bitHi) — the
// half-open shard range convention internal/runner uses; violations are append errors, not
// silent corruption. After any error the writer is spent: further
// appends fail and Seal aborts.
func (w *Writer) AppendShard(bitLo, bitHi int, trials []core.Trial) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return fmt.Errorf("%w: %s", ErrSealed, w.path)
	}
	if w.err != nil {
		return w.err
	}
	offset, err := w.pf.Offset()
	if err != nil {
		w.err = fmt.Errorf("store: offset %s: %w", w.path, err)
		return w.err
	}
	buf, err := w.appendBlock(w.buf[:0], bitLo, bitHi, trials)
	w.buf = buf[:0] // keep the grown capacity even on error
	if err != nil {
		return err // encoding rejected the input; the file is still clean
	}
	if _, err := w.pf.Write(buf); err != nil {
		w.err = fmt.Errorf("store: block %s: %w", w.path, err)
		return w.err
	}
	w.blocks = append(w.blocks, blockInfo{
		Offset: offset,
		Length: len(buf),
		Rows:   len(trials),
		BitLo:  bitLo,
		BitHi:  bitHi,
	})
	for i := range trials {
		tr := &trials[i]
		st := w.bits[tr.Bit]
		if st == nil {
			st = newBitState()
			w.bits[tr.Bit] = st
		}
		st.fold(tr)
	}
	w.rows += uint64(len(trials))
	return nil
}

// appendBlock validates trials against the shard invariants and
// appends their columnar block encoding to dst: a length prefix, the
// block payload (magic, column count, bit range, bit-field name
// table, then each column contiguously) and the payload's CRC-32.
func (w *Writer) appendBlock(dst []byte, bitLo, bitHi int, trials []core.Trial) ([]byte, error) {
	if bitLo < 0 || bitHi <= bitLo {
		return nil, fmt.Errorf("%w: bit range [%d, %d)", ErrCorrupt, bitLo, bitHi)
	}
	// First pass: shard invariants and the block's name vocabulary.
	clear(w.nameIdx)
	w.names = w.names[:0]
	w.rowIdx = w.rowIdx[:0]
	for i := range trials {
		tr := &trials[i]
		if tr.Field != w.field || tr.Codec != w.codec {
			return nil, fmt.Errorf("%w: mixed (field, codec) in one store: (%s, %s) vs (%s, %s)",
				ErrCorrupt, tr.Field, tr.Codec, w.field, w.codec)
		}
		if tr.Bit < bitLo || tr.Bit >= bitHi {
			return nil, fmt.Errorf("%w: trial bit %d outside shard range [%d, %d)",
				ErrCorrupt, tr.Bit, bitLo, bitHi)
		}
		j, ok := w.nameIdx[tr.FieldName]
		if !ok {
			j = len(w.names)
			if j >= maxNames {
				return nil, fmt.Errorf("%w: more than %d distinct bit-field names", ErrCorrupt, maxNames)
			}
			if len(tr.FieldName) > maxStringLen {
				return nil, fmt.Errorf("%w: bit-field name over %d bytes", ErrCorrupt, maxStringLen)
			}
			w.nameIdx[tr.FieldName] = j
			w.names = append(w.names, tr.FieldName)
		}
		w.rowIdx = append(w.rowIdx, j)
	}

	// Payload, then patch the length prefix and append the CRC —
	// wire.AppendFrame's framing, column-major inside.
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix placeholder
	p := len(dst)                 // payload start
	dst = append(dst, blockMagic...)
	dst = append(dst, byte(len(trialWireHeader)))
	dst = binary.AppendUvarint(dst, uint64(bitLo))
	dst = binary.AppendUvarint(dst, uint64(bitHi))
	dst = binary.AppendUvarint(dst, uint64(len(w.names)))
	for _, nm := range w.names {
		dst = appendString(dst, nm)
	}
	dst = binary.AppendUvarint(dst, uint64(len(trials)))
	for i := range trials {
		dst = binary.AppendUvarint(dst, uint64(trials[i].Bit))
	}
	for i := range trials {
		dst = binary.AppendUvarint(dst, uint64(trials[i].Seq))
	}
	for i := range trials {
		dst = binary.AppendUvarint(dst, uint64(trials[i].Index))
	}
	for i := range trials {
		dst = binary.AppendUvarint(dst, trials[i].OrigBits)
	}
	for i := range trials {
		dst = binary.AppendUvarint(dst, trials[i].FaultyBits)
	}
	for i := range trials {
		meta := byte(w.rowIdx[i]) << 1
		if trials[i].Catastrophic {
			meta |= 1
		}
		dst = append(dst, meta)
	}
	for i := range trials {
		dst = binary.AppendVarint(dst, int64(trials[i].RegimeK))
	}
	dst = appendFloatColumn(dst, trials, func(tr *core.Trial) float64 { return tr.OrigValue })
	dst = appendFloatColumn(dst, trials, func(tr *core.Trial) float64 { return tr.ReprValue })
	dst = appendFloatColumn(dst, trials, func(tr *core.Trial) float64 { return tr.FaultyVal })
	dst = appendFloatColumn(dst, trials, func(tr *core.Trial) float64 { return tr.AbsErr })
	dst = appendFloatColumn(dst, trials, func(tr *core.Trial) float64 { return tr.RelErr })
	crc := crc32.ChecksumIEEE(dst[p:])
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(dst)-p))
	return dst, nil
}

// appendFloatColumn appends one float64 column as raw little-endian
// bit patterns — lossless, like the wire format's fixed row tail.
func appendFloatColumn(dst []byte, trials []core.Trial, get func(*core.Trial) float64) []byte {
	var fixed [8]byte
	for i := range trials {
		binary.LittleEndian.PutUint64(fixed[:], math.Float64bits(get(&trials[i])))
		dst = append(dst, fixed[:]...)
	}
	return dst
}

// BitAggs snapshots the live per-bit aggregates, sorted by bit — the
// mid-campaign view /metrics serves. O(bits), never rescans trials.
func (w *Writer) BitAggs() []core.BitAgg {
	w.mu.Lock()
	defer w.mu.Unlock()
	return finalizeBits(w.bits)
}

// Doc snapshots the live aggregates as an unsealed aggregate
// document.
func (w *Writer) Doc() *AggregateDoc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return newDoc(w.field, w.codec, false, finalizeBits(w.bits))
}

// Seal writes the footer (block index + aggregates), the locating
// trailer, and commits the file to its final path. After Seal the
// writer is spent.
func (w *Writer) Seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return fmt.Errorf("%w: %s", ErrSealed, w.path)
	}
	if w.err != nil {
		w.done = true
		w.pf.Abort()
		return w.err
	}
	w.done = true
	buf := appendFooter(w.buf[:0], w.headCRC, w.blocks, w.rows, w.bits)
	w.buf = buf[:0]
	// Trailer: the footer frame's byte span plus the end magic, so a
	// reader finds the footer by seeking 8 bytes from EOF.
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(buf)))
	buf = append(buf, endMagic...)
	if _, err := w.pf.Write(buf); err != nil {
		w.pf.Abort()
		return fmt.Errorf("store: footer %s: %w", w.path, err)
	}
	return w.pf.Commit()
}

// Abort discards the pending file. Safe to call after Seal (no-op),
// so callers can defer it unconditionally.
func (w *Writer) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return
	}
	w.done = true
	w.pf.Abort()
}
