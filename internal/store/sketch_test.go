package store

import (
	"math"
	"math/rand"
	"testing"
)

// sketchQuantileGrid is the probe set every accuracy test walks.
var sketchQuantileGrid = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// adversarialSets builds the distributions the satellite asks for:
// decades-spanning lognormal (posit error tails), duplicate-heavy
// (quantized errors), and a mix of negatives and exact zeros.
func adversarialSets() map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	lognormal := make([]float64, 5000)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.NormFloat64()*8 - 10) // ~e⁻³⁴ … e¹⁴
	}
	duplicates := make([]float64, 5000)
	levels := []float64{1e-12, 1e-12, 1e-12, 3.5e-4, 3.5e-4, 0.125, 7e9}
	for i := range duplicates {
		duplicates[i] = levels[rng.Intn(len(levels))]
	}
	signed := make([]float64, 5000)
	for i := range signed {
		switch rng.Intn(4) {
		case 0:
			signed[i] = 0
		case 1:
			signed[i] = -math.Exp(rng.NormFloat64() * 5)
		default:
			signed[i] = math.Exp(rng.NormFloat64() * 5)
		}
	}
	return map[string][]float64{
		"lognormal":  lognormal,
		"duplicates": duplicates,
		"signed":     signed,
	}
}

// TestSketchErrorBounds pins the accuracy guarantee: on each
// adversarial distribution, every probed quantile lands within
// SketchAlpha relative error of the exact order statistic at the
// sketch's rank convention. Exact zeros must come back as exact zeros.
func TestSketchErrorBounds(t *testing.T) {
	for name, data := range adversarialSets() {
		s := NewSketch()
		for _, x := range data {
			s.Add(x)
		}
		if s.Count() != uint64(len(data)) {
			t.Fatalf("%s: count %d, want %d", name, s.Count(), len(data))
		}
		for _, q := range sketchQuantileGrid {
			got := s.Quantile(q)
			want := exactRank(data, q)
			if want == 0 {
				if got != 0 {
					t.Errorf("%s q=%v: %v, want exact 0", name, q, got)
				}
				continue
			}
			if got*want <= 0 {
				t.Errorf("%s q=%v: %v has wrong sign, want %v", name, q, got, want)
				continue
			}
			if math.Abs(got-want) > 1.0001*SketchAlpha*math.Abs(want) {
				t.Errorf("%s q=%v: %v, want %v within %v%%", name, q, got, want, 100*SketchAlpha)
			}
		}
	}
}

// TestSketchMergeEquivalence pins mergeability: merge(sketch(a),
// sketch(b)) must equal sketch(a∪b) bucket for bucket when nothing has
// collapsed, so quantiles are bit-identical — the property that makes
// per-shard aggregation order-independent.
func TestSketchMergeEquivalence(t *testing.T) {
	for name, data := range adversarialSets() {
		whole := NewSketch()
		left, right := NewSketch(), NewSketch()
		for i, x := range data {
			whole.Add(x)
			if i%3 == 0 {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		if left.Count() != whole.Count() {
			t.Fatalf("%s: merged count %d, want %d", name, left.Count(), whole.Count())
		}
		if left.zero != whole.zero {
			t.Fatalf("%s: merged zero count %d, want %d", name, left.zero, whole.zero)
		}
		sameBuckets(t, name+"/pos", &left.pos, &whole.pos)
		sameBuckets(t, name+"/neg", &left.neg, &whole.neg)
		for _, q := range sketchQuantileGrid {
			g, w := left.Quantile(q), whole.Quantile(q)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("%s q=%v: merged %v, whole %v", name, q, g, w)
			}
		}
	}
}

// sameBuckets asserts two stores carry identical bucket maps.
func sameBuckets(t *testing.T, what string, a, b *sketchStore) {
	t.Helper()
	if a.count != b.count || len(a.buckets) != len(b.buckets) {
		t.Fatalf("%s: count %d over %d buckets, want count %d over %d buckets",
			what, a.count, len(a.buckets), b.count, len(b.buckets))
	}
	for k, c := range b.buckets {
		if a.buckets[k] != c {
			t.Fatalf("%s: bucket %d = %d, want %d", what, k, a.buckets[k], c)
		}
	}
}

// TestSketchSerializationRoundTrip pins the footer encoding: a decoded
// sketch answers every probe bit-identically to the original.
func TestSketchSerializationRoundTrip(t *testing.T) {
	for name, data := range adversarialSets() {
		s := NewSketch()
		for _, x := range data {
			s.Add(x)
		}
		c := &cursor{buf: appendSketch(nil, s)}
		back := readSketch(c)
		if c.err != nil {
			t.Fatalf("%s: %v", name, c.err)
		}
		if c.off != len(c.buf) {
			t.Fatalf("%s: %d trailing bytes", name, len(c.buf)-c.off)
		}
		if back.Count() != s.Count() {
			t.Fatalf("%s: count %d, want %d", name, back.Count(), s.Count())
		}
		for _, q := range sketchQuantileGrid {
			g, w := back.Quantile(q), s.Quantile(q)
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Errorf("%s q=%v: decoded %v, original %v", name, q, g, w)
			}
		}
	}
}

// TestSketchCollapse drives the store past maxSketchBuckets and checks
// the bound holds, no values are lost, and the upper quantiles — the
// ones the figures read — keep full accuracy.
func TestSketchCollapse(t *testing.T) {
	s := NewSketch()
	n := maxSketchBuckets + 1000
	// γ^(2i) guarantees one distinct bucket per value (spacing two keys
	// absorbs any boundary rounding), so the store must overflow.
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Pow(sketchGamma, 2*float64(i))
		s.Add(vals[i])
	}
	if len(s.pos.buckets) > maxSketchBuckets {
		t.Fatalf("%d buckets, cap %d", len(s.pos.buckets), maxSketchBuckets)
	}
	if !s.pos.hasFloor {
		t.Fatal("overflowed store has no collapse floor")
	}
	if s.Count() != uint64(n) {
		t.Fatalf("count %d after collapse, want %d", s.Count(), n)
	}
	// The top decile is far above the collapse floor; accuracy there
	// must be untouched.
	for _, q := range []float64{0.9, 0.99, 1} {
		got, want := s.Quantile(q), exactRank(vals, q)
		if math.Abs(got-want) > 1.0001*SketchAlpha*math.Abs(want) {
			t.Errorf("q=%v after collapse: %v, want %v", q, got, want)
		}
	}
}

// TestSketchEdgeCases pins the empty sketch, the all-zero sketch, and
// quantile clamping.
func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch()
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty sketch quantile is not NaN")
	}
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	if s.Count() != 0 {
		t.Errorf("non-finite values counted: %d", s.Count())
	}
	s.Add(0)
	s.Add(0)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("all-zero median %v", got)
	}
	s.Add(-3)
	s.Add(5)
	if got := s.Quantile(-1); got >= 0 {
		t.Errorf("q<0 should clamp to the minimum, got %v", got)
	}
	hi := s.Quantile(2)
	if math.Abs(hi-5) > 1.0001*SketchAlpha*5 {
		t.Errorf("q>1 should clamp to the maximum, got %v", hi)
	}
}
