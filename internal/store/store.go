// Package store implements the append-only columnar trial store — the
// on-disk format that lets a campaign outgrow memory. A .pts file
// holds every trial of one (field, codec) pair as per-column binary
// blocks (varints for the integer columns, raw little-endian float64
// bit patterns for the value columns, reusing internal/wire's
// conventions), followed by a CRC-guarded footer that indexes the
// blocks and carries the campaign's online aggregates: count, mean,
// max and a mergeable quantile sketch per (field, bit), folded in at
// append time so a summary is O(fields×bits) regardless of trial
// count. docs/STORE.md is the normative format specification.
//
// The write path goes through internal/atomicio's PendingFile: blocks
// stream to a temporary file for the life of the campaign and the
// final .pts appears only when Seal lands the footer, so a crash
// leaves no torn store — the shard journal remains the recovery
// source of truth and a resumed campaign simply rebuilds the store
// from replayed shards.
//
// Reading back is lossless by construction: every float column stores
// the exact bit pattern, so RenderCSV reproduces core.WriteTrialsCSV
// byte for byte (pinned by test), and the per-bit aggregates off the
// footer match core.AggregateByBit exactly for count, mean, max,
// geometric mean and field shares (medians are sketch-approximate
// within SketchAlpha relative accuracy; means reassociate above
// internal/stats' parallel threshold).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// Version is the store format version this package writes. A reader
// rejects every other value with ErrVersion — like the wire format,
// compatibility is all-or-nothing per file (docs/STORE.md,
// "Compatibility policy"): a reader never guesses at a layout.
const Version = 1

// The four magics that structure a .pts file. Each spells its role so
// a hex dump is self-describing and a mis-routed payload fails fast.
const (
	fileMagic   = "PTSC" // file header: posit trial store, columnar
	blockMagic  = "PTSB" // one columnar block of shard trials
	footerMagic = "PTSF" // footer: block index + aggregates
	endMagic    = "PTSE" // 8-byte trailer locating the footer
)

// Ext is the store file extension.
const Ext = ".pts"

// MaxBlockBytes bounds the declared length of any block or footer
// frame a reader will honor (1 GiB, matching wire.MaxFrameBytes): far
// above any real shard, small enough to refuse a corrupted length
// before allocating for it.
const MaxBlockBytes = 1 << 30

// maxStringLen bounds each packed string (bit-field names, the header
// field/codec pair); real values are tens of bytes.
const maxStringLen = 1 << 16

// maxNames bounds a block's bit-field name table: a row addresses its
// name with 7 bits of the meta byte, exactly as the wire format does.
const maxNames = 128

// Decode errors, one per failure class, matched with errors.Is. A
// damaged file is refused whole — a reader never serves rows from a
// block whose CRC does not match.
var (
	// ErrCorrupt means a magic, CRC, length or index in the file is
	// inconsistent with the format.
	ErrCorrupt = errors.New("store: corrupt file")
	// ErrVersion means the file was written by an unsupported format
	// version.
	ErrVersion = errors.New("store: unsupported version")
	// ErrSealed means a write was attempted on a Writer that has
	// already sealed or aborted its file.
	ErrSealed = errors.New("store: writer already sealed")
)

// trialWireHeader is the logical column list of one stored trial row,
// in block column order. It deliberately mirrors core's CSV
// trialHeader and wire's copy — positlint's csvheader rule
// cross-checks all three registries against core.Trial, so adding a
// Trial field without extending the columnar encoding fails tier-1.
var trialWireHeader = []string{
	"field", "codec", "bit", "seq", "index",
	"orig_value", "repr_value", "orig_bits", "faulty_bits", "faulty_value",
	"bit_field", "regime_k", "abs_err", "rel_err", "catastrophic",
}

// FileName returns the store file name for one (field, codec) pair —
// the same sanitization the CSV result files use (slashes in dataset
// field keys become underscores), with the .pts extension.
func FileName(field, codec string) string {
	return strings.ReplaceAll(field, "/", "_") + "_" + codec + Ext
}

// appendString appends a uvarint length followed by the string bytes.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// cursor is a bounds-checked sticky-error reader over one decoded
// region, following wire's decoder idiom: the first failure sticks
// and turns every later read into a no-op, so column loops stay
// branch-light and check once per column.
type cursor struct {
	buf []byte
	off int
	err error
}

// fail records the first error with positional context.
func (c *cursor) fail(format string, args ...interface{}) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: offset %d: %s", ErrCorrupt, c.off, fmt.Sprintf(format, args...))
	}
}

// byte reads one byte.
func (c *cursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.buf) {
		c.fail("unexpected end of data")
		return 0
	}
	b := c.buf[c.off]
	c.off++
	return b
}

// uvarint reads one unsigned varint.
func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.fail("bad uvarint")
		return 0
	}
	c.off += n
	return v
}

// varint reads one zigzag varint as an int.
func (c *cursor) varint() int {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		c.fail("bad varint")
		return 0
	}
	c.off += n
	return int(v)
}

// intv reads a uvarint that must fit a non-negative int32-sized int.
func (c *cursor) intv() int {
	v := c.uvarint()
	if c.err == nil && v > math.MaxInt32 {
		c.fail("value %d out of int range", v)
		return 0
	}
	return int(v)
}

// float reads one fixed-width little-endian float64 bit pattern.
func (c *cursor) float() float64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.buf) {
		c.fail("unexpected end of data in float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.buf[c.off:]))
	c.off += 8
	return v
}

// str reads one length-prefixed string.
func (c *cursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > maxStringLen {
		c.fail("string of %d bytes exceeds %d", n, maxStringLen)
		return ""
	}
	if c.off+int(n) > len(c.buf) {
		c.fail("string of %d bytes overruns data", n)
		return ""
	}
	s := string(c.buf[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}
