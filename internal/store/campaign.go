package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"positres/internal/core"
)

// CampaignWriter fans a campaign's shards out to one Writer per
// (field, codec) pair, creating each store file lazily on its first
// shard. It implements the runner's shard sink: AppendShard may be
// called concurrently for any mix of specs, and the per-spec Writer
// serializes its own blocks and aggregates. Stores are sealed
// per-spec as the campaign publishes results; Abort discards whatever
// has not sealed (the shard journal remains the recovery source, so
// an aborted store is rebuilt by resume, not repaired in place).
type CampaignWriter struct {
	dir     string
	mu      sync.Mutex
	writers map[string]*Writer
}

// NewCampaignWriter returns a writer placing its store files in dir.
func NewCampaignWriter(dir string) *CampaignWriter {
	return &CampaignWriter{dir: dir, writers: map[string]*Writer{}}
}

// writerFor returns (creating if needed) the spec's store writer.
func (cw *CampaignWriter) writerFor(field, codec string) (*Writer, error) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	key := field + "\x00" + codec
	if w, ok := cw.writers[key]; ok {
		return w, nil
	}
	w, err := NewWriter(filepath.Join(cw.dir, FileName(field, codec)), field, codec)
	if err != nil {
		return nil, err
	}
	cw.writers[key] = w
	return w, nil
}

// AppendShard routes one shard's trials to the spec's store writer —
// the runner.ShardSink contract.
func (cw *CampaignWriter) AppendShard(field, codec string, bitLo, bitHi int, trials []core.Trial) error {
	w, err := cw.writerFor(field, codec)
	if err != nil {
		return err
	}
	return w.AppendShard(bitLo, bitHi, trials)
}

// Seal finalizes one spec's store file, making it visible at its
// final path. Sealing a spec that never appended a shard is an error
// — the campaign publishes only specs that produced results.
func (cw *CampaignWriter) Seal(field, codec string) error {
	cw.mu.Lock()
	w := cw.writers[field+"\x00"+codec]
	cw.mu.Unlock()
	if w == nil {
		return fmt.Errorf("store: no shards appended for (%s, %s)", field, codec)
	}
	return w.Seal()
}

// Abort discards every store that has not sealed. Safe after partial
// sealing: sealed writers ignore it.
func (cw *CampaignWriter) Abort() {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	for _, w := range cw.writers {
		w.Abort()
	}
}

// Snapshot returns a live (unsealed-view) aggregate document per
// spec, sorted by (field, codec) — the payload of the /metrics
// mid-campaign dashboard section. O(specs×bits) regardless of how
// many trials have streamed through.
func (cw *CampaignWriter) Snapshot() []*AggregateDoc {
	cw.mu.Lock()
	writers := make([]*Writer, 0, len(cw.writers))
	keys := make([]string, 0, len(cw.writers))
	for k := range cw.writers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writers = append(writers, cw.writers[k])
	}
	cw.mu.Unlock()
	docs := make([]*AggregateDoc, 0, len(writers))
	for _, w := range writers {
		docs = append(docs, w.Doc())
	}
	return docs
}
