package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"positres/internal/core"
)

// seedTrial returns a tiny hand-built shard for the fuzz seed store.
func seedTrial() []core.Trial {
	return []core.Trial{
		{Field: "CESM/CLOUD", Codec: "posit16", Bit: 0, Seq: 0, Index: 3,
			OrigValue: 0.5, ReprValue: 0.5, OrigBits: 0x4000, FaultyBits: 0xC000,
			FaultyVal: -0.5, FieldName: "sign", RegimeK: -1, AbsErr: 1, RelErr: 2},
		{Field: "CESM/CLOUD", Codec: "posit16", Bit: 1, Seq: 0, Index: 9,
			OrigValue: 0.25, ReprValue: 0.25, OrigBits: 0x3000, FaultyBits: 0x7000,
			FaultyVal: 16, FieldName: "regime", RegimeK: -2,
			AbsErr: 15.75, RelErr: 63, Catastrophic: true},
		{Field: "CESM/CLOUD", Codec: "posit16", Bit: 1, Seq: 1, Index: 2,
			OrigValue: math.NaN(), ReprValue: math.NaN(), OrigBits: 0x8000,
			FaultyBits: 0x8001, FaultyVal: math.NaN(), FieldName: "fraction",
			RegimeK: 0, AbsErr: math.NaN(), RelErr: math.NaN()},
	}
}

// readWholeFile and writeRawFile keep the fuzz body free of direct os
// calls at its hot path; test files are exempt from the atomicwrite
// rule, and fuzz scratch files are not publication points.
func readWholeFile(path string) ([]byte, error) { return os.ReadFile(path) }

func writeRawFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// footerSeed builds a realistic sealed footer frame for the fuzz
// corpus: two blocks, two bit aggregates with moments and sketches.
func footerSeed() []byte {
	bits := map[int]*bitState{}
	for b := 0; b < 2; b++ {
		st := newBitState()
		st.trials = 3
		st.catastrophic = 1
		st.fieldCounts["exponent"] = 2
		st.fieldCounts["fraction"] = 1
		st.rel.Add(0.25)
		st.rel.Add(3e-7)
		st.abs.Add(1.5)
		st.abs.Add(2e-3)
		st.relSumLog = -8.5
		st.relLogN = 2
		st.relSketch.Add(0.25)
		st.relSketch.Add(3e-7)
		st.absSketch.Add(1.5)
		st.absSketch.Add(2e-3)
		bits[b] = st
	}
	blocks := []blockInfo{
		{Offset: 16, Length: 120, Rows: 3, BitLo: 0, BitHi: 1},
		{Offset: 136, Length: 98, Rows: 3, BitLo: 1, BitHi: 2},
	}
	return appendFooter(nil, 0xDEADBEEF, blocks, 6, bits)
}

// FuzzFooterIndex hammers parseFooter with corrupted frames: whatever
// the bytes, it must return an error or a footer whose block index is
// fully bounds-checked — never panic, never index past the data
// region, never allocate unboundedly. Wired into `make fuzz-short`.
func FuzzFooterIndex(f *testing.F) {
	seed := footerSeed()
	f.Add(seed, int64(300))
	// Single-byte corruptions of the real frame make good starting
	// points: they keep the CRC landscape explorable.
	for _, off := range []int{0, 4, 8, len(seed) / 2, len(seed) - 5} {
		bad := append([]byte(nil), seed...)
		bad[off] ^= 0x40
		f.Add(bad, int64(300))
	}
	f.Add([]byte{}, int64(0))
	f.Add([]byte("PTSF"), int64(1))
	f.Fuzz(func(t *testing.T, frame []byte, dataEnd int64) {
		fd, err := parseFooter(frame, dataEnd)
		if err != nil {
			return
		}
		// Accepted frames must uphold the invariants readers rely on.
		var sum uint64
		for _, b := range fd.blocks {
			if b.Offset < 0 || b.Length < 0 || b.Offset+int64(b.Length) > dataEnd {
				t.Fatalf("accepted block outside data region: %+v (dataEnd %d)", b, dataEnd)
			}
			if b.BitHi <= b.BitLo || b.Rows < 0 {
				t.Fatalf("accepted malformed block: %+v", b)
			}
			sum += uint64(b.Rows)
		}
		if sum != fd.rows {
			t.Fatalf("accepted row count %d, block sum %d", fd.rows, sum)
		}
		for bit, st := range fd.bits {
			if st.catastrophic > st.trials {
				t.Fatalf("bit %d: accepted %d catastrophic of %d trials", bit, st.catastrophic, st.trials)
			}
		}
	})
}

// FuzzOpen hammers the whole-file open path: arbitrary bytes on disk
// must never panic the reader, and whatever opens must verify or fail
// cleanly.
func FuzzOpen(f *testing.F) {
	// Seed with a real sealed store.
	dir := f.TempDir()
	w, err := NewWriter(filepath.Join(dir, "seed.pts"), "CESM/CLOUD", "posit16")
	if err != nil {
		f.Fatal(err)
	}
	tr := seedTrial()
	if err := w.AppendShard(0, 2, tr); err != nil {
		f.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		f.Fatal(err)
	}
	raw, err := readWholeFile(filepath.Join(dir, "seed.pts"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	for _, off := range []int{0, 5, len(raw) / 2, len(raw) - 6} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x10
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.pts")
		if err := writeRawFile(path, data); err != nil {
			t.Skip()
		}
		r, err := Open(path)
		if err != nil {
			return
		}
		defer func() { _ = r.Close() }() // best effort: fuzz scratch file
		if err := r.Verify(); err != nil {
			return
		}
		var buf bytes.Buffer
		_ = r.RenderCSV(&buf) // must not panic; errors are acceptable
	})
}
