package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

// genTrials runs a real (small) campaign range so store tests exercise
// the exact trial population the runner would append — including
// catastrophic rows, posit field names and denormal-scale errors.
func genTrials(t testing.TB, field, codecName string, n, trialsPerBit, lo, hi int) []core.Trial {
	t.Helper()
	f, err := sdrbench.Lookup(field)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := numfmt.Lookup(codecName)
	if err != nil {
		t.Fatal(err)
	}
	data := sdrbench.ToFloat64(f.Generate(n, 7))
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.TrialsPerBit = trialsPerBit
	cfg.Workers = 1
	trials, err := core.RunRange(context.Background(), cfg, codec, field, data, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return trials
}

// writeStore appends trials as consecutive shards of shardBits bits
// each and seals — the write path the runner drives.
func writeStore(t testing.TB, path, field, codecName string, trials []core.Trial, lo, hi, shardBits int) {
	t.Helper()
	w, err := NewWriter(path, field, codecName)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	for slo := lo; slo < hi; slo += shardBits {
		shi := slo + shardBits
		if shi > hi {
			shi = hi
		}
		var shard []core.Trial
		for i := range trials {
			if trials[i].Bit >= slo && trials[i].Bit < shi {
				shard = append(shard, trials[i])
			}
		}
		if err := w.AppendShard(slo, shi, shard); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTrip pins losslessness: a store read back in assembly
// order reproduces every Trial bit for bit.
func TestRoundTrip(t *testing.T) {
	trials := genTrials(t, "CESM/CLOUD", "posit16", 400, 7, 0, 16)
	path := filepath.Join(t.TempDir(), FileName("CESM/CLOUD", "posit16"))
	writeStore(t, path, "CESM/CLOUD", "posit16", trials, 0, 16, 4)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Field() != "CESM/CLOUD" || r.Codec() != "posit16" {
		t.Fatalf("identity (%s, %s)", r.Field(), r.Codec())
	}
	if r.Rows() != uint64(len(trials)) {
		t.Fatalf("rows %d, want %d", r.Rows(), len(trials))
	}
	if r.Blocks() != 4 {
		t.Fatalf("blocks %d, want 4", r.Blocks())
	}
	got, err := r.Trials()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trials) {
		t.Fatalf("decoded %d trials, want %d", len(got), len(trials))
	}
	for i := range got {
		if !sameTrial(&got[i], &trials[i]) {
			t.Fatalf("trial %d: got %+v, want %+v", i, got[i], trials[i])
		}
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

// sameTrial compares every field, floats by bit pattern so NaNs and
// signed zeros round-trip too.
func sameTrial(a, b *core.Trial) bool {
	sameFloat := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return a.Field == b.Field && a.Codec == b.Codec &&
		a.Bit == b.Bit && a.Seq == b.Seq && a.Index == b.Index &&
		sameFloat(a.OrigValue, b.OrigValue) && sameFloat(a.ReprValue, b.ReprValue) &&
		a.OrigBits == b.OrigBits && a.FaultyBits == b.FaultyBits &&
		sameFloat(a.FaultyVal, b.FaultyVal) &&
		a.FieldName == b.FieldName && a.RegimeK == b.RegimeK &&
		sameFloat(a.AbsErr, b.AbsErr) && sameFloat(a.RelErr, b.RelErr) &&
		a.Catastrophic == b.Catastrophic
}

// TestRenderCSVByteIdentical pins the tentpole invariant: the store's
// streamed CSV equals core.WriteTrialsCSV over the same trials, byte
// for byte, even when shards were appended out of bit order.
func TestRenderCSVByteIdentical(t *testing.T) {
	trials := genTrials(t, "HACC/vx", "posit16", 400, 6, 0, 16)
	path := filepath.Join(t.TempDir(), FileName("HACC/vx", "posit16"))

	// Append shards in scrambled completion order, as a parallel
	// campaign would.
	w, err := NewWriter(path, "HACC/vx", "posit16")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	for _, rng := range [][2]int{{8, 12}, {0, 4}, {12, 16}, {4, 8}} {
		var shard []core.Trial
		for i := range trials {
			if trials[i].Bit >= rng[0] && trials[i].Bit < rng[1] {
				shard = append(shard, trials[i])
			}
		}
		if err := w.AppendShard(rng[0], rng[1], shard); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}

	var direct bytes.Buffer
	if err := core.WriteTrialsCSV(&direct, trials); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var rendered bytes.Buffer
	if err := r.RenderCSV(&rendered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), rendered.Bytes()) {
		t.Fatalf("rendered CSV differs from direct path: %d vs %d bytes",
			rendered.Len(), direct.Len())
	}
}

// TestBitAggsMatchSlicePath pins the online aggregation against
// core.AggregateByBit: counts, means, maxima, geometric means and
// field shares must agree exactly (the fold replays the same serial
// arithmetic); the sketch medians must land within the sketch's
// relative accuracy of the exact medians.
func TestBitAggsMatchSlicePath(t *testing.T) {
	trials := genTrials(t, "CESM/CLOUD", "posit16", 400, 9, 0, 16)
	path := filepath.Join(t.TempDir(), FileName("CESM/CLOUD", "posit16"))
	writeStore(t, path, "CESM/CLOUD", "posit16", trials, 0, 16, 4)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	want := core.AggregateByBit(trials)
	got := r.BitAggs()
	if len(got) != len(want) {
		t.Fatalf("%d bit aggregates, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Bit != w.Bit || g.Trials != w.Trials || g.Catastrophic != w.Catastrophic {
			t.Fatalf("bit %d: counts (%d, %d, %d), want (%d, %d, %d)",
				w.Bit, g.Bit, g.Trials, g.Catastrophic, w.Bit, w.Trials, w.Catastrophic)
		}
		mustSameFloat(t, w.Bit, "MeanRelErr", g.MeanRelErr, w.MeanRelErr)
		mustSameFloat(t, w.Bit, "MaxRelErr", g.MaxRelErr, w.MaxRelErr)
		mustSameFloat(t, w.Bit, "GeoRelErr", g.GeoRelErr, w.GeoRelErr)
		mustSameFloat(t, w.Bit, "MeanAbsErr", g.MeanAbsErr, w.MeanAbsErr)
		mustSameFloat(t, w.Bit, "MaxAbsErr", g.MaxAbsErr, w.MaxAbsErr)
		if len(g.FieldShare) != len(w.FieldShare) {
			t.Fatalf("bit %d: %d field shares, want %d", w.Bit, len(g.FieldShare), len(w.FieldShare))
		}
		for name, share := range w.FieldShare {
			mustSameFloat(t, w.Bit, "FieldShare["+name+"]", g.FieldShare[name], share)
		}
		// Medians: the sketch's guarantee is relative accuracy against
		// the order statistic at rank ⌊q·(n−1)⌋, not the interpolated
		// stats.Median the slice path reports. Compare against the
		// exact same-rank value so the bound is sound even when the
		// two middle errors sit decades apart.
		var rels, abss []float64
		for i := range trials {
			if trials[i].Bit == w.Bit && !trials[i].Catastrophic {
				rels = append(rels, trials[i].RelErr)
				abss = append(abss, trials[i].AbsErr)
			}
		}
		mustWithinRelative(t, w.Bit, "MedianRelErr", g.MedianRelErr, exactRank(rels, 0.5))
		mustWithinRelative(t, w.Bit, "MedianAbsErr", g.MedianAbsErr, exactRank(abss, 0.5))
	}
}

// exactRank returns the finite order statistic at the sketch's rank
// convention, rank = ⌊q·(n−1)⌋ over ascending finite values.
func exactRank(data []float64, q float64) float64 {
	finite := make([]float64, 0, len(data))
	for _, x := range data {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			finite = append(finite, x)
		}
	}
	if len(finite) == 0 {
		return math.NaN()
	}
	sort.Float64s(finite)
	return finite[int(q*float64(len(finite)-1))]
}

// mustSameFloat asserts bit-pattern equality (NaN-safe).
func mustSameFloat(t *testing.T, bit int, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("bit %d: %s = %v, want %v", bit, what, got, want)
	}
}

// mustWithinRelative asserts the sketch estimate lands within the
// sketch accuracy of the exact same-rank value (a hair of slack for
// the float log/exp round trip). NaN must match NaN; exact zeros must
// hit the zero bucket exactly.
func mustWithinRelative(t *testing.T, bit int, what string, got, want float64) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Fatalf("bit %d: %s = %v, want NaN", bit, what, got)
		}
		return
	}
	if math.Abs(got-want) > 1.001*SketchAlpha*math.Abs(want) {
		t.Fatalf("bit %d: %s = %v, want %v within %.0f%%", bit, what, got, want, 100*SketchAlpha)
	}
}

// TestWriterRejectsShardViolations pins the append-time validation:
// wrong identity, out-of-range bits and use-after-seal all fail
// without corrupting the file.
func TestWriterRejectsShardViolations(t *testing.T) {
	dir := t.TempDir()
	trials := genTrials(t, "CESM/CLOUD", "posit16", 200, 2, 0, 4)
	w, err := NewWriter(filepath.Join(dir, "x.pts"), "CESM/CLOUD", "posit16")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.AppendShard(4, 8, trials); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range bits: %v", err)
	}
	wrong := make([]core.Trial, 1)
	wrong[0] = trials[0]
	wrong[0].Codec = "ieee32"
	if err := w.AppendShard(0, 4, wrong); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mixed codec: %v", err)
	}
	// Rejected appends must leave the writer usable: the shard was
	// refused before any byte hit the file.
	if err := w.AppendShard(0, 4, trials); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendShard(0, 4, trials); !errors.Is(err, ErrSealed) {
		t.Fatalf("append after seal: %v", err)
	}
	if err := w.Seal(); !errors.Is(err, ErrSealed) {
		t.Fatalf("double seal: %v", err)
	}
}

// TestAbortLeavesNoFile pins the atomic-write contract: an aborted
// store leaves neither the final path nor temp debris.
func TestAbortLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pts")
	w, err := NewWriter(path, "CESM/CLOUD", "posit16")
	if err != nil {
		t.Fatal(err)
	}
	trials := genTrials(t, "CESM/CLOUD", "posit16", 200, 2, 0, 4)
	if err := w.AppendShard(0, 4, trials); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("unexpected file after abort: %s", e.Name())
	}
	if err := w.AppendShard(0, 4, trials); !errors.Is(err, ErrSealed) {
		t.Fatalf("append after abort: %v", err)
	}
}

// TestCampaignWriter pins the sink fan-out: two specs, interleaved
// shards, per-spec sealing, live snapshots.
func TestCampaignWriter(t *testing.T) {
	dir := t.TempDir()
	cw := NewCampaignWriter(dir)
	defer cw.Abort()
	cloud := genTrials(t, "CESM/CLOUD", "posit16", 200, 3, 0, 16)
	vx := genTrials(t, "HACC/vx", "posit16", 200, 3, 0, 16)
	for lo := 0; lo < 16; lo += 8 {
		for _, set := range [][]core.Trial{cloud, vx} {
			var shard []core.Trial
			for i := range set {
				if set[i].Bit >= lo && set[i].Bit < lo+8 {
					shard = append(shard, set[i])
				}
			}
			if err := cw.AppendShard(shard[0].Field, "posit16", lo, lo+8, shard); err != nil {
				t.Fatal(err)
			}
		}
	}

	docs := cw.Snapshot()
	if len(docs) != 2 {
		t.Fatalf("%d snapshot docs, want 2", len(docs))
	}
	if docs[0].Field != "CESM/CLOUD" || docs[1].Field != "HACC/vx" {
		t.Fatalf("snapshot order: %s, %s", docs[0].Field, docs[1].Field)
	}
	for _, doc := range docs {
		if doc.Sealed {
			t.Errorf("%s: live snapshot claims sealed", doc.Field)
		}
		if doc.Trials != 48 { // 16 bits × 3 trials
			t.Errorf("%s: %d trials in snapshot, want 48", doc.Field, doc.Trials)
		}
		if doc.Schema != DocSchema {
			t.Errorf("%s: schema %q", doc.Field, doc.Schema)
		}
	}

	if err := cw.Seal("CESM/CLOUD", "posit16"); err != nil {
		t.Fatal(err)
	}
	if err := cw.Seal("HACC/vx", "posit16"); err != nil {
		t.Fatal(err)
	}
	if err := cw.Seal("HACC/vy", "posit16"); err == nil {
		t.Fatal("sealing a spec with no shards succeeded")
	}
	for _, f := range []string{FileName("CESM/CLOUD", "posit16"), FileName("HACC/vx", "posit16")} {
		r, err := Open(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if r.Rows() != 48 {
			t.Errorf("%s: %d rows", f, r.Rows())
		}
		if !r.Doc().Sealed {
			t.Errorf("%s: sealed store's doc claims live", f)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDocJSONRoundTrip pins the positres-aggregate/v1 document: NaN
// and Inf survive, the schema gate refuses other tags, and BitAggs
// reconstructs the core shape.
func TestDocJSONRoundTrip(t *testing.T) {
	trials := genTrials(t, "CESM/CLOUD", "posit16", 200, 3, 0, 16)
	path := filepath.Join(t.TempDir(), "x.pts")
	writeStore(t, path, "CESM/CLOUD", "posit16", trials, 0, 16, 8)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	doc := r.Doc()

	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadDoc(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	wantAggs := r.BitAggs()
	gotAggs := back.BitAggs()
	if len(gotAggs) != len(wantAggs) {
		t.Fatalf("%d aggs after round trip, want %d", len(gotAggs), len(wantAggs))
	}
	for i := range wantAggs {
		mustSameFloat(t, wantAggs[i].Bit, "MeanRelErr", gotAggs[i].MeanRelErr, wantAggs[i].MeanRelErr)
		mustSameFloat(t, wantAggs[i].Bit, "MaxAbsErr", gotAggs[i].MaxAbsErr, wantAggs[i].MaxAbsErr)
	}

	bad := bytes.NewBufferString(`{"schema": "positres-aggregate/v2"}`)
	if _, err := ReadDoc(bad); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestOpenRejectsCorruption flips one byte at a time through a sealed
// file's structural landmarks and requires Open/Verify to refuse each
// damaged variant rather than serve altered rows.
func TestOpenRejectsCorruption(t *testing.T) {
	trials := genTrials(t, "CESM/CLOUD", "posit16", 200, 3, 0, 16)
	dir := t.TempDir()
	path := filepath.Join(dir, "x.pts")
	writeStore(t, path, "CESM/CLOUD", "posit16", trials, 0, 16, 8)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Damage a spread of offsets: header magic, version, first block,
	// mid-file, the footer region and the trailer.
	offsets := []int{0, 4, 8, len(orig) / 2, len(orig) - 12, len(orig) - 2}
	for _, off := range offsets {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0xFF
		p := filepath.Join(dir, "bad.pts")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			continue // refused at open: good
		}
		verr := r.Verify()
		_ = r.Close()
		if verr == nil {
			t.Errorf("corruption at offset %d went undetected", off)
		}
	}
}
