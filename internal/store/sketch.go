package store

import (
	"encoding/binary"
	"math"
	"sort"
)

// SketchAlpha is the relative accuracy of the quantile sketch: a
// reported quantile v̂ satisfies |v̂ − v| ≤ SketchAlpha·|v| for some
// exact quantile v within the sketch's rank error. One percent is far
// tighter than the decade-spanning spread of the per-bit error
// distributions the paper plots on log axes.
const SketchAlpha = 0.01

// sketchGamma is the bucket growth factor: bucket k covers
// (γ^(k−1), γ^k], which is what makes the relative-error guarantee
// hold at every magnitude (the DDSketch construction).
var sketchGamma = (1 + SketchAlpha) / (1 - SketchAlpha)

// lnGamma caches ln(γ) for the key computation.
var lnGamma = math.Log(sketchGamma)

// maxSketchBuckets bounds each sign's bucket map. When a store
// overflows, its lowest buckets collapse into a floor bucket —
// accuracy degrades only at the extreme low-magnitude tail, never at
// the median and upper quantiles the figures read. 4096 buckets cover
// more than 160 decades at SketchAlpha, so real error data never
// collapses.
const maxSketchBuckets = 4096

// Sketch is a mergeable quantile sketch over float64 values with
// relative accuracy SketchAlpha (DDSketch-style log-bucketed
// histogram). Zeros are counted exactly; negative values mirror into
// their own bucket store; NaN and ±Inf are skipped, matching
// stats.Quantile's finite-only population. Merge is bucket-wise
// addition, so sketch(a∪b) and merge(sketch(a), sketch(b)) are
// identical as long as neither side has collapsed. The zero value is
// not ready to use; call NewSketch.
type Sketch struct {
	zero uint64
	pos  sketchStore
	neg  sketchStore
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{
		pos: sketchStore{buckets: map[int]uint64{}},
		neg: sketchStore{buckets: map[int]uint64{}},
	}
}

// sketchStore holds the log-bucketed counts of one sign.
type sketchStore struct {
	buckets map[int]uint64
	count   uint64
	// floor is the collapse boundary once hasFloor is set: every key
	// below it lands in the floor bucket, bounding the map.
	floor    int
	hasFloor bool
}

// sketchKey maps a positive value to its bucket index ⌈ln(v)/ln γ⌉.
func sketchKey(v float64) int {
	return int(math.Ceil(math.Log(v) / lnGamma))
}

// sketchValue returns bucket k's representative 2γ^k/(γ+1), the point
// minimizing worst-case relative error over the bucket's range.
func sketchValue(k int) float64 {
	return 2 * math.Pow(sketchGamma, float64(k)) / (sketchGamma + 1)
}

// Add folds one value into the sketch. NaN and ±Inf are skipped.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	switch {
	case x == 0:
		s.zero++
	case x > 0:
		s.pos.add(sketchKey(x), 1)
	default:
		s.neg.add(sketchKey(-x), 1)
	}
}

// Count reports how many finite values the sketch has absorbed.
func (s *Sketch) Count() uint64 { return s.zero + s.pos.count + s.neg.count }

// Merge folds another sketch into s, as if s had also seen every
// value o saw. Bucket-wise addition is exact; if either side has
// collapsed, the merged floor is the higher of the two.
func (s *Sketch) Merge(o *Sketch) {
	s.zero += o.zero
	s.pos.merge(&o.pos)
	s.neg.merge(&o.neg)
}

// Quantile returns an approximation of the q-th quantile (q clamped
// to [0, 1]) of the values seen, NaN when empty. The result carries
// SketchAlpha relative error around an exact quantile within the
// sketch's rank resolution (one bucket).
func (s *Sketch) Quantile(q float64) float64 {
	n := s.Count()
	if n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n-1))
	// Ascending value order: negatives from largest magnitude down,
	// then zeros, then positives from smallest magnitude up.
	var cum uint64
	negKeys := s.neg.sortedKeys()
	for i := len(negKeys) - 1; i >= 0; i-- {
		cum += s.neg.buckets[negKeys[i]]
		if rank < cum {
			return -sketchValue(negKeys[i])
		}
	}
	cum += s.zero
	if rank < cum {
		return 0
	}
	posKeys := s.pos.sortedKeys()
	for _, k := range posKeys {
		cum += s.pos.buckets[k]
		if rank < cum {
			return sketchValue(k)
		}
	}
	// Counts are consistent by construction; reaching here means
	// rank == n-1 landed in the last bucket.
	if len(posKeys) > 0 {
		return sketchValue(posKeys[len(posKeys)-1])
	}
	return 0
}

// add increments bucket k by c, respecting the collapse floor.
func (st *sketchStore) add(k int, c uint64) {
	if st.hasFloor && k < st.floor {
		k = st.floor
	}
	st.buckets[k] += c
	st.count += c
	if len(st.buckets) > maxSketchBuckets {
		st.collapseLowest()
	}
}

// collapseLowest merges the lowest bucket into the next lowest and
// raises the floor there, shrinking the map by one.
func (st *sketchStore) collapseLowest() {
	lo, next := math.MaxInt, math.MaxInt
	for k := range st.buckets {
		switch {
		case k < lo:
			next = lo
			lo = k
		case k < next:
			next = k
		}
	}
	if next == math.MaxInt {
		return // a single bucket cannot collapse
	}
	st.buckets[next] += st.buckets[lo]
	delete(st.buckets, lo)
	st.floor = next
	st.hasFloor = true
}

// raiseFloor collapses every bucket below f into f.
func (st *sketchStore) raiseFloor(f int) {
	if st.hasFloor && st.floor >= f {
		return
	}
	var moved uint64
	for k, c := range st.buckets {
		if k < f {
			moved += c
			delete(st.buckets, k)
		}
	}
	if moved > 0 {
		st.buckets[f] += moved
	}
	st.floor = f
	st.hasFloor = true
}

// merge folds another store in bucket-wise.
func (st *sketchStore) merge(o *sketchStore) {
	if o.hasFloor {
		st.raiseFloor(o.floor)
	}
	for _, k := range o.sortedKeys() { // fixed order: deterministic collapse
		st.add(k, o.buckets[k])
	}
}

// sortedKeys returns the store's bucket keys in ascending order.
func (st *sketchStore) sortedKeys() []int {
	keys := make([]int, 0, len(st.buckets))
	for k := range st.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// appendSketch serializes a sketch: zero count, then each sign store
// as a floor marker plus sorted (zigzag key, count) pairs.
func appendSketch(dst []byte, s *Sketch) []byte {
	dst = binary.AppendUvarint(dst, s.zero)
	dst = appendSketchStore(dst, &s.neg)
	return appendSketchStore(dst, &s.pos)
}

// appendSketchStore serializes one sign's bucket store.
func appendSketchStore(dst []byte, st *sketchStore) []byte {
	if st.hasFloor {
		dst = append(dst, 1)
		dst = binary.AppendVarint(dst, int64(st.floor))
	} else {
		dst = append(dst, 0)
	}
	keys := st.sortedKeys()
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendVarint(dst, int64(k))
		dst = binary.AppendUvarint(dst, st.buckets[k])
	}
	return dst
}

// readSketch decodes a sketch written by appendSketch.
func readSketch(c *cursor) *Sketch {
	s := NewSketch()
	s.zero = c.uvarint()
	readSketchStore(c, &s.neg)
	readSketchStore(c, &s.pos)
	return s
}

// readSketchStore decodes one sign's bucket store.
func readSketchStore(c *cursor, st *sketchStore) {
	if c.byte() != 0 {
		st.floor = c.varint()
		st.hasFloor = true
	}
	n := c.uvarint()
	if c.err == nil && n > maxSketchBuckets {
		c.fail("sketch of %d buckets exceeds %d", n, maxSketchBuckets)
		return
	}
	for i := uint64(0); c.err == nil && i < n; i++ {
		k := c.varint()
		cnt := c.uvarint()
		st.buckets[k] += cnt
		st.count += cnt
	}
}
