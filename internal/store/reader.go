package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"positres/internal/core"
)

// Reader serves a sealed .pts file: rows in bit order (rendered as
// CSV byte-identical to core.WriteTrialsCSV), and the footer's
// aggregates in O(bits) without touching a single trial row. Open
// validates the header, trailer and footer CRC up front; block CRCs
// are verified as each block is read.
type Reader struct {
	f       *os.File
	field   string
	codec   string
	dataEnd int64 // file offset where the footer frame begins
	fd      *footerData
}

// Open opens and validates a sealed store file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	r, err := newReader(f)
	if err != nil {
		_ = f.Close() // best effort: the validation error is the one worth reporting
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	return r, nil
}

// newReader validates header, trailer and footer of an open file.
func newReader(f *os.File) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	// Header: magic, version, then the (field, codec) strings. Their
	// combined length is bounded, so one capped read covers it.
	headMax := int64(len(fileMagic) + 1 + 2*(binary.MaxVarintLen64+maxStringLen))
	if headMax > size {
		headMax = size
	}
	head := make([]byte, headMax)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, headMax), head); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if len(head) < len(fileMagic)+1 {
		return nil, fmt.Errorf("%w: %d-byte file below header size", ErrCorrupt, size)
	}
	if string(head[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrCorrupt, head[:len(fileMagic)], fileMagic)
	}
	if v := head[len(fileMagic)]; v != Version {
		return nil, fmt.Errorf("%w: file version %d, this reader speaks %d", ErrVersion, v, Version)
	}
	c := &cursor{buf: head, off: len(fileMagic) + 1}
	field := c.str()
	codec := c.str()
	if c.err != nil {
		return nil, c.err
	}

	// Trailer: footer frame span + end magic in the last 8 bytes.
	if size < int64(c.off)+8 {
		return nil, fmt.Errorf("%w: %d-byte file has no room for a trailer", ErrCorrupt, size)
	}
	var trailer [8]byte
	if _, err := f.ReadAt(trailer[:], size-8); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrCorrupt, err)
	}
	if string(trailer[4:]) != endMagic {
		return nil, fmt.Errorf("%w: trailer magic %q, want %q (file not sealed?)", ErrCorrupt, trailer[4:], endMagic)
	}
	span := int64(binary.LittleEndian.Uint32(trailer[:4]))
	if span > MaxBlockBytes || size-8-span < int64(c.off) {
		return nil, fmt.Errorf("%w: footer span %d does not fit the %d-byte file", ErrCorrupt, span, size)
	}
	dataEnd := size - 8 - span
	frame := make([]byte, span)
	if _, err := f.ReadAt(frame, dataEnd); err != nil {
		return nil, fmt.Errorf("%w: footer: %v", ErrCorrupt, err)
	}
	fd, err := parseFooter(frame, dataEnd)
	if err != nil {
		return nil, err
	}
	// The header has no frame of its own; the footer carries its CRC.
	if got := crc32.ChecksumIEEE(head[:c.off]); got != fd.headCRC {
		return nil, fmt.Errorf("%w: header crc32 %08x, footer recorded %08x", ErrCorrupt, got, fd.headCRC)
	}
	return &Reader{f: f, field: field, codec: codec, dataEnd: dataEnd, fd: fd}, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Field returns the dataset field key the store holds.
func (r *Reader) Field() string { return r.field }

// Codec returns the number format the store holds.
func (r *Reader) Codec() string { return r.codec }

// Rows returns the total trial rows in the store.
func (r *Reader) Rows() uint64 { return r.fd.rows }

// Blocks returns the number of columnar blocks (one per shard).
func (r *Reader) Blocks() int { return len(r.fd.blocks) }

// BitAggs finalizes the footer's aggregates into core.BitAggs sorted
// by bit — O(bits), no trial rescan. Counts, means, maxima, geometric
// means and field shares match core.AggregateByBit over the same
// trials exactly (below stats' parallel threshold); medians are
// sketch estimates within SketchAlpha.
func (r *Reader) BitAggs() []core.BitAgg { return finalizeBits(r.fd.bits) }

// Doc builds the sealed aggregate document from the footer.
func (r *Reader) Doc() *AggregateDoc {
	return newDoc(r.field, r.codec, true, finalizeBits(r.fd.bits))
}

// bitOrder returns the block index sorted by ascending BitLo — the
// order the runner's assembly step concatenates shard slabs in, which
// is what keeps rendered CSV byte-identical to the in-memory path.
func (r *Reader) bitOrder() []blockInfo {
	blocks := make([]blockInfo, len(r.fd.blocks))
	copy(blocks, r.fd.blocks)
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].BitLo != blocks[j].BitLo {
			return blocks[i].BitLo < blocks[j].BitLo
		}
		return blocks[i].Offset < blocks[j].Offset
	})
	return blocks
}

// readBlock reads and decodes one block, appending its trials to dst.
// buf is the reusable raw-byte scratch; both grown slices return.
func (r *Reader) readBlock(b blockInfo, buf []byte, dst []core.Trial) ([]byte, []core.Trial, error) {
	if cap(buf) < b.Length {
		buf = make([]byte, b.Length)
	}
	buf = buf[:b.Length]
	if _, err := r.f.ReadAt(buf, b.Offset); err != nil {
		return buf, dst, fmt.Errorf("%w: block at %d: %v", ErrCorrupt, b.Offset, err)
	}
	dst, err := r.decodeBlock(buf, b, dst)
	return buf, dst, err
}

// decodeBlock decodes one block's columns into trials appended to
// dst, verifying the CRC first and every length and index before use.
func (r *Reader) decodeBlock(data []byte, b blockInfo, dst []core.Trial) ([]core.Trial, error) {
	payload, err := unwrapFrame(data, blockMagic)
	if err != nil {
		return dst, err
	}
	c := &cursor{buf: payload}
	if cols := c.byte(); c.err == nil && int(cols) != len(trialWireHeader) {
		return dst, fmt.Errorf("%w: block carries %d columns per row, this reader maps %d",
			ErrCorrupt, cols, len(trialWireHeader))
	}
	bitLo := c.intv()
	bitHi := c.intv()
	if c.err == nil && (bitLo != b.BitLo || bitHi != b.BitHi) {
		c.fail("block bit range [%d, %d) disagrees with footer index [%d, %d)", bitLo, bitHi, b.BitLo, b.BitHi)
	}
	nNames := c.uvarint()
	if c.err == nil && nNames > maxNames {
		c.fail("name table of %d entries exceeds %d", nNames, maxNames)
	}
	names := make([]string, 0, 8)
	for i := uint64(0); c.err == nil && i < nNames; i++ {
		names = append(names, c.str())
	}
	rows := c.uvarint()
	if c.err == nil && rows != uint64(b.Rows) {
		c.fail("block declares %d rows, footer index %d", rows, b.Rows)
	}
	// Each row costs at least 7 varint/meta bytes plus 40 fixed float
	// bytes across the columns; refuse impossible counts before
	// allocating.
	if c.err == nil {
		if remaining := uint64(len(c.buf) - c.off); rows > remaining/41 {
			c.fail("%d rows declared, %d payload bytes remain", rows, remaining)
		}
	}
	if c.err != nil {
		return dst, c.err
	}
	base := len(dst)
	need := base + int(rows)
	if cap(dst) < need {
		grown := make([]core.Trial, need)
		copy(grown, dst)
		dst = grown[:base]
	}
	// Every field of every row is assigned by the column loops below,
	// so extending into reused capacity needs no zeroing.
	dst = dst[:need]
	out := dst[base:]
	for i := range out {
		tr := &out[i]
		tr.Field = r.field
		tr.Codec = r.codec
		tr.Bit = c.intv()
		if c.err == nil && (tr.Bit < bitLo || tr.Bit >= bitHi) {
			c.fail("row %d bit %d outside block range [%d, %d)", i, tr.Bit, bitLo, bitHi)
		}
	}
	for i := range out {
		out[i].Seq = c.intv()
	}
	for i := range out {
		out[i].Index = c.intv()
	}
	for i := range out {
		out[i].OrigBits = c.uvarint()
	}
	for i := range out {
		out[i].FaultyBits = c.uvarint()
	}
	for i := range out {
		meta := c.byte()
		out[i].Catastrophic = meta&1 != 0
		if idx := int(meta >> 1); c.err == nil {
			if idx >= len(names) {
				c.fail("row %d bit-field name index %d past table of %d", i, idx, len(names))
			} else {
				out[i].FieldName = names[idx]
			}
		}
	}
	for i := range out {
		out[i].RegimeK = c.varint()
	}
	for i := range out {
		out[i].OrigValue = c.float()
	}
	for i := range out {
		out[i].ReprValue = c.float()
	}
	for i := range out {
		out[i].FaultyVal = c.float()
	}
	for i := range out {
		out[i].AbsErr = c.float()
	}
	for i := range out {
		out[i].RelErr = c.float()
	}
	if c.err != nil {
		return dst, c.err
	}
	if c.off != len(c.buf) {
		return dst, fmt.Errorf("%w: %d trailing payload bytes after last column", ErrCorrupt, len(c.buf)-c.off)
	}
	return dst, nil
}

// RenderCSV streams the store's rows to w as CSV, byte-identical to
// core.WriteTrialsCSV over the same trials in assembly order (blocks
// by ascending bit range, rows in stored order within each block).
// Memory is bounded by the largest single block, not the campaign.
func (r *Reader) RenderCSV(w io.Writer) error {
	out := make([]byte, 0, core.CSVFlushAt+512)
	out = core.AppendTrialHeader(out)
	var raw []byte
	var trials []core.Trial
	var err error
	for _, b := range r.bitOrder() {
		trials = trials[:0]
		raw, trials, err = r.readBlock(b, raw, trials)
		if err != nil {
			return err
		}
		for i := range trials {
			out = core.AppendTrialRow(out, &trials[i])
			if len(out) >= core.CSVFlushAt {
				if _, err := w.Write(out); err != nil {
					return fmt.Errorf("store: csv render: %w", err)
				}
				out = out[:0]
			}
		}
	}
	if len(out) > 0 {
		if _, err := w.Write(out); err != nil {
			return fmt.Errorf("store: csv flush: %w", err)
		}
	}
	return nil
}

// Trials materializes every row in assembly order — the convenience
// path for offline tooling on modest stores; campaign-scale callers
// should stream with RenderCSV or read aggregates instead.
func (r *Reader) Trials() ([]core.Trial, error) {
	trials := make([]core.Trial, 0, r.fd.rows)
	var raw []byte
	var err error
	for _, b := range r.bitOrder() {
		raw, trials, err = r.readBlock(b, raw, trials)
		if err != nil {
			return nil, err
		}
	}
	return trials, nil
}

// Verify decodes every block, checking each CRC and every structural
// invariant — the deep-scan behind positstore's verify command. The
// footer was already verified at Open.
func (r *Reader) Verify() error {
	var raw []byte
	var trials []core.Trial
	var err error
	for _, b := range r.fd.blocks {
		trials = trials[:0]
		raw, trials, err = r.readBlock(b, raw, trials)
		if err != nil {
			return err
		}
		if len(trials) != b.Rows {
			return fmt.Errorf("%w: block at %d decoded %d rows, index says %d",
				ErrCorrupt, b.Offset, len(trials), b.Rows)
		}
	}
	return nil
}
