package detect

import (
	"math"
	"testing"

	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

func codec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smoothField(t *testing.T, n int) []float64 {
	t.Helper()
	f, err := sdrbench.Lookup("Hurricane/Pf48")
	if err != nil {
		t.Fatal(err)
	}
	return SmoothProxy(f, n, 1)
}

func TestPredictors(t *testing.T) {
	// A quadratic sequence is predicted exactly by the 3-point rule.
	data := []float64{1, 4, 9, 16, 25} // i²+… actually (i+1)²
	if got := predict(data, 4); got != 25 {
		t.Errorf("quadratic predict = %v", got)
	}
	if got := predict(data, 3); got != 16 {
		t.Errorf("quadratic predict = %v", got)
	}
	// Linear at i=2, constant at i=1.
	if got := predict(data, 2); got != 7 { // 2·4−1
		t.Errorf("linear predict = %v", got)
	}
	if got := predict(data, 1); got != 1 {
		t.Errorf("constant predict = %v", got)
	}
	if got := predict(data, 0); got != 0 {
		t.Errorf("boundary predict = %v", got)
	}
}

func TestCalibrationZeroFalsePositives(t *testing.T) {
	data := smoothField(t, 5000)
	d := New(1.0)
	d.Calibrate(data)
	if d.Threshold() <= 0 {
		t.Fatal("threshold not set")
	}
	if flags := d.Scan(data); len(flags) != 0 {
		t.Fatalf("clean data raised %d false positives", len(flags))
	}
}

func TestDetectsSpecialsAndSpikes(t *testing.T) {
	data := smoothField(t, 2000)
	d := New(1.2)
	d.Calibrate(data)
	// NaN is always detectable.
	work := append([]float64(nil), data...)
	work[500] = math.NaN()
	if !d.Check(work, 500) {
		t.Error("NaN not flagged")
	}
	// A huge spike (IEEE exponent-flip scale) is flagged.
	work[500] = data[500] * math.Exp2(64)
	if !d.CheckWindow(work, 500) {
		t.Error("2^64 spike not flagged")
	}
	// A sub-threshold perturbation is not.
	work[500] = data[500] * (1 + 1e-7)
	if d.Check(work, 500) {
		t.Error("tiny perturbation flagged")
	}
	// Index 0 has no context.
	if d.Check(work, 0) {
		t.Error("index 0 should not flag")
	}
}

func TestSweepDeterministicAndShaped(t *testing.T) {
	data := smoothField(t, 8000)
	c := codec(t, "posit32")
	a, err := Sweep(c, data, 20, 1.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(c, data, 20, 1.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatal("sweep width")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sweep not deterministic")
		}
		if a[i].Detected > a[i].Trials || a[i].DetectRate < 0 || a[i].DetectRate > 1 {
			t.Fatalf("outcome out of range: %+v", a[i])
		}
	}
	if _, err := Sweep(c, data[:4], 5, 1.2, 1); err == nil {
		t.Error("short field should error")
	}
	if _, err := Sweep(c, data, 0, 1.2, 1); err == nil {
		t.Error("zero trials should error")
	}
}

// TestDetectionAsymmetry: the finding this package exists for — on the
// same smooth field, IEEE upper-bit flips are detected essentially
// always (they are astronomically large), while posit upper-bit flips
// evade more often; but everything that evades is bounded, and the
// worst *undetected* posit error is no bigger than the worst
// undetected IEEE error.
func TestDetectionAsymmetry(t *testing.T) {
	data := smoothField(t, 8000)
	pOut, err := Sweep(codec(t, "posit32"), data, 40, 1.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	iOut, err := Sweep(codec(t, "ieee32"), data, 40, 1.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	upper := func(out []BitOutcome) (rate float64, worstMissed float64) {
		n := 0
		for _, o := range out {
			if o.Bit >= 24 && o.Bit <= 30 {
				rate += o.DetectRate
				n++
				if o.MaxMissedRelErr > worstMissed {
					worstMissed = o.MaxMissedRelErr
				}
			}
		}
		return rate / float64(n), worstMissed
	}
	iRate, iMissed := upper(iOut)
	pRate, pMissed := upper(pOut)
	// Not every IEEE upper-bit flip is caught: downward flips of
	// values already below the threshold stay small — the undetected
	// errors are exactly the ones with little impact.
	if iRate < 0.85 {
		t.Errorf("IEEE upper-bit detection rate %v, want > 0.85", iRate)
	}
	if !(pRate < iRate-0.05) {
		t.Errorf("posit upper-bit flips should evade clearly more: posit %v vs ieee %v", pRate, iRate)
	}
	if pMissed > math.Max(iMissed, 1) {
		t.Errorf("worst undetected posit error %v exceeds IEEE's %v", pMissed, iMissed)
	}
}

func TestSmoothProxyRespectsRange(t *testing.T) {
	f, err := sdrbench.Lookup("Nyx/temperature")
	if err != nil {
		t.Fatal(err)
	}
	data := SmoothProxy(f, 10000, 3)
	for i, v := range data {
		if v < f.Target.Min || v > f.Target.Max {
			t.Fatalf("element %d = %v outside [%v, %v]", i, v, f.Target.Min, f.Target.Max)
		}
	}
	// Smoothness: the typical step is small relative to the range.
	var sum float64
	for i := 1; i < len(data); i++ {
		sum += math.Abs(data[i] - data[i-1])
	}
	meanStep := sum / float64(len(data)-1)
	if meanStep > (f.Target.Max-f.Target.Min)/100 {
		t.Errorf("field not smooth: mean step %v", meanStep)
	}
	// Deterministic.
	again := SmoothProxy(f, 10000, 3)
	if data[777] != again[777] {
		t.Error("proxy not deterministic")
	}
}
