// Package detect implements a lightweight impact-driven silent-data-
// corruption detector in the style of the paper's ref [19] (Di &
// Cappello, "Adaptive Impact-Driven Detection of Silent Data
// Corruption for HPC Applications"): each element of a spatially
// smooth field is predicted from its preceding neighbors by low-order
// extrapolation, and an observed value whose residual exceeds a
// calibrated threshold is flagged.
//
// The package closes a loop the paper opens in §2: how *detectable*
// are the flips each format produces? IEEE-754 upper-bit flips are
// enormous and trivially caught; posit flips are orders of magnitude
// smaller — they evade impact-driven detection more often, but the
// errors that evade are precisely the ones that matter less.
package detect

import (
	"fmt"
	"math"

	"positres/internal/bitflip"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

// Detector is an impact-driven outlier detector over 1-D fields.
type Detector struct {
	// Theta scales the calibrated threshold: detection fires when
	// |observed − predicted| > Theta × maxCleanResidual. Theta ≥ 1
	// guarantees zero false positives on the calibration data.
	Theta float64

	threshold float64
}

// New returns a detector with the given threshold multiplier.
func New(theta float64) *Detector { return &Detector{Theta: theta} }

// predict extrapolates element i from its predecessors: quadratic
// (three-point) where possible, degrading to linear and constant at
// the boundary.
func predict(data []float64, i int) float64 {
	switch {
	case i >= 3:
		return 3*data[i-1] - 3*data[i-2] + data[i-3]
	case i == 2:
		return 2*data[i-1] - data[i-2]
	case i == 1:
		return data[0]
	}
	return 0
}

// Calibrate scans clean data and records the worst prediction
// residual; Scan and Check then flag residuals above Theta × that.
func (d *Detector) Calibrate(clean []float64) {
	worst := 0.0
	for i := 1; i < len(clean); i++ {
		r := math.Abs(clean[i] - predict(clean, i))
		if r > worst {
			worst = r
		}
	}
	d.threshold = d.Theta * worst
}

// Threshold returns the calibrated detection threshold.
func (d *Detector) Threshold() float64 { return d.threshold }

// Check reports whether element i of data looks corrupted.
func (d *Detector) Check(data []float64, i int) bool {
	if i == 0 {
		return false // no predecessor context
	}
	v := data[i]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return true // special values are always detectable
	}
	return math.Abs(v-predict(data, i)) > d.threshold
}

// Scan flags every suspicious index.
func (d *Detector) Scan(data []float64) []int {
	var out []int
	for i := 1; i < len(data); i++ {
		if d.Check(data, i) {
			out = append(out, i)
		}
	}
	return out
}

// CheckWindow reports whether a corruption at index i is detectable,
// considering that the faulty value also perturbs the predictions of
// the following elements.
func (d *Detector) CheckWindow(data []float64, i int) bool {
	hi := i + 3
	if hi > len(data) {
		hi = len(data)
	}
	for j := i; j < hi; j++ {
		if d.Check(data, j) {
			return true
		}
	}
	return false
}

// BitOutcome aggregates the detection sweep at one bit position.
type BitOutcome struct {
	Bit    int // bit position, 0 = LSB
	Trials int // injections swept at this position
	// Detected counts injections the detector flagged.
	Detected int
	// DetectRate = Detected / Trials.
	DetectRate float64
	// MeanMissedRelErr is the mean relative error of the UNDETECTED
	// injections — the residual SDC that slips through.
	MeanMissedRelErr float64
	// MaxMissedRelErr bounds the worst undetected corruption.
	MaxMissedRelErr float64
}

// Sweep injects trialsPerBit flips at every bit position of the format
// into the (smooth) field and reports per-bit detectability plus the
// damage of what escapes. The detector is calibrated on the clean data
// with the given theta. Deterministic in seed.
func Sweep(codec numfmt.Codec, clean []float64, trialsPerBit int, theta float64, seed uint64) ([]BitOutcome, error) {
	if len(clean) < 8 {
		return nil, fmt.Errorf("detect: field too short")
	}
	if trialsPerBit <= 0 {
		return nil, fmt.Errorf("detect: trialsPerBit must be positive")
	}
	det := New(theta)
	det.Calibrate(clean)

	width := codec.Width()
	out := make([]BitOutcome, width)
	work := make([]float64, len(clean))
	copy(work, clean)
	for bit := 0; bit < width; bit++ {
		o := &out[bit]
		o.Bit = bit
		o.Trials = trialsPerBit
		var missedSum float64
		var missedN int
		for trial := 0; trial < trialsPerBit; trial++ {
			rng := sdrbench.NewRNG(seed, "detect", codec.Name(), fmt.Sprint(bit), fmt.Sprint(trial))
			idx := 1 + rng.Intn(len(clean)-1)
			orig := clean[idx]
			if orig == 0 {
				continue
			}
			faulty := codec.Decode(bitflip.Flip(codec.Encode(orig), bit))
			work[idx] = faulty
			if det.CheckWindow(work, idx) {
				o.Detected++
			} else if !math.IsNaN(faulty) {
				rel := math.Abs(orig-faulty) / math.Abs(orig)
				missedSum += rel
				missedN++
				if rel > o.MaxMissedRelErr {
					o.MaxMissedRelErr = rel
				}
			}
			work[idx] = orig
		}
		o.DetectRate = float64(o.Detected) / float64(trialsPerBit)
		if missedN > 0 {
			o.MeanMissedRelErr = missedSum / float64(missedN)
		}
	}
	return out, nil
}

// SmoothProxy synthesizes a spatially smooth 1-D field whose value
// range matches a Table 1 field — the detector operates on smooth
// physical fields, while the sdrbench generators are only
// distribution-faithful (spatial correlation does not affect bit-flip
// error, but it does affect neighbor-prediction detection; see
// DESIGN.md §2). The proxy mixes three low-frequency modes spanning
// [min, max] plus a small rough component.
func SmoothProxy(f sdrbench.Field, n int, seed uint64) []float64 {
	rng := sdrbench.NewRNG(seed, "smooth", f.Dataset, f.Name)
	lo, hi := f.Target.Min, f.Target.Max
	if hi <= lo {
		hi = lo + 1
	}
	mid := (hi + lo) / 2
	amp := (hi - lo) / 2
	p1 := rng.Float64() * 2 * math.Pi
	p2 := rng.Float64() * 2 * math.Pi
	p3 := rng.Float64() * 2 * math.Pi
	out := make([]float64, n)
	for i := range out {
		x := float64(i) / float64(n)
		v := mid +
			0.55*amp*math.Sin(2*math.Pi*3*x+p1) +
			0.3*amp*math.Sin(2*math.Pi*7*x+p2) +
			0.1*amp*math.Sin(2*math.Pi*17*x+p3) +
			0.005*amp*rng.NormFloat64()
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		out[i] = v
	}
	return out
}
