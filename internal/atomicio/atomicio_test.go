package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileBytes(path, []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Fatalf("content %q", got)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Errorf("mode %v, want 0644", st.Mode().Perm())
	}
	assertNoTempDebris(t, dir)
}

func TestWriteFileOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new content")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Fatalf("content %q", got)
	}
	assertNoTempDebris(t, dir)
}

// TestWriteFileFailureLeavesTargetIntact: a failing write callback
// must neither create the final path nor clobber a previous version,
// and must clean up its temp file.
func TestWriteFileFailureLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	boom := errors.New("boom")
	err := WriteFile(path, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path exists after failed write: %v", err)
	}
	assertNoTempDebris(t, dir)

	// With a survivor in place, a failed rewrite leaves it untouched.
	if err := WriteFileBytes(path, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("half-written garbage"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "survivor" {
		t.Fatalf("previous content clobbered: %q", got)
	}
	assertNoTempDebris(t, dir)
}

func TestWriteFileMissingDir(t *testing.T) {
	if err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), []byte("x")); err == nil {
		t.Fatal("write into a missing directory should fail")
	}
}

// assertNoTempDebris verifies no .tmp-* files linger in dir.
func assertNoTempDebris(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}
