// Package atomicio is the shared atomic-write helper for every result
// artifact the campaign pipeline produces (trial CSVs, journal
// records, manifests, figure TSVs, raw dataset files). It is the
// on-disk sibling of internal/checkpoint's in-memory scheme: a write
// either lands complete at its final path or not at all, so a crash
// mid-flush can never leave a truncated file that parses as a finished
// one.
//
// The protocol is the classic temp + fsync + rename sequence: the
// payload is streamed to a temporary file in the destination
// directory, flushed to stable storage with fsync, renamed over the
// final path (atomic within a filesystem on POSIX), and the directory
// is fsynced so the rename itself survives a power loss.
//
// positlint's atomicwrite rule flags direct os.Create / os.WriteFile
// calls elsewhere in the module, so artifact output cannot silently
// regress to a bare create.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically writes the output of write to path with mode
// 0o644. write receives a buffered writer backed by a temporary file
// in path's directory; if write or any flush/sync/rename step fails,
// the temporary file is removed and the final path is untouched (a
// previous file at path, if any, survives intact).
func WriteFile(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	// Any early return before the rename must leave no temp debris.
	fail := func(step string, err error) error {
		_ = tmp.Close()        // best effort: the step error is the one worth reporting
		_ = os.Remove(tmpName) // ditto
		return fmt.Errorf("atomicio: %s %s: %w", step, path, err)
	}
	if err := write(tmp); err != nil {
		return fail("write", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("fsync", err)
	}
	// CreateTemp uses 0o600; artifacts are world-readable like any
	// os.Create output.
	if err := tmp.Chmod(0o644); err != nil {
		return fail("chmod", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) // best effort
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName) // best effort
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	return syncDir(dir)
}

// WriteFileBytes atomically writes data to path with mode 0o644.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a completed rename is durable. Some
// filesystems return EINVAL/ENOTSUP for directory fsync; that is not a
// durability regression relative to a bare write, so only open errors
// are reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: open dir %s: %w", dir, err)
	}
	_ = d.Sync() // best effort: not all filesystems support directory fsync
	return d.Close()
}
