// Package atomicio is the shared atomic-write helper for every result
// artifact the campaign pipeline produces (trial CSVs, journal
// records, manifests, figure TSVs, raw dataset files). It is the
// on-disk sibling of internal/checkpoint's in-memory scheme: a write
// either lands complete at its final path or not at all, so a crash
// mid-flush can never leave a truncated file that parses as a finished
// one.
//
// The protocol is the classic temp + fsync + rename sequence: the
// payload is streamed to a temporary file in the destination
// directory, flushed to stable storage with fsync, renamed over the
// final path (atomic within a filesystem on POSIX), and the directory
// is fsynced so the rename itself survives a power loss.
//
// positlint's atomicwrite rule flags direct os.Create / os.WriteFile
// calls elsewhere in the module, so artifact output cannot silently
// regress to a bare create.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// PendingFile is an in-progress atomic write: a temporary file in the
// destination's directory that becomes the destination only on Commit.
// It exists for writers that stream an artifact over an extended span
// — the columnar trial store appends blocks for the whole life of a
// campaign before sealing — where the closure style of WriteFile would
// force buffering everything in memory. Until Commit succeeds the
// final path is untouched; Abort (idempotent, safe after Commit)
// removes the temporary file, so a crash or error path leaves at most
// an orphaned dot-prefixed temp, never a torn artifact.
type PendingFile struct {
	f       *os.File
	path    string // final destination
	tmpName string // temp file currently holding the payload
	done    bool   // committed or aborted
}

// Create opens a pending write targeting path. The temporary file
// lives in path's directory so the final rename stays within one
// filesystem (and therefore atomic).
func Create(path string) (*PendingFile, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: temp for %s: %w", path, err)
	}
	return &PendingFile{f: tmp, path: path, tmpName: tmp.Name()}, nil
}

// Write implements io.Writer, appending to the pending payload.
func (p *PendingFile) Write(b []byte) (int, error) { return p.f.Write(b) }

// Offset reports how many bytes of payload have been written — the
// position the next Write lands at. Writers that build an index of
// their own output (the store's footer) use it instead of counting.
func (p *PendingFile) Offset() (int64, error) { return p.f.Seek(0, io.SeekCurrent) }

// Commit makes the pending payload durable at the final path: fsync,
// chmod to the artifact mode 0o644, close, rename over path, fsync
// the directory. On any failure the temporary file is removed and the
// final path is untouched. After Commit the PendingFile is spent.
func (p *PendingFile) Commit() error {
	if p.done {
		return fmt.Errorf("atomicio: commit %s: already committed or aborted", p.path)
	}
	p.done = true
	fail := func(step string, err error) error {
		_ = p.f.Close()          // best effort: the step error is the one worth reporting
		_ = os.Remove(p.tmpName) // ditto
		return fmt.Errorf("atomicio: %s %s: %w", step, p.path, err)
	}
	if err := p.f.Sync(); err != nil {
		return fail("fsync", err)
	}
	// CreateTemp uses 0o600; artifacts are world-readable like any
	// os.Create output.
	if err := p.f.Chmod(0o644); err != nil {
		return fail("chmod", err)
	}
	if err := p.f.Close(); err != nil {
		_ = os.Remove(p.tmpName) // best effort
		return fmt.Errorf("atomicio: close %s: %w", p.path, err)
	}
	if err := os.Rename(p.tmpName, p.path); err != nil {
		_ = os.Remove(p.tmpName) // best effort
		return fmt.Errorf("atomicio: rename %s: %w", p.path, err)
	}
	return syncDir(filepath.Dir(p.path))
}

// Abort discards the pending payload, leaving the final path as it
// was. Safe to call more than once and after Commit (both no-ops), so
// callers can defer it unconditionally.
func (p *PendingFile) Abort() {
	if p.done {
		return
	}
	p.done = true
	_ = p.f.Close()          // best effort: nothing to report on a discard
	_ = os.Remove(p.tmpName) // ditto
}

// WriteFile atomically writes the output of write to path with mode
// 0o644. write receives a writer backed by a temporary file in path's
// directory; if write or any flush/sync/rename step fails, the
// temporary file is removed and the final path is untouched (a
// previous file at path, if any, survives intact).
func WriteFile(path string, write func(w io.Writer) error) error {
	p, err := Create(path)
	if err != nil {
		return err
	}
	if err := write(p); err != nil {
		p.Abort()
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	return p.Commit()
}

// WriteFileBytes atomically writes data to path with mode 0o644.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a completed rename is durable. Some
// filesystems return EINVAL/ENOTSUP for directory fsync; that is not a
// durability regression relative to a bare write, so only open errors
// are reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: open dir %s: %w", dir, err)
	}
	_ = d.Sync() // best effort: not all filesystems support directory fsync
	return d.Close()
}
