package core

import (
	"math"

	"positres/internal/qcat"
)

// TrialArrayMetrics derives the full-array QCAT metrics for a trial —
// the paper's §4.2 computes them over the whole faulty array, but with
// exactly one corrupted element every metric follows from the point
// change and the baseline in O(1):
//
//	max abs err = |orig − faulty|        (all other elements are equal)
//	MSE         = d² / n,  L2 = d
//	MRED        = pointwise rel err / #nonzero elements
//	NRMSE/PSNR  from the baseline's value range
//
// n is the array length, nNonzero the count of nonzero original
// elements (MRED averages over those), and valueRange is
// max(orig) − min(orig) from the baseline summary. The result matches
// qcat.Compare over materialized arrays exactly (asserted in tests).
func TrialArrayMetrics(tr Trial, n, nNonzero int, valueRange float64) qcat.Metrics {
	m := qcat.Metrics{N: n}
	if n == 0 {
		return m
	}
	faulty := tr.FaultyVal
	if math.IsNaN(faulty) || math.IsInf(faulty, 0) {
		// The corrupted element is special: max metrics are infinite,
		// mean metrics exclude it (and are therefore zero), and the
		// range-relative metrics are undefined.
		m.SpecialValues = 1
		m.MaxAbsErr = math.Inf(1)
		m.MaxRelErr = math.Inf(1)
		m.MaxValRangeRelErr = math.NaN()
		m.NRMSE = math.NaN()
		m.PSNR = math.NaN()
		return m
	}
	d := math.Abs(tr.OrigValue - faulty)
	m.MaxAbsErr = d
	m.MSE = d * d / float64(n)
	m.RMSE = math.Sqrt(m.MSE)
	m.L2Norm = d
	switch {
	case tr.OrigValue != 0:
		m.MaxRelErr = d / math.Abs(tr.OrigValue)
		if nNonzero > 0 {
			m.MRED = m.MaxRelErr / float64(nNonzero)
		}
	case d > 0:
		// A zero original corrupted to nonzero: infinite pointwise
		// relative error, but (like qcat.Compare) excluded from MRED.
		m.MaxRelErr = math.Inf(1)
	}
	if valueRange > 0 {
		m.MaxValRangeRelErr = d / valueRange
		m.NRMSE = m.RMSE / valueRange
		if m.NRMSE > 0 {
			m.PSNR = -20 * math.Log10(m.NRMSE)
		} else {
			m.PSNR = math.Inf(1)
		}
	} else {
		m.MaxValRangeRelErr = math.NaN()
		m.NRMSE = math.NaN()
		m.PSNR = math.NaN()
	}
	return m
}

// CountNonzero returns the number of nonzero, finite elements — the
// MRED denominator for TrialArrayMetrics.
func CountNonzero(data []float64) int {
	n := 0
	for _, v := range data {
		if v != 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			n++
		}
	}
	return n
}
