// Package core implements the paper's primary contribution: the
// bit-flip fault-injection campaign of §4. A campaign runs a series of
// trials for every bit position of a number format; each trial picks a
// random element of a scientific dataset, encodes it in the format
// under test, flips one bit with an XOR mask, decodes the corrupted
// pattern, and records error metrics against the original data.
//
// The engine is deterministic: every random choice is drawn from a
// dedicated PRNG stream keyed by (seed, field, codec, bit, trial), so
// results are bit-for-bit reproducible at any worker count — a
// stronger property than the paper's single seeded generator.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"positres/internal/bitflip"
	"positres/internal/numfmt"
	"positres/internal/qcat"
	"positres/internal/sdrbench"
	"positres/internal/spec"
	"positres/internal/stats"
	"positres/internal/telemetry"
)

// Config parameterizes a campaign.
type Config struct {
	// Seed drives every random choice. Campaigns with equal seeds and
	// inputs produce identical results.
	Seed uint64
	// TrialsPerBit is the number of injections per bit position; the
	// paper uses 313 (~10,000 per 32-bit format per field).
	TrialsPerBit int
	// Workers bounds the goroutine pool; 0 means GOMAXPROCS.
	Workers int
	// SkipZeros excludes exactly-zero elements from selection (their
	// relative error is undefined; the paper's plotted fields carry
	// negligible zero mass). When false, zero selections are injected
	// and recorded as catastrophic.
	SkipZeros bool
	// MaxSelectAttempts bounds the zero-rejection loop per trial.
	MaxSelectAttempts int
	// Metrics, when non-nil, receives injection and bit-completion
	// counts as the campaign runs (telemetry.Snapshot derives
	// injections/sec from them). It never affects results and is
	// deliberately excluded from the runner's campaign identity
	// (campaignParams), like Workers.
	Metrics *telemetry.Metrics
}

// DefaultConfig mirrors the paper's campaign parameters.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		TrialsPerBit:      313,
		SkipZeros:         true,
		MaxSelectAttempts: 64,
	}
}

// ConfigFromSpec derives the engine configuration from the canonical
// campaign spec — the one place the two vocabularies meet, so the
// CLI, the HTTP service and the durable runner cannot drift apart.
// Unset spec knobs are already defaulted by spec.Validate; the engine
// defaults that have no spec-level knob (MaxSelectAttempts) come from
// DefaultConfig. Workers and Metrics are runtime concerns, not
// campaign identity; callers set them on the returned Config.
func ConfigFromSpec(s *spec.CampaignSpec) Config {
	cfg := DefaultConfig()
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.TrialsPerBit != 0 {
		cfg.TrialsPerBit = s.TrialsPerBit
	}
	cfg.SkipZeros = !s.KeepZeros
	return cfg
}

// Trial is one fault injection: its provenance, the bit-level change,
// and the resulting error (paper Fig. 8's per-trial log row).
type Trial struct {
	Field string // dataset field key, e.g. "Nyx/temperature"
	Codec string // format name, e.g. "posit32"
	Bit   int    // flipped bit position (0 = LSB)
	Seq   int    // trial sequence number within this bit

	Index     int     // element index chosen in the data
	OrigValue float64 // original (float32-exact) data value
	ReprValue float64 // value after rounding into the format under test

	OrigBits   uint64  // encoded pattern before the flip
	FaultyBits uint64  // pattern after the XOR
	FaultyVal  float64 // decoded value of FaultyBits

	FieldName string // field owning the flipped bit: sign/regime/exponent/fraction
	RegimeK   int    // posit regime run length of OrigBits (0 for IEEE formats)

	AbsErr       float64 // |FaultyVal - ReprValue|
	RelErr       float64 // AbsErr / |ReprValue|
	Catastrophic bool    // faulty value decoded to NaN/Inf/NaR (or orig was 0)
}

// Result is a completed campaign over one (field, codec) pair.
type Result struct {
	Field    string        // dataset field key the campaign ran over
	Codec    string        // format name under test
	N        int           // dataset length
	Baseline stats.Summary // fault-free round-trip error of the dataset
	Trials   []Trial       // every injection, in (bit, seq) order
	// Elapsed is the wall-clock cost of this campaign alone (not an
	// even share of some enclosing sweep), recorded by Run.
	Elapsed time.Duration
}

// Run executes the campaign for one codec over one data array.
// data holds the field values (float32-exact, widened); fieldKey is
// recorded in every trial. Cancelling ctx stops the worker pool at bit
// granularity and returns the context's error; no partial Result is
// returned, so callers never observe a half-filled trial log.
func Run(ctx context.Context, cfg Config, codec numfmt.Codec, fieldKey string, data []float64) (*Result, error) {
	start := time.Now()
	trials, err := RunRange(ctx, cfg, codec, fieldKey, data, 0, codec.Width())
	if err != nil {
		return nil, err
	}
	return &Result{
		Field:    fieldKey,
		Codec:    codec.Name(),
		N:        len(data),
		Baseline: stats.Summarize(data),
		Trials:   trials,
		Elapsed:  time.Since(start),
	}, nil
}

// RunRange executes the campaign trials for bit positions [lo, hi)
// only — the shard primitive internal/runner schedules. Because every
// trial draws from a PRNG stream keyed by (seed, field, codec, bit,
// trial), the trials for a bit range are identical whether produced
// here or inside a full-width Run: concatenating shard outputs in bit
// order reproduces an uninterrupted campaign bit for bit.
func RunRange(ctx context.Context, cfg Config, codec numfmt.Codec, fieldKey string, data []float64, lo, hi int) ([]Trial, error) {
	return RunRangeInto(ctx, cfg, codec, fieldKey, data, lo, hi, nil)
}

// RunRangeInto is RunRange with a caller-supplied result buffer: when
// buf has capacity for every trial of the range it is resliced and
// filled in place (the returned slice aliases it); otherwise a fresh
// slice is allocated exactly as RunRange would. Threading one buffer
// through repeated calls — the runner's retry loop, positbench's
// steady-state measurement — makes the campaign loop allocation-free:
// with Workers == 1 the range runs serially on the calling goroutine,
// with no channel, no pool and no per-trial allocations (the PRNG
// keying is stack-only; BENCH_PR9.json pins 0 allocs/op).
func RunRangeInto(ctx context.Context, cfg Config, codec numfmt.Codec, fieldKey string, data []float64, lo, hi int, buf []Trial) ([]Trial, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty dataset for %s", fieldKey)
	}
	if cfg.TrialsPerBit <= 0 {
		return nil, fmt.Errorf("core: TrialsPerBit must be positive, got %d", cfg.TrialsPerBit)
	}
	if lo < 0 || hi > codec.Width() || lo >= hi {
		return nil, fmt.Errorf("core: bit range [%d,%d) invalid for %d-bit %s", lo, hi, codec.Width(), codec.Name())
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: campaign %s/%s: %w", fieldKey, codec.Name(), err)
	}
	if cfg.MaxSelectAttempts <= 0 {
		cfg.MaxSelectAttempts = 64
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	need := (hi - lo) * cfg.TrialsPerBit
	var trials []Trial
	if cap(buf) >= need {
		trials = buf[:need]
	} else {
		trials = make([]Trial, need)
	}

	// Serial fast path: one worker means the calling goroutine can
	// fill the buffer directly — no channel, no pool, no allocation.
	// This is the shape every shard takes under the runner (shards are
	// the unit of parallelism; the engine inside one stays serial).
	// The pooled path lives in its own function because its goroutine
	// closure would otherwise force trials (and the captured config)
	// to the heap even on the serial branch — escape analysis is
	// static — which alone would cost 2 allocs per call here.
	if workers == 1 {
		for bit := lo; bit < hi; bit++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: campaign %s/%s: %w", fieldKey, codec.Name(), err)
			}
			out := trials[(bit-lo)*cfg.TrialsPerBit : (bit-lo+1)*cfg.TrialsPerBit]
			runBit(cfg, codec, fieldKey, data, bit, out)
			cfg.Metrics.AddInjections(len(out))
			cfg.Metrics.AddBitDone()
		}
		return trials, nil
	}
	if err := runRangePooled(ctx, cfg, codec, fieldKey, data, lo, hi, workers, trials); err != nil {
		return nil, err
	}
	return trials, nil
}

// runRangePooled fills trials over a fixed worker pool, one job per
// bit position; each worker fills a disjoint slice of the result, so
// no synchronization beyond the channel is needed (Effective Go's
// fixed-pool Serve pattern). On cancellation the feeder stops handing
// out bits and workers drain the channel without computing, so Wait
// returns promptly.
func runRangePooled(ctx context.Context, cfg Config, codec numfmt.Codec, fieldKey string, data []float64, lo, hi, workers int, trials []Trial) error {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bit := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain remaining jobs without working
				}
				out := trials[(bit-lo)*cfg.TrialsPerBit : (bit-lo+1)*cfg.TrialsPerBit]
				runBit(cfg, codec, fieldKey, data, bit, out)
				cfg.Metrics.AddInjections(len(out))
				cfg.Metrics.AddBitDone()
			}
		}()
	}
feed:
	for bit := lo; bit < hi; bit++ {
		select {
		case jobs <- bit:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: campaign %s/%s: %w", fieldKey, codec.Name(), err)
	}
	return nil
}

// runBit executes all trials for one bit position. The PRNG stream of
// trial (bit, seq) is keyed by (seed, field, codec, bit, seq); the
// label-hash prefix is folded once per bit and extended per trial, so
// the loop body allocates nothing (the per-trial NewRNG + strconv
// calls used to dominate the allocation profile of a campaign).
func runBit(cfg Config, codec numfmt.Codec, fieldKey string, data []float64, bit int, out []Trial) {
	sizer, hasRegime := codec.(numfmt.RegimeSizer)
	prefix := sdrbench.NewLabelHash(fieldKey, codec.Name(), "bit"+strconv.Itoa(bit))
	for seq := range out {
		rng := sdrbench.RNGFromHash(cfg.Seed, prefix.WithInt(seq))
		idx := rng.Intn(len(data))
		if cfg.SkipZeros {
			for attempt := 0; data[idx] == 0 && attempt < cfg.MaxSelectAttempts; attempt++ {
				idx = rng.Intn(len(data))
			}
		}
		orig := data[idx]

		tr := &out[seq]
		tr.Field = fieldKey
		tr.Codec = codec.Name()
		tr.Bit = bit
		tr.Seq = seq
		tr.Index = idx
		tr.OrigValue = orig

		tr.OrigBits = codec.Encode(orig)
		tr.ReprValue = codec.Decode(tr.OrigBits)
		tr.FaultyBits = bitflip.Flip(tr.OrigBits, bit)
		tr.FaultyVal = codec.Decode(tr.FaultyBits)
		tr.FieldName = codec.FieldAt(tr.OrigBits, bit)
		if hasRegime {
			tr.RegimeK = sizer.RegimeK(tr.OrigBits)
		}

		p := qcat.Point(orig, tr.FaultyVal)
		tr.AbsErr = p.AbsErr
		tr.RelErr = p.RelErr
		tr.Catastrophic = p.Catastrophic
	}
}

// RunAll executes the campaign for several codecs over the same data,
// returning results keyed in input order.
func RunAll(ctx context.Context, cfg Config, codecs []numfmt.Codec, fieldKey string, data []float64) ([]*Result, error) {
	out := make([]*Result, 0, len(codecs))
	for _, c := range codecs {
		r, err := Run(ctx, cfg, c, fieldKey, data)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FaultyArrayStats returns the summary statistics of the dataset with
// one trial's corruption applied — the "summary statistics of the
// faulty data" step of §4.2 — computed incrementally from the baseline
// in O(1) for the mean and O(n) only when the extremes are displaced.
func FaultyArrayStats(base stats.Summary, data []float64, tr Trial) stats.Summary {
	out := base
	if tr.Index < 0 || tr.Index >= len(data) {
		return out
	}
	old := data[tr.Index]
	nv := tr.FaultyVal
	if math.IsNaN(nv) || math.IsInf(nv, 0) {
		// Special values are excluded from moments (see stats): the
		// faulty array loses one element.
		tmp := make([]float64, len(data))
		copy(tmp, data)
		tmp[tr.Index] = nv
		return stats.Summarize(tmp)
	}
	n := float64(base.Count)
	out.Mean = base.Mean + (nv-old)/n
	switch {
	case nv > base.Max:
		out.Max = nv
	case sameBits(old, base.Max) && nv < old:
		out.Max = recompute(data, tr.Index, nv, true)
	}
	switch {
	case nv < base.Min:
		out.Min = nv
	case sameBits(old, base.Min) && nv > old:
		out.Min = recompute(data, tr.Index, nv, false)
	}
	// Variance shift via sum-of-squares update.
	m2 := base.Std*base.Std*n + (nv*nv - old*old) - (out.Mean*out.Mean-base.Mean*base.Mean)*n
	if m2 < 0 {
		m2 = 0
	}
	out.Std = math.Sqrt(m2 / n)
	// The median of a single-element substitution moves at most one
	// order statistic; recompute exactly (O(n) but rarely needed).
	tmp := make([]float64, len(data))
	copy(tmp, data)
	tmp[tr.Index] = nv
	out.Median = stats.Median(tmp)
	return out
}

// sameBits is an exact identity check on float64 representations,
// used to detect whether the displaced element *was* the tracked
// extreme (bit-pattern equality, the comparison positlint's floatcmp
// rule prescribes for identity tracking).
func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func recompute(data []float64, skip int, replacement float64, wantMax bool) float64 {
	best := replacement
	for i, v := range data {
		if i == skip || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if wantMax && v > best || !wantMax && v < best {
			best = v
		}
	}
	return best
}
