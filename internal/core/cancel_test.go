package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"positres/internal/sdrbench"
)

// TestRunPreCancelled: a context cancelled before the call returns the
// context error immediately and produces no result.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := testData(t, "CESM/CLOUD", 2000)
	res, err := Run(ctx, smallCfg(), mustCodec(t, "posit32"), "CESM/CLOUD", data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled Run must not return a result")
	}
}

// TestRunMatrixPreCancelled: same contract for a matrix sweep.
func TestRunMatrixPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f, _ := sdrbench.Lookup("CESM/CLOUD")
	jobs := []MatrixJob{{Field: f, Codec: mustCodec(t, "posit32"), N: 2000, Seed: 7}}
	rs, err := RunMatrix(ctx, smallCfg(), jobs, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Fatal("pre-cancelled RunMatrix must not return results")
	}
}

// TestRunCancelMidCampaign: cancelling shortly after launch aborts the
// campaign at every worker count. The workload is sized to take well
// over the cancellation delay (hundreds of thousands of trials), so a
// completed run before the cancel would itself be a finding. Runs
// under -race via `make race`, exercising the drain path for data
// races at 1, 2 and 8 workers.
func TestRunCancelMidCampaign(t *testing.T) {
	data := testData(t, "Hurricane/Uf30", 50000)
	codec := mustCodec(t, "posit32")
	for _, workers := range []int{1, 2, 8} {
		cfg := smallCfg()
		cfg.TrialsPerBit = 10000 // 32 bits × 10k trials: far beyond the cancel delay
		cfg.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		var res *Result
		var err error
		go func(ctx context.Context) {
			res, err = Run(ctx, cfg, codec, "Hurricane/Uf30", data)
			close(done)
		}(ctx)
		time.Sleep(2 * time.Millisecond)
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: cancelled campaign did not drain", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: cancelled run returned a result", workers)
		}
	}
}

// TestRunMatrixCancelMidSweep: cancellation during a multi-job sweep
// drains the outer pool and reports the context error.
func TestRunMatrixCancelMidSweep(t *testing.T) {
	f1, _ := sdrbench.Lookup("CESM/CLOUD")
	f2, _ := sdrbench.Lookup("HACC/vx")
	cfg := smallCfg()
	cfg.TrialsPerBit = 5000
	var jobs []MatrixJob
	for i := 0; i < 4; i++ {
		jobs = append(jobs,
			MatrixJob{Field: f1, Codec: mustCodec(t, "posit32"), N: 20000, Seed: uint64(i + 1)},
			MatrixJob{Field: f2, Codec: mustCodec(t, "ieee32"), N: 20000, Seed: uint64(i + 1)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var err error
	go func(ctx context.Context) {
		_, err = RunMatrix(ctx, cfg, jobs, 2)
		close(done)
	}(ctx)
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled matrix did not drain")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunRangeShardsComposeToFullRun: the shard primitive is
// bit-identical to the monolithic campaign — concatenating RunRange
// outputs over a partition of the bit space reproduces Run's trial
// log exactly. This is the determinism property the resumable runner
// is built on.
func TestRunRangeShardsComposeToFullRun(t *testing.T) {
	data := testData(t, "Nyx/temperature", 5000)
	codec := mustCodec(t, "posit32")
	cfg := smallCfg()
	full, err := Run(context.Background(), cfg, codec, "Nyx/temperature", data)
	if err != nil {
		t.Fatal(err)
	}
	var stitched []Trial
	for lo := 0; lo < codec.Width(); lo += 5 {
		hi := lo + 5
		if hi > codec.Width() {
			hi = codec.Width()
		}
		part, err := RunRange(context.Background(), cfg, codec, "Nyx/temperature", data, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		stitched = append(stitched, part...)
	}
	if len(stitched) != len(full.Trials) {
		t.Fatalf("stitched %d trials, want %d", len(stitched), len(full.Trials))
	}
	for i := range stitched {
		if !trialBitEqual(stitched[i], full.Trials[i]) {
			t.Fatalf("trial %d differs:\nshard %+v\nfull  %+v", i, stitched[i], full.Trials[i])
		}
	}
}

// trialBitEqual compares trials with float fields reduced to their bit
// patterns, so a deterministic NaN (e.g. a decoded NaR in FaultyVal)
// compares equal to itself.
func trialBitEqual(a, b Trial) bool {
	fb := math.Float64bits
	return a.Field == b.Field && a.Codec == b.Codec && a.Bit == b.Bit && a.Seq == b.Seq &&
		a.Index == b.Index && a.OrigBits == b.OrigBits && a.FaultyBits == b.FaultyBits &&
		a.FieldName == b.FieldName && a.RegimeK == b.RegimeK && a.Catastrophic == b.Catastrophic &&
		fb(a.OrigValue) == fb(b.OrigValue) && fb(a.ReprValue) == fb(b.ReprValue) &&
		fb(a.FaultyVal) == fb(b.FaultyVal) && fb(a.AbsErr) == fb(b.AbsErr) && fb(a.RelErr) == fb(b.RelErr)
}

// TestRunRangeValidation: malformed bit ranges are rejected.
func TestRunRangeValidation(t *testing.T) {
	data := []float64{1, 2, 3}
	codec := mustCodec(t, "posit16")
	for _, r := range [][2]int{{-1, 4}, {0, 17}, {8, 8}, {9, 3}} {
		if _, err := RunRange(context.Background(), smallCfg(), codec, "x", data, r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d) should error", r[0], r[1])
		}
	}
}
