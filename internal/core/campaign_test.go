package core

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"positres/internal/numfmt"
	"positres/internal/qcat"
	"positres/internal/sdrbench"
	"positres/internal/stats"
)

func testData(t *testing.T, key string, n int) []float64 {
	t.Helper()
	f, err := sdrbench.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	return sdrbench.ToFloat64(f.Generate(n, 7))
}

func mustCodec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.TrialsPerBit = 25
	return cfg
}

// TestRunDeterministicAcrossWorkers: identical results at 1, 2 and 8
// workers — the determinism guarantee of the engine.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	data := testData(t, "Hurricane/Uf30", 20000)
	codec := mustCodec(t, "posit32")
	var results []*Result
	for _, w := range []int{1, 2, 8} {
		cfg := smallCfg()
		cfg.Workers = w
		r, err := Run(context.Background(), cfg, codec, "Hurricane/Uf30", data)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if !reflect.DeepEqual(results[0].Trials, results[1].Trials) ||
		!reflect.DeepEqual(results[0].Trials, results[2].Trials) {
		t.Fatal("campaign results depend on worker count")
	}
}

// TestRunShape: trial layout covers every (bit, seq) pair exactly once.
func TestRunShape(t *testing.T) {
	data := testData(t, "CESM/RELHUM", 5000)
	codec := mustCodec(t, "posit16")
	cfg := smallCfg()
	r, err := Run(context.Background(), cfg, codec, "CESM/RELHUM", data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trials) != 16*cfg.TrialsPerBit {
		t.Fatalf("trial count %d", len(r.Trials))
	}
	seen := map[[2]int]bool{}
	for _, tr := range r.Trials {
		if tr.Bit < 0 || tr.Bit >= 16 || tr.Seq < 0 || tr.Seq >= cfg.TrialsPerBit {
			t.Fatalf("trial out of range: %+v", tr)
		}
		key := [2]int{tr.Bit, tr.Seq}
		if seen[key] {
			t.Fatalf("duplicate trial %v", key)
		}
		seen[key] = true
		if tr.Index < 0 || tr.Index >= len(data) {
			t.Fatal("index out of range")
		}
		if tr.OrigValue != data[tr.Index] {
			t.Fatal("OrigValue mismatch")
		}
		if tr.FaultyBits == tr.OrigBits {
			t.Fatal("flip did not change pattern")
		}
		if tr.FaultyBits^tr.OrigBits != uint64(1)<<uint(tr.Bit) {
			t.Fatal("flip touched wrong bit")
		}
		if tr.Field != "CESM/RELHUM" || tr.Codec != "posit16" {
			t.Fatal("provenance wrong")
		}
	}
}

// TestTrialErrorsConsistent: recorded errors equal recomputation from
// the recorded values, and sign-bit trials have the right field name.
func TestTrialErrorsConsistent(t *testing.T) {
	data := testData(t, "HACC/vx", 10000)
	for _, name := range []string{"posit32", "ieee32"} {
		codec := mustCodec(t, name)
		r, err := Run(context.Background(), smallCfg(), codec, "HACC/vx", data)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range r.Trials {
			if !tr.Catastrophic {
				wantAbs := math.Abs(tr.OrigValue - tr.FaultyVal)
				if tr.AbsErr != wantAbs {
					t.Fatalf("abs err mismatch: %+v", tr)
				}
				if tr.OrigValue != 0 && tr.RelErr != wantAbs/math.Abs(tr.OrigValue) {
					t.Fatalf("rel err mismatch: %+v", tr)
				}
			}
			if tr.Bit == codec.Width()-1 && tr.FieldName != "sign" {
				t.Fatalf("top bit should be sign: %+v", tr)
			}
			if name == "ieee32" && tr.RegimeK != 0 {
				t.Fatal("IEEE trials must not carry a regime size")
			}
			if name == "posit32" && tr.RegimeK < 1 {
				t.Fatalf("posit trial without regime size: %+v", tr)
			}
		}
	}
}

// TestSkipZeros: with SkipZeros, zero elements are never selected from
// a mostly-zero field; without it, they are.
func TestSkipZeros(t *testing.T) {
	data := testData(t, "Hurricane/CLOUDf48", 20000) // ~62% zeros
	codec := mustCodec(t, "posit32")
	cfg := smallCfg()
	r, err := Run(context.Background(), cfg, codec, "Hurricane/CLOUDf48", data)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range r.Trials {
		if tr.OrigValue == 0 {
			t.Fatal("zero selected despite SkipZeros")
		}
	}
	cfg.SkipZeros = false
	r, err = Run(context.Background(), cfg, codec, "Hurricane/CLOUDf48", data)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, tr := range r.Trials {
		if tr.OrigValue == 0 {
			zeros++
			if !tr.Catastrophic {
				t.Fatal("zero-origin flip must be catastrophic")
			}
		}
	}
	if zeros == 0 {
		t.Error("expected zero selections with SkipZeros off")
	}
}

func TestRunErrors(t *testing.T) {
	codec := mustCodec(t, "posit32")
	if _, err := Run(context.Background(), smallCfg(), codec, "x", nil); err == nil {
		t.Error("empty data should error")
	}
	cfg := smallCfg()
	cfg.TrialsPerBit = 0
	if _, err := Run(context.Background(), cfg, codec, "x", []float64{1}); err == nil {
		t.Error("zero trials should error")
	}
}

func TestRunAll(t *testing.T) {
	data := testData(t, "CESM/CLOUD", 5000)
	codecs := []numfmt.Codec{mustCodec(t, "posit32"), mustCodec(t, "ieee32")}
	rs, err := RunAll(context.Background(), smallCfg(), codecs, "CESM/CLOUD", data)
	if err != nil || len(rs) != 2 {
		t.Fatalf("RunAll: %v", err)
	}
	if rs[0].Codec != "posit32" || rs[1].Codec != "ieee32" {
		t.Error("result order")
	}
}

// TestAggregateByBit: counts and means match hand computation.
func TestAggregateByBit(t *testing.T) {
	trials := []Trial{
		{Bit: 0, RelErr: 1, AbsErr: 10, FieldName: "fraction"},
		{Bit: 0, RelErr: 3, AbsErr: 30, FieldName: "fraction"},
		{Bit: 0, Catastrophic: true, FieldName: "sign"},
		{Bit: 2, RelErr: 5, AbsErr: 50, FieldName: "regime"},
	}
	aggs := AggregateByBit(trials)
	if len(aggs) != 2 || aggs[0].Bit != 0 || aggs[1].Bit != 2 {
		t.Fatalf("agg shape: %+v", aggs)
	}
	a := aggs[0]
	if a.Trials != 3 || a.Catastrophic != 1 || a.MeanRelErr != 2 || a.MedianRelErr != 2 {
		t.Errorf("bit0 agg: %+v", a)
	}
	if a.MaxRelErr != 3 || a.MeanAbsErr != 20 || a.MaxAbsErr != 30 {
		t.Errorf("bit0 agg extremes: %+v", a)
	}
	if math.Abs(a.FieldShare["fraction"]-2.0/3) > 1e-12 || math.Abs(a.FieldShare["sign"]-1.0/3) > 1e-12 {
		t.Errorf("field share: %+v", a.FieldShare)
	}
	if g := math.Sqrt(3.0); math.Abs(a.GeoRelErr-g) > 1e-12 {
		t.Errorf("geo mean: %v want %v", a.GeoRelErr, g)
	}
	// All-catastrophic bit: NaN aggregates.
	aggs = AggregateByBit([]Trial{{Bit: 1, Catastrophic: true}})
	if !math.IsNaN(aggs[0].MeanRelErr) || aggs[0].Catastrophic != 1 {
		t.Errorf("all-catastrophic agg: %+v", aggs[0])
	}
}

func TestMagnitudeFiltersAndRegimeBuckets(t *testing.T) {
	trials := []Trial{
		{ReprValue: 2, RegimeK: 1},
		{ReprValue: -3, RegimeK: 2},
		{ReprValue: 0.5, RegimeK: 1},
		{ReprValue: -0.25, RegimeK: 2},
		{ReprValue: 0, RegimeK: 0},
	}
	above := MagnitudeAbove(trials)
	below := MagnitudeBelow(trials)
	if len(above) != 2 || len(below) != 2 {
		t.Fatalf("filters: %d above, %d below", len(above), len(below))
	}
	buckets := ByRegimeSize(trials)
	if len(buckets[1]) != 2 || len(buckets[2]) != 2 || len(buckets[0]) != 1 {
		t.Errorf("regime buckets: %v", buckets)
	}
	curves := RegimeCurve(above)
	if len(curves) != 2 {
		t.Errorf("regime curves: %v", curves)
	}
}

func TestSignBitErrorsAndBoxes(t *testing.T) {
	trials := []Trial{
		{Bit: 31, RegimeK: 1, AbsErr: 2},
		{Bit: 31, RegimeK: 1, AbsErr: 4},
		{Bit: 31, RegimeK: 3, AbsErr: 100},
		{Bit: 31, RegimeK: 2, Catastrophic: true},
		{Bit: 30, RegimeK: 1, AbsErr: 7}, // not the sign bit
	}
	errs := SignBitErrors(trials, 32)
	if len(errs[1]) != 2 || len(errs[3]) != 1 || len(errs[2]) != 0 {
		t.Errorf("sign errors: %v", errs)
	}
	boxes := SignBoxes(trials, 32)
	if len(boxes) != 2 || boxes[0].K != 1 || boxes[1].K != 3 {
		t.Fatalf("boxes: %+v", boxes)
	}
	if boxes[0].Box.Median != 3 {
		t.Errorf("k=1 median: %+v", boxes[0].Box)
	}
}

func TestFieldErrorSummary(t *testing.T) {
	trials := []Trial{
		{FieldName: "regime", RelErr: 10, AbsErr: 1},
		{FieldName: "regime", RelErr: 20, AbsErr: 2},
		{FieldName: "fraction", RelErr: 0.1, AbsErr: 0.2},
	}
	sum := FieldErrorSummary(trials)
	if sum["regime"].MeanRelErr != 15 || sum["fraction"].MeanRelErr != 0.1 {
		t.Errorf("field summary: %+v", sum)
	}
}

// TestCSVRoundTrip: write → read reproduces the trials exactly.
func TestCSVRoundTrip(t *testing.T) {
	data := testData(t, "Nyx/temperature", 3000)
	r, err := Run(context.Background(), smallCfg(), mustCodec(t, "posit32"), "Nyx/temperature", data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrialsCSV(&buf, r.Trials); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrialsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(r.Trials) {
		t.Fatalf("read %d trials, want %d", len(back), len(r.Trials))
	}
	for i := range back {
		a, b := back[i], r.Trials[i]
		// Infinities survive the g-format round trip; compare all
		// fields except float NaN identity.
		if a.Field != b.Field || a.Codec != b.Codec || a.Bit != b.Bit || a.Seq != b.Seq ||
			a.Index != b.Index || a.OrigBits != b.OrigBits || a.FaultyBits != b.FaultyBits ||
			a.FieldName != b.FieldName || a.RegimeK != b.RegimeK || a.Catastrophic != b.Catastrophic {
			t.Fatalf("row %d mismatch:\n%+v\n%+v", i, a, b)
		}
		if a.OrigValue != b.OrigValue || a.ReprValue != b.ReprValue {
			t.Fatalf("row %d value mismatch", i)
		}
		if a.AbsErr != b.AbsErr && !(math.IsNaN(a.AbsErr) && math.IsNaN(b.AbsErr)) {
			t.Fatalf("row %d abs err mismatch", i)
		}
		if a.FaultyVal != b.FaultyVal && !(math.IsNaN(a.FaultyVal) && math.IsNaN(b.FaultyVal)) {
			t.Fatalf("row %d faulty value mismatch", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadTrialsCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty stream should error")
	}
	if _, err := ReadTrialsCSV(bytes.NewBufferString("a,b\n")); err == nil {
		t.Error("bad header should error")
	}
}

// TestFaultyArrayStats: incremental stats equal a full recompute.
func TestFaultyArrayStats(t *testing.T) {
	data := testData(t, "Hurricane/Vf30", 4000)
	base := stats.Summarize(data)
	r, err := Run(context.Background(), smallCfg(), mustCodec(t, "ieee32"), "Hurricane/Vf30", data)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range r.Trials[:200] {
		got := FaultyArrayStats(base, data, tr)
		tmp := append([]float64(nil), data...)
		tmp[tr.Index] = tr.FaultyVal
		want := stats.Summarize(tmp)
		tol := 1e-9 * math.Max(1, math.Abs(want.Mean))
		if math.Abs(got.Mean-want.Mean) > tol {
			t.Fatalf("mean: %v vs %v", got.Mean, want.Mean)
		}
		if got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("extremes: %v/%v vs %v/%v", got.Min, got.Max, want.Min, want.Max)
		}
		if got.Median != want.Median {
			t.Fatalf("median: %v vs %v", got.Median, want.Median)
		}
		if math.Abs(got.Std-want.Std) > 1e-6*math.Max(1, want.Std) {
			t.Fatalf("std: %v vs %v", got.Std, want.Std)
		}
	}
}

// TestMultiBit: determinism, flip counts, and error monotony of the
// catastrophic rate in the flip count.
func TestMultiBit(t *testing.T) {
	data := testData(t, "HACC/vy", 10000)
	codec := mustCodec(t, "posit32")
	cfg := smallCfg()
	a, err := RunMultiBit(cfg, codec, "HACC/vy", data, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiBit(cfg, codec, "HACC/vy", data, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("multi-bit campaign not deterministic")
	}
	for _, tr := range a {
		if len(tr.Positions) != 2 || tr.Positions[0] >= tr.Positions[1] {
			t.Fatalf("positions: %v", tr.Positions)
		}
	}
	s := SummarizeMulti(a)
	if s.Trials != 300 || s.FlipCount != 2 {
		t.Errorf("summary: %+v", s)
	}
	if _, err := RunMultiBit(cfg, codec, "x", data, 0, 10); err == nil {
		t.Error("flip count 0 should error")
	}
	if _, err := RunMultiBit(cfg, codec, "x", data, 33, 10); err == nil {
		t.Error("flip count > width should error")
	}
	if _, err := RunMultiBit(cfg, codec, "x", nil, 1, 10); err == nil {
		t.Error("empty data should error")
	}
}

func TestSDCProbability(t *testing.T) {
	trials := []Trial{
		{Bit: 0, RelErr: 0.5},
		{Bit: 0, RelErr: 2},
		{Bit: 0, Catastrophic: true},
		{Bit: 1, RelErr: 0.001},
	}
	pts := SDCProbability(trials, 1.0)
	if len(pts) != 2 || pts[0].Bit != 0 || pts[1].Bit != 1 {
		t.Fatalf("points: %+v", pts)
	}
	if math.Abs(pts[0].Prob-2.0/3) > 1e-12 || pts[1].Prob != 0 {
		t.Errorf("probs: %+v", pts)
	}
	if got := OverallSDCRate(trials, 1.0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("overall: %v", got)
	}
	if !math.IsNaN(OverallSDCRate(nil, 1)) {
		t.Error("empty overall should be NaN")
	}
}

func TestECDF(t *testing.T) {
	trials := []Trial{
		{RelErr: 0.1}, {RelErr: 0.3}, {RelErr: 0.2}, {Catastrophic: true},
	}
	x, p, inf := ECDF(trials)
	if len(x) != 3 || x[0] != 0.1 || x[2] != 0.3 {
		t.Fatalf("x: %v", x)
	}
	if p[0] != 0.25 || p[2] != 0.75 {
		t.Errorf("p: %v", p)
	}
	if inf != 0.25 {
		t.Errorf("inf frac: %v", inf)
	}
	if x, _, _ := ECDF(nil); x != nil {
		t.Error("empty ECDF")
	}
}

// TestSDCCurvesPositVsIEEE: at a tolerance of 100% relative error, the
// posit campaign corrupts at most as often as IEEE on upper bits, and
// the overall corruption rate is lower or comparable.
func TestSDCCurvesPositVsIEEE(t *testing.T) {
	data := testData(t, "CESM/RELHUM", 20000)
	cfg := smallCfg()
	cfg.TrialsPerBit = 60
	pR, err := Run(context.Background(), cfg, mustCodec(t, "posit32"), "CESM/RELHUM", data)
	if err != nil {
		t.Fatal(err)
	}
	iR, err := Run(context.Background(), cfg, mustCodec(t, "ieee32"), "CESM/RELHUM", data)
	if err != nil {
		t.Fatal(err)
	}
	// Massive-corruption probability (rel err > 1e6): IEEE exponent
	// bits corrupt near-certainly; posit upper bits rarely.
	pPts := SDCProbability(pR.Trials, 1e6)
	iPts := SDCProbability(iR.Trials, 1e6)
	var pMax, iMax float64
	for _, pt := range pPts {
		if pt.Bit >= 24 && pt.Bit <= 30 && pt.Prob > pMax {
			pMax = pt.Prob
		}
	}
	for _, pt := range iPts {
		if pt.Bit >= 24 && pt.Bit <= 30 && pt.Prob > iMax {
			iMax = pt.Prob
		}
	}
	if !(iMax > 0.9) {
		t.Errorf("IEEE upper-bit massive-corruption prob %v, want > 0.9", iMax)
	}
	if !(pMax < iMax/2) {
		t.Errorf("posit upper-bit corruption %v not well below IEEE %v", pMax, iMax)
	}
}

// TestTrialArrayMetricsMatchesQCAT: the O(1) derivation equals a full
// qcat.Compare over materialized faulty arrays.
func TestTrialArrayMetricsMatchesQCAT(t *testing.T) {
	data := testData(t, "Hurricane/Wf30", 3000)
	base := stats.Summarize(data)
	nNonzero := CountNonzero(data)
	valueRange := base.Max - base.Min
	for _, name := range []string{"posit32", "ieee32"} {
		r, err := Run(context.Background(), smallCfg(), mustCodec(t, name), "Hurricane/Wf30", data)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range r.Trials[:300] {
			got := TrialArrayMetrics(tr, len(data), nNonzero, valueRange)
			faulty := append([]float64(nil), data...)
			faulty[tr.Index] = tr.FaultyVal
			want := qcat.Compare(data, faulty)
			if !metricsEqual(got, want) {
				t.Fatalf("%s trial %+v:\nderived %+v\ncompare %+v", name, tr, got, want)
			}
		}
	}
}

func metricsEqual(a, b qcat.Metrics) bool {
	eq := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return math.IsNaN(x) && math.IsNaN(y)
		}
		if math.IsInf(x, 0) || math.IsInf(y, 0) {
			return x == y
		}
		return math.Abs(x-y) <= 1e-12*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	return a.N == b.N && a.SpecialValues == b.SpecialValues &&
		eq(a.MaxAbsErr, b.MaxAbsErr) && eq(a.MaxRelErr, b.MaxRelErr) &&
		eq(a.MSE, b.MSE) && eq(a.RMSE, b.RMSE) && eq(a.L2Norm, b.L2Norm) &&
		eq(a.MRED, b.MRED) && eq(a.NRMSE, b.NRMSE) && eq(a.PSNR, b.PSNR) &&
		eq(a.MaxValRangeRelErr, b.MaxValRangeRelErr)
}

// TestRunMatrix: a multi-job sweep returns ordered, deterministic
// results and matches individually run campaigns.
func TestRunMatrix(t *testing.T) {
	f1, _ := sdrbench.Lookup("CESM/CLOUD")
	f2, _ := sdrbench.Lookup("HACC/vx")
	cfg := smallCfg()
	jobs := []MatrixJob{
		{Field: f1, Codec: mustCodec(t, "posit32"), N: 4000, Seed: 7},
		{Field: f1, Codec: mustCodec(t, "ieee32"), N: 4000, Seed: 7},
		{Field: f2, Codec: mustCodec(t, "posit32"), N: 4000, Seed: 7},
	}
	rs, err := RunMatrix(context.Background(), cfg, jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Codec != "posit32" || rs[1].Codec != "ieee32" || rs[2].Field != "HACC/vx" {
		t.Fatalf("results: %v %v %v", rs[0].Codec, rs[1].Codec, rs[2].Field)
	}
	// Equal to a standalone run of the same job.
	data := sdrbench.ToFloat64(f1.Generate(4000, 7))
	solo, err := Run(context.Background(), cfg, mustCodec(t, "posit32"), f1.Key(), data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo.Trials, rs[0].Trials) {
		t.Fatal("matrix result differs from standalone run")
	}
	// Errors propagate.
	bad := []MatrixJob{{Field: f1, Codec: mustCodec(t, "posit32"), N: 0, Seed: 1}}
	if _, err := RunMatrix(context.Background(), cfg, bad, 1); err == nil {
		t.Error("zero-N job should error")
	}
}

func TestFullSweepJobs(t *testing.T) {
	jobs, err := FullSweepJobs([]string{"posit32", "ieee32"}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 32 { // 16 fields × 2 formats
		t.Fatalf("jobs: %d", len(jobs))
	}
	if _, err := FullSweepJobs([]string{"bogus"}, 1000, 1); err == nil {
		t.Error("unknown codec should error")
	}
}

// TestRunRangeIntoReusesBuffer: a caller-supplied buffer with enough
// capacity is filled in place and the results are identical to an
// allocating run — the hot-path contract runner and positbench lean on.
func TestRunRangeIntoReusesBuffer(t *testing.T) {
	data := testData(t, "Hurricane/Uf30", 20000)
	codec := mustCodec(t, "posit32")
	cfg := smallCfg()
	cfg.Workers = 1

	fresh, err := RunRange(context.Background(), cfg, codec, "Hurricane/Uf30", data, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Trial, len(fresh))
	got, err := RunRangeInto(context.Background(), cfg, codec, "Hurricane/Uf30", data, 4, 9, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("RunRangeInto did not fill the supplied buffer in place")
	}
	if !reflect.DeepEqual(fresh, got) {
		t.Fatal("buffered run differs from allocating run")
	}

	// Undersized buffer: falls back to allocation, same results.
	got2, err := RunRangeInto(context.Background(), cfg, codec, "Hurricane/Uf30", data, 4, 9, buf[:0:1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, got2) {
		t.Fatal("undersized-buffer run differs from allocating run")
	}

	// Pooled path honors the buffer too.
	cfg.Workers = 4
	got3, err := RunRangeInto(context.Background(), cfg, codec, "Hurricane/Uf30", data, 4, 9, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, got3) {
		t.Fatal("pooled buffered run differs from serial run")
	}
}

// TestRunRangeSerialZeroAllocs pins the tentpole property of PR 9:
// with one worker and a reused buffer the campaign loop allocates
// nothing per call (BENCH_PR9.json carries the benchmark-grade
// number; this is the cheap regression tripwire).
func TestRunRangeSerialZeroAllocs(t *testing.T) {
	data := testData(t, "Hurricane/Uf30", 20000)
	codec := mustCodec(t, "posit32")
	cfg := smallCfg()
	cfg.Workers = 1
	ctx := context.Background()
	buf := make([]Trial, 2*cfg.TrialsPerBit)
	allocs := testing.AllocsPerRun(10, func() {
		var err error
		buf, err = RunRangeInto(ctx, cfg, codec, "Hurricane/Uf30", data, 3, 5, buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("serial RunRangeInto allocates %.1f per call, want 0", allocs)
	}
}
