package core

import (
	"math"
	"sort"

	"positres/internal/stats"
)

// BitAgg aggregates all trials at one bit position — one point on the
// paper's per-bit error curves (Figs. 3, 10, 11, 14, 16, 18).
type BitAgg struct {
	Bit    int // bit position, 0 = LSB
	Trials int // trials aggregated at this position
	// Catastrophic counts flips whose faulty value decoded to
	// NaN/Inf/NaR (or whose original was zero).
	Catastrophic int

	// MeanRelErr and the following aggregates summarize the
	// non-catastrophic trials only.
	MeanRelErr   float64
	MedianRelErr float64 // median relative error
	GeoRelErr    float64 // geometric mean relative error (zero errors floored)
	MaxRelErr    float64 // worst relative error
	MeanAbsErr   float64 // mean absolute error
	MedianAbsErr float64 // median absolute error
	MaxAbsErr    float64 // worst absolute error

	// Field attribution: fraction of trials whose flipped bit fell in
	// each field at this position (posit fields move per value).
	FieldShare map[string]float64
}

// AggregateByBit groups trials by bit position. Bits with no trials
// are omitted; results are sorted by bit.
func AggregateByBit(trials []Trial) []BitAgg {
	byBit := map[int][]Trial{}
	for _, tr := range trials {
		byBit[tr.Bit] = append(byBit[tr.Bit], tr)
	}
	bits := make([]int, 0, len(byBit))
	for b := range byBit {
		bits = append(bits, b)
	}
	sort.Ints(bits)
	out := make([]BitAgg, 0, len(bits))
	for _, b := range bits {
		out = append(out, aggregateOne(b, byBit[b]))
	}
	return out
}

func aggregateOne(bit int, trials []Trial) BitAgg {
	agg := BitAgg{Bit: bit, Trials: len(trials), FieldShare: map[string]float64{}}
	var rels, abss []float64
	for _, tr := range trials {
		agg.FieldShare[tr.FieldName] += 1 / float64(len(trials))
		if tr.Catastrophic {
			agg.Catastrophic++
			continue
		}
		rels = append(rels, tr.RelErr)
		abss = append(abss, tr.AbsErr)
	}
	if len(rels) == 0 {
		agg.MeanRelErr = math.NaN()
		agg.MedianRelErr = math.NaN()
		agg.GeoRelErr = math.NaN()
		agg.MaxRelErr = math.NaN()
		agg.MeanAbsErr = math.NaN()
		agg.MedianAbsErr = math.NaN()
		agg.MaxAbsErr = math.NaN()
		return agg
	}
	agg.MeanRelErr = stats.Mean(rels)
	agg.MedianRelErr = stats.Median(rels)
	agg.GeoRelErr = stats.GeoMean(rels)
	agg.MaxRelErr = stats.Max(rels)
	agg.MeanAbsErr = stats.Mean(abss)
	agg.MedianAbsErr = stats.Median(abss)
	agg.MaxAbsErr = stats.Max(abss)
	return agg
}

// Filter returns the trials satisfying pred.
func Filter(trials []Trial, pred func(Trial) bool) []Trial {
	var out []Trial
	for _, tr := range trials {
		if pred(tr) {
			out = append(out, tr)
		}
	}
	return out
}

// MagnitudeAbove selects trials whose encoded value has |v| > 1 — the
// population of the paper's Fig. 11.
func MagnitudeAbove(trials []Trial) []Trial {
	return Filter(trials, func(tr Trial) bool { return math.Abs(tr.ReprValue) > 1 })
}

// MagnitudeBelow selects trials with 0 < |v| < 1 — Fig. 14's population.
func MagnitudeBelow(trials []Trial) []Trial {
	return Filter(trials, func(tr Trial) bool {
		a := math.Abs(tr.ReprValue)
		return a > 0 && a < 1
	})
}

// ByRegimeSize groups trials by the regime run length k of the
// original pattern (paper eq. 1 sorting, §5.4: "the equation to
// calculate regime size is implemented to sort results").
func ByRegimeSize(trials []Trial) map[int][]Trial {
	out := map[int][]Trial{}
	for _, tr := range trials {
		out[tr.RegimeK] = append(out[tr.RegimeK], tr)
	}
	return out
}

// RegimeCurve aggregates by bit within each regime-size bucket,
// producing the family of curves in Figs. 11 and 14.
func RegimeCurve(trials []Trial) map[int][]BitAgg {
	out := map[int][]BitAgg{}
	for k, ts := range ByRegimeSize(trials) {
		out[k] = AggregateByBit(ts)
	}
	return out
}

// SignBitErrors extracts the absolute errors of sign-bit flips grouped
// by regime size — the box-plot populations of Fig. 20.
func SignBitErrors(trials []Trial, width int) map[int][]float64 {
	out := map[int][]float64{}
	for _, tr := range trials {
		if tr.Bit != width-1 || tr.Catastrophic {
			continue
		}
		out[tr.RegimeK] = append(out[tr.RegimeK], tr.AbsErr)
	}
	return out
}

// SignBoxes renders the Fig. 20 five-number summaries per regime size,
// sorted by k.
func SignBoxes(trials []Trial, width int) []struct {
	K   int
	Box stats.BoxStats
} {
	errs := SignBitErrors(trials, width)
	ks := make([]int, 0, len(errs))
	for k := range errs {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([]struct {
		K   int
		Box stats.BoxStats
	}, 0, len(ks))
	for _, k := range ks {
		out = append(out, struct {
			K   int
			Box stats.BoxStats
		}{k, stats.Box(errs[k])})
	}
	return out
}

// FieldErrorSummary groups trials by the name of the flipped field and
// summarizes each group's relative error — the paper's §5 narrative
// (regime vs exponent vs fraction vs sign).
func FieldErrorSummary(trials []Trial) map[string]BitAgg {
	byField := map[string][]Trial{}
	for _, tr := range trials {
		byField[tr.FieldName] = append(byField[tr.FieldName], tr)
	}
	out := map[string]BitAgg{}
	for name, ts := range byField {
		out[name] = aggregateOne(-1, ts)
	}
	return out
}
