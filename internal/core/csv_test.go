package core

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"testing"
)

// stdlibTrialsCSV is the reference implementation WriteTrialsCSV
// replaced: a csv.Writer fed FormatFloat strings. WriteTrialsCSV's
// manual row encoder must stay byte-identical to it — the final
// campaign CSVs are the repo's acceptance oracle.
func stdlibTrialsCSV(t *testing.T, trials []Trial) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	if err := cw.Write(trialHeader); err != nil {
		t.Fatal(err)
	}
	row := make([]string, len(trialHeader))
	for i := range trials {
		tr := &trials[i]
		row[0] = tr.Field
		row[1] = tr.Codec
		row[2] = strconv.Itoa(tr.Bit)
		row[3] = strconv.Itoa(tr.Seq)
		row[4] = strconv.Itoa(tr.Index)
		row[5] = strconv.FormatFloat(tr.OrigValue, 'g', -1, 64)
		row[6] = strconv.FormatFloat(tr.ReprValue, 'g', -1, 64)
		row[7] = strconv.FormatUint(tr.OrigBits, 16)
		row[8] = strconv.FormatUint(tr.FaultyBits, 16)
		row[9] = strconv.FormatFloat(tr.FaultyVal, 'g', -1, 64)
		row[10] = tr.FieldName
		row[11] = strconv.Itoa(tr.RegimeK)
		row[12] = strconv.FormatFloat(tr.AbsErr, 'g', -1, 64)
		row[13] = strconv.FormatFloat(tr.RelErr, 'g', -1, 64)
		row[14] = strconv.FormatBool(tr.Catastrophic)
		if err := cw.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriteTrialsCSVMatchesStdlib pins the allocation-free row encoder
// byte-for-byte against encoding/csv, including every quoting edge the
// stdlib writer has: delimiter/quote/CR/LF in a field, leading
// (unicode) space, the SQL null sentinel `\.`, an empty field, and the
// float corner values.
func TestWriteTrialsCSVMatchesStdlib(t *testing.T) {
	trials := []Trial{
		{
			Field: "Hurricane/Vf30", Codec: "posit32", Bit: 17, Seq: 3, Index: 12345,
			OrigValue: 1.5, ReprValue: 1.5, OrigBits: 0x4030_0000, FaultyBits: 0x4030_0002,
			FaultyVal: 1.5000004768371582, FieldName: "fraction", RegimeK: 1,
			AbsErr: 4.76837158203125e-07, RelErr: 3.1789143880208336e-07,
		},
		{Field: "comma,field", Codec: `quo"te`, FieldName: "line\nbreak"},
		{Field: "cr\rreturn", Codec: " leadspace", FieldName: " nbsp"},
		{Field: `\.`, Codec: "", FieldName: "tab\tinside"},
		{
			Field: "edge/floats", Codec: "posit64", Bit: 63, Seq: -2, Index: 0,
			OrigValue: math.Inf(1), ReprValue: math.Inf(-1),
			OrigBits: math.MaxUint64, FaultyBits: 0,
			FaultyVal: math.NaN(), RegimeK: -31,
			AbsErr: math.SmallestNonzeroFloat64, RelErr: math.MaxFloat64,
			Catastrophic: true,
		},
	}
	want := stdlibTrialsCSV(t, trials)
	var got bytes.Buffer
	if err := WriteTrialsCSV(&got, trials); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("WriteTrialsCSV diverges from encoding/csv:\ngot:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}

// TestWriteTrialsCSVFlushBoundary crosses the csvFlushAt buffer
// boundary so the flush-and-reuse path is exercised, and verifies the
// split output still round-trips.
func TestWriteTrialsCSVFlushBoundary(t *testing.T) {
	n := csvFlushAt/40 + 100 // comfortably past one flush
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{
			Field: "flush/field", Codec: "posit16", Bit: i % 16, Seq: i, Index: i * 7,
			OrigValue: float64(i) * 0.25, ReprValue: float64(i) * 0.25,
			OrigBits: uint64(i), FaultyBits: uint64(i ^ 1),
			FaultyVal: float64(i)*0.25 + 1, FieldName: "fraction",
			RegimeK: i%8 - 4, AbsErr: 1, RelErr: 0.5, Catastrophic: i%3 == 0,
		}
	}
	want := stdlibTrialsCSV(t, trials)
	var got bytes.Buffer
	if err := WriteTrialsCSV(&got, trials); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("flush-boundary output diverges from encoding/csv")
	}
	back, err := ReadTrialsCSV(&got)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != n {
		t.Fatalf("round-trip rows = %d, want %d", len(back), n)
	}
}
