package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// trialHeader is the CSV schema, mirroring the paper's "write them to
// a log file in CSV form for offline analysis" step.
var trialHeader = []string{
	"field", "codec", "bit", "seq", "index",
	"orig_value", "repr_value", "orig_bits", "faulty_bits", "faulty_value",
	"bit_field", "regime_k", "abs_err", "rel_err", "catastrophic",
}

// WriteTrialsCSV streams trials to w as CSV with a header row.
func WriteTrialsCSV(w io.Writer, trials []Trial) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(trialHeader); err != nil {
		return fmt.Errorf("core: csv header: %w", err)
	}
	row := make([]string, len(trialHeader))
	for i := range trials {
		tr := &trials[i]
		row[0] = tr.Field
		row[1] = tr.Codec
		row[2] = strconv.Itoa(tr.Bit)
		row[3] = strconv.Itoa(tr.Seq)
		row[4] = strconv.Itoa(tr.Index)
		row[5] = strconv.FormatFloat(tr.OrigValue, 'g', -1, 64)
		row[6] = strconv.FormatFloat(tr.ReprValue, 'g', -1, 64)
		row[7] = strconv.FormatUint(tr.OrigBits, 16)
		row[8] = strconv.FormatUint(tr.FaultyBits, 16)
		row[9] = strconv.FormatFloat(tr.FaultyVal, 'g', -1, 64)
		row[10] = tr.FieldName
		row[11] = strconv.Itoa(tr.RegimeK)
		row[12] = strconv.FormatFloat(tr.AbsErr, 'g', -1, 64)
		row[13] = strconv.FormatFloat(tr.RelErr, 'g', -1, 64)
		row[14] = strconv.FormatBool(tr.Catastrophic)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("core: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrialsCSV parses a trial log written by WriteTrialsCSV.
func ReadTrialsCSV(r io.Reader) ([]Trial, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(trialHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: csv header: %w", err)
	}
	for i, h := range trialHeader {
		if header[i] != h {
			return nil, fmt.Errorf("core: csv header mismatch at column %d: %q", i, header[i])
		}
	}
	var out []Trial
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("core: csv line %d: %w", line, err)
		}
		var tr Trial
		tr.Field, tr.Codec = row[0], row[1]
		if tr.Bit, err = strconv.Atoi(row[2]); err != nil {
			return nil, fmt.Errorf("core: csv line %d bit: %w", line, err)
		}
		if tr.Seq, err = strconv.Atoi(row[3]); err != nil {
			return nil, fmt.Errorf("core: csv line %d seq: %w", line, err)
		}
		if tr.Index, err = strconv.Atoi(row[4]); err != nil {
			return nil, fmt.Errorf("core: csv line %d index: %w", line, err)
		}
		if tr.OrigValue, err = strconv.ParseFloat(row[5], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d orig_value: %w", line, err)
		}
		if tr.ReprValue, err = strconv.ParseFloat(row[6], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d repr_value: %w", line, err)
		}
		if tr.OrigBits, err = strconv.ParseUint(row[7], 16, 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d orig_bits: %w", line, err)
		}
		if tr.FaultyBits, err = strconv.ParseUint(row[8], 16, 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d faulty_bits: %w", line, err)
		}
		if tr.FaultyVal, err = strconv.ParseFloat(row[9], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d faulty_value: %w", line, err)
		}
		tr.FieldName = row[10]
		if tr.RegimeK, err = strconv.Atoi(row[11]); err != nil {
			return nil, fmt.Errorf("core: csv line %d regime_k: %w", line, err)
		}
		if tr.AbsErr, err = strconv.ParseFloat(row[12], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d abs_err: %w", line, err)
		}
		if tr.RelErr, err = strconv.ParseFloat(row[13], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d rel_err: %w", line, err)
		}
		if tr.Catastrophic, err = strconv.ParseBool(row[14]); err != nil {
			return nil, fmt.Errorf("core: csv line %d catastrophic: %w", line, err)
		}
		out = append(out, tr)
	}
}
