package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// trialHeader is the CSV schema, mirroring the paper's "write them to
// a log file in CSV form for offline analysis" step.
var trialHeader = []string{
	"field", "codec", "bit", "seq", "index",
	"orig_value", "repr_value", "orig_bits", "faulty_bits", "faulty_value",
	"bit_field", "regime_k", "abs_err", "rel_err", "catastrophic",
}

// csvFlushAt bounds the row scratch buffer: once a batch of encoded
// rows crosses this size it is written out and the capacity reused, so
// arbitrarily large trial logs stream in constant memory.
const csvFlushAt = 64 << 10

// csvFieldNeedsQuotes mirrors encoding/csv's fieldNeedsQuotes for the
// default configuration (comma delimiter): the manual row encoder
// below must emit byte-identical output to a csv.Writer, and quoting
// is the only place the two could diverge.
func csvFieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` || strings.ContainsAny(field, ",\"\r\n") {
		return true
	}
	r1, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r1)
}

// appendCSVField appends one field with encoding/csv's quoting rules
// (UseCRLF == false: bare \r and \n inside quotes, doubled quotes).
func appendCSVField(dst []byte, field string) []byte {
	if !csvFieldNeedsQuotes(field) {
		return append(dst, field...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(field); i++ {
		c := field[i]
		if c == '"' {
			dst = append(dst, '"', '"')
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendTrialRow appends one trial as a CSV row (trailing newline
// included). Numeric and bool columns never contain delimiter or quote
// bytes, so only the three string columns route through the quoting
// helper.
func appendTrialRow(dst []byte, tr *Trial) []byte {
	dst = appendCSVField(dst, tr.Field)
	dst = append(dst, ',')
	dst = appendCSVField(dst, tr.Codec)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(tr.Bit), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(tr.Seq), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(tr.Index), 10)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, tr.OrigValue, 'g', -1, 64)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, tr.ReprValue, 'g', -1, 64)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, tr.OrigBits, 16)
	dst = append(dst, ',')
	dst = strconv.AppendUint(dst, tr.FaultyBits, 16)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, tr.FaultyVal, 'g', -1, 64)
	dst = append(dst, ',')
	dst = appendCSVField(dst, tr.FieldName)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(tr.RegimeK), 10)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, tr.AbsErr, 'g', -1, 64)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, tr.RelErr, 'g', -1, 64)
	dst = append(dst, ',')
	if tr.Catastrophic {
		dst = append(dst, "true"...)
	} else {
		dst = append(dst, "false"...)
	}
	return append(dst, '\n')
}

// AppendTrialHeader appends the CSV header row (trailing newline
// included) to dst. Together with AppendTrialRow it lets external
// renderers — the columnar store serving GET /results — reproduce
// WriteTrialsCSV's output byte-for-byte without materializing a
// []Trial slab.
func AppendTrialHeader(dst []byte) []byte {
	for i, h := range trialHeader {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, h...)
	}
	return append(dst, '\n')
}

// AppendTrialRow appends one trial as a CSV row (trailing newline
// included), exactly as WriteTrialsCSV encodes it.
func AppendTrialRow(dst []byte, tr *Trial) []byte { return appendTrialRow(dst, tr) }

// CSVFlushAt is the row-buffer flush threshold WriteTrialsCSV uses;
// external renderers built on AppendTrialRow adopt the same bound so
// streaming behavior (not bytes — flush boundaries are invisible in
// the output) matches the direct path.
const CSVFlushAt = csvFlushAt

// WriteTrialsCSV streams trials to w as CSV with a header row.
//
// Rows are encoded into a reused byte buffer with the strconv.Append
// family rather than through a csv.Writer, which would allocate one
// string per formatted column — at campaign scale that made CSV
// encoding the dominant allocator in the whole coordinator (see
// docs/PERF.md). TestWriteTrialsCSVMatchesStdlib pins the output
// byte-identical to encoding/csv.
func WriteTrialsCSV(w io.Writer, trials []Trial) error {
	buf := make([]byte, 0, csvFlushAt+512)
	buf = AppendTrialHeader(buf)
	for i := range trials {
		buf = appendTrialRow(buf, &trials[i])
		if len(buf) >= csvFlushAt {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("core: csv row %d: %w", i, err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("core: csv flush: %w", err)
		}
	}
	return nil
}

// ReadTrialsCSV parses a trial log written by WriteTrialsCSV.
func ReadTrialsCSV(r io.Reader) ([]Trial, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(trialHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: csv header: %w", err)
	}
	for i, h := range trialHeader {
		if header[i] != h {
			return nil, fmt.Errorf("core: csv header mismatch at column %d: %q", i, header[i])
		}
	}
	var out []Trial
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("core: csv line %d: %w", line, err)
		}
		var tr Trial
		tr.Field, tr.Codec = row[0], row[1]
		if tr.Bit, err = strconv.Atoi(row[2]); err != nil {
			return nil, fmt.Errorf("core: csv line %d bit: %w", line, err)
		}
		if tr.Seq, err = strconv.Atoi(row[3]); err != nil {
			return nil, fmt.Errorf("core: csv line %d seq: %w", line, err)
		}
		if tr.Index, err = strconv.Atoi(row[4]); err != nil {
			return nil, fmt.Errorf("core: csv line %d index: %w", line, err)
		}
		if tr.OrigValue, err = strconv.ParseFloat(row[5], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d orig_value: %w", line, err)
		}
		if tr.ReprValue, err = strconv.ParseFloat(row[6], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d repr_value: %w", line, err)
		}
		if tr.OrigBits, err = strconv.ParseUint(row[7], 16, 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d orig_bits: %w", line, err)
		}
		if tr.FaultyBits, err = strconv.ParseUint(row[8], 16, 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d faulty_bits: %w", line, err)
		}
		if tr.FaultyVal, err = strconv.ParseFloat(row[9], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d faulty_value: %w", line, err)
		}
		tr.FieldName = row[10]
		if tr.RegimeK, err = strconv.Atoi(row[11]); err != nil {
			return nil, fmt.Errorf("core: csv line %d regime_k: %w", line, err)
		}
		if tr.AbsErr, err = strconv.ParseFloat(row[12], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d abs_err: %w", line, err)
		}
		if tr.RelErr, err = strconv.ParseFloat(row[13], 64); err != nil {
			return nil, fmt.Errorf("core: csv line %d rel_err: %w", line, err)
		}
		if tr.Catastrophic, err = strconv.ParseBool(row[14]); err != nil {
			return nil, fmt.Errorf("core: csv line %d catastrophic: %w", line, err)
		}
		out = append(out, tr)
	}
}
