package core

// findings_test verifies that the paper's experimental findings (§5)
// emerge from this reproduction at reduced trial counts — the
// shape-level checks DESIGN.md §4 commits to.

import (
	"context"
	"math"
	"testing"
)

// runPair runs a small campaign on a field with both formats.
func runPair(t *testing.T, fieldKey string, n int) (positR, ieeeR *Result) {
	t.Helper()
	data := testData(t, fieldKey, n)
	cfg := DefaultConfig()
	cfg.TrialsPerBit = 80
	var err error
	positR, err = Run(context.Background(), cfg, mustCodec(t, "posit32"), fieldKey, data)
	if err != nil {
		t.Fatal(err)
	}
	ieeeR, err = Run(context.Background(), cfg, mustCodec(t, "ieee32"), fieldKey, data)
	if err != nil {
		t.Fatal(err)
	}
	return positR, ieeeR
}

// maxFinite returns the largest finite mean relative error over a bit
// range.
func maxMeanRel(aggs []BitAgg, lo, hi int) float64 {
	out := math.Inf(-1)
	for _, a := range aggs {
		if a.Bit >= lo && a.Bit <= hi && !math.IsNaN(a.MeanRelErr) && !math.IsInf(a.MeanRelErr, 0) {
			if a.MeanRelErr > out {
				out = a.MeanRelErr
			}
		}
	}
	return out
}

// TestFinding1IEEEExponentialSpike: IEEE-754 mean relative error grows
// catastrophically toward the upper exponent bits (≥ 1e30 at the top),
// while posits stay many orders of magnitude lower in the same
// positions (paper §5.3, Fig. 10).
func TestFinding1IEEEExponentialSpike(t *testing.T) {
	for _, field := range []string{"Nyx/temperature", "CESM/RELHUM"} {
		pR, iR := runPair(t, field, 30000)
		pAgg, iAgg := AggregateByBit(pR.Trials), AggregateByBit(iR.Trials)
		// Upper exponent bits of IEEE (28..30): astronomically large.
		// (For data with every |v| > 2 the top exponent bit is set and
		// its flip divides, so the worst finite spike comes from bit
		// 29's ×2^64 — still ≥ 1e15.)
		ieeeTop := maxMeanRel(iAgg, 28, 30)
		if ieeeTop < 1e15 {
			t.Errorf("%s: IEEE upper-exponent error %g, expected >= 1e15", field, ieeeTop)
		}
		positTop := maxMeanRel(pAgg, 24, 30)
		if positTop > ieeeTop/1e8 {
			t.Errorf("%s: posit upper-bit error %g not ≪ IEEE %g", field, positTop, ieeeTop)
		}
	}
}

// TestFinding2IEEESignExactlyTwo: IEEE sign-bit flips give relative
// error exactly 2 in every trial (§3.1).
func TestFinding2IEEESignExactlyTwo(t *testing.T) {
	_, iR := runPair(t, "HACC/vx", 20000)
	for _, tr := range iR.Trials {
		if tr.Bit == 31 && !tr.Catastrophic && tr.OrigValue == tr.ReprValue {
			if tr.RelErr != 2 {
				t.Fatalf("IEEE sign flip rel err %v, want exactly 2 (%+v)", tr.RelErr, tr)
			}
		}
	}
}

// TestFinding3PositExponentNoSpike: the posit exponent field causes no
// error spike — a flip shifts magnitude by at most ×4 (§5.6,
// Figs. 17–18), so every exponent-bit relative error is ≤ 3.
func TestFinding3PositExponentNoSpike(t *testing.T) {
	pR, _ := runPair(t, "Hurricane/Vf30", 20000)
	for _, tr := range pR.Trials {
		if tr.FieldName != "exponent" || tr.Catastrophic {
			continue
		}
		// |faulty| ∈ [|v|/4, 4|v|] ⇒ rel err ≤ 3 (when conversion error
		// is negligible, which holds for these moderate magnitudes).
		if tr.RelErr > 3.0001 {
			t.Fatalf("posit exponent flip rel err %v > 3: %+v", tr.RelErr, tr)
		}
	}
}

// TestFinding4FractionDoubling: in both formats, mean relative error
// of fraction bits roughly doubles per position toward the MSB (§5.5,
// Fig. 16). Verified as: error at the fraction's top bits exceeds the
// error at its bottom bits by at least 2^10 over ≥ 15 positions.
func TestFinding4FractionDoubling(t *testing.T) {
	pR, iR := runPair(t, "CESM/RELHUM", 20000)
	for name, r := range map[string]*Result{"posit32": pR, "ieee32": iR} {
		aggs := AggregateByBit(r.Trials)
		lo := maxMeanRel(aggs, 0, 2)
		hi := maxMeanRel(aggs, 18, 20) // still fraction for RELHUM-scale values
		if !(hi > lo*1e3) {
			t.Errorf("%s: fraction error did not grow toward MSB: %g -> %g", name, lo, hi)
		}
	}
}

// TestFinding5RkSpikeAboveOne: for posits with |v| > 1, the
// terminating regime bit R_k carries the largest error of the regime
// field (§5.4.1, Fig. 11): within a regime-size bucket, the error at
// the R_k position dwarfs the error at the fraction's top.
func TestFinding5RkSpikeAboveOne(t *testing.T) {
	pR, _ := runPair(t, "Nyx/temperature", 30000)
	above := MagnitudeAbove(pR.Trials)
	curves := RegimeCurve(above)
	checked := 0
	for k, aggs := range curves {
		if k < 2 || k > 6 {
			continue
		}
		// For a positive posit with regime run k, R_k sits at bit
		// position 31 - 1 - k = 30 - k.
		rkBit := 30 - k
		var rkErr, fracErr float64
		for _, a := range aggs {
			if a.Bit == rkBit && a.Trials >= 5 {
				rkErr = a.MeanRelErr
			}
			if a.Bit == rkBit-4 && a.Trials >= 5 { // a bit inside exponent/fraction
				fracErr = a.MeanRelErr
			}
		}
		if rkErr == 0 || fracErr == 0 || math.IsNaN(rkErr) || math.IsNaN(fracErr) {
			continue
		}
		checked++
		if rkErr < 10*fracErr {
			t.Errorf("k=%d: R_k error %g not ≫ interior error %g", k, rkErr, fracErr)
		}
	}
	if checked == 0 {
		t.Skip("no regime bucket had enough trials; increase sample")
	}
}

// TestFinding6BelowOneRelErrNearOne: for posits with |v| < 1, flipping
// R_k gives relative error ≈ 1 (the faulty value collapses toward
// zero; §5.4.2, Fig. 14) — never the astronomical spikes of IEEE.
func TestFinding6BelowOneRelErrNearOne(t *testing.T) {
	pR, _ := runPair(t, "CESM/CLOUD", 30000)
	below := MagnitudeBelow(pR.Trials)
	for _, tr := range below {
		if tr.Catastrophic {
			continue
		}
		// R_k of a positive below-one posit with run k sits at 30-k.
		if tr.Bit == 30-tr.RegimeK && tr.FieldName == "regime" {
			if tr.RelErr > 1.01 {
				t.Fatalf("below-one R_k flip rel err %v > 1: %+v", tr.RelErr, tr)
			}
		}
	}
}

// TestFinding7PositSignMagnitudeCoupling: flipping a posit's sign bit
// changes the magnitude too (§5.7, Fig. 19): relative error differs
// from 2 for values away from ±1, and grows with regime size (Fig. 20).
func TestFinding7PositSignMagnitudeCoupling(t *testing.T) {
	pR, _ := runPair(t, "Nyx/temperature", 30000)
	boxes := SignBoxes(pR.Trials, 32)
	if len(boxes) < 2 {
		t.Skip("not enough regime buckets")
	}
	// Median absolute sign-flip error must increase with k.
	for i := 1; i < len(boxes); i++ {
		if !(boxes[i].Box.Median > boxes[i-1].Box.Median) {
			t.Errorf("sign-flip error not increasing: k=%d median %g vs k=%d median %g",
				boxes[i].K, boxes[i].Box.Median, boxes[i-1].K, boxes[i-1].Box.Median)
		}
	}
	// And individual sign flips away from magnitude 1 deviate from the
	// IEEE behaviour of exactly 2.
	deviating := 0
	for _, tr := range pR.Trials {
		if tr.Bit == 31 && !tr.Catastrophic && math.Abs(tr.ReprValue) > 4 {
			if math.Abs(tr.RelErr-2) > 0.1 {
				deviating++
			}
		}
	}
	if deviating == 0 {
		t.Error("posit sign flips behaved like IEEE (always rel err 2)")
	}
}

// TestFinding8CatastrophesRarerInPosits: across a mixed-magnitude
// field, IEEE produces NaN/Inf outcomes (exponent 0xFF patterns) while
// posits can only produce NaR from the sign bit of zero... in practice
// posit catastrophic counts stay at or below IEEE's (§5.3: "the regime
// reduces the number of bits that cause catastrophic error").
func TestFinding8CatastrophesRarerInPosits(t *testing.T) {
	pR, iR := runPair(t, "HACC/vz", 30000)
	count := func(trials []Trial) int {
		n := 0
		for _, tr := range trials {
			if tr.Catastrophic {
				n++
			}
		}
		return n
	}
	p, i := count(pR.Trials), count(iR.Trials)
	if p > i {
		t.Errorf("posit catastrophic flips (%d) exceed IEEE's (%d)", p, i)
	}
}
