package core

import (
	"math"
	"sort"
)

// SDC threshold analysis: resilience studies summarize campaigns as
// P(relative error > τ) — the probability a flip at a given bit causes
// silent data corruption beyond an application's tolerance. This
// complements the paper's mean-error curves with tail behaviour.

// SDCPoint is the corruption probability at one bit position.
type SDCPoint struct {
	Bit  int     // bit position, 0 = LSB
	Prob float64 // fraction of trials exceeding the tolerance tau
}

// SDCProbability returns, per bit position, the fraction of trials
// whose relative error exceeds tau. Catastrophic trials (NaN/Inf/NaR
// outcomes) always count as corrupted.
func SDCProbability(trials []Trial, tau float64) []SDCPoint {
	type acc struct{ bad, total int }
	byBit := map[int]*acc{}
	for _, tr := range trials {
		a := byBit[tr.Bit]
		if a == nil {
			a = &acc{}
			byBit[tr.Bit] = a
		}
		a.total++
		if tr.Catastrophic || tr.RelErr > tau {
			a.bad++
		}
	}
	bits := make([]int, 0, len(byBit))
	for b := range byBit {
		bits = append(bits, b)
	}
	sort.Ints(bits)
	out := make([]SDCPoint, 0, len(bits))
	for _, b := range bits {
		a := byBit[b]
		out = append(out, SDCPoint{Bit: b, Prob: float64(a.bad) / float64(a.total)})
	}
	return out
}

// OverallSDCRate returns the campaign-wide corruption probability at
// threshold tau (a uniformly random bit of a uniformly random trial).
func OverallSDCRate(trials []Trial, tau float64) float64 {
	if len(trials) == 0 {
		return math.NaN()
	}
	bad := 0
	for _, tr := range trials {
		if tr.Catastrophic || tr.RelErr > tau {
			bad++
		}
	}
	return float64(bad) / float64(len(trials))
}

// ECDF returns the empirical CDF of the finite relative errors in the
// trials: sorted values x and cumulative probabilities p, plus the
// fraction of trials whose error was infinite (catastrophic).
func ECDF(trials []Trial) (x []float64, p []float64, infFrac float64) {
	vals := make([]float64, 0, len(trials))
	inf := 0
	for _, tr := range trials {
		if tr.Catastrophic || math.IsInf(tr.RelErr, 0) {
			inf++
			continue
		}
		vals = append(vals, tr.RelErr)
	}
	sort.Float64s(vals)
	n := len(vals) + inf
	if n == 0 {
		return nil, nil, 0
	}
	p = make([]float64, len(vals))
	for i := range vals {
		p[i] = float64(i+1) / float64(n)
	}
	return vals, p, float64(inf) / float64(n)
}
