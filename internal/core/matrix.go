package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

// MatrixJob is one (field, format) campaign of a sweep — the unit the
// paper schedules "in parallel across different compute nodes in a
// cluster" (§4.1). Data is synthesized per job from (Field, N, Seed),
// so jobs are self-contained and deterministic.
type MatrixJob struct {
	Field sdrbench.Field // dataset field to generate
	Codec numfmt.Codec   // format under test
	N     int            // synthetic elements to generate
	Seed  uint64         // data-generation seed
}

// RunMatrix executes the jobs with at most `parallel` concurrent
// campaigns (0 = GOMAXPROCS). Results arrive in job order regardless
// of scheduling; the first error aborts remaining jobs. Each Result
// carries its own Elapsed, so per-campaign cost is recorded exactly
// rather than inferred from the sweep total. Cancelling ctx stops
// feeding jobs, drains the pool, and returns the context's error.
func RunMatrix(ctx context.Context, cfg Config, jobs []MatrixJob, parallel int) ([]*Result, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))

	// Inner campaigns are already parallel; bound the outer pool so
	// total goroutines stay proportional to the machine.
	inner := cfg
	if inner.Workers <= 0 {
		inner.Workers = (runtime.GOMAXPROCS(0) + parallel - 1) / parallel
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // cancelled: drain remaining jobs without working
				}
				job := jobs[i]
				if job.N <= 0 {
					errs[i] = fmt.Errorf("core: job %d (%s/%s): non-positive N",
						i, job.Field.Key(), job.Codec.Name())
					continue
				}
				data := sdrbench.ToFloat64(job.Field.Generate(job.N, job.Seed))
				results[i], errs[i] = Run(ctx, inner, job.Codec, job.Field.Key(), data)
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: matrix cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: matrix job %d: %w", i, err)
		}
	}
	return results, nil
}

// FullSweepJobs builds the paper's complete campaign: every Table 1
// field crossed with every listed format.
func FullSweepJobs(codecNames []string, n int, seed uint64) ([]MatrixJob, error) {
	var jobs []MatrixJob
	for _, f := range sdrbench.Fields() {
		for _, name := range codecNames {
			c, err := numfmt.Lookup(name)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, MatrixJob{Field: f, Codec: c, N: n, Seed: seed})
		}
	}
	return jobs, nil
}
