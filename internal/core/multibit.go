package core

import (
	"fmt"
	"strconv"

	"positres/internal/bitflip"
	"positres/internal/numfmt"
	"positres/internal/qcat"
	"positres/internal/sdrbench"
	"positres/internal/stats"
)

// MultiTrial is one multi-bit fault injection — the paper's "multi-bit
// flip analysis would provide valuable insights" future-work item.
type MultiTrial struct {
	Field     string // dataset field key
	Codec     string // format name under test
	FlipCount int    // simultaneous bits flipped in this trial
	Seq       int    // trial sequence number

	Index     int     // element index chosen in the data
	OrigValue float64 // original data value
	Positions []int   // flipped bit positions, ascending
	FaultyVal float64 // decoded value after all flips

	AbsErr       float64 // |FaultyVal - representable original|
	RelErr       float64 // AbsErr relative to the representable original
	Catastrophic bool    // faulty value decoded to NaN/Inf/NaR (or orig was 0)
}

// RunMultiBit injects `trials` faults of `flips` simultaneous bit
// flips each at uniformly random distinct positions, for the given
// codec and data. Deterministic in (cfg.Seed, field, codec, flips,
// seq), like the single-bit campaign.
func RunMultiBit(cfg Config, codec numfmt.Codec, fieldKey string, data []float64, flips, trials int) ([]MultiTrial, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty dataset for %s", fieldKey)
	}
	if flips < 1 || flips > codec.Width() {
		return nil, fmt.Errorf("core: flip count %d out of range [1,%d]", flips, codec.Width())
	}
	if cfg.MaxSelectAttempts <= 0 {
		cfg.MaxSelectAttempts = 64
	}
	out := make([]MultiTrial, trials)
	for seq := range out {
		rng := sdrbench.NewRNG(cfg.Seed, fieldKey, codec.Name(),
			"multibit"+strconv.Itoa(flips), strconv.Itoa(seq))
		idx := rng.Intn(len(data))
		if cfg.SkipZeros {
			for attempt := 0; data[idx] == 0 && attempt < cfg.MaxSelectAttempts; attempt++ {
				idx = rng.Intn(len(data))
			}
		}
		orig := data[idx]
		bits := codec.Encode(orig)
		positions := randomDistinct(rng, codec.Width(), flips)
		faultyBits := bitflip.FlipMany(bits, positions...)
		faulty := codec.Decode(faultyBits)
		p := qcat.Point(orig, faulty)
		out[seq] = MultiTrial{
			Field: fieldKey, Codec: codec.Name(), FlipCount: flips, Seq: seq,
			Index: idx, OrigValue: orig, Positions: positions, FaultyVal: faulty,
			AbsErr: p.AbsErr, RelErr: p.RelErr, Catastrophic: p.Catastrophic,
		}
	}
	return out, nil
}

// randomDistinct draws k distinct positions in [0, width) using the
// deterministic sdrbench RNG (bitflip.RandomPositions needs math/rand).
func randomDistinct(rng *sdrbench.RNG, width, k int) []int {
	perm := make([]int, width)
	for i := range perm {
		perm[i] = i
	}
	for i := width - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := perm[:k]
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// MultiBitSummary aggregates multi-bit trials into the error profile
// reported by the extension bench: counts and relative-error
// statistics of the non-catastrophic population.
type MultiBitSummary struct {
	FlipCount    int     // simultaneous bits flipped per trial
	Trials       int     // trials aggregated
	Catastrophic int     // trials that decoded to NaN/Inf/NaR
	MeanRelErr   float64 // mean relative error, non-catastrophic trials
	MedianRelErr float64 // median relative error, non-catastrophic trials
	MaxRelErr    float64 // worst relative error, non-catastrophic trials
}

// SummarizeMulti reduces one multi-bit run.
func SummarizeMulti(trials []MultiTrial) MultiBitSummary {
	s := MultiBitSummary{}
	var rels []float64
	for _, tr := range trials {
		s.Trials++
		s.FlipCount = tr.FlipCount
		if tr.Catastrophic {
			s.Catastrophic++
			continue
		}
		rels = append(rels, tr.RelErr)
	}
	if len(rels) > 0 {
		s.MeanRelErr = stats.Mean(rels)
		s.MaxRelErr = stats.Max(rels)
		s.MedianRelErr = stats.Median(rels)
	}
	return s
}
