package posit

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// TestConvertWidening: widening a standard posit to a wider standard
// format is exact (same es, more fraction room), and narrowing back
// returns the original pattern.
func TestConvertWidening(t *testing.T) {
	for b := uint64(0); b <= Std16.Mask(); b++ {
		w := Convert(Std16, Std32, b)
		if b == Std16.NaR() {
			if w != Std32.NaR() {
				t.Fatal("NaR should widen to NaR")
			}
			continue
		}
		if DecodeFloat64(Std32, w) != DecodeFloat64(Std16, b) {
			t.Fatalf("widening %#x changed the value", b)
		}
		if back := Convert(Std32, Std16, w); back != b {
			t.Fatalf("narrowing back %#x gave %#x", b, back)
		}
	}
}

// TestConvertNarrowingRounds: narrowing agrees with re-encoding the
// exact value (sampled against the reference rounder).
func TestConvertNarrowingRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 50000; i++ {
		b := Std32.Canon(rng.Uint64())
		if b == Std32.NaR() {
			continue
		}
		got := Convert(Std32, Std8, b)
		want := refRoundRat(Std8, ratFromPosit(Std32, b))
		if got != want {
			t.Fatalf("narrow %#x: got %#x, want %#x", b, got, want)
		}
	}
	// Cross-es conversion also correctly rounds.
	legacy := Config{N: 16, ES: 0}
	for i := 0; i < 20000; i++ {
		b := Std32.Canon(rng.Uint64())
		if b == Std32.NaR() {
			continue
		}
		got := Convert(Std32, legacy, b)
		want := refRoundRat(legacy, ratFromPosit(Std32, b))
		if got != want {
			t.Fatalf("cross-es %#x: got %#x, want %#x", b, got, want)
		}
	}
}

func TestFromInt64(t *testing.T) {
	cases := []struct {
		v    int64
		want float64
	}{
		{0, 0}, {1, 1}, {-1, -1}, {2, 2}, {100, 100}, {-186, -186},
		{1 << 40, math.Ldexp(1, 40)},
	}
	for _, c := range cases {
		got := DecodeFloat64(Std32, FromInt64(Std32, c.v))
		if got != c.want {
			t.Errorf("FromInt64(%d) = %v, want %v", c.v, got, c.want)
		}
	}
	// Rounding: a 40-bit odd integer can't fit posit32's fraction;
	// result must match encoding via the exact rational.
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 20000; i++ {
		v := int64(rng.Uint64()) // full-range, including MinInt64
		got := FromInt64(Std32, v)
		want := refRoundRat(Std32, new(big.Rat).SetInt64(v))
		if got != want {
			t.Fatalf("FromInt64(%d) = %#x, want %#x", v, got, want)
		}
		u := rng.Uint64()
		gotU := FromUint64(Std16, u)
		wantU := refRoundRat(Std16, new(big.Rat).SetUint64(u))
		if gotU != wantU {
			t.Fatalf("FromUint64(%d) = %#x, want %#x", u, gotU, wantU)
		}
	}
	if FromInt64(Std32, math.MinInt64) != EncodeFloat64(Std32, -math.Ldexp(1, 63)) {
		t.Error("MinInt64 should encode exactly as -2^63")
	}
}

func TestToInt64(t *testing.T) {
	cases := []struct {
		x    float64
		want int64
	}{
		{0, 0}, {1, 1}, {-1, -1}, {1.5, 2}, {2.5, 2}, {-1.5, -2}, {-2.5, -2},
		{0.49, 0}, {0.5, 0}, {0.51, 1}, {-0.5, 0}, {186.25, 186}, {1e9, 1000000000},
	}
	for _, c := range cases {
		if got := ToInt64(Std32, EncodeFloat64(Std32, c.x)); got != c.want {
			t.Errorf("ToInt64(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := ToInt64(Std32, Std32.NaR()); got != math.MinInt64 {
		t.Errorf("ToInt64(NaR) = %d", got)
	}
	// Saturation: maxpos (2^120) overflows int64.
	if got := ToInt64(Std32, Std32.MaxPosBits()); got != math.MaxInt64 {
		t.Errorf("ToInt64(maxpos) = %d", got)
	}
	if got := ToInt64(Std32, Std32.Negate(Std32.MaxPosBits())); got != math.MinInt64 {
		t.Errorf("ToInt64(-maxpos) = %d", got)
	}
	// Round trip: integers exactly representable in posit32 survive.
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 20000; i++ {
		v := int64(rng.Intn(1 << 20))
		if rng.Intn(2) == 0 {
			v = -v
		}
		if got := ToInt64(Std32, FromInt64(Std32, v)); got != v {
			t.Fatalf("int round trip %d -> %d", v, got)
		}
	}
}

func TestToUint64(t *testing.T) {
	if ToUint64(Std32, EncodeFloat64(Std32, 186.25)) != 186 {
		t.Error("ToUint64(186.25)")
	}
	if ToUint64(Std32, 0) != 0 {
		t.Error("ToUint64(0)")
	}
	if ToUint64(Std32, Std32.NaR()) != 1<<63 {
		t.Error("ToUint64(NaR)")
	}
	if ToUint64(Std32, EncodeFloat64(Std32, -5)) != 0 {
		t.Error("negative should saturate to 0")
	}
	if ToUint64(Std32, Std32.MaxPosBits()) != ^uint64(0) {
		t.Error("maxpos should saturate")
	}
	if ToUint64(Std32, EncodeFloat64(Std32, 2.5)) != 2 {
		t.Error("ties to even")
	}
}

// TestNextUpDown: successors and predecessors traverse the full
// posit16 order.
func TestNextUpDown(t *testing.T) {
	cfg := Std16
	// Walk from the most negative real to maxpos via NextUp.
	cur := cfg.Canon(cfg.NaR() + 1)
	count := 0
	prev := DecodeFloat64(cfg, cur)
	for cur != cfg.MaxPosBits() {
		next := NextUp(cfg, cur)
		v := DecodeFloat64(cfg, next)
		if !(v > prev) {
			t.Fatalf("NextUp(%#x) not increasing: %v -> %v", cur, prev, v)
		}
		if NextDown(cfg, next) != cur {
			t.Fatalf("NextDown(NextUp(%#x)) != identity", cur)
		}
		cur, prev = next, v
		count++
	}
	if count != int(cfg.Mask())-1 {
		t.Errorf("walked %d steps, want %d", count, int(cfg.Mask())-1)
	}
	// Saturation at the ends.
	if NextUp(cfg, cfg.MaxPosBits()) != cfg.MaxPosBits() {
		t.Error("NextUp(maxpos) should saturate")
	}
	bottom := cfg.Canon(cfg.NaR() + 1)
	if NextDown(cfg, bottom) != bottom {
		t.Error("NextDown(-maxpos) should saturate")
	}
}

// TestFMAExhaustiveP8 checks fused multiply-add against the exact
// rational for every (a, b) pair with a sampled set of addends.
func TestFMAExhaustiveP8(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	cfg := Std8
	addends := []uint64{0, 0x40, 0xC0, 0x01, 0x7F, 0x81, 0x33, 0xB3, 0x60, 0xE0}
	for a := uint64(0); a < 256; a++ {
		for b := uint64(0); b < 256; b++ {
			for _, c := range addends {
				got := FMA(cfg, a, b, c)
				if a == cfg.NaR() || b == cfg.NaR() || c == cfg.NaR() {
					if got != cfg.NaR() {
						t.Fatalf("FMA NaR: %#x %#x %#x -> %#x", a, b, c, got)
					}
					continue
				}
				exact := new(big.Rat).Mul(ratFromPosit(cfg, a), ratFromPosit(cfg, b))
				exact.Add(exact, ratFromPosit(cfg, c))
				want := refRoundRat(cfg, exact)
				if got != want {
					t.Fatalf("FMA(%#x,%#x,%#x) = %#x, want %#x (exact %s)",
						a, b, c, got, want, exact.FloatString(10))
				}
			}
		}
	}
}

// TestFMASampled32: random posit32 triples against the exact rational.
func TestFMASampled32(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	cfg := Std32
	for i := 0; i < 30000; i++ {
		a := cfg.Canon(rng.Uint64())
		b := cfg.Canon(rng.Uint64())
		c := cfg.Canon(rng.Uint64())
		if a == cfg.NaR() || b == cfg.NaR() || c == cfg.NaR() {
			continue
		}
		exact := new(big.Rat).Mul(ratFromPosit(cfg, a), ratFromPosit(cfg, b))
		exact.Add(exact, ratFromPosit(cfg, c))
		got := FMA(cfg, a, b, c)
		want := refRoundRat(cfg, exact)
		if got != want {
			t.Fatalf("FMA(%#x,%#x,%#x) = %#x, want %#x", a, b, c, got, want)
		}
	}
}

// TestFMACancellation: the fused product is not rounded before the
// add, so a×b−(a×b rounded) residues survive where mul-then-add would
// return zero.
func TestFMACancellation(t *testing.T) {
	cfg := Std32
	a := EncodeFloat64(cfg, 1+math.Ldexp(1, -20)) // 1 + 2^-20, exact
	// a² = 1 + 2^-19 + 2^-40; the 2^-40 term is below posit32's
	// precision at scale 0, so Mul rounds it away.
	rounded := Mul(cfg, a, a)
	fused := FMA(cfg, a, a, cfg.Negate(rounded))
	if fused == 0 {
		t.Fatal("FMA lost the sub-ulp residue (behaved like mul+add)")
	}
	separate := Add(cfg, Mul(cfg, a, a), cfg.Negate(rounded))
	if separate != 0 {
		t.Fatal("separate mul+add should cancel exactly")
	}
	// And the residue is exactly a² − rounded(a²).
	exact := new(big.Rat).Mul(ratFromPosit(cfg, a), ratFromPosit(cfg, a))
	exact.Sub(exact, ratFromPosit(cfg, rounded))
	if want := refRoundRat(cfg, exact); fused != want {
		t.Fatalf("residue %#x, want %#x", fused, want)
	}
}

// TestFMASpecialCases covers zero operands.
func TestFMASpecialCases(t *testing.T) {
	cfg := Std32
	c := EncodeFloat64(cfg, 7)
	if FMA(cfg, 0, EncodeFloat64(cfg, 5), c) != c {
		t.Error("0*b+c should be c")
	}
	if FMA(cfg, EncodeFloat64(cfg, 5), 0, c) != c {
		t.Error("a*0+c should be c")
	}
	if FMA(cfg, EncodeFloat64(cfg, 2), EncodeFloat64(cfg, 3), 0) != EncodeFloat64(cfg, 6) {
		t.Error("a*b+0")
	}
	if FMA(cfg, 0, 0, 0) != 0 {
		t.Error("0*0+0")
	}
}
