package posit

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func TestFormatBasics(t *testing.T) {
	cases := []struct {
		x      float64
		format byte
		prec   int
		want   string
	}{
		{0, 'g', -1, "0"},
		{1, 'g', -1, "1"},
		{-1, 'g', -1, "-1"},
		{186.25, 'f', 2, "186.25"},
		{0.5, 'g', -1, "0.5"},
		{1.5, 'e', 3, "1.500e+00"},
	}
	for _, c := range cases {
		b := EncodeFloat64(Std32, c.x)
		if got := Format(Std32, b, c.format, c.prec); got != c.want {
			t.Errorf("Format(%v, %c, %d) = %q, want %q", c.x, c.format, c.prec, got, c.want)
		}
	}
	if got := Format(Std32, Std32.NaR(), 'g', -1); got != "NaR" {
		t.Errorf("NaR formats as %q", got)
	}
	// Extreme values format without float64 overflow artifacts.
	if got := Format(Std32, Std32.MaxPosBits(), 'e', 4); got != "1.3292e+36" {
		t.Errorf("maxpos32: %q", got)
	}
	if got := Format(Std64, Std64.MaxPosBits(), 'e', 3); got != "4.523e+74" {
		t.Errorf("maxpos64: %q", got)
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"0", 0},
		{"1", 1},
		{"-1", -1},
		{"186.25", 186.25},
		{"1.5e2", 150},
		{"  0.0625\n", 0.0625},
		{"-2.5E-1", -0.25},
	}
	for _, c := range cases {
		b, err := Parse(Std32, c.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.s, err)
		}
		if got := DecodeFloat64(Std32, b); got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.s, got, c.want)
		}
	}
	for _, s := range []string{"NaR", "nar", "NaN"} {
		if b, err := Parse(Std32, s); err != nil || b != Std32.NaR() {
			t.Errorf("Parse(%q) = %#x, %v", s, b, err)
		}
	}
	// Infinities saturate.
	if b, _ := Parse(Std32, "+Inf"); b != Std32.MaxPosBits() {
		t.Error("Parse(+Inf)")
	}
	if b, _ := Parse(Std32, "-inf"); b != Std32.Negate(Std32.MaxPosBits()) {
		t.Error("Parse(-inf)")
	}
	for _, bad := range []string{"", "x", "1.2.3", "-"} {
		if _, err := Parse(Std32, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestParseMatchesEncode: for strings that are exact float64 values,
// Parse agrees with EncodeFloat64.
func TestParseMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, cfg := range []Config{Std8, Std16, Std32} {
		for i := 0; i < 5000; i++ {
			x := math.Ldexp(rng.Float64()*2-1, rng.Intn(90)-45)
			s := strconv.FormatFloat(x, 'g', -1, 64)
			got, err := Parse(cfg, s)
			if err != nil {
				t.Fatalf("%v Parse(%q): %v", cfg, s, err)
			}
			if want := EncodeFloat64(cfg, x); got != want {
				t.Fatalf("%v Parse(%q) = %#x, Encode = %#x", cfg, s, got, want)
			}
		}
	}
}

// TestParseBeyondFloat64: posit64 parsing is exact where float64 would
// double-round. 2^40 + 1 + 2^-9 needs 50 significand bits — fine for
// both — but a 60-significant-bit decimal exercises the big.Rat path.
func TestParseBeyondFloat64(t *testing.T) {
	// A posit64 with h=0 and a 59-bit all-ones fraction (sign 0,
	// regime "10", exp "00"): its exact decimal expansion needs more
	// significand bits than float64 carries.
	bits := uint64(0b10)<<61 | (uint64(1)<<59 - 1)
	s := Format(Std64, bits, 'e', 25)
	back, err := Parse(Std64, s)
	if err != nil {
		t.Fatal(err)
	}
	if back != bits {
		t.Fatalf("round trip through 25-digit decimal: %#x -> %q -> %#x", bits, s, back)
	}
}

// TestFormatParseRoundTripExhaustive16: shortest 'g' formatting
// round-trips every posit16 pattern.
func TestFormatParseRoundTripExhaustive16(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	cfg := Std16
	for b := uint64(0); b <= cfg.Mask(); b++ {
		s := Format(cfg, b, 'g', -1)
		back, err := Parse(cfg, s)
		if err != nil {
			t.Fatalf("pattern %#x -> %q: %v", b, s, err)
		}
		if back != b {
			t.Fatalf("pattern %#x -> %q -> %#x", b, s, back)
		}
	}
}

// TestFormatParseRoundTripSampled32And64 samples the wide formats.
func TestFormatParseRoundTripSampled32And64(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, cfg := range []Config{Std32, Std64} {
		for i := 0; i < 3000; i++ {
			b := cfg.Canon(rng.Uint64())
			s := Format(cfg, b, 'g', -1)
			back, err := Parse(cfg, s)
			if err != nil {
				t.Fatalf("%v pattern %#x -> %q: %v", cfg, b, s, err)
			}
			if back != b {
				t.Fatalf("%v pattern %#x -> %q -> %#x", cfg, b, s, back)
			}
		}
	}
}

// TestParseRoundsCorrectly: decimal strings between representable
// posits round to the nearest (via the reference rounder).
func TestParseRoundsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 3000; i++ {
		// Random decimal with many digits.
		x := (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(20)-10))
		s := strconv.FormatFloat(x, 'e', 17, 64)
		got, err := Parse(Std16, s)
		if err != nil {
			t.Fatal(err)
		}
		want := EncodeFloat64(Std16, x) // x is exactly the parsed value
		if got != want {
			t.Fatalf("Parse(%q) = %#x, want %#x", s, got, want)
		}
	}
}

func TestTextMethods(t *testing.T) {
	if P32FromFloat64(2.5).Text('g', -1) != "2.5" {
		t.Error("p32 Text")
	}
	if P16FromFloat64(0.5).Text('f', 1) != "0.5" {
		t.Error("p16 Text")
	}
	if P8FromFloat64(4).Text('g', -1) != "4" {
		t.Error("p8 Text")
	}
	if P64FromFloat64(1e10).Text('e', 1) != "1.0e+10" {
		t.Error("p64 Text")
	}
	if p, err := ParseP32("3.25"); err != nil || p.Float64() != 3.25 {
		t.Error("ParseP32")
	}
}
