package posit

import (
	"fmt"
	"math/big"
	"strings"
)

// Decimal conversion. Format renders a posit's exact value (every
// posit is a dyadic rational, so big.Float holds it exactly); Parse
// rounds an arbitrary decimal string to the nearest posit with the
// standard's rounding rule, without going through float64 (so posit64
// values parse correctly even beyond float64 precision).

// Format renders the posit's value like strconv.FormatFloat: format is
// 'e', 'f', 'g' (and friends accepted by big.Float.Text); prec is the
// digit count (-1 for the minimal digits that round-trip through
// Parse). Zero renders "0"; NaR renders "NaR".
func Format(cfg Config, bitsIn uint64, format byte, prec int) string {
	b := cfg.Canon(bitsIn)
	if b == 0 {
		return "0"
	}
	if b == cfg.NaR() {
		return "NaR"
	}
	neg := cfg.IsNeg(b)
	if neg {
		b = cfg.Negate(b)
	}
	f := DecodeFields(cfg, b)
	h := (f.R << uint(cfg.ES)) + int(f.Exp)
	sig := (uint64(1) << uint(f.FracLen)) + f.Frac
	// Exact value: sig × 2^(h − FracLen). 64 mantissa bits suffice.
	// SetMantExp(v, e) computes v × 2^e.
	v := new(big.Float).SetPrec(64).SetUint64(sig)
	v.SetMantExp(v, h-f.FracLen)
	if neg {
		v.Neg(v)
	}
	if prec < 0 {
		return shortest(cfg, v, format)
	}
	return v.Text(format, prec)
}

// shortest finds the minimal digit count whose Parse round-trips to
// the same pattern (posit32 needs at most 9 significant digits,
// posit64 at most 19).
func shortest(cfg Config, v *big.Float, format byte) string {
	for prec := 1; prec <= 21; prec++ {
		s := v.Text(format, prec)
		if p, err := Parse(cfg, s); err == nil {
			if q, err2 := Parse(cfg, v.Text('e', 25)); err2 == nil && p == q {
				return s
			}
		}
	}
	return v.Text(format, 21)
}

// Parse converts a decimal string (strconv.ParseFloat syntax, plus
// "NaR"/"nar") to the nearest posit, rounding exactly per the standard
// (round-to-nearest-even in the posit integer space, saturation at
// minpos/maxpos, never to zero or NaR).
func Parse(cfg Config, s string) (uint64, error) {
	t := strings.TrimSpace(s)
	switch strings.ToLower(t) {
	case "nar", "nan":
		return cfg.NaR(), nil
	case "", "+", "-":
		return 0, fmt.Errorf("posit: cannot parse %q", s)
	}
	r, ok := new(big.Rat).SetString(t)
	if !ok {
		// big.Rat rejects "inf"; map infinities to saturation per the
		// posit convention that no finite input overflows.
		switch strings.ToLower(t) {
		case "inf", "+inf", "infinity", "+infinity":
			return cfg.MaxPosBits(), nil
		case "-inf", "-infinity":
			return cfg.Negate(cfg.MaxPosBits()), nil
		}
		return 0, fmt.Errorf("posit: cannot parse %q", s)
	}
	return roundRat(cfg, r), nil
}

// roundRat rounds an exact rational to a posit with the standard rule
// (the mirror of assemble's guard/sticky path, driven by big.Rat).
func roundRat(cfg Config, v *big.Rat) uint64 {
	sign := v.Sign()
	if sign == 0 {
		return 0
	}
	av := new(big.Rat).Abs(v)
	// h = floor(log2 av).
	h := av.Num().BitLen() - av.Denom().BitLen()
	for av.Cmp(pow2(h)) < 0 {
		h--
	}
	for av.Cmp(pow2(h+1)) >= 0 {
		h++
	}
	// tail = first 64 bits of av/2^h − 1, sticky for the rest.
	t := new(big.Rat).Quo(av, pow2(h))
	t.Sub(t, big.NewRat(1, 1))
	two := big.NewRat(2, 1)
	one := big.NewRat(1, 1)
	var tail uint64
	for i := 0; i < 64; i++ {
		t.Mul(t, two)
		tail <<= 1
		if t.Cmp(one) >= 0 {
			tail |= 1
			t.Sub(t, one)
		}
	}
	p := assemble(cfg, h, tail, t.Sign() != 0)
	if sign < 0 {
		p = cfg.Negate(p)
	}
	return p
}

// pow2 returns 2^e as a big.Rat.
func pow2(e int) *big.Rat {
	r := new(big.Rat)
	if e >= 0 {
		r.SetInt(new(big.Int).Lsh(big.NewInt(1), uint(e)))
	} else {
		r.SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), uint(-e)))
	}
	return r
}

// ParseP32 is a convenience wrapper for the standard 32-bit format.
func ParseP32(s string) (Posit32, error) {
	b, err := Parse(Std32, s)
	return Posit32(b), err
}

// Text renders p like strconv.FormatFloat.
func (p Posit32) Text(format byte, prec int) string {
	return Format(Std32, uint64(p), format, prec)
}

// Text renders p like strconv.FormatFloat.
func (p Posit16) Text(format byte, prec int) string {
	return Format(Std16, uint64(p), format, prec)
}

// Text renders p like strconv.FormatFloat.
func (p Posit8) Text(format byte, prec int) string {
	return Format(Std8, uint64(p), format, prec)
}

// Text renders p like strconv.FormatFloat.
func (p Posit64) Text(format byte, prec int) string {
	return Format(Std64, uint64(p), format, prec)
}
