package posit

import "math"

// Elementary functions over posits, evaluated through float64 and
// rounded back into the format. For posit32 and narrower the float64
// intermediate carries at least 24 more significand bits than the
// posit result, so results are faithfully rounded (within 1 ulp, and
// almost always correctly rounded); for posit64 the wide fractions
// near |x| = 1 may lose up to 7 bits to double rounding. Domain
// errors (log of a negative, etc.) yield NaR, matching the standard's
// treatment of undefined results.

// roundReal rounds a float64 function result into the posit format
// with the posit saturation rules: results that overflowed float64 to
// ±Inf saturate at ±maxpos (posits have no infinities).
func roundReal(cfg Config, y float64) uint64 {
	switch {
	case math.IsNaN(y):
		return cfg.NaR()
	case math.IsInf(y, 1):
		return cfg.MaxPosBits()
	case math.IsInf(y, -1):
		return cfg.Negate(cfg.MaxPosBits())
	}
	return EncodeFloat64(cfg, y)
}

func mathOp1(cfg Config, x uint64, f func(float64) float64) uint64 {
	v := DecodeFloat64(cfg, x)
	if math.IsNaN(v) {
		return cfg.NaR()
	}
	return roundReal(cfg, f(v))
}

// Exp returns e^x rounded into the configuration. Like every posit
// operation it never underflows to zero: deeply negative arguments
// yield minpos (float64's own underflow to 0 is corrected).
func Exp(cfg Config, x uint64) uint64 {
	v := DecodeFloat64(cfg, x)
	if math.IsNaN(v) {
		return cfg.NaR()
	}
	y := math.Exp(v)
	if y == 0 { // float64 underflow; e^x is strictly positive
		return cfg.MinPosBits()
	}
	return roundReal(cfg, y)
}

// Log returns ln(x); NaR for x <= 0 or NaR.
func Log(cfg Config, x uint64) uint64 {
	v := DecodeFloat64(cfg, x)
	if math.IsNaN(v) || v <= 0 {
		return cfg.NaR()
	}
	return EncodeFloat64(cfg, math.Log(v))
}

// Log2 returns log₂(x); NaR for x <= 0 or NaR.
func Log2(cfg Config, x uint64) uint64 {
	v := DecodeFloat64(cfg, x)
	if math.IsNaN(v) || v <= 0 {
		return cfg.NaR()
	}
	return EncodeFloat64(cfg, math.Log2(v))
}

// Log10 returns log₁₀(x); NaR for x <= 0 or NaR.
func Log10(cfg Config, x uint64) uint64 {
	v := DecodeFloat64(cfg, x)
	if math.IsNaN(v) || v <= 0 {
		return cfg.NaR()
	}
	return EncodeFloat64(cfg, math.Log10(v))
}

// Sin returns sin(x).
func Sin(cfg Config, x uint64) uint64 { return mathOp1(cfg, x, math.Sin) }

// Cos returns cos(x).
func Cos(cfg Config, x uint64) uint64 { return mathOp1(cfg, x, math.Cos) }

// Tan returns tan(x).
func Tan(cfg Config, x uint64) uint64 { return mathOp1(cfg, x, math.Tan) }

// Atan returns arctan(x).
func Atan(cfg Config, x uint64) uint64 { return mathOp1(cfg, x, math.Atan) }

// Tanh returns tanh(x) (the activation function of the inference
// workload).
func Tanh(cfg Config, x uint64) uint64 { return mathOp1(cfg, x, math.Tanh) }

// Pow returns x^y; NaR where math.Pow yields NaN (e.g. negative base
// with fractional exponent).
func Pow(cfg Config, x, y uint64) uint64 {
	vx, vy := DecodeFloat64(cfg, x), DecodeFloat64(cfg, y)
	if math.IsNaN(vx) || math.IsNaN(vy) {
		return cfg.NaR()
	}
	return roundReal(cfg, math.Pow(vx, vy))
}

// Wrapper methods on the concrete types (posit32 is the width the
// experiments use; others are provided for completeness).

// Exp returns e^p.
func (p Posit32) Exp() Posit32 { return Posit32(Exp(Std32, uint64(p))) }

// Log returns ln(p), NaR for p <= 0.
func (p Posit32) Log() Posit32 { return Posit32(Log(Std32, uint64(p))) }

// Sin returns sin(p).
func (p Posit32) Sin() Posit32 { return Posit32(Sin(Std32, uint64(p))) }

// Cos returns cos(p).
func (p Posit32) Cos() Posit32 { return Posit32(Cos(Std32, uint64(p))) }

// Tanh returns tanh(p).
func (p Posit32) Tanh() Posit32 { return Posit32(Tanh(Std32, uint64(p))) }

// Pow returns p^q.
func (p Posit32) Pow(q Posit32) Posit32 { return Posit32(Pow(Std32, uint64(p), uint64(q))) }

// Exp returns e^p.
func (p Posit16) Exp() Posit16 { return Posit16(Exp(Std16, uint64(p))) }

// Log returns ln(p), NaR for p <= 0.
func (p Posit16) Log() Posit16 { return Posit16(Log(Std16, uint64(p))) }

// Tanh returns tanh(p).
func (p Posit16) Tanh() Posit16 { return Posit16(Tanh(Std16, uint64(p))) }
