package posit

import (
	"math"
	"testing"
)

// agreeCLZ fails unless the CLZ and generic decoders produce
// bit-identical float64s for the pattern (NaN compared by bits: both
// paths return the same math.NaN()).
func agreeCLZ(t *testing.T, cfg Config, bits uint64) {
	t.Helper()
	got := DecodeFloat64CLZ(cfg, bits)
	want := DecodeFloat64Generic(cfg, bits)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%v pattern %#x: CLZ %v (%#x), generic %v (%#x)",
			cfg, bits, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestCLZExhaustiveSmallWidths proves CLZ == generic on every pattern
// of every configuration up to 20 bits wide, all exponent sizes —
// including every truncated-regime/exponent/fraction shape a larger
// posit can exhibit, since field layout depends only on run length
// relative to width.
func TestCLZExhaustiveSmallWidths(t *testing.T) {
	maxN := 20
	if testing.Short() {
		maxN = 14
	}
	for n := 2; n <= maxN; n++ {
		for es := 0; es <= 4; es++ {
			cfg := Config{N: n, ES: es}
			for b := uint64(0); b < uint64(1)<<uint(n); b++ {
				agreeCLZ(t, cfg, b)
			}
		}
	}
}

// TestCLZPosit32Sampled covers posit32 densely: the full low range
// (every short-regime positive pattern), the mirrored top range
// (their negations and the long-regime negatives), every
// regime-boundary pattern, and a large deterministic sample — plus
// each pattern's negation, so both sign paths see every case.
func TestCLZPosit32Sampled(t *testing.T) {
	cfg := Std32
	span := uint64(1) << 20
	if testing.Short() {
		span = 1 << 16
	}
	for b := uint64(0); b < span; b++ {
		agreeCLZ(t, cfg, b)
		agreeCLZ(t, cfg, cfg.Negate(b))
		agreeCLZ(t, cfg, cfg.Canon(^b))
	}
	// Regime boundaries: runs of every length in both directions, with
	// all-ones and single-bit tails.
	for k := 0; k < 32; k++ {
		run := (cfg.Mask() >> 1) &^ (cfg.Mask() >> uint(k+1)) // k ones after the sign
		for _, tail := range []uint64{0, 1, cfg.Mask() >> uint(k+2), 0x5555 & (cfg.Mask() >> uint(k+2))} {
			agreeCLZ(t, cfg, run|tail)
			agreeCLZ(t, cfg, cfg.Negate(run|tail))
		}
	}
	// Deterministic wide-coverage sample via a Weyl sequence.
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 1<<18; i++ {
		x += 0x9E3779B97F4A7C15
		b := (x ^ x>>29) & cfg.Mask()
		agreeCLZ(t, cfg, b)
	}
}

// TestCLZPosit64Sampled mirrors the posit32 coverage for posit64,
// where the fraction can exceed 53 bits and the decode incurs its one
// legitimate float64 rounding — CLZ and generic must round
// identically.
func TestCLZPosit64Sampled(t *testing.T) {
	cfg := Std64
	span := uint64(1) << 18
	if testing.Short() {
		span = 1 << 14
	}
	for b := uint64(0); b < span; b++ {
		agreeCLZ(t, cfg, b)
		agreeCLZ(t, cfg, cfg.Negate(b))
		agreeCLZ(t, cfg, ^b)
	}
	for k := 0; k < 64; k++ {
		run := (cfg.Mask() >> 1) &^ (cfg.Mask() >> uint(k+1))
		for _, tail := range []uint64{0, 1, cfg.Mask() >> uint(k+2), 0x5555555555 & (cfg.Mask() >> uint(k+2))} {
			agreeCLZ(t, cfg, run|tail)
			agreeCLZ(t, cfg, cfg.Negate(run|tail))
		}
	}
	// Full-width patterns around rounding boundaries: long fractions
	// of all ones, alternating bits, and a dense deterministic sample.
	x := uint64(0x243F6A8885A308D3)
	for i := 0; i < 1<<18; i++ {
		x += 0x9E3779B97F4A7C15
		b := x ^ x>>31
		agreeCLZ(t, cfg, b)
	}
}

// TestCLZSpecialPatterns pins the special values explicitly for the
// dispatched configurations.
func TestCLZSpecialPatterns(t *testing.T) {
	for _, cfg := range []Config{Std8, Std16, Std32, Std64, {N: 64, ES: 4}, {N: 64, ES: 0}, {N: 2, ES: 0}} {
		if v := DecodeFloat64CLZ(cfg, 0); v != 0 || math.Signbit(v) {
			t.Errorf("%v: zero pattern decoded to %v", cfg, v)
		}
		if v := DecodeFloat64CLZ(cfg, cfg.NaR()); !math.IsNaN(v) {
			t.Errorf("%v: NaR pattern decoded to %v", cfg, v)
		}
		agreeCLZ(t, cfg, cfg.MaxPosBits())
		agreeCLZ(t, cfg, cfg.MinPosBits())
		agreeCLZ(t, cfg, cfg.Negate(cfg.MaxPosBits()))
		agreeCLZ(t, cfg, cfg.Negate(cfg.MinPosBits()))
		agreeCLZ(t, cfg, cfg.NaR()+1) // most negative real
	}
}

// TestDecodeFloat64DispatchesCLZ pins that the public decoder serves
// posit32/posit64 through the CLZ path and that high garbage bits are
// canonicalized identically on both paths.
func TestDecodeFloat64DispatchesCLZ(t *testing.T) {
	for _, cfg := range []Config{Std32, Std64} {
		for _, b := range []uint64{0, 1, 0x40000000, 0x7FFFFFFF, 0xDEADBEEF, ^uint64(0)} {
			got := DecodeFloat64(cfg, b)
			want := DecodeFloat64CLZ(cfg, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v pattern %#x: DecodeFloat64 %v, CLZ %v", cfg, b, got, want)
			}
		}
	}
}
