package posit

import "math"

// DecodeFloat64 converts a posit bit pattern to float64.
//
// Decoding is tiered by configuration (docs/ARCHITECTURE.md has the
// full table): the standard 8- and 16-bit posits are a single lookup
// in a table precomputed at init (see lut.go); the standard 32- and
// 64-bit posits take the branchless CLZ fast path (see clz.go), whose
// table would be impossibly large; every other configuration takes
// the generic field-scan path. All paths agree bit for bit —
// lut_test.go and clz_test.go prove it — so callers never observe
// which one served them.
//
// Zero decodes to +0 and NaR to NaN.
func DecodeFloat64(cfg Config, bitsIn uint64) float64 {
	switch cfg {
	case Std8:
		return decodeLUT8[bitsIn&0xFF]
	case Std16:
		return decodeLUT16[bitsIn&0xFFFF]
	case Std32, Std64:
		return DecodeFloat64CLZ(cfg, bitsIn)
	}
	return DecodeFloat64Generic(cfg, bitsIn)
}

// DecodeFloat64Generic is the table-free decode path, valid for every
// configuration. It is exported (rather than folded into DecodeFloat64)
// so the LUT equivalence tests and cmd/positbench can measure the
// pre-LUT baseline against the table lookup.
//
// Decoding follows the classical two's-complement method: negative
// patterns are negated, the magnitude fields are read, and the value is
// (1 + f) × 2^((r << ES) + e). The result is exact for N <= 32; for
// posit64 the up-to-59-bit fraction incurs a single float64 rounding.
func DecodeFloat64Generic(cfg Config, bitsIn uint64) float64 {
	b := cfg.Canon(bitsIn)
	if b == 0 {
		return 0
	}
	if b == cfg.NaR() {
		return math.NaN()
	}
	neg := cfg.IsNeg(b)
	if neg {
		b = cfg.Negate(b)
	}
	f := DecodeFields(cfg, b)
	h := (f.R << uint(cfg.ES)) + int(f.Exp)
	// value = (2^FracLen + Frac) × 2^(h - FracLen)
	sig := (uint64(1) << uint(f.FracLen)) + f.Frac
	v := math.Ldexp(float64(sig), h-f.FracLen)
	if neg {
		v = -v
	}
	return v
}

// DecodeEq2 evaluates eq. (2) of the paper (the raw-bit decode formula
// of the 2022 posit standard, generalized from es=2 to any es):
//
//	p = ((1 − 3s) + f) × 2^((1 − 2s) × ((r << es) + e + s))
//
// where s, r, e and f are read directly from the two's-complement bit
// pattern with no negation step. It must agree exactly with
// DecodeFloat64 on every pattern; the test suite asserts this, making
// the two decoders independent cross-checks of each other.
func DecodeEq2(cfg Config, bitsIn uint64) float64 {
	b := cfg.Canon(bitsIn)
	if b == 0 {
		return 0
	}
	if b == cfg.NaR() {
		return math.NaN()
	}
	f := DecodeFields(cfg, b)
	s := int(f.Sign)
	scale := (1 - 2*s) * ((f.R << uint(cfg.ES)) + int(f.Exp) + s)
	// (1-3s) + f as an exact dyadic rational: numerator over 2^FracLen.
	num := int64(1-3*s)<<uint(f.FracLen) + int64(f.Frac)
	return math.Ldexp(float64(num), scale-f.FracLen)
}

// Float64ToNearest is a convenience round trip: the float64 value of
// the posit nearest to x.
func Float64ToNearest(cfg Config, x float64) float64 {
	return DecodeFloat64(cfg, EncodeFloat64(cfg, x))
}
