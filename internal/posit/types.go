package posit

import "fmt"

// Posit32 is a 32-bit standard posit (es = 2) stored as its raw bit
// pattern, the direct analogue of SoftPosit's posit32_t.
type Posit32 uint32

// P32FromFloat64 rounds x to the nearest 32-bit posit.
func P32FromFloat64(x float64) Posit32 { return Posit32(EncodeFloat64(Std32, x)) }

// P32FromBits reinterprets a raw bit pattern as a posit, the fault
// injector's entry point (no rounding, mirroring the paper's direct
// struct-member access into SoftPosit).
func P32FromBits(b uint32) Posit32 { return Posit32(b) }

// Bits returns the raw bit pattern.
func (p Posit32) Bits() uint32 { return uint32(p) }

// Float64 decodes the posit to float64 (exact for 32-bit posits).
func (p Posit32) Float64() float64 { return DecodeFloat64(Std32, uint64(p)) }

// IsNaR reports whether p is Not-a-Real.
func (p Posit32) IsNaR() bool { return uint64(p) == Std32.NaR() }

// IsZero reports whether p is zero.
func (p Posit32) IsZero() bool { return p == 0 }

// Neg returns -p (the two's complement of the pattern).
func (p Posit32) Neg() Posit32 { return Posit32(Std32.Negate(uint64(p))) }

// Abs returns |p|.
func (p Posit32) Abs() Posit32 {
	if Std32.IsNeg(uint64(p)) && !p.IsNaR() {
		return p.Neg()
	}
	return p
}

// Add returns the correctly rounded sum p + q.
func (p Posit32) Add(q Posit32) Posit32 { return Posit32(Add(Std32, uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference p - q.
func (p Posit32) Sub(q Posit32) Posit32 { return Posit32(Sub(Std32, uint64(p), uint64(q))) }

// Mul returns the correctly rounded product p × q.
func (p Posit32) Mul(q Posit32) Posit32 { return Posit32(Mul(Std32, uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient p ÷ q.
func (p Posit32) Div(q Posit32) Posit32 { return Posit32(Div(Std32, uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root of p.
func (p Posit32) Sqrt() Posit32 { return Posit32(Sqrt(Std32, uint64(p))) }

// Cmp compares p and q (-1, 0, +1); NaR sorts below all reals.
func (p Posit32) Cmp(q Posit32) int { return Cmp(Std32, uint64(p), uint64(q)) }

// Fields returns the field decomposition of the raw pattern.
func (p Posit32) Fields() Fields { return DecodeFields(Std32, uint64(p)) }

func (p Posit32) String() string { return formatPosit(Std32, uint64(p)) }

// Posit16 is a 16-bit standard posit (es = 2).
type Posit16 uint16

// P16FromFloat64 rounds x to the nearest 16-bit posit.
func P16FromFloat64(x float64) Posit16 { return Posit16(EncodeFloat64(Std16, x)) }

// P16FromBits reinterprets a raw bit pattern as a posit.
func P16FromBits(b uint16) Posit16 { return Posit16(b) }

// Bits returns the raw bit pattern.
func (p Posit16) Bits() uint16 { return uint16(p) }

// Float64 decodes the posit to float64 (exact).
func (p Posit16) Float64() float64 { return DecodeFloat64(Std16, uint64(p)) }

// IsNaR reports whether p is Not-a-Real.
func (p Posit16) IsNaR() bool { return uint64(p) == Std16.NaR() }

// IsZero reports whether p is zero.
func (p Posit16) IsZero() bool { return p == 0 }

// Neg returns -p.
func (p Posit16) Neg() Posit16 { return Posit16(Std16.Negate(uint64(p))) }

// Abs returns |p|.
func (p Posit16) Abs() Posit16 {
	if Std16.IsNeg(uint64(p)) && !p.IsNaR() {
		return p.Neg()
	}
	return p
}

// Add returns the correctly rounded sum p + q.
func (p Posit16) Add(q Posit16) Posit16 { return Posit16(Add(Std16, uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference p - q.
func (p Posit16) Sub(q Posit16) Posit16 { return Posit16(Sub(Std16, uint64(p), uint64(q))) }

// Mul returns the correctly rounded product p × q.
func (p Posit16) Mul(q Posit16) Posit16 { return Posit16(Mul(Std16, uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient p ÷ q.
func (p Posit16) Div(q Posit16) Posit16 { return Posit16(Div(Std16, uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root of p.
func (p Posit16) Sqrt() Posit16 { return Posit16(Sqrt(Std16, uint64(p))) }

// Cmp compares p and q (-1, 0, +1).
func (p Posit16) Cmp(q Posit16) int { return Cmp(Std16, uint64(p), uint64(q)) }

// Fields returns the field decomposition of the raw pattern.
func (p Posit16) Fields() Fields { return DecodeFields(Std16, uint64(p)) }

func (p Posit16) String() string { return formatPosit(Std16, uint64(p)) }

// Posit8 is an 8-bit standard posit (es = 2).
type Posit8 uint8

// P8FromFloat64 rounds x to the nearest 8-bit posit.
func P8FromFloat64(x float64) Posit8 { return Posit8(EncodeFloat64(Std8, x)) }

// P8FromBits reinterprets a raw bit pattern as a posit.
func P8FromBits(b uint8) Posit8 { return Posit8(b) }

// Bits returns the raw bit pattern.
func (p Posit8) Bits() uint8 { return uint8(p) }

// Float64 decodes the posit to float64 (exact).
func (p Posit8) Float64() float64 { return DecodeFloat64(Std8, uint64(p)) }

// IsNaR reports whether p is Not-a-Real.
func (p Posit8) IsNaR() bool { return uint64(p) == Std8.NaR() }

// IsZero reports whether p is zero.
func (p Posit8) IsZero() bool { return p == 0 }

// Neg returns -p.
func (p Posit8) Neg() Posit8 { return Posit8(Std8.Negate(uint64(p))) }

// Abs returns |p|.
func (p Posit8) Abs() Posit8 {
	if Std8.IsNeg(uint64(p)) && !p.IsNaR() {
		return p.Neg()
	}
	return p
}

// Add returns the correctly rounded sum p + q.
func (p Posit8) Add(q Posit8) Posit8 { return Posit8(Add(Std8, uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference p - q.
func (p Posit8) Sub(q Posit8) Posit8 { return Posit8(Sub(Std8, uint64(p), uint64(q))) }

// Mul returns the correctly rounded product p × q.
func (p Posit8) Mul(q Posit8) Posit8 { return Posit8(Mul(Std8, uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient p ÷ q.
func (p Posit8) Div(q Posit8) Posit8 { return Posit8(Div(Std8, uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root of p.
func (p Posit8) Sqrt() Posit8 { return Posit8(Sqrt(Std8, uint64(p))) }

// Cmp compares p and q (-1, 0, +1).
func (p Posit8) Cmp(q Posit8) int { return Cmp(Std8, uint64(p), uint64(q)) }

// Fields returns the field decomposition of the raw pattern.
func (p Posit8) Fields() Fields { return DecodeFields(Std8, uint64(p)) }

func (p Posit8) String() string { return formatPosit(Std8, uint64(p)) }

// Posit64 is a 64-bit standard posit (es = 2). Conversions to float64
// may round (posit64 fractions hold up to 59 bits, float64 holds 52);
// conversions from float64 are exact whenever the scale is in range.
type Posit64 uint64

// P64FromFloat64 rounds x to the nearest 64-bit posit.
func P64FromFloat64(x float64) Posit64 { return Posit64(EncodeFloat64(Std64, x)) }

// P64FromBits reinterprets a raw bit pattern as a posit.
func P64FromBits(b uint64) Posit64 { return Posit64(b) }

// Bits returns the raw bit pattern.
func (p Posit64) Bits() uint64 { return uint64(p) }

// Float64 decodes the posit to float64, rounding once if the fraction
// exceeds float64 precision.
func (p Posit64) Float64() float64 { return DecodeFloat64(Std64, uint64(p)) }

// IsNaR reports whether p is Not-a-Real.
func (p Posit64) IsNaR() bool { return uint64(p) == Std64.NaR() }

// IsZero reports whether p is zero.
func (p Posit64) IsZero() bool { return p == 0 }

// Neg returns -p.
func (p Posit64) Neg() Posit64 { return Posit64(Std64.Negate(uint64(p))) }

// Abs returns |p|.
func (p Posit64) Abs() Posit64 {
	if Std64.IsNeg(uint64(p)) && !p.IsNaR() {
		return p.Neg()
	}
	return p
}

// Add returns the correctly rounded sum p + q.
func (p Posit64) Add(q Posit64) Posit64 { return Posit64(Add(Std64, uint64(p), uint64(q))) }

// Sub returns the correctly rounded difference p - q.
func (p Posit64) Sub(q Posit64) Posit64 { return Posit64(Sub(Std64, uint64(p), uint64(q))) }

// Mul returns the correctly rounded product p × q.
func (p Posit64) Mul(q Posit64) Posit64 { return Posit64(Mul(Std64, uint64(p), uint64(q))) }

// Div returns the correctly rounded quotient p ÷ q.
func (p Posit64) Div(q Posit64) Posit64 { return Posit64(Div(Std64, uint64(p), uint64(q))) }

// Sqrt returns the correctly rounded square root of p.
func (p Posit64) Sqrt() Posit64 { return Posit64(Sqrt(Std64, uint64(p))) }

// Cmp compares p and q (-1, 0, +1).
func (p Posit64) Cmp(q Posit64) int { return Cmp(Std64, uint64(p), uint64(q)) }

// Fields returns the field decomposition of the raw pattern.
func (p Posit64) Fields() Fields { return DecodeFields(Std64, uint64(p)) }

func (p Posit64) String() string { return formatPosit(Std64, uint64(p)) }

func formatPosit(cfg Config, b uint64) string {
	b = cfg.Canon(b)
	switch {
	case b == 0:
		return "0"
	case b == cfg.NaR():
		return "NaR"
	}
	return fmt.Sprintf("%g", DecodeFloat64(cfg, b))
}
