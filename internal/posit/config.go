// Package posit implements the posit number system (Posit Standard 2022,
// Gustafson et al.) in pure Go. It is a drop-in replacement for the
// SoftPosit C library used by the paper "Evaluating the Resiliency of
// Posits for Scientific Computing" (SC-W 2023): it provides bit-exact
// encode/decode between IEEE-754 float64 and posits of any width,
// two's-complement negation, raw bit access for fault injection,
// field decomposition (sign/regime/exponent/fraction), and correctly
// rounded arithmetic (+, -, ×, ÷, √) together with the standard quire
// accumulator.
//
// The standard fixes the exponent field size es = 2 for every posit
// width; legacy es values (0, 1, 3) remain available through Config for
// ablation studies.
package posit

import "fmt"

// Config describes a posit format: the total bit width N and the size in
// bits of the (maximal) exponent field ES. The Posit Standard (2022)
// fixes ES = 2 for all widths; other ES values describe legacy
// (2017-era) posit formats and are supported for ablation experiments.
type Config struct {
	N  int // total width in bits, 2..64
	ES int // exponent field size in bits, 0..4
}

// Standard configurations from the 2022 posit standard.
var (
	Std8  = Config{N: 8, ES: 2}
	Std16 = Config{N: 16, ES: 2}
	Std32 = Config{N: 32, ES: 2}
	Std64 = Config{N: 64, ES: 2}
)

// Validate reports whether the configuration is usable by this package.
func (c Config) Validate() error {
	if c.N < 2 || c.N > 64 {
		return fmt.Errorf("posit: width N=%d out of supported range [2,64]", c.N)
	}
	if c.ES < 0 || c.ES > 4 {
		return fmt.Errorf("posit: exponent size ES=%d out of supported range [0,4]", c.ES)
	}
	return nil
}

// Mask returns the bit mask covering the N bits of a posit, right
// aligned in a uint64.
func (c Config) Mask() uint64 {
	if c.N >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(c.N)) - 1
}

// SignMask returns the mask selecting the sign bit (the MSB).
func (c Config) SignMask() uint64 { return uint64(1) << uint(c.N-1) }

// NaR returns the bit pattern of Not-a-Real: the sign bit set and all
// other bits clear. NaR is its own negation and encodes every
// exceptional result (the posit analogue of both NaN and ±Inf).
func (c Config) NaR() uint64 { return c.SignMask() }

// MaxPosBits returns the bit pattern of maxpos, the largest finite
// positive posit: 0 followed by all ones.
func (c Config) MaxPosBits() uint64 { return c.Mask() >> 1 }

// MinPosBits returns the bit pattern of minpos, the smallest positive
// posit: all zeros except the LSB.
func (c Config) MinPosBits() uint64 { return 1 }

// MaxScale returns the base-2 exponent of maxpos: maxpos = 2^MaxScale,
// and minpos = 2^-MaxScale.
func (c Config) MaxScale() int { return (c.N - 2) << uint(c.ES) }

// Useed returns the regime base useed = 2^(2^ES) as a float64.
// Each unit of regime value scales a posit by useed.
func (c Config) Useed() float64 {
	return float64(uint64(1) << (uint64(1) << uint(c.ES)))
}

// MaxFracLen returns the largest possible fraction length for this
// configuration: N - 1 (sign) - 2 (shortest regime) - ES.
// It is never negative for valid configurations with N >= 3+ES; for
// tiny widths it is clamped at zero.
func (c Config) MaxFracLen() int {
	m := c.N - 3 - c.ES
	if m < 0 {
		m = 0
	}
	return m
}

// Canon reduces bits to the canonical N-bit pattern (masking away any
// high garbage bits a caller may have left in the uint64).
func (c Config) Canon(bits uint64) uint64 { return bits & c.Mask() }

// Negate returns the two's complement of bits within N bits. Posit
// negation is exactly two's complement: Negate(encode(x)) == encode(-x)
// for every representable x, and NaR and zero are fixed points.
func (c Config) Negate(bits uint64) uint64 {
	return (-bits) & c.Mask()
}

// IsNeg reports whether the pattern has its sign bit set.
func (c Config) IsNeg(bits uint64) bool { return bits&c.SignMask() != 0 }

func (c Config) String() string {
	return fmt.Sprintf("posit<%d,%d>", c.N, c.ES)
}
