package posit

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// TestQuireDotExact: quire dot products must equal the exact rational
// dot product rounded once, for random posit32 vectors spanning the
// full dynamic range.
func TestQuireDotExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cfg := Std32
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(64)
		q := NewQuire(cfg)
		exact := new(big.Rat)
		for i := 0; i < n; i++ {
			a := cfg.Canon(rng.Uint64())
			b := cfg.Canon(rng.Uint64())
			if a == cfg.NaR() || b == cfg.NaR() {
				continue
			}
			q.AddProduct(a, b)
			exact.Add(exact, new(big.Rat).Mul(ratFromPosit(cfg, a), ratFromPosit(cfg, b)))
		}
		got := q.ToPosit()
		want := refRoundRat(cfg, exact)
		if got != want {
			t.Fatalf("trial %d: quire dot = %#x (%v), want %#x (%v)",
				trial, got, DecodeFloat64(cfg, got), want, DecodeFloat64(cfg, want))
		}
	}
}

// TestQuireSumExact repeats the check for plain sums, including
// subtraction.
func TestQuireSumExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, cfg := range []Config{Std8, Std16, Std32, Std64} {
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(40)
			q := NewQuire(cfg)
			exact := new(big.Rat)
			for i := 0; i < n; i++ {
				a := cfg.Canon(rng.Uint64())
				if a == cfg.NaR() {
					continue
				}
				if rng.Intn(2) == 0 {
					q.AddPosit(a)
					exact.Add(exact, ratFromPosit(cfg, a))
				} else {
					q.SubPosit(a)
					exact.Sub(exact, ratFromPosit(cfg, a))
				}
			}
			got := q.ToPosit()
			want := refRoundRat(cfg, exact)
			if got != want {
				t.Fatalf("%v trial %d: quire sum = %#x, want %#x (exact %v)",
					cfg, trial, got, want, exact.FloatString(20))
			}
		}
	}
}

// TestQuireCancellation: catastrophic cancellation that destroys
// floating-point sums is exact in a quire.
func TestQuireCancellation(t *testing.T) {
	cfg := Std32
	big1 := EncodeFloat64(cfg, math.Ldexp(1, 60))
	tiny := EncodeFloat64(cfg, math.Ldexp(1, -60))
	q := NewQuire(cfg)
	q.AddPosit(big1)
	q.AddPosit(tiny)
	q.SubPosit(big1)
	if got := q.ToPosit(); got != tiny {
		t.Errorf("quire cancellation: got %#x, want tiny %#x", got, tiny)
	}
	// Naive posit arithmetic loses the tiny term entirely.
	naive := Sub(cfg, Add(cfg, Add(cfg, big1, tiny), 0), big1)
	if naive == tiny {
		t.Skip("unexpectedly exact; dynamic range too small to demonstrate")
	}
}

// TestQuireProductExactness: a quire holds minpos² and maxpos²
// without loss.
func TestQuireProductExactness(t *testing.T) {
	for _, cfg := range []Config{Std8, Std16, Std32} {
		minp := cfg.MinPosBits()
		q := NewQuire(cfg)
		q.AddProduct(minp, minp)
		exact := new(big.Rat).Mul(ratFromPosit(cfg, minp), ratFromPosit(cfg, minp))
		if got, want := q.ToPosit(), refRoundRat(cfg, exact); got != want {
			t.Errorf("%v: minpos² through quire = %#x, want %#x", cfg, got, want)
		}
		maxp := cfg.MaxPosBits()
		q.Zero()
		q.AddProduct(maxp, maxp)
		exact = new(big.Rat).Mul(ratFromPosit(cfg, maxp), ratFromPosit(cfg, maxp))
		if got, want := q.ToPosit(), refRoundRat(cfg, exact); got != want {
			t.Errorf("%v: maxpos² through quire = %#x, want %#x", cfg, got, want)
		}
		// maxpos² saturates on readout (exceeds maxpos).
		if q.ToPosit() != cfg.MaxPosBits() {
			t.Errorf("%v: maxpos² should saturate to maxpos", cfg)
		}
	}
}

// TestQuireNaR: NaR poisons the quire permanently until Zero.
func TestQuireNaR(t *testing.T) {
	cfg := Std32
	q := NewQuire(cfg)
	q.AddPosit(EncodeFloat64(cfg, 3))
	q.AddPosit(cfg.NaR())
	if !q.IsNaR() || q.ToPosit() != cfg.NaR() {
		t.Error("quire should be NaR after accumulating NaR")
	}
	q.AddPosit(EncodeFloat64(cfg, 1))
	if q.ToPosit() != cfg.NaR() {
		t.Error("quire should stay NaR")
	}
	q.Zero()
	q.AddPosit(EncodeFloat64(cfg, 2))
	if q.ToPosit() != EncodeFloat64(cfg, 2) {
		t.Error("quire should recover after Zero")
	}
	if !math.IsNaN(func() float64 { q.AddPosit(cfg.NaR()); return q.Float64() }()) {
		t.Error("NaR quire Float64 should be NaN")
	}
}

// TestQuireOrderIndependence: permuting the accumulation order never
// changes the result (the reproducibility property the paper cites).
func TestQuireOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cfg := Std32
	vals := make([]uint64, 50)
	for i := range vals {
		for {
			vals[i] = cfg.Canon(rng.Uint64())
			if vals[i] != cfg.NaR() {
				break
			}
		}
	}
	sum := func(order []int) uint64 {
		q := NewQuire(cfg)
		for _, idx := range order {
			q.AddPosit(vals[idx])
		}
		return q.ToPosit()
	}
	base := make([]int, len(vals))
	for i := range base {
		base[i] = i
	}
	want := sum(base)
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(vals))
		if got := sum(perm); got != want {
			t.Fatalf("quire sum depends on order: %#x vs %#x", got, want)
		}
	}
	// Contrast: naive left-to-right posit addition is order dependent
	// in general (not asserted, just computed for coverage).
	acc := uint64(0)
	for _, v := range vals {
		acc = Add(cfg, acc, v)
	}
	_ = acc
}

// TestDotAndSumHelpers covers the convenience wrappers.
func TestDotAndSumHelpers(t *testing.T) {
	a := []Posit32{P32FromFloat64(1), P32FromFloat64(2), P32FromFloat64(3)}
	b := []Posit32{P32FromFloat64(4), P32FromFloat64(5), P32FromFloat64(6)}
	if got := DotP32(a, b).Float64(); got != 32 {
		t.Errorf("DotP32 = %v, want 32", got)
	}
	if got := SumP32(a).Float64(); got != 6 {
		t.Errorf("SumP32 = %v, want 6", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("DotP32 length mismatch should panic")
		}
	}()
	DotP32(a, b[:2])
}

func TestNewQuirePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewQuire should panic for N not divisible by 4")
		}
	}()
	NewQuire(Config{N: 10, ES: 2})
}

// TestDotHelpersOtherWidths covers the 16- and 64-bit quire wrappers,
// including a product whose exactness requires the quire (maxpos16²
// accumulated against its negation cancels exactly).
func TestDotHelpersOtherWidths(t *testing.T) {
	a16 := []Posit16{P16FromFloat64(1.5), P16FromFloat64(-2)}
	b16 := []Posit16{P16FromFloat64(4), P16FromFloat64(0.25)}
	if got := DotP16(a16, b16).Float64(); got != 5.5 {
		t.Errorf("DotP16 = %v", got)
	}
	if got := SumP16(a16).Float64(); got != -0.5 {
		t.Errorf("SumP16 = %v", got)
	}
	a64 := []Posit64{P64FromFloat64(1e10), P64FromFloat64(-1e10), P64FromFloat64(0.5)}
	ones := []Posit64{P64FromFloat64(1), P64FromFloat64(1), P64FromFloat64(1)}
	if got := DotP64(a64, ones).Float64(); got != 0.5 {
		t.Errorf("DotP64 = %v", got)
	}
	if got := SumP64(a64).Float64(); got != 0.5 {
		t.Errorf("SumP64 = %v", got)
	}
	// Exact cancellation through the 1024-bit quire: maxpos64² − maxpos64² + 1.
	maxp := P64FromBits(Std64.MaxPosBits())
	q := NewQuire(Std64)
	q.AddProduct(uint64(maxp), uint64(maxp))
	q.SubProduct(uint64(maxp), uint64(maxp))
	q.AddPosit(uint64(P64FromFloat64(1)))
	if got := P64FromBits(q.ToPosit()).Float64(); got != 1 {
		t.Errorf("maxpos64 cancellation = %v", got)
	}
	for _, f := range []func(){
		func() { DotP16(a16, b16[:1]) },
		func() { DotP64(a64, ones[:1]) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("length mismatch should panic")
				}
			}()
			f()
		}()
	}
}
