package posit

import "math/bits"

// This file implements the remaining conversion operations of the 2022
// posit standard: posit↔posit width conversion, posit↔integer
// conversion, and neighbor enumeration (NextUp/NextDown).

// Convert re-rounds a posit pattern from one configuration to another.
// Widening between standard formats (same ES) is exact; narrowing
// rounds to nearest (ties to even in the integer representation) and
// saturates like EncodeFloat64. Zero and NaR map to zero and NaR.
func Convert(from, to Config, bitsIn uint64) uint64 {
	b := from.Canon(bitsIn)
	if b == 0 {
		return 0
	}
	if b == from.NaR() {
		return to.NaR()
	}
	u := unpack(from, b)
	return pack(to, u, 0, false)
}

// FromInt64 returns the posit nearest to the integer v.
func FromInt64(cfg Config, v int64) uint64 {
	if v == 0 {
		return 0
	}
	neg := v < 0
	var mag uint64
	if neg {
		mag = uint64(-v) // two's complement: correct even for MinInt64
	} else {
		mag = uint64(v)
	}
	lz := bits.LeadingZeros64(mag)
	h := 63 - lz
	// Significand tail: bits below the leading 1, left-aligned.
	tail := mag << uint(lz+1)
	p := assemble(cfg, h, tail, false)
	if neg {
		p = cfg.Negate(p)
	}
	return p
}

// FromUint64 returns the posit nearest to the unsigned integer v.
func FromUint64(cfg Config, v uint64) uint64 {
	if v == 0 {
		return 0
	}
	lz := bits.LeadingZeros64(v)
	h := 63 - lz
	tail := v << uint(lz+1)
	return assemble(cfg, h, tail, false)
}

// ToInt64 converts a posit to int64, rounding to nearest with ties to
// even (the standard's convention). NaR and out-of-range magnitudes
// saturate to MinInt64/MaxInt64; the standard maps NaR to MinInt64.
func ToInt64(cfg Config, bitsIn uint64) int64 {
	b := cfg.Canon(bitsIn)
	if b == 0 {
		return 0
	}
	if b == cfg.NaR() {
		return -1 << 63
	}
	neg := cfg.IsNeg(b)
	if neg {
		b = cfg.Negate(b)
	}
	f := DecodeFields(cfg, b)
	h := (f.R << uint(cfg.ES)) + int(f.Exp)
	mag, ok := roundSigToInt(f, h, 63)
	if !ok {
		if neg {
			return -1 << 63
		}
		return 1<<63 - 1
	}
	if neg {
		return -int64(mag)
	}
	if mag > 1<<63-1 {
		return 1<<63 - 1
	}
	return int64(mag)
}

// ToUint64 converts a posit to uint64 (negative posits round toward
// zero results... the standard defines negative → saturate at 0 after
// rounding; values in (-0.5, 0) round to 0).
func ToUint64(cfg Config, bitsIn uint64) uint64 {
	b := cfg.Canon(bitsIn)
	if b == 0 {
		return 0
	}
	if b == cfg.NaR() {
		return 1 << 63 // standard: NaR → 0x8000000000000000
	}
	if cfg.IsNeg(b) {
		// Round to nearest: only magnitudes < 0.5 round up to 0.
		mag := cfg.Negate(b)
		f := DecodeFields(cfg, mag)
		h := (f.R << uint(cfg.ES)) + int(f.Exp)
		if h < -1 {
			return 0
		}
		if v, ok := roundSigToInt(f, h, 64); ok && v == 0 {
			return 0
		}
		return 0 // negative values saturate at 0
	}
	f := DecodeFields(cfg, b)
	h := (f.R << uint(cfg.ES)) + int(f.Exp)
	mag, ok := roundSigToInt(f, h, 64)
	if !ok {
		return ^uint64(0)
	}
	return mag
}

// roundSigToInt rounds (1 + Frac/2^FracLen) × 2^h to an integer with
// round-half-even, reporting overflow beyond maxBits bits.
func roundSigToInt(f Fields, h int, maxBits int) (uint64, bool) {
	if h < -1 {
		return 0, true // < 0.5 rounds to 0
	}
	if h >= maxBits {
		return 0, false
	}
	sig := (uint64(1) << uint(f.FracLen)) + f.Frac // FracLen+1 bits
	shift := f.FracLen - h                         // bits below the binary point
	switch {
	case shift <= 0:
		// Integer already; scale up (bounded: h < maxBits, sig fits).
		if -shift >= 64 || bits.Len64(sig)+(-shift) > maxBits {
			return 0, false
		}
		return sig << uint(-shift), true
	case shift > 63:
		// Value < 1 with h >= -1: h == -1 means value in [0.5, 1):
		// rounds to 1 unless exactly 0.5 (ties to even → 0).
		if h == -1 {
			if f.Frac == 0 { // exactly 0.5: tie → even (0)
				return 0, true
			}
			return 1, true
		}
		return 0, true
	default:
		kept := sig >> uint(shift)
		guard := (sig >> uint(shift-1)) & 1
		sticky := sig&(maskN(shift-1)) != 0
		if guard == 1 && (sticky || kept&1 == 1) {
			kept++
		}
		if maxBits < 64 && bits.Len64(kept) > maxBits {
			return 0, false
		}
		return kept, true
	}
}

// NextUp returns the smallest posit strictly greater than the given
// pattern's value. Because posits order as signed integers, this is
// simply pattern+1 — except NaR (no successor defined: returns the
// most negative real) and maxpos (saturates at maxpos).
func NextUp(cfg Config, bitsIn uint64) uint64 {
	b := cfg.Canon(bitsIn)
	if b == cfg.MaxPosBits() {
		return b // already the largest real
	}
	return cfg.Canon(b + 1)
}

// NextDown returns the largest posit strictly smaller than the value.
// The most negative real (NaR+1) has no predecessor and saturates.
func NextDown(cfg Config, bitsIn uint64) uint64 {
	b := cfg.Canon(bitsIn)
	if b == cfg.Canon(cfg.NaR()+1) {
		return b
	}
	return cfg.Canon(b - 1)
}

// FMA computes the correctly rounded fused a×b + c: the product is
// exact (never rounded) before the addition, as the standard requires.
func FMA(cfg Config, a, b, c uint64) uint64 {
	ua, ub, uc := unpack(cfg, a), unpack(cfg, b), unpack(cfg, c)
	if ua.nar || ub.nar || uc.nar {
		return cfg.NaR()
	}
	if ua.zero || ub.zero {
		return cfg.Canon(c)
	}
	// Exact product: 128-bit significand.
	hi, lo := bits.Mul64(ua.sig, ub.sig)
	neg := ua.neg != ub.neg
	h := ua.h + ub.h
	// Normalize product so top bit is at position 126 (hi bit 62).
	t := 2
	if hi>>61 != 0 {
		t = 1
		h++
	}
	hi = hi<<uint(t) | lo>>uint(64-t)
	lo <<= uint(t)
	if uc.zero {
		return pack(cfg, unpacked{neg: neg, h: h, sig: hi}, lo, false)
	}
	// Add c (sig at bit 62 with 64-bit ext = 0) to the product
	// (hi at bit 62, ext = lo).
	p := wide{neg: neg, h: h, hi: hi, lo: lo}
	q := wide{neg: uc.neg, h: uc.h, hi: uc.sig, lo: 0}
	r := addWide(p, q)
	if r.zeroFlag {
		return 0
	}
	return pack(cfg, unpacked{neg: r.neg, h: r.h, sig: r.hi}, r.lo, r.sticky)
}

// wide is a 128-bit-significand intermediate: value = ±(hi:lo) ×
// 2^(h-126) with hi's bit 62 set (so hi:lo's bit 126 is the implicit
// one).
type wide struct {
	neg      bool
	h        int
	hi, lo   uint64
	sticky   bool
	zeroFlag bool
}

// addWide adds two wide values exactly over a 192-bit window (three
// limbs), wide enough that a posit (≤ 63 significant bits) aligned
// against a 128-bit product never loses bits that could influence the
// correctly rounded result.
func addWide(a, b wide) wide {
	// Order by magnitude (both operands are normalized with the
	// implicit 1 at window bit 190, so the scale decides first).
	if a.h < b.h || (a.h == b.h && (a.hi < b.hi || (a.hi == b.hi && a.lo < b.lo))) {
		a, b = b, a
	}
	shift := a.h - b.h
	// Windows: limb [2] is the most significant.
	aw := [3]uint64{0, a.lo, a.hi}
	bw := [3]uint64{0, b.lo, b.hi}
	sticky := shiftRight3(&bw, shift)

	out := wide{neg: a.neg, h: a.h}
	if a.neg == b.neg {
		var carry uint64
		var s [3]uint64
		s[0], carry = bits.Add64(aw[0], bw[0], 0)
		s[1], carry = bits.Add64(aw[1], bw[1], carry)
		s[2], _ = bits.Add64(aw[2], bw[2], carry)
		if s[2]>>63 != 0 { // carried past the implicit-1 position
			sticky = sticky || s[0]&1 != 0
			shiftRight3(&s, 1)
			out.h++
		}
		return finishWide(out, s, sticky)
	}
	// Subtraction (|a| >= |b| by the ordering above). A sticky residue
	// below the window makes the true result fractionally smaller.
	var borrow uint64
	var d [3]uint64
	d[0], borrow = bits.Sub64(aw[0], bw[0], 0)
	d[1], borrow = bits.Sub64(aw[1], bw[1], borrow)
	d[2], _ = bits.Sub64(aw[2], bw[2], borrow)
	if sticky {
		d[0], borrow = bits.Sub64(d[0], 1, 0)
		d[1], borrow = bits.Sub64(d[1], 0, borrow)
		d[2], _ = bits.Sub64(d[2], 0, borrow)
	}
	if d[0] == 0 && d[1] == 0 && d[2] == 0 {
		if sticky {
			// Unreachable for FMA operand widths (needs > 192
			// significant bits); represent as a tiny positive value.
			out.h -= 256
			return finishWide(out, [3]uint64{0, 0, 1 << 62}, true)
		}
		return wide{zeroFlag: true}
	}
	// Normalize the leading 1 back to window bit 190.
	lz := leadingZeros3(d)
	adj := lz - 1 // window has 192 bits; implicit position is bit 190
	shiftLeft3(&d, adj)
	out.h -= adj
	return finishWide(out, d, sticky)
}

// finishWide folds a 192-bit window into the (hi, lo, sticky) triple
// pack consumes.
func finishWide(out wide, w [3]uint64, sticky bool) wide {
	out.hi = w[2]
	out.lo = w[1]
	out.sticky = sticky || w[0] != 0
	return out
}

// shiftRight3 shifts the window right, returning true if any dropped
// bit was set.
func shiftRight3(w *[3]uint64, n int) bool {
	if n <= 0 {
		return false
	}
	sticky := false
	for n >= 64 {
		sticky = sticky || w[0] != 0
		w[0], w[1], w[2] = w[1], w[2], 0
		n -= 64
	}
	if n > 0 {
		sticky = sticky || w[0]<<uint(64-n) != 0
		w[0] = w[0]>>uint(n) | w[1]<<uint(64-n)
		w[1] = w[1]>>uint(n) | w[2]<<uint(64-n)
		w[2] >>= uint(n)
	}
	return sticky
}

// shiftLeft3 shifts the window left by n (no overflow may occur).
func shiftLeft3(w *[3]uint64, n int) {
	if n <= 0 {
		return
	}
	for n >= 64 {
		w[2], w[1], w[0] = w[1], w[0], 0
		n -= 64
	}
	if n > 0 {
		w[2] = w[2]<<uint(n) | w[1]>>uint(64-n)
		w[1] = w[1]<<uint(n) | w[0]>>uint(64-n)
		w[0] <<= uint(n)
	}
}

// leadingZeros3 counts leading zeros over the 192-bit window.
func leadingZeros3(w [3]uint64) int {
	if w[2] != 0 {
		return bits.LeadingZeros64(w[2])
	}
	if w[1] != 0 {
		return 64 + bits.LeadingZeros64(w[1])
	}
	return 128 + bits.LeadingZeros64(w[0])
}
