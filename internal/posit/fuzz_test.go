package posit

// Native fuzz targets. Under plain `go test` the seed corpus runs as
// regression tests; `go test -fuzz=FuzzX` explores further.

import (
	"math"
	"math/big"
	"testing"
)

func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(0.0)
	f.Add(1.0)
	f.Add(-186.25)
	f.Add(math.Ldexp(1, -120))
	f.Add(math.Ldexp(1.999, 119))
	f.Add(math.SmallestNonzeroFloat64)
	f.Add(math.MaxFloat64)
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return
		}
		for _, cfg := range []Config{Std8, Std16, Std32, Std64} {
			b := EncodeFloat64(cfg, x)
			if b != cfg.Canon(b) {
				t.Fatalf("%v: encode produced non-canonical bits %#x", cfg, b)
			}
			v := DecodeFloat64(cfg, b)
			if x != 0 && v == 0 {
				t.Fatalf("%v: nonzero %g rounded to zero", cfg, x)
			}
			if math.IsNaN(v) {
				t.Fatalf("%v: finite %g decoded to NaN", cfg, x)
			}
			if rt := EncodeFloat64(cfg, v); rt != b {
				t.Fatalf("%v: re-encode of %g gave %#x, want %#x", cfg, v, rt, b)
			}
			// Sign preservation.
			if x != 0 && (v < 0) != (x < 0) {
				t.Fatalf("%v: sign flipped: %g -> %g", cfg, x, v)
			}
		}
	})
}

func FuzzDecodersAgree(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0x80000000))
	f.Add(uint64(0x40000000))
	f.Add(^uint64(0))
	f.Add(uint64(0x0000000180000001))
	f.Fuzz(func(t *testing.T, raw uint64) {
		for _, cfg := range []Config{Std8, Std16, Std32, Std64, {N: 19, ES: 1}} {
			b := cfg.Canon(raw)
			if b == cfg.NaR() {
				continue
			}
			v1 := DecodeFloat64(cfg, b)
			v2 := DecodeEq2(cfg, b)
			if v1 != v2 {
				t.Fatalf("%v: decoders disagree at %#x: %v vs %v", cfg, b, v1, v2)
			}
		}
	})
}

func FuzzAddAgainstRat(f *testing.F) {
	f.Add(uint32(0x40000000), uint32(0x40000000))
	f.Add(uint32(0x7FFFFFFF), uint32(1))
	f.Add(uint32(0xC0000000), uint32(0x40000000))
	f.Add(uint32(0x00000001), uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, a, b uint32) {
		x, y := uint64(a), uint64(b)
		if x == Std32.NaR() || y == Std32.NaR() {
			return
		}
		got := Add(Std32, x, y)
		exact := new(big.Rat).Add(ratFromPosit(Std32, x), ratFromPosit(Std32, y))
		if want := refRoundRat(Std32, exact); got != want {
			t.Fatalf("add(%#x,%#x) = %#x, want %#x", x, y, got, want)
		}
	})
}

func FuzzParse(f *testing.F) {
	f.Add("0")
	f.Add("186.25")
	f.Add("-1e-30")
	f.Add("NaR")
	f.Add("3/4")
	f.Add("1.7976931348623157e308")
	f.Add("not a number")
	f.Fuzz(func(t *testing.T, s string) {
		b, err := Parse(Std32, s)
		if err != nil {
			return // rejected input
		}
		if b != Std32.Canon(b) {
			t.Fatalf("Parse(%q) produced non-canonical bits", s)
		}
		// Whatever parsed must format and re-parse to the same pattern.
		out := Format(Std32, b, 'g', -1)
		back, err := Parse(Std32, out)
		if err != nil || back != b {
			t.Fatalf("Parse(%q)=%#x, reformat %q reparsed to %#x (%v)", s, b, out, back, err)
		}
	})
}

func FuzzQuireFMA(f *testing.F) {
	f.Add(uint32(0x40000000), uint32(0x40000000), uint32(0xC0000000))
	f.Add(uint32(1), uint32(0x7FFFFFFF), uint32(0))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		x, y, z := uint64(a), uint64(b), uint64(c)
		if x == Std32.NaR() || y == Std32.NaR() || z == Std32.NaR() {
			return
		}
		// FMA and a quire computing x*y + z must agree exactly (both
		// are single-rounding).
		got := FMA(Std32, x, y, z)
		q := NewQuire(Std32)
		q.AddProduct(x, y)
		q.AddPosit(z)
		if want := q.ToPosit(); got != want {
			t.Fatalf("FMA(%#x,%#x,%#x) = %#x, quire says %#x", x, y, z, got, want)
		}
	})
}
