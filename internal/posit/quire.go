package posit

import (
	"fmt"
	"math/bits"
)

// Quire is the fixed-point accumulator defined by the 2022 posit
// standard: a two's-complement register of 16·N bits whose LSB has
// weight 2^-(8(N-2)). It holds the exact sum of up to 2^31 products of
// posits with no rounding; a single rounding occurs when the value is
// read back out with ToPosit. Quires make dot products, sums and
// matrix kernels reproducible regardless of accumulation order.
type Quire struct {
	cfg Config
	nar bool
	// w holds the register little-endian: w[0] is the least
	// significant 64 bits. len(w) = 16*N/64 = N/4 words.
	w []uint64
}

// NewQuire returns a zeroed quire for the given posit configuration.
// N must be a multiple of 4 (all standard widths are).
func NewQuire(cfg Config) *Quire {
	if cfg.N%4 != 0 {
		panic(fmt.Sprintf("posit: quire requires N divisible by 4, got %v", cfg))
	}
	return &Quire{cfg: cfg, w: make([]uint64, cfg.N/4)}
}

// fracBits returns the number of fraction bits in the quire fixed
// point: 8(N-2) per the standard (240 for posit32).
func (q *Quire) fracBits() int { return 8 * (q.cfg.N - 2) }

// Zero resets the quire.
func (q *Quire) Zero() {
	q.nar = false
	for i := range q.w {
		q.w[i] = 0
	}
}

// IsNaR reports whether the quire holds Not-a-Real.
func (q *Quire) IsNaR() bool { return q.nar }

// AddPosit accumulates q += p exactly.
func (q *Quire) AddPosit(p uint64) { q.fma(p, EncodeFloat64(q.cfg, 1), false) }

// SubPosit accumulates q -= p exactly.
func (q *Quire) SubPosit(p uint64) { q.fma(p, EncodeFloat64(q.cfg, 1), true) }

// AddProduct accumulates q += a×b exactly (fused: the product is never
// rounded).
func (q *Quire) AddProduct(a, b uint64) { q.fma(a, b, false) }

// SubProduct accumulates q -= a×b exactly.
func (q *Quire) SubProduct(a, b uint64) { q.fma(a, b, true) }

func (q *Quire) fma(a, b uint64, subtract bool) {
	if q.nar {
		return
	}
	ua, ub := unpack(q.cfg, a), unpack(q.cfg, b)
	if ua.nar || ub.nar {
		q.nar = true
		return
	}
	if ua.zero || ub.zero {
		return
	}
	hi, lo := bits.Mul64(ua.sig, ub.sig) // exact product, scale 2^(ha+hb-124)
	neg := (ua.neg != ub.neg) != subtract
	// Quire bit position of product bit 0.
	s := q.fracBits() + ua.h + ub.h - 124
	if s < 0 {
		// The dropped low bits are provably zero for in-range posit
		// products (the quire is sized to hold them exactly), but we
		// shift defensively.
		if -s >= 64 {
			lo = hi >> uint(-s-64)
			hi = 0
		} else {
			lo = lo>>uint(-s) | hi<<uint(64-(-s))
			hi >>= uint(-s)
		}
		s = 0
	}
	word, off := s/64, uint(s%64)
	// Spread the 128-bit product across up to three words.
	var p [3]uint64
	p[0] = lo << off
	if off == 0 {
		p[1] = hi
	} else {
		p[1] = lo>>(64-off) | hi<<off
		p[2] = hi >> (64 - off)
	}
	if neg {
		q.subAt(word, p)
	} else {
		q.addAt(word, p)
	}
}

func (q *Quire) addAt(word int, p [3]uint64) {
	var carry uint64
	for i := 0; i < 3 && word+i < len(q.w); i++ {
		q.w[word+i], carry = bits.Add64(q.w[word+i], p[i], carry)
	}
	for i := word + 3; carry != 0 && i < len(q.w); i++ {
		q.w[i], carry = bits.Add64(q.w[i], 0, carry)
	}
}

func (q *Quire) subAt(word int, p [3]uint64) {
	var borrow uint64
	for i := 0; i < 3 && word+i < len(q.w); i++ {
		q.w[word+i], borrow = bits.Sub64(q.w[word+i], p[i], borrow)
	}
	for i := word + 3; borrow != 0 && i < len(q.w); i++ {
		q.w[i], borrow = bits.Sub64(q.w[i], 0, borrow)
	}
}

// ToPosit rounds the accumulated value to the nearest posit (the only
// rounding in a quire computation).
func (q *Quire) ToPosit() uint64 {
	if q.nar {
		return q.cfg.NaR()
	}
	neg := q.w[len(q.w)-1]>>63 != 0
	mag := make([]uint64, len(q.w))
	copy(mag, q.w)
	if neg {
		negateWords(mag)
	}
	// Locate the most significant set bit.
	msb := -1
	for i := len(mag) - 1; i >= 0; i-- {
		if mag[i] != 0 {
			msb = 64*i + 63 - bits.LeadingZeros64(mag[i])
			break
		}
	}
	if msb < 0 {
		return 0
	}
	h := msb - q.fracBits()
	// Extract the 64 bits below the leading 1 (the fraction tail) and
	// a sticky flag for everything lower.
	tail := extractBelow(mag, msb)
	sticky := anyBelow(mag, msb-64)
	p := assemble(q.cfg, h, tail, sticky)
	if neg {
		p = q.cfg.Negate(p)
	}
	return p
}

// Float64 reads the quire value as a float64 (for diagnostics; rounds
// twice, unlike ToPosit).
func (q *Quire) Float64() float64 {
	return DecodeFloat64(q.cfg, q.ToPosit())
}

func negateWords(w []uint64) {
	carry := uint64(1)
	for i := range w {
		w[i], carry = bits.Add64(^w[i], 0, carry)
	}
}

// extractBelow returns the 64 bits at positions [msb-64, msb-1] of the
// little-endian word array, left-aligned (bit msb-1 becomes bit 63).
// Positions below zero read as 0.
func extractBelow(w []uint64, msb int) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		pos := msb - 1 - i // stream order, MSB first
		if pos < 0 {
			break
		}
		if w[pos/64]>>(uint(pos%64))&1 != 0 {
			out |= 1 << uint(63-i)
		}
	}
	return out
}

// anyBelow reports whether any bit at a position strictly below limit
// is set.
func anyBelow(w []uint64, limit int) bool {
	if limit <= 0 {
		return false
	}
	full := limit / 64
	for i := 0; i < full; i++ {
		if w[i] != 0 {
			return true
		}
	}
	if rem := uint(limit % 64); rem != 0 && full < len(w) {
		if w[full]&maskN(int(rem)) != 0 {
			return true
		}
	}
	return false
}

// DotP32 computes the exact dot product of two posit32 slices through
// a quire, rounding once at the end.
func DotP32(a, b []Posit32) Posit32 {
	if len(a) != len(b) {
		panic("posit: DotP32 length mismatch")
	}
	q := NewQuire(Std32)
	for i := range a {
		q.AddProduct(uint64(a[i]), uint64(b[i]))
	}
	return Posit32(q.ToPosit())
}

// SumP32 computes the exact sum of a posit32 slice through a quire.
func SumP32(a []Posit32) Posit32 {
	q := NewQuire(Std32)
	for _, p := range a {
		q.AddPosit(uint64(p))
	}
	return Posit32(q.ToPosit())
}

// DotP16 computes the exact dot product of two posit16 slices.
func DotP16(a, b []Posit16) Posit16 {
	if len(a) != len(b) {
		panic("posit: DotP16 length mismatch")
	}
	q := NewQuire(Std16)
	for i := range a {
		q.AddProduct(uint64(a[i]), uint64(b[i]))
	}
	return Posit16(q.ToPosit())
}

// SumP16 computes the exact sum of a posit16 slice.
func SumP16(a []Posit16) Posit16 {
	q := NewQuire(Std16)
	for _, p := range a {
		q.AddPosit(uint64(p))
	}
	return Posit16(q.ToPosit())
}

// DotP64 computes the exact dot product of two posit64 slices through
// the 1024-bit quire.
func DotP64(a, b []Posit64) Posit64 {
	if len(a) != len(b) {
		panic("posit: DotP64 length mismatch")
	}
	q := NewQuire(Std64)
	for i := range a {
		q.AddProduct(uint64(a[i]), uint64(b[i]))
	}
	return Posit64(q.ToPosit())
}

// SumP64 computes the exact sum of a posit64 slice.
func SumP64(a []Posit64) Posit64 {
	q := NewQuire(Std64)
	for _, p := range a {
		q.AddPosit(uint64(p))
	}
	return Posit64(q.ToPosit())
}
