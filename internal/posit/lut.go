package posit

// Decode lookup tables for the two standard widths small enough to
// tabulate exhaustively: posit8 (256 entries, 2 KiB) and posit16
// (65536 entries, 512 KiB). The fault-injection campaign decodes two
// patterns per trial (the clean encoding and the corrupted one), so
// for 8- and 16-bit campaigns the decode is the hottest substrate
// call; a table turns the regime scan + Ldexp into one indexed load.
//
// The tables are built once at package init by the generic decoder,
// so they are correct by construction relative to it; the exhaustive
// cross-checks in lut_test.go additionally pin every entry against
// DecodeFloat64Generic and the independent eq. (2) decoder. Build
// cost is ~1.3 ms for both tables combined, paid by any importer.
var (
	decodeLUT8  [1 << 8]float64
	decodeLUT16 [1 << 16]float64
)

func init() {
	for b := range decodeLUT8 {
		decodeLUT8[b] = DecodeFloat64Generic(Std8, uint64(b))
	}
	for b := range decodeLUT16 {
		decodeLUT16[b] = DecodeFloat64Generic(Std16, uint64(b))
	}
}
