package posit

import "testing"

func TestTypeExtMethods(t *testing.T) {
	// FMA wrappers.
	if got := P32FromFloat64(2).FMA(P32FromFloat64(3), P32FromFloat64(4)).Float64(); got != 10 {
		t.Errorf("p32 FMA = %v", got)
	}
	if got := P16FromFloat64(2).FMA(P16FromFloat64(3), P16FromFloat64(-6)).Float64(); got != 0 {
		t.Errorf("p16 FMA = %v", got)
	}
	if got := P8FromFloat64(2).FMA(P8FromFloat64(2), P8FromFloat64(1)).Float64(); got != 5 {
		t.Errorf("p8 FMA = %v", got)
	}
	if got := P64FromFloat64(1.5).FMA(P64FromFloat64(2), P64FromFloat64(0.5)).Float64(); got != 3.5 {
		t.Errorf("p64 FMA = %v", got)
	}

	// NextUp/NextDown wrappers.
	one32 := P32FromFloat64(1)
	if one32.NextUp().NextDown() != one32 || !(one32.NextUp().Float64() > 1) {
		t.Error("p32 next")
	}
	one16 := P16FromFloat64(1)
	if one16.NextUp().NextDown() != one16 {
		t.Error("p16 next")
	}
	one8 := P8FromFloat64(1)
	if one8.NextUp().NextDown() != one8 {
		t.Error("p8 next")
	}
	one64 := P64FromFloat64(1)
	if one64.NextUp().NextDown() != one64 {
		t.Error("p64 next")
	}

	// Width conversions.
	p := P32FromFloat64(186.25)
	if p.ToP64().ToP32() != p {
		t.Error("p32 -> p64 -> p32 should be identity")
	}
	if p.ToP16().ToP32().Float64() == 0 {
		t.Error("p32 -> p16 lost everything")
	}
	if P16FromFloat64(3).ToP32().Float64() != 3 {
		t.Error("p16 widening")
	}
	if P8FromFloat64(3).ToP32().Float64() != 3 {
		t.Error("p8 widening")
	}
	if p.ToP8().Float64() != 192 { // 186.25 rounds to 192 in posit8
		t.Errorf("p32 -> p8 = %v", p.ToP8().Float64())
	}

	// Integer conversions.
	if p.Int64() != 186 {
		t.Errorf("p32 Int64 = %d", p.Int64())
	}
	if P64FromFloat64(-2.5).Int64() != -2 {
		t.Error("p64 Int64 ties to even")
	}
	if P32FromInt64(-42).Float64() != -42 {
		t.Error("P32FromInt64")
	}
	// At scale 40, posit64 carries 49 fraction bits, so 2^40 + 1 is
	// exactly representable.
	if P64FromInt64(1<<40+1).Float64() != float64(1<<40+1) {
		t.Error("P64FromInt64 should be exact for 41-bit ints")
	}
}
