package posit

import "fmt"

// Posit-native linear algebra built on the quire: every reduction is
// exact with a single rounding per output element, so results are
// bit-for-bit independent of loop order and blocking — the
// reproducibility property the posit literature (and the paper's
// introduction) advertises over IEEE-754.

// GemmP32 computes C = A·B for row-major posit32 matrices
// (A: m×n, B: n×p) with one quire per output element.
func GemmP32(m, n, p int, a, b []Posit32) ([]Posit32, error) {
	if len(a) != m*n || len(b) != n*p {
		return nil, fmt.Errorf("posit: GemmP32 shape mismatch: A %d (%dx%d), B %d (%dx%d)",
			len(a), m, n, len(b), n, p)
	}
	c := make([]Posit32, m*p)
	q := NewQuire(Std32)
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			q.Zero()
			for k := 0; k < n; k++ {
				q.AddProduct(uint64(a[i*n+k]), uint64(b[k*p+j]))
			}
			c[i*p+j] = Posit32(q.ToPosit())
		}
	}
	return c, nil
}

// MatVecP32 computes y = A·x (A: m×n row-major) with quire-exact rows.
func MatVecP32(m, n int, a, x []Posit32) ([]Posit32, error) {
	if len(a) != m*n || len(x) != n {
		return nil, fmt.Errorf("posit: MatVecP32 shape mismatch")
	}
	y := make([]Posit32, m)
	q := NewQuire(Std32)
	for i := 0; i < m; i++ {
		q.Zero()
		for k := 0; k < n; k++ {
			q.AddProduct(uint64(a[i*n+k]), uint64(x[k]))
		}
		y[i] = Posit32(q.ToPosit())
	}
	return y, nil
}

// Norm2P32 returns the Euclidean norm with a quire-exact sum of
// squares and a single final rounding through Sqrt.
func Norm2P32(x []Posit32) Posit32 {
	q := NewQuire(Std32)
	for _, v := range x {
		q.AddProduct(uint64(v), uint64(v))
	}
	return Posit32(Sqrt(Std32, q.ToPosit()))
}
