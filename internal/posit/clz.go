package posit

import (
	"math"
	mbits "math/bits"
)

// DecodeFloat64CLZ is the branchless count-leading-zeros decode path:
// valid for every configuration, selected by DecodeFloat64 for the
// standard 32- and 64-bit posits, where a lookup table is out of the
// question (2^32 entries) but the generic field-scan's per-bit loops
// dominate the campaign hot path.
//
// The structure follows the leading-zero-detector decode of posit
// hardware designs: left-align the payload at the top of a 64-bit
// word, XOR with the sign-extended first payload bit so the regime
// run becomes a run of zeros regardless of direction, and read the
// run length with a single LeadingZeros64. A guard bit planted just
// below the payload bounds the count at N-1 without a comparison, and
// because Go defines shifts of 64 or more as zero, the truncated-
// field cases (no terminator, partial exponent, no fraction) all fall
// out of plain shift arithmetic with no per-bit loops. The final
// scaling adds the exponent directly into the float64 exponent field
// — exact here because every posit magnitude and every intermediate
// significand lies strictly inside the normal float64 range.
//
// The result is bit-identical to DecodeFloat64Generic for every
// pattern of every valid configuration; clz_test.go proves it
// exhaustively for widths through 20 bits and by dense structured and
// random sampling for posit32 and posit64.
func DecodeFloat64CLZ(cfg Config, bitsIn uint64) float64 {
	b := cfg.Canon(bitsIn)
	if b == 0 {
		return 0
	}
	if b == cfg.NaR() {
		return math.NaN()
	}
	neg := cfg.IsNeg(b)
	if neg {
		b = cfg.Negate(b)
	}

	n := uint(cfg.N)
	es := uint(cfg.ES)
	// Left-align the N-1 payload bits at bit 63 (the sign bit of the
	// magnitude is 0 after negation, so nothing is lost at n == 64).
	x := b << (65 - n)
	// m is all-ones when the regime run is a run of ones; XOR then
	// turns either run direction into leading zeros.
	m := uint64(int64(x) >> 63)
	// The guard bit sits just below the payload: if the run covers the
	// whole payload the count stops here, capping k at N-1.
	guard := uint64(1) << (64 - n)
	k := mbits.LeadingZeros64((x ^ m) | guard)
	r := -k
	if m != 0 {
		r = k - 1
	}

	// Drop the run and its terminating bit. rem is how many payload
	// bits remain; when the run reached the end (rem < 0) the shifts
	// below are >= 64 and every remaining field reads as zero, exactly
	// the truncation rule of the standard.
	z := x << (uint(k) + 1)
	rem := int(n) - 2 - k
	exp := int(z >> (64 - es)) // MSB-aligned: absent low bits read 0; es == 0 shifts by 64 and reads 0
	fracLen := rem - int(es)
	if fracLen < 0 {
		fracLen = 0
	}
	frac := (z << es) >> (64 - uint(fracLen)) // fracLen == 0: shift 64, reads 0

	// value = (2^fracLen + frac) × 2^(h - fracLen), scaled by adding
	// h - fracLen straight into the exponent field: the significand is
	// a normal float64 (1 <= sig < 2^61) and |h| <= MaxScale <= 992,
	// so the scaled exponent stays strictly inside the normal range
	// and the addition is exactly Ldexp.
	h := (r << es) + exp
	sig := uint64(1)<<uint(fracLen) + frac
	v := math.Float64frombits(math.Float64bits(float64(sig)) + uint64(int64(h-fracLen))<<52)
	if neg {
		v = -v
	}
	return v
}
