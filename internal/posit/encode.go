package posit

import (
	"math"
	"math/bits"
)

// EncodeFloat64 converts an IEEE-754 float64 to the nearest posit of
// the given configuration, following the rounding rules of the 2022
// posit standard:
//
//   - round to nearest, ties to even, in the posit integer
//     representation (guard/sticky on the trailing significand bits);
//   - a nonzero value never rounds to zero: positive values below
//     minpos saturate to minpos (and symmetrically for negatives);
//   - finite values never round to NaR: magnitudes above maxpos
//     saturate to maxpos;
//   - ±0 encodes to 0; NaN and ±Inf encode to NaR.
//
// The returned pattern is right-aligned in the low N bits.
func EncodeFloat64(cfg Config, x float64) uint64 {
	if x == 0 {
		return 0
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return cfg.NaR()
	}
	neg := math.Signbit(x)
	fb := math.Float64bits(math.Abs(x))
	rawExp := int(fb >> 52)
	man := fb & (1<<52 - 1)

	var h int // unbiased base-2 scale: |x| = 2^h * (1 + man/2^52)
	if rawExp == 0 {
		// Subnormal float64: normalize the mantissa so its leading 1
		// becomes the implicit bit.
		shift := bits.LeadingZeros64(man) - 11 // man has <= 51 significant bits
		man = (man << uint(shift+1)) & (1<<52 - 1)
		h = -1022 - (shift + 1)
	} else {
		h = rawExp - 1023
	}

	p := assemble(cfg, h, man<<12, false) // significand tail left-aligned in 64 bits
	if neg {
		p = cfg.Negate(p)
	}
	return p
}

// assemble builds the posit bit pattern for the positive value
// 2^h × (1 + tail/2^64), where tail holds the fraction bits of the
// significand left-aligned in a uint64 and stickyIn is true when
// further nonzero bits were discarded below the tail. It performs the
// standard saturation and round-to-nearest-even. The result always has
// a clear sign bit.
func assemble(cfg Config, h int, tail uint64, stickyIn bool) uint64 {
	maxScale := cfg.MaxScale()
	if h >= maxScale {
		return cfg.MaxPosBits()
	}
	if h < -maxScale {
		return cfg.MinPosBits()
	}

	r := h >> uint(cfg.ES)               // regime value (floor division)
	e := uint64(h - (r << uint(cfg.ES))) // exponent in [0, 2^ES)

	// Build the payload stream MSB-first in a 128-bit accumulator
	// (hi, lo), left-aligned at bit 127 of hi:lo:
	//   regime bits ++ ES exponent bits ++ significand tail
	var hi, lo uint64
	var streamLen int // number of stream bits produced

	pushBits := func(v uint64, width int) {
		// Append the low `width` bits of v to the stream.
		for width > 0 {
			take := width
			space := 128 - streamLen
			if take > space {
				take = space
			}
			if take <= 0 {
				return
			}
			chunk := (v >> uint(width-take)) & maskN(take)
			// Place chunk so its MSB lands at stream bit (127-streamLen).
			shift := 128 - streamLen - take
			if shift >= 64 {
				hi |= chunk << uint(shift-64)
			} else {
				hi |= chunk >> uint(64-shift)
				if shift > 0 {
					lo |= chunk << uint(shift)
				} else {
					lo |= chunk
				}
			}
			streamLen += take
			width -= take
		}
	}

	// Regime.
	if r >= 0 {
		pushBits(maskN(r+1), r+1) // r+1 ones
		pushBits(0, 1)            // terminating zero
	} else {
		pushBits(0, -r) // -r zeros
		pushBits(1, 1)  // terminating one
	}
	// Exponent.
	if cfg.ES > 0 {
		pushBits(e, cfg.ES)
	}
	// Significand tail (64 bits).
	pushBits(tail, 64)

	// The posit payload is the top n-1 stream bits; the next bit is the
	// guard, everything below contributes to sticky.
	pn := cfg.N - 1
	payload := hi >> uint(64-pn)
	guard := (hi >> uint(64-pn-1)) & 1
	stickyBits := lo != 0 || stickyIn
	if 64-pn-1 > 0 {
		stickyBits = stickyBits || hi&maskN(64-pn-1) != 0
	}

	if guard == 1 && (stickyBits || payload&1 == 1) {
		payload++
	}
	// payload cannot overflow into the sign bit: an all-ones payload
	// implies h >= maxScale, which saturated above.
	return payload
}

// maskN returns a mask of the low n bits (n in [0, 64]).
func maskN(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}
