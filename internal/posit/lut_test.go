package posit

import (
	"math"
	"testing"
)

// TestLUTDecodeEquivalence proves the table-backed DecodeFloat64
// matches both the generic decoder and the independent eq. (2)
// decoder over every 2^8 and 2^16 bit pattern. Comparison is on
// float64 bit patterns so NaN (the NaR decoding) and signed zero are
// checked exactly.
func TestLUTDecodeEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		max  uint64
	}{
		{"posit8", Std8, 1 << 8},
		{"posit16", Std16, 1 << 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for b := uint64(0); b < tc.max; b++ {
				lut := DecodeFloat64(tc.cfg, b)
				gen := DecodeFloat64Generic(tc.cfg, b)
				eq2 := DecodeEq2(tc.cfg, b)
				if math.Float64bits(lut) != math.Float64bits(gen) {
					t.Fatalf("%s pattern %#x: LUT %v (%#x) != generic %v (%#x)",
						tc.name, b, lut, math.Float64bits(lut), gen, math.Float64bits(gen))
				}
				if math.Float64bits(lut) != math.Float64bits(eq2) {
					t.Fatalf("%s pattern %#x: LUT %v (%#x) != eq2 %v (%#x)",
						tc.name, b, lut, math.Float64bits(lut), eq2, math.Float64bits(eq2))
				}
			}
		})
	}
}

// TestLUTIgnoresHighGarbageBits: DecodeFloat64 masks the index the
// same way Canon would, so patterns with stray high bits decode
// identically through the table and the generic path.
func TestLUTIgnoresHighGarbageBits(t *testing.T) {
	patterns := []uint64{0, 1, 0x80, 0x7F, 0xAB, 0x8000, 0x7FFF, 0xBEEF}
	garbage := []uint64{0, 0xFFFF_0000, 0xDEAD_BEEF_0000_0000}
	for _, cfg := range []Config{Std8, Std16} {
		for _, p := range patterns {
			for _, g := range garbage {
				dirty := p | (g &^ cfg.Mask())
				a := DecodeFloat64(cfg, dirty)
				b := DecodeFloat64Generic(cfg, dirty)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("%v pattern %#x with garbage: LUT %v != generic %v", cfg, dirty, a, b)
				}
			}
		}
	}
}

// TestLUTNonStandardConfigsBypassTable: legacy-es and odd widths must
// not be served by the standard-config tables.
func TestLUTNonStandardConfigsBypassTable(t *testing.T) {
	for _, cfg := range []Config{{N: 8, ES: 0}, {N: 16, ES: 1}, {N: 8, ES: 3}, {N: 12, ES: 2}} {
		for _, b := range []uint64{1, 0x42, cfg.MaxPosBits(), cfg.NaR()} {
			got := DecodeFloat64(cfg, b)
			want := DecodeFloat64Generic(cfg, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v pattern %#x: DecodeFloat64 %v != generic %v", cfg, b, got, want)
			}
		}
	}
}
