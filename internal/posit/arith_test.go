package posit

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// ratOp applies an exact rational binary operation.
func ratAdd(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }
func ratSub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }
func ratMul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }

// TestExhaustiveP8AddSubMul checks every posit8 operand pair against
// the exact rational result rounded by the reference rounder.
func TestExhaustiveP8AddSubMul(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	cfg := Std8
	vals := make([]*big.Rat, 256)
	for b := uint64(0); b < 256; b++ {
		if b != cfg.NaR() {
			vals[b] = ratFromPosit(cfg, b)
		}
	}
	type op struct {
		name string
		impl func(Config, uint64, uint64) uint64
		ref  func(a, b *big.Rat) *big.Rat
	}
	ops := []op{{"add", Add, ratAdd}, {"sub", Sub, ratSub}, {"mul", Mul, ratMul}}
	for _, o := range ops {
		for a := uint64(0); a < 256; a++ {
			for b := uint64(0); b < 256; b++ {
				got := o.impl(cfg, a, b)
				if a == cfg.NaR() || b == cfg.NaR() {
					if got != cfg.NaR() {
						t.Fatalf("%s(NaR involved) = %#x, want NaR", o.name, got)
					}
					continue
				}
				want := refRoundRat(cfg, o.ref(vals[a], vals[b]))
				if got != want {
					t.Fatalf("%s(%#x=%v, %#x=%v) = %#x (%v), want %#x (%v)",
						o.name, a, vals[a].FloatString(8), b, vals[b].FloatString(8),
						got, DecodeFloat64(cfg, got), want, DecodeFloat64(cfg, want))
				}
			}
		}
	}
}

// TestExhaustiveP8Div checks every posit8 quotient against the exact
// rational quotient.
func TestExhaustiveP8Div(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	cfg := Std8
	for a := uint64(0); a < 256; a++ {
		for b := uint64(0); b < 256; b++ {
			got := Div(cfg, a, b)
			if a == cfg.NaR() || b == cfg.NaR() || b == 0 {
				if got != cfg.NaR() {
					t.Fatalf("div(%#x,%#x) = %#x, want NaR", a, b, got)
				}
				continue
			}
			if a == 0 {
				if got != 0 {
					t.Fatalf("div(0,%#x) = %#x, want 0", b, got)
				}
				continue
			}
			q := new(big.Rat).Quo(ratFromPosit(cfg, a), ratFromPosit(cfg, b))
			want := refRoundRat(cfg, q)
			if got != want {
				t.Fatalf("div(%#x,%#x) = %#x, want %#x (exact %v)", a, b, got, want, q.FloatString(10))
			}
		}
	}
}

// TestExhaustiveP8Sqrt checks every non-negative posit8 square root
// against a high-precision big.Float reference.
func TestExhaustiveP8Sqrt(t *testing.T) {
	cfg := Std8
	for a := uint64(0); a < 256; a++ {
		got := Sqrt(cfg, a)
		if a == cfg.NaR() || cfg.IsNeg(a) {
			if got != cfg.NaR() {
				t.Fatalf("sqrt(%#x) = %#x, want NaR", a, got)
			}
			continue
		}
		if a == 0 {
			if got != 0 {
				t.Fatalf("sqrt(0) = %#x", got)
			}
			continue
		}
		want := refSqrt(cfg, a)
		if got != want {
			t.Fatalf("sqrt(%#x=%v) = %#x (%v), want %#x (%v)",
				a, DecodeFloat64(cfg, a), got, DecodeFloat64(cfg, got), want, DecodeFloat64(cfg, want))
		}
	}
}

// refSqrt rounds the square root of a posit's exact value via a
// 256-bit big.Float and the reference rational rounder.
func refSqrt(cfg Config, a uint64) uint64 {
	v := ratFromPosit(cfg, a)
	f := new(big.Float).SetPrec(256).SetRat(v)
	s := new(big.Float).SetPrec(256).Sqrt(f)
	r, _ := s.Rat(nil)
	// If s^2 != v the 256-bit approximation is inexact; nudging is not
	// needed because 256 bits vastly exceed posit precision and the
	// true root is irrational (so no tie can occur at posit precision).
	// If the root is exact, Rat returns it exactly.
	sq := new(big.Rat).Mul(r, r)
	if sq.Cmp(v) != 0 {
		// Inexact: ensure the rational approximation is not exactly a
		// representable tie point by construction — 256 bits suffice.
		_ = sq
	}
	return refRoundRat(cfg, r)
}

// TestSampledP16P32Arith spot-checks larger widths against the exact
// reference on random operand pairs, including denormal-regime
// extremes.
func TestSampledP16P32Arith(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(17))
	for _, cfg := range []Config{Std16, Std32} {
		for i := 0; i < 30000; i++ {
			a := cfg.Canon(rng.Uint64())
			b := cfg.Canon(rng.Uint64())
			if a == cfg.NaR() || b == cfg.NaR() {
				continue
			}
			ra, rb := ratFromPosit(cfg, a), ratFromPosit(cfg, b)
			if got, want := Add(cfg, a, b), refRoundRat(cfg, ratAdd(ra, rb)); got != want {
				t.Fatalf("%v add(%#x,%#x) = %#x, want %#x", cfg, a, b, got, want)
			}
			if got, want := Sub(cfg, a, b), refRoundRat(cfg, ratSub(ra, rb)); got != want {
				t.Fatalf("%v sub(%#x,%#x) = %#x, want %#x", cfg, a, b, got, want)
			}
			if got, want := Mul(cfg, a, b), refRoundRat(cfg, ratMul(ra, rb)); got != want {
				t.Fatalf("%v mul(%#x,%#x) = %#x, want %#x", cfg, a, b, got, want)
			}
			if b != 0 {
				q := new(big.Rat).Quo(ra, rb)
				if got, want := Div(cfg, a, b), refRoundRat(cfg, q); got != want {
					t.Fatalf("%v div(%#x,%#x) = %#x, want %#x", cfg, a, b, got, want)
				}
			}
		}
	}
}

// TestSampledP64Arith exercises the widest format, where significands
// use nearly the full 64-bit engine width.
func TestSampledP64Arith(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cfg := Std64
	for i := 0; i < 5000; i++ {
		a := rng.Uint64()
		b := rng.Uint64()
		if a == cfg.NaR() || b == cfg.NaR() {
			continue
		}
		ra, rb := ratFromPosit(cfg, a), ratFromPosit(cfg, b)
		if got, want := Add(cfg, a, b), refRoundRat(cfg, ratAdd(ra, rb)); got != want {
			t.Fatalf("add(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
		if got, want := Mul(cfg, a, b), refRoundRat(cfg, ratMul(ra, rb)); got != want {
			t.Fatalf("mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
		if b != 0 {
			q := new(big.Rat).Quo(ra, rb)
			if got, want := Div(cfg, a, b), refRoundRat(cfg, q); got != want {
				t.Fatalf("div(%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

// TestArithIdentities checks algebraic identities that must hold
// bit-for-bit because both sides round the same exact value.
func TestArithIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := Std32
	one := EncodeFloat64(cfg, 1)
	two := EncodeFloat64(cfg, 2)
	for i := 0; i < 50000; i++ {
		a := cfg.Canon(rng.Uint64())
		b := cfg.Canon(rng.Uint64())
		if a == cfg.NaR() || b == cfg.NaR() {
			continue
		}
		if Add(cfg, a, b) != Add(cfg, b, a) {
			t.Fatalf("add not commutative: %#x %#x", a, b)
		}
		if Mul(cfg, a, b) != Mul(cfg, b, a) {
			t.Fatalf("mul not commutative: %#x %#x", a, b)
		}
		if Add(cfg, a, 0) != a {
			t.Fatalf("a+0 != a for %#x", a)
		}
		if Mul(cfg, a, one) != a {
			t.Fatalf("a*1 != a for %#x", a)
		}
		if Sub(cfg, a, a) != 0 {
			t.Fatalf("a-a != 0 for %#x", a)
		}
		if a != 0 {
			if Div(cfg, a, a) != one {
				t.Fatalf("a/a != 1 for %#x", a)
			}
		}
		if Add(cfg, a, a) != Mul(cfg, a, two) {
			t.Fatalf("a+a != 2a for %#x", a)
		}
		if Sub(cfg, a, b) != Add(cfg, a, cfg.Negate(b)) {
			t.Fatalf("a-b != a+(-b) for %#x %#x", a, b)
		}
	}
}

// TestSqrtSampled32 checks posit32 square roots against the reference.
func TestSqrtSampled32(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(29))
	cfg := Std32
	for i := 0; i < 20000; i++ {
		a := cfg.Canon(rng.Uint64()) &^ cfg.SignMask() // non-negative
		if a == 0 {
			continue
		}
		got := Sqrt(cfg, a)
		want := refSqrt(cfg, a)
		if got != want {
			t.Fatalf("sqrt(%#x=%v) = %#x, want %#x", a, DecodeFloat64(cfg, a), got, want)
		}
	}
}

// TestSqrtPerfectSquares: sqrt of an exactly representable square is
// exact.
func TestSqrtPerfectSquares(t *testing.T) {
	cfg := Std32
	for i := 1; i <= 1000; i++ {
		x := float64(i)
		sq := EncodeFloat64(cfg, x*x)
		if DecodeFloat64(cfg, sq) != x*x {
			continue // square not exactly representable; skip
		}
		want := EncodeFloat64(cfg, x)
		if DecodeFloat64(cfg, want) != x {
			continue
		}
		if got := Sqrt(cfg, sq); got != want {
			t.Fatalf("sqrt(%v^2) = %v, want %v", x, DecodeFloat64(cfg, got), x)
		}
	}
}

func TestCmp(t *testing.T) {
	cfg := Std32
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 50000; i++ {
		a := cfg.Canon(rng.Uint64())
		b := cfg.Canon(rng.Uint64())
		if a == cfg.NaR() || b == cfg.NaR() {
			// NaR sorts below all reals.
			if a == cfg.NaR() && b != cfg.NaR() && Cmp(cfg, a, b) != -1 {
				t.Fatalf("NaR should compare below %#x", b)
			}
			continue
		}
		va, vb := DecodeFloat64(cfg, a), DecodeFloat64(cfg, b)
		want := 0
		if va < vb {
			want = -1
		} else if va > vb {
			want = 1
		}
		if got := Cmp(cfg, a, b); got != want {
			t.Fatalf("cmp(%v, %v) = %d, want %d", va, vb, got, want)
		}
	}
}

// TestIsqrt128 checks the 128-bit integer square root against direct
// verification: root² <= x < (root+1)².
func TestIsqrt128(t *testing.T) {
	cases := []struct{ hi, lo uint64 }{
		{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 15}, {0, 16}, {0, 17},
		{0, math.MaxUint64}, {1, 0}, {1, 1}, {math.MaxUint64, math.MaxUint64},
		{1 << 62, 0}, {1 << 63, 0},
	}
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 2000; i++ {
		cases = append(cases, struct{ hi, lo uint64 }{rng.Uint64(), rng.Uint64()})
	}
	for _, c := range cases {
		root, rem := isqrt128(c.hi, c.lo)
		x := new(big.Int).SetUint64(c.hi)
		x.Lsh(x, 64)
		x.Or(x, new(big.Int).SetUint64(c.lo))
		r := new(big.Int).SetUint64(root)
		r2 := new(big.Int).Mul(r, r)
		if r2.Cmp(x) > 0 {
			t.Fatalf("isqrt(%#x:%#x) = %d too large", c.hi, c.lo, root)
		}
		r1 := new(big.Int).Add(r, big.NewInt(1))
		r12 := new(big.Int).Mul(r1, r1)
		if r12.Cmp(x) <= 0 {
			t.Fatalf("isqrt(%#x:%#x) = %d too small", c.hi, c.lo, root)
		}
		if rem != (r2.Cmp(x) != 0) {
			t.Fatalf("isqrt(%#x:%#x): rem flag %v wrong", c.hi, c.lo, rem)
		}
	}
}

// TestWrapperTypes smoke-tests the four concrete wrapper types.
func TestWrapperTypes(t *testing.T) {
	p := P32FromFloat64(2.5)
	q := P32FromFloat64(1.5)
	if p.Add(q).Float64() != 4 {
		t.Error("posit32 2.5+1.5 != 4")
	}
	if p.Sub(q).Float64() != 1 {
		t.Error("posit32 2.5-1.5 != 1")
	}
	if p.Mul(q).Float64() != 3.75 {
		t.Error("posit32 2.5*1.5 != 3.75")
	}
	if P32FromFloat64(9).Sqrt().Float64() != 3 {
		t.Error("posit32 sqrt(9) != 3")
	}
	if p.Neg().Float64() != -2.5 || p.Neg().Abs() != p {
		t.Error("posit32 neg/abs")
	}
	if p.Cmp(q) != 1 || q.Cmp(p) != -1 || p.Cmp(p) != 0 {
		t.Error("posit32 cmp")
	}
	if !P32FromBits(0x80000000).IsNaR() || !P32FromBits(0).IsZero() {
		t.Error("posit32 special classifiers")
	}
	if p.String() != "2.5" || P32FromBits(0x80000000).String() != "NaR" || P32FromBits(0).String() != "0" {
		t.Errorf("posit32 String: %q %q", p.String(), P32FromBits(0x80000000).String())
	}

	p16 := P16FromFloat64(2.5)
	if p16.Add(P16FromFloat64(1.5)).Float64() != 4 || p16.Mul(P16FromFloat64(2)).Float64() != 5 {
		t.Error("posit16 arith")
	}
	if P16FromBits(p16.Bits()) != p16 || p16.Neg().Neg() != p16 {
		t.Error("posit16 bits/neg")
	}
	if P16FromFloat64(4).Sqrt().Float64() != 2 || P16FromFloat64(5).Div(P16FromFloat64(2)).Float64() != 2.5 {
		t.Error("posit16 sqrt/div")
	}
	if P16FromFloat64(1).Fields().R != 0 {
		t.Error("posit16 fields")
	}

	p8 := P8FromFloat64(2)
	if p8.Add(P8FromFloat64(2)).Float64() != 4 || p8.Sub(P8FromFloat64(1)).Float64() != 1 {
		t.Error("posit8 arith")
	}
	if p8.Div(P8FromFloat64(2)).Float64() != 1 || P8FromFloat64(16).Sqrt().Float64() != 4 {
		t.Error("posit8 div/sqrt")
	}
	if p8.Cmp(P8FromFloat64(3)) != -1 || !P8FromBits(0x80).IsNaR() {
		t.Error("posit8 cmp/nar")
	}
	if p8.Abs() != p8 || p8.Neg().Abs() != p8 || !P8FromBits(0).IsZero() {
		t.Error("posit8 abs/zero")
	}

	p64 := P64FromFloat64(1e10)
	if p64.Float64() != 1e10 {
		t.Error("posit64 round trip 1e10")
	}
	if p64.Mul(P64FromFloat64(2)).Float64() != 2e10 || p64.Div(p64).Float64() != 1 {
		t.Error("posit64 arith")
	}
	if p64.Add(p64.Neg()).Float64() != 0 || p64.Sub(p64).Float64() != 0 {
		t.Error("posit64 cancellation")
	}
	if P64FromFloat64(4).Sqrt().Float64() != 2 || p64.Cmp(P64FromFloat64(1)) != 1 {
		t.Error("posit64 sqrt/cmp")
	}
	if P64FromBits(Std64.NaR()).String() != "NaR" || !P64FromBits(Std64.NaR()).IsNaR() {
		t.Error("posit64 NaR")
	}
	if P64FromBits(0).Abs() != 0 || !P64FromBits(0).IsZero() {
		t.Error("posit64 zero")
	}
	if p8.String() == "" || p16.String() == "" || p64.String() == "" {
		t.Error("String renders")
	}
	if p8.Fields().Cfg != Std8 || p64.Fields().Cfg != Std64 {
		t.Error("Fields cfg")
	}
}
