package posit

import (
	"fmt"
	mbits "math/bits"
	"strings"
)

// FieldKind identifies which posit field a bit position belongs to.
type FieldKind int

const (
	// FieldSign is the single most significant bit.
	FieldSign FieldKind = iota
	// FieldRegime covers the run of identical bits after the sign plus
	// the terminating opposite bit (if present).
	FieldRegime
	// FieldExponent covers the up-to-ES exponent bits after the regime.
	FieldExponent
	// FieldFraction covers the remaining low bits.
	FieldFraction
)

func (k FieldKind) String() string {
	switch k {
	case FieldSign:
		return "sign"
	case FieldRegime:
		return "regime"
	case FieldExponent:
		return "exponent"
	case FieldFraction:
		return "fraction"
	}
	return fmt.Sprintf("FieldKind(%d)", int(k))
}

// Fields is the decomposition of a raw posit bit pattern into its
// variable-width fields, read directly from the two's-complement
// pattern as in eq. (2) of the paper (and §3 of the 2022 standard).
//
// For the special patterns zero and NaR the field values are zero and
// the IsZero / IsNaR flags are set.
type Fields struct {
	Cfg Config // the posit configuration the pattern was decoded under

	IsZero bool // pattern is the all-zeros special value
	IsNaR  bool // pattern is NaR (MSB set, rest zero)

	// Sign is the raw sign bit (1 for patterns with the MSB set).
	Sign uint

	// K is the regime run length: the number of identical bits
	// R_0..R_{K-1} before the terminating opposite bit R_K (paper
	// eq. 1). If the run extends to the end of the posit there is no
	// terminating bit and RegimeLen == K, otherwise RegimeLen == K+1.
	K         int
	RegimeLen int // physical regime length including any terminating bit
	// R is the regime value: -K when R_0 == 0, K-1 when R_0 == 1.
	R int

	// ExpLen is the number of exponent bits physically present
	// (0..ES); Exp is their value aligned as the most significant bits
	// of the ES-bit exponent (truncated low bits read as zero), as the
	// standard prescribes.
	ExpLen int
	Exp    uint64 // exponent value, MSB-aligned per ExpLen above

	// FracLen is the number of fraction bits present; Frac is their
	// value as an unsigned integer (paper eq. 3 defines f = Frac /
	// 2^FracLen).
	FracLen int
	Frac    uint64 // fraction bits as an unsigned integer (see FracLen)
}

// DecodeFields decomposes a raw posit bit pattern. It never fails:
// every N-bit pattern is a valid posit (zero, NaR, or a real value).
func DecodeFields(cfg Config, bits uint64) Fields {
	bits = cfg.Canon(bits)
	f := Fields{Cfg: cfg}
	if bits == 0 {
		f.IsZero = true
		return f
	}
	if bits == cfg.NaR() {
		f.IsNaR = true
		f.Sign = 1
		return f
	}
	if cfg.IsNeg(bits) {
		f.Sign = 1
	}

	n := cfg.N
	// Payload: the n-1 bits after the sign, left-aligned at bit n-2.
	payload := bits & (cfg.Mask() >> 1)
	pos := n - 2 // next bit position to read

	// Regime: the run length of bits equal to the first payload bit,
	// found in O(1) by counting leading zeros of the (possibly
	// inverted) payload shifted to the top of the word.
	first := (payload >> uint(pos)) & 1
	top := payload << uint(64-(n-1))
	if first == 1 {
		top = ^top
	}
	k := mbits.LeadingZeros64(top)
	if k > n-1 {
		k = n - 1 // run extends to the end of the posit
	}
	pos -= k
	f.K = k
	if first == 1 {
		f.R = k - 1
	} else {
		f.R = -k
	}
	f.RegimeLen = k
	if pos >= 0 {
		// Terminating bit R_K is present; consume it.
		f.RegimeLen++
		pos--
	}

	// Exponent: up to ES bits, MSB-aligned when truncated.
	for i := 0; i < cfg.ES && pos >= 0; i++ {
		f.Exp = f.Exp<<1 | (payload>>uint(pos))&1
		f.ExpLen++
		pos--
	}
	f.Exp <<= uint(cfg.ES - f.ExpLen) // truncated low bits read as 0

	// Fraction: everything that remains.
	if pos >= 0 {
		f.FracLen = pos + 1
		f.Frac = payload & ((uint64(1) << uint(pos+1)) - 1)
	}
	return f
}

// FieldAt reports which field the bit at position pos (0 = LSB,
// N-1 = sign) belongs to in the raw pattern bits. For the zero and NaR
// patterns, position N-1 is the sign and every other position is
// classified as regime (the run of identical bits covers the payload).
func FieldAt(cfg Config, bits uint64, pos int) FieldKind {
	if pos < 0 || pos >= cfg.N {
		panic(fmt.Sprintf("posit: FieldAt position %d out of range for %v", pos, cfg))
	}
	if pos == cfg.N-1 {
		return FieldSign
	}
	f := DecodeFields(cfg, bits)
	if f.IsZero || f.IsNaR {
		return FieldRegime
	}
	// Positions, from the top: sign at N-1, regime occupies the next
	// RegimeLen bits, then ExpLen exponent bits, then fraction.
	regimeLow := cfg.N - 1 - f.RegimeLen
	expLow := regimeLow - f.ExpLen
	switch {
	case pos >= regimeLow:
		return FieldRegime
	case pos >= expLow:
		return FieldExponent
	default:
		return FieldFraction
	}
}

// FracValue returns f = Frac / 2^FracLen in [0, 1), paper eq. 3.
func (f Fields) FracValue() float64 {
	if f.FracLen == 0 {
		return 0
	}
	return float64(f.Frac) / float64(uint64(1)<<uint(f.FracLen))
}

// BitString renders the pattern with '|' separators between the sign,
// regime, exponent and fraction fields, e.g. "0|10|00|0100…" — the
// format used by the paper's worked examples (Figs. 5, 6, 12, 15).
func BitString(cfg Config, bits uint64) string {
	bits = cfg.Canon(bits)
	f := DecodeFields(cfg, bits)
	var b strings.Builder
	write := func(lo, hi int) { // bits [hi..lo], MSB first
		for p := hi; p >= lo; p-- {
			if bits&(1<<uint(p)) != 0 {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	n := cfg.N
	write(n-1, n-1)
	if f.IsZero || f.IsNaR {
		b.WriteByte('|')
		write(0, n-2)
		return b.String()
	}
	regimeLow := n - 1 - f.RegimeLen
	expLow := regimeLow - f.ExpLen
	b.WriteByte('|')
	write(regimeLow, n-2)
	if f.ExpLen > 0 {
		b.WriteByte('|')
		write(expLow, regimeLow-1)
	}
	if f.FracLen > 0 {
		b.WriteByte('|')
		write(0, expLow-1)
	}
	return b.String()
}

// RegimeRunLength implements paper eq. 1 directly from a magnitude:
// the regime run length k of the posit nearest to p, computed from the
// value rather than the bit pattern. For p > 1, k = floor(log_useed p)+1;
// for 0 < p < 1, k = ceil(-log_useed p) = floor(...)… the paper's
// four-case table reduces to the two branches below. p must be a
// positive finite float; the result is clamped to [1, N-1].
func RegimeRunLength(cfg Config, p float64) int {
	if p <= 0 {
		panic("posit: RegimeRunLength requires p > 0")
	}
	bits := EncodeFloat64(cfg, p)
	f := DecodeFields(cfg, bits)
	return f.K
}
