package posit

import "math/bits"

// unpacked is the exact internal form used by the arithmetic engine:
// value = ±sig × 2^(h-62), with sig normalized so bit 62 is set
// (sig ∈ [2^62, 2^63)). Every posit fraction (at most 59 bits) fits
// exactly, so unpack/pack lose nothing except the final rounding.
type unpacked struct {
	nar  bool
	zero bool
	neg  bool
	h    int
	sig  uint64
}

// unpack decomposes a posit bit pattern into unpacked form.
func unpack(cfg Config, bitsIn uint64) unpacked {
	b := cfg.Canon(bitsIn)
	if b == 0 {
		return unpacked{zero: true}
	}
	if b == cfg.NaR() {
		return unpacked{nar: true}
	}
	var u unpacked
	if cfg.IsNeg(b) {
		u.neg = true
		b = cfg.Negate(b)
	}
	f := DecodeFields(cfg, b)
	u.h = (f.R << uint(cfg.ES)) + int(f.Exp)
	u.sig = ((uint64(1) << uint(f.FracLen)) + f.Frac) << uint(62-f.FracLen)
	return u
}

// pack rounds an unpacked value (plus an extension word of lower
// significand bits and a sticky flag) back to a posit bit pattern.
// ext holds the 64 significand bits immediately below sig's LSB,
// left-aligned; sticky is true when nonzero bits exist below ext.
func pack(cfg Config, u unpacked, ext uint64, sticky bool) uint64 {
	if u.nar {
		return cfg.NaR()
	}
	if u.zero {
		return 0
	}
	// assemble wants the fraction below the implicit 1 left-aligned in
	// 64 bits: sig bits 61..0 followed by the top 2 bits of ext.
	tail := (u.sig&maskN(62))<<2 | ext>>62
	s := sticky || ext&maskN(62) != 0
	p := assemble(cfg, u.h, tail, s)
	if u.neg {
		p = cfg.Negate(p)
	}
	return p
}

// Add returns the correctly rounded sum of two posit bit patterns.
// NaR is absorbing: NaR + x = NaR.
func Add(cfg Config, a, b uint64) uint64 {
	ua, ub := unpack(cfg, a), unpack(cfg, b)
	if ua.nar || ub.nar {
		return cfg.NaR()
	}
	if ua.zero {
		return cfg.Canon(b)
	}
	if ub.zero {
		return cfg.Canon(a)
	}
	if ua.neg == ub.neg {
		r, ext, st := addMag(ua, ub)
		return pack(cfg, r, ext, st)
	}
	r, ext, st := subMag(ua, ub)
	return pack(cfg, r, ext, st)
}

// Sub returns the correctly rounded difference a - b.
func Sub(cfg Config, a, b uint64) uint64 {
	return Add(cfg, a, cfg.Negate(b))
}

// addMag adds two magnitudes with the same sign.
func addMag(a, b unpacked) (unpacked, uint64, bool) {
	if a.h < b.h || (a.h == b.h && a.sig < b.sig) {
		a, b = b, a
	}
	shift := a.h - b.h
	var bs, ext uint64
	sticky := false
	switch {
	case shift == 0:
		bs = b.sig
	case shift < 64:
		bs = b.sig >> uint(shift)
		ext = b.sig << uint(64-shift)
	case shift < 128:
		ext = b.sig >> uint(shift-64)
		sticky = b.sig<<uint(128-shift) != 0
	default:
		sticky = b.sig != 0
	}
	sum := a.sig + bs // both < 2^63, no uint64 overflow
	out := unpacked{neg: a.neg, h: a.h, sig: sum}
	if sum >= 1<<63 {
		// Carry: shift right one. The dropped significand bit becomes
		// the new ext MSB; ext's old LSB joins sticky.
		sticky = sticky || ext&1 != 0
		ext = sum<<63 | ext>>1
		out.sig = sum >> 1
		out.h++
	}
	return out, ext, sticky
}

// subMag subtracts the smaller magnitude from the larger; the result
// carries the sign of the larger. Exact cancellation yields zero.
func subMag(a, b unpacked) (unpacked, uint64, bool) {
	if a.h < b.h || (a.h == b.h && a.sig < b.sig) {
		a, b = b, a
	}
	if a.h == b.h && a.sig == b.sig {
		return unpacked{zero: true}, 0, false
	}
	shift := a.h - b.h
	// 128-bit aligned small magnitude (bhi:blo) plus sticky for bits
	// shifted beyond the extension word.
	var bhi, blo uint64
	sticky := false
	switch {
	case shift == 0:
		bhi = b.sig
	case shift < 64:
		bhi = b.sig >> uint(shift)
		blo = b.sig << uint(64-shift)
	case shift < 128:
		blo = b.sig >> uint(shift-64)
		sticky = b.sig<<uint(128-shift) != 0
	default:
		sticky = b.sig != 0
	}
	hi, lo := a.sig, uint64(0)
	var borrow uint64
	lo, borrow = bits.Sub64(lo, blo, 0)
	hi, _ = bits.Sub64(hi, bhi, borrow)
	if sticky {
		// True result is (hi:lo) - δ with 0 < δ < 1 ulp of lo: drop to
		// (hi:lo)-1 and keep sticky set.
		lo, borrow = bits.Sub64(lo, 1, 0)
		hi, _ = bits.Sub64(hi, 0, borrow)
	}
	// Normalize so the leading 1 sits at bit 62 of hi.
	out := unpacked{neg: a.neg, h: a.h}
	if hi == 0 {
		out.h -= 64
		hi, lo = lo, 0
		if hi == 0 {
			// Only sticky remained; result underflowed the 128-bit
			// window. It is tiny but nonzero; represent as the minimum
			// normalized magnitude at a very low scale.
			if sticky {
				out.h -= 64
				out.sig = 1 << 62
				return out, 0, true
			}
			return unpacked{zero: true}, 0, false
		}
	}
	lz := bits.LeadingZeros64(hi)
	adj := lz - 1 // want leading 1 at bit 62
	switch {
	case adj > 0:
		hi = hi<<uint(adj) | lo>>uint(64-adj)
		lo <<= uint(adj)
	case adj < 0: // leading 1 at bit 63: shift right one
		lo = hi<<63 | lo>>1
		hi >>= 1
	}
	out.h -= adj
	out.sig = hi
	return out, lo, sticky
}

// Mul returns the correctly rounded product of two posit bit patterns.
func Mul(cfg Config, a, b uint64) uint64 {
	ua, ub := unpack(cfg, a), unpack(cfg, b)
	if ua.nar || ub.nar {
		return cfg.NaR()
	}
	if ua.zero || ub.zero {
		return 0
	}
	hi, lo := bits.Mul64(ua.sig, ub.sig) // product in [2^124, 2^126)
	out := unpacked{neg: ua.neg != ub.neg, h: ua.h + ub.h}
	t := 2
	if hi>>61 != 0 { // top bit at 125
		t = 1
		out.h++
	}
	hi = hi<<uint(t) | lo>>uint(64-t)
	lo <<= uint(t)
	out.sig = hi
	return pack(cfg, out, lo, false)
}

// Div returns the correctly rounded quotient a / b. Division by zero
// and any operation on NaR yield NaR.
func Div(cfg Config, a, b uint64) uint64 {
	ua, ub := unpack(cfg, a), unpack(cfg, b)
	if ua.nar || ub.nar || ub.zero {
		return cfg.NaR()
	}
	if ua.zero {
		return 0
	}
	// sigA << 63 = Q × sigB + R, with Q in (2^62, 2^64).
	q, r := bits.Div64(ua.sig>>1, ua.sig<<63, ub.sig)
	out := unpacked{neg: ua.neg != ub.neg}
	var ext uint64
	if q >= 1<<63 {
		out.h = ua.h - ub.h
		out.sig = q >> 1
		ext = q << 63
	} else {
		out.h = ua.h - ub.h - 1
		out.sig = q
	}
	return pack(cfg, out, ext, r != 0)
}

// Sqrt returns the correctly rounded square root. Negative inputs and
// NaR yield NaR; zero yields zero.
func Sqrt(cfg Config, a uint64) uint64 {
	ua := unpack(cfg, a)
	if ua.nar || ua.neg {
		return cfg.NaR()
	}
	if ua.zero {
		return 0
	}
	m := ua.sig
	e := ua.h - 62
	if e&1 != 0 { // make the exponent even
		// m currently has its top bit at 62; doubling moves it to 63.
		m <<= 1
		e--
	}
	// S = floor(sqrt(m << 64)), S in [2^63, 2^64); value = S × 2^(e/2 - 32).
	s, rem := isqrt128(m, 0)
	out := unpacked{h: e/2 + 31, sig: s >> 1}
	ext := s << 63
	return pack(cfg, out, ext, rem)
}

// isqrt128 computes the integer square root of the 128-bit value hi:lo
// by binary digit recurrence, returning floor(sqrt) and whether a
// nonzero remainder exists.
func isqrt128(hi, lo uint64) (root uint64, remNonzero bool) {
	var rhi, rlo uint64 // remainder accumulator
	var q uint64        // root bits so far
	for i := 63; i >= 0; i-- {
		// Shift two bits from hi:lo into the remainder.
		rhi = rhi<<2 | rlo>>62
		rlo = rlo << 2
		if i >= 32 {
			rlo |= hi >> uint(2*(i-32)) & 3
		} else {
			rlo |= lo >> uint(2*i) & 3
		}
		// Trial subtrahend: (q << 2) | 1, at most 66 bits.
		thi := q >> 62
		tlo := q<<2 | 1
		// If remainder >= trial, subtract and set the root bit.
		if rhi > thi || (rhi == thi && rlo >= tlo) {
			var borrow uint64
			rlo, borrow = bits.Sub64(rlo, tlo, 0)
			rhi, _ = bits.Sub64(rhi, thi, borrow)
			q = q<<1 | 1
		} else {
			q <<= 1
		}
	}
	return q, rhi != 0 || rlo != 0
}

// Cmp compares two posit bit patterns, returning -1, 0 or +1. Posits
// order exactly as their bit patterns interpreted as signed N-bit
// integers (the monotonicity property of the encoding); NaR sorts
// below every real value.
func Cmp(cfg Config, a, b uint64) int {
	sa := signExtend(cfg, a)
	sb := signExtend(cfg, b)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	}
	return 0
}

func signExtend(cfg Config, v uint64) int64 {
	v = cfg.Canon(v)
	shift := uint(64 - cfg.N)
	return int64(v<<shift) >> shift
}
