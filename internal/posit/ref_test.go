package posit

// Reference implementations used only by tests: an exact rational
// rounder that implements the standard's rounding rule (saturate, then
// round-to-nearest-even on the bit stream) straight from a big.Rat,
// independently of the integer tricks in arith.go.

import (
	"math/big"
)

var (
	ratOne = big.NewRat(1, 1)
	ratTwo = big.NewRat(2, 1)
)

// pow2Rat returns 2^e as a big.Rat for any integer e.
func pow2Rat(e int) *big.Rat {
	r := new(big.Rat)
	if e >= 0 {
		r.SetInt(new(big.Int).Lsh(big.NewInt(1), uint(e)))
	} else {
		r.SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), uint(-e)))
	}
	return r
}

// refRoundRat rounds the exact rational v to a posit using the
// standard rule, producing the bit pattern. It mirrors the definition
// in the 2022 standard: write |v| = 2^h × (1 + f), f ∈ [0,1); emit the
// regime/exponent/fraction bit stream; truncate to N-1 payload bits;
// round to nearest, ties to even, using guard and sticky; saturate so
// nonzero values never become 0 or NaR.
func refRoundRat(cfg Config, v *big.Rat) uint64 {
	sign := v.Sign()
	if sign == 0 {
		return 0
	}
	av := new(big.Rat).Abs(v)

	// h = floor(log2 av): estimate from numerator/denominator bit
	// lengths, then correct by comparison.
	h := av.Num().BitLen() - av.Denom().BitLen()
	for av.Cmp(pow2Rat(h)) < 0 {
		h--
	}
	for av.Cmp(pow2Rat(h+1)) >= 0 {
		h++
	}

	// t = av / 2^h - 1 ∈ [0, 1); extract 64 tail bits by doubling.
	t := new(big.Rat).Quo(av, pow2Rat(h))
	t.Sub(t, ratOne)
	var tail uint64
	for i := 0; i < 64; i++ {
		t.Mul(t, ratTwo)
		tail <<= 1
		if t.Cmp(ratOne) >= 0 {
			tail |= 1
			t.Sub(t, ratOne)
		}
	}
	sticky := t.Sign() != 0

	p := assemble(cfg, h, tail, sticky)
	if sign < 0 {
		p = cfg.Negate(p)
	}
	return p
}

// ratFromPosit returns the exact rational value of a posit pattern.
func ratFromPosit(cfg Config, bits uint64) *big.Rat {
	b := cfg.Canon(bits)
	if b == 0 {
		return new(big.Rat)
	}
	if b == cfg.NaR() {
		panic("ratFromPosit: NaR has no rational value")
	}
	neg := cfg.IsNeg(b)
	if neg {
		b = cfg.Negate(b)
	}
	f := DecodeFields(cfg, b)
	h := (f.R << uint(cfg.ES)) + int(f.Exp)
	sig := new(big.Int).SetUint64((uint64(1) << uint(f.FracLen)) + f.Frac)
	v := new(big.Rat).SetInt(sig)
	v.Mul(v, pow2Rat(h-f.FracLen))
	if neg {
		v.Neg(v)
	}
	return v
}
