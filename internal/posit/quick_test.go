package posit

// Property-based invariants via testing/quick, complementing the
// exhaustive and reference-based tests: these state algebraic laws the
// posit system must satisfy for arbitrary inputs.

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func qcfg(n int) *quick.Config { return &quick.Config{MaxCount: n} }

// canon32 maps arbitrary fuzz input to a non-NaR posit32 pattern.
func canon32(raw uint32) uint64 {
	b := uint64(raw)
	if b == Std32.NaR() {
		b = 0
	}
	return b
}

func TestQuickNegationInvolution(t *testing.T) {
	f := func(raw uint32) bool {
		b := uint64(raw)
		return Std32.Negate(Std32.Negate(b)) == b
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := canon32(a), canon32(b)
		return Add(Std32, x, y) == Add(Std32, y, x)
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

func TestQuickMulCommutes(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := canon32(a), canon32(b)
		return Mul(Std32, x, y) == Mul(Std32, y, x)
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

// TestQuickNegationDistributes: -(a+b) == (-a)+(-b) bit-exactly
// (rounding is symmetric around zero).
func TestQuickNegationDistributes(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := canon32(a), canon32(b)
		lhs := Std32.Negate(Add(Std32, x, y))
		rhs := Add(Std32, Std32.Negate(x), Std32.Negate(y))
		return lhs == rhs
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

// TestQuickMulSignRule: sign(a×b) = sign(a)·sign(b) whenever neither
// operand is zero/NaR (no underflow to zero in posits).
func TestQuickMulSignRule(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := canon32(a), canon32(b)
		if x == 0 || y == 0 {
			return true
		}
		p := Mul(Std32, x, y)
		if p == 0 || p == Std32.NaR() {
			return false // products of nonzero reals are nonzero reals
		}
		wantNeg := Std32.IsNeg(x) != Std32.IsNeg(y)
		return Std32.IsNeg(p) == wantNeg
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

// TestQuickAddMonotone: a <= b implies a+c <= b+c (posit rounding is
// monotone).
func TestQuickAddMonotone(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := canon32(a), canon32(b), canon32(c)
		if Cmp(Std32, x, y) > 0 {
			x, y = y, x
		}
		return Cmp(Std32, Add(Std32, x, z), Add(Std32, y, z)) <= 0
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodeMonotone: x <= y implies encode(x) <= encode(y) in
// posit order.
func TestQuickEncodeMonotone(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return Cmp(Std32, EncodeFloat64(Std32, x), EncodeFloat64(Std32, y)) <= 0
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

// TestQuickAbsNonNegative: |p| >= 0 and Abs is idempotent.
func TestQuickAbsNonNegative(t *testing.T) {
	f := func(raw uint32) bool {
		p := P32FromBits(raw)
		if p.IsNaR() {
			return true
		}
		a := p.Abs()
		return !Std32.IsNeg(uint64(a)) && a.Abs() == a
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

// TestQuickDivMulInverse: (a/b)×b returns to a within the relative
// precision of the coarsest intermediate — under tapered precision the
// bound is set by the quotient's and product's fraction lengths, not
// by a fixed ulp count.
func TestQuickDivMulInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := canon32(a), canon32(b)
		if x == 0 || y == 0 {
			return true
		}
		// Skip when the quotient saturates (information destroyed).
		q := Div(Std32, x, y)
		if q == Std32.MaxPosBits() || q == Std32.Negate(Std32.MaxPosBits()) ||
			q == Std32.MinPosBits() || q == Std32.Negate(Std32.MinPosBits()) {
			return true
		}
		back := Mul(Std32, q, y)
		vx := DecodeFloat64(Std32, x)
		vb := DecodeFloat64(Std32, back)
		if vx == 0 || math.IsNaN(vb) {
			return false
		}
		mq := DecodeFields(Std32, Std32.Canon(absBits(q))).FracLen
		mb := DecodeFields(Std32, Std32.Canon(absBits(back))).FracLen
		m := mq
		if mb < m {
			m = mb
		}
		bound := math.Ldexp(1, 1-m) // one rounding at each precision
		return math.Abs(vb-vx)/math.Abs(vx) <= bound
	}
	if err := quick.Check(f, qcfg(5000)); err != nil {
		t.Error(err)
	}
}

func absBits(b uint64) uint64 {
	if Std32.IsNeg(b) {
		return Std32.Negate(b)
	}
	return b
}

// TestQuickQuireMatchesRationalSum: quire accumulation of a handful of
// posits equals the exact rational sum rounded once.
func TestQuickQuireMatchesRationalSum(t *testing.T) {
	f := func(raws [5]uint32) bool {
		q := NewQuire(Std32)
		exact := new(big.Rat)
		for _, r := range raws {
			b := canon32(r)
			q.AddPosit(b)
			exact.Add(exact, ratFromPosit(Std32, b))
		}
		return q.ToPosit() == refRoundRat(Std32, exact)
	}
	if err := quick.Check(f, qcfg(2000)); err != nil {
		t.Error(err)
	}
}

// TestQuickConvertWidenExact: widening to posit64 is lossless.
func TestQuickConvertWidenExact(t *testing.T) {
	f := func(raw uint32) bool {
		b := canon32(raw)
		w := Convert(Std32, Std64, b)
		return Convert(Std64, Std32, w) == b
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}

// TestQuickFormatParseRoundTrip: shortest decimal formatting
// round-trips arbitrary patterns.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		b := uint64(raw)
		s := Format(Std32, b, 'g', -1)
		back, err := Parse(Std32, s)
		return err == nil && back == b
	}
	if err := quick.Check(f, qcfg(1500)); err != nil {
		t.Error(err)
	}
}

// TestQuickFieldsReassemble: decomposing a pattern into fields and
// re-assembling the payload bit spans reproduces the pattern.
func TestQuickFieldsReassemble(t *testing.T) {
	f := func(raw uint32) bool {
		b := uint64(raw)
		if b == 0 || b == Std32.NaR() {
			return true
		}
		fl := DecodeFields(Std32, b)
		// Rebuild: sign, run, terminator, exponent (only the ExpLen
		// physically-present MSBs), fraction.
		var re uint64
		if fl.Sign == 1 {
			re |= Std32.SignMask()
		}
		pos := Std32.N - 2
		runBit := uint64(0)
		if fl.R >= 0 {
			runBit = 1
		}
		for i := 0; i < fl.K; i++ {
			re |= runBit << uint(pos)
			pos--
		}
		if fl.RegimeLen > fl.K {
			re |= (1 - runBit) << uint(pos)
			pos--
		}
		exp := fl.Exp >> uint(Std32.ES-fl.ExpLen)
		for i := fl.ExpLen - 1; i >= 0; i-- {
			re |= (exp >> uint(i) & 1) << uint(pos)
			pos--
		}
		re |= fl.Frac
		return re == b
	}
	if err := quick.Check(f, qcfg(10000)); err != nil {
		t.Error(err)
	}
}
