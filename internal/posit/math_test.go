package posit

import (
	"math"
	"math/rand"
	"testing"
)

// TestMathFunctionsFaithful: each function's posit result is within
// one ulp of the correctly rounded value (faithful rounding), checked
// by requiring the result to be one of the two posits bracketing the
// float64 reference.
func TestMathFunctionsFaithful(t *testing.T) {
	cfg := Std32
	rng := rand.New(rand.NewSource(83))
	funcs := []struct {
		name  string
		posit func(Config, uint64) uint64
		ref   func(float64) float64
		dom   func(float64) bool
	}{
		{"exp", Exp, math.Exp, func(x float64) bool { return x < 80 && x > -80 }},
		{"log", Log, math.Log, func(x float64) bool { return x > 0 }},
		{"log2", Log2, math.Log2, func(x float64) bool { return x > 0 }},
		{"log10", Log10, math.Log10, func(x float64) bool { return x > 0 }},
		{"sin", Sin, math.Sin, func(x float64) bool { return math.Abs(x) < 100 }},
		{"cos", Cos, math.Cos, func(x float64) bool { return math.Abs(x) < 100 }},
		{"tan", Tan, math.Tan, func(x float64) bool { return math.Abs(x) < 100 }},
		{"atan", Atan, math.Atan, func(x float64) bool { return true }},
		{"tanh", Tanh, math.Tanh, func(x float64) bool { return true }},
	}
	for _, f := range funcs {
		for i := 0; i < 5000; i++ {
			x := math.Ldexp(rng.Float64()*2-1, rng.Intn(20)-10)
			if !f.dom(x) {
				continue
			}
			px := EncodeFloat64(cfg, x)
			got := f.posit(cfg, px)
			// Reference from the posit-rounded input (the function sees
			// the representable value).
			want := f.ref(DecodeFloat64(cfg, px))
			lo := EncodeFloat64(cfg, want)
			if got != lo && got != NextUp(cfg, lo) && got != NextDown(cfg, lo) {
				t.Fatalf("%s(%g): got %v, reference %v", f.name,
					DecodeFloat64(cfg, px), DecodeFloat64(cfg, got), want)
			}
		}
	}
}

func TestMathDomainErrors(t *testing.T) {
	cfg := Std32
	neg := EncodeFloat64(cfg, -2)
	if Log(cfg, neg) != cfg.NaR() || Log2(cfg, neg) != cfg.NaR() || Log10(cfg, neg) != cfg.NaR() {
		t.Error("log of negative should be NaR")
	}
	if Log(cfg, 0) != cfg.NaR() {
		t.Error("log(0) should be NaR (no -Inf in posits)")
	}
	if Exp(cfg, cfg.NaR()) != cfg.NaR() || Sin(cfg, cfg.NaR()) != cfg.NaR() {
		t.Error("NaR propagation")
	}
	half := EncodeFloat64(cfg, 0.5)
	if Pow(cfg, neg, half) != cfg.NaR() {
		t.Error("(-2)^0.5 should be NaR")
	}
	if Pow(cfg, cfg.NaR(), half) != cfg.NaR() {
		t.Error("NaR^y should be NaR")
	}
}

func TestMathIdentities(t *testing.T) {
	cfg := Std32
	one := EncodeFloat64(cfg, 1)
	if Log(cfg, one) != 0 {
		t.Error("ln(1) != 0")
	}
	if Exp(cfg, 0) != one {
		t.Error("e^0 != 1")
	}
	if Sin(cfg, 0) != 0 || Cos(cfg, 0) != one || Tan(cfg, 0) != 0 || Atan(cfg, 0) != 0 {
		t.Error("trig at 0")
	}
	if Tanh(cfg, 0) != 0 {
		t.Error("tanh(0)")
	}
	two := EncodeFloat64(cfg, 2)
	if Log2(cfg, two) != one {
		t.Error("log2(2) != 1")
	}
	if Log10(cfg, EncodeFloat64(cfg, 1000)) != EncodeFloat64(cfg, 3) {
		t.Error("log10(1000) != 3")
	}
	if Pow(cfg, two, EncodeFloat64(cfg, 10)) != EncodeFloat64(cfg, 1024) {
		t.Error("2^10 != 1024")
	}
	// Exp saturates instead of overflowing.
	if Exp(cfg, EncodeFloat64(cfg, 1000)) != cfg.MaxPosBits() {
		t.Error("exp(1000) should saturate at maxpos")
	}
	if Exp(cfg, EncodeFloat64(cfg, -1000)) != cfg.MinPosBits() {
		t.Error("exp(-1000) should saturate at minpos")
	}
}

func TestMathWrapperMethods(t *testing.T) {
	p := P32FromFloat64(1)
	if p.Exp().Float64() != Float64ToNearest(Std32, math.E) {
		t.Error("p32 Exp")
	}
	if p.Log() != 0 || p.Sin().Float64() == 0 || p.Cos().Float64() == 0 {
		t.Error("p32 log/trig")
	}
	if p.Tanh().Float64() != Float64ToNearest(Std32, math.Tanh(1)) {
		t.Error("p32 Tanh")
	}
	if P32FromFloat64(2).Pow(P32FromFloat64(3)).Float64() != 8 {
		t.Error("p32 Pow")
	}
	if P16FromFloat64(1).Exp().Float64() != Float64ToNearest(Std16, math.E) {
		t.Error("p16 Exp")
	}
	if P16FromFloat64(1).Log() != 0 || P16FromFloat64(0).Tanh() != 0 {
		t.Error("p16 log/tanh")
	}
}
