package posit

// Convenience methods wiring the conversion and fused operations onto
// the concrete types.

// FMA returns the correctly rounded fused p×q + r.
func (p Posit32) FMA(q, r Posit32) Posit32 {
	return Posit32(FMA(Std32, uint64(p), uint64(q), uint64(r)))
}

// FMA returns the correctly rounded fused p×q + r.
func (p Posit16) FMA(q, r Posit16) Posit16 {
	return Posit16(FMA(Std16, uint64(p), uint64(q), uint64(r)))
}

// FMA returns the correctly rounded fused p×q + r.
func (p Posit8) FMA(q, r Posit8) Posit8 {
	return Posit8(FMA(Std8, uint64(p), uint64(q), uint64(r)))
}

// FMA returns the correctly rounded fused p×q + r.
func (p Posit64) FMA(q, r Posit64) Posit64 {
	return Posit64(FMA(Std64, uint64(p), uint64(q), uint64(r)))
}

// NextUp returns the next posit above p (saturating at maxpos).
func (p Posit32) NextUp() Posit32 { return Posit32(NextUp(Std32, uint64(p))) }

// NextDown returns the next posit below p (saturating at -maxpos).
func (p Posit32) NextDown() Posit32 { return Posit32(NextDown(Std32, uint64(p))) }

// NextUp returns the next posit above p (saturating at maxpos).
func (p Posit16) NextUp() Posit16 { return Posit16(NextUp(Std16, uint64(p))) }

// NextDown returns the next posit below p (saturating at -maxpos).
func (p Posit16) NextDown() Posit16 { return Posit16(NextDown(Std16, uint64(p))) }

// NextUp returns the next posit above p (saturating at maxpos).
func (p Posit8) NextUp() Posit8 { return Posit8(NextUp(Std8, uint64(p))) }

// NextDown returns the next posit below p (saturating at -maxpos).
func (p Posit8) NextDown() Posit8 { return Posit8(NextDown(Std8, uint64(p))) }

// NextUp returns the next posit above p (saturating at maxpos).
func (p Posit64) NextUp() Posit64 { return Posit64(NextUp(Std64, uint64(p))) }

// NextDown returns the next posit below p (saturating at -maxpos).
func (p Posit64) NextDown() Posit64 { return Posit64(NextDown(Std64, uint64(p))) }

// ToP16 narrows to 16 bits with correct rounding.
func (p Posit32) ToP16() Posit16 { return Posit16(Convert(Std32, Std16, uint64(p))) }

// ToP8 narrows to 8 bits with correct rounding.
func (p Posit32) ToP8() Posit8 { return Posit8(Convert(Std32, Std8, uint64(p))) }

// ToP64 widens to 64 bits exactly.
func (p Posit32) ToP64() Posit64 { return Posit64(Convert(Std32, Std64, uint64(p))) }

// ToP32 widens to 32 bits exactly.
func (p Posit16) ToP32() Posit32 { return Posit32(Convert(Std16, Std32, uint64(p))) }

// ToP32 widens to 32 bits exactly.
func (p Posit8) ToP32() Posit32 { return Posit32(Convert(Std8, Std32, uint64(p))) }

// ToP32 narrows to 32 bits with correct rounding.
func (p Posit64) ToP32() Posit32 { return Posit32(Convert(Std64, Std32, uint64(p))) }

// Int64 rounds p to the nearest int64 (ties to even), saturating.
func (p Posit32) Int64() int64 { return ToInt64(Std32, uint64(p)) }

// Int64 rounds p to the nearest int64 (ties to even), saturating.
func (p Posit64) Int64() int64 { return ToInt64(Std64, uint64(p)) }

// P32FromInt64 returns the posit32 nearest to v.
func P32FromInt64(v int64) Posit32 { return Posit32(FromInt64(Std32, v)) }

// P64FromInt64 returns the posit64 nearest to v.
func P64FromInt64(v int64) Posit64 { return Posit64(FromInt64(Std64, v)) }
