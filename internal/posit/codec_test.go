package posit

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// golden32 holds hand-verified posit32 encodings.
var golden32 = []struct {
	bits uint32
	val  float64
}{
	{0x00000000, 0},
	{0x40000000, 1},
	{0xC0000000, -1},
	{0x44000000, 1.5},
	{0xBC000000, -1.5},
	{0x38000000, 0.5},
	{0x48000000, 2},
	{0x4C000000, 3},
	{0x50000000, 4},
	{0x58000000, 8},
	{0x60000000, 16},
	{0x70000000, 256},
	{0x7FFFFFFF, math.Ldexp(1, 120)},  // maxpos = 2^120
	{0x00000001, math.Ldexp(1, -120)}, // minpos = 2^-120
	{0xFFFFFFFF, -math.Ldexp(1, -120)},
	{0x80000001, -math.Ldexp(1, 120)},
	{0x20000000, 0.0625}, // useed^-1 = 1/16
	{0x74000000, 1024},
	{0x30000000, 0.25},
	{0x34000000, 0.375},
}

func TestGoldenPosit32(t *testing.T) {
	for _, g := range golden32 {
		if got := DecodeFloat64(Std32, uint64(g.bits)); got != g.val {
			t.Errorf("decode(%#08x) = %v, want %v", g.bits, got, g.val)
		}
		if got := EncodeFloat64(Std32, g.val); got != uint64(g.bits) {
			t.Errorf("encode(%v) = %#08x, want %#08x", g.val, got, g.bits)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	for _, cfg := range []Config{Std8, Std16, Std32, Std64} {
		if EncodeFloat64(cfg, math.NaN()) != cfg.NaR() {
			t.Errorf("%v: NaN should encode to NaR", cfg)
		}
		if EncodeFloat64(cfg, math.Inf(1)) != cfg.NaR() {
			t.Errorf("%v: +Inf should encode to NaR", cfg)
		}
		if EncodeFloat64(cfg, math.Inf(-1)) != cfg.NaR() {
			t.Errorf("%v: -Inf should encode to NaR", cfg)
		}
		if !math.IsNaN(DecodeFloat64(cfg, cfg.NaR())) {
			t.Errorf("%v: NaR should decode to NaN", cfg)
		}
		if EncodeFloat64(cfg, 0) != 0 {
			t.Errorf("%v: 0 should encode to 0", cfg)
		}
		if EncodeFloat64(cfg, math.Copysign(0, -1)) != 0 {
			t.Errorf("%v: -0 should encode to 0", cfg)
		}
		if DecodeFloat64(cfg, 0) != 0 {
			t.Errorf("%v: 0 pattern should decode to 0", cfg)
		}
	}
}

func TestSaturation(t *testing.T) {
	for _, cfg := range []Config{Std8, Std16, Std32, Std64} {
		big := math.Ldexp(1, cfg.MaxScale()+40)
		if got := EncodeFloat64(cfg, big); got != cfg.MaxPosBits() {
			t.Errorf("%v: overlarge value should saturate to maxpos, got %#x", cfg, got)
		}
		if got := EncodeFloat64(cfg, -big); got != cfg.Negate(cfg.MaxPosBits()) {
			t.Errorf("%v: overlarge negative should saturate to -maxpos", cfg)
		}
		tiny := math.Ldexp(1, -cfg.MaxScale()-40)
		if tiny == 0 {
			tiny = math.SmallestNonzeroFloat64
		}
		if got := EncodeFloat64(cfg, tiny); got != cfg.MinPosBits() {
			t.Errorf("%v: tiny value should saturate to minpos, got %#x", cfg, got)
		}
		if got := EncodeFloat64(cfg, -tiny); got != cfg.Negate(cfg.MinPosBits()) {
			t.Errorf("%v: tiny negative should saturate to -minpos", cfg)
		}
	}
}

func TestSubnormalFloat64Input(t *testing.T) {
	// Subnormal float64 values must normalize correctly before
	// saturating at minpos (every subnormal is below 2^-120).
	inputs := []float64{
		math.SmallestNonzeroFloat64,
		math.Ldexp(1, -1074),
		math.Ldexp(3, -1073),
		math.Ldexp(1, -1023),
	}
	for _, x := range inputs {
		if got := EncodeFloat64(Std32, x); got != Std32.MinPosBits() {
			t.Errorf("encode(%g) = %#x, want minpos", x, got)
		}
	}
	// posit64 reaches 2^-248, still above all float64 subnormals.
	if got := EncodeFloat64(Std64, math.SmallestNonzeroFloat64); got != Std64.MinPosBits() {
		t.Errorf("p64 encode(min subnormal) = %#x, want minpos", got)
	}
}

// TestExhaustiveDecode8and16 cross-checks the primary decoder against
// the paper's eq. (2) decoder on every 8- and 16-bit pattern, and
// verifies the encode/decode round trip is the identity.
func TestExhaustiveDecode8and16(t *testing.T) {
	for _, cfg := range []Config{Std8, Std16} {
		for b := uint64(0); b <= cfg.Mask(); b++ {
			if b == cfg.NaR() {
				if !math.IsNaN(DecodeEq2(cfg, b)) {
					t.Fatalf("%v: eq2(NaR) should be NaN", cfg)
				}
				continue
			}
			v1 := DecodeFloat64(cfg, b)
			v2 := DecodeEq2(cfg, b)
			if v1 != v2 {
				t.Fatalf("%v: pattern %#x: classic decode %v != eq2 decode %v (fields %+v)",
					cfg, b, v1, v2, DecodeFields(cfg, b))
			}
			if rt := EncodeFloat64(cfg, v1); rt != b {
				t.Fatalf("%v: round trip of %#x (=%v) gave %#x", cfg, b, v1, rt)
			}
		}
	}
}

// TestEq2MatchesClassic32and64 samples random 32- and 64-bit patterns.
func TestEq2MatchesClassic32and64(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []Config{Std32, Std64} {
		for i := 0; i < 200000; i++ {
			b := cfg.Canon(rng.Uint64())
			if b == cfg.NaR() {
				continue
			}
			v1 := DecodeFloat64(cfg, b)
			v2 := DecodeEq2(cfg, b)
			if v1 != v2 {
				t.Fatalf("%v: pattern %#x: classic %v != eq2 %v", cfg, b, v1, v2)
			}
		}
	}
}

// TestMonotonicity verifies the hallmark posit property: bit patterns
// interpreted as signed integers order exactly as their values.
// Exhaustive for posit16 (adjacent pairs cover the whole order).
func TestMonotonicity(t *testing.T) {
	cfg := Std16
	prev := math.Inf(-1) // NaR (0x8000) sorts first as signed int -32768
	for i := 0; i <= int(cfg.Mask()); i++ {
		b := uint64(uint16(int16(-32768) + int16(i)))
		if b == cfg.NaR() {
			continue
		}
		v := DecodeFloat64(cfg, b)
		if !(v > prev) {
			t.Fatalf("monotonicity broken at pattern %#x: %v !> %v", b, v, prev)
		}
		prev = v
	}
}

// TestNegationIsTwosComplement: decode(-p) == -decode(p), exhaustive
// for posit16.
func TestNegationIsTwosComplement(t *testing.T) {
	cfg := Std16
	for b := uint64(0); b <= cfg.Mask(); b++ {
		if b == cfg.NaR() {
			if cfg.Negate(b) != b {
				t.Fatal("NaR must be its own negation")
			}
			continue
		}
		v := DecodeFloat64(cfg, b)
		nv := DecodeFloat64(cfg, cfg.Negate(b))
		if nv != -v && !(v == 0 && nv == 0) {
			t.Fatalf("negate(%#x): got %v, want %v", b, nv, -v)
		}
	}
}

// TestRoundTripQuick: encoding any finite float64 and decoding gives a
// posit-representable value that re-encodes to the same pattern.
func TestRoundTripQuick(t *testing.T) {
	for _, cfg := range []Config{Std8, Std16, Std32, Std64} {
		cfg := cfg
		f := func(x float64) bool {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			b := EncodeFloat64(cfg, x)
			v := DecodeFloat64(cfg, b)
			return EncodeFloat64(cfg, v) == b
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
			t.Errorf("%v: %v", cfg, err)
		}
	}
}

// TestEncodeIsNearest verifies rounding correctness exhaustively for
// posit8 against the reference rational rounder, sweeping a dense grid
// of float64 values across and beyond the posit8 range.
func TestEncodeIsNearest(t *testing.T) {
	cfg := Std8
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200000; i++ {
		// Log-uniform magnitudes covering [2^-30, 2^30] (posit8 range
		// is [2^-24, 2^24]).
		h := rng.Float64()*60 - 30
		x := math.Ldexp(1+rng.Float64(), 0) * math.Pow(2, h)
		if rng.Intn(2) == 0 {
			x = -x
		}
		r := new(big.Rat).SetFloat64(x)
		want := refRoundRat(cfg, r)
		got := EncodeFloat64(cfg, x)
		if got != want {
			t.Fatalf("encode(%g) = %#x, reference %#x", x, got, want)
		}
	}
}

// TestEncodeIsNearest32 samples the same reference check for posit32.
func TestEncodeIsNearest32(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check skipped in -short mode")
	}
	cfg := Std32
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50000; i++ {
		h := rng.Float64()*280 - 140
		x := (1 + rng.Float64()) * math.Pow(2, h)
		if rng.Intn(2) == 0 {
			x = -x
		}
		r := new(big.Rat).SetFloat64(x)
		want := refRoundRat(cfg, r)
		got := EncodeFloat64(cfg, x)
		if got != want {
			t.Fatalf("encode(%g) = %#x, reference %#x", x, got, want)
		}
	}
}

// TestTiesToEven checks consistency with the reference rounder at the
// arithmetic midpoint of every pair of consecutive positive posit8
// values (the hardest inputs for a rounding rule). When the midpoint
// is exactly representable in float64 the two must agree bit-for-bit.
func TestTiesToEven(t *testing.T) {
	cfg := Std8
	for b := uint64(1); b < cfg.MaxPosBits(); b++ {
		v1 := ratFromPosit(cfg, b)
		v2 := ratFromPosit(cfg, b+1)
		mid := new(big.Rat).Add(v1, v2)
		mid.Quo(mid, ratTwo)
		f, exact := mid.Float64()
		if !exact {
			continue // midpoint not a float64; EncodeFloat64 sees a different value
		}
		want := refRoundRat(cfg, mid)
		got := EncodeFloat64(cfg, f)
		if got != want {
			t.Fatalf("midpoint of %#x/%#x (%v): encode %#x, reference %#x", b, b+1, f, got, want)
		}
		// Additionally, a true bit-stream tie (guard=1, sticky=0 in the
		// stream) must land on the even pattern. The stream tie point
		// for posits within one binade is the arithmetic midpoint.
		fb1 := DecodeFields(cfg, b)
		fb2 := DecodeFields(cfg, b+1)
		if fb1.FracLen == fb2.FracLen && fb1.R == fb2.R && fb1.Exp == fb2.Exp {
			if want != b && want != b+1 {
				t.Fatalf("midpoint of %#x/%#x rounded outside the pair: %#x", b, b+1, want)
			}
			if want&1 != 0 {
				t.Fatalf("tie between %#x and %#x resolved to odd pattern %#x", b, b+1, want)
			}
		}
	}
}

func TestDecodeFieldsKnown(t *testing.T) {
	// 186.25 = 2^7 × 1.455078125: r=1, e=3 → regime "110", exp "11".
	b := EncodeFloat64(Std32, 186.25)
	f := DecodeFields(Std32, b)
	if f.K != 2 || f.R != 1 || f.RegimeLen != 3 || f.ExpLen != 2 || f.Exp != 3 {
		t.Errorf("fields of 186.25: %+v", f)
	}
	if f.FracLen != 26 {
		t.Errorf("fracLen of 186.25 = %d, want 26", f.FracLen)
	}
	if got := DecodeFloat64(Std32, b); math.Abs(got-186.25) > 1e-6 {
		t.Errorf("round trip 186.25 -> %v", got)
	}

	// 1.0: regime "10", k=1, r=0.
	f = DecodeFields(Std32, 0x40000000)
	if f.K != 1 || f.R != 0 || f.Exp != 0 || f.Frac != 0 {
		t.Errorf("fields of 1.0: %+v", f)
	}

	// maxpos: untermimated regime of 31 ones.
	f = DecodeFields(Std32, 0x7FFFFFFF)
	if f.K != 31 || f.R != 30 || f.RegimeLen != 31 || f.ExpLen != 0 || f.FracLen != 0 {
		t.Errorf("fields of maxpos: %+v", f)
	}

	// minpos: 30 zeros + terminating 1.
	f = DecodeFields(Std32, 1)
	if f.K != 30 || f.R != -30 || f.RegimeLen != 31 {
		t.Errorf("fields of minpos: %+v", f)
	}

	// Truncated exponent: pattern 0b10 has one exponent bit (value 0).
	f = DecodeFields(Std32, 2)
	if f.K != 29 || f.R != -29 || f.ExpLen != 1 || f.Exp != 0 {
		t.Errorf("fields of pattern 2: %+v", f)
	}
	// Pattern 0b11: the single exponent bit is the MSB → e = 2.
	f = DecodeFields(Std32, 3)
	if f.ExpLen != 1 || f.Exp != 2 {
		t.Errorf("fields of pattern 3: %+v", f)
	}
	if got := DecodeFloat64(Std32, 3); got != math.Ldexp(1, -114) {
		t.Errorf("pattern 3 = %g, want 2^-114", got)
	}
}

func TestFieldAt(t *testing.T) {
	b := EncodeFloat64(Std32, 186.25) // 0|110|11|frac…
	wants := map[int]FieldKind{
		31: FieldSign,
		30: FieldRegime, 29: FieldRegime, 28: FieldRegime,
		27: FieldExponent, 26: FieldExponent,
		25: FieldFraction, 0: FieldFraction,
	}
	for pos, want := range wants {
		if got := FieldAt(Std32, b, pos); got != want {
			t.Errorf("FieldAt(186.25, %d) = %v, want %v", pos, got, want)
		}
	}
	// Zero and NaR: everything below the sign reads as regime.
	if FieldAt(Std32, 0, 31) != FieldSign || FieldAt(Std32, 0, 5) != FieldRegime {
		t.Error("FieldAt on zero pattern misclassified")
	}
	if FieldAt(Std32, Std32.NaR(), 10) != FieldRegime {
		t.Error("FieldAt on NaR pattern misclassified")
	}
}

func TestBitString(t *testing.T) {
	if got := BitString(Std8, EncodeFloat64(Std8, 1)); got != "0|10|00|000" {
		t.Errorf("BitString(1) = %q", got)
	}
	if got := BitString(Std8, Std8.MaxPosBits()); got != "0|1111111" {
		t.Errorf("BitString(maxpos8) = %q", got)
	}
	if got := BitString(Std8, 0); got != "0|0000000" {
		t.Errorf("BitString(0) = %q", got)
	}
}

// TestRegimeRunLengthEq1 cross-checks the regime size against the
// paper's eq. (1): for p > 1, k = floor(log16 p) + 1.
func TestRegimeRunLengthEq1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		p := math.Exp(rng.Float64()*50 + 0.1) // p > 1, up to e^50
		// Use the posit-rounded value so eq. 1 sees the same number
		// the bit pattern encodes.
		pv := Float64ToNearest(Std32, p)
		if pv <= 1 {
			continue
		}
		want := int(math.Floor(math.Log2(pv)/4)) + 1
		if want > 31 {
			want = 31
		}
		if got := RegimeRunLength(Std32, pv); got != want {
			t.Fatalf("RegimeRunLength(%g) = %d, eq1 gives %d", pv, got, want)
		}
	}
	// And for 0 < p < 1 the run counts zeros: k = -floor(log16 p).
	for i := 0; i < 5000; i++ {
		p := math.Exp(-rng.Float64()*50 - 0.1)
		pv := Float64ToNearest(Std32, p)
		if pv >= 1 || pv <= 0 {
			continue
		}
		want := -int(math.Floor(math.Log2(pv) / 4))
		if want > 30 {
			want = 30
		}
		if got := RegimeRunLength(Std32, pv); got != want {
			t.Fatalf("RegimeRunLength(%g) = %d, eq1 gives %d", pv, got, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{{N: 1, ES: 2}, {N: 65, ES: 2}, {N: 32, ES: -1}, {N: 32, ES: 5}}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%v) should fail", c)
		}
	}
	for _, c := range []Config{Std8, Std16, Std32, Std64, {N: 32, ES: 0}, {N: 12, ES: 1}} {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%v): %v", c, err)
		}
	}
}

func TestUseedAndMaxScale(t *testing.T) {
	if Std32.Useed() != 16 {
		t.Errorf("useed(es=2) = %v, want 16", Std32.Useed())
	}
	if (Config{N: 32, ES: 0}).Useed() != 2 {
		t.Error("useed(es=0) should be 2")
	}
	if Std32.MaxScale() != 120 {
		t.Errorf("maxScale posit32 = %d, want 120", Std32.MaxScale())
	}
	if Std8.MaxScale() != 24 {
		t.Errorf("maxScale posit8 = %d, want 24", Std8.MaxScale())
	}
	if Std16.MaxScale() != 56 || Std64.MaxScale() != 248 {
		t.Error("maxScale posit16/posit64 wrong")
	}
}

// TestLegacyESFormats sanity-checks non-standard exponent sizes used
// by the ablation experiments.
func TestLegacyESFormats(t *testing.T) {
	for _, es := range []int{0, 1, 3} {
		cfg := Config{N: 16, ES: es}
		for b := uint64(0); b <= cfg.Mask(); b++ {
			if b == cfg.NaR() {
				continue
			}
			v := DecodeFloat64(cfg, b)
			if rt := EncodeFloat64(cfg, v); rt != b {
				t.Fatalf("%v: round trip of %#x (=%v) gave %#x", cfg, b, v, rt)
			}
			if v2 := DecodeEq2(cfg, b); v2 != v {
				t.Fatalf("%v: eq2 mismatch at %#x: %v vs %v", cfg, b, v2, v)
			}
		}
	}
}
