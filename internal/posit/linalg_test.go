package posit

import (
	"math/big"
	"math/rand"
	"testing"
)

func randP32s(rng *rand.Rand, n int) []Posit32 {
	out := make([]Posit32, n)
	for i := range out {
		for {
			b := uint32(rng.Uint64())
			if uint64(b) != Std32.NaR() {
				out[i] = P32FromBits(b)
				break
			}
		}
	}
	return out
}

// TestGemmP32ExactRounding: every output element equals the exact
// rational dot product rounded once.
func TestGemmP32ExactRounding(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const m, n, p = 4, 5, 3
	// Moderate magnitudes keep the exact rationals readable; the quire
	// handles extremes (covered by quire tests).
	a := make([]Posit32, m*n)
	b := make([]Posit32, n*p)
	for i := range a {
		a[i] = P32FromFloat64(rng.NormFloat64() * 10)
	}
	for i := range b {
		b[i] = P32FromFloat64(rng.NormFloat64() * 10)
	}
	c, err := GemmP32(m, n, p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			exact := new(big.Rat)
			for k := 0; k < n; k++ {
				exact.Add(exact, new(big.Rat).Mul(
					ratFromPosit(Std32, uint64(a[i*n+k])),
					ratFromPosit(Std32, uint64(b[k*p+j]))))
			}
			want := refRoundRat(Std32, exact)
			if uint64(c[i*p+j]) != want {
				t.Fatalf("C[%d,%d] = %#x, want %#x", i, j, c[i*p+j].Bits(), want)
			}
		}
	}
	if _, err := GemmP32(2, 2, 2, a[:3], b[:4]); err == nil {
		t.Error("shape mismatch should error")
	}
}

// TestGemmOrderIndependence: transposed evaluation (B'·A')' gives the
// bit-identical result, because each element is a single-rounded exact
// sum.
func TestGemmOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	const m, n, p = 6, 7, 5
	a := randP32s(rng, m*n)
	b := randP32s(rng, n*p)
	c1, err := GemmP32(m, n, p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Transpose operands, multiply the other way, transpose back.
	at := make([]Posit32, n*m)
	for i := 0; i < m; i++ {
		for k := 0; k < n; k++ {
			at[k*m+i] = a[i*n+k]
		}
	}
	bt := make([]Posit32, p*n)
	for k := 0; k < n; k++ {
		for j := 0; j < p; j++ {
			bt[j*n+k] = b[k*p+j]
		}
	}
	ct, err := GemmP32(p, n, m, bt, at)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			if c1[i*p+j] != ct[j*m+i] {
				t.Fatalf("transposed evaluation differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatVecAndNorm(t *testing.T) {
	a := []Posit32{
		P32FromFloat64(1), P32FromFloat64(2),
		P32FromFloat64(3), P32FromFloat64(4),
	}
	x := []Posit32{P32FromFloat64(5), P32FromFloat64(6)}
	y, err := MatVecP32(2, 2, a, x)
	if err != nil {
		t.Fatal(err)
	}
	if y[0].Float64() != 17 || y[1].Float64() != 39 {
		t.Fatalf("matvec: %v %v", y[0].Float64(), y[1].Float64())
	}
	if _, err := MatVecP32(2, 2, a, x[:1]); err == nil {
		t.Error("shape mismatch should error")
	}
	if got := Norm2P32([]Posit32{P32FromFloat64(3), P32FromFloat64(4)}).Float64(); got != 5 {
		t.Fatalf("norm: %v", got)
	}
	// Norm of a cancellation-prone vector is still single-rounded:
	// quire-exact sum of squares cannot go negative or lose terms.
	big1 := P32FromFloat64(1e15)
	tiny := P32FromFloat64(1)
	n := Norm2P32([]Posit32{big1, tiny})
	if n.Float64() < 1e15 {
		t.Fatalf("norm lost the dominant term: %v", n.Float64())
	}
}
