package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSummarizeSmall(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Median != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary: %+v", s)
	}
	want := math.Sqrt(1.25) // population std of {1,2,3,4}
	if !almost(s.Std, want, 1e-12) {
		t.Errorf("std %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmptyAndSpecial(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 {
		t.Error("empty count")
	}
	s = Summarize([]float64{math.NaN(), math.Inf(1)})
	if !math.IsNaN(s.Mean) || !math.IsNaN(s.Median) {
		t.Error("all-special summary should be NaN")
	}
	// Specials are skipped, not poisoning.
	s = Summarize([]float64{1, math.NaN(), 3, math.Inf(-1)})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("special-skipping summary: %+v", s)
	}
}

// TestParallelMatchesSerial: the parallel reduction must equal a
// serial Welford pass on large arrays (determinism across the chunked
// merge).
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := parallelThreshold*3 + 12345
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()*1e6 + 3
	}
	s := Summarize(data)
	var m moments = newMoments()
	for _, x := range data {
		m.add(x)
	}
	if !almost(s.Mean, m.mean, 1e-10) {
		t.Errorf("parallel mean %v vs serial %v", s.Mean, m.mean)
	}
	if !almost(s.Std, math.Sqrt(m.m2/float64(m.n)), 1e-9) {
		t.Errorf("parallel std %v", s.Std)
	}
	if s.Min != m.min || s.Max != m.max {
		t.Error("parallel min/max mismatch")
	}
	// Determinism: repeated runs identical.
	if s2 := Summarize(data); s2 != s {
		t.Error("Summarize not deterministic")
	}
}

func TestMedianAndQuantiles(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Error("even median")
	}
	if math.IsNaN(Median([]float64{5})) || Median([]float64{5}) != 5 {
		t.Error("single median")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
	data := []float64{10, 20, 30, 40, 50}
	if Quantile(data, 0) != 10 || Quantile(data, 1) != 50 {
		t.Error("extreme quantiles")
	}
	if Quantile(data, 0.25) != 20 || Quantile(data, 0.75) != 40 {
		t.Error("quartiles")
	}
	if Quantile(data, 0.125) != 15 {
		t.Errorf("interpolated quantile: %v", Quantile(data, 0.125))
	}
}

// TestQuantileAgainstSort: quickselect quantiles equal sort-based
// quantiles on random data.
func TestQuantileAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		q := rng.Float64()
		got := Quantile(data, q)
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		pos := q * float64(n-1)
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		want := sorted[lo]
		if frac > 0 && lo+1 < n {
			want += frac * (sorted[lo+1] - sorted[lo])
		}
		if !almost(got, want, 1e-12) {
			t.Fatalf("quantile(%v) = %v, sorted ref %v (n=%d)", q, got, want, n)
		}
	}
}

// TestMedianPermutationInvariant (property): the median never depends
// on input order.
func TestMedianPermutationInvariant(t *testing.T) {
	f := func(data []float64) bool {
		clean := make([]float64, 0, len(data))
		for _, x := range data {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m1 := Median(clean)
		shuffled := append([]float64(nil), clean...)
		rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return Median(shuffled) == m1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 2.5, -1, 11, math.NaN(), 10}, 0, 10, 10)
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("bin counts: %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 1 || h.Special != 1 {
		t.Errorf("under %d over %d special %d", h.Under, h.Over, h.Special)
	}
	if h.Counts[9] != 1 { // x == max lands in the last bin
		t.Error("max-valued element should land in last bin")
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{1, 2, 3, 4, 5})
	if b.N != 5 || b.Low != 1 || b.Median != 3 || b.Hi != 5 || b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("box: %+v", b)
	}
	b = Box(nil)
	if b.N != 0 || !math.IsNaN(b.Median) {
		t.Error("empty box")
	}
	b = Box([]float64{math.Inf(1), 7})
	if b.N != 1 || b.Median != 7 {
		t.Error("box should skip specials")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 100}), 10, 1e-12) {
		t.Errorf("geomean {1,100} = %v", GeoMean([]float64{1, 100}))
	}
	if !almost(GeoMean([]float64{2, 8, -5, 0}), 4, 1e-12) {
		t.Error("geomean should skip non-positive values")
	}
	if !math.IsNaN(GeoMean([]float64{-1, 0})) {
		t.Error("geomean of nothing positive should be NaN")
	}
}

func TestMeanMinMaxStd(t *testing.T) {
	data := []float64{2, 4, 6}
	if Mean(data) != 4 || Min(data) != 2 || Max(data) != 6 {
		t.Error("mean/min/max")
	}
	if !almost(Std(data), math.Sqrt(8.0/3), 1e-12) {
		t.Errorf("std %v", Std(data))
	}
	if !math.IsNaN(Std([]float64{math.NaN()})) {
		t.Error("std of specials should be NaN")
	}
}
