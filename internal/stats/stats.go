// Package stats provides the summary statistics the campaign computes
// for its baselines and faulty arrays (paper §4.1–4.2): mean, median,
// min, max and standard deviation, plus quantiles and histograms used
// by the analysis. Large arrays are reduced in parallel with a
// fixed-size worker pool; results are identical at any worker count.
package stats

import (
	"math"
	"runtime"
	"sort"
	"sync"
)

// Summary holds the per-field statistics reported in the paper's
// Table 1.
type Summary struct {
	Count  int     // finite elements summarized
	Mean   float64 // arithmetic mean
	Median float64 // 50th percentile
	Min    float64 // smallest element
	Max    float64 // largest element
	Std    float64 // population standard deviation, as QCAT reports
}

// Summarize computes a Summary over data. NaN and ±Inf elements are
// counted but excluded from the moments (a faulty array may contain a
// single special value; the paper's statistics functions skip it).
func Summarize(data []float64) Summary {
	s := Summary{Count: len(data)}
	if len(data) == 0 {
		return s
	}
	m := reduceMoments(data)
	if m.n == 0 {
		s.Min, s.Max = math.NaN(), math.NaN()
		s.Mean, s.Std, s.Median = math.NaN(), math.NaN(), math.NaN()
		return s
	}
	s.Min, s.Max = m.min, m.max
	s.Mean = m.mean
	s.Std = math.Sqrt(m.m2 / float64(m.n))
	s.Median = Median(data)
	return s
}

// moments is a Chan-style mergeable moment accumulator (Welford /
// Chan et al. parallel variance).
type moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

func newMoments() moments {
	return moments{min: math.Inf(1), max: math.Inf(-1)}
}

func (m *moments) add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
	if x < m.min {
		m.min = x
	}
	if x > m.max {
		m.max = x
	}
}

// merge combines two accumulators (Chan et al. pairwise update).
func (m *moments) merge(o moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.n = n
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
}

// Moments is the exported face of the mergeable moment accumulator,
// for callers that fold values in online (one Add per trial) rather
// than over a materialized slice — the columnar store's per-bit
// aggregates. Because Add is the same serial Welford update that
// reduceMoments applies below parallelThreshold, a Moments fed values
// in slice order reproduces Mean/Min/Max/Std bit-for-bit for inputs
// under that threshold, and within Chan-merge reassociation error
// above it. The zero value is NOT ready to use; call NewMoments.
type Moments struct{ m moments }

// NewMoments returns an empty accumulator (min +Inf, max -Inf).
func NewMoments() Moments { return Moments{m: newMoments()} }

// Add folds one value in. NaN and ±Inf are skipped, matching
// Summarize's treatment of special values.
func (a *Moments) Add(x float64) { a.m.add(x) }

// Merge combines another accumulator into a, as if a had also seen
// every value o saw (Chan et al. pairwise update, exact for count,
// min and max; mean and variance reassociate).
func (a *Moments) Merge(o Moments) { a.m.merge(o.m) }

// N reports how many finite values have been folded in.
func (a *Moments) N() int { return a.m.n }

// Mean returns the running arithmetic mean (0 when empty, like the
// zero moments struct; callers gate on N for the empty case).
func (a *Moments) Mean() float64 { return a.m.mean }

// Min returns the smallest value seen (+Inf when empty).
func (a *Moments) Min() float64 { return a.m.min }

// Max returns the largest value seen (-Inf when empty).
func (a *Moments) Max() float64 { return a.m.max }

// Std returns the running population standard deviation (NaN when
// empty), matching Std over the same values.
func (a *Moments) Std() float64 {
	if a.m.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(a.m.m2 / float64(a.m.n))
}

// MomentsState is the portable content of a Moments accumulator, for
// callers that persist aggregates (the columnar store's footer) and
// must reconstruct the exact accumulator later. M2 is the running sum
// of squared deviations — internal state, exposed only so a
// round-trip through storage is lossless.
type MomentsState struct {
	// N counts the finite values folded in.
	N int
	// Mean, M2, Min and Max are the raw accumulator fields.
	Mean, M2, Min, Max float64
}

// State exports the accumulator's content.
func (a *Moments) State() MomentsState {
	return MomentsState{N: a.m.n, Mean: a.m.mean, M2: a.m.m2, Min: a.m.min, Max: a.m.max}
}

// MomentsFromState reconstructs the accumulator State exported —
// bit-for-bit, so persisted aggregates keep merging exactly.
func MomentsFromState(s MomentsState) Moments {
	return Moments{m: moments{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}}
}

// parallelThreshold is the array size below which reduction runs
// serially (goroutine startup costs more than the work).
const parallelThreshold = 1 << 16

func reduceMoments(data []float64) moments {
	if len(data) < parallelThreshold {
		m := newMoments()
		for _, x := range data {
			m.add(x)
		}
		return m
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(data) + workers - 1) / workers
	parts := make([]moments, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(data) {
			break
		}
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := newMoments()
			for _, x := range data[lo:hi] {
				m.add(x)
			}
			parts[w] = m
		}(w, lo, hi)
	}
	wg.Wait()
	// Merge in fixed order so the result is deterministic.
	total := newMoments()
	for _, p := range parts {
		total.merge(p)
	}
	return total
}

// Mean returns the arithmetic mean of the finite elements.
func Mean(data []float64) float64 { return reduceMoments(data).mean }

// Min returns the smallest finite element (+Inf if none).
func Min(data []float64) float64 { return reduceMoments(data).min }

// Max returns the largest finite element (-Inf if none).
func Max(data []float64) float64 { return reduceMoments(data).max }

// Std returns the population standard deviation of the finite elements.
func Std(data []float64) float64 {
	m := reduceMoments(data)
	if m.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(m.m2 / float64(m.n))
}

// Median returns the exact median of the finite elements, using
// quickselect (expected O(n), no full sort).
func Median(data []float64) float64 {
	return Quantile(data, 0.5)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the finite
// elements using linear interpolation between order statistics.
func Quantile(data []float64, q float64) float64 {
	finite := make([]float64, 0, len(data))
	for _, x := range data {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			finite = append(finite, x)
		}
	}
	if len(finite) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		v, _ := selectKth(finite, 0)
		return v
	}
	if q >= 1 {
		v, _ := selectKth(finite, len(finite)-1)
		return v
	}
	pos := q * float64(len(finite)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	vlo, rest := selectKth(finite, lo)
	if frac == 0 {
		return vlo
	}
	// The next order statistic is the minimum of the right partition.
	vhi := rest[0]
	for _, x := range rest {
		if x < vhi {
			vhi = x
		}
	}
	return vlo + frac*(vhi-vlo)
}

// selectKth partially partitions data (in place) around its k-th order
// statistic and returns that value plus the slice of elements at
// positions > k (useful for interpolated quantiles). It uses three-way
// (Dutch national flag) partitioning so duplicate-heavy inputs — e.g.
// fields that are mostly exact zeros, like Hurricane/CLOUDf48 — stay
// O(n) instead of degrading quadratically.
func selectKth(data []float64, k int) (float64, []float64) {
	lo, hi := 0, len(data)-1
	for lo < hi {
		lt, gt := partition3(data, lo, hi)
		switch {
		case k < lt:
			hi = lt - 1
		case k > gt:
			lo = gt + 1
		default:
			// k lands inside the run of pivot-equal elements.
			return data[k], data[k+1:]
		}
	}
	return data[k], data[k+1:]
}

// partition3 partitions data[lo..hi] into < pivot, == pivot, > pivot
// regions and returns the bounds [lt, gt] of the equal region.
func partition3(data []float64, lo, hi int) (int, int) {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot to dodge adversarial orderings.
	if data[mid] < data[lo] {
		data[mid], data[lo] = data[lo], data[mid]
	}
	if data[hi] < data[lo] {
		data[hi], data[lo] = data[lo], data[hi]
	}
	if data[hi] < data[mid] {
		data[hi], data[mid] = data[mid], data[hi]
	}
	pivot := data[mid]
	lt, i, gt := lo, lo, hi
	for i <= gt {
		switch {
		case data[i] < pivot:
			data[lt], data[i] = data[i], data[lt]
			lt++
			i++
		case data[i] > pivot:
			data[i], data[gt] = data[gt], data[i]
			gt--
		default:
			i++
		}
	}
	return lt, gt
}

// Histogram counts elements into nb equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64 // bin range; elements outside land in Under/Over
	Counts   []int   // per-bin tallies, len = requested bin count
	// Under and Over count elements outside [Min, Max]; Special counts
	// NaN/Inf elements.
	Under, Over, Special int
}

// NewHistogram builds a histogram of data with nb bins over [min,max].
func NewHistogram(data []float64, min, max float64, nb int) *Histogram {
	h := &Histogram{Min: min, Max: max, Counts: make([]int, nb)}
	width := (max - min) / float64(nb)
	for _, x := range data {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
			h.Special++
		case x < min:
			h.Under++
		case x > max:
			h.Over++
		default:
			// x == max lands at index nb; clamp it into the top bin
			// (this also absorbs any rounding in (x-min)/width).
			idx := int((x - min) / width)
			if idx >= nb {
				idx = nb - 1
			}
			h.Counts[idx]++
		}
	}
	return h
}

// BoxStats holds the five-number summary used by the paper's box plot
// (Fig. 20), plus the count.
type BoxStats struct {
	N                       int     // finite elements included
	Low, Q1, Median, Q3, Hi float64 // whisker low, quartiles, whisker high
}

// Box computes the five-number summary of the finite elements.
func Box(data []float64) BoxStats {
	finite := make([]float64, 0, len(data))
	for _, x := range data {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			finite = append(finite, x)
		}
	}
	b := BoxStats{N: len(finite)}
	if len(finite) == 0 {
		b.Low, b.Q1, b.Median, b.Q3, b.Hi = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return b
	}
	sort.Float64s(finite)
	q := func(p float64) float64 {
		pos := p * float64(len(finite)-1)
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		if lo+1 >= len(finite) {
			return finite[len(finite)-1]
		}
		return finite[lo] + frac*(finite[lo+1]-finite[lo])
	}
	b.Low, b.Q1, b.Median, b.Q3, b.Hi = finite[0], q(0.25), q(0.5), q(0.75), finite[len(finite)-1]
	return b
}

// GeoMean returns the geometric mean of the positive finite elements —
// the right average for error magnitudes spanning many decades.
func GeoMean(data []float64) float64 {
	var sum float64
	var n int
	for _, x := range data {
		if x > 0 && !math.IsInf(x, 0) {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}
