package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"positres/internal/core"
)

// state owns the durable side of a run: the manifest file and the
// journal directory. With Config.Dir empty it degrades to a no-op so
// the orchestration (cancellation, watchdog, retry) works without any
// filesystem footprint.
type state struct {
	dir          string
	journalDir   string
	manifestPath string
	manifest     *Manifest
}

func (s *state) enabled() bool { return s.dir != "" }

// openState validates the state directory against the requested
// campaign. An existing manifest without Resume is ErrStateExists; an
// existing manifest with incompatible parameters is a fatal mismatch
// (resuming it would splice incompatible trial streams).
func openState(cfg *Config, params campaignParams, specs []Spec) (*state, error) {
	if cfg.Dir == "" {
		return &state{}, nil
	}
	s := &state{
		dir:          cfg.Dir,
		journalDir:   filepath.Join(cfg.Dir, "journal"),
		manifestPath: filepath.Join(cfg.Dir, "manifest.json"),
	}
	if err := os.MkdirAll(s.journalDir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: state dir: %w", err)
	}
	prev, err := loadManifest(s.manifestPath)
	if err != nil {
		return nil, err
	}
	created := time.Now().UTC().Format(time.RFC3339)
	if prev != nil {
		if !cfg.Resume {
			return nil, fmt.Errorf("%w: %s", ErrStateExists, cfg.Dir)
		}
		if err := prev.compatible(params, cfg.bitsPerShard, specs); err != nil {
			return nil, err
		}
		created = prev.CreatedAt
	}
	s.manifest = &Manifest{
		Version:      manifestVersion,
		State:        StateRunning,
		CreatedAt:    created,
		Campaign:     params,
		BitsPerShard: cfg.bitsPerShard,
		Specs:        specs,
	}
	return s, nil
}

// load returns a shard's verified journal record, if any. Any read,
// framing or CRC failure — or a record for a different campaign under
// the same name — counts as "not journaled" and the shard reruns.
func (s *state) load(sh Shard, params campaignParams) (recordMeta, []core.Trial, bool) {
	if !s.enabled() {
		return recordMeta{}, nil, false
	}
	meta, trials, err := readRecord(recordPath(s.journalDir, sh))
	if err != nil {
		return recordMeta{}, nil, false
	}
	if meta.Shard != sh || meta.Campaign != params {
		return recordMeta{}, nil, false
	}
	return meta, trials, true
}

// begin marks the campaign running in the manifest before any shard
// executes, so an interrupted process leaves StateRunning behind as
// evidence.
func (s *state) begin(statuses []ShardStatus) error {
	if !s.enabled() {
		return nil
	}
	s.manifest.Shards = statuses
	return writeManifest(s.manifestPath, s.manifest)
}

// journal persists one completed shard. Safe for concurrent use:
// records are distinct files written atomically.
func (s *state) journal(st ShardStatus, params campaignParams, trials []core.Trial) error {
	return writeRecord(s.journalDir, recordMeta{
		Shard:      st.Shard,
		Campaign:   params,
		Trials:     len(trials),
		DurationNS: st.DurationNS,
		Attempts:   st.Attempts,
	}, trials)
}

// finish records the campaign's final state. Called on every exit path
// that reaches the drain, including cancellation.
func (s *state) finish(rep *Report) error {
	if !s.enabled() {
		return nil
	}
	s.manifest.Shards = rep.Shards
	switch {
	case rep.Cancelled:
		s.manifest.State = StateCancelled
	case rep.Failed > 0:
		s.manifest.State = StatePartial
	default:
		s.manifest.State = StateComplete
	}
	return writeManifest(s.manifestPath, s.manifest)
}
