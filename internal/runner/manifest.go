package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"positres/internal/atomicio"
)

// Campaign states recorded in the manifest.
const (
	// StateRunning is written when a campaign starts; a manifest still
	// in this state on load means the previous process died mid-run.
	StateRunning = "running"
	// StateComplete: every shard journaled successfully.
	StateComplete = "complete"
	// StatePartial: the campaign finished but one or more shards
	// exhausted their retry budget (graceful degradation).
	StatePartial = "partial"
	// StateCancelled: the campaign was interrupted (SIGINT/SIGTERM or
	// parent-context cancellation) after a clean drain.
	StateCancelled = "cancelled"
)

// Shard states recorded in ShardStatus.
const (
	// ShardDone: computed and journaled this run.
	ShardDone = "done"
	// ShardResumed: loaded from a verified journal record of a
	// previous run; not recomputed.
	ShardResumed = "resumed"
	// ShardFailed: exhausted its retry budget.
	ShardFailed = "failed"
	// ShardSkipped: never ran (or was abandoned mid-flight) because
	// the campaign was cancelled first.
	ShardSkipped = "skipped"
)

// ShardStatus is one shard's outcome, serialized into the manifest and
// aggregated into the Report.
type ShardStatus struct {
	Shard
	// State is one of ShardDone, ShardResumed, ShardFailed,
	// ShardSkipped.
	State string `json:"state"`
	// Attempts counts executions including the successful one; 0 for
	// resumed and skipped shards.
	Attempts int `json:"attempts,omitempty"`
	// DurationNS is the compute wall time of the final attempt in
	// nanoseconds (0 for resumed/skipped shards); Duration converts it.
	DurationNS int64 `json:"duration_ns,omitempty"`
	// Error is the final attempt's failure, "" unless State is
	// ShardFailed.
	Error string `json:"error,omitempty"`
}

// Duration returns the shard's recorded compute time.
func (s ShardStatus) Duration() time.Duration { return time.Duration(s.DurationNS) }

// Manifest is the campaign's durable self-description, written
// atomically at start (StateRunning) and at completion. Progress truth
// lives in the journal records; the manifest carries identity (the
// campaign parameters a resume must match), the shard plan, and the
// final outcome for operators and tooling.
type Manifest struct {
	// Version is the manifest schema version (currently 1); loading
	// any other value fails rather than misreading the layout.
	Version int `json:"version"`
	// State is one of StateRunning, StateComplete, StatePartial,
	// StateCancelled.
	State string `json:"state"`
	// CreatedAt is the RFC 3339 UTC time the campaign first started.
	CreatedAt string `json:"created_at"`
	// UpdatedAt is the RFC 3339 UTC time of the last manifest write;
	// rewritten on every write.
	UpdatedAt string `json:"updated_at"`
	// Campaign is the identity a resume must match exactly (seed,
	// trials per bit, zero handling, selection bound).
	Campaign campaignParams `json:"campaign"`
	// BitsPerShard is the sharding granularity the journal was cut at;
	// part of the resume identity.
	BitsPerShard int `json:"bits_per_shard"`
	// Specs is the ordered campaign matrix.
	Specs []Spec `json:"specs"`
	// Shards, present once the run finishes, records every shard
	// outcome in (spec, bit) order.
	Shards []ShardStatus `json:"shards,omitempty"`
}

const manifestVersion = 1

// ErrStateExists is returned when a state directory already holds a
// campaign and Resume was not requested.
var ErrStateExists = errors.New("runner: state directory already holds a campaign; pass Resume to continue it or choose a fresh directory")

// loadManifest reads a manifest if present; a missing file returns
// (nil, nil).
func loadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("runner: manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("runner: manifest %s: unsupported version %d", path, m.Version)
	}
	return &m, nil
}

// writeManifest persists the manifest atomically.
func writeManifest(path string, m *Manifest) error {
	m.UpdatedAt = time.Now().UTC().Format(time.RFC3339)
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: manifest encode: %w", err)
	}
	if err := atomicio.WriteFileBytes(path, append(raw, '\n')); err != nil {
		return fmt.Errorf("runner: manifest: %w", err)
	}
	return nil
}

// compatible verifies that a loaded manifest describes the same
// campaign as the current invocation — resuming with different
// parameters would silently mix incompatible trial streams.
func (m *Manifest) compatible(params campaignParams, bitsPerShard int, specs []Spec) error {
	if m.Campaign != params {
		return fmt.Errorf("runner: journal belongs to a different campaign: params %+v, want %+v", m.Campaign, params)
	}
	if m.BitsPerShard != bitsPerShard {
		return fmt.Errorf("runner: journal was sharded at %d bits/shard, want %d", m.BitsPerShard, bitsPerShard)
	}
	if len(m.Specs) != len(specs) {
		return fmt.Errorf("runner: journal covers %d specs, want %d", len(m.Specs), len(specs))
	}
	for i := range specs {
		if m.Specs[i] != specs[i] {
			return fmt.Errorf("runner: journal spec %d is %+v, want %+v", i, m.Specs[i], specs[i])
		}
	}
	return nil
}
