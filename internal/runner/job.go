package runner

import "path/filepath"

// Job-level API surface: the read-side helpers a supervising layer
// (cmd/positserve's job store, operator tooling) needs to inspect a
// campaign state directory without re-implementing the manifest
// format. The write side stays private — only Run mutates state.

// ReadManifest loads the manifest of the campaign state directory
// dir, i.e. dir/manifest.json. A directory with no manifest returns
// (nil, nil) — "no campaign here" is not an error, it is the normal
// state of a fresh job. A present but unreadable, unparsable or
// version-incompatible manifest returns an error. Safe for concurrent
// use with a running campaign: the manifest is only ever replaced by
// atomic rename, so a reader observes either the previous or the new
// complete document, never a torn one.
func ReadManifest(dir string) (*Manifest, error) {
	return loadManifest(filepath.Join(dir, "manifest.json"))
}

// Outcome maps the report to the manifest state string recorded for
// it: StateCancelled if the run was interrupted, StatePartial if any
// shard failed permanently, StateComplete otherwise. It is the
// single-word answer a job supervisor stores and serves.
func (r *Report) Outcome() string {
	switch {
	case r.Cancelled:
		return StateCancelled
	case r.Failed > 0:
		return StatePartial
	default:
		return StateComplete
	}
}

// ShardsFor returns the number of shards a campaign over a width-bit
// codec is cut into at the given granularity (bitsPerShard <= 0 uses
// the default of 8) — the denominator for progress reporting.
func ShardsFor(width, bitsPerShard int) int {
	if bitsPerShard <= 0 {
		bitsPerShard = 8
	}
	return (width + bitsPerShard - 1) / bitsPerShard
}
