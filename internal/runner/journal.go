package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"positres/internal/atomicio"
	"positres/internal/core"
)

// The journal is a directory of one record file per completed shard.
// Each record is written atomically (temp + fsync + rename via
// internal/atomicio) and carries a CRC over its entire body — the
// on-disk sibling of internal/checkpoint's CRC-guarded snapshots. A
// crash can therefore produce only two observable states per shard:
// a complete, verified record, or nothing. Torn or bit-rotted records
// fail the CRC and are treated as absent, so a resumed campaign
// recomputes exactly the missing work.
//
// Record layout (see docs/RESILIENCE.md):
//
//	line 1:  PJR1 <crc32-ieee hex of body> <body length in bytes>
//	body:    one JSON meta line (shard identity, campaign params,
//	         trial count, duration, attempts), then the shard's
//	         trials in core CSV form.
const recordMagic = "PJR1"

// recordMeta is the self-describing header of a journal record.
type recordMeta struct {
	Shard      Shard          `json:"shard"`
	Campaign   campaignParams `json:"campaign"`
	Trials     int            `json:"trials"`
	DurationNS int64          `json:"duration_ns"`
	Attempts   int            `json:"attempts"`
}

// recordPath returns the journal file for a shard.
func recordPath(journalDir string, sh Shard) string {
	return filepath.Join(journalDir, sh.ID()+".rec")
}

// writeRecord journals a completed shard atomically.
func writeRecord(journalDir string, meta recordMeta, trials []core.Trial) error {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("runner: journal meta: %w", err)
	}
	var body bytes.Buffer
	body.Write(metaJSON)
	body.WriteByte('\n')
	if err := core.WriteTrialsCSV(&body, trials); err != nil {
		return fmt.Errorf("runner: journal payload: %w", err)
	}
	path := recordPath(journalDir, meta.Shard)
	return atomicio.WriteFile(path, func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "%s %08x %d\n", recordMagic, crc32.ChecksumIEEE(body.Bytes()), body.Len()); err != nil {
			return err
		}
		_, err := w.Write(body.Bytes())
		return err
	})
}

// readRecord loads and verifies one journal record. Any framing, CRC,
// length or parse failure is returned as an error; callers treat a bad
// record as "shard not done" and recompute it.
func readRecord(path string) (recordMeta, []core.Trial, error) {
	var meta recordMeta
	f, err := os.Open(path)
	if err != nil {
		return meta, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	header, err := br.ReadString('\n')
	if err != nil {
		return meta, nil, fmt.Errorf("runner: record %s: header: %w", path, err)
	}
	var crc uint32
	var n int
	if _, err := fmt.Sscanf(header, recordMagic+" %08x %d\n", &crc, &n); err != nil {
		return meta, nil, fmt.Errorf("runner: record %s: bad header %q", path, header)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return meta, nil, fmt.Errorf("runner: record %s: truncated body: %w", path, err)
	}
	// A record must end exactly where its header says.
	if _, err := br.ReadByte(); err != io.EOF {
		return meta, nil, fmt.Errorf("runner: record %s: trailing bytes after declared body", path)
	}
	if got := crc32.ChecksumIEEE(body); got != crc {
		return meta, nil, fmt.Errorf("runner: record %s: crc mismatch (have %08x, want %08x)", path, got, crc)
	}
	nl := bytes.IndexByte(body, '\n')
	if nl < 0 {
		return meta, nil, fmt.Errorf("runner: record %s: missing meta line", path)
	}
	if err := json.Unmarshal(body[:nl], &meta); err != nil {
		return meta, nil, fmt.Errorf("runner: record %s: meta: %w", path, err)
	}
	trials, err := core.ReadTrialsCSV(bytes.NewReader(body[nl+1:]))
	if err != nil {
		return meta, nil, fmt.Errorf("runner: record %s: payload: %w", path, err)
	}
	if len(trials) != meta.Trials {
		return meta, nil, fmt.Errorf("runner: record %s: %d trials, meta says %d", path, len(trials), meta.Trials)
	}
	return meta, trials, nil
}
