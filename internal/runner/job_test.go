package runner

import (
	"context"
	"testing"

	"positres/internal/spec"
)

// tinyConfig returns a fast durable campaign config for job-API tests.
func tinyConfig(dir string) Config {
	return Config{
		Spec: &spec.CampaignSpec{
			Fields:       []string{"CESM/CLOUD"},
			Formats:      []string{"posit8"},
			N:            256,
			Seed:         1,
			TrialsPerBit: 2,
		},
		Dir:     dir,
		Workers: 2,
	}
}

func TestReadManifest(t *testing.T) {
	dir := t.TempDir()

	// A fresh directory has no manifest — and that is not an error.
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest(empty) error: %v", err)
	}
	if m != nil {
		t.Fatalf("ReadManifest(empty) = %+v, want nil", m)
	}

	cfg := tinyConfig(dir)
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Complete() {
		t.Fatalf("campaign not complete: %+v", rep)
	}

	m, err = ReadManifest(dir)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m == nil {
		t.Fatal("ReadManifest returned nil after a completed run")
	}
	if m.State != StateComplete {
		t.Fatalf("manifest state = %q, want %q", m.State, StateComplete)
	}
	want := Spec{Field: "CESM/CLOUD", Codec: "posit8", N: 256, Seed: 1}
	if len(m.Specs) != 1 || m.Specs[0] != want {
		t.Fatalf("manifest specs = %+v, want %+v", m.Specs, want)
	}
	if m.State != rep.Outcome() {
		t.Fatalf("manifest state %q != report outcome %q", m.State, rep.Outcome())
	}
}

func TestReportOutcome(t *testing.T) {
	cases := []struct {
		rep  Report
		want string
	}{
		{Report{}, StateComplete},
		{Report{Failed: 1}, StatePartial},
		{Report{Cancelled: true}, StateCancelled},
		{Report{Cancelled: true, Failed: 3}, StateCancelled},
	}
	for _, c := range cases {
		if got := c.rep.Outcome(); got != c.want {
			t.Errorf("Outcome(%+v) = %q, want %q", c.rep, got, c.want)
		}
	}
}

func TestShardsFor(t *testing.T) {
	cases := []struct{ width, per, want int }{
		{8, 8, 1},
		{16, 8, 2},
		{32, 8, 4},
		{32, 5, 7},
		{16, 4, 4},
		{32, 0, 4}, // 0 means the default granularity of 8
	}
	for _, c := range cases {
		if got := ShardsFor(c.width, c.per); got != c.want {
			t.Errorf("ShardsFor(%d, %d) = %d, want %d", c.width, c.per, got, c.want)
		}
	}
}
