package runner

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
	"positres/internal/spec"
	"positres/internal/telemetry"
)

// testSpec is the canonical test campaign: a 2×2 Fields × Formats
// cross product, small enough to run in milliseconds.
func testSpec() *spec.CampaignSpec {
	return &spec.CampaignSpec{
		Fields:       []string{"CESM/CLOUD", "HACC/vx"},
		Formats:      []string{"posit16", "ieee32"},
		N:            400,
		TrialsPerBit: 5,
		Seed:         7,
		BitsPerShard: 4,
	}
}

// 2 fields × (16/4 + 32/4) shards for testSpec at 4 bits per shard.
const testShardTotal = 2 * (4 + 8)

func testCfg(dir string) Config {
	return Config{
		Spec:    testSpec(),
		Dir:     dir,
		Workers: 2,
		// Tests never want real backoff waits unless they say so.
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
}

// singleShardCfg is a one-shard campaign (posit8, 8 bits per shard)
// for retry/watchdog tests that need exactly one unit of work.
func singleShardCfg() Config {
	cfg := testCfg("")
	cfg.Workers = 1
	cfg.Spec = &spec.CampaignSpec{
		Fields:       []string{"CESM/CLOUD"},
		Formats:      []string{"posit8"},
		N:            200,
		TrialsPerBit: 5,
		Seed:         7,
		BitsPerShard: 8,
	}
	return cfg
}

// renderCSV gives the byte-exact CSV a campaign result would publish —
// the artifact the resume-equivalence guarantee is stated over.
func renderCSV(t *testing.T, res *core.Result) []byte {
	t.Helper()
	if res == nil {
		t.Fatal("missing result for a spec that should be complete")
	}
	var buf bytes.Buffer
	if err := core.WriteTrialsCSV(&buf, res.Trials); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpecsOf pins the expansion order (Fields-major) and the codec
// name canonicalization — shard plans and journal filenames depend on
// both.
func TestSpecsOf(t *testing.T) {
	cs := testSpec()
	if verr := cs.Validate(); verr != nil {
		t.Fatal(verr)
	}
	specs := SpecsOf(cs)
	want := []Spec{
		{Field: "CESM/CLOUD", Codec: "posit16", N: 400, Seed: 7},
		{Field: "CESM/CLOUD", Codec: "ieee32", N: 400, Seed: 7},
		{Field: "HACC/vx", Codec: "posit16", N: 400, Seed: 7},
		{Field: "HACC/vx", Codec: "ieee32", N: 400, Seed: 7},
	}
	if len(specs) != len(want) {
		t.Fatalf("SpecsOf returned %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
}

// TestResumeEquivalence is the acceptance test for the durable runner:
// a campaign interrupted mid-flight and resumed must produce CSVs
// byte-identical to an uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	// Reference: one uninterrupted, non-durable run.
	ref, err := Run(context.Background(), testCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Complete() {
		t.Fatalf("reference run not complete: %+v", ref)
	}

	// Interrupted run: cancel the campaign after two shards journal.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := testCfg(dir)
	var done int32
	cfg.OnShardDone = func(st ShardStatus) {
		if st.State == ShardDone && atomic.AddInt32(&done, 1) == 2 {
			cancel()
		}
	}
	rep1, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Cancelled {
		t.Fatal("interrupted run not marked cancelled")
	}
	if rep1.Completed < 2 || rep1.Skipped == 0 {
		t.Fatalf("unexpected interrupt profile: %+v", rep1)
	}
	m, err := loadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil || m == nil {
		t.Fatalf("manifest after interrupt: %v", err)
	}
	if m.State != StateCancelled {
		t.Fatalf("manifest state %q, want %q", m.State, StateCancelled)
	}
	recs, err := filepath.Glob(filepath.Join(dir, "journal", "*.rec"))
	if err != nil || len(recs) != rep1.Completed {
		t.Fatalf("journal holds %d records (err %v), want %d", len(recs), err, rep1.Completed)
	}

	// Resume: only the missing shards run; final CSVs are identical.
	cfg2 := testCfg(dir)
	cfg2.Resume = true
	rep2, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Complete() {
		t.Fatalf("resumed run not complete: %+v", rep2)
	}
	if rep2.Resumed != rep1.Completed {
		t.Fatalf("resumed %d shards, want %d", rep2.Resumed, rep1.Completed)
	}
	if rep2.Completed != testShardTotal-rep1.Completed {
		t.Fatalf("recomputed %d shards, want %d", rep2.Completed, testShardTotal-rep1.Completed)
	}
	for i := range rep2.Specs {
		got, want := renderCSV(t, rep2.Results[i]), renderCSV(t, ref.Results[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("spec %s: resumed CSV differs from uninterrupted run", rep2.Specs[i].Key())
		}
	}
	m, err = loadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil || m == nil || m.State != StateComplete {
		t.Fatalf("final manifest state: %+v (err %v)", m, err)
	}
}

// TestExistingStateRefusedWithoutResume: a populated state directory
// is never silently overwritten.
func TestExistingStateRefusedWithoutResume(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), testCfg(dir)); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), testCfg(dir))
	if !errors.Is(err, ErrStateExists) {
		t.Fatalf("err = %v, want ErrStateExists", err)
	}
}

// TestResumeParamMismatch: resuming with different campaign parameters
// or a different matrix is rejected — it would splice incompatible
// trial streams into one output.
func TestResumeParamMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), testCfg(dir)); err != nil {
		t.Fatal(err)
	}

	cfg := testCfg(dir)
	cfg.Resume = true
	cfg.Spec.TrialsPerBit = 9
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("resume with different TrialsPerBit must fail")
	}

	cfg = testCfg(dir)
	cfg.Resume = true
	cfg.Spec.BitsPerShard = 8
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("resume with different shard granularity must fail")
	}

	cfg = testCfg(dir)
	cfg.Resume = true
	cfg.Spec.Fields = cfg.Spec.Fields[:1]
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("resume with a different spec matrix must fail")
	}
}

// TestCorruptRecordRecomputed: a journal record that fails CRC (here: a
// flipped payload byte) is treated as absent, and only that shard is
// recomputed — with output still identical to a clean run.
func TestCorruptRecordRecomputed(t *testing.T) {
	dir := t.TempDir()
	ref, err := Run(context.Background(), testCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	refCSVs := make([][]byte, len(ref.Specs))
	for i := range ref.Specs {
		refCSVs[i] = renderCSV(t, ref.Results[i])
	}

	recs, err := filepath.Glob(filepath.Join(dir, "journal", "*.rec"))
	if err != nil || len(recs) != testShardTotal {
		t.Fatalf("journal holds %d records (err %v)", len(recs), err)
	}
	raw, err := os.ReadFile(recs[3])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(recs[3], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := testCfg(dir)
	cfg.Resume = true
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() || rep.Completed != 1 || rep.Resumed != testShardTotal-1 {
		t.Fatalf("corrupt-record resume profile: %+v", rep)
	}
	for i := range rep.Specs {
		if !bytes.Equal(renderCSV(t, rep.Results[i]), refCSVs[i]) {
			t.Fatalf("spec %s: CSV differs after corrupt-record recovery", rep.Specs[i].Key())
		}
	}
}

// TestRetryBackoff: transient shard faults are retried with
// exponential backoff until they clear.
func TestRetryBackoff(t *testing.T) {
	cfg := singleShardCfg()
	three := 3
	cfg.Spec.MaxRetries = &three
	cfg.RetryBaseDelay = 10 * time.Millisecond
	var delays []time.Duration
	cfg.Sleep = func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return ctx.Err()
	}
	var attempts int32
	cfg.FaultHook = func(sh Shard, attempt int) error {
		atomic.AddInt32(&attempts, 1)
		if attempt <= 2 {
			return errors.New("injected transient fault")
		}
		return nil
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("report not complete: %+v", rep.Shards)
	}
	if got := atomic.LoadInt32(&attempts); got != 3 {
		t.Fatalf("hook saw %d attempts, want 3", got)
	}
	if rep.Shards[0].Attempts != 3 {
		t.Fatalf("shard records %d attempts, want 3", rep.Shards[0].Attempts)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("backoff delays %v, want %v", delays, want)
	}
}

// TestExecuteHook: a Config.Execute campaign (the distributed path)
// routes every shard through the hook — never through local compute —
// under the same retry machinery, and produces trials byte-identical
// to a local run when the executor is faithful.
func TestExecuteHook(t *testing.T) {
	ref, err := Run(context.Background(), testCfg(""))
	if err != nil {
		t.Fatal(err)
	}

	cfg := testCfg("")
	var calls int32
	var failedOnce atomic.Bool
	ccfg := core.ConfigFromSpec(cfg.Spec)
	cfg.Execute = func(ctx context.Context, sh Shard) ([]core.Trial, error) {
		atomic.AddInt32(&calls, 1)
		if !failedOnce.Swap(true) {
			return nil, errors.New("injected remote fault") // first dispatch fails; retry reassigns
		}
		// A faithful remote executor: recompute the shard from its
		// identity alone, as a worker process would.
		codec, err := numfmt.Lookup(sh.Codec)
		if err != nil {
			return nil, err
		}
		field, err := sdrbench.Lookup(sh.Field)
		if err != nil {
			return nil, err
		}
		data := sdrbench.ToFloat64(field.Generate(sh.N, sh.Seed))
		return core.RunRange(ctx, ccfg, codec, sh.Field, data, sh.BitLo, sh.BitHi)
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("execute-hook run not complete: %+v", rep.Shards)
	}
	if got := atomic.LoadInt32(&calls); got != testShardTotal+1 {
		t.Fatalf("Execute called %d times, want %d (every shard + one retry)", got, testShardTotal+1)
	}
	for i := range rep.Specs {
		if !bytes.Equal(renderCSV(t, rep.Results[i]), renderCSV(t, ref.Results[i])) {
			t.Fatalf("spec %s: Execute-hook CSV differs from local run", rep.Specs[i].Key())
		}
	}
}

// TestRetryExhaustedPartial: a shard that never recovers is recorded
// as failed, the rest of the campaign completes, and the run reports
// partial — graceful degradation instead of a crash.
func TestRetryExhaustedPartial(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(dir)
	one := 1
	cfg.Spec.MaxRetries = &one
	cfg.FaultHook = func(sh Shard, attempt int) error {
		if sh.Field == "CESM/CLOUD" && sh.Codec == "posit16" && sh.BitLo == 0 {
			return errors.New("injected permanent fault")
		}
		return nil
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial() || rep.Failed != 1 || rep.Completed != testShardTotal-1 {
		t.Fatalf("partial profile: failed=%d completed=%d cancelled=%v", rep.Failed, rep.Completed, rep.Cancelled)
	}
	if rep.Results[0] != nil {
		t.Fatal("spec with a failed shard must have no assembled result")
	}
	if rep.Results[1] == nil {
		t.Fatal("unaffected spec must still complete")
	}
	var failed *ShardStatus
	for i := range rep.Shards {
		if rep.Shards[i].State == ShardFailed {
			failed = &rep.Shards[i]
		}
	}
	if failed == nil {
		t.Fatal("no failed shard in report")
	}
	if failed.Attempts != 2 || !strings.Contains(failed.Error, "after 2 attempts") {
		t.Fatalf("failed shard: attempts=%d error=%q", failed.Attempts, failed.Error)
	}
	m, err := loadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil || m == nil || m.State != StatePartial {
		t.Fatalf("manifest state: %+v (err %v)", m, err)
	}

	// The failed shard is not journaled, so a later resume (faults
	// cleared) finishes the campaign and heals the manifest.
	cfg2 := testCfg(dir)
	cfg2.Resume = true
	rep2, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Complete() || rep2.Completed != 1 || rep2.Resumed != testShardTotal-1 {
		t.Fatalf("healing resume profile: %+v", rep2)
	}
}

// TestWatchdogTimeout: a hung shard attempt is abandoned at the
// spec's shard_timeout and retried; the retry succeeds while the
// campaign context stays live.
func TestWatchdogTimeout(t *testing.T) {
	cfg := singleShardCfg()
	one := 1
	cfg.Spec.MaxRetries = &one
	cfg.Spec.ShardTimeout = "25ms"
	release := make(chan struct{})
	cfg.FaultHook = func(sh Shard, attempt int) error {
		if attempt == 1 {
			<-release // simulate a hang well past the watchdog
		}
		return nil
	}
	defer close(release)
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("report not complete: %+v", rep.Shards)
	}
	if rep.Shards[0].Attempts != 2 {
		t.Fatalf("shard took %d attempts, want 2 (watchdog retry)", rep.Shards[0].Attempts)
	}
}

// TestRunnerPreCancelled: a pre-cancelled context produces a cancelled
// report with every shard skipped and a valid cancelled manifest —
// nothing runs, nothing is half-written.
func TestRunnerPreCancelled(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, testCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Cancelled || rep.Completed != 0 || rep.Skipped != testShardTotal {
		t.Fatalf("pre-cancelled profile: %+v", rep)
	}
	m, err := loadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil || m == nil || m.State != StateCancelled {
		t.Fatalf("manifest state: %+v (err %v)", m, err)
	}
}

// TestRunSpecValidation: malformed campaign specs fail before touching
// state, carrying the stable spec error codes.
func TestRunSpecValidation(t *testing.T) {
	cases := map[string]*spec.CampaignSpec{
		"nil spec":       nil,
		"empty fields":   {Formats: []string{"posit32"}},
		"empty formats":  {Fields: []string{"CESM/CLOUD"}},
		"unknown field":  {Fields: []string{"No/Such"}, Formats: []string{"posit32"}},
		"unknown codec":  {Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit33"}},
		"negative N":     {Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit32"}, N: -1},
		"duplicate pair": {Fields: []string{"CESM/CLOUD"}, Formats: []string{"posit32", "posit32"}},
	}
	for name, cs := range cases {
		cfg := testCfg("")
		cfg.Spec = cs
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run should fail", name)
		}
	}
}

// TestRunnerTelemetry: the metrics threaded through Config must
// reconcile exactly with the Report — shard tallies, injection
// counts (shards × bits × trials), latency histogram population,
// retry/backoff counts — and a resumed run must count resumed shards
// without re-counting the first run's retries.
func TestRunnerTelemetry(t *testing.T) {
	dir := t.TempDir()

	cfg := testCfg(dir)
	cfg.Metrics = telemetry.New()
	// One transient failure on a single shard to exercise retry and
	// backoff accounting.
	var faulted atomic.Bool
	cfg.FaultHook = func(sh Shard, attempt int) error {
		if attempt == 1 && !faulted.Swap(true) {
			return errors.New("transient")
		}
		return nil
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("campaign not complete: %+v", rep)
	}
	s := cfg.Metrics.Snapshot()
	if s.ShardsDone != int64(testShardTotal) {
		t.Errorf("ShardsDone = %d, want %d", s.ShardsDone, testShardTotal)
	}
	// testSpec: 2 fields × (posit16 + ieee32) bits, 5 trials/bit.
	wantBits := int64(2 * (16 + 32))
	if s.Injections != wantBits*5 {
		t.Errorf("Injections = %d, want %d", s.Injections, wantBits*5)
	}
	if s.BitsDone != wantBits {
		t.Errorf("BitsDone = %d, want %d", s.BitsDone, wantBits)
	}
	if s.ShardLatency.Count != int64(testShardTotal) {
		t.Errorf("latency histogram count = %d, want %d", s.ShardLatency.Count, testShardTotal)
	}
	if s.Retries != 1 || s.Backoffs != 1 {
		t.Errorf("Retries/Backoffs = %d/%d, want 1/1", s.Retries, s.Backoffs)
	}
	if s.Workers != 2 {
		t.Errorf("Workers = %d, want 2", s.Workers)
	}
	if s.WorkerBusyNS <= 0 {
		t.Error("WorkerBusyNS not accumulated")
	}

	// Resume the finished campaign: every shard loads from the
	// journal, so the new metric set must count only resumed shards.
	cfg2 := testCfg(dir)
	cfg2.Resume = true
	cfg2.Metrics = telemetry.New()
	rep2, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != testShardTotal {
		t.Fatalf("resumed = %d, want %d", rep2.Resumed, testShardTotal)
	}
	s2 := cfg2.Metrics.Snapshot()
	if s2.ShardsResumed != int64(testShardTotal) {
		t.Errorf("ShardsResumed = %d, want %d", s2.ShardsResumed, testShardTotal)
	}
	if s2.ShardsDone != 0 || s2.Injections != 0 || s2.Retries != 0 {
		t.Errorf("resumed run recomputed work: done=%d injections=%d retries=%d",
			s2.ShardsDone, s2.Injections, s2.Retries)
	}
}

func TestShardIDStable(t *testing.T) {
	sh := Shard{Spec: Spec{Field: "CESM/CLOUD", Codec: "posit16"}, BitLo: 4, BitHi: 8}
	if got, want := sh.ID(), "CESM_CLOUD.posit16.b04-08"; got != want {
		t.Fatalf("ID = %q, want %q", got, want)
	}
}

// TestBackoffSchedule pins the exported backoff curve the coordinator
// shares: doubling from base, capped at 30s.
func TestBackoffSchedule(t *testing.T) {
	base := 50 * time.Millisecond
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for i, w := range want {
		if got := Backoff(base, i+1); got != w {
			t.Errorf("Backoff(%v, %d) = %v, want %v", base, i+1, got, w)
		}
	}
	if got := Backoff(base, 30); got != 30*time.Second {
		t.Errorf("Backoff cap = %v, want 30s", got)
	}
}

// TestRecordRoundTrip: journal records survive write/read with exact
// meta and trial content, and reject truncation.
func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trials, err := core.RunRange(context.Background(), core.DefaultConfig(), mustCodecT(t, "posit16"), "CESM/CLOUD", []float64{1.5, -2.25, 3.75}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	meta := recordMeta{
		Shard:      Shard{Spec: Spec{Field: "CESM/CLOUD", Codec: "posit16", N: 3, Seed: 7}, BitLo: 0, BitHi: 4},
		Campaign:   paramsOf(core.DefaultConfig()),
		Trials:     len(trials),
		DurationNS: 12345,
		Attempts:   2,
	}
	if err := writeRecord(dir, meta, trials); err != nil {
		t.Fatal(err)
	}
	path := recordPath(dir, meta.Shard)
	got, gotTrials, err := readRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta || len(gotTrials) != len(trials) {
		t.Fatalf("round trip: meta %+v, %d trials", got, len(gotTrials))
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readRecord(path); err == nil {
		t.Fatal("truncated record must not verify")
	}
}

func mustCodecT(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestJitteredBackoff: the jittered schedule is deterministic for a
// given (key, attempt), bounded to [0.75, 1.25) of the base schedule,
// and actually spreads distinct keys apart (the thundering-herd guard).
func TestJitteredBackoff(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		plain := Backoff(base, attempt)
		for _, key := range []string{"http://w1", "http://w2", "http://w3"} {
			d1 := JitteredBackoff(base, attempt, key)
			d2 := JitteredBackoff(base, attempt, key)
			if d1 != d2 {
				t.Fatalf("jitter not deterministic for (%s, %d): %v vs %v", key, attempt, d1, d2)
			}
			lo := time.Duration(float64(plain) * 0.75)
			hi := time.Duration(float64(plain) * 1.25)
			if d1 < lo || d1 >= hi {
				t.Fatalf("jitter %v for (%s, %d) outside [%v, %v)", d1, key, attempt, lo, hi)
			}
		}
	}
	// Distinct keys must not collapse onto one delay.
	seen := map[time.Duration]bool{}
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[JitteredBackoff(base, 2, key)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("8 keys produced only %d distinct delays: %v", len(seen), seen)
	}
}
