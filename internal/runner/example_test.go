package runner_test

// Runnable godoc examples for durable job submission. These compile
// and execute under `go test`, so the snippets embedded in
// docs/SERVICE.md and docs/RESILIENCE.md cannot rot.

import (
	"context"
	"fmt"
	"os"

	"positres/internal/core"
	"positres/internal/runner"
)

// ExampleRun submits a tiny durable campaign job: one (field, codec)
// spec, journaled under a state directory so an interrupted run could
// be resumed with Config.Resume. The output is deterministic because
// every trial draws from a PRNG stream keyed by (seed, field, codec,
// bit, trial).
func ExampleRun() {
	dir, err := os.MkdirTemp("", "runner-example")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)

	cfg := runner.Config{
		Campaign: core.Config{Seed: 1, TrialsPerBit: 2, SkipZeros: true},
		Dir:      dir, // journal + manifest live here; "" would disable durability
		Workers:  2,
	}
	specs := []runner.Spec{{Field: "CESM/CLOUD", Codec: "posit8", N: 256, Seed: 1}}

	rep, err := runner.Run(context.Background(), cfg, specs)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("outcome:", rep.Outcome())
	fmt.Println("shards completed:", rep.Completed)
	fmt.Println("trials:", len(rep.Results[0].Trials))

	// The manifest a supervisor would poll:
	man, err := runner.ReadManifest(dir)
	if err != nil {
		fmt.Println("manifest:", err)
		return
	}
	fmt.Println("manifest state:", man.State)
	// Output:
	// outcome: complete
	// shards completed: 1
	// trials: 16
	// manifest state: complete
}
