package runner_test

// Runnable godoc examples for durable job submission. These compile
// and execute under `go test`, so the snippets embedded in
// docs/SERVICE.md and docs/RESILIENCE.md cannot rot.

import (
	"context"
	"fmt"
	"os"

	"positres/internal/runner"
	"positres/internal/spec"
)

// ExampleRun submits a tiny durable campaign job: one canonical
// CampaignSpec expanded to a single (field, codec) pair, journaled
// under a state directory so an interrupted run could be resumed with
// Config.Resume. The output is deterministic because every trial
// draws from a PRNG stream keyed by (seed, field, codec, bit, trial).
func ExampleRun() {
	dir, err := os.MkdirTemp("", "runner-example")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)

	cfg := runner.Config{
		Spec: &spec.CampaignSpec{
			Fields:       []string{"CESM/CLOUD"},
			Formats:      []string{"posit8"},
			N:            256,
			Seed:         1,
			TrialsPerBit: 2,
		},
		Dir:     dir, // journal + manifest live here; "" would disable durability
		Workers: 2,
	}

	rep, err := runner.Run(context.Background(), cfg)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("outcome:", rep.Outcome())
	fmt.Println("shards completed:", rep.Completed)
	fmt.Println("trials:", len(rep.Results[0].Trials))

	// The manifest a supervisor would poll:
	man, err := runner.ReadManifest(dir)
	if err != nil {
		fmt.Println("manifest:", err)
		return
	}
	fmt.Println("manifest state:", man.State)
	// Output:
	// outcome: complete
	// shards completed: 1
	// trials: 16
	// manifest state: complete
}
