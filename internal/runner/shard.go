package runner

import (
	"fmt"
	"strings"

	"positres/internal/core"
)

// Spec is one (field, codec) campaign of a sweep — the durable
// equivalent of core.MatrixJob, expressed with registry names instead
// of live values so it serializes into the manifest and journal.
type Spec struct {
	Field string `json:"field"` // sdrbench key, e.g. "CESM/CLOUD"
	Codec string `json:"codec"` // numfmt name, e.g. "posit32"
	N     int    `json:"n"`     // synthetic elements to generate
	Seed  uint64 `json:"seed"`  // data-generation seed
}

// Key returns the canonical "Field codec" identity of the spec.
func (s Spec) Key() string { return s.Field + " " + s.Codec }

// Shard is the unit of durable progress: one spec restricted to a bit
// range [BitLo, BitHi). Because core's PRNG streams are keyed by
// (seed, field, codec, bit, trial), a shard's trials are identical
// whether computed inside a full campaign or in isolation after a
// restart — the property TestResumeEquivalence pins.
type Shard struct {
	Spec
	BitLo int `json:"bit_lo"` // first bit position covered (inclusive)
	BitHi int `json:"bit_hi"` // one past the last bit position (exclusive)
}

// ID returns the shard's stable, filesystem-safe identifier, used as
// the journal record filename and in the manifest.
func (s Shard) ID() string {
	field := strings.NewReplacer("/", "_", " ", "_").Replace(s.Field)
	return fmt.Sprintf("%s.%s.b%02d-%02d", field, s.Codec, s.BitLo, s.BitHi)
}

// shardsFor splits a spec's bit space [0, width) into consecutive
// ranges of at most bitsPerShard bits.
func shardsFor(spec Spec, width, bitsPerShard int) []Shard {
	var out []Shard
	for lo := 0; lo < width; lo += bitsPerShard {
		hi := lo + bitsPerShard
		if hi > width {
			hi = width
		}
		out = append(out, Shard{Spec: spec, BitLo: lo, BitHi: hi})
	}
	return out
}

// campaignParams is the subset of core.Config that defines campaign
// identity: two runs agree bit-for-bit iff these match (worker count
// and scheduling deliberately excluded — they do not affect results).
type campaignParams struct {
	Seed              uint64 `json:"seed"`
	TrialsPerBit      int    `json:"trials_per_bit"`
	SkipZeros         bool   `json:"skip_zeros"`
	MaxSelectAttempts int    `json:"max_select_attempts"`
}

func paramsOf(cfg core.Config) campaignParams {
	p := campaignParams{
		Seed:              cfg.Seed,
		TrialsPerBit:      cfg.TrialsPerBit,
		SkipZeros:         cfg.SkipZeros,
		MaxSelectAttempts: cfg.MaxSelectAttempts,
	}
	if p.MaxSelectAttempts <= 0 {
		p.MaxSelectAttempts = 64 // core.RunRange's own default
	}
	return p
}
