package runner

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"positres/internal/core"
	"positres/internal/store"
)

// TestSinkStreamsCampaign is the acceptance test for the store sink:
// a campaign streamed through a store.CampaignWriter must publish
// CSVs byte-identical to the in-memory slab path, per-bit aggregates
// matching core.AggregateByBit, and Results that keep identity and
// baseline while carrying no trial slab.
func TestSinkStreamsCampaign(t *testing.T) {
	ref, err := Run(context.Background(), testCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Complete() {
		t.Fatalf("reference run incomplete: %+v", ref)
	}

	dir := t.TempDir()
	cw := store.NewCampaignWriter(dir)
	defer cw.Abort()
	cfg := testCfg("")
	cfg.Sink = cw
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("sink run incomplete: %+v", rep)
	}

	for i, sp := range rep.Specs {
		res := rep.Results[i]
		if res == nil {
			t.Fatalf("%s: no result", sp.Key())
		}
		if res.Trials != nil {
			t.Fatalf("%s: sink run still holds %d trials in the Result", sp.Key(), len(res.Trials))
		}
		if res.Field != sp.Field || res.Codec != sp.Codec || res.N != ref.Results[i].N {
			t.Fatalf("%s: result identity %+v", sp.Key(), res)
		}
		if res.Baseline != ref.Results[i].Baseline {
			t.Fatalf("%s: baseline drifted", sp.Key())
		}
		if err := cw.Seal(sp.Field, sp.Codec); err != nil {
			t.Fatal(err)
		}
		r, err := store.Open(filepath.Join(dir, store.FileName(sp.Field, sp.Codec)))
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := r.RenderCSV(&got); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if want := renderCSV(t, ref.Results[i]); !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%s: store CSV differs from slab CSV (%d vs %d bytes)",
				sp.Key(), got.Len(), len(want))
		}
	}
}

// TestSinkFedOnResume pins that journal-resumed shards flow through
// the sink too: run durably without a sink, then resume with one —
// every shard arrives via the journal and the store must still equal
// the reference CSV.
func TestSinkFedOnResume(t *testing.T) {
	stateDir := t.TempDir()
	first, err := Run(context.Background(), testCfg(stateDir))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Complete() {
		t.Fatalf("seed run incomplete: %+v", first)
	}

	storeDir := t.TempDir()
	cw := store.NewCampaignWriter(storeDir)
	defer cw.Abort()
	cfg := testCfg(stateDir)
	cfg.Resume = true
	cfg.Sink = cw
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != testShardTotal || rep.Completed != 0 {
		t.Fatalf("resumed %d completed %d, want all %d resumed", rep.Resumed, rep.Completed, testShardTotal)
	}
	for i, sp := range rep.Specs {
		if rep.Results[i] == nil || rep.Results[i].Trials != nil {
			t.Fatalf("%s: resumed sink result %+v", sp.Key(), rep.Results[i])
		}
		if err := cw.Seal(sp.Field, sp.Codec); err != nil {
			t.Fatal(err)
		}
		r, err := store.Open(filepath.Join(storeDir, store.FileName(sp.Field, sp.Codec)))
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := r.RenderCSV(&got); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if want := renderCSV(t, first.Results[i]); !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%s: resumed store CSV differs from original", sp.Key())
		}
	}
}

// failingSink rejects every shard of one codec, accepting the rest.
type failingSink struct {
	rejectCodec string
	accepted    int
}

func (s *failingSink) AppendShard(field, codec string, bitLo, bitHi int, trials []core.Trial) error {
	if codec == s.rejectCodec {
		return fmt.Errorf("synthetic sink refusal for %s", codec)
	}
	s.accepted++
	return nil
}

// TestSinkFailureFailsShardNotCampaign pins graceful degradation: a
// sink that rejects one codec's shards costs those shards (and their
// specs' results), while every other spec completes normally.
func TestSinkFailureFailsShardNotCampaign(t *testing.T) {
	sink := &failingSink{rejectCodec: "ieee32"}
	cfg := testCfg("")
	cfg.Sink = sink
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial() {
		t.Fatalf("want a partial campaign, got %+v", rep)
	}
	wantFailed := 2 * 8 // two ieee32 specs × 8 shards each
	if rep.Failed != wantFailed || rep.Completed != testShardTotal-wantFailed {
		t.Fatalf("failed %d completed %d, want %d/%d", rep.Failed, rep.Completed, wantFailed, testShardTotal-wantFailed)
	}
	if sink.accepted != testShardTotal-wantFailed {
		t.Fatalf("sink accepted %d shards, want %d", sink.accepted, testShardTotal-wantFailed)
	}
	for i, sp := range rep.Specs {
		res := rep.Results[i]
		if sp.Codec == "ieee32" {
			if res != nil {
				t.Fatalf("%s: result for a spec with failed shards", sp.Key())
			}
			continue
		}
		if res == nil || res.Trials != nil {
			t.Fatalf("%s: %+v", sp.Key(), res)
		}
	}
	for _, st := range rep.Shards {
		if st.Codec == "ieee32" {
			if st.State != ShardFailed || !strings.Contains(st.Error, "sink:") {
				t.Fatalf("shard %s: %+v", st.ID(), st)
			}
		}
	}
}
