// Package runner is the durable campaign orchestration layer: it
// expands the canonical spec.CampaignSpec into a (field, codec)
// matrix, shards it into bit-range work units, journals every
// completed shard to disk with CRC-guarded atomic record writes, and
// replays only the missing shards after a crash, SIGINT or node
// preemption. Because internal/core draws every random choice from a
// PRNG stream keyed by (seed, field, codec, bit, trial), a resumed
// campaign is bit-identical to an uninterrupted one — the on-disk
// counterpart of the checkpoint/restart protection scheme the paper
// cites (refs [37], [23]), applied to the experiment harness itself.
//
// Robustness properties, each pinned by a test in runner_test.go:
//
//   - cancellation: ctx cancellation (e.g. from signal.NotifyContext)
//     drains the shard pool; completed shards stay journaled, in-flight
//     shards are discarded, and the manifest records "cancelled";
//   - watchdog: a per-shard timeout abandons a stuck attempt and
//     retries it;
//   - bounded retry: transient shard failures back off exponentially
//     up to the spec's retry budget; a shard that exhausts it is
//     recorded as failed and the campaign completes the rest (graceful
//     degradation to a "partial" outcome instead of a crash).
//
// The same watchdog/retry/backoff machinery drives distributed runs:
// positserve's coordinator supplies Config.Execute to ship each shard
// to a remote worker, so a dead or slow worker is just a failed
// attempt — backed off, retried, and reassigned like any local fault.
package runner

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"positres/internal/core"
	"positres/internal/numfmt"
	"positres/internal/sdrbench"
	"positres/internal/spec"
	"positres/internal/stats"
	"positres/internal/telemetry"
)

// Config parameterizes a durable campaign run. The campaign itself —
// what to compute — lives entirely in Spec; the remaining fields
// control where state lives and how execution is scheduled, retried
// and observed.
type Config struct {
	// Spec is the canonical campaign description. Required; Run
	// validates it (applying the documented defaults in place) and
	// expands its Fields × Formats cross product via SpecsOf.
	Spec *spec.CampaignSpec
	// Dir is the state directory holding manifest.json and journal/.
	// Empty disables durability (no journal, no resume) while keeping
	// cancellation, watchdog and retry semantics.
	Dir string
	// Resume continues a campaign found in Dir instead of refusing to
	// touch it. Verified journal records are loaded and only missing
	// shards run. Resuming an empty Dir is a fresh start.
	Resume bool
	// Workers bounds concurrent shards; 0 means GOMAXPROCS.
	Workers int
	// RetryBaseDelay seeds the exponential backoff between attempts
	// (delay = Backoff(base, attempt), capped at 30s); 0 means 50ms.
	RetryBaseDelay time.Duration
	// Execute, when non-nil, replaces the local shard computation:
	// each attempt calls it instead of core.RunRange, under the same
	// watchdog, retry and journaling machinery. positserve's
	// coordinator uses it to dispatch shards to remote workers; the
	// trials it returns must be bit-identical to a local computation
	// (the PRNG keying makes that hold for any faithful executor).
	Execute func(ctx context.Context, sh Shard) ([]core.Trial, error)
	// FaultHook, when non-nil, runs at the start of every shard
	// attempt; a non-nil return fails that attempt. It exists to
	// inject transient and permanent faults in tests.
	FaultHook func(sh Shard, attempt int) error
	// Sleep, when non-nil, replaces the backoff wait (tests stub it to
	// avoid real delays). It must honor ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnShardDone, when non-nil, observes every shard outcome as it
	// happens (progress reporting, crash injection in the e2e test).
	// It is called serially.
	OnShardDone func(st ShardStatus)
	// Sink, when non-nil, receives every completed shard's trials —
	// fresh and journal-resumed alike — as the campaign runs, and the
	// Report's Results carry Trials == nil (identity, N, Baseline and
	// Elapsed stay populated). This is how campaign-scale runs stay in
	// bounded memory: trials stream into an append-only store instead
	// of accumulating per-spec slabs. Appends happen serially, after
	// the shard is journaled (the journal stays the durability source,
	// so a sink failure costs the shard, not the campaign — the shard
	// is reported failed and a Resume run can replay it). A
	// store.CampaignWriter satisfies this interface.
	Sink ShardSink
	// Metrics, when non-nil, receives shard lifecycle counts, the
	// shard latency histogram, retry/backoff tallies and worker busy
	// time as the run progresses; it is also propagated to the core
	// engine so injection counts land in the same set. Purely
	// observational — never part of campaign identity.
	Metrics *telemetry.Metrics

	// Derived from Spec by withDefaults; unexported so the spec stays
	// the single source of truth.
	campaign     core.Config
	bitsPerShard int
	shardTimeout time.Duration
	maxRetries   int
}

// withDefaults derives the execution parameters from the (already
// validated) spec and fills scheduling defaults.
func (cfg *Config) withDefaults() Config {
	c := *cfg
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	c.campaign = core.ConfigFromSpec(c.Spec)
	// Shards are the unit of parallelism; the engine pool inside one
	// shard stays serial.
	c.campaign.Workers = 1
	c.campaign.Metrics = c.Metrics
	c.bitsPerShard = c.Spec.BitsPerShard
	c.shardTimeout = c.Spec.ShardTimeoutDuration()
	c.maxRetries = c.Spec.MaxRetriesValue()
	c.Metrics.SetWorkers(c.Workers)
	return c
}

// sleep waits for d or until ctx is cancelled.
func (cfg *Config) sleep(ctx context.Context, d time.Duration) error {
	if cfg.Sleep != nil {
		return cfg.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ShardSink consumes completed shards' trials as a campaign runs.
// AppendShard is called serially, once per completed shard, with the
// shard's half-open bit range; every trial carries the (field, codec)
// identity and a bit within [bitLo, bitHi). An error fails that shard
// (not the campaign) — the journal remains authoritative, so the
// shard is replayable by a Resume run.
type ShardSink interface {
	AppendShard(field, codec string, bitLo, bitHi int, trials []core.Trial) error
}

// SpecsOf expands a validated campaign spec into its (field, codec)
// matrix: the Fields × Formats cross product in declaration order,
// with format names canonicalized through the registry. This is the
// one expansion used by the runner, positserve and positcampaign, so
// shard plans agree everywhere.
func SpecsOf(cs *spec.CampaignSpec) []Spec {
	var out []Spec
	for _, f := range cs.Fields {
		for _, name := range cs.Formats {
			codec, err := numfmt.Lookup(name)
			if err != nil {
				continue // impossible after Validate; skip rather than panic
			}
			out = append(out, Spec{Field: f, Codec: codec.Name(), N: cs.N, Seed: cs.Seed})
		}
	}
	return out
}

// Report is the outcome of a durable campaign run.
type Report struct {
	// Specs is the expanded (field, codec) matrix, SpecsOf(cfg.Spec).
	Specs []Spec
	// Results is index-aligned with Specs. A spec whose shards all
	// completed (freshly or from the journal) gets an assembled
	// *core.Result with trials in bit order; a spec with failed or
	// skipped shards gets nil. When Config.Sink is set the trials
	// streamed out as the campaign ran, so Result.Trials is nil and
	// the sink (typically a store) holds the rows.
	Results []*core.Result
	// Shards lists every shard outcome in deterministic (spec, bit)
	// order.
	Shards []ShardStatus
	// Completed counts shards computed and journaled this run.
	Completed int
	// Resumed counts shards loaded from a prior run's journal.
	Resumed int
	// Failed counts shards that exhausted their retry budget.
	Failed int
	// Skipped counts shards that never ran (campaign cancelled first).
	Skipped int
	// Cancelled reports that the run was interrupted; completed work
	// is journaled and a later Resume run picks up the remainder.
	Cancelled bool
	// Elapsed is this run's wall-clock time (journal loads included).
	Elapsed time.Duration
}

// Complete reports a fully successful campaign.
func (r *Report) Complete() bool { return !r.Cancelled && r.Failed == 0 && r.Skipped == 0 }

// Partial reports a finished campaign with failed shards.
func (r *Report) Partial() bool { return !r.Cancelled && r.Failed > 0 }

// Run executes the campaign described by cfg.Spec durably. Fatal
// setup problems (invalid spec, incompatible journal, unwritable
// state directory) return an error; shard-level failures and
// cancellation are reported in the Report instead, so one bad shard
// cannot take down the campaign.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	start := time.Now()
	if cfg.Spec == nil {
		return nil, fmt.Errorf("runner: Config.Spec is required")
	}
	if verr := cfg.Spec.Validate(); verr != nil {
		return nil, fmt.Errorf("runner: invalid campaign spec: %w", verr)
	}
	c := cfg.withDefaults()
	specs := SpecsOf(c.Spec)
	if len(specs) == 0 {
		return nil, fmt.Errorf("runner: campaign spec expands to no (field, format) pairs")
	}

	// Resolve every spec against the registries up front: a typo must
	// fail before any state is touched.
	codecs := make([]numfmt.Codec, len(specs))
	fields := make([]sdrbench.Field, len(specs))
	var shards []Shard
	// Shard IDs (journal filenames) are keyed on Field+Codec, so two
	// specs sharing that pair would collide in the journal.
	seen := map[string]bool{}
	for i, sp := range specs {
		f, err := sdrbench.Lookup(sp.Field)
		if err != nil {
			return nil, fmt.Errorf("runner: spec %d: %w", i, err)
		}
		cd, err := numfmt.Lookup(sp.Codec)
		if err != nil {
			return nil, fmt.Errorf("runner: spec %d: %w", i, err)
		}
		if sp.N <= 0 {
			return nil, fmt.Errorf("runner: spec %d (%s): non-positive N", i, sp.Key())
		}
		if seen[sp.Key()] {
			return nil, fmt.Errorf("runner: duplicate spec %s", sp.Key())
		}
		seen[sp.Key()] = true
		fields[i], codecs[i] = f, cd
		shards = append(shards, shardsFor(sp, cd.Width(), c.bitsPerShard)...)
	}
	params := paramsOf(c.campaign)

	st, err := openState(&c, params, specs)
	if err != nil {
		return nil, err
	}

	// Load verified journal records for the shards we expect.
	type slot struct {
		status ShardStatus
		trials []core.Trial
		sunk   bool // trials delivered to cfg.Sink; the slab is released
	}
	slots := make([]slot, len(shards))
	for i, sh := range shards {
		slots[i].status = ShardStatus{Shard: sh, State: ShardSkipped}
		if meta, trials, ok := st.load(sh, params); ok {
			slots[i].status.State = ShardResumed
			slots[i].status.Attempts = meta.Attempts
			slots[i].status.DurationNS = meta.DurationNS
			if c.Sink != nil {
				// Journal-resumed shards flow through the sink too, so a
				// resumed campaign's store is as complete as a fresh one.
				if serr := c.Sink.AppendShard(sh.Field, sh.Codec, sh.BitLo, sh.BitHi, trials); serr != nil {
					slots[i].status.State = ShardFailed
					slots[i].status.Error = fmt.Sprintf("sink: %v", serr)
				} else {
					slots[i].sunk = true
				}
			} else {
				slots[i].trials = trials
			}
			// Attempts = 1: the retries happened in the previous run
			// and were counted by that run's metrics.
			c.Metrics.ObserveShard(slots[i].status.State, 0, 1)
		}
	}
	statuses := make([]ShardStatus, len(slots))
	for i := range slots {
		statuses[i] = slots[i].status
	}
	if err := st.begin(statuses); err != nil {
		return nil, err
	}

	// Shard worker pool. Slots are written by index (disjoint); the
	// mutex serializes journaling bookkeeping and the OnShardDone
	// callback only.
	cache := newDataCache(fields, specs)
	var mu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // cancelled: drain remaining shards without working
				}
				busyStart := time.Now()
				sh := shards[i]
				data, err := cache.get(sh.Spec)
				if err != nil {
					slots[i].status.State = ShardFailed
					slots[i].status.Error = err.Error()
				} else {
					trials, status := runShard(ctx, &c, codecs[specIndex(specs, sh.Spec)], sh, data)
					if status.State == ShardDone && st.enabled() {
						if jerr := st.journal(status, params, trials); jerr != nil {
							// A shard whose durability write failed is a
							// failed shard: reporting it done would let a
							// resume silently lose it.
							status.State = ShardFailed
							status.Error = jerr.Error()
							trials = nil
						}
					}
					slots[i].status = status
					slots[i].trials = trials
				}
				c.Metrics.AddWorkerBusy(time.Since(busyStart))
				mu.Lock()
				if c.Sink != nil && slots[i].status.State == ShardDone {
					// Journal first (above), sink second: durability is
					// already settled, so a sink failure only fails this
					// shard and a Resume run replays it into a new store.
					if serr := c.Sink.AppendShard(sh.Field, sh.Codec, sh.BitLo, sh.BitHi, slots[i].trials); serr != nil {
						slots[i].status.State = ShardFailed
						slots[i].status.Error = fmt.Sprintf("sink: %v", serr)
					} else {
						slots[i].sunk = true
					}
					slots[i].trials = nil // the slab is the sink's problem now
				}
				c.Metrics.ObserveShard(slots[i].status.State,
					slots[i].status.Duration(), slots[i].status.Attempts)
				if c.OnShardDone != nil {
					c.OnShardDone(slots[i].status)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range shards {
		if slots[i].status.State == ShardResumed {
			continue // already satisfied by the journal
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	rep := &Report{
		Specs:     specs,
		Results:   make([]*core.Result, len(specs)),
		Cancelled: ctx.Err() != nil,
		Elapsed:   time.Since(start),
	}
	for _, s := range slots {
		rep.Shards = append(rep.Shards, s.status)
		switch s.status.State {
		case ShardDone:
			rep.Completed++
		case ShardResumed:
			rep.Resumed++
		case ShardFailed:
			rep.Failed++
		default:
			rep.Skipped++
		}
	}

	// Assemble per-spec results from shard trials, in bit order. With a
	// Sink the trials already streamed out shard by shard, so the
	// Result keeps identity, baseline and timing but carries no slab.
	for si, sp := range specs {
		var parts []slot
		complete := true
		for i, sh := range shards {
			if sh.Spec != sp {
				continue
			}
			if slots[i].trials == nil && !slots[i].sunk {
				complete = false
				break
			}
			parts = append(parts, slots[i])
		}
		if !complete || len(parts) == 0 {
			continue
		}
		sort.Slice(parts, func(a, b int) bool { return parts[a].status.BitLo < parts[b].status.BitLo })
		var trials []core.Trial
		if c.Sink == nil {
			total := 0
			for _, p := range parts {
				total += len(p.trials)
			}
			trials = make([]core.Trial, 0, total) // one exact allocation, not append-doubling
		}
		var elapsed time.Duration
		for _, p := range parts {
			if c.Sink == nil {
				trials = append(trials, p.trials...)
			}
			elapsed += p.status.Duration()
		}
		data, err := cache.get(sp)
		if err != nil {
			return nil, err // cache already generated it during the run; only a fresh resume can hit this
		}
		rep.Results[si] = &core.Result{
			Field:    sp.Field,
			Codec:    sp.Codec,
			N:        len(data),
			Baseline: stats.Summarize(data),
			Trials:   trials,
			Elapsed:  elapsed,
		}
	}

	if err := st.finish(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// specIndex finds the spec's position; specs are few, linear scan is
// fine.
func specIndex(specs []Spec, sp Spec) int {
	for i := range specs {
		if specs[i] == sp {
			return i
		}
	}
	return -1
}

// runShard executes one shard with watchdog and bounded retry. For
// local computation it allocates the shard's trial buffer once and
// reuses it across retry attempts (core.RunRangeInto fills it in
// place) — unless an attempt was abandoned by the watchdog, in which
// case the orphaned goroutine may still be writing into the buffer
// and the next attempt must start from a fresh one.
func runShard(ctx context.Context, cfg *Config, codec numfmt.Codec, sh Shard, data []float64) ([]core.Trial, ShardStatus) {
	st := ShardStatus{Shard: sh, State: ShardFailed}
	start := time.Now()
	var lastErr error
	var buf []core.Trial
	if cfg.Execute == nil {
		buf = make([]core.Trial, (sh.BitHi-sh.BitLo)*cfg.campaign.TrialsPerBit)
	}
	for attempt := 1; attempt <= cfg.maxRetries+1; attempt++ {
		st.Attempts = attempt
		if attempt > 1 {
			wait := Backoff(cfg.RetryBaseDelay, attempt-1)
			cfg.Metrics.ObserveBackoff(wait)
			if err := cfg.sleep(ctx, wait); err != nil {
				st.State = ShardSkipped
				st.Error = err.Error()
				return nil, st
			}
		}
		trials, abandoned, err := attemptShard(ctx, cfg, codec, sh, data, attempt, buf)
		if err == nil {
			st.State = ShardDone
			st.Error = ""
			st.DurationNS = int64(time.Since(start))
			return trials, st
		}
		if abandoned {
			buf = nil // still owned by the abandoned attempt's goroutine
		}
		if ctx.Err() != nil {
			// The campaign itself is shutting down — not a shard fault.
			st.State = ShardSkipped
			st.Error = err.Error()
			return nil, st
		}
		lastErr = err
	}
	st.Error = fmt.Sprintf("%v (after %d attempts)", lastErr, st.Attempts)
	return nil, st
}

// Backoff computes the exponential retry delay base << (attempt-1),
// capped at 30s. It is exported because positserve's coordinator
// reuses the same schedule to cool down workers that failed a shard
// or a heartbeat.
func Backoff(base time.Duration, attempt int) time.Duration {
	const limit = 30 * time.Second
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= limit {
			return limit
		}
	}
	return d
}

// JitteredBackoff is Backoff with a bounded, deterministic jitter: the
// delay is scaled by a factor in [0.75, 1.25) derived from an FNV-1a
// hash of (key, attempt). The coordinator's dispatcher uses it for
// worker cooldowns so a fleet of workers failed by the same event
// (one dead peer, one chaos burst) does not re-dispatch in lockstep —
// the thundering-herd guard. Because the factor is a pure function of
// its inputs, a replayed run waits the same amount at every step, and
// timing never feeds campaign results, so TestDistributedEquivalence
// stays byte-identical.
func JitteredBackoff(base time.Duration, attempt int, key string) time.Duration {
	d := Backoff(base, attempt)
	h := fnv.New64a()
	_, _ = io.WriteString(h, key)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	_, _ = h.Write(buf[:])
	// Map the hash to [0.75, 1.25): three quarters plus a half-unit
	// fraction. 1<<53 keeps the conversion exact in float64.
	frac := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return time.Duration(float64(d) * (0.75 + frac/2))
}

// attemptShard runs one attempt under the watchdog. The attempt body
// executes in its own goroutine; if the watchdog (or the campaign
// context) fires first, the attempt is abandoned (reported in the
// second return) — its goroutine drains in the background via the
// shared cancelled context and its result is discarded through the
// buffered channel. Local computation fills buf in place via
// core.RunRangeInto; an abandoned attempt keeps writing into it until
// its context check, which is why runShard retires the buffer on
// abandonment. When Execute is set the body dispatches remotely
// instead of computing locally; the surrounding machinery is
// identical, which is how shard reassignment away from a dead worker
// falls out of the ordinary retry loop.
func attemptShard(ctx context.Context, cfg *Config, codec numfmt.Codec, sh Shard, data []float64, attempt int, buf []core.Trial) ([]core.Trial, bool, error) {
	actx := ctx
	cancel := func() {}
	if cfg.shardTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, cfg.shardTimeout)
	}
	defer cancel()
	type outcome struct {
		trials []core.Trial
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		if cfg.FaultHook != nil {
			if err := cfg.FaultHook(sh, attempt); err != nil {
				done <- outcome{nil, fmt.Errorf("runner: shard %s attempt %d: %w", sh.ID(), attempt, err)}
				return
			}
		}
		if cfg.Execute != nil {
			trials, err := cfg.Execute(actx, sh)
			done <- outcome{trials, err}
			return
		}
		trials, err := core.RunRangeInto(actx, cfg.campaign, codec, sh.Field, data, sh.BitLo, sh.BitHi, buf)
		done <- outcome{trials, err}
	}()
	select {
	case out := <-done:
		return out.trials, false, out.err
	case <-actx.Done():
		return nil, true, fmt.Errorf("runner: shard %s attempt %d: watchdog: %w", sh.ID(), attempt, actx.Err())
	}
}

// dataCache generates each spec's dataset once and shares the
// read-only slice across its shards.
type dataCache struct {
	mu     sync.Mutex
	fields map[string]sdrbench.Field
	m      map[Spec][]float64
}

func newDataCache(fields []sdrbench.Field, specs []Spec) *dataCache {
	c := &dataCache{fields: map[string]sdrbench.Field{}, m: map[Spec][]float64{}}
	for i, sp := range specs {
		c.fields[sp.Field] = fields[i]
	}
	return c
}

func (c *dataCache) get(sp Spec) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.m[sp]; ok {
		return d, nil
	}
	f, ok := c.fields[sp.Field]
	if !ok {
		return nil, fmt.Errorf("runner: no field %s in cache", sp.Field)
	}
	d := sdrbench.ToFloat64(f.Generate(sp.N, sp.Seed))
	c.m[sp] = d
	return d, nil
}
