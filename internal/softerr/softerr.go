// Package softerr models the soft-error process of the paper's §3.3:
// transient particle-induced upsets arriving as a Poisson process over
// the bits of a resident data array. Given a per-bit FIT rate
// (failures in time: expected upsets per bit per 10⁹ hours — the unit
// DRAM vendors quote), an array size, and a residency duration, it
// samples upset counts, applies them as random bit flips through any
// number-format codec, and measures the damage — turning the paper's
// per-flip analysis into expected-corruption-per-hour estimates that
// inform the "hardware design for future fault prone systems" goal.
package softerr

import (
	"fmt"
	"math"

	"positres/internal/bitflip"
	"positres/internal/numfmt"
	"positres/internal/qcat"
	"positres/internal/sdrbench"
)

// Model parameterizes the upset process.
type Model struct {
	// FITPerBit is the expected number of upsets per bit per 10⁹
	// device-hours. Field studies report O(10⁻²)–O(10⁰) FIT/Mbit for
	// modern DRAM, i.e. ~1e-8..1e-6 per bit.
	FITPerBit float64
	// Seed drives the deterministic Monte Carlo streams.
	Seed uint64
}

// ExpectedUpsets returns λ, the Poisson mean for an array of `bits`
// total bits resident for `hours`.
func (m Model) ExpectedUpsets(bits int, hours float64) float64 {
	return m.FITPerBit * float64(bits) * hours / 1e9
}

// EpochResult describes one simulated residency epoch. MaxRelErr and
// MRED cover the non-catastrophic upsets; catastrophic ones (decoding
// to NaN/Inf/NaR) are counted separately.
type EpochResult struct {
	Upsets       int     // bit upsets injected this epoch
	MaxRelErr    float64 // worst relative error among non-catastrophic upsets
	MRED         float64 // mean relative error distance of the epoch
	Catastrophic int     // upsets that decoded to NaN/Inf/NaR
}

// poisson samples a Poisson variate (Knuth's product method for small
// λ, normal approximation above 30 — adequate for rate modelling).
func poisson(rng *sdrbench.RNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Simulate runs `epochs` independent residency periods of the given
// duration over data stored in the codec's format, returning per-epoch
// damage. Each epoch starts from pristine data (scrub-at-epoch-start
// semantics). Deterministic in (model seed, codec, epoch).
func Simulate(m Model, codec numfmt.Codec, data []float64, hours float64, epochs int) ([]EpochResult, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("softerr: empty data")
	}
	if epochs <= 0 {
		return nil, fmt.Errorf("softerr: epochs must be positive")
	}
	width := codec.Width()
	lambda := m.ExpectedUpsets(len(data)*width, hours)

	encoded := make([]uint64, len(data))
	for i, v := range data {
		encoded[i] = codec.Encode(v)
	}

	out := make([]EpochResult, epochs)
	for e := range out {
		rng := sdrbench.NewRNG(m.Seed, "softerr", codec.Name(), fmt.Sprint(e))
		r := &out[e]
		r.Upsets = poisson(rng, lambda)
		if r.Upsets == 0 {
			continue
		}
		// Apply the upsets to copies of the struck elements only (the
		// rest of the array is untouched, so metrics reduce to the
		// struck set).
		var sumRel float64
		var nRel int
		for u := 0; u < r.Upsets; u++ {
			idx := rng.Intn(len(data))
			bit := rng.Intn(width)
			faultyBits := bitflip.Flip(encoded[idx], bit)
			faulty := codec.Decode(faultyBits)
			p := qcat.Point(data[idx], faulty)
			if p.Catastrophic {
				r.Catastrophic++
				continue
			}
			if p.RelErr > r.MaxRelErr {
				r.MaxRelErr = p.RelErr
			}
			sumRel += p.RelErr
			nRel++
		}
		if nRel > 0 {
			r.MRED = sumRel / float64(nRel)
		}
	}
	return out, nil
}

// Summary aggregates a simulation.
type Summary struct {
	Epochs            int     // epochs simulated
	MeanUpsets        float64 // mean upsets per epoch
	EpochsWithUpsets  int     // epochs that saw at least one upset
	EpochsCatastrophe int     // epochs with at least one catastrophic upset
	// MeanMaxRelErr averages the finite per-epoch maxima over epochs
	// that saw at least one upset.
	MeanMaxRelErr float64
	// WorstRelErr is the largest finite relative error seen anywhere.
	WorstRelErr float64
	// CatastropheRate is the fraction of upsets decoding to
	// NaN/Inf/NaR.
	CatastropheRate float64
}

// Summarize reduces epoch results.
func Summarize(epochs []EpochResult) Summary {
	s := Summary{Epochs: len(epochs)}
	var sumMax float64
	var nMax int
	totalUpsets, totalCat := 0, 0
	for _, e := range epochs {
		s.MeanUpsets += float64(e.Upsets)
		totalUpsets += e.Upsets
		totalCat += e.Catastrophic
		if e.Upsets > 0 {
			s.EpochsWithUpsets++
		}
		if e.Catastrophic > 0 {
			s.EpochsCatastrophe++
		}
		if e.Upsets > e.Catastrophic {
			sumMax += e.MaxRelErr
			nMax++
			if e.MaxRelErr > s.WorstRelErr {
				s.WorstRelErr = e.MaxRelErr
			}
		}
	}
	if len(epochs) > 0 {
		s.MeanUpsets /= float64(len(epochs))
	}
	if nMax > 0 {
		s.MeanMaxRelErr = sumMax / float64(nMax)
	}
	if totalUpsets > 0 {
		s.CatastropheRate = float64(totalCat) / float64(totalUpsets)
	}
	return s
}
