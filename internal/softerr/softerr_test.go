package softerr

import (
	"math"
	"reflect"
	"testing"

	"positres/internal/numfmt"
	"positres/internal/sdrbench"
)

func codec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExpectedUpsets(t *testing.T) {
	m := Model{FITPerBit: 100} // 100 FIT/bit (absurdly high, for math)
	// 1e9 bit-hours at 100 FIT/bit → 100 expected upsets.
	if got := m.ExpectedUpsets(1_000_000, 1000); got != 100 {
		t.Errorf("ExpectedUpsets = %v", got)
	}
	if m.ExpectedUpsets(0, 5) != 0 {
		t.Error("zero bits")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := sdrbench.NewRNG(1, "poisson-test")
	for _, lambda := range []float64{0.3, 3, 12, 80} {
		const n = 30000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			k := float64(poisson(rng, lambda))
			sum += k
			sumSq += k * k
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("λ=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.1 {
			t.Errorf("λ=%v: variance %v", lambda, variance)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive λ should yield 0")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	m := Model{FITPerBit: 1e6, Seed: 7} // high rate so upsets occur
	a, err := Simulate(m, codec(t, "posit32"), data, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, codec(t, "posit32"), data, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("simulation not deterministic")
	}
	c, _ := Simulate(Model{FITPerBit: 1e6, Seed: 8}, codec(t, "posit32"), data, 100, 50)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds gave identical runs")
	}
}

func TestSimulateUpsetCounts(t *testing.T) {
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i + 1)
	}
	// λ = 1e3 FIT × 32000 bits × 31.25 h / 1e9 = 1 upset per epoch.
	m := Model{FITPerBit: 1e3, Seed: 1}
	res, err := Simulate(m, codec(t, "ieee32"), data, 31.25, 400)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res)
	if math.Abs(s.MeanUpsets-1) > 0.2 {
		t.Errorf("mean upsets %v, want ≈ 1", s.MeanUpsets)
	}
	if s.EpochsWithUpsets == 0 || s.EpochsWithUpsets == len(res) {
		t.Errorf("upset epochs %d of %d implausible for λ=1", s.EpochsWithUpsets, len(res))
	}
}

// TestPositVsIEEESoftErrorRate: over the same upset process, IEEE
// arrays suffer larger worst-case relative corruption than posit
// arrays (the paper's thesis expressed as a rate).
func TestPositVsIEEESoftErrorRate(t *testing.T) {
	f, err := sdrbench.Lookup("Hurricane/Vf30")
	if err != nil {
		t.Fatal(err)
	}
	data := sdrbench.ToFloat64(f.Generate(5000, 1))
	// λ ≈ 3 upsets per epoch: 1e5 FIT × 160k bits × 0.1875 h / 1e9.
	m := Model{FITPerBit: 1e5, Seed: 3}
	pRes, err := Simulate(m, codec(t, "posit32"), data, 0.1875, 300)
	if err != nil {
		t.Fatal(err)
	}
	iRes, err := Simulate(m, codec(t, "ieee32"), data, 0.1875, 300)
	if err != nil {
		t.Fatal(err)
	}
	p, i := Summarize(pRes), Summarize(iRes)
	if p.MeanUpsets < 1 {
		t.Fatalf("mean upsets %v too low for the assertion", p.MeanUpsets)
	}
	if !(i.WorstRelErr > 1e6*p.WorstRelErr) {
		t.Errorf("expected IEEE worst rel err ≫ posit: posit %g ieee %g",
			p.WorstRelErr, i.WorstRelErr)
	}
	if p.CatastropheRate > i.CatastropheRate {
		t.Errorf("posit catastrophe rate %v exceeds IEEE's %v",
			p.CatastropheRate, i.CatastropheRate)
	}
}

func TestSimulateErrors(t *testing.T) {
	m := Model{FITPerBit: 1}
	if _, err := Simulate(m, codec(t, "posit32"), nil, 1, 1); err == nil {
		t.Error("empty data should error")
	}
	if _, err := Simulate(m, codec(t, "posit32"), []float64{1}, 1, 0); err == nil {
		t.Error("zero epochs should error")
	}
}

func TestSummarizeEdge(t *testing.T) {
	s := Summarize(nil)
	if s.Epochs != 0 || s.MeanUpsets != 0 {
		t.Error("empty summary")
	}
	s = Summarize([]EpochResult{
		{Upsets: 2, MaxRelErr: 0.5, Catastrophic: 0},
		{Upsets: 1, MaxRelErr: math.Inf(1), Catastrophic: 1},
		{Upsets: 0},
	})
	if s.EpochsWithUpsets != 2 || s.EpochsCatastrophe != 1 {
		t.Errorf("summary: %+v", s)
	}
	if s.MeanMaxRelErr != 0.5 || s.WorstRelErr != 0.5 {
		t.Errorf("rel errs: %+v", s)
	}
	if math.Abs(s.CatastropheRate-1.0/3) > 1e-12 {
		t.Errorf("catastrophe rate: %v", s.CatastropheRate)
	}
}
