package redundancy

import (
	"testing"
	"testing/quick"

	"positres/internal/numfmt"
)

func codec(t *testing.T, name string) numfmt.Codec {
	t.Helper()
	c, err := numfmt.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestVoteBitsMajority (property): every bit of the vote equals the
// majority of the input bits, and the vote is permutation-invariant.
func TestVoteBitsMajority(t *testing.T) {
	f := func(a, b, c uint64) bool {
		v := VoteBits(a, b, c)
		if VoteBits(b, c, a) != v || VoteBits(c, a, b) != v {
			return false
		}
		for bit := 0; bit < 64; bit++ {
			n := a>>uint(bit)&1 + b>>uint(bit)&1 + c>>uint(bit)&1
			want := uint64(0)
			if n >= 2 {
				want = 1
			}
			if v>>uint(bit)&1 != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Agreement is the identity.
	if VoteBits(7, 7, 7) != 7 {
		t.Error("unanimous vote")
	}
}

// TestSingleReplicaFaultCorrected: flipping ANY bit of ANY single
// replica never changes a loaded value, and the replica is scrubbed.
func TestSingleReplicaFaultCorrected(t *testing.T) {
	for _, name := range []string{"posit32", "ieee32"} {
		c := codec(t, name)
		for replica := 0; replica < 3; replica++ {
			for bit := 0; bit < 32; bit++ {
				ta := NewTripleArray(c, []float64{1.5, -200, 3e-9})
				ta.InjectBitFlip(replica, 1, bit)
				if got := ta.Load(1); got != -200 {
					t.Fatalf("%s replica %d bit %d: load %v", name, replica, bit, got)
				}
				if ta.Corrected != 1 {
					t.Fatalf("correction not recorded")
				}
				// Scrubbed: a second load is unanimous.
				before := ta.Corrected
				if ta.Load(1) != -200 || ta.Corrected != before {
					t.Fatalf("replica not scrubbed")
				}
			}
		}
	}
}

// TestDoubleSameBitDefeatsTMR: the documented limit — the same bit
// flipped in two replicas wins the vote.
func TestDoubleSameBitDefeatsTMR(t *testing.T) {
	c := codec(t, "posit32")
	ta := NewTripleArray(c, []float64{42})
	ta.InjectBitFlip(0, 0, 29)
	ta.InjectBitFlip(1, 0, 29)
	if got := ta.Load(0); got == 42 {
		t.Fatal("two-replica same-bit fault should defeat the vote")
	}
}

func TestStoreScrubAndHelpers(t *testing.T) {
	c := codec(t, "posit32")
	ta := NewTripleArray(c, []float64{1, 2, 3})
	if ta.Len() != 3 || ta.Codec().Name() != "posit32" {
		t.Fatal("shape")
	}
	ta.Store(0, 9)
	if ta.Load(0) != 9 {
		t.Fatal("store")
	}
	// Distinct (element, bit) pairs so no two replicas share a fault.
	ta.InjectBitFlip(0, 0, 5)
	ta.InjectBitFlip(1, 1, 17)
	ta.InjectBitFlip(2, 2, 29)
	ta.InjectBitFlip(0, 2, 3)
	repaired := ta.Scrub()
	if repaired == 0 {
		t.Fatal("scrub found nothing")
	}
	got := ta.Float64s()
	if got[0] != 9 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("contents after scrub: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad replica index should panic")
		}
	}()
	ta.InjectBitFlip(5, 0, 0)
}
