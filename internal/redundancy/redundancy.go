// Package redundancy implements triple modular redundancy (TMR) over
// format-stored arrays — the replication side of the paper's ref [23]
// (Fiala et al., "Detection and Correction of Silent Data Corruption
// for Large-scale High-performance Computing"): every word is stored
// three times, loads take a bitwise majority vote, and a divergent
// replica is scrubbed back into agreement. A single upset in any
// replica is therefore corrected transparently; simultaneous upsets of
// the same bit in two replicas defeat the vote (counted, not hidden).
package redundancy

import (
	"fmt"

	"positres/internal/kernels"
	"positres/internal/numfmt"
)

// VoteBits returns the bitwise majority of three words: each result
// bit is set iff it is set in at least two inputs.
func VoteBits(a, b, c uint64) uint64 {
	return a&b | a&c | b&c
}

// TripleArray stores each element in three replicas with voting loads.
type TripleArray struct {
	r [3]*kernels.Array

	// Corrected counts loads where at least one replica disagreed with
	// the vote and was scrubbed.
	Corrected int
}

// NewTripleArray stores data in the format, three times.
func NewTripleArray(codec numfmt.Codec, data []float64) *TripleArray {
	t := &TripleArray{}
	for i := range t.r {
		t.r[i] = kernels.NewArray(codec, data)
	}
	return t
}

// Len returns the element count.
func (t *TripleArray) Len() int { return t.r[0].Len() }

// Codec returns the storage format.
func (t *TripleArray) Codec() numfmt.Codec { return t.r[0].Codec() }

// Load votes the three replicas of element i, scrubbing any replica
// that disagrees with the majority.
func (t *TripleArray) Load(i int) float64 {
	w0, w1, w2 := t.r[0].Bits(i), t.r[1].Bits(i), t.r[2].Bits(i)
	v := VoteBits(w0, w1, w2)
	if w0 != v || w1 != v || w2 != v {
		t.Corrected++
		t.scrub(i, v)
	}
	return t.Codec().Decode(v)
}

func (t *TripleArray) scrub(i int, v uint64) {
	val := t.Codec().Decode(v)
	for _, r := range t.r {
		if r.Bits(i) != v {
			r.Store(i, val)
		}
	}
}

// Store writes all three replicas.
func (t *TripleArray) Store(i int, v float64) {
	for _, r := range t.r {
		r.Store(i, v)
	}
}

// InjectBitFlip corrupts one bit of one replica (0..2).
func (t *TripleArray) InjectBitFlip(replica, i, bit int) {
	if replica < 0 || replica > 2 {
		panic(fmt.Sprintf("redundancy: replica %d out of range", replica))
	}
	t.r[replica].InjectBitFlip(i, bit)
}

// Scrub votes every element, repairing divergent replicas; it returns
// the number of elements that needed repair.
func (t *TripleArray) Scrub() int {
	repaired := 0
	before := t.Corrected
	for i := 0; i < t.Len(); i++ {
		t.Load(i)
	}
	repaired = t.Corrected - before
	return repaired
}

// Float64s decodes the voted contents.
func (t *TripleArray) Float64s() []float64 {
	out := make([]float64, t.Len())
	for i := range out {
		out[i] = t.Load(i)
	}
	return out
}
