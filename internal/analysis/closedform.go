package analysis

import (
	"math"

	"positres/internal/posit"
)

// This file derives closed-form expressions for the value a single-bit
// flip produces in a posit, using only the ORIGINAL pattern's field
// decomposition — never decoding the flipped pattern. It is the
// rigorous version of the paper's future-work item "mathematical
// analysis could be done to predict potential error in posits due to
// bit flips": each §5 mechanism becomes a formula, and the test suite
// proves the formulas agree exactly with injection on every pattern.
//
// Notation (paper eq. 2): p = ((1−3s) + f) × 2^((1−2s)(2^es·r + e + s)),
// with s the raw sign bit, r the regime value, e the raw exponent and
// f = F/2^m the raw fraction — all read from the two's-complement
// pattern. Every mechanism below perturbs one of (s, r, e, f); the
// subtlety is that regime-field flips also re-partition the payload,
// changing e and f too. The formulas make that re-partitioning
// explicit instead of re-running the decoder.

// PredictFlipValue returns the exact value of the posit obtained by
// flipping bit pos of bits, computed symbolically from the original
// fields. It matches posit.DecodeFloat64(cfg, bits ^ 1<<pos) on every
// input (asserted exhaustively in tests).
func PredictFlipValue(cfg posit.Config, bits uint64, pos int) float64 {
	bits = cfg.Canon(bits)
	newBits := cfg.Canon(bits ^ uint64(1)<<uint(pos))
	// Trivially-special outcomes first.
	if newBits == 0 {
		return 0
	}
	if newBits == cfg.NaR() {
		return math.NaN()
	}

	f := posit.DecodeFields(cfg, bits)
	if f.IsZero || f.IsNaR {
		// Flips of all-zero payloads produce one-hot patterns whose
		// value follows directly from the run structure; fall back to
		// the generic formula below with re-derived fields.
		return eq2FromFields(cfg, posit.DecodeFields(cfg, newBits))
	}

	s := int(f.Sign)

	switch {
	case pos == cfg.N-1:
		// Sign flip: s' = 1−s, all other raw fields unchanged (the
		// payload is untouched). Re-evaluating eq. 2 with s' gives the
		// §5.7 closed form: both the leading term (1−3s) and the
		// exponent sign flip.
		nf := f
		nf.Sign = uint(1 - s)
		return eq2FromFields(cfg, nf)

	case posit.FieldAt(cfg, bits, pos) == posit.FieldExponent:
		// Exponent-bit flip (§5.6): only e changes, by ±2^i where i is
		// the bit's index within the (possibly truncated) exponent
		// field. The magnitude scales by 2^(±(1−2s)·2^i) — at most ×4
		// either way for es = 2.
		nf := f
		regimeLow := cfg.N - 1 - f.RegimeLen
		iInField := pos - (regimeLow - f.ExpLen) // 0 = lowest present bit
		// Present bits are the MSBs of the es-bit exponent.
		bitWeight := uint64(1) << uint(cfg.ES-f.ExpLen+iInField)
		nf.Exp ^= bitWeight
		return eq2FromFields(cfg, nf)

	case posit.FieldAt(cfg, bits, pos) == posit.FieldFraction:
		// Fraction-bit flip (§5.5): f' = f ± 2^(pos)/2^m; linear
		// perturbation of the significand.
		nf := f
		nf.Frac ^= uint64(1) << uint(pos)
		return eq2FromFields(cfg, nf)

	default:
		// Regime-field flip: the run re-partitions. Rather than
		// re-scanning the whole payload, derive the new run length
		// from the original structure (§5.4's three mechanisms), then
		// recompute e and f from the re-partitioned payload tail.
		return regimeFlipValue(cfg, bits, pos, f)
	}
}

// eq2FromFields evaluates paper eq. (2) from a Fields decomposition.
func eq2FromFields(cfg posit.Config, f posit.Fields) float64 {
	if f.IsZero {
		return 0
	}
	if f.IsNaR {
		return math.NaN()
	}
	s := int(f.Sign)
	scale := (1 - 2*s) * ((f.R << uint(cfg.ES)) + int(f.Exp) + s)
	num := int64(1-3*s)<<uint(f.FracLen) + int64(f.Frac)
	return math.Ldexp(float64(num), scale-f.FracLen)
}

// regimeFlipValue handles flips inside the regime field by deriving
// the re-partitioned fields analytically.
func regimeFlipValue(cfg posit.Config, bits uint64, pos int, f posit.Fields) float64 {
	n := cfg.N
	payload := bits & (cfg.Mask() >> 1)
	runTop := n - 2
	i := runTop - pos // index within the regime field (0 = R_0)

	first := (payload >> uint(runTop)) & 1

	var newK int
	var newFirst uint64
	switch {
	case i == f.K && f.RegimeLen > f.K:
		// R_k flipped to the run's value: the run absorbs R_k and then
		// every following bit equal to `first`, stopping at the first
		// opposite bit (§5.4.1 "the regime expands into what was once
		// the exponent and fraction"). Count the extension directly.
		newFirst = first
		newK = f.K + 1
		for p := pos - 1; p >= 0 && (payload>>uint(p))&1 == first; p-- {
			newK++
		}
	case i == 0:
		// R_0 flipped: the run direction inverts. The new run starts
		// with the flipped bit and extends while following bits equal
		// it — for k = 1 this is the §5.4.2 invert-and-expand edge
		// case (Fig. 15); for k > 1 the old R_1 terminates it at once.
		newFirst = 1 - first
		newK = 1
		for p := pos - 1; p >= 0 && (payload>>uint(p))&1 == newFirst; p-- {
			newK++
		}
	default:
		// An interior run bit R_i (0 < i < k) flipped: the run is cut
		// short at length i (§5.4.1 regime shrink).
		newFirst = first
		newK = i
	}

	var newR int
	if newFirst == 1 {
		newR = newK - 1
	} else {
		newR = -newK
	}

	// Re-partition the tail after the new regime.
	nf := posit.Fields{Cfg: cfg, Sign: f.Sign, K: newK, R: newR}
	p := runTop - newK // position of the terminating bit, if present
	newPayload := payload ^ uint64(1)<<uint(pos)
	if p >= 0 {
		p-- // consume the terminator
	}
	for j := 0; j < cfg.ES && p >= 0; j++ {
		nf.Exp = nf.Exp<<1 | (newPayload>>uint(p))&1
		nf.ExpLen++
		p--
	}
	nf.Exp <<= uint(cfg.ES - nf.ExpLen)
	if p >= 0 {
		nf.FracLen = p + 1
		nf.Frac = newPayload & ((uint64(1) << uint(p+1)) - 1)
	}
	return eq2FromFields(cfg, nf)
}

// PredictFlipRelError returns |orig − predicted| / |orig| from the
// closed forms (Inf for catastrophic outcomes), without decoding the
// flipped pattern.
func PredictFlipRelError(cfg posit.Config, bits uint64, pos int) float64 {
	orig := posit.DecodeFloat64(cfg, bits)
	pred := PredictFlipValue(cfg, bits, pos)
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		return math.Inf(1)
	}
	if orig == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if math.IsNaN(orig) {
		return math.Inf(1)
	}
	return math.Abs(orig-pred) / math.Abs(orig)
}

// SignFlipMagnitudeRatio gives the §5.7 closed form for the magnitude
// change of a sign flip: |p'|/|p| as a function of the raw fields,
//
//	|p'| / |p| = ((2+f)/(1+f))^(±1) × 2^(∓(2·(2^es·r + e) + 1))
//
// for s = 0 → 1 (upper signs) and s = 1 → 0 (lower). The exponential
// term in r explains Fig. 20's regime-size growth.
func SignFlipMagnitudeRatio(cfg posit.Config, bits uint64) float64 {
	f := posit.DecodeFields(cfg, cfg.Canon(bits))
	if f.IsZero || f.IsNaR {
		return math.NaN()
	}
	fr := f.FracValue()
	h := float64((f.R << uint(cfg.ES)) + int(f.Exp))
	if f.Sign == 0 {
		return (2 - fr) / (1 + fr) * math.Exp2(-(2*h + 1))
	}
	return (1 + fr) / (2 - fr) * math.Exp2(2*h+1)
}
