package analysis

import (
	"math"
	"math/rand"
	"testing"

	"positres/internal/bitflip"
	"positres/internal/ieee754"
	"positres/internal/posit"
	"positres/internal/sdrbench"
)

// TestPredictionMatchesInjection: the analytical model must agree with
// brute-force injection (flip + decode) on every pattern/position —
// exhaustive for posit16, sampled for posit32.
func TestPredictionMatchesInjection(t *testing.T) {
	cfg := posit.Std16
	for b := uint64(0); b <= cfg.Mask(); b += 7 { // stride keeps runtime sane
		for pos := 0; pos < cfg.N; pos++ {
			pf := AnalyzePositFlip(cfg, b, pos)
			wantBits := bitflip.Flip(b, pos) & cfg.Mask()
			if pf.NewBits != wantBits {
				t.Fatalf("NewBits mismatch at %#x pos %d", b, pos)
			}
			wantVal := posit.DecodeFloat64(cfg, wantBits)
			if pf.NewVal != wantVal && !(math.IsNaN(pf.NewVal) && math.IsNaN(wantVal)) {
				t.Fatalf("NewVal mismatch at %#x pos %d: %v vs %v", b, pos, pf.NewVal, wantVal)
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	cfg = posit.Std32
	for i := 0; i < 20000; i++ {
		b := cfg.Canon(rng.Uint64())
		pos := rng.Intn(cfg.N)
		pf := AnalyzePositFlip(cfg, b, pos)
		if pf.NewBits != bitflip.Flip(b, pos)&cfg.Mask() {
			t.Fatalf("NewBits mismatch at %#x pos %d", b, pos)
		}
	}
}

// TestClassification: directed checks of the §5 taxonomy.
func TestClassification(t *testing.T) {
	cfg := posit.Std32
	enc := func(x float64) uint64 { return posit.EncodeFloat64(cfg, x) }

	// 186250-scale value: regime "1110" (k=3). R_k is the 0 at
	// position 31-1-3 = 27.
	b := enc(186250)
	f := posit.DecodeFields(cfg, b)
	if f.K != 5 { // 186250 ≈ 2^17.5 → r=4, k=5
		t.Fatalf("K of 186250 = %d", f.K)
	}
	rkPos := cfg.N - 2 - f.K
	if got := AnalyzePositFlip(cfg, b, rkPos).Class; got != ClassRegimeExpand {
		t.Errorf("R_k flip class = %v", got)
	}
	if got := AnalyzePositFlip(cfg, b, cfg.N-2).Class; got != ClassRegimeInvert {
		t.Errorf("R_0 flip class = %v (k>1 should invert)", got)
	}
	if got := AnalyzePositFlip(cfg, b, cfg.N-3).Class; got != ClassRegimeShrink {
		t.Errorf("R_1 flip class = %v", got)
	}
	if got := AnalyzePositFlip(cfg, b, cfg.N-1).Class; got != ClassSign {
		t.Errorf("sign flip class = %v", got)
	}
	expPos := cfg.N - 2 - f.K - 1 // first exponent bit
	if got := AnalyzePositFlip(cfg, b, expPos-1).Class; got != ClassExponent {
		t.Errorf("exponent flip class = %v", got)
	}
	if got := AnalyzePositFlip(cfg, b, 0).Class; got != ClassFraction {
		t.Errorf("fraction flip class = %v", got)
	}

	// k=1 posit below one (e.g. 0.5 → regime "01"): flipping R_0 is
	// the invert-and-expand edge case of Fig. 15.
	b = enc(0.5)
	if posit.DecodeFields(cfg, b).K != 1 {
		t.Fatal("0.5 should have k=1")
	}
	if got := AnalyzePositFlip(cfg, b, cfg.N-2).Class; got != ClassRegimeInvertExpand {
		t.Errorf("sole-run-bit flip class = %v", got)
	}

	// Special patterns.
	if got := AnalyzePositFlip(cfg, 0, 5).Class; got != ClassFromZero {
		t.Errorf("flip of zero class = %v", got)
	}
	if got := AnalyzePositFlip(cfg, cfg.NaR(), 5).Class; got != ClassFromNaR {
		t.Errorf("flip of NaR class = %v", got)
	}
	// Flipping the sign bit of zero yields NaR.
	if got := AnalyzePositFlip(cfg, 0, cfg.N-1).Class; got != ClassFromZero {
		t.Errorf("sign flip of zero class = %v", got)
	}
	// +minpos's sign flip gives 0x80000001... flipping sign of
	// pattern 1 gives 0x80000001 (not NaR); but flipping the sole set
	// bit of minpos gives exactly zero.
	if got := AnalyzePositFlip(cfg, 1, 0); got.NewBits != 0 || got.NewVal != 0 {
		t.Errorf("minpos LSB flip should produce zero: %+v", got)
	}
	// A pattern one bit away from NaR: flipping that bit → NaR.
	if got := AnalyzePositFlip(cfg, cfg.NaR()|1, 0).Class; got != ClassToNaR {
		t.Errorf("to-NaR class = %v", got)
	}
	// String coverage.
	for c := ClassSign; c <= ClassFromZero; c++ {
		if c.String() == "" {
			t.Error("empty class string")
		}
	}
}

// TestFig12RegimeExpansion reproduces the paper's Fig. 12: flipping
// R_k expands the regime into the exponent/fraction and scales the
// magnitude by ~2^(4n) for n new regime bits.
func TestFig12RegimeExpansion(t *testing.T) {
	cfg := posit.Std32
	// Build a posit > 1 whose exponent and fraction MSBs continue the
	// run when R_k flips: 0|110|11|11100... = value with r=1, e=3 and
	// fraction 0.111…; flipping R_k (the 0) gives run of 1s length 7.
	b := uint64(0)
	b |= 0b110 << 28                   // regime k=2 occupying bits 30..28
	b |= 0b11 << 26                    // exponent 3
	b |= 0b1110 << 22                  // fraction MSBs continue the run after the flip
	pf := AnalyzePositFlip(cfg, b, 28) // R_k at bit 28
	if pf.Class != ClassRegimeExpand {
		t.Fatalf("class %v", pf.Class)
	}
	if pf.NewK <= pf.OldK {
		t.Fatalf("regime did not expand: k %d -> %d", pf.OldK, pf.NewK)
	}
	// The magnitude scales by roughly useed^Δr; check the ratio lies
	// within the reinterpretation slack of the closed form.
	scale := RegimeExpansionScale(cfg, pf)
	ratio := math.Abs(pf.NewVal / pf.OldVal)
	if ratio < scale/64 || ratio > scale*64 {
		t.Errorf("expansion ratio %g vs closed form %g", ratio, scale)
	}
	if pf.RelErr < 1000 {
		t.Errorf("R_k expansion should be catastropically large, rel err %g", pf.RelErr)
	}
}

// TestFig13ShrinkComparable reproduces Fig. 13's claim: absolute error
// from flipping R_0 vs R_{k-1} of a large posit is comparable (both
// collapse the magnitude, so |err| ≈ |orig|).
func TestFig13ShrinkComparable(t *testing.T) {
	cfg := posit.Std32
	b := posit.EncodeFloat64(cfg, 186250)
	k := posit.DecodeFields(cfg, b).K
	e0 := AnalyzePositFlip(cfg, b, cfg.N-2)       // R_0
	eK := AnalyzePositFlip(cfg, b, cfg.N-2-(k-1)) // R_{k-1}
	if e0.AbsErr == 0 || eK.AbsErr == 0 {
		t.Fatal("expected nonzero errors")
	}
	ratio := e0.AbsErr / eK.AbsErr
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("R_0 vs R_{k-1} abs err ratio %g, expected comparable", ratio)
	}
	// Both are ≈ the original magnitude (the faulty value is tiny).
	if math.Abs(e0.AbsErr-186250)/186250 > 0.1 {
		t.Errorf("R_0 abs err %g should approximate |orig|", e0.AbsErr)
	}
}

// TestFig15InvertExpandSpike: the k=1 below-one edge case produces
// enormous ABSOLUTE error (the paper reports up to 1e11) even though
// most below-one flips are mild.
func TestFig15InvertExpandSpike(t *testing.T) {
	cfg := posit.Std32
	// A value just below 1 with k=1 and a fraction of mostly 1s, so
	// the inverted regime extends deep: 0|01|11|1111... flips R_0 →
	// 0|11|11|1111...: run of many 1s → huge positive regime.
	b := uint64(0)
	b |= 0b01 << 29
	b |= 0b11 << 27
	b |= (uint64(1) << 27) - 1 // all fraction (and exponent) bits set
	pf := AnalyzePositFlip(cfg, b, 30)
	if pf.Class != ClassRegimeInvertExpand {
		t.Fatalf("class %v", pf.Class)
	}
	if pf.OldVal >= 1 || pf.OldVal <= 0 {
		t.Fatalf("old value %g should be in (0,1)", pf.OldVal)
	}
	if pf.AbsErr < 1e11 {
		t.Errorf("invert-expand abs err %g, paper reports spikes ≥ 1e11", pf.AbsErr)
	}
}

// TestFig19SignFlipVsNegation: flipping the sign bit is NOT negation
// (negation is two's complement), §5.7 / Fig. 19.
func TestFig19SignFlipVsNegation(t *testing.T) {
	cfg := posit.Std32
	b := posit.EncodeFloat64(cfg, 186.25)
	flip := AnalyzePositFlip(cfg, b, cfg.N-1)
	if flip.NewVal == -flip.OldVal {
		t.Error("sign flip behaved like negation")
	}
	neg := cfg.Negate(b)
	if posit.DecodeFloat64(cfg, neg) != -186.25 {
		t.Error("two's complement should negate")
	}
	// Magnitude changed (Fig. 21): for |v| away from 1 the exponent
	// term flips sign, giving a drastic magnitude change.
	if math.Abs(math.Abs(flip.NewVal)-186.25) < 1 {
		t.Errorf("sign flip should change magnitude: %g -> %g", flip.OldVal, flip.NewVal)
	}
}

// TestSignFlipErrorGrowsWithRegime (Fig. 20 mechanism): the absolute
// sign-flip error grows exponentially with regime size.
func TestSignFlipErrorGrowsWithRegime(t *testing.T) {
	cfg := posit.Std32
	var prev float64
	for k := 1; k <= 6; k++ {
		// A value with regime run k: scale 4(k-1) for k>=1 above one.
		v := math.Ldexp(1.3, 4*(k-1))
		b := posit.EncodeFloat64(cfg, v)
		if got := posit.DecodeFields(cfg, b).K; got != k {
			t.Fatalf("constructed k=%d, got %d", k, got)
		}
		pf := AnalyzePositFlip(cfg, b, cfg.N-1)
		if k > 1 && pf.AbsErr <= prev {
			t.Errorf("sign-flip abs err not growing at k=%d: %g <= %g", k, pf.AbsErr, prev)
		}
		prev = pf.AbsErr
	}
}

// TestIEEEFlipAnalysis: the IEEE analyzer agrees with the Elliott
// closed form in scope and detects catastrophes.
func TestIEEEFlipAnalysis(t *testing.T) {
	f := ieee754.Binary32
	b := f.Encode(186.25)
	sweep := SweepIEEEFlips(f, b)
	if len(sweep) != 32 {
		t.Fatal("sweep length")
	}
	for _, fl := range sweep {
		if !math.IsNaN(fl.PredictedRelErr) && !fl.Catastrophic {
			if math.Abs(fl.PredictedRelErr-fl.RelErr) > 1e-9*math.Max(1, fl.RelErr) {
				t.Errorf("pos %d: predicted %g measured %g", fl.Pos, fl.PredictedRelErr, fl.RelErr)
			}
		}
	}
	if sweep[31].Field != ieee754.FieldSign || sweep[31].RelErr != 2 {
		t.Error("sign flip should be rel err 2")
	}
	// Flipping the top exponent bit of a value with exp ≥ 0x80 halves
	// the exponent; for values with exp < 0x80 it overflows to the
	// 0xFF region only if remaining bits are all ones. For 186.25 no
	// flip is catastrophic.
	for _, fl := range sweep {
		if fl.Catastrophic {
			t.Errorf("unexpected catastrophic flip at pos %d", fl.Pos)
		}
	}
	// NaN production: exponent 0xFE + fraction ≠ 0, flip exp LSB.
	nb := f.Encode(math.MaxFloat32)
	fl := AnalyzeIEEEFlip(f, nb, 23)
	if !fl.Catastrophic || fl.Outcome != ieee754.OutcomeNaN {
		t.Errorf("MaxFloat32 exp flip: %+v", fl)
	}
}

// TestSweepPositFlips covers the sweep helper.
func TestSweepPositFlips(t *testing.T) {
	cfg := posit.Std16
	b := posit.EncodeFloat64(cfg, 12.5)
	sweep := SweepPositFlips(cfg, b)
	if len(sweep) != 16 {
		t.Fatal("sweep length")
	}
	for pos, pf := range sweep {
		if pf.Pos != pos || pf.OldBits != b {
			t.Fatal("sweep bookkeeping")
		}
	}
}

func TestRegimeHistogram(t *testing.T) {
	cfg := posit.Std32
	data := []float64{1, 1.5, 16, 256, 0, math.NaN(), math.Inf(1), -0.5}
	h := RegimeHistogram(cfg, data)
	// 1 and 1.5: k=1; -0.5: k=1; 16: k=2; 256: r=2 → k=3.
	if h[1] != 3 || h[2] != 1 || h[3] != 1 {
		t.Errorf("histogram: %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 { // zero/NaN/Inf skipped
		t.Errorf("total %d", total)
	}
}

func TestSpreadOf(t *testing.T) {
	h := map[int]int{1: 90, 2: 9, 5: 1}
	s := SpreadOf(h, 0.05)
	if s.Distinct != 2 || s.MaxK != 5 {
		t.Errorf("spread: %+v", s)
	}
	wantMean := (90*1 + 9*2 + 1*5) / 100.0
	if math.Abs(s.MeanK-wantMean) > 1e-12 {
		t.Errorf("meanK %v", s.MeanK)
	}
	if SpreadOf(nil, 0.1).Distinct != 0 {
		t.Error("empty spread")
	}
}

// TestRegimeSpreadPaperClaim: §5.4.3 — datasets with large variances
// and medians (Nyx) carry "more values with larger numbers of regime
// bits" than narrow sub-unit datasets (CESM CLOUD), so their R_k error
// spikes sit at lower bit positions.
func TestRegimeSpreadPaperClaim(t *testing.T) {
	gen := func(key string) []float64 {
		f, err := sdrbench.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		return sdrbench.ToFloat64(f.Generate(50000, 1))
	}
	nyx := SpreadOf(RegimeHistogram(posit.Std32, gen("Nyx/velocity-x")), 0.01)
	cloud := SpreadOf(RegimeHistogram(posit.Std32, gen("CESM/CLOUD")), 0.01)
	if !(nyx.MeanK > cloud.MeanK+1) {
		t.Errorf("Nyx mean regime size (%v) should exceed CESM/CLOUD's (%v) by >1", nyx.MeanK, cloud.MeanK)
	}
	if !(nyx.MaxK > cloud.MaxK) {
		t.Errorf("Nyx max regime %d should exceed CLOUD's %d", nyx.MaxK, cloud.MaxK)
	}
}
