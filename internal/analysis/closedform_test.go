package analysis

import (
	"math"
	"math/rand"
	"testing"

	"positres/internal/posit"
)

// TestPredictFlipValueExhaustive16: the closed forms agree with
// injection (flip + decode) on EVERY posit16 pattern and position.
func TestPredictFlipValueExhaustive16(t *testing.T) {
	cfg := posit.Std16
	for b := uint64(0); b <= cfg.Mask(); b++ {
		for pos := 0; pos < cfg.N; pos++ {
			pred := PredictFlipValue(cfg, b, pos)
			want := posit.DecodeFloat64(cfg, cfg.Canon(b^uint64(1)<<uint(pos)))
			if pred != want && !(math.IsNaN(pred) && math.IsNaN(want)) {
				t.Fatalf("pattern %#x pos %d: predicted %v, injection %v (fields %+v)",
					b, pos, pred, want, posit.DecodeFields(cfg, b))
			}
		}
	}
}

// TestPredictFlipValueExhaustive8 covers posit8 (different truncation
// edge cases) and a legacy es.
func TestPredictFlipValueExhaustive8(t *testing.T) {
	for _, cfg := range []posit.Config{posit.Std8, {N: 8, ES: 0}, {N: 12, ES: 3}} {
		for b := uint64(0); b <= cfg.Mask(); b++ {
			for pos := 0; pos < cfg.N; pos++ {
				pred := PredictFlipValue(cfg, b, pos)
				want := posit.DecodeFloat64(cfg, cfg.Canon(b^uint64(1)<<uint(pos)))
				if pred != want && !(math.IsNaN(pred) && math.IsNaN(want)) {
					t.Fatalf("%v pattern %#x pos %d: predicted %v, injection %v",
						cfg, b, pos, pred, want)
				}
			}
		}
	}
}

// TestPredictFlipValueSampled32And64 samples the wide formats.
func TestPredictFlipValueSampled32And64(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, cfg := range []posit.Config{posit.Std32, posit.Std64} {
		for i := 0; i < 100000; i++ {
			b := cfg.Canon(rng.Uint64())
			pos := rng.Intn(cfg.N)
			pred := PredictFlipValue(cfg, b, pos)
			want := posit.DecodeFloat64(cfg, cfg.Canon(b^uint64(1)<<uint(pos)))
			if pred != want && !(math.IsNaN(pred) && math.IsNaN(want)) {
				t.Fatalf("%v pattern %#x pos %d: predicted %v, injection %v", cfg, b, pos, pred, want)
			}
		}
	}
}

// TestPredictFlipRelError: the relative-error closed form matches the
// brute-force campaign arithmetic.
func TestPredictFlipRelError(t *testing.T) {
	cfg := posit.Std32
	rng := rand.New(rand.NewSource(63))
	for i := 0; i < 20000; i++ {
		b := cfg.Canon(rng.Uint64())
		pos := rng.Intn(cfg.N)
		pred := PredictFlipRelError(cfg, b, pos)
		pf := AnalyzePositFlip(cfg, b, pos)
		want := pf.RelErr
		if pf.Catastrophic {
			want = math.Inf(1)
		}
		if pred != want && !(math.IsInf(pred, 1) && math.IsInf(want, 1)) {
			t.Fatalf("pattern %#x pos %d: predicted rel %v, measured %v", b, pos, pred, want)
		}
	}
}

// TestSignFlipMagnitudeRatio: the §5.7 formula matches measurement on
// every posit16 real pattern.
func TestSignFlipMagnitudeRatio(t *testing.T) {
	cfg := posit.Std16
	for b := uint64(0); b <= cfg.Mask(); b++ {
		if b == 0 || b == cfg.NaR() {
			if !math.IsNaN(SignFlipMagnitudeRatio(cfg, b)) {
				t.Fatalf("ratio of special pattern %#x should be NaN", b)
			}
			continue
		}
		flipped := cfg.Canon(b ^ cfg.SignMask())
		if flipped == 0 || flipped == cfg.NaR() {
			continue
		}
		want := math.Abs(posit.DecodeFloat64(cfg, flipped)) / math.Abs(posit.DecodeFloat64(cfg, b))
		got := SignFlipMagnitudeRatio(cfg, b)
		if math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("pattern %#x: ratio %v, want %v", b, got, want)
		}
	}
}

// TestSignFlipRatioGrowsWithRegime: the formula's 2^(-(2H+1)) term
// makes the ratio (and hence the absolute error) explode with regime
// size, the mechanism behind Fig. 20.
func TestSignFlipRatioGrowsWithRegime(t *testing.T) {
	cfg := posit.Std32
	var prevErr float64
	for k := 1; k <= 6; k++ {
		v := math.Ldexp(1.5, 4*(k-1))
		b := posit.EncodeFloat64(cfg, v)
		ratio := SignFlipMagnitudeRatio(cfg, b)
		absErr := math.Abs(v) * (1 + ratio) // |p - p'| with p' opposite sign
		if k > 1 && absErr <= prevErr {
			t.Errorf("k=%d: abs err %g not growing (prev %g)", k, absErr, prevErr)
		}
		prevErr = absErr
	}
}
